// Package bench is the performance-regression harness of the repository:
// it runs a fixed matrix of (scheme × suite × budget) simulation points,
// measures simulator throughput (wall time, simulated instructions per
// second), allocation behaviour (allocations and bytes per simulated
// instruction) and the headline model metrics (IPC, Figure 1 locality
// fractions), and emits a versioned BENCH_<timestamp>.json artifact that
// cmd/elsqbench diffs against a committed baseline.
//
// Two classes of quantity live in one artifact and are treated differently
// by regression comparison:
//
//   - Deterministic quantities — the model metrics and the results digest —
//     must match the baseline exactly on the same GOARCH. Any drift means
//     the simulation changed, not the machine.
//   - Machine-dependent quantities — wall time, instructions/sec — carry a
//     tolerance band and are only enforced when the caller asks (the same
//     machine ran both artifacts, e.g. a before/after check on one host).
//     Allocations per instruction sit in between: they are a property of
//     the code, not the host, but minor runtime-version variation gets a
//     small band.
package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Budget names an instruction budget.
type Budget struct {
	// Name labels the budget in artifacts ("smoke", "deep").
	Name string
	// Measure and Warmup are the timed and warm-up instruction counts.
	Measure, Warmup uint64
}

// SmokeBudget is the quick CI budget; DeepBudget matches config.Default().
var (
	SmokeBudget = Budget{Name: "smoke", Measure: config.SmokeMeasureInsts, Warmup: config.SmokeWarmupInsts}
	DeepBudget  = Budget{Name: "deep", Measure: 200_000, Warmup: 2_000_000}
)

// Point is one measurement of the matrix: a scheme configuration run over
// every benchmark of a suite at a budget.
type Point struct {
	// Name is the artifact key, "<scheme>/<suite>/<budget>".
	Name string
	// Scheme labels the configuration (config.Config.Name()).
	Scheme string
	// Suite is the benchmark suite the point runs.
	Suite workload.Suite
	// Budget is the instruction budget.
	Budget Budget
	// Config is the full configuration (budget already applied).
	Config config.Config
	// TraceDir, when set, drives every benchmark of the point from the
	// recorded trace at trace.BenchPath(TraceDir, bench, 1) instead of the
	// live generator. Replay is bit-identical to live generation, so the
	// deterministic quantities (results digest, IPC, locality) must match a
	// live baseline exactly — only throughput and allocation behaviour
	// change. cmd/elsqtrace record -suites writes a compatible directory.
	TraceDir string
}

// scheme is a matrix row: a label plus the configuration it denotes.
type scheme struct {
	label string
	cfg   config.Config
}

func schemes() []scheme {
	central := config.Default()
	central.LSQ = config.LSQCentral
	svw := config.Default()
	svw.LSQ = config.LSQSVW
	// Contended-fabric rows track the occupancy model's cost relative to
	// the analytic rows above. They are new matrix points: absent from
	// older baselines (Compare iterates the baseline's points, so adding
	// them cannot fail an existing gate) and picked up on the next
	// baseline regeneration.
	contended := config.Default()
	contended.NoC = config.NoCContended
	contendedSteal := config.Default()
	contendedSteal.NoC = config.NoCContended
	contendedSteal.Place = config.PlaceSteal
	// Classifier rows track the predictive HL/LL split policies
	// (internal/predict) against the reactive default; like the fabric rows
	// they are new matrix points absent from older baselines.
	pred := config.Default()
	pred.Class = config.ClassCacheLevel
	delay := config.Default()
	delay.Class = config.ClassDelayTrack
	return []scheme{
		{"elsq", config.Default()},
		{"ooo64", config.OoO64()},
		{"central", central},
		{"svw", svw},
		{"elsq-noc", contended},
		{"elsq-noc-steal", contendedSteal},
		{"elsq-pred", pred},
		{"elsq-delay", delay},
	}
}

func suiteLabel(s workload.Suite) string {
	if s == workload.SuiteInt {
		return "int"
	}
	return "fp"
}

// Matrix expands the fixed (scheme × suite × budget) measurement matrix.
// smokeOnly restricts it to the smoke budget (the per-PR CI matrix); the
// full matrix adds the deep budget for the two headline schemes.
func Matrix(smokeOnly bool) []Point {
	var out []Point
	suites := []workload.Suite{workload.SuiteInt, workload.SuiteFP}
	for _, sc := range schemes() {
		for _, su := range suites {
			out = append(out, newPoint(sc, su, SmokeBudget))
		}
	}
	if !smokeOnly {
		for _, sc := range schemes()[:2] { // elsq + ooo64
			for _, su := range suites {
				out = append(out, newPoint(sc, su, DeepBudget))
			}
		}
	}
	return out
}

func newPoint(sc scheme, su workload.Suite, b Budget) Point {
	return Point{
		Name:   fmt.Sprintf("%s/%s/%s", sc.label, suiteLabel(su), b.Name),
		Scheme: sc.label,
		Suite:  su,
		Budget: b,
		Config: sc.cfg.WithBudget(b.Measure, b.Warmup),
	}
}

// PointResult is the measured outcome of one point.
type PointResult struct {
	// Name, Scheme, Suite and Budget identify the point.
	Name   string `json:"name"`
	Scheme string `json:"scheme"`
	Suite  string `json:"suite"`
	Budget string `json:"budget"`
	// Benchmarks is the number of workloads in the suite.
	Benchmarks int `json:"benchmarks"`
	// Insts is the simulator work per repetition: (warmup + measured) per
	// benchmark, summed over the suite. Throughput counts the whole
	// budget because the warm-up phase is simulator work too (see the
	// budget-semantics note in internal/config).
	Insts uint64 `json:"insts"`
	// Reps is the number of measurement repetitions.
	Reps int `json:"reps"`
	// WallNS holds the wall time of every repetition, in order.
	WallNS []int64 `json:"wall_ns"`
	// InstsPerSec is the best-repetition throughput; the median is the
	// stable figure on noisy hosts.
	InstsPerSec       float64 `json:"insts_per_sec"`
	InstsPerSecMedian float64 `json:"insts_per_sec_median"`
	// AllocsPerInst and BytesPerInst are the heap allocation rates of the
	// best repetition (runtime.MemStats deltas over Insts).
	AllocsPerInst float64 `json:"allocs_per_inst"`
	BytesPerInst  float64 `json:"bytes_per_inst"`
	// MeanIPC is the suite-mean IPC — a headline deterministic metric.
	MeanIPC float64 `json:"mean_ipc"`
	// LoadLocality30 and StoreLocality30 are the suite-mean fractions of
	// loads/stores whose address was ready within 30 cycles of dispatch
	// (the Figure 1 statistic).
	LoadLocality30  float64 `json:"load_locality_30"`
	StoreLocality30 float64 `json:"store_locality_30"`
	// ResultsDigest is a hex digest over every simulation Result of the
	// point (benchmark order, counters sorted by name). Identical inputs
	// must produce identical digests on a given GOARCH; a mismatch against
	// the baseline means simulation results drifted.
	ResultsDigest string `json:"results_digest"`
	// EnergyPJPerInst is the suite total energy (internal/energy, the
	// config's energy.table) per committed instruction; BankPowerDownFrac
	// is the suite-mean powered-down fraction of the FMC LL-LSQ banks (the
	// paper's Figure 11 claim, 0 for non-FMC schemes); EnergyDigest folds
	// every benchmark's energy report into one hex digest. All three are
	// deterministic; they post-date older baselines (omitempty), and
	// Compare checks the digest only when the baseline carries one.
	EnergyPJPerInst   float64 `json:"energy_pj_per_inst,omitempty"`
	BankPowerDownFrac float64 `json:"bank_power_down_frac,omitempty"`
	EnergyDigest      string  `json:"energy_digest,omitempty"`
}

// Run measures one point: reps repetitions over the whole suite, each
// repetition simulating every benchmark once with live generation, plus the
// deterministic metrics from the final repetition's results.
func (p Point) Run(reps int) (PointResult, error) {
	if reps < 1 {
		reps = 1
	}
	profs := workload.SuiteOf(p.Suite)
	perRun := (p.Budget.Measure + p.Budget.Warmup) * uint64(len(profs))
	pr := PointResult{
		Name:       p.Name,
		Scheme:     p.Scheme,
		Suite:      suiteLabel(p.Suite),
		Budget:     p.Budget.Name,
		Benchmarks: len(profs),
		Insts:      perRun,
		Reps:       reps,
	}
	var results []*cpu.Result
	bestNS := int64(math.MaxInt64)
	var ms0, ms1 runtime.MemStats
	for rep := 0; rep < reps; rep++ {
		results = results[:0]
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for _, prof := range profs {
			out, err := p.point(prof).Run(nil)
			if err != nil {
				return pr, fmt.Errorf("bench %s/%s: %w", p.Name, prof.Name, err)
			}
			results = append(results, out.Result)
		}
		wall := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		pr.WallNS = append(pr.WallNS, wall)
		if wall < bestNS {
			bestNS = wall
			pr.AllocsPerInst = float64(ms1.Mallocs-ms0.Mallocs) / float64(perRun)
			pr.BytesPerInst = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(perRun)
		}
	}
	pr.InstsPerSec = float64(perRun) / (float64(bestNS) / 1e9)
	pr.InstsPerSecMedian = float64(perRun) / (float64(medianNS(pr.WallNS)) / 1e9)
	var ipc, lf, sf float64
	for _, r := range results {
		ipc += r.IPC
		lf += r.LoadDist.FracWithin(30)
		sf += r.StoreDist.FracWithin(30)
	}
	n := float64(len(results))
	pr.MeanIPC = ipc / n
	pr.LoadLocality30 = lf / n
	pr.StoreLocality30 = sf / n
	pr.ResultsDigest = digestResults(results)
	// Energy mapping runs after the timed repetitions so it never lands in
	// an allocation-measurement window (the counters themselves ride
	// pre-interned handles and cost the hot path nothing).
	eh := sha256.New()
	var totalPJ float64
	var committed uint64
	var pd float64
	for i, prof := range profs {
		cfg := p.config(prof)
		rep, err := energy.Compute(&cfg, results[i])
		if err != nil {
			return pr, fmt.Errorf("bench %s/%s: %w", p.Name, prof.Name, err)
		}
		totalPJ += rep.TotalPJ
		committed += results[i].Committed
		pd += rep.BankPowerDownFrac
		eh.Write([]byte(rep.Digest()))
	}
	if committed > 0 {
		pr.EnergyPJPerInst = totalPJ / float64(committed)
	}
	pr.BankPowerDownFrac = pd / n
	pr.EnergyDigest = hex.EncodeToString(eh.Sum(nil)[:16])
	return pr, nil
}

// config returns the point's configuration bound to one benchmark: the
// shared configuration, plus the benchmark's trace binding in TraceDir
// mode.
func (p Point) config(prof workload.Profile) config.Config {
	cfg := p.Config
	if p.TraceDir != "" {
		cfg.TracePath = trace.BenchPath(p.TraceDir, prof.Name, 1)
	}
	return cfg
}

// point maps one benchmark of the point onto the simrun API.
func (p Point) point(prof workload.Profile) simrun.Point {
	return simrun.Point{Config: p.config(prof), Bench: prof.Name, Seed: 1}
}

func medianNS(ns []int64) int64 {
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s)%2 == 0 {
		return (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return s[len(s)/2]
}

// digestResults folds every deterministic field of the results into one
// digest: committed counts, cycle counts, IPC bits, sorted counters, both
// histograms and the activity statistics.
func digestResults(results []*cpu.Result) string {
	h := sha256.New()
	w := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, r := range results {
		h.Write([]byte(r.Bench))
		h.Write([]byte{0})
		h.Write([]byte(r.Config))
		h.Write([]byte{0})
		w(r.Committed)
		w(uint64(r.Cycles))
		w(math.Float64bits(r.IPC))
		snap := r.Counters.Snapshot()
		names := make([]string, 0, len(snap))
		for k := range snap {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			h.Write([]byte(k))
			h.Write([]byte{0})
			w(snap[k])
		}
		w(r.LoadDist.Total)
		w(r.LoadDist.Overflow)
		for _, c := range r.LoadDist.Counts {
			w(c)
		}
		w(r.StoreDist.Total)
		w(r.StoreDist.Overflow)
		for _, c := range r.StoreDist.Counts {
			w(c)
		}
		w(math.Float64bits(r.LLIdleFrac))
		w(math.Float64bits(r.AvgEpochs))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
