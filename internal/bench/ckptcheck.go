package bench

// Checkpoint verification and speed accounting for the regression harness:
// VerifyResume proves (by digest) that checkpoint-resumed simulation is
// bit-identical to full-warm-up simulation, and CheckpointSpeedup measures
// the wall-clock effect of sharing one warm-up across a config sweep —
// the bench-smoke CI gate runs the former, PR descriptions quote the
// latter.

import (
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ResumeCheck is the outcome of one point's full-vs-resumed comparison.
type ResumeCheck struct {
	// Name is the point's matrix name.
	Name string `json:"name"`
	// FullDigest and ResumedDigest are the results digests of the
	// full-warm-up and checkpoint-resumed runs; the harness requires them
	// equal.
	FullDigest    string `json:"full_digest"`
	ResumedDigest string `json:"resumed_digest"`
	// FullNS and ResumedNS are the wall times of the two runs (the resumed
	// run includes its checkpoint builds).
	FullNS    int64 `json:"full_ns"`
	ResumedNS int64 `json:"resumed_ns"`
}

// OK reports whether the two runs produced identical results.
func (c ResumeCheck) OK() bool { return c.FullDigest == c.ResumedDigest }

// VerifyResume runs the point's whole suite once with full functional
// warm-up and once resumed from freshly built checkpoints, and returns both
// results digests. Any mismatch means checkpoint restore failed to
// reproduce warm state bit-exactly. Like Run, it honours TraceDir: a
// trace-driven point verifies the trace-backed build/resume path.
func (p Point) VerifyResume() (ResumeCheck, error) {
	out := ResumeCheck{Name: p.Name}
	profs := workload.SuiteOf(p.Suite)

	start := time.Now()
	var full []*cpu.Result
	for _, prof := range profs {
		res, err := p.point(prof).Run(nil)
		if err != nil {
			return out, fmt.Errorf("bench %s/%s: %w", p.Name, prof.Name, err)
		}
		full = append(full, res.Result)
	}
	out.FullNS = time.Since(start).Nanoseconds()
	out.FullDigest = digestResults(full)

	start = time.Now()
	var resumed []*cpu.Result
	for _, prof := range profs {
		cfg := p.config(prof)
		snap, err := ckpt.Build(&cfg, prof, 1)
		if err != nil {
			return out, fmt.Errorf("bench %s/%s: build checkpoint: %w", p.Name, prof.Name, err)
		}
		pt := p.point(prof)
		pt.Snapshot = snap
		res, err := pt.Run(nil)
		if err != nil {
			return out, fmt.Errorf("bench %s/%s: resume: %w", p.Name, prof.Name, err)
		}
		resumed = append(resumed, res.Result)
	}
	out.ResumedNS = time.Since(start).Nanoseconds()
	out.ResumedDigest = digestResults(resumed)
	return out, nil
}

// SpeedupResult is the outcome of one CheckpointSpeedup measurement.
type SpeedupResult struct {
	// Bench and Configs identify the sweep.
	Bench   string   `json:"bench"`
	Configs []string `json:"configs"`
	// Insts is the total simulated work of the full-warm-up sweep
	// ((warmup+measure) per config); the shared sweeps warm up at most once.
	Insts uint64 `json:"insts"`
	// FullNS is the wall time of the sweep paying a full warm-up per
	// config. ColdNS shares one checkpoint built inside the measured run
	// (first sweep against an empty store; its ceiling for K configs is
	// K×(W+m)/(W+K×m) < K). WarmNS resumes every config from the
	// already-populated store — the steady state of iterating on a sweep
	// or pre-building with elsqckpt — and scales past K×.
	FullNS int64 `json:"full_ns"`
	ColdNS int64 `json:"cold_ns"`
	WarmNS int64 `json:"warm_ns"`
	// Match reports whether all three sweeps produced identical results.
	Match bool `json:"match"`
}

// ColdSpeedup returns FullNS/ColdNS (checkpoint built inside the run).
func (r SpeedupResult) ColdSpeedup() float64 { return ratio(r.FullNS, r.ColdNS) }

// WarmSpeedup returns FullNS/WarmNS (checkpoint served from the store).
func (r SpeedupResult) WarmSpeedup() float64 { return ratio(r.FullNS, r.WarmNS) }

func ratio(a, b int64) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// CheckpointSpeedup times one benchmark swept over the given configurations
// — which must share a warm-up identity (equal cache geometry and
// WarmupInsts) — three ways at equal measured instructions: a full warm-up
// per config, warm-up shared via a checkpoint built in-run, and warm-up
// resumed from an existing store. Runs are sequential (Workers=1) and
// uncached so the comparison is pure simulation time.
func CheckpointSpeedup(bench string, seed uint64, configs []config.Config) (SpeedupResult, error) {
	res := SpeedupResult{Bench: bench}
	prof, err := workload.ByName(bench)
	if err != nil {
		return res, err
	}
	var jobs []sweep.Job
	for _, cfg := range configs {
		if cfg.WarmKey() != configs[0].WarmKey() {
			return res, fmt.Errorf("bench: config %s has a different warm-up identity", cfg.Name())
		}
		res.Configs = append(res.Configs, cfg.Name())
		res.Insts += cfg.WarmupInsts + cfg.MaxInsts
		jobs = append(jobs, sweep.Job{Config: cfg, Bench: prof, Seed: seed})
	}

	// Batching is disabled in all three runners: a batch group shares its
	// warm-up in-run regardless of the store, which would erase exactly the
	// full-vs-shared contrast this measurement exists to expose.
	full := &sweep.Runner{Workers: 1, Batch: -1}
	start := time.Now()
	fullOut, _, err := full.Run(jobs)
	if err != nil {
		return res, err
	}
	res.FullNS = time.Since(start).Nanoseconds()

	store := ckpt.NewMemStore()
	shared := &sweep.Runner{Workers: 1, Checkpoints: store, Batch: -1}
	start = time.Now()
	coldOut, _, err := shared.Run(jobs)
	if err != nil {
		return res, err
	}
	res.ColdNS = time.Since(start).Nanoseconds()

	start = time.Now()
	warmOut, _, err := shared.Run(jobs)
	if err != nil {
		return res, err
	}
	res.WarmNS = time.Since(start).Nanoseconds()

	digest := func(out []sweep.Outcome) string {
		var rs []*cpu.Result
		for i := range out {
			rs = append(rs, out[i].Result)
		}
		return digestResults(rs)
	}
	want := digest(fullOut)
	res.Match = digest(coldOut) == want && digest(warmOut) == want
	return res, nil
}
