package bench

// Batch verification for the regression harness: VerifyBatch proves (by
// digest) that the lane-parallel batch engine produces bit-identical,
// oracle-certified results for every lane, and measures its aggregate
// throughput against the same points run sequentially scalar — the
// "-batch" mode of cmd/elsqbench and the bench-smoke CI gate.

import (
	"fmt"
	"time"

	"repro/internal/cpu"
	"repro/internal/simrun"
	"repro/internal/workload"
)

// BatchCheck is the outcome of one point's scalar-vs-batched comparison.
type BatchCheck struct {
	// Name is the point's matrix name; Bench the benchmark the lanes ran.
	Name  string `json:"name"`
	Bench string `json:"bench"`
	// Lanes is how many same-warm-up configurations ran (each lane varies
	// MispredictPenalty so per-lane results are distinct).
	Lanes int `json:"lanes"`
	// Batched reports that every lane actually executed on the batch
	// engine (a singleton group would fall back to scalar and prove
	// nothing).
	Batched bool `json:"batched"`
	// ScalarDigest and BatchDigest are the results digests of the
	// sequential scalar runs and the batched runs, in lane order; the
	// harness requires them equal.
	ScalarDigest string `json:"scalar_digest"`
	BatchDigest  string `json:"batch_digest"`
	// OracleViolations counts differential-oracle violations across every
	// batched lane (each lane runs with a checker attached).
	OracleViolations uint64 `json:"oracle_violations"`
	// Insts is the aggregate simulated work of the scalar pass: each
	// lane's warm-up plus measured budget.
	Insts uint64 `json:"insts"`
	// ScalarNS and BatchNS are the wall times of the two passes (the
	// batched pass includes its shared warm-up build).
	ScalarNS int64 `json:"scalar_ns"`
	BatchNS  int64 `json:"batch_ns"`
}

// OK reports whether the batched pass reproduced the scalar results
// bit-exactly, every lane really batched, and the oracle stayed clean.
func (c BatchCheck) OK() bool {
	return c.Batched && c.ScalarDigest == c.BatchDigest && c.OracleViolations == 0
}

// Speedup returns ScalarNS/BatchNS — the aggregate-throughput advantage of
// running the lanes on the batch engine instead of sequentially.
func (c BatchCheck) Speedup() float64 { return ratio(c.ScalarNS, c.BatchNS) }

// VerifyBatch runs lanes warm-up-compatible variants of the point's
// configuration — lane k gets MispredictPenalty+k, a timing-only axis, so
// every lane produces a distinct result from one shared warm-up — over the
// first benchmark of the point's suite, once sequentially scalar and once
// through simrun.RunBatch, and compares the results digests lane by lane.
// The two timed passes run bare so the speedup measures the engine, not the
// checker; a third, untimed batched pass attaches the differential oracle
// to every lane and must both certify clean and reproduce the same digest.
func (p Point) VerifyBatch(lanes int) (BatchCheck, error) {
	if lanes < 2 {
		lanes = 2
	}
	prof := workload.SuiteOf(p.Suite)[0]
	out := BatchCheck{Name: p.Name, Bench: prof.Name, Lanes: lanes}
	points := make([]simrun.Point, lanes)
	for k := range points {
		pt := p.point(prof)
		pt.Config.MispredictPenalty += k
		points[k] = pt
		out.Insts += pt.Config.WarmupInsts + pt.Config.MaxInsts
	}

	start := time.Now()
	scalar := make([]*cpu.Result, lanes)
	for k := range points {
		res, err := points[k].Run(nil)
		if err != nil {
			return out, fmt.Errorf("bench %s: scalar lane %d: %w", p.Name, k, err)
		}
		scalar[k] = res.Result
	}
	out.ScalarNS = time.Since(start).Nanoseconds()
	out.ScalarDigest = digestResults(scalar)

	start = time.Now()
	outs, err := simrun.RunBatch(nil, points)
	if err != nil {
		return out, fmt.Errorf("bench %s: batch: %w", p.Name, err)
	}
	out.BatchNS = time.Since(start).Nanoseconds()
	batched := make([]*cpu.Result, lanes)
	out.Batched = true
	collect := func(outs []*simrun.Outcome, pass string) error {
		for k, o := range outs {
			if o.Err != nil {
				return fmt.Errorf("bench %s: %s lane %d: %w", p.Name, pass, k, o.Err)
			}
			if !o.Batched {
				out.Batched = false
			}
			if o.Oracle != nil {
				out.OracleViolations += o.Oracle.ViolationCount()
			}
			batched[k] = o.Result
		}
		return nil
	}
	if err := collect(outs, "batch"); err != nil {
		return out, err
	}
	out.BatchDigest = digestResults(batched)

	for k := range points {
		points[k].Oracle = true
	}
	certified, err := simrun.RunBatch(nil, points)
	if err != nil {
		return out, fmt.Errorf("bench %s: certified batch: %w", p.Name, err)
	}
	if err := collect(certified, "certified batch"); err != nil {
		return out, err
	}
	// The observer must not perturb results: the certified pass has to
	// reproduce the bare pass digest exactly, or the comparison above was
	// measuring a different machine than the one the oracle certified.
	if d := digestResults(batched); d != out.BatchDigest {
		return out, fmt.Errorf("bench %s: oracle-attached batch digest %s != bare batch digest %s",
			p.Name, d, out.BatchDigest)
	}
	return out, nil
}
