package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestMatrixShape(t *testing.T) {
	smoke := Matrix(true)
	full := Matrix(false)
	if len(smoke) != 16 {
		t.Fatalf("smoke matrix has %d points, want 16", len(smoke))
	}
	if len(full) != 20 {
		t.Fatalf("full matrix has %d points, want 20", len(full))
	}
	seen := map[string]bool{}
	for _, p := range full {
		if seen[p.Name] {
			t.Errorf("duplicate point %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Config.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", p.Name, err)
		}
		if p.Config.MaxInsts != p.Budget.Measure || p.Config.WarmupInsts != p.Budget.Warmup {
			t.Errorf("%s: budget not applied to config", p.Name)
		}
		if !strings.Contains(p.Name, p.Budget.Name) {
			t.Errorf("%s: name does not carry budget %q", p.Name, p.Budget.Name)
		}
	}
	for _, p := range smoke {
		if p.Budget.Name != SmokeBudget.Name {
			t.Errorf("smoke matrix contains %s", p.Name)
		}
	}
}

// tinyPoint is a fast measurement point for tests.
func tinyPoint() Point {
	cfg := config.Default().WithBudget(2_000, 10_000)
	return Point{
		Name:   "elsq/fp/tiny",
		Scheme: "elsq",
		Suite:  workload.SuiteFP,
		Budget: Budget{Name: "tiny", Measure: 2_000, Warmup: 10_000},
		Config: cfg,
	}
}

func TestPointRunDeterministicMetrics(t *testing.T) {
	a, err := tinyPoint().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyPoint().Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.ResultsDigest != b.ResultsDigest {
		t.Errorf("results digest differs across runs: %s vs %s", a.ResultsDigest, b.ResultsDigest)
	}
	if a.MeanIPC != b.MeanIPC || a.LoadLocality30 != b.LoadLocality30 || a.StoreLocality30 != b.StoreLocality30 {
		t.Errorf("deterministic metrics differ across runs: %+v vs %+v", a, b)
	}
	if a.InstsPerSec <= 0 || len(a.WallNS) != 1 || len(b.WallNS) != 2 {
		t.Errorf("throughput bookkeeping wrong: %+v / %+v", a, b)
	}
	if a.Benchmarks != len(workload.FPSuite()) {
		t.Errorf("point covered %d benchmarks, want the FP suite", a.Benchmarks)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	pr, err := tinyPoint().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	art := NewArtifact([]PointResult{pr})
	dir := t.TempDir()
	path, err := art.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "BENCH_") || !strings.HasSuffix(path, ".json") {
		t.Errorf("artifact name %q does not follow BENCH_<timestamp>.json", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 1 || !reflect.DeepEqual(got.Points[0], pr) {
		t.Errorf("artifact round trip changed the point: %+v", got.Points[0])
	}
	if got.Schema != SchemaVersion {
		t.Errorf("schema %d after round trip", got.Schema)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	art := NewArtifact(nil)
	art.Schema = SchemaVersion + 1
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted a mismatched schema")
	}
}

func mkArtifact(p PointResult) *Artifact {
	a := NewArtifact([]PointResult{p})
	a.CreatedAt = time.Unix(0, 0).UTC()
	return a
}

func basePoint() PointResult {
	return PointResult{
		Name:              "elsq/fp/smoke",
		InstsPerSecMedian: 50e6,
		AllocsPerInst:     0.01,
		ResultsDigest:     "aaaa",
		MeanIPC:           2.5,
	}
}

func TestCompare(t *testing.T) {
	tol := DefaultTolerance()

	t.Run("clean", func(t *testing.T) {
		if regs := Compare(mkArtifact(basePoint()), mkArtifact(basePoint()), tol); len(regs) != 0 {
			t.Errorf("unexpected regressions: %v", regs)
		}
	})
	t.Run("metric drift", func(t *testing.T) {
		cur := basePoint()
		cur.ResultsDigest = "bbbb"
		regs := Compare(mkArtifact(basePoint()), mkArtifact(cur), tol)
		if len(regs) != 1 || regs[0].Kind != "metric-drift" {
			t.Errorf("want one metric-drift, got %v", regs)
		}
	})
	t.Run("arch mismatch fails loudly", func(t *testing.T) {
		cur := basePoint()
		cur.ResultsDigest = "bbbb"
		fresh := mkArtifact(cur)
		fresh.GOARCH = "arm64"
		regs := Compare(mkArtifact(basePoint()), fresh, tol)
		if len(regs) != 1 || regs[0].Kind != "arch-mismatch" {
			t.Errorf("want one arch-mismatch (digests not comparable), got %v", regs)
		}
	})
	t.Run("allocs regression", func(t *testing.T) {
		cur := basePoint()
		cur.AllocsPerInst = 0.5
		regs := Compare(mkArtifact(basePoint()), mkArtifact(cur), tol)
		if len(regs) != 1 || regs[0].Kind != "allocs" {
			t.Errorf("want one allocs regression, got %v", regs)
		}
	})
	t.Run("throughput only when enforced", func(t *testing.T) {
		cur := basePoint()
		cur.InstsPerSecMedian = 20e6
		if regs := Compare(mkArtifact(basePoint()), mkArtifact(cur), tol); len(regs) != 0 {
			t.Errorf("throughput enforced by default: %v", regs)
		}
		etol := tol
		etol.EnforceThroughput = true
		regs := Compare(mkArtifact(basePoint()), mkArtifact(cur), etol)
		if len(regs) != 1 || regs[0].Kind != "throughput" {
			t.Errorf("want one throughput regression, got %v", regs)
		}
	})
	t.Run("missing point", func(t *testing.T) {
		fresh := NewArtifact(nil)
		regs := Compare(mkArtifact(basePoint()), fresh, tol)
		if len(regs) != 1 || regs[0].Kind != "missing-point" {
			t.Errorf("want one missing-point, got %v", regs)
		}
	})
}

// TestCompareTolaranceBandFormatting pins the band rendering in regression
// messages: fractional percentages must survive (0.125 is a "12.5%" band,
// not a truncated "12%"), and round bands stay clean.
func TestCompareTolaranceBandFormatting(t *testing.T) {
	cur := basePoint()
	cur.InstsPerSecMedian = 20e6
	cur.AllocsPerInst = 0.5
	tol := Tolerance{Throughput: 0.125, EnforceThroughput: true, Allocs: 0.105}
	regs := Compare(mkArtifact(basePoint()), mkArtifact(cur), tol)
	if len(regs) != 2 {
		t.Fatalf("want allocs + throughput regressions, got %v", regs)
	}
	details := regs[0].Detail + "\n" + regs[1].Detail
	for _, want := range []string{"10.5%", "12.5%"} {
		if !strings.Contains(details, want) {
			t.Errorf("band %q missing from regression messages:\n%s", want, details)
		}
	}
	for _, stale := range []string{"(band 12%)", "than 10%"} {
		if strings.Contains(details, stale) {
			t.Errorf("truncated band %q still rendered:\n%s", stale, details)
		}
	}

	// Round bands render without spurious decimals.
	regs = Compare(mkArtifact(basePoint()), mkArtifact(cur),
		Tolerance{Throughput: 0.25, EnforceThroughput: true, Allocs: 0.10})
	details = regs[0].Detail + "\n" + regs[1].Detail
	for _, want := range []string{"10%", "25%"} {
		if !strings.Contains(details, want) {
			t.Errorf("band %q missing from regression messages:\n%s", want, details)
		}
	}

	// Sub-0.1% bands keep full precision instead of the three significant
	// digits %.3g used to clamp them to.
	if got, want := pct(0.000625), "0.0625%"; got != want {
		t.Errorf("pct(0.000625) = %q, want %q", got, want)
	}
	if got, want := pct(0.0012345), "0.12345%"; got != want {
		t.Errorf("pct(0.0012345) = %q, want %q", got, want)
	}
	if got, want := pct(0.25), "25%"; got != want {
		t.Errorf("pct(0.25) = %q, want %q", got, want)
	}
}

// TestPointRunFromTraces checks the trace-driven bench mode: a point run
// from a directory of recordings produces the exact results digest of the
// live-generator run — the deterministic class of the regression gate is
// preserved under replay.
func TestPointRunFromTraces(t *testing.T) {
	p := Point{
		Name:   "elsq/int/tiny",
		Scheme: "elsq",
		Suite:  workload.SuiteInt,
		Budget: Budget{Name: "tiny", Measure: 1_000, Warmup: 4_000},
		Config: config.Default().WithBudget(1_000, 4_000),
	}
	dir := t.TempDir()
	for _, prof := range workload.SuiteOf(p.Suite) {
		f, err := os.Create(trace.BenchPath(dir, prof.Name, 1))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := trace.NewRecorder(f, prof.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Record(p.Budget.Measure + p.Budget.Warmup); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	live, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	p.TraceDir = dir
	traced, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if traced.ResultsDigest != live.ResultsDigest {
		t.Errorf("trace-driven digest %s != live digest %s", traced.ResultsDigest, live.ResultsDigest)
	}
	if traced.MeanIPC != live.MeanIPC {
		t.Errorf("trace-driven IPC %v != live %v", traced.MeanIPC, live.MeanIPC)
	}

	// The resume gate must exercise the trace-backed checkpoint path too:
	// digests of the trace-driven full and resumed runs agree with each
	// other and with the live run.
	chk, err := p.VerifyResume()
	if err != nil {
		t.Fatal(err)
	}
	if !chk.OK() {
		t.Errorf("trace-driven resume digest %s != full digest %s", chk.ResumedDigest, chk.FullDigest)
	}
	if chk.FullDigest != live.ResultsDigest {
		t.Errorf("trace-driven resume-check digest %s != live digest %s", chk.FullDigest, live.ResultsDigest)
	}

	// A missing recording fails with the benchmark named, not a zero result.
	p.TraceDir = t.TempDir()
	if _, err := p.Run(1); err == nil {
		t.Error("point ran with an empty trace directory")
	}
}

// TestVerifyResume gates the checkpoint determinism promise at the bench
// layer: full-warm-up and checkpoint-resumed digests must agree.
func TestVerifyResume(t *testing.T) {
	p := newPoint(schemes()[0], workload.SuiteFP, Budget{Name: "tiny", Measure: 2_000, Warmup: 20_000})
	chk, err := p.VerifyResume()
	if err != nil {
		t.Fatal(err)
	}
	if !chk.OK() {
		t.Errorf("resumed digest %s != full digest %s", chk.ResumedDigest, chk.FullDigest)
	}
}

// TestCheckpointSpeedup checks the speedup harness end to end: all three
// sweeps must match bit-exactly, and the store-resumed sweep must win once
// warm-up dominates the budget. The thresholds are deliberately loose —
// the real numbers (6x+ warm at the 2.5M-warm-up smoke point) belong to
// elsqbench -ckpt-speedup, not a CI assertion on a noisy host.
func TestCheckpointSpeedup(t *testing.T) {
	mk := func(mut func(*config.Config)) config.Config {
		cfg := config.Default().WithBudget(2_000, 400_000)
		if mut != nil {
			mut(&cfg)
		}
		return cfg
	}
	res, err := CheckpointSpeedup("swim", 1, []config.Config{
		mk(nil),
		mk(func(c *config.Config) { c.ERT = config.ERTLine }),
		mk(func(c *config.Config) { c.MigrateThreshold = 24 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatal("checkpoint-shared sweep results diverged from full-warm-up sweep")
	}
	if res.WarmSpeedup() < 1.3 {
		t.Errorf("warm-store speedup %.2fx, want >= 1.3x at a warm-up-dominated budget", res.WarmSpeedup())
	}
}

// Every point of the smoke matrix must pass differential-oracle
// certification: the committed-load values of all four schemes over both
// suites match the sequential reference byte-for-byte. The budget is
// reduced — the test pins the structural wiring; the full smoke-budget
// certification runs in CI via `elsqbench -smoke -oracle`.
func TestSmokeMatrixCertifiedByOracle(t *testing.T) {
	for _, p := range Matrix(true) {
		p.Config = p.Config.WithBudget(2000, 5000)
		rep, err := p.Certify()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !rep.OK() {
			t.Errorf("%s: %d violation(s): %s", p.Name, rep.Violations, rep.First)
		}
		if rep.Loads == 0 || rep.CheckedBytes == 0 {
			t.Errorf("%s: oracle certified nothing (loads %d, bytes %d)", p.Name, rep.Loads, rep.CheckedBytes)
		}
	}
}
