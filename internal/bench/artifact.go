package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"
)

// SchemaVersion identifies the artifact layout. Bump on incompatible
// changes so Compare refuses to diff mismatched artifacts instead of
// misreading them.
const SchemaVersion = 1

// Artifact is the versioned on-disk form of one bench run
// (BENCH_<timestamp>.json) and of the committed bench/baseline.json.
type Artifact struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// CreatedAt is the measurement time (RFC 3339).
	CreatedAt time.Time `json:"created_at"`
	// GoVersion, GOOS, GOARCH and NumCPU describe the measuring host;
	// throughput numbers are only comparable between like hosts, digests
	// between like GOARCH.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Points holds one entry per matrix point, in matrix order.
	Points []PointResult `json:"points"`
}

// NewArtifact wraps measured points with host metadata.
func NewArtifact(points []PointResult) *Artifact {
	return &Artifact{
		Schema:    SchemaVersion,
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Points:    points,
	}
}

// Filename returns the canonical artifact name for the creation time.
func (a *Artifact) Filename() string {
	return "BENCH_" + a.CreatedAt.Format("20060102T150405Z") + ".json"
}

// Write stores the artifact under dir with its canonical name and returns
// the full path.
func (a *Artifact) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, a.Filename())
	return path, a.WriteFile(path)
}

// WriteFile stores the artifact at an explicit path (e.g. the committed
// baseline).
func (a *Artifact) WriteFile(path string) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Load reads an artifact and validates its schema.
func Load(path string) (*Artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if a.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %d, this binary speaks %d", path, a.Schema, SchemaVersion)
	}
	return &a, nil
}

// Tolerance configures Compare's regression bands.
type Tolerance struct {
	// Throughput is the accepted fractional insts/sec loss (median-based)
	// before a regression is reported, e.g. 0.25 = fail beyond a 25% loss.
	// Only applied when EnforceThroughput is set: wall-clock numbers are
	// not comparable across hosts.
	Throughput        float64
	EnforceThroughput bool
	// Allocs is the accepted fractional allocations-per-instruction
	// increase. Allocation counts are a property of the code, not the
	// host; the band only absorbs runtime-version variation.
	Allocs float64
}

// DefaultTolerance matches the CI bench-smoke gate.
func DefaultTolerance() Tolerance {
	return Tolerance{Throughput: 0.25, EnforceThroughput: false, Allocs: 0.10}
}

// Regression is one comparison failure.
type Regression struct {
	// Point names the matrix point.
	Point string
	// Kind classifies the failure: "metric-drift", "energy-drift",
	// "allocs", "throughput", or "missing-point".
	Kind string
	// Detail is the human-readable explanation.
	Detail string
}

// String renders the regression as "point: [kind] detail".
func (r Regression) String() string {
	return fmt.Sprintf("%s: [%s] %s", r.Point, r.Kind, r.Detail)
}

// Compare diffs a fresh artifact against a baseline and returns every
// regression beyond tol. Points present only in one artifact are compared
// on the intersection; a baseline point missing from the fresh run is a
// failure (coverage must not silently shrink). Deterministic metrics
// (results digest and the derived headline metrics) must match exactly
// when both artifacts come from the same GOARCH.
func Compare(baseline, fresh *Artifact, tol Tolerance) []Regression {
	var regs []Regression
	freshBy := make(map[string]PointResult, len(fresh.Points))
	for _, p := range fresh.Points {
		freshBy[p.Name] = p
	}
	sameArch := baseline.GOARCH == fresh.GOARCH
	if !sameArch {
		// Digest comparison is only meaningful within one GOARCH. Failing
		// loudly here keeps the deterministic class of the gate from
		// evaporating silently: a baseline regenerated on a different
		// architecture must be regenerated on the enforcing one.
		regs = append(regs, Regression{Point: "(artifact)", Kind: "arch-mismatch",
			Detail: fmt.Sprintf("baseline GOARCH %s != %s: results digests cannot be compared — regenerate the baseline on %s",
				baseline.GOARCH, fresh.GOARCH, fresh.GOARCH)})
	}
	for _, old := range baseline.Points {
		cur, ok := freshBy[old.Name]
		if !ok {
			regs = append(regs, Regression{Point: old.Name, Kind: "missing-point",
				Detail: "present in baseline but not measured"})
			continue
		}
		if sameArch && cur.ResultsDigest != old.ResultsDigest {
			regs = append(regs, Regression{Point: old.Name, Kind: "metric-drift",
				Detail: fmt.Sprintf("results digest %s != baseline %s (IPC %.4f vs %.4f): simulation output changed — if intended, regenerate the baseline and bump the sweep cache version",
					cur.ResultsDigest, old.ResultsDigest, cur.MeanIPC, old.MeanIPC)})
		}
		// Energy digests are deterministic like results digests but post-date
		// older baselines: enforced only when the baseline recorded one.
		if sameArch && old.EnergyDigest != "" && cur.EnergyDigest != old.EnergyDigest {
			regs = append(regs, Regression{Point: old.Name, Kind: "energy-drift",
				Detail: fmt.Sprintf("energy digest %s != baseline %s (%.1f vs %.1f pJ/inst): activity counters or the energy table changed — if intended, regenerate the baseline",
					cur.EnergyDigest, old.EnergyDigest, cur.EnergyPJPerInst, old.EnergyPJPerInst)})
		}
		if old.AllocsPerInst >= 0 && cur.AllocsPerInst > old.AllocsPerInst*(1+tol.Allocs)+0.01 {
			regs = append(regs, Regression{Point: old.Name, Kind: "allocs",
				Detail: fmt.Sprintf("allocs/inst %.4f exceeds baseline %.4f by more than %s",
					cur.AllocsPerInst, old.AllocsPerInst, pct(tol.Allocs))})
		}
		if tol.EnforceThroughput && old.InstsPerSecMedian > 0 {
			loss := 1 - cur.InstsPerSecMedian/old.InstsPerSecMedian
			if loss > tol.Throughput {
				regs = append(regs, Regression{Point: old.Name, Kind: "throughput",
					Detail: fmt.Sprintf("median %.2f M insts/s is %.0f%% below baseline %.2f M insts/s (band %s)",
						cur.InstsPerSecMedian/1e6, loss*100, old.InstsPerSecMedian/1e6, pct(tol.Throughput))})
			}
		}
	}
	return regs
}

// pct renders a fractional tolerance band as a percentage. The %.3g
// formatting it replaces truncated non-integer percentages unevenly across
// magnitudes: 0.125 survived as "12.5%" while a sub-0.1% band like
// 0.0012345 collapsed to "0.123%". Ten significant digits absorb the
// frac*100 rounding error while preserving every band a human would write.
func pct(frac float64) string {
	return strconv.FormatFloat(frac*100, 'g', 10, 64) + "%"
}

// DiffTable renders a point-by-point comparison for human eyes.
func DiffTable(baseline, fresh *Artifact) string {
	freshBy := make(map[string]PointResult, len(fresh.Points))
	for _, p := range fresh.Points {
		freshBy[p.Name] = p
	}
	out := fmt.Sprintf("%-18s %14s %14s %8s %12s %8s\n",
		"point", "base M/s", "new M/s", "speedup", "allocs/inst", "digest")
	for _, old := range baseline.Points {
		cur, ok := freshBy[old.Name]
		if !ok {
			out += fmt.Sprintf("%-18s %14s\n", old.Name, "(missing)")
			continue
		}
		mark := "ok"
		if cur.ResultsDigest != old.ResultsDigest {
			mark = "DRIFT"
		}
		out += fmt.Sprintf("%-18s %14.2f %14.2f %7.2fx %12.4f %8s\n",
			old.Name, old.InstsPerSecMedian/1e6, cur.InstsPerSecMedian/1e6,
			cur.InstsPerSecMedian/old.InstsPerSecMedian, cur.AllocsPerInst, mark)
	}
	return out
}
