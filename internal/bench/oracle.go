package bench

import (
	"fmt"

	"repro/internal/oracle"
	"repro/internal/workload"
)

// OracleReport summarises one point's differential-oracle certification:
// every benchmark of the point's suite simulated once with the sequential
// reference model attached to the committed memory-operation stream.
type OracleReport struct {
	// Name is the point's artifact key.
	Name string
	// Loads and Stores are the committed memory ops certified across the
	// suite; CheckedBytes the total load bytes compared byte-wise.
	Loads, Stores, CheckedBytes uint64
	// Violations is the total number of byte-level mismatches.
	Violations uint64
	// First describes the first violation encountered ("" when clean).
	First string
}

// OK reports whether the certification found no violations.
func (r OracleReport) OK() bool { return r.Violations == 0 }

// Certify runs every benchmark of the point once with the differential
// oracle attached and aggregates the certification. It is independent of
// the performance measurement path: Run stays observer-free so throughput
// and allocation figures never include oracle overhead.
func (p Point) Certify() (OracleReport, error) {
	rep := OracleReport{Name: p.Name}
	for _, prof := range workload.SuiteOf(p.Suite) {
		ck := oracle.New(1)
		pt := p.point(prof)
		pt.Observer = ck
		if _, err := pt.Run(nil); err != nil {
			return rep, fmt.Errorf("bench %s/%s: %w", p.Name, prof.Name, err)
		}
		rep.Loads += ck.Loads()
		rep.Stores += ck.Stores()
		rep.CheckedBytes += ck.CheckedBytes()
		rep.Violations += ck.ViolationCount()
		if rep.First == "" {
			if err := ck.Err(); err != nil {
				rep.First = fmt.Sprintf("%s: %v", prof.Name, err)
			}
		}
	}
	return rep, nil
}
