package oracle

import (
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Run simulates one benchmark under cfg with a fresh Checker attached to
// the committed memory-operation stream and returns both. The workload
// source honours cfg.TracePath (trace replay) exactly like the bench and
// sweep drivers; a nil error from Checker.Err certifies every committed
// load of the run against the sequential reference.
func Run(cfg config.Config, bench string, seed uint64) (*cpu.Result, *Checker, error) {
	prof, err := workload.ByName(bench)
	if err != nil {
		return nil, nil, err
	}
	src, err := trace.SourceFor(&cfg, prof, seed)
	if err != nil {
		return nil, nil, err
	}
	sim, err := cpu.New(cfg, src)
	if err != nil {
		return nil, nil, err
	}
	ck := New(0)
	sim.SetCommitObserver(ck)
	return sim.Run(), ck, nil
}
