package oracle_test

import (
	"testing"

	"repro/internal/oracle"
	"repro/internal/simrun"
)

// FuzzSim is the native fuzz target behind cmd/elsqfuzz: a 64-bit seed
// deterministically derives a configuration point (geometry axes via the
// config.Fields registry), a benchmark and a workload seed; the simulation
// must pass differential-oracle certification. Run continuously with
//
//	go test -fuzz=FuzzSim ./internal/oracle
//
// In plain `go test` runs the seed corpus below doubles as a quick
// randomized regression sweep.
func FuzzSim(f *testing.F) {
	for seed := uint64(0); seed < 24; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := oracle.RandomPoint(seed)
		out, err := simrun.Point{Config: p.Config, Bench: p.Bench, Seed: p.Seed, Oracle: true}.Run(nil)
		if err != nil {
			t.Fatalf("%s: %v", p.Label(), err)
		}
		if cerr := out.Oracle.Err(); cerr != nil {
			t.Errorf("%s: %v", p.Label(), cerr)
		}
		if out.Oracle.Loads() == 0 {
			t.Errorf("%s: certified no loads", p.Label())
		}
	})
}

// TestRandomPointDeterminism pins the reproducibility contract: the same
// fuzz seed always derives the same point.
func TestRandomPointDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		a, b := oracle.RandomPoint(seed), oracle.RandomPoint(seed)
		if a.Label() != b.Label() || a.Config != b.Config {
			t.Fatalf("seed %d derived two different points", seed)
		}
		if err := a.Config.Validate(); err != nil {
			t.Fatalf("seed %d: invalid config: %v", seed, err)
		}
	}
}
