package oracle

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// FuzzPoint is one randomized simulation point: a configuration drawn from
// the sweepable-field registry, a benchmark, and a workload seed. The
// fuzz drivers (cmd/elsqfuzz and the native FuzzSim target) shake the
// scheme state space with these and certify every point with a Checker.
type FuzzPoint struct {
	// Config is the derived configuration (always Validate-clean).
	Config config.Config
	// Bench and Seed select the workload instantiation.
	Bench string
	Seed  uint64
}

// Label identifies the point in logs.
func (p FuzzPoint) Label() string {
	return fmt.Sprintf("%s/%s seed %d insts %d warmup %d",
		p.Config.Name(), p.Bench, p.Seed, p.Config.MaxInsts, p.Config.WarmupInsts)
}

// fuzzAxes lists the geometry axes the fuzzer perturbs, addressed through
// the config.Fields registry by their public axis names, each with a
// curated Validate-clean value set. Constraints encoded in the choices:
// cache set counts stay powers of two, fetch.width stays <= 8 (the
// unresolved-store ring's soundness bound), and budgets stay small enough
// that a point simulates in milliseconds.
var fuzzAxes = []struct {
	name   string
	values []string
}{
	{"fetch.width", []string{"1", "2", "4", "8"}},
	{"commit.width", []string{"1", "2", "4", "8"}},
	{"rob.size", []string{"16", "32", "64", "128"}},
	{"iq.int", []string{"8", "20", "40"}},
	{"iq.fp", []string{"8", "20", "40"}},
	{"cache.ports", []string{"1", "2", "4"}},
	{"epochs", []string{"1", "2", "3", "4", "8", "16"}},
	{"epoch.insts", []string{"16", "48", "128", "256"}},
	{"epoch.loads", []string{"4", "16", "64"}},
	{"epoch.stores", []string{"2", "8", "32"}},
	{"me.issue", []string{"1", "2", "4"}},
	{"hl.lq", []string{"4", "8", "32", "64"}},
	{"hl.sq", []string{"2", "6", "24", "48"}},
	{"l1.size", []string{"8K", "16K", "32K"}},
	{"l1.ways", []string{"1", "2", "4"}},
	{"l1.latency", []string{"1", "2"}},
	{"l2.size", []string{"256K", "2M"}},
	{"l2.ways", []string{"4", "8"}},
	{"l2.latency", []string{"6", "10"}},
	{"mem.latency", []string{"100", "400"}},
	{"bus.oneway", []string{"0", "2", "4", "16"}},
	{"mesh.hop", []string{"1", "4"}},
	{"ert", []string{"line", "hash"}},
	{"ert.bits", []string{"4", "8", "10", "14"}},
	{"sqm", []string{"true", "false"}},
	{"disamb", []string{"full", "rsac", "rlac", "rsaclac"}},
	{"ssbf.bits", []string{"4", "8", "10", "14"}},
	{"svw", []string{"blind", "checkstores"}},
	{"migrate.threshold", []string{"8", "48", "192"}},
	{"mispredict.penalty", []string{"2", "8", "20"}},
	{"noc.model", []string{"analytic", "contended"}},
	{"noc.linkwidth", []string{"1", "2", "4"}},
	{"place.policy", []string{"modn", "leastloaded", "steal"}},
	{"class.policy", []string{"reactive", "cachelevel", "delaytrack"}},
	{"class.bits", []string{"6", "8", "10", "12"}},
	{"energy.table", []string{"base", "hp", "lp"}},
}

// schemePoints are the (model, lsq) combinations the pipeline model
// supports.
var schemePoints = [][2]string{
	{"fmc", "elsq"},
	{"fmc", "elsq"}, // weighted: the paper's scheme gets double draws
	{"fmc", "svw"},
	{"fmc", "central"},
	{"ooo", "conventional"},
	{"ooo", "svw"},
}

// RandomPoint derives a deterministic, Validate-clean fuzz point from a
// 64-bit seed: every axis choice, the scheme, the benchmark, the workload
// seed and the instruction budget are functions of seed alone, so a
// reported failure reproduces from its seed.
func RandomPoint(seed uint64) FuzzPoint {
	r := xrand.New(seed ^ 0xE15f0221)
	cfg := config.Default()
	scheme := schemePoints[r.Intn(len(schemePoints))]
	mustSet(&cfg, "model", scheme[0])
	mustSet(&cfg, "lsq", scheme[1])
	for _, ax := range fuzzAxes {
		// Perturb roughly half the axes per point: full-random points are
		// all extreme; mixing in Table 1 defaults explores interactions.
		if r.Bool(0.5) {
			mustSet(&cfg, ax.name, ax.values[r.Intn(len(ax.values))])
		}
	}

	// Small budgets keep a point in the low-millisecond range while still
	// spanning warm-up, sampled measurement and epoch churn.
	cfg.MaxInsts = 500 + r.Uint64n(7500)
	cfg.WarmupInsts = []uint64{0, 2_000, 20_000}[r.Intn(3)]
	if r.Bool(0.25) {
		cfg.SampleIntervals = 2 + r.Intn(3)
		cfg.SampleBleedInsts = 200 + r.Uint64n(1800)
	}

	profs := append(workload.SuiteOf(workload.SuiteInt), workload.SuiteOf(workload.SuiteFP)...)
	bench := profs[r.Intn(len(profs))].Name
	wseed := 1 + r.Uint64n(1<<32)
	if err := cfg.Validate(); err != nil {
		// Unreachable by construction of the value sets; fail loudly if a
		// new axis breaks the invariant.
		panic(fmt.Sprintf("oracle: fuzz point from seed %d invalid: %v", seed, err))
	}
	return FuzzPoint{Config: cfg, Bench: bench, Seed: wseed}
}

// mustSet stamps a registry axis and panics on error (the value sets are
// static; an error is a programming mistake, not an input condition).
func mustSet(cfg *config.Config, name, value string) {
	if err := config.SetField(cfg, name, value); err != nil {
		panic(err)
	}
}
