// Package oracle is the differential correctness oracle of the repository:
// a sequential architectural memory model that consumes the committed-path
// memory-operation stream in program order (through cpu.CommitObserver) and
// certifies, at commit time, that every load the timing model commits
// observed exactly the bytes the sequential semantics require — whichever
// LSQ scheme, replay mode or sampling regime produced the stream.
//
// The simulator is a timing model: it never materialises data values, so
// "observed the right bytes" is checked as provenance. The oracle keeps a
// sparse byte-granular image of memory mapping every byte to the youngest
// committed store that wrote it (its sequence number and commit cycle).
// When a load commits, the sequential semantics require each of its bytes
// to come from the image's current writer (every older store has committed
// by then — commit is in order). The timing model's claim arrives on the
// lsq.MemOp: bytes in FwdMask came from in-flight forwarding out of store
// FwdSeq; the remaining bytes were read from the data cache at cycle
// ReadAt, where they observe exactly the stores committed by ReadAt. A
// byte whose image entry disagrees — a forwarding source that is not the
// youngest older writer, or a cache read that predates the youngest older
// writer's commit — is a certified memory-ordering violation of the scheme
// under test, not a modelling tolerance.
//
// The checker also enforces stream sanity: committed sequence numbers must
// be strictly increasing, commit cycles non-decreasing (in-order commit),
// wrong-path ops must never appear, and footprints must be legal
// (aligned power-of-two, at most 8 bytes — the same invariant the
// ERT/SSBF hash indexing relies on).
package oracle

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/lsq"
)

// pageBits sizes the sparse image pages (2^pageBits bytes per page).
const pageBits = 12

const pageBytes = 1 << pageBits

// page is one resident chunk of the architectural image: per byte, the
// youngest committed writer's sequence number (+1; 0 = initial memory) and
// its commit cycle.
type page struct {
	seq    [pageBytes]uint64
	commit [pageBytes]int64
}

// Violation is one certified mismatch between the timing model's claimed
// load value provenance and the sequential reference.
type Violation struct {
	// Kind classifies the mismatch:
	//   "forward-wrong-store": a forwarded byte's source is not the
	//       youngest older store that wrote it;
	//   "stale-byte": a cache-read byte's youngest older writer committed
	//       after the load's final read;
	//   "wrong-path-op", "out-of-order-stream", "commit-order",
	//   "bad-footprint": committed-stream sanity failures.
	Kind string
	// LoadSeq, Addr and Size identify the offending committed op.
	LoadSeq uint64
	Addr    uint64
	Size    uint8
	// Byte is the offending byte offset within the footprint (-1 when the
	// violation is not byte-specific).
	Byte int
	// WantSeq is the sequence number (+1; 0 = initial memory) of the store
	// the sequential semantics require for the byte.
	WantSeq uint64
	// GotSeq is the claimed forwarding source (+1) for forwarded bytes.
	GotSeq uint64
	// WantCommit is the required store's commit cycle and ReadAt the cycle
	// the timing model claims the byte was read (stale-byte only).
	WantCommit int64
	ReadAt     int64
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	id := fmt.Sprintf("load seq %d addr %#x size %d", v.LoadSeq, v.Addr, v.Size)
	switch v.Kind {
	case "forward-wrong-store":
		return fmt.Sprintf("oracle: %s: %s byte %d forwarded from store seq+1 %d, sequential semantics require %d",
			v.Kind, id, v.Byte, v.GotSeq, v.WantSeq)
	case "stale-byte":
		return fmt.Sprintf("oracle: %s: %s byte %d read from the cache at cycle %d, but its writer (store seq+1 %d) committed at cycle %d",
			v.Kind, id, v.Byte, v.ReadAt, v.WantSeq, v.WantCommit)
	default:
		return fmt.Sprintf("oracle: %s: %s", v.Kind, id)
	}
}

// Checker is the sequential reference model. It implements
// cpu.CommitObserver; attach it with cpu.Sim.SetCommitObserver. The zero
// value is not usable; use New.
type Checker struct {
	pages map[uint64]*page

	lastSeq    uint64 // +1 encoding; 0 = nothing consumed yet
	lastCommit int64

	loads, stores uint64
	checkedBytes  uint64

	violations    []Violation
	maxViolations int
	total         uint64
}

// New returns an empty checker recording at most maxViolations violations
// in detail (further ones are counted but not stored); maxViolations <= 0
// selects a default of 16.
func New(maxViolations int) *Checker {
	if maxViolations <= 0 {
		maxViolations = 16
	}
	return &Checker{
		pages:         make(map[uint64]*page),
		maxViolations: maxViolations,
	}
}

// Loads returns the number of committed loads certified.
func (c *Checker) Loads() uint64 { return c.loads }

// Stores returns the number of committed stores applied to the image.
func (c *Checker) Stores() uint64 { return c.stores }

// CheckedBytes returns the total number of load bytes certified.
func (c *Checker) CheckedBytes() uint64 { return c.checkedBytes }

// ViolationCount returns the total number of violations detected,
// including any beyond the recording cap.
func (c *Checker) ViolationCount() uint64 { return c.total }

// Violations returns the recorded violations in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when every certified load matched the sequential
// reference, or an error describing the first violation and the totals.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return fmt.Errorf("%s (%d violation(s) over %d loads / %d stores)",
		c.violations[0], c.total, c.loads, c.stores)
}

func (c *Checker) report(v Violation) {
	c.total++
	if len(c.violations) < c.maxViolations {
		c.violations = append(c.violations, v)
	}
}

// pageFor returns the resident page covering addr, allocating on first
// touch.
func (c *Checker) pageFor(addr uint64) *page {
	key := addr >> pageBits
	p := c.pages[key]
	if p == nil {
		p = new(page)
		c.pages[key] = p
	}
	return p
}

// sane runs the committed-stream checks shared by loads and stores and
// reports whether the per-byte checks may proceed.
func (c *Checker) sane(op *lsq.MemOp) bool {
	if isa.IsWrongPathSeq(op.Seq) {
		c.report(Violation{Kind: "wrong-path-op", LoadSeq: op.Seq, Addr: op.Addr, Size: op.Size, Byte: -1})
		return false
	}
	if op.Seq+1 <= c.lastSeq {
		c.report(Violation{Kind: "out-of-order-stream", LoadSeq: op.Seq, Addr: op.Addr, Size: op.Size, Byte: -1})
		return false
	}
	c.lastSeq = op.Seq + 1
	if op.Commit < c.lastCommit {
		c.report(Violation{Kind: "commit-order", LoadSeq: op.Seq, Addr: op.Addr, Size: op.Size, Byte: -1})
		return false
	}
	c.lastCommit = op.Commit
	if op.Size == 0 || op.Size > 8 || op.Size&(op.Size-1) != 0 || op.Addr&uint64(op.Size-1) != 0 {
		// Aligned power-of-two footprints are also what keeps an op inside
		// one image page; a crossing op must be reported, not indexed.
		c.report(Violation{Kind: "bad-footprint", LoadSeq: op.Seq, Addr: op.Addr, Size: op.Size, Byte: -1})
		return false
	}
	return true
}

// StoreCommitted implements cpu.CommitObserver: the store's bytes become
// the architectural state.
func (c *Checker) StoreCommitted(op *lsq.MemOp) {
	if !c.sane(op) {
		return
	}
	c.stores++
	p := c.pageFor(op.Addr)
	off := int(op.Addr & (pageBytes - 1))
	// Legal footprints are aligned and <= 8 bytes, so they never cross a
	// page boundary.
	for i := 0; i < int(op.Size); i++ {
		p.seq[off+i] = op.Seq + 1
		p.commit[off+i] = op.Commit
	}
}

// LoadCommitted implements cpu.CommitObserver: every byte of the load is
// certified against the image. Bytes covered by FwdMask must come from
// exactly the youngest older store that wrote them; the remaining bytes
// were read from the cache at ReadAt and must not have a younger-than-read
// committed writer.
func (c *Checker) LoadCommitted(op *lsq.MemOp) {
	if !c.sane(op) {
		return
	}
	c.loads++
	p := c.pageFor(op.Addr)
	off := int(op.Addr & (pageBytes - 1))
	for i := 0; i < int(op.Size); i++ {
		c.checkedBytes++
		want := p.seq[off+i]
		if op.FwdMask&(1<<uint(i)) != 0 {
			if want != op.FwdSeq+1 {
				c.report(Violation{
					Kind: "forward-wrong-store", LoadSeq: op.Seq, Addr: op.Addr, Size: op.Size,
					Byte: i, WantSeq: want, GotSeq: op.FwdSeq + 1,
				})
			}
			continue
		}
		if want != 0 && p.commit[off+i] > op.ReadAt {
			c.report(Violation{
				Kind: "stale-byte", LoadSeq: op.Seq, Addr: op.Addr, Size: op.Size,
				Byte: i, WantSeq: want, WantCommit: p.commit[off+i], ReadAt: op.ReadAt,
			})
		}
	}
}
