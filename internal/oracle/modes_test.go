// Integration tests for the oracle's acceptance bar: every committed load
// value must match the sequential reference byte-for-byte across all LSQ
// schemes, both benchmark suites, and all four driving modes — live
// generation, trace replay, checkpointed resume, and SimPoint-style
// sampling — plus the cross-scheme invariant checks.
package oracle_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/filter"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	testWarmup  uint64 = 6000
	testMeasure uint64 = 2500
)

// schemeConfigs enumerates every LSQ organisation and disambiguation path
// the pipeline model can take, at the test budget.
func schemeConfigs() map[string]config.Config {
	mk := func(mut func(*config.Config)) config.Config {
		cfg := config.Default().WithBudget(testMeasure, testWarmup)
		if mut != nil {
			mut(&cfg)
		}
		return cfg
	}
	return map[string]config.Config{
		"elsq-hash-sqm":   mk(nil),
		"elsq-hash-nosqm": mk(func(c *config.Config) { c.SQM = false }),
		"elsq-line":       mk(func(c *config.Config) { c.ERT = config.ERTLine }),
		"elsq-rsac":       mk(func(c *config.Config) { c.Disamb = config.DisambRSAC }),
		"elsq-rlac":       mk(func(c *config.Config) { c.Disamb = config.DisambRLAC }),
		"elsq-rsaclac":    mk(func(c *config.Config) { c.Disamb = config.DisambRSACLAC }),
		"elsq-clp":        mk(func(c *config.Config) { c.Class = config.ClassCacheLevel }),
		"elsq-dtp":        mk(func(c *config.Config) { c.Class = config.ClassDelayTrack }),
		"central":         mk(func(c *config.Config) { c.LSQ = config.LSQCentral }),
		"svw-fmc":         mk(func(c *config.Config) { c.LSQ = config.LSQSVW }),
		"svw-fmc-check":   mk(func(c *config.Config) { c.LSQ = config.LSQSVW; c.SVW = config.SVWCheckStores }),
		"ooo64":           mk(func(c *config.Config) { c.Model = config.ModelOoO; c.LSQ = config.LSQConventional }),
		"ooo64-svw":       mk(func(c *config.Config) { c.Model = config.ModelOoO; c.LSQ = config.LSQSVW }),
		"ooo64-svw-check": mk(func(c *config.Config) {
			c.Model = config.ModelOoO
			c.LSQ = config.LSQSVW
			c.SVW = config.SVWCheckStores
		}),
	}
}

// certify runs (cfg, bench, seed) under the oracle and fails the test on
// any violation. It returns the result for invariant checks.
func certify(t *testing.T, label string, cfg config.Config, bench string, seed uint64) *cpu.Result {
	t.Helper()
	out, err := simrun.Point{Config: cfg, Bench: bench, Seed: seed, Oracle: true}.Run(nil)
	if err != nil {
		t.Fatalf("%s/%s: %v", label, bench, err)
	}
	if cerr := out.Oracle.Err(); cerr != nil {
		t.Errorf("%s/%s: %v", label, bench, cerr)
	}
	if out.Oracle.Loads() == 0 {
		t.Errorf("%s/%s: oracle certified no loads — the hook is not wired", label, bench)
	}
	return out.Result
}

// TestOracleCleanAllSchemesBothSuites is the live-mode acceptance sweep:
// every scheme over every benchmark of both suites.
func TestOracleCleanAllSchemesBothSuites(t *testing.T) {
	for label, cfg := range schemeConfigs() {
		t.Run(label, func(t *testing.T) {
			for _, suite := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
				for _, prof := range workload.SuiteOf(suite) {
					certify(t, label, cfg, prof.Name, 1)
				}
			}
		})
	}
}

// modesBenches picks two pointer/store-address-chasing stress benchmarks
// per suite for the replay-mode cross product.
var modesBenches = []string{"gcc", "mcf", "swim", "equake"}

// recordTo records the full budget of (cfg, bench, seed) to a temp .elt.
func recordTo(t *testing.T, cfg *config.Config, bench string, seed uint64) string {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := trace.BenchPath(t.TempDir(), bench, seed)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(f, prof.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.WarmupInsts + cfg.MaxInsts
	if intervals, bleed := cfg.Intervals(); intervals > 1 {
		n += uint64(intervals-1) * bleed
	}
	if err := rec.Record(n); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOracleCleanAcrossModes drives every scheme through trace replay,
// checkpointed resume and sampled measurement, all under the oracle.
func TestOracleCleanAcrossModes(t *testing.T) {
	for label, base := range schemeConfigs() {
		t.Run(label, func(t *testing.T) {
			for _, bench := range modesBenches {
				// Trace replay: record the budget, then certify the replay.
				cfg := base
				cfg.TracePath = recordTo(t, &cfg, bench, 1)
				if err := trace.Resolve(&cfg); err != nil {
					t.Fatal(err)
				}
				certify(t, label+"/trace", cfg, bench, 1)

				// Checkpointed resume: build a warm snapshot, resume, certify.
				prof, err := workload.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				ckCfg := base
				snap, err := ckpt.Build(&ckCfg, prof, 1)
				if err != nil {
					t.Fatal(err)
				}
				out, err := simrun.Point{Config: ckCfg, Bench: bench, Seed: 1, Snapshot: snap, Oracle: true}.Run(nil)
				if err != nil {
					t.Fatal(err)
				}
				if cerr := out.Oracle.Err(); cerr != nil {
					t.Errorf("%s/ckpt-resume/%s: %v", label, bench, cerr)
				}
				if out.Oracle.Loads() == 0 {
					t.Errorf("%s/ckpt-resume/%s: oracle certified no loads", label, bench)
				}

				// Sampled measurement: three intervals with functional bleed.
				sampled := base
				sampled.SampleIntervals = 3
				sampled.SampleBleedInsts = 1500
				certify(t, label+"/sampled", sampled, bench, 1)
			}
		})
	}
}

// TestIdealLSQUpperBoundInvariant pins the cross-scheme performance
// ordering: the idealised central LSQ — unlimited capacity, single-cycle
// searches — with a free interconnect (the centralised queue otherwise pays
// CP<->MP round trips the distributed schemes avoid by design) bounds every
// restricted hash-ERT scheme at equal geometry. Two effects keep this from
// being exact: the line-based ERT locks referenced lines into the L1, which
// can pin a pointer-chase working set and legitimately beat the ideal queue
// on cache behaviour (it is therefore excluded), and wrong-path injection
// feeds back on timing, so a small tolerance absorbs speculation noise. A
// restricted scheme exceeding the bound beyond the tolerance means it is
// cheating — skipping searches or latency it owes.
func TestIdealLSQUpperBoundInvariant(t *testing.T) {
	const tolerance = 1.05
	restricted := map[string]func(*config.Config){
		"elsq-hash-sqm":   nil,
		"elsq-hash-nosqm": func(c *config.Config) { c.SQM = false },
		"elsq-rsac":       func(c *config.Config) { c.Disamb = config.DisambRSAC },
		"elsq-rlac":       func(c *config.Config) { c.Disamb = config.DisambRLAC },
		"elsq-rsaclac":    func(c *config.Config) { c.Disamb = config.DisambRSACLAC },
		"svw-fmc":         func(c *config.Config) { c.LSQ = config.LSQSVW },
		"central-bus":     func(c *config.Config) { c.LSQ = config.LSQCentral },
	}
	for _, bench := range modesBenches {
		ideal := config.Default().WithBudget(testMeasure, testWarmup)
		ideal.LSQ = config.LSQCentral
		ideal.BusOneWay = 0
		ideal.MeshHop = 0
		idealRes := certify(t, "ideal", ideal, bench, 1)
		for label, mut := range restricted {
			cfg := config.Default().WithBudget(testMeasure, testWarmup)
			if mut != nil {
				mut(&cfg)
			}
			res := certify(t, label, cfg, bench, 1)
			if res.IPC > idealRes.IPC*tolerance {
				t.Errorf("%s/%s: IPC %.4f exceeds the idealised central LSQ's %.4f beyond tolerance",
					label, bench, res.IPC, idealRes.IPC)
			}
		}
	}
}

// TestSVWReexecCoversTrueViolations pins the SVW safety-counting argument:
// every true memory-ordering violation the pipeline detects must be
// repaired by a commit-time re-execution, so the re-execution count is
// bounded below by the true-violation count (conservative SSBF aliasing
// only adds spurious re-executions on top).
func TestSVWReexecCoversTrueViolations(t *testing.T) {
	for _, variant := range []config.SVWVariant{config.SVWBlind, config.SVWCheckStores} {
		for _, model := range []config.Model{config.ModelFMC, config.ModelOoO} {
			for _, bench := range modesBenches {
				cfg := config.Default().WithBudget(testMeasure, testWarmup)
				cfg.Model = model
				cfg.LSQ = config.LSQSVW
				cfg.SVW = variant
				label := fmt.Sprintf("svw-%v-%v", model, variant)
				res := certify(t, label, cfg, bench, 1)
				re := res.Counters.Get("reexec")
				vi := res.Counters.Get("violation")
				if re < vi {
					t.Errorf("%s/%s: %d re-executions < %d true violations — a vulnerable load slipped the filter",
						label, bench, re, vi)
				}
			}
		}
	}
}

// TestWrongPathAuditUnderDebug arms the filter-boundary asserts and drives
// the most speculation-heavy INT benchmarks through every wrong-path-
// sensitive scheme: re-synthesised wrong-path loads and stores may search
// the queues and pollute the caches, but any one of them reaching
// SSBF.CommitStore, an ERT insertion or the oracle's committed stream
// panics the run (and the oracle independently flags wrong-path sequence
// numbers even with Debug off).
func TestWrongPathAuditUnderDebug(t *testing.T) {
	filter.Debug = true
	defer func() { filter.Debug = false }()
	cfgs := schemeConfigs()
	for _, label := range []string{"elsq-hash-sqm", "elsq-line", "svw-fmc", "ooo64-svw", "central"} {
		for _, bench := range []string{"gcc", "vpr", "twolf"} {
			certify(t, label+"/wrong-path-audit", cfgs[label], bench, 1)
		}
	}
}
