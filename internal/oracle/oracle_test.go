package oracle

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/lsq"
)

// st builds a committed store op.
func st(seq, addr uint64, size uint8, commit int64) *lsq.MemOp {
	return &lsq.MemOp{Seq: seq, Store: true, Addr: addr, Size: size, Commit: commit}
}

// ld builds a committed load op with cache-read provenance.
func ld(seq, addr uint64, size uint8, readAt, commit int64) *lsq.MemOp {
	return &lsq.MemOp{Seq: seq, Addr: addr, Size: size, ReadAt: readAt, Commit: commit}
}

// fwd builds a committed load op forwarded in full from store fwdSeq.
func fwd(seq, addr uint64, size uint8, fwdSeq uint64, commit int64) *lsq.MemOp {
	return &lsq.MemOp{Seq: seq, Addr: addr, Size: size, Commit: commit,
		FwdSeq: fwdSeq, FwdMask: isa.FullMask(size)}
}

func wantClean(t *testing.T, c *Checker) {
	t.Helper()
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func wantKind(t *testing.T, c *Checker, kind string) {
	t.Helper()
	if c.ViolationCount() == 0 {
		t.Fatalf("expected a %q violation, checker is clean", kind)
	}
	if got := c.Violations()[0].Kind; got != kind {
		t.Fatalf("violation kind = %q, want %q (%v)", got, kind, c.Violations()[0])
	}
}

func TestCleanStreamPasses(t *testing.T) {
	c := New(0)
	c.StoreCommitted(st(1, 0x100, 8, 10))
	c.LoadCommitted(fwd(2, 0x100, 8, 1, 12)) // forwarded from the writer
	c.LoadCommitted(ld(3, 0x100, 4, 10, 14)) // cache read at the commit cycle
	c.LoadCommitted(ld(4, 0x200, 8, 1, 16))  // untouched memory: any read time
	c.StoreCommitted(st(5, 0x100, 4, 20))    // partial overwrite
	c.LoadCommitted(fwd(6, 0x100, 4, 5, 22)) // low half from the new writer
	c.LoadCommitted(ld(7, 0x104, 4, 11, 24)) // high half still store 1, read after its commit
	wantClean(t, c)
	if c.Loads() != 5 || c.Stores() != 2 || c.CheckedBytes() != 28 {
		t.Errorf("stats = %d loads / %d stores / %d bytes", c.Loads(), c.Stores(), c.CheckedBytes())
	}
}

func TestForwardFromSupersededStoreFlagged(t *testing.T) {
	c := New(0)
	c.StoreCommitted(st(1, 0x100, 8, 10))
	c.StoreCommitted(st(2, 0x100, 8, 12))
	// The load claims store 1 supplied its bytes, but store 2 is the
	// youngest older writer: a forwarding age-ordering bug.
	c.LoadCommitted(fwd(3, 0x100, 8, 1, 14))
	wantKind(t, c, "forward-wrong-store")
}

func TestForwardFromPhantomStoreFlagged(t *testing.T) {
	c := New(0)
	c.LoadCommitted(fwd(3, 0x300, 8, 1, 14))
	wantKind(t, c, "forward-wrong-store")
}

func TestStaleCacheReadFlagged(t *testing.T) {
	c := New(0)
	c.StoreCommitted(st(1, 0x100, 8, 100))
	// The load read the cache at cycle 50, before the store's commit wrote
	// the bytes back — it consumed stale data and was never repaired.
	c.LoadCommitted(ld(2, 0x100, 8, 50, 120))
	wantKind(t, c, "stale-byte")
}

func TestPartialForwardCheckedByteWise(t *testing.T) {
	// An 8-byte store, then a younger 2-byte store inside it. A load of the
	// full word claiming full forwarding from the older store is wrong on
	// exactly the two overwritten bytes.
	c := New(0)
	c.StoreCommitted(st(1, 0x100, 8, 10))
	c.StoreCommitted(st(2, 0x102, 2, 12))
	c.LoadCommitted(fwd(3, 0x100, 8, 1, 14))
	if c.ViolationCount() != 2 {
		t.Fatalf("violations = %d, want 2 (one per clobbered byte)", c.ViolationCount())
	}
	for _, v := range c.Violations() {
		if v.Kind != "forward-wrong-store" || (v.Byte != 2 && v.Byte != 3) {
			t.Errorf("unexpected violation %v", v)
		}
	}

	// The correct claim — low/high bytes from store 1 at a read past both
	// commits, or forwarding from store 2 for its two bytes — passes.
	c2 := New(0)
	c2.StoreCommitted(st(1, 0x100, 8, 10))
	c2.StoreCommitted(st(2, 0x102, 2, 12))
	c2.LoadCommitted(&lsq.MemOp{Seq: 3, Addr: 0x100, Size: 8, Commit: 14,
		FwdSeq: 2, FwdMask: 0b00001100, ReadAt: 12})
	wantClean(t, c2)
}

func TestWrongPathOpFlagged(t *testing.T) {
	c := New(0)
	c.StoreCommitted(st(isa.WrongPathSeqBit|7, 0x100, 8, 10))
	wantKind(t, c, "wrong-path-op")
	if c.Stores() != 0 {
		t.Error("wrong-path store entered the image")
	}
}

func TestOutOfOrderStreamFlagged(t *testing.T) {
	c := New(0)
	c.StoreCommitted(st(5, 0x100, 8, 10))
	c.LoadCommitted(ld(4, 0x100, 8, 11, 12))
	wantKind(t, c, "out-of-order-stream")
}

func TestCommitOrderFlagged(t *testing.T) {
	c := New(0)
	c.StoreCommitted(st(1, 0x100, 8, 10))
	c.StoreCommitted(st(2, 0x100, 8, 9))
	wantKind(t, c, "commit-order")
}

func TestBadFootprintFlagged(t *testing.T) {
	cases := []struct {
		addr uint64
		size uint8
	}{
		{0x100, 16}, // wider than a granule
		{0x100, 3},  // non-power-of-two
		{0xFFD, 8},  // misaligned, page-crossing: must report, not panic
		{0x102, 4},  // misaligned
	}
	for _, tc := range cases {
		c := New(0)
		c.LoadCommitted(&lsq.MemOp{Seq: 1, Addr: tc.addr, Size: tc.size, Commit: 5})
		wantKind(t, c, "bad-footprint")
	}
}

func TestViolationCapAndTotals(t *testing.T) {
	c := New(2)
	c.StoreCommitted(st(1, 0x100, 8, 100))
	for i := uint64(0); i < 5; i++ {
		c.LoadCommitted(ld(2+i, 0x100, 8, 50, 120))
	}
	if c.ViolationCount() != 40 { // every byte of every stale load is counted
		t.Errorf("total = %d, want 40", c.ViolationCount())
	}
	if len(c.Violations()) != 2 {
		t.Errorf("recorded = %d, want cap 2", len(c.Violations()))
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "40 violation(s)") {
		t.Errorf("Err = %v", err)
	}
}
