// Oracle certification of the placement-policy x fabric-model matrix:
// epoch placement and interconnect contention are timing-only mechanisms,
// so every committed load value must still match the sequential reference
// byte-for-byte under every policy and both fabric models.
package oracle_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestOracleCleanAllPlacementsBothSuites certifies the full placement x
// fabric cross product over every benchmark of both suites.
func TestOracleCleanAllPlacementsBothSuites(t *testing.T) {
	for _, pol := range []config.PlacePolicy{config.PlaceModN, config.PlaceLeastLoaded, config.PlaceSteal} {
		for _, model := range []config.NoCModel{config.NoCAnalytic, config.NoCContended} {
			label := fmt.Sprintf("%s-%s", pol, model)
			t.Run(label, func(t *testing.T) {
				cfg := config.Default().WithBudget(testMeasure, testWarmup)
				cfg.Place = pol
				cfg.NoC = model
				for _, suite := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
					for _, prof := range workload.SuiteOf(suite) {
						certify(t, label, cfg, prof.Name, 1)
					}
				}
			})
		}
	}
}

// TestOracleCleanContendedWideLinks adds the non-default link width to the
// certification surface (wider links change migration timing shape).
func TestOracleCleanContendedWideLinks(t *testing.T) {
	cfg := config.Default().WithBudget(testMeasure, testWarmup)
	cfg.NoC = config.NoCContended
	cfg.NoCLinkWidth = 4
	cfg.Place = config.PlaceSteal
	for _, bench := range modesBenches {
		certify(t, "steal-contended-w4", cfg, bench, 1)
	}
}
