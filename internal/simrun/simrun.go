// Package simrun is the single entry point for running simulations: every
// driver — benchmarks, sweeps, commands, examples, tests — describes a run
// as a Point and calls Run (or RunBatch for many points at once) instead of
// wiring cpu.New, workload sources, traces, checkpoints and oracles by
// hand. The package owns the composition rules those drivers used to
// duplicate:
//
//   - workload resolution (live generator vs trace replay, trace digest
//     stamping via trace.Resolve),
//   - checkpointed warm-up (store lookup, shared single-flight builds,
//     snapshot restore — the logic formerly split between ckpt.Resume and
//     each driver),
//   - oracle attachment (a fresh differential checker on the committed
//     stream),
//   - batched execution (RunBatch groups warm-up-compatible points onto
//     the lane-parallel engine, internal/batch, with scalar fallback).
//
// Determinism contract: for a given Point, Run's Result is bit-identical
// whether the warm-up ran functionally, resumed from a checkpoint, or the
// point executed as a lane of a batch.
//
// The companion boundary test enforces that cpu.New/cpu.NewBatch call sites
// exist only here, in internal/batch and in internal/cpu's own tests.
package simrun

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/oracle"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Sample overrides the point's sampling plan: Intervals measurement
// intervals separated by BleedInsts functional instructions
// (config.Config.SampleIntervals / SampleBleedInsts).
type Sample struct {
	// Intervals is the number of measurement intervals (>1 enables
	// sampling).
	Intervals int
	// BleedInsts is the functional fast-forward between intervals.
	BleedInsts uint64
}

// Point describes one simulation completely: what to run, from what warm
// state, and what to attach to it. The zero value of every optional field
// means "off".
type Point struct {
	// Config is the processor configuration.
	Config config.Config
	// Bench names the workload profile (workload.ByName).
	Bench string
	// Seed selects the workload instantiation.
	Seed uint64
	// TracePath, when set, overrides Config.TracePath: the run replays the
	// recorded trace (which must match Bench/Seed) instead of live
	// generation. The trace digest is resolved and folded into the
	// effective config automatically.
	TracePath string
	// Snapshot, when set, resumes from this checkpoint instead of running
	// the functional warm-up. It must match the point (ckpt.Snapshot.Check).
	Snapshot *ckpt.Snapshot
	// Ckpt, when set, is consulted for a reusable warm-up checkpoint and
	// receives newly built ones. Ignored when Snapshot is set.
	Ckpt ckpt.Store
	// Oracle attaches a fresh differential checker (oracle.New) to the
	// committed memory-op stream; the checker is returned in the Outcome.
	// Mutually exclusive with Observer.
	Oracle bool
	// Observer, when non-nil, is attached to the committed memory-op
	// stream. Mutually exclusive with Oracle.
	Observer cpu.CommitObserver
	// Sample, when non-nil, overrides the config's sampling plan.
	Sample *Sample
}

// Outcome is what one Point produced.
type Outcome struct {
	// Result is the simulation result.
	Result *cpu.Result
	// Energy is the run's activity-energy/area report (internal/energy),
	// computed from Result under the config's energy.table. Observational
	// only: it derives from the result, never influences it.
	Energy *energy.Report
	// Oracle is the attached checker when Point.Oracle was set.
	Oracle *oracle.Checker
	// Resumed reports that the run started from a checkpoint (explicit or
	// from the store) rather than a functional warm-up.
	Resumed bool
	// CkptBuilt reports that this point triggered building a new warm-up
	// checkpoint (at most one point per shared build reports it).
	CkptBuilt bool
	// Batched reports that the point executed as a lane of the batch
	// engine rather than a scalar run.
	Batched bool
	// Err is the point's failure when it ran inside RunBatch (Run returns
	// errors directly instead).
	Err error
}

// effectiveConfig folds the point's overrides into its config and resolves
// the trace digest, returning the exact configuration the simulator runs.
func (p *Point) effectiveConfig() (config.Config, error) {
	cfg := p.Config
	if p.Bench == "" {
		return cfg, fmt.Errorf("simrun: point wants a bench name")
	}
	if p.TracePath != "" {
		cfg.TracePath = p.TracePath
		cfg.TraceDigest = ""
	}
	if p.Sample != nil {
		cfg.SampleIntervals = p.Sample.Intervals
		cfg.SampleBleedInsts = p.Sample.BleedInsts
	}
	if cfg.TracePath != "" && cfg.TraceDigest == "" {
		if err := trace.Resolve(&cfg); err != nil {
			return cfg, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	if p.Oracle && p.Observer != nil {
		return cfg, fmt.Errorf("simrun: Oracle and Observer are mutually exclusive")
	}
	return cfg, nil
}

// Run executes the point to completion. A nil ctx disables cancellation;
// on cancellation Run returns ctx's error and no outcome.
func (p Point) Run(ctx context.Context) (*Outcome, error) {
	cfg, err := p.effectiveConfig()
	if err != nil {
		return nil, err
	}
	prof, err := workload.ByName(p.Bench)
	if err != nil {
		return nil, err
	}
	out := &Outcome{}
	snap, err := p.resolveSnapshot(&cfg, prof, out)
	if err != nil {
		return nil, err
	}
	sim, err := buildSim(cfg, snap, prof, p.Bench, p.Seed)
	if err != nil {
		return nil, err
	}
	p.attach(sim, out)
	if ctx == nil {
		out.Result = sim.Run()
	} else {
		res, err := sim.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		out.Result = res
	}
	if out.Energy, err = energy.Compute(&cfg, out.Result); err != nil {
		return nil, err
	}
	return out, nil
}

// attach wires the point's committed-stream consumer (oracle or observer)
// into sim and records it in out.
func (p *Point) attach(sim *cpu.Sim, out *Outcome) {
	switch {
	case p.Oracle:
		ck := oracle.New(0)
		sim.SetCommitObserver(ck)
		out.Oracle = ck
	case p.Observer != nil:
		sim.SetCommitObserver(p.Observer)
	}
}

// resolveSnapshot picks the warm-start image for a scalar run: the explicit
// Snapshot if set, otherwise a store hit, otherwise nothing (the run warms
// functionally — scalar runs only build checkpoints when a store is there
// to keep them).
func (p *Point) resolveSnapshot(cfg *config.Config, prof workload.Profile, out *Outcome) (*ckpt.Snapshot, error) {
	if p.Snapshot != nil {
		out.Resumed = true
		return p.Snapshot, nil
	}
	if p.Ckpt == nil || cfg.WarmupInsts == 0 {
		return nil, nil
	}
	key := ckpt.Key(cfg, p.Bench, p.Seed)
	if snap, ok := p.Ckpt.Get(key); ok {
		out.Resumed = true
		return snap, nil
	}
	snap, err := buildShared(cfg, prof, p.Seed)
	if err != nil {
		return nil, err
	}
	p.Ckpt.Put(snap)
	out.Resumed = true
	out.CkptBuilt = true
	return snap, nil
}

// buildSim constructs the simulator for cfg, warm-started from snap when
// non-nil (the logic formerly in ckpt.Resume).
func buildSim(cfg config.Config, snap *ckpt.Snapshot, prof workload.Profile, bench string, seed uint64) (*cpu.Sim, error) {
	if snap == nil {
		src, err := trace.SourceFor(&cfg, prof, seed)
		if err != nil {
			return nil, err
		}
		return cpu.New(cfg, src)
	}
	if err := snap.Check(&cfg, bench, seed); err != nil {
		return nil, err
	}
	src, err := restoredSource(&cfg, snap, prof, seed)
	if err != nil {
		return nil, err
	}
	sim, err := cpu.New(cfg, src)
	if err != nil {
		return nil, err
	}
	if err := sim.RestoreWarmState(snap.Hier); err != nil {
		return nil, err
	}
	return sim, nil
}

// restoredSource returns a workload source positioned at the snapshot:
// trace-driven configs restore a replay of their trace, everything else a
// live generator.
func restoredSource(cfg *config.Config, snap *ckpt.Snapshot, prof workload.Profile, seed uint64) (workload.Source, error) {
	if cfg.TracePath != "" {
		ts, err := trace.SourceFor(cfg, prof, seed)
		if err != nil {
			return nil, err
		}
		if err := ts.Restore(snap.Source); err != nil {
			return nil, fmt.Errorf("simrun: %w", err)
		}
		return ts, nil
	}
	return snap.NewSource()
}

// builds deduplicates concurrent checkpoint builds process-wide: sweep
// workers and batch groups hitting the same key block on one build instead
// of each paying the full functional warm-up.
var builds struct {
	mu sync.Mutex
	m  map[string]*buildCall
}

type buildCall struct {
	done chan struct{}
	snap *ckpt.Snapshot
	err  error
}

// buildShared is ckpt.Build behind a per-key single-flight.
func buildShared(cfg *config.Config, prof workload.Profile, seed uint64) (*ckpt.Snapshot, error) {
	key := ckpt.Key(cfg, prof.Name, seed)
	builds.mu.Lock()
	if builds.m == nil {
		builds.m = make(map[string]*buildCall)
	}
	if c, ok := builds.m[key]; ok {
		builds.mu.Unlock()
		<-c.done
		return c.snap, c.err
	}
	c := &buildCall{done: make(chan struct{})}
	builds.m[key] = c
	builds.mu.Unlock()
	c.snap, c.err = ckpt.Build(cfg, prof, seed)
	close(c.done)
	builds.mu.Lock()
	delete(builds.m, key)
	builds.mu.Unlock()
	return c.snap, c.err
}
