// Tests for the batched execution contract: a point run as a lane of the
// batch engine must produce results bit-identical to the same point run
// scalar, whatever mix of schemes, budgets and sampling plans shares the
// group.
package simrun_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/simrun"
)

const (
	testWarmup  uint64 = 6000
	testMeasure uint64 = 2500
)

// laneAxes are config mutations on non-warm-up axes: any subset of lanes
// built from them shares a warm-up key and therefore a batch group.
var laneAxes = []struct {
	name string
	mut  func(*config.Config)
}{
	{"default", nil},
	{"nosqm", func(c *config.Config) { c.SQM = false }},
	{"line-ert", func(c *config.Config) { c.ERT = config.ERTLine }},
	{"rsac", func(c *config.Config) { c.Disamb = config.DisambRSAC }},
	{"rlac", func(c *config.Config) { c.Disamb = config.DisambRLAC }},
	{"central", func(c *config.Config) { c.LSQ = config.LSQCentral }},
	{"svw", func(c *config.Config) { c.LSQ = config.LSQSVW }},
	{"migrate24", func(c *config.Config) { c.MigrateThreshold = 24 }},
	{"cachelevel", func(c *config.Config) { c.Class = config.ClassCacheLevel }},
	{"delaytrack", func(c *config.Config) { c.Class = config.ClassDelayTrack }},
	{"epochs4", func(c *config.Config) { c.NumEpochs = 4 }},
	{"mem250", func(c *config.Config) { c.MemLatency = 250 }},
	{"mispredict", func(c *config.Config) { c.MispredictPenalty += 3 }},
	{"ooo64", func(c *config.Config) {
		c.Model = config.ModelOoO
		c.LSQ = config.LSQConventional
	}},
}

func lanePoint(bench string, seed uint64, mut func(*config.Config)) simrun.Point {
	cfg := config.Default().WithBudget(testMeasure, testWarmup)
	if mut != nil {
		mut(&cfg)
	}
	return simrun.Point{Config: cfg, Bench: bench, Seed: seed}
}

// scalarResult runs the point outside any batch.
func scalarResult(t *testing.T, p simrun.Point) *cpu.Result {
	t.Helper()
	out, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.Result
}

// assertSameResult compares every deterministic field of two results.
func assertSameResult(t *testing.T, label string, got, want *cpu.Result) {
	t.Helper()
	if got.Committed != want.Committed || got.Cycles != want.Cycles || got.IPC != want.IPC {
		t.Errorf("%s: committed/cycles/IPC %d/%d/%v, want %d/%d/%v",
			label, got.Committed, got.Cycles, got.IPC, want.Committed, want.Cycles, want.IPC)
	}
	if !reflect.DeepEqual(got.Counters.Snapshot(), want.Counters.Snapshot()) {
		t.Errorf("%s: counters diverged:\n got %v\nwant %v", label, got.Counters.Snapshot(), want.Counters.Snapshot())
	}
	if !reflect.DeepEqual(got.LoadDist, want.LoadDist) || !reflect.DeepEqual(got.StoreDist, want.StoreDist) {
		t.Errorf("%s: locality histograms diverged", label)
	}
	if got.LLIdleFrac != want.LLIdleFrac || got.AvgEpochs != want.AvgEpochs {
		t.Errorf("%s: LL activity diverged: %v/%v vs %v/%v",
			label, got.LLIdleFrac, got.AvgEpochs, want.LLIdleFrac, want.AvgEpochs)
	}
}

// TestBatchMatchesScalar is the bit-identity property test: random
// same-warm-up groups of lanes across schemes and both suites, each lane
// compared field-for-field against its own scalar run. One lane per group
// also carries the oracle, proving per-lane observers attach to the right
// lane inside the batch.
func TestBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	benches := []string{"gcc", "mcf", "swim", "equake"}
	for trial := 0; trial < 4; trial++ {
		bench := benches[trial%len(benches)]
		k := 3 + rng.Intn(3)
		points := make([]simrun.Point, k)
		names := make([]string, k)
		perm := rng.Perm(len(laneAxes))
		for i := 0; i < k; i++ {
			ax := laneAxes[perm[i]]
			points[i] = lanePoint(bench, 1, ax.mut)
			names[i] = ax.name
		}
		oracleLane := rng.Intn(k)
		points[oracleLane].Oracle = true

		want := make([]*cpu.Result, k)
		for i := range points {
			p := points[i]
			p.Oracle = false
			want[i] = scalarResult(t, p)
		}

		outs, err := simrun.RunBatch(nil, points)
		if err != nil {
			t.Fatal(err)
		}
		for i, out := range outs {
			label := bench + "/" + names[i]
			if out.Err != nil {
				t.Fatalf("%s: %v", label, out.Err)
			}
			if !out.Batched {
				t.Errorf("%s: lane of a %d-point group ran scalar", label, k)
			}
			assertSameResult(t, label, out.Result, want[i])
		}
		if ck := outs[oracleLane].Oracle; ck == nil {
			t.Errorf("%s: oracle lane has no checker", bench)
		} else if err := ck.Err(); err != nil {
			t.Errorf("%s: batched lane failed certification: %v", bench, err)
		}
	}
}

// TestBatchSingletonFallsBackToScalar pins the grouping rule: points that
// share nothing run scalar (Batched false) and still produce their scalar
// results through the same RunBatch call.
func TestBatchSingletonFallsBackToScalar(t *testing.T) {
	points := []simrun.Point{
		lanePoint("gcc", 1, nil),
		lanePoint("swim", 1, nil),
		lanePoint("gcc", 2, nil), // same bench, different seed: own group
	}
	want := make([]*cpu.Result, len(points))
	for i := range points {
		want[i] = scalarResult(t, points[i])
	}
	outs, err := simrun.RunBatch(nil, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.Batched {
			t.Errorf("point %d: singleton group reported as batched", i)
		}
		assertSameResult(t, points[i].Bench, out.Result, want[i])
	}
}

// TestBatchLaneRetirement exercises the engine's raggedness: lanes of one
// group with very different measurement budgets — and one lane on a
// SimPoint-style sampled plan with mid-run functional bleed — retire in
// different lockstep rounds, and every one must still match its scalar run.
func TestBatchLaneRetirement(t *testing.T) {
	mk := func(insts uint64, mut func(*config.Config)) simrun.Point {
		p := lanePoint("mcf", 1, mut)
		p.Config.MaxInsts = insts
		return p
	}
	points := []simrun.Point{
		mk(2000, nil),
		mk(9000, func(c *config.Config) { c.LSQ = config.LSQSVW }),
		mk(5500, func(c *config.Config) {
			c.SampleIntervals = 3
			c.SampleBleedInsts = 1200
		}),
		mk(2000, func(c *config.Config) { c.ERT = config.ERTLine }),
	}
	want := make([]*cpu.Result, len(points))
	for i := range points {
		want[i] = scalarResult(t, points[i])
	}
	outs, err := simrun.RunBatch(nil, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("lane %d: %v", i, out.Err)
		}
		if !out.Batched {
			t.Errorf("lane %d ran scalar", i)
		}
		assertSameResult(t, "lane", out.Result, want[i])
	}
}

// TestBatchSharesStoreCheckpoints pins the warm-up economics: a batched
// group builds its shared checkpoint exactly once (reported on one lane),
// stores it, and a second batch over the same group resumes without
// building.
func TestBatchSharesStoreCheckpoints(t *testing.T) {
	store := ckpt.NewMemStore()
	points := []simrun.Point{
		lanePoint("swim", 1, nil),
		lanePoint("swim", 1, func(c *config.Config) { c.LSQ = config.LSQSVW }),
		lanePoint("swim", 1, func(c *config.Config) { c.Disamb = config.DisambRSAC }),
	}
	for i := range points {
		points[i].Ckpt = store
	}
	outs, err := simrun.RunBatch(nil, points)
	if err != nil {
		t.Fatal(err)
	}
	built := 0
	for _, out := range outs {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if !out.Resumed {
			t.Error("batched lane with warm-up not reported as resumed")
		}
		if out.CkptBuilt {
			built++
		}
	}
	if built != 1 {
		t.Errorf("group reported %d checkpoint builds, want exactly 1", built)
	}
	if store.Len() != 1 {
		t.Errorf("store holds %d snapshots, want 1", store.Len())
	}

	again, err := simrun.RunBatch(nil, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range again {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.CkptBuilt {
			t.Error("second batch rebuilt a stored checkpoint")
		}
		if !out.Resumed {
			t.Error("second batch did not resume from the store")
		}
		assertSameResult(t, "restore", out.Result, outs[i].Result)
	}
}
