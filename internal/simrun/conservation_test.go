// Cross-mode conservation of the energy accounting: for every bench-matrix
// scheme, the digest-pinned counters, the energy-only activity counters and
// the derived energy report must be bit-identical however the same point is
// executed — live scalar, trace replay, checkpoint resume, batched with a
// partner lane, or through the batch engine's scalar fallback. Any
// divergence means an action counter fires outside the measured region (or
// differently per driving mode), which would make energy numbers a property
// of the harness instead of the simulated machine.
package simrun_test

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

// conservationSchemes mirrors internal/bench.Matrix's scheme rows at the
// test budget.
func conservationSchemes() []struct {
	name string
	cfg  config.Config
} {
	mk := func(mut func(*config.Config)) config.Config {
		cfg := config.Default().WithBudget(testMeasure, testWarmup)
		if mut != nil {
			mut(&cfg)
		}
		return cfg
	}
	return []struct {
		name string
		cfg  config.Config
	}{
		{"elsq", mk(nil)},
		{"ooo64", mk(func(c *config.Config) {
			c.Model = config.ModelOoO
			c.LSQ = config.LSQConventional
		})},
		{"central", mk(func(c *config.Config) { c.LSQ = config.LSQCentral })},
		{"svw", mk(func(c *config.Config) { c.LSQ = config.LSQSVW })},
		{"elsq-noc", mk(func(c *config.Config) { c.NoC = config.NoCContended })},
		{"elsq-noc-steal", mk(func(c *config.Config) {
			c.NoC = config.NoCContended
			c.Place = config.PlaceSteal
		})},
	}
}

// recordBudget records the point's full instruction budget (warm-up +
// measurement + inter-interval bleeds) to a temp .elt for replay.
func recordBudget(t *testing.T, cfg *config.Config, bench string, seed uint64) string {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := trace.BenchPath(t.TempDir(), bench, seed)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(f, prof.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.WarmupInsts + cfg.MaxInsts
	if intervals, bleed := cfg.Intervals(); intervals > 1 {
		n += uint64(intervals-1) * bleed
	}
	if err := rec.Record(n); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertConserved compares one mode's outcome against the scalar reference:
// headline metrics, both counter bags, and the energy report digest.
func assertConserved(t *testing.T, label string, got, want *simrun.Outcome) {
	t.Helper()
	assertSameResult(t, label, got.Result, want.Result)
	if got.Result.Activity == nil || want.Result.Activity == nil {
		t.Fatalf("%s: activity bag missing (got %v, want %v)", label, got.Result.Activity, want.Result.Activity)
	}
	if !reflect.DeepEqual(got.Result.Activity.Snapshot(), want.Result.Activity.Snapshot()) {
		t.Errorf("%s: activity counters diverged:\n got %v\nwant %v",
			label, got.Result.Activity.Snapshot(), want.Result.Activity.Snapshot())
	}
	if got.Energy == nil || want.Energy == nil {
		t.Fatalf("%s: energy report missing (got %v, want %v)", label, got.Energy, want.Energy)
	}
	if gd, wd := got.Energy.Digest(), want.Energy.Digest(); gd != wd {
		t.Errorf("%s: energy digest %s != scalar %s (%.1f vs %.1f pJ/inst)",
			label, gd, wd, got.Energy.PJPerInst, want.Energy.PJPerInst)
	}
}

// TestEnergyConservationAcrossModes is the conservation property test: one
// benchmark per scheme, five execution modes, everything bit-identical.
func TestEnergyConservationAcrossModes(t *testing.T) {
	const bench, seed = "mcf", uint64(1)
	for _, sc := range conservationSchemes() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			scalar, err := (simrun.Point{Config: sc.cfg, Bench: bench, Seed: seed}).Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := scalar.Energy.Check(); err != nil {
				t.Fatal(err)
			}

			// Trace replay.
			tp := recordBudget(t, &sc.cfg, bench, seed)
			replay, err := (simrun.Point{Config: sc.cfg, Bench: bench, Seed: seed, TracePath: tp}).Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			assertConserved(t, sc.name+"/trace", replay, scalar)

			// Checkpoint resume.
			prof, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			ckCfg := sc.cfg
			snap, err := ckpt.Build(&ckCfg, prof, seed)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := (simrun.Point{Config: ckCfg, Bench: bench, Seed: seed, Snapshot: snap}).Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !resumed.Resumed {
				t.Errorf("%s: checkpoint run did not resume", sc.name)
			}
			assertConserved(t, sc.name+"/ckpt-resume", resumed, scalar)

			// Batched with a warm-up-compatible partner lane
			// (MispredictPenalty is a non-warm-up axis).
			partner := sc.cfg
			partner.MispredictPenalty += 3
			outs, err := simrun.RunBatch(nil, []simrun.Point{
				{Config: sc.cfg, Bench: bench, Seed: seed},
				{Config: partner, Bench: bench, Seed: seed},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range outs {
				if o.Err != nil {
					t.Fatal(o.Err)
				}
			}
			if !outs[0].Batched || !outs[1].Batched {
				t.Errorf("%s: pair did not batch (%v/%v)", sc.name, outs[0].Batched, outs[1].Batched)
			}
			assertConserved(t, sc.name+"/batched", outs[0], scalar)

			// Batch-engine scalar fallback: a singleton group runs scalar
			// but must still conserve.
			solo, err := simrun.RunBatch(nil, []simrun.Point{{Config: sc.cfg, Bench: bench, Seed: seed}})
			if err != nil {
				t.Fatal(err)
			}
			if solo[0].Err != nil {
				t.Fatal(solo[0].Err)
			}
			if solo[0].Batched {
				t.Errorf("%s: singleton group reported Batched", sc.name)
			}
			assertConserved(t, sc.name+"/batch-singleton", solo[0], scalar)
		})
	}
}
