package simrun

import (
	"context"

	"repro/internal/batch"
	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BatchKey returns the grouping key under which the point can share a
// batch lane group: points with equal keys run the same benchmark and seed
// under warm-up-equivalent configurations (ckpt.Key), so one warm-up image
// serves every lane of the group.
func (p Point) BatchKey() (string, error) {
	cfg, err := p.effectiveConfig()
	if err != nil {
		return "", err
	}
	return ckpt.Key(&cfg, p.Bench, p.Seed), nil
}

// RunBatch executes many points, mapping warm-up-compatible groups onto
// the lane-parallel engine (internal/batch) and running singleton groups
// scalar. Outcomes are indexed like points; a point's failure is reported
// in its Outcome.Err and never aborts the others. Only cancellation makes
// RunBatch itself return an error.
func RunBatch(ctx context.Context, points []Point) ([]*Outcome, error) {
	outs := make([]*Outcome, len(points))
	groups := make(map[string][]int)
	var order []string
	for i := range points {
		key, err := points[i].BatchKey()
		if err != nil {
			outs[i] = &Outcome{Err: err}
			continue
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	for _, key := range order {
		idx := groups[key]
		if len(idx) >= 2 {
			err := runGroup(ctx, points, idx, outs)
			if err == nil {
				continue
			}
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// A group-level failure (bad trace, incompatible snapshot,
			// arena mis-sizing) falls back to scalar so one broken point
			// cannot take down its groupmates.
		}
		for _, i := range idx {
			out, err := points[i].Run(ctx)
			if err != nil {
				if ctx != nil && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				out = &Outcome{Err: err}
			}
			outs[i] = out
		}
	}
	return outs, nil
}

// runGroup executes one warm-up-compatible group as lanes of a batch. All
// points in idx share (bench, seed, warm-relevant config slice) by key
// construction; the warm-up image is resolved once and restored into every
// lane.
func runGroup(ctx context.Context, points []Point, idx []int, outs []*Outcome) error {
	prof, err := workload.ByName(points[idx[0]].Bench)
	if err != nil {
		return err
	}
	specs := make([]batch.Spec, len(idx))
	groupOuts := make([]*Outcome, len(idx))
	var shared *ckpt.Snapshot
	for k, i := range idx {
		p := points[i]
		cfg, err := p.effectiveConfig()
		if err != nil {
			return err
		}
		out := &Outcome{Batched: true}
		var snap *ckpt.Snapshot
		switch {
		case p.Snapshot != nil:
			snap = p.Snapshot
			out.Resumed = true
		case cfg.WarmupInsts > 0:
			// The group's raison d'être: one warm-up serves every lane.
			// Unlike the scalar path this builds even without a store —
			// the build replaces K functional warm-ups, not one.
			if shared == nil {
				shared, err = resolveGroupSnapshot(&p, &cfg, prof, out)
				if err != nil {
					return err
				}
			}
			snap = shared
			out.Resumed = true
		}
		if snap != nil {
			if err := snap.Check(&cfg, p.Bench, p.Seed); err != nil {
				return err
			}
		}
		src, warm, err := laneSource(&cfg, snap, prof, p.Seed)
		if err != nil {
			return err
		}
		var obs cpu.CommitObserver
		if p.Oracle {
			ck := oracle.New(0)
			obs = ck
			out.Oracle = ck
		} else {
			obs = p.Observer
		}
		specs[k] = batch.Spec{Config: cfg, Source: src, Warm: warm, Observer: obs}
		groupOuts[k] = out
	}
	results, err := batch.Run(ctx, specs)
	if err != nil {
		return err
	}
	for k, i := range idx {
		groupOuts[k].Result = results[k]
		// Per-lane energy report under the lane's own config (the group
		// shares only warm-relevant fields; energy.table may differ).
		if rep, err := energy.Compute(&specs[k].Config, results[k]); err != nil {
			groupOuts[k].Err = err
		} else {
			groupOuts[k].Energy = rep
		}
		outs[i] = groupOuts[k]
	}
	return nil
}

// resolveGroupSnapshot obtains the group's shared warm-up image: a store
// hit when the point carries a store, otherwise a (single-flight) build.
// The triggering lane's outcome records the build.
func resolveGroupSnapshot(p *Point, cfg *config.Config, prof workload.Profile, out *Outcome) (*ckpt.Snapshot, error) {
	if p.Ckpt != nil {
		if snap, ok := p.Ckpt.Get(ckpt.Key(cfg, p.Bench, p.Seed)); ok {
			return snap, nil
		}
	}
	snap, err := buildShared(cfg, prof, p.Seed)
	if err != nil {
		return nil, err
	}
	if p.Ckpt != nil {
		p.Ckpt.Put(snap)
	}
	out.CkptBuilt = true
	return snap, nil
}

// laneSource builds one lane's workload source and warm image: positioned
// at the snapshot when one is present, fresh otherwise.
func laneSource(cfg *config.Config, snap *ckpt.Snapshot, prof workload.Profile, seed uint64) (workload.Source, *mem.HierarchyState, error) {
	if snap == nil {
		src, err := trace.SourceFor(cfg, prof, seed)
		return src, nil, err
	}
	src, err := restoredSource(cfg, snap, prof, seed)
	if err != nil {
		return nil, nil, err
	}
	return src, snap.Hier, nil
}
