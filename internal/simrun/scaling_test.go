// Engine-count scaling of the contended NoC fabric: as the FMC grows from 8
// to 128 memory engines, the occupancy model must expose costs and policy
// differences the contention-free analytic model structurally cannot.
package simrun_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/simrun"
)

// scalingRun executes one measured gcc point (gcc commits enough CP<->MP and
// mesh traffic at the test budget to make contention visible).
func scalingRun(t *testing.T, n int, model config.NoCModel, pol config.PlacePolicy, width int) *simrun.Outcome {
	t.Helper()
	cfg := config.Default().WithBudget(20000, 100000)
	cfg.NumEpochs = n
	cfg.NoC = model
	cfg.NoCLinkWidth = width
	cfg.Place = pol
	out, err := simrun.Point{Config: cfg, Bench: "gcc", Seed: 1}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEngineScalingContendedSeparation sweeps epochs 8 -> 128 under both
// fabric models and all placement policies and checks the properties the
// contended fabric exists to provide:
//
//  1. booking real occupancy costs cycles the free model gives away,
//  2. the queueing penalty for a migration-heavy policy grows with engine
//     count,
//  3. traffic volume (hops) is conserved across models when the placement
//     sequence is identical — only waiting differs.
func TestEngineScalingContendedSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-scaling sweep is a long test")
	}
	engineCounts := []int{8, 32, 128}
	policies := []config.PlacePolicy{config.PlaceModN, config.PlaceLeastLoaded, config.PlaceSteal}
	llDelta := make(map[int]int64)
	for _, n := range engineCounts {
		for _, pol := range policies {
			free := scalingRun(t, n, config.NoCAnalytic, pol, 0).Result
			cont := scalingRun(t, n, config.NoCContended, pol, 0).Result
			fc, cc := free.Counters.Snapshot(), cont.Counters.Snapshot()
			if cont.Cycles <= free.Cycles {
				t.Errorf("n=%d %v: contended fabric did not cost cycles (contended %d <= free %d)",
					n, pol, cont.Cycles, free.Cycles)
			}
			if cc["noc_bus_wait"] == 0 {
				t.Errorf("n=%d %v: contended run reported no bus queueing", n, pol)
			}
			if fc["noc_link_wait"] != 0 || fc["noc_bus_wait"] != 0 {
				t.Errorf("n=%d %v: free fabric reported queueing: link %d bus %d",
					n, pol, fc["noc_link_wait"], fc["noc_bus_wait"])
			}
			switch pol {
			case config.PlaceModN:
				// Mod-N placement is timing-independent, so both models see
				// the identical message stream: hop conservation end to end.
				if fc["noc_hops"] != cc["noc_hops"] {
					t.Errorf("n=%d modn: hops diverged across models: free %d, contended %d",
						n, fc["noc_hops"], cc["noc_hops"])
				}
			case config.PlaceLeastLoaded:
				// The migration-heavy policy must show mesh queueing and
				// real state movement.
				if cc["noc_link_wait"] == 0 || cc["noc_migrate_flits"] == 0 || cc["place_steals"] == 0 {
					t.Errorf("n=%d leastloaded: missing contention evidence: %v", n, cc)
				}
				llDelta[n] = cont.Cycles - free.Cycles
			}
		}
	}
	// Property 2: the contended-vs-free gap for the migration-heavy policy
	// widens as the mesh grows (longer routes, more links to queue on).
	if llDelta[128] <= llDelta[8] {
		t.Errorf("contention penalty did not grow with engine count: delta(8)=%d, delta(128)=%d",
			llDelta[8], llDelta[128])
	}

	// Property the free model structurally lacks: link width. Two analytic
	// configs differing only in width are the same canonical point, while
	// the contended fabric separates them.
	a1 := config.Default()
	a1.NoCLinkWidth = 1
	a4 := config.Default()
	a4.NoCLinkWidth = 4
	if a1.Hash() != a4.Hash() {
		t.Error("link width split the analytic identity; it should be inert there")
	}
	w1 := scalingRun(t, 32, config.NoCContended, config.PlaceLeastLoaded, 1).Result
	w4 := scalingRun(t, 32, config.NoCContended, config.PlaceLeastLoaded, 4).Result
	if w1.Cycles <= w4.Cycles {
		t.Errorf("wider links did not relieve contention: width1 %d cycles, width4 %d cycles",
			w1.Cycles, w4.Cycles)
	}
	if w1.Counters.Snapshot()["noc_bus_wait"] <= w4.Counters.Snapshot()["noc_bus_wait"] {
		t.Errorf("wider links did not reduce bus queueing: width1 %d, width4 %d",
			w1.Counters.Snapshot()["noc_bus_wait"], w4.Counters.Snapshot()["noc_bus_wait"])
	}
}

// TestScalingBatchMatchesScalar: the contended fabric's arena-carved
// calendars must leave batched lanes bit-identical to scalar runs at the
// extreme engine counts (the calendar horizon widens with the window).
func TestScalingBatchMatchesScalar(t *testing.T) {
	var pts []simrun.Point
	for _, n := range []int{8, 128} {
		for _, pol := range []config.PlacePolicy{config.PlaceModN, config.PlaceLeastLoaded} {
			cfg := config.Default().WithBudget(4000, 20000)
			cfg.NumEpochs = n
			cfg.NoC = config.NoCContended
			cfg.Place = pol
			pts = append(pts, simrun.Point{Config: cfg, Bench: "mcf", Seed: 5})
		}
	}
	batched, err := simrun.RunBatch(nil, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		scalar, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if scalar.Result.IPC != batched[i].Result.IPC || scalar.Result.Cycles != batched[i].Result.Cycles {
			t.Errorf("point %d: batch diverged from scalar: %v/%d vs %v/%d", i,
				batched[i].Result.IPC, batched[i].Result.Cycles, scalar.Result.IPC, scalar.Result.Cycles)
		}
	}
}
