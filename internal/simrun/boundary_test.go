// The boundary test enforces the API redesign's central rule: simulators are
// constructed in exactly three places — internal/cpu itself, the batch engine,
// and this package. Everything else (sweeps, benches, commands, examples,
// tests) goes through simrun.Point, so warm-up sharing, trace resolution,
// oracle attachment and batching stay uniform. It is a lint written as a
// test: any new cpu.New/cpu.NewBatch call site outside the allowed packages
// fails CI with the offending position.
package simrun_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// allowedDirs are the packages permitted to construct cpu.Sim values,
// relative to the module root.
var allowedDirs = []string{
	filepath.Join("internal", "cpu"),
	filepath.Join("internal", "batch"),
	filepath.Join("internal", "simrun"),
}

func allowed(rel string) bool {
	dir := filepath.Dir(rel)
	for _, a := range allowedDirs {
		if dir == a {
			return true
		}
	}
	return false
}

// cpuImportName returns the local name the file binds the cpu package to,
// or "" if the file does not import it.
func cpuImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "repro/internal/cpu" {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "cpu"
	}
	return ""
}

func TestSimulatorConstructionBoundary(t *testing.T) {
	root := filepath.Join("..", "..")
	fset := token.NewFileSet()
	checked := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if allowed(rel) {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pkgName := cpuImportName(f)
		if pkgName == "" {
			return nil
		}
		checked++
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != pkgName {
				return true
			}
			if sel.Sel.Name == "New" || sel.Sel.Name == "NewBatch" {
				t.Errorf("%s: %s.%s outside internal/{cpu,batch,simrun} — construct simulations through simrun.Point",
					fset.Position(sel.Pos()), pkgName, sel.Sel.Name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The walk must actually have seen cpu-importing files (e.g. result
	// consumers), or a layout change silently disabled the lint.
	if checked == 0 {
		t.Fatal("boundary lint scanned no files importing repro/internal/cpu — walk root is wrong")
	}
}
