// Package fmc models the Flexible MultiCore substrate (Pericàs et al., PACT
// 2007) the ELSQ integrates with: the partitioned Memory Processor as a set
// of in-order, 2-way memory engines, the age-ordered epoch lifecycle
// (open → fill → close → commit/squash → bank reuse), and the activity
// accounting behind the paper's Figure 11 (LL-LSQ low-power residency) and
// the "allocated epochs" statistic.
package fmc

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sched"
)

// epochInfo tracks one virtual epoch from open to release.
type epochInfo struct {
	open       int64
	lastSeq    uint64
	lastCommit int64
}

// Release reports an epoch that fully committed: every op of virtual epoch
// V had committed by cycle At.
type Release struct {
	// V is the released virtual epoch.
	V int64
	// At is the commit cycle of its last instruction.
	At int64
	// OK distinguishes a real release from the zero value.
	OK bool
}

// Epochs manages the age-partitioned epoch lifecycle. Virtual epoch ids are
// monotonic; virtual epoch v occupies physical bank v mod NumEpochs and can
// only open once virtual epoch v-NumEpochs has fully committed (its bank's
// checkpoint is released).
type Epochs struct {
	cfg *config.Config
	// curr is the open virtual epoch, or -1.
	curr int64
	// next is the next virtual id to allocate.
	next int64
	// Budgets of the open epoch.
	execs, loads, stores int
	// bankFree[p] is the cycle bank p's previous occupant fully committed.
	bankFree []int64
	// currInfo tracks the open epoch (valid while curr >= 0). Epochs close
	// strictly in order — the previous epoch is released the moment a new
	// one opens — so at most one is ever tracked and no map is needed on
	// the per-migration path.
	currInfo epochInfo

	// cal enforces each memory engine's issue width. Engines are nominally
	// in-order, but waiting instructions live in the slice buffer and
	// re-enter the issue queue only when their producing miss returns
	// (CFP-style), so the observable issue order is readiness order at the
	// engine's width — strict queue-position blocking would falsely
	// serialise independent miss chains that interleave in program order.
	cal []*sched.Calendar

	// ActiveCycleSum accumulates (release - open) over all epochs, for the
	// mean-allocated-epochs statistic.
	ActiveCycleSum int64
	// Opened counts epochs ever opened.
	Opened uint64
	// lastReleased is the most recently released virtual epoch (-1 before
	// the first release). Epochs are age-partitioned, so releases must be
	// strictly monotonic in the virtual id; release asserts this.
	lastReleased int64
}

// NewEpochs builds the epoch manager for the configuration.
func NewEpochs(cfg *config.Config) *Epochs {
	e := &Epochs{
		cfg:          cfg,
		curr:         -1,
		bankFree:     make([]int64, cfg.NumEpochs),
		cal:          make([]*sched.Calendar, cfg.NumEpochs),
		lastReleased: -1,
	}
	for i := range e.cal {
		e.cal[i] = sched.NewCalendar(cfg.MEIssueWidth, 1<<14)
	}
	return e
}

// Physical returns the bank of virtual epoch v.
func (e *Epochs) Physical(v int64) int { return int(v % int64(e.cfg.NumEpochs)) }

// Assign places a migrating op (exec: executes on the engine and counts
// toward the 128-instruction budget; load/store: occupies an LL queue
// entry) into the open epoch, opening a new one when a budget is exhausted.
// It returns the virtual epoch, the earliest cycle the op may enter it
// (later than t only when the new epoch's bank is still committing its
// previous occupant), and — when opening a new epoch closed the previous
// one — the release record of the closed epoch (in program-order
// processing, every op of the closed epoch has already been processed, so
// its final commit time is known).
func (e *Epochs) Assign(exec, load, store bool, seq uint64, t int64) (v int64, enterAt int64, rel Release) {
	needNew := e.curr < 0 ||
		(exec && e.execs >= e.cfg.EpochMaxInsts) ||
		(load && e.loads >= e.cfg.EpochMaxLoads) ||
		(store && e.stores >= e.cfg.EpochMaxStores)
	enterAt = t
	if needNew {
		if e.curr >= 0 {
			rel = e.release(e.curr)
		}
		v = e.next
		e.next++
		p := e.Physical(v)
		if e.bankFree[p] > enterAt {
			enterAt = e.bankFree[p]
		}
		e.curr = v
		e.execs, e.loads, e.stores = 0, 0, 0
		e.currInfo = epochInfo{open: enterAt}
		e.Opened++
	} else {
		v = e.curr
	}
	if exec {
		e.execs++
	}
	if load {
		e.loads++
	}
	if store {
		e.stores++
	}
	e.currInfo.lastSeq = seq
	return v, enterAt, rel
}

// release closes epoch v (necessarily the open one) and accounts its
// lifetime. Its last commit time is final because all its members have been
// processed.
func (e *Epochs) release(v int64) Release {
	if v <= e.lastReleased {
		panic(fmt.Sprintf("fmc: epoch release order violated: releasing epoch %d after %d (releases must be strictly monotonic)", v, e.lastReleased))
	}
	e.lastReleased = v
	inf := e.currInfo
	p := e.Physical(v)
	e.bankFree[p] = inf.lastCommit
	e.ActiveCycleSum += inf.lastCommit - inf.open
	e.curr = -1
	return Release{V: v, At: inf.lastCommit, OK: true}
}

// Issue reserves an issue slot on epoch v's engine at the earliest cycle >=
// ready respecting the engine's issue width.
func (e *Epochs) Issue(v int64, ready int64) int64 {
	return e.cal[e.Physical(v)].Reserve(ready)
}

// Committed records that the op with sequence seq of virtual epoch v
// committed at cycle t. Commit is in order, so the epoch's last observed
// commit is its release time once it closes. Closed epochs were released
// with their final commit time already known (program-order processing), so
// only the open epoch is updated.
func (e *Epochs) Committed(v int64, seq uint64, t int64) {
	if v == e.curr && t > e.currInfo.lastCommit {
		e.currInfo.lastCommit = t
	}
}

// CloseAll force-closes the open epoch (end of simulation) and returns its
// release record so accounting and filter clearing still happen.
func (e *Epochs) CloseAll() Release {
	if e.curr >= 0 {
		return e.release(e.curr)
	}
	return Release{}
}

// InFlight reports how many epochs are currently allocated (0 or 1: an
// epoch is released the moment its successor opens).
func (e *Epochs) InFlight() int {
	if e.curr >= 0 {
		return 1
	}
	return 0
}
