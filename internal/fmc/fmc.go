// Package fmc models the Flexible MultiCore substrate (Pericàs et al., PACT
// 2007) the ELSQ integrates with: the partitioned Memory Processor as a set
// of in-order, 2-way memory engines, the age-ordered epoch lifecycle
// (open → fill → close → commit/squash → bank reuse), and the activity
// accounting behind the paper's Figure 11 (LL-LSQ low-power residency) and
// the "allocated epochs" statistic.
package fmc

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sched"
)

// epochInfo tracks one virtual epoch from open to release.
type epochInfo struct {
	open       int64
	lastSeq    uint64
	lastCommit int64
}

// Release reports an epoch that fully committed: every op of virtual epoch
// V had committed by cycle At.
type Release struct {
	// V is the released virtual epoch.
	V int64
	// At is the commit cycle of its last instruction.
	At int64
	// OK distinguishes a real release from the zero value.
	OK bool
}

// Epochs manages the age-partitioned epoch lifecycle. Virtual epoch ids are
// monotonic; each virtual epoch occupies the physical bank its Placer picks
// (v mod NumEpochs under the default ModN policy) and can only open once
// that bank's previous occupant has fully committed (its checkpoint is
// released). Epochs implements BankMap over its placement record.
type Epochs struct {
	cfg *config.Config
	// placer picks the bank each opening epoch lands on; fab charges
	// epoch-state migration bandwidth when the pick is off the home bank
	// (nil fab = free moves).
	placer Placer
	fab    noc.Fabric
	// curr is the open virtual epoch, or -1.
	curr int64
	// next is the next virtual id to allocate.
	next int64
	// Budgets of the open epoch.
	execs, loads, stores int
	// bankFree[p] is the cycle bank p's previous occupant fully committed.
	bankFree []int64
	// currInfo tracks the open epoch (valid while curr >= 0). Epochs close
	// strictly in order — the previous epoch is released the moment a new
	// one opens — so at most one is ever tracked and no map is needed on
	// the per-migration path.
	currInfo epochInfo

	// cal enforces each memory engine's issue width. Engines are nominally
	// in-order, but waiting instructions live in the slice buffer and
	// re-enter the issue queue only when their producing miss returns
	// (CFP-style), so the observable issue order is readiness order at the
	// engine's width — strict queue-position blocking would falsely
	// serialise independent miss chains that interleave in program order.
	cal []*sched.Calendar

	// bankOf and vOf ring-record the bank of each recent virtual epoch
	// (indexed v & bankMask); vOf guards against the ring wrapping past a
	// still-referenced epoch. The window is far wider than the number of
	// epochs the queues can keep alive at once.
	bankOf   []int32
	vOf      []int64
	bankMask int64
	// prevBank is the bank of the most recently opened epoch (-1 before
	// the first), feeding locality-aware placement.
	prevBank int

	// ActiveCycleSum accumulates (release - open) over all epochs, for the
	// mean-allocated-epochs statistic.
	ActiveCycleSum int64
	// bankActive accumulates the same per bank, for the Figure 11
	// per-engine residency / power-down claim.
	bankActive []int64
	// Steals counts epochs placed off their mod-N home bank.
	Steals uint64
	// Opened counts epochs ever opened.
	Opened uint64
	// Releases counts epochs released (fully committed or force-closed) and
	// Issues counts engine issue-slot reservations; both feed the energy
	// model's epoch-lifecycle and engine-activity actions.
	Releases uint64
	Issues   uint64
	// lastReleased is the most recently released virtual epoch (-1 before
	// the first release). Epochs are age-partitioned, so releases must be
	// strictly monotonic in the virtual id; release asserts this.
	lastReleased int64
}

// NewEpochs builds the epoch manager for the configuration. placer picks
// each opening epoch's bank (nil = the default mod-N interleaving) and fab
// charges epoch-state migration when the pick is off the home bank (nil =
// free moves). horizon bounds each engine calendar's reservation spread;
// values <= 0 use the default 1<<14.
func NewEpochs(cfg *config.Config, placer Placer, fab noc.Fabric, horizon int) *Epochs {
	if placer == nil {
		placer = ModN{}
	}
	if horizon <= 0 {
		horizon = 1 << 14
	}
	ring := 64
	for ring < 8*cfg.NumEpochs {
		ring <<= 1
	}
	e := &Epochs{
		cfg:          cfg,
		placer:       placer,
		fab:          fab,
		curr:         -1,
		bankFree:     make([]int64, cfg.NumEpochs),
		cal:          make([]*sched.Calendar, cfg.NumEpochs),
		bankOf:       make([]int32, ring),
		vOf:          make([]int64, ring),
		bankMask:     int64(ring - 1),
		prevBank:     -1,
		bankActive:   make([]int64, cfg.NumEpochs),
		lastReleased: -1,
	}
	for i := range e.cal {
		e.cal[i] = sched.NewCalendar(cfg.MEIssueWidth, horizon)
	}
	for i := range e.vOf {
		e.vOf[i] = -1
	}
	return e
}

// Physical returns the mod-N home bank of virtual epoch v — where the
// default placement puts it and where its checkpoint slot natively lives.
// The bank actually hosting v is Bank(v); the two differ only when a
// non-default Placer stole it.
func (e *Epochs) Physical(v int64) int { return int(v % int64(e.cfg.NumEpochs)) }

// Bank implements BankMap: the physical bank hosting virtual epoch v, as
// recorded when v opened. It panics if v is older than the placement ring's
// window (a referenced epoch can never fall out of it) or never opened.
func (e *Epochs) Bank(v int64) int {
	i := v & e.bankMask
	if e.vOf[i] != v {
		panic(fmt.Sprintf("fmc: bank lookup for epoch %d outside the placement window (have %d)", v, e.vOf[i]))
	}
	return int(e.bankOf[i])
}

// Banks returns the number of physical banks (memory engines).
func (e *Epochs) Banks() int { return e.cfg.NumEpochs }

// BankActive returns the per-bank busy-cycle accounting: BankActive()[b] is
// the total cycles bank b spent with an epoch open (the complement of the
// Figure 11 power-down residency). The slice is live; callers must not
// mutate it.
func (e *Epochs) BankActive() []int64 { return e.bankActive }

// Assign places a migrating op (exec: executes on the engine and counts
// toward the 128-instruction budget; load/store: occupies an LL queue
// entry) into the open epoch, opening a new one when a budget is exhausted.
// It returns the virtual epoch, the earliest cycle the op may enter it
// (later than t only when the new epoch's bank is still committing its
// previous occupant), and — when opening a new epoch closed the previous
// one — the release record of the closed epoch (in program-order
// processing, every op of the closed epoch has already been processed, so
// its final commit time is known).
func (e *Epochs) Assign(exec, load, store bool, seq uint64, t int64) (v int64, enterAt int64, rel Release) {
	needNew := e.curr < 0 ||
		(exec && e.execs >= e.cfg.EpochMaxInsts) ||
		(load && e.loads >= e.cfg.EpochMaxLoads) ||
		(store && e.stores >= e.cfg.EpochMaxStores)
	enterAt = t
	if needNew {
		if e.curr >= 0 {
			rel = e.release(e.curr)
		}
		v = e.next
		e.next++
		p := e.placer.Place(v, t, e.prevBank, e.bankFree)
		if e.bankFree[p] > enterAt {
			enterAt = e.bankFree[p]
		}
		if home := e.Physical(v); p != home {
			// Stolen: the epoch's state block must travel from its home
			// bank to the host, charging real mesh bandwidth.
			e.Steals++
			if e.fab != nil {
				enterAt = e.fab.MigrateState(home, p, EpochStateFlits, enterAt)
			}
		}
		i := v & e.bankMask
		e.bankOf[i], e.vOf[i] = int32(p), v
		e.prevBank = p
		e.curr = v
		e.execs, e.loads, e.stores = 0, 0, 0
		e.currInfo = epochInfo{open: enterAt}
		e.Opened++
	} else {
		v = e.curr
	}
	if exec {
		e.execs++
	}
	if load {
		e.loads++
	}
	if store {
		e.stores++
	}
	e.currInfo.lastSeq = seq
	return v, enterAt, rel
}

// release closes epoch v (necessarily the open one) and accounts its
// lifetime. Its last commit time is final because all its members have been
// processed.
func (e *Epochs) release(v int64) Release {
	if v <= e.lastReleased {
		panic(fmt.Sprintf("fmc: epoch release order violated: releasing epoch %d after %d (releases must be strictly monotonic)", v, e.lastReleased))
	}
	e.lastReleased = v
	inf := e.currInfo
	p := e.Bank(v)
	e.bankFree[p] = inf.lastCommit
	e.ActiveCycleSum += inf.lastCommit - inf.open
	e.bankActive[p] += inf.lastCommit - inf.open
	e.Releases++
	e.curr = -1
	return Release{V: v, At: inf.lastCommit, OK: true}
}

// Issue reserves an issue slot on epoch v's engine at the earliest cycle >=
// ready respecting the engine's issue width.
func (e *Epochs) Issue(v int64, ready int64) int64 {
	e.Issues++
	return e.cal[e.Bank(v)].Reserve(ready)
}

// Committed records that the op with sequence seq of virtual epoch v
// committed at cycle t. Commit is in order, so the epoch's last observed
// commit is its release time once it closes. Closed epochs were released
// with their final commit time already known (program-order processing), so
// only the open epoch is updated.
func (e *Epochs) Committed(v int64, seq uint64, t int64) {
	if v == e.curr && t > e.currInfo.lastCommit {
		e.currInfo.lastCommit = t
	}
}

// CloseAll force-closes the open epoch (end of simulation) and returns its
// release record so accounting and filter clearing still happen.
func (e *Epochs) CloseAll() Release {
	if e.curr >= 0 {
		return e.release(e.curr)
	}
	return Release{}
}

// InFlight reports how many epochs are currently allocated (0 or 1: an
// epoch is released the moment its successor opens).
func (e *Epochs) InFlight() int {
	if e.curr >= 0 {
		return 1
	}
	return 0
}
