package fmc

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/xrand"
)

func analyticFab(w, h int) *noc.Analytic {
	return noc.NewAnalytic(noc.NewBus(4), noc.NewMesh(w, h, 1))
}

// TestBankReuseStallsSmallBanks pins the bank time-exclusivity contract at
// the small engine counts where reuse is constant: a new epoch mapped onto a
// bank whose previous occupant has not finished committing enters at that
// occupant's commit time, never earlier.
func TestBankReuseStallsSmallBanks(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		cfg := config.Default()
		cfg.NumEpochs = n
		cfg.EpochMaxInsts = 1
		e := NewEpochs(&cfg, nil, nil, 0)
		var seq uint64
		// Fill every bank once; each epoch lands on a never-used bank, so
		// none may stall.
		for i := 0; i < n; i++ {
			seq++
			v, enterAt, _ := e.Assign(true, false, false, seq, int64(i))
			if v != int64(i) {
				t.Fatalf("n=%d: epoch %d got virtual id %d", n, i, v)
			}
			if enterAt != int64(i) {
				t.Fatalf("n=%d: epoch %d stalled on a fresh bank: enterAt=%d", n, i, enterAt)
			}
			e.Committed(v, seq, 1000+int64(i)*100)
		}
		// Epoch n wraps onto bank 0, whose occupant commits at cycle 1000.
		seq++
		v, enterAt, rel := e.Assign(true, false, false, seq, 5)
		if v != int64(n) || e.Bank(v) != 0 {
			t.Fatalf("n=%d: wrap epoch %d on bank %d", n, v, e.Bank(v))
		}
		if !rel.OK || rel.V != int64(n-1) {
			t.Fatalf("n=%d: wrap did not release epoch %d: %+v", n, n-1, rel)
		}
		if enterAt != 1000 {
			t.Fatalf("n=%d: bank-reuse stall missing: enterAt=%d, want 1000 (bank 0 free time)", n, enterAt)
		}
	}
}

// TestActiveCycleSumSurvivesCloseAll: the forced end-of-run close must
// account the still-open epoch's lifetime exactly like a natural release, in
// both the global sum and the per-bank residency used for Figure 11.
func TestActiveCycleSumSurvivesCloseAll(t *testing.T) {
	cfg := config.Default()
	cfg.NumEpochs = 2
	cfg.EpochMaxInsts = 1
	e := NewEpochs(&cfg, nil, nil, 0)
	v0, enter0, _ := e.Assign(true, false, false, 1, 10)
	e.Committed(v0, 1, 500)
	v1, enter1, _ := e.Assign(true, false, false, 2, 20)
	if got, want := e.ActiveCycleSum, 500-enter0; got != want {
		t.Fatalf("after first release ActiveCycleSum = %d, want %d", got, want)
	}
	e.Committed(v1, 2, 900)
	rel := e.CloseAll()
	if !rel.OK || rel.V != v1 || rel.At != 900 {
		t.Fatalf("CloseAll release = %+v", rel)
	}
	want := (500 - enter0) + (900 - enter1)
	if e.ActiveCycleSum != want {
		t.Fatalf("ActiveCycleSum lost the forced close: %d, want %d", e.ActiveCycleSum, want)
	}
	ba := e.BankActive()
	if ba[0] != 500-enter0 || ba[1] != 900-enter1 {
		t.Fatalf("BankActive = %v, want [%d %d]", ba, 500-enter0, 900-enter1)
	}
	if e.CloseAll().OK {
		t.Fatal("second CloseAll released something")
	}
}

// TestEnterAtRespectsBankFree drives every placement policy over a random
// epoch stream and checks the invariant placement must never break: an epoch
// may not enter its bank before the bank's previous occupant committed, and
// never before the opening op arrived.
func TestEnterAtRespectsBankFree(t *testing.T) {
	policies := []struct {
		name string
		mk   func(fab noc.Fabric) Placer
	}{
		{"modn", func(noc.Fabric) Placer { return ModN{} }},
		{"leastloaded", func(fab noc.Fabric) Placer { return &LeastLoaded{Fab: fab} }},
		{"steal", func(fab noc.Fabric) Placer { return &Steal{Fab: fab} }},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			cfg := config.Default()
			cfg.NumEpochs = 4
			cfg.EpochMaxInsts = 1
			fab := analyticFab(4, 1)
			e := NewEpochs(&cfg, pol.mk(fab), fab, 0)
			r := xrand.New(7)
			shadow := make([]int64, 4) // bank -> commit time of its last occupant
			var seq uint64
			now := int64(0)
			for i := 0; i < 300; i++ {
				seq++
				now += int64(r.Intn(40))
				v, enterAt, _ := e.Assign(true, false, false, seq, now)
				b := e.Bank(v)
				if enterAt < now {
					t.Fatalf("epoch %d entered at %d before its opening op at %d", v, enterAt, now)
				}
				if enterAt < shadow[b] {
					t.Fatalf("epoch %d violated bank %d exclusivity: enterAt=%d, bank busy until %d",
						v, b, enterAt, shadow[b])
				}
				ct := enterAt + int64(1+r.Intn(150))
				e.Committed(v, seq, ct)
				shadow[b] = ct
			}
		})
	}
}

// TestModNNeverSteals: the default policy always places on the home bank, so
// it charges no migration traffic — the property that keeps the golden
// fixture byte-identical under the Fabric refactor.
func TestModNNeverSteals(t *testing.T) {
	cfg := config.Default()
	cfg.EpochMaxInsts = 1
	fab := analyticFab(4, 4)
	e := NewEpochs(&cfg, ModN{}, fab, 0)
	r := xrand.New(3)
	var seq uint64
	now := int64(0)
	for i := 0; i < 200; i++ {
		seq++
		now += int64(r.Intn(20))
		v, enterAt, _ := e.Assign(true, false, false, seq, now)
		if got := e.Bank(v); got != e.Physical(v) {
			t.Fatalf("epoch %d placed on %d, home is %d", v, got, e.Physical(v))
		}
		e.Committed(v, seq, enterAt+int64(1+r.Intn(100)))
	}
	if e.Steals != 0 {
		t.Fatalf("mod-N stole %d times", e.Steals)
	}
	if tr := fab.Traffic(); tr.MigrateFlits != 0 || tr.Hops != 0 {
		t.Fatalf("mod-N charged migration traffic: %+v", tr)
	}
}

// TestStealChargesMigration: a stolen epoch pays the home->host state
// transfer on the fabric, and the hop accounting conserves flits x distance.
func TestStealChargesMigration(t *testing.T) {
	cfg := config.Default()
	cfg.NumEpochs = 2
	cfg.EpochMaxInsts = 1
	fab := analyticFab(2, 1)
	e := NewEpochs(&cfg, &Steal{Fab: fab}, fab, 0)
	// Epoch 0 on home bank 0, busy until 1000.
	v0, _, _ := e.Assign(true, false, false, 1, 0)
	e.Committed(v0, 1, 1000)
	// Epoch 1 on home bank 1, commits quickly.
	v1, _, _ := e.Assign(true, false, false, 2, 5)
	e.Committed(v1, 2, 10)
	// Epoch 2's home (bank 0) is busy until 1000, bank 1 freed at 10: steal.
	v2, enterAt, _ := e.Assign(true, false, false, 3, 20)
	if b := e.Bank(v2); b != 1 {
		t.Fatalf("epoch 2 placed on bank %d, want stolen bank 1", b)
	}
	if e.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", e.Steals)
	}
	// Analytic migration of 8 flits over 1 hop at cost 1: 20 + 1 + 7 = 28.
	if enterAt != 28 {
		t.Fatalf("stolen epoch entered at %d, want 28 (migration latency)", enterAt)
	}
	tr := fab.Traffic()
	if tr.MigrateFlits != EpochStateFlits || tr.Hops != EpochStateFlits*1 {
		t.Fatalf("migration traffic = %+v, want %d flits over 1 hop each", tr, EpochStateFlits)
	}
}

// TestLeastLoadedPlace pins the policy's selection order: earliest effective
// entry first, then fewest hops from the previous bank, then lowest index.
func TestLeastLoadedPlace(t *testing.T) {
	fab := analyticFab(4, 1)
	p := &LeastLoaded{Fab: fab}
	bankFree := []int64{100, 50, 50, 200}
	if got := p.Place(9, 0, 3, bankFree); got != 2 {
		t.Fatalf("locality tie-break: got bank %d, want 2 (nearer prev=3)", got)
	}
	if got := p.Place(9, 0, -1, bankFree); got != 1 {
		t.Fatalf("index tie-break without prev: got bank %d, want 1", got)
	}
	// All banks free by t: every effective entry is t, prev wins on locality.
	if got := p.Place(9, 300, 0, bankFree); got != 0 {
		t.Fatalf("all-free locality: got bank %d, want 0", got)
	}
	// No fabric: pure earliest-free with index tie-break.
	if got := (&LeastLoaded{}).Place(9, 0, 3, bankFree); got != 1 {
		t.Fatalf("no-fabric tie-break: got bank %d, want 1", got)
	}
}

// TestStealPlace pins the home-affinity rules: keep home when free, steal the
// nearest free bank otherwise, fall back to home when everything is busy.
func TestStealPlace(t *testing.T) {
	fab := analyticFab(4, 1)
	p := &Steal{Fab: fab}
	bankFree := []int64{100, 0, 0, 0}
	if got := p.Place(4, 10, 3, bankFree); got != 3 {
		t.Fatalf("busy home: got bank %d, want 3 (nearest free to prev)", got)
	}
	if got := p.Place(5, 10, 3, bankFree); got != 1 {
		t.Fatalf("free home: got bank %d, want home 1", got)
	}
	busy := []int64{100, 100, 100, 100}
	if got := p.Place(4, 10, 3, busy); got != 0 {
		t.Fatalf("all busy: got bank %d, want home 0", got)
	}
	if got := (&Steal{}).Place(4, 10, 3, bankFree); got != 1 {
		t.Fatalf("no-fabric steal: got bank %d, want lowest free 1", got)
	}
}

// TestPlacerFor maps every config value to its policy.
func TestPlacerFor(t *testing.T) {
	cfg := config.Default()
	fab := analyticFab(4, 4)
	for _, tt := range []struct {
		pol  config.PlacePolicy
		want string
	}{
		{config.PlaceModN, "modn"},
		{config.PlaceLeastLoaded, "leastloaded"},
		{config.PlaceSteal, "steal"},
	} {
		cfg.Place = tt.pol
		if got := PlacerFor(&cfg, fab).Name(); got != tt.want {
			t.Errorf("PlacerFor(%v) = %q, want %q", tt.pol, got, tt.want)
		}
	}
}

// TestBankLookupOutsideWindowPanics: the guard ring turns a stale placement
// lookup into a loud failure instead of a silent mod-N alias.
func TestBankLookupOutsideWindowPanics(t *testing.T) {
	e := newEpochs(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Bank of an unplaced epoch did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "placement window") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	e.Bank(0)
}

// TestHomeBanks pins the static fallback map.
func TestHomeBanks(t *testing.T) {
	m := HomeBanks(4)
	for v := int64(0); v < 12; v++ {
		if got := m.Bank(v); got != int(v%4) {
			t.Fatalf("HomeBanks(4).Bank(%d) = %d", v, got)
		}
	}
}
