package fmc

import (
	"testing"

	"repro/internal/config"
)

func newEpochs(t *testing.T) *Epochs {
	t.Helper()
	cfg := config.Default()
	return NewEpochs(&cfg, nil, nil, 0)
}

func TestAssignFillsEpochByExecBudget(t *testing.T) {
	e := newEpochs(t)
	var seq uint64
	v0, _, rel := e.Assign(true, false, false, seq, 0)
	if rel.OK {
		t.Fatal("first assign released an epoch")
	}
	if v0 != 0 {
		t.Fatalf("first virtual epoch = %d", v0)
	}
	// Fill the 128-instruction budget.
	for i := 1; i < 128; i++ {
		seq++
		v, _, _ := e.Assign(true, false, false, seq, int64(i))
		if v != 0 {
			t.Fatalf("epoch changed early at %d insts", i)
		}
	}
	seq++
	v, _, rel := e.Assign(true, false, false, seq, 130)
	if v != 1 {
		t.Fatalf("second epoch = %d, want 1", v)
	}
	if !rel.OK || rel.V != 0 {
		t.Fatalf("closing epoch 0 did not release it: %+v", rel)
	}
}

func TestAssignLoadStoreBudgets(t *testing.T) {
	e := newEpochs(t)
	var seq uint64
	for i := 0; i < 64; i++ {
		seq++
		e.Committed(0, seq, int64(i))
		if v, _, _ := e.Assign(false, true, false, seq, 0); v != 0 {
			t.Fatalf("load %d overflowed early", i)
		}
	}
	if v, _, _ := e.Assign(false, true, false, seq+1, 0); v != 1 {
		t.Error("65th load did not open a new epoch (ME max loads 64)")
	}

	e2 := newEpochs(t)
	for i := 0; i < 32; i++ {
		if v, _, _ := e2.Assign(false, false, true, uint64(i), 0); v != 0 {
			t.Fatalf("store %d overflowed early", i)
		}
	}
	if v, _, _ := e2.Assign(false, false, true, 99, 0); v != 1 {
		t.Error("33rd store did not open a new epoch (ME max stores 32)")
	}
}

func TestBankReuseWaitsForCommit(t *testing.T) {
	cfg := config.Default()
	cfg.NumEpochs = 2
	cfg.EpochMaxInsts = 1
	e := NewEpochs(&cfg, nil, nil, 0)
	// Epoch 0: one inst, committed at t=1000.
	v0, _, _ := e.Assign(true, false, false, 1, 0)
	e.Committed(v0, 1, 1000)
	// Epoch 1 opens (closing 0, releasing at its commit 1000).
	v1, _, rel := e.Assign(true, false, false, 2, 5)
	if v1 != 1 || !rel.OK || rel.At != 1000 {
		t.Fatalf("v1=%d rel=%+v", v1, rel)
	}
	e.Committed(v1, 2, 2000)
	// Epoch 2 reuses bank 0, whose occupant released at t=1000.
	_, enterAt, _ := e.Assign(true, false, false, 3, 10)
	if enterAt != 1000 {
		t.Errorf("epoch 2 enterAt = %d, want 1000 (bank 0 free time)", enterAt)
	}
}

func TestIssueWidth(t *testing.T) {
	e := newEpochs(t)
	v, _, _ := e.Assign(true, false, false, 1, 0)
	// ME issue width is 2: two issues at cycle 7, third at 8.
	if got := e.Issue(v, 7); got != 7 {
		t.Errorf("first issue = %d", got)
	}
	if got := e.Issue(v, 7); got != 7 {
		t.Errorf("second issue = %d", got)
	}
	if got := e.Issue(v, 7); got != 8 {
		t.Errorf("third issue = %d, want 8", got)
	}
}

func TestActiveCycleAccounting(t *testing.T) {
	cfg := config.Default()
	cfg.EpochMaxInsts = 2
	e := NewEpochs(&cfg, nil, nil, 0)
	v, enter, _ := e.Assign(true, false, false, 1, 10)
	if enter != 10 {
		t.Fatalf("enter = %d", enter)
	}
	e.Committed(v, 1, 50)
	e.Assign(true, false, false, 2, 11)
	e.Committed(v, 2, 60)
	// Close by opening the next epoch.
	_, _, rel := e.Assign(true, false, false, 3, 12)
	if !rel.OK || rel.At != 60 {
		t.Fatalf("rel = %+v", rel)
	}
	if e.ActiveCycleSum != 50 { // 60 - 10
		t.Errorf("ActiveCycleSum = %d, want 50", e.ActiveCycleSum)
	}
	if e.Opened != 2 {
		t.Errorf("Opened = %d", e.Opened)
	}
}

func TestCloseAll(t *testing.T) {
	e := newEpochs(t)
	if rel := e.CloseAll(); rel.OK {
		t.Error("CloseAll on empty released something")
	}
	v, _, _ := e.Assign(true, false, false, 1, 0)
	e.Committed(v, 1, 99)
	rel := e.CloseAll()
	if !rel.OK || rel.V != v || rel.At != 99 {
		t.Errorf("CloseAll = %+v", rel)
	}
	if e.InFlight() != 0 {
		t.Errorf("InFlight = %d after CloseAll", e.InFlight())
	}
}

func TestPhysicalMapping(t *testing.T) {
	e := newEpochs(t)
	if e.Physical(0) != 0 || e.Physical(16) != 0 || e.Physical(17) != 1 {
		t.Error("physical mapping wrong")
	}
}
