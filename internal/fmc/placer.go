package fmc

import (
	"repro/internal/config"
	"repro/internal/noc"
)

// EpochStateFlits is the size of the architectural state block (register
// checkpoint + epoch metadata) that moves across the mesh when an epoch is
// placed off its home bank. Placement policies that steal banks pay this
// migration bandwidth through noc.Fabric.MigrateState.
const EpochStateFlits = 8

// Placer decides which physical bank (memory engine) hosts a new virtual
// epoch. Place is called exactly when an epoch opens: v is the virtual id,
// t the cycle the opening op arrived, prev the bank of the previously opened
// epoch (-1 for the first), and bankFree[b] the cycle bank b's last occupant
// fully committed. The returned bank must be in [0, len(bankFree)).
// Implementations must be deterministic: placement feeds timing, and timing
// feeds the golden/digest gates.
type Placer interface {
	// Name identifies the policy in logs and counters.
	Name() string
	// Place picks the bank for virtual epoch v.
	Place(v, t int64, prev int, bankFree []int64) int
}

// ModN is the paper's interleaved placement: virtual epoch v occupies bank
// v mod NumEpochs. The default, and bit-identical to the pre-Placer code.
type ModN struct{}

// Name implements Placer.
func (ModN) Name() string { return "modn" }

// Place implements Placer.
func (ModN) Place(v, _ int64, _ int, bankFree []int64) int {
	return int(v % int64(len(bankFree)))
}

// LeastLoaded places each epoch on the bank that can accept it earliest
// (smallest max(t, bankFree[b])), breaking ties toward the bank nearest the
// previous epoch's bank in fabric hops, then toward the lower index. It
// trades home-bank affinity for minimum bank-reuse stalling.
type LeastLoaded struct {
	// Fab supplies hop distances for the locality tie-break (nil = ignore
	// locality).
	Fab noc.Fabric
}

// Name implements Placer.
func (*LeastLoaded) Name() string { return "leastloaded" }

// Place implements Placer.
func (p *LeastLoaded) Place(_ int64, t int64, prev int, bankFree []int64) int {
	best := -1
	var bestEff int64
	bestDist := 0
	for b := range bankFree {
		eff := bankFree[b]
		if eff < t {
			eff = t
		}
		d := 0
		if p.Fab != nil && prev >= 0 {
			d = p.Fab.Distance(prev, b)
		}
		if best < 0 || eff < bestEff || (eff == bestEff && d < bestDist) {
			best, bestEff, bestDist = b, eff, d
		}
	}
	return best
}

// Steal keeps the mod-N home bank whenever it is already free and otherwise
// steals the free bank nearest the previous epoch's bank (falling back to
// the home bank and its reuse stall when no bank is free). A steal moves the
// epoch's state block off its home, so the caller charges migration
// bandwidth for it.
type Steal struct {
	// Fab supplies hop distances for choosing the nearest free bank (nil =
	// lowest-index free bank).
	Fab noc.Fabric
}

// Name implements Placer.
func (*Steal) Name() string { return "steal" }

// Place implements Placer.
func (p *Steal) Place(v, t int64, prev int, bankFree []int64) int {
	home := int(v % int64(len(bankFree)))
	if bankFree[home] <= t {
		return home
	}
	best := -1
	bestDist := 0
	for b := range bankFree {
		if bankFree[b] > t {
			continue
		}
		d := 0
		if p.Fab != nil && prev >= 0 {
			d = p.Fab.Distance(prev, b)
		}
		if best < 0 || d < bestDist {
			best, bestDist = b, d
		}
	}
	if best < 0 {
		return home
	}
	return best
}

// PlacerFor builds the placement policy cfg selects, wired to fab for
// locality decisions.
func PlacerFor(cfg *config.Config, fab noc.Fabric) Placer {
	switch cfg.Place {
	case config.PlaceLeastLoaded:
		return &LeastLoaded{Fab: fab}
	case config.PlaceSteal:
		return &Steal{Fab: fab}
	default:
		return ModN{}
	}
}

// BankMap resolves a virtual epoch id to the physical bank hosting it. The
// live Epochs manager implements it from its placement record; HomeBanks is
// the static mod-N fallback for schemes running without an epoch manager.
type BankMap interface {
	// Bank returns the physical bank hosting virtual epoch v.
	Bank(v int64) int
}

// HomeBanks is the static mod-N BankMap over n banks.
type HomeBanks int

// Bank implements BankMap.
func (n HomeBanks) Bank(v int64) int { return int(v % int64(n)) }
