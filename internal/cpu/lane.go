package cpu

import (
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/stats"
)

// Lane drives one simulation incrementally: the same warm-up, sampled
// measurement intervals and finalization that Run performs in one call,
// decomposed into resumable pieces so a batch driver can interleave many
// lanes' progress. The sequence of workload-source and pipeline operations a
// Lane performs is exactly Run's — interleaving changes only which lane the
// host CPU works on, never what any lane simulates — so a Lane's Result is
// bit-identical to Run's on the same Sim.
//
// Lifecycle: NewLane, Warm once, Step until it reports no more work, then
// Finish exactly once.
type Lane struct {
	s *Sim

	// in is the lane-resident instruction scratch Step decodes into (Run's
	// stack local, lifted so it survives across Step calls).
	in isa.Inst

	warmAccess func(addr uint64)

	// Sampling plan (config.Intervals): measurement is split into intervals
	// of per instructions (the first absorbs the remainder, so target starts
	// at MaxInsts - per*(intervals-1)) separated by bleed functional
	// instructions.
	intervals  int
	bleed, per uint64
	target     uint64
	k          int
	warmedUp   bool
	finished   bool

	// fabAtMeasure is the fabric's traffic snapshot at measurement start;
	// Finish subtracts it so reported interconnect counters cover exactly
	// the measured region, never warm-up traffic.
	fabAtMeasure noc.Traffic
}

// NewLane wraps s for incremental driving. The Sim must not have been run.
func (s *Sim) NewLane() *Lane {
	l := &Lane{
		s:          s,
		warmAccess: func(addr uint64) { s.hier.Access(addr) },
	}
	intervals, bleed := s.cfg.Intervals()
	l.intervals = intervals
	l.bleed = bleed
	l.per = s.cfg.MaxInsts / uint64(intervals)
	l.target = s.cfg.MaxInsts - l.per*uint64(intervals-1) // first interval absorbs the remainder
	return l
}

// Warm performs the functional warm-up phase (a no-op when the Sim was
// checkpoint-restored). It reports false if done fired first.
func (l *Lane) Warm(done <-chan struct{}) bool {
	if l.warmedUp {
		return true
	}
	l.warmedUp = true
	if !l.s.warmed && !l.s.warm(l.s.cfg.WarmupInsts, l.warmAccess, done) {
		return false
	}
	// Measurement starts here: snapshot the fabric so Finish reports only
	// the measured region's traffic (the warm-up is purely functional
	// today, but the subtraction keeps that true by construction).
	l.fabAtMeasure = l.s.fab.Traffic()
	return true
}

// Step advances the measured phase by up to n committed instructions,
// running inter-interval functional bleeds as they come due. It returns
// more=false once the full measurement budget has committed (call Finish),
// and ok=false if done fired first (the lane is then unusable).
func (l *Lane) Step(n uint64, done <-chan struct{}) (more, ok bool) {
	s := l.s
	for n > 0 && !l.finished {
		if s.committed >= l.target {
			if l.k == l.intervals-1 {
				l.finished = true
				break
			}
			if !s.warm(l.bleed, l.warmAccess, done) {
				return false, false
			}
			l.k++
			l.target += l.per
			continue
		}
		limit := l.target
		if s.committed+n < limit {
			limit = s.committed + n
		}
		n -= limit - s.committed
		for s.committed < limit {
			s.gen.Next(&l.in)
			s.step(&l.in)
		}
		if canceled(done) {
			return false, false
		}
	}
	if !l.finished && s.committed >= l.target && l.k == l.intervals-1 {
		l.finished = true
	}
	return !l.finished, true
}

// Finish closes out the run and assembles the Result. It must be called
// exactly once, after Step has reported no more work.
func (l *Lane) Finish() *Result {
	if !l.finished {
		panic("cpu: Lane.Finish before the measurement budget completed")
	}
	s := l.s
	if s.epochs != nil {
		if rel := s.epochs.CloseAll(); rel.OK {
			s.scheme.EpochCommitted(int(rel.V), rel.At)
		}
	}
	cycles := s.lastCommit
	if cycles <= 0 {
		cycles = 1
	}
	if s.llBusyUntil < cycles {
		s.llIdle += cycles - s.llBusyUntil
	}
	res := &Result{
		Bench:     s.gen.Name(),
		Suite:     s.gen.Suite(),
		Config:    s.cfg.Name(),
		Committed: s.committed,
		Cycles:    cycles,
		IPC:       float64(s.committed) / float64(cycles),
		Counters:  s.c,
		LoadDist:  s.loadDist,
		StoreDist: s.storeDist,
	}
	res.Counters.Merge(s.scheme.Counters())
	if s.svwEng != nil {
		res.Counters.Merge(s.svwEng.Counters())
		res.Counters.Add("ssbf", s.svwEng.SSBFAccesses())
	}
	fs := s.fab.Traffic().Sub(l.fabAtMeasure)
	res.Counters.Add("noc_hops", fs.Hops)
	// Counters that post-date the golden fixture are added only when
	// non-zero, so default-config runs keep their exact counter set (Add
	// makes a counter visible even at zero).
	addNZ(res.Counters, "noc_link_wait", fs.LinkWaitCycles)
	addNZ(res.Counters, "noc_bus_wait", fs.BusWaitCycles)
	addNZ(res.Counters, "noc_migrate_flits", fs.MigrateFlits)
	if s.cfg.Model == config.ModelFMC {
		addNZ(res.Counters, "place_steals", s.epochs.Steals)
		res.LLIdleFrac = float64(s.llIdle) / float64(cycles)
		// Mean allocated epochs over the cycles the MP is active (the
		// paper's "when the Memory Processor is active, not necessarily
		// all epoch queues are allocated" statistic).
		if busy := cycles - s.llIdle; busy > 0 {
			res.AvgEpochs = float64(s.epochs.ActiveCycleSum) / float64(busy)
		}
		// Per-bank residency for the Figure 11 power-down claim.
		ba := s.epochs.BankActive()
		res.BankActiveCycles = append([]int64(nil), ba...)
		var idle float64
		for _, a := range ba {
			idle += 1 - float64(a)/float64(cycles)
		}
		res.BankPowerDownFrac = idle / float64(len(ba))
	}
	// Energy-accounting activity bag (internal/energy): the level-split
	// cache accesses accumulated in s.act, plus per-source action counts
	// read out here. Plain Add keeps the name set deterministic per
	// configuration; the bag is excluded from golden and bench digests.
	res.Activity = s.act
	// Classifier accuracy and table activity (internal/predict): the
	// reactive policy keeps none, so default-config runs keep their exact
	// counter set.
	s.class.Flush(res.Counters, res.Activity)
	if a, ok := s.scheme.(interface{ Activity() *stats.Counters }); ok {
		res.Activity.Merge(a.Activity())
	}
	if s.svwEng != nil {
		res.Activity.Add("ssbf_read", s.svwEng.SSBFReads())
		res.Activity.Add("ssbf_write", s.svwEng.SSBFWrites())
	}
	res.Activity.Add("noc_oneway", fs.OneWays)
	res.Activity.Add("noc_roundtrip", fs.RoundTrips)
	res.Activity.Add("noc_migrate_flit", fs.MigrateFlits)
	if s.epochs != nil {
		res.Activity.Add("epoch_open", s.epochs.Opened)
		res.Activity.Add("epoch_steal", s.epochs.Steals)
		res.Activity.Add("epoch_release", s.epochs.Releases)
		res.Activity.Add("me_issue", s.epochs.Issues)
	}
	return res
}

// addNZ adds a counter only when the value is non-zero, keeping counters
// that post-date the golden fixture out of runs that never exercise them.
func addNZ(c *stats.Counters, name string, v uint64) {
	if v != 0 {
		c.Add(name, v)
	}
}
