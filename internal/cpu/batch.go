package cpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/workload"
)

// batchMemOpPool is how many store MemOp records are pre-seeded into each
// lane's StoreIndex recycling pool when the lane is built by NewBatch. The
// steady-state store window is bounded by the compaction horizon to a few
// thousand records, so this covers it and the per-store path never grows the
// heap; a scalar New keeps the original grow-on-demand behaviour.
const batchMemOpPool = 4096

// laneArena carves one batch's hot arrays — calendar slots, ring times,
// cache lines, StoreIndex bucket tables and MemOp pools — out of a handful
// of contiguous slabs, one structure-of-arrays slab per element type, with
// each lane's block adjacent to its neighbours'. A nil *laneArena is valid
// everywhere and means "allocate privately" (the scalar path), so newSim is
// written once against the arena API.
type laneArena struct {
	u64   []uint64
	i64   []int64
	ptr   []*lsq.MemOp
	ops   []lsq.MemOp
	lines *mem.LineArena
}

func (a *laneArena) takeU64(n int) []uint64 {
	s := a.u64[:n:n]
	a.u64 = a.u64[n:]
	return s
}

func (a *laneArena) takeI64(n int) []int64 {
	s := a.i64[:n:n]
	a.i64 = a.i64[n:]
	return s
}

func (a *laneArena) takePtr(n int) []*lsq.MemOp {
	s := a.ptr[:n:n]
	a.ptr = a.ptr[n:]
	return s
}

func (a *laneArena) takeOps(n int) []lsq.MemOp {
	s := a.ops[:n:n]
	a.ops = a.ops[n:]
	return s
}

// calendar builds one resource calendar at the given horizon, carving its
// slot ring from the shared slab when batched.
func (a *laneArena) calendar(width, horizon int) *sched.Calendar {
	if a == nil {
		return sched.NewCalendar(width, horizon)
	}
	return sched.NewCalendarIn(width, horizon, a.takeU64(sched.CalendarSlots(horizon)))
}

// ring builds one occupancy ring (non-positive capacity = unlimited, which
// has no storage to carve).
func (a *laneArena) ring(capacity int) *sched.Ring {
	if a == nil || capacity <= 0 {
		return sched.NewRing(capacity)
	}
	return sched.NewRingIn(capacity, a.takeI64(capacity))
}

// lineArena returns the shared cache-line arena, or nil for private
// allocation.
func (a *laneArena) lineArena() *mem.LineArena {
	if a == nil {
		return nil
	}
	return a.lines
}

// classifier builds one lane's execution-locality classifier, carving its
// predictor-table words from the shared slab when batched (zero words for
// the reactive policy).
func (a *laneArena) classifier(cfg *config.Config) predict.Classifier {
	if a == nil {
		return predict.New(cfg)
	}
	return predict.NewIn(cfg, a.takeU64(predict.TableWords(cfg)))
}

// storeIndex builds one lane's StoreIndex, with a slab-backed bucket table
// and a pre-seeded record pool when batched.
func (a *laneArena) storeIndex() *lsq.StoreIndex {
	if a == nil {
		return lsq.NewStoreIndex()
	}
	ix := lsq.NewStoreIndexIn(a.takePtr(lsq.StoreIndexBuckets()))
	ix.SeedPool(a.takeOps(batchMemOpPool))
	return ix
}

// NewBatch builds one simulator per (cfgs[i], gens[i]) pair with every
// lane's hot arrays carved from shared contiguous slabs, so a driver
// advancing the lanes in lockstep (internal/batch) walks adjacent memory
// instead of pointer-chasing K independently allocated heaps. The slices
// must be the same non-zero length. Each returned Sim is bit-identical in
// behaviour to New(cfgs[i], gens[i]) — only the placement of its backing
// arrays differs.
func NewBatch(cfgs []config.Config, gens []workload.Source) ([]*Sim, error) {
	if len(cfgs) == 0 || len(cfgs) != len(gens) {
		return nil, fmt.Errorf("cpu: batch wants equal non-zero config and source counts, got %d and %d", len(cfgs), len(gens))
	}
	// Validate everything before sizing so the slab pass can trust the
	// geometry (Lines(), WindowSize() etc. assume a valid config).
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("cpu: batch lane %d: %w", i, err)
		}
	}
	var nu64, ni64, nptr, nops, nlines int
	for i := range cfgs {
		nu64 += (numCalendars + fabricCalendars(&cfgs[i])) * sched.CalendarSlots(calHorizonFor(&cfgs[i]))
		nu64 += predict.TableWords(&cfgs[i])
		for _, c := range ringCapsFor(&cfgs[i]) {
			if c > 0 {
				ni64 += c
			}
		}
		nptr += lsq.StoreIndexBuckets()
		nops += batchMemOpPool
		nlines += mem.HierarchyLines(&cfgs[i])
	}
	ar := &laneArena{
		u64:   make([]uint64, nu64),
		i64:   make([]int64, ni64),
		ptr:   make([]*lsq.MemOp, nptr),
		ops:   make([]lsq.MemOp, nops),
		lines: mem.NewLineArena(nlines),
	}
	sims := make([]*Sim, len(cfgs))
	for i := range cfgs {
		s, err := newSim(cfgs[i], gens[i], ar)
		if err != nil {
			return nil, fmt.Errorf("cpu: batch lane %d: %w", i, err)
		}
		sims[i] = s
	}
	return sims, nil
}
