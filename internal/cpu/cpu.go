// Package cpu is the cycle-level timing model hosting the LSQ schemes: a
// 4-way out-of-order Cache Processor (64-entry ROB, 40+40 issue-queue
// entries, 2 cache ports) optionally coupled to the FMC Memory Processor
// (16 in-order 2-way memory engines, one epoch each) — Table 1 of the
// paper.
//
// The model is a deterministic program-order sweep with resource calendars:
// for each dynamic instruction, dispatch is bounded by fetch bandwidth and
// structure occupancy (rings), readiness follows register dataflow, issue
// reserves ports/width at the earliest free cycle, completion feeds
// dependents, and commit is in-order and width-limited. Mispredicted
// branches inject wrong-path instructions that occupy the pipeline, search
// the queues and pollute the caches until branch resolution. Low-locality
// classification follows the execution-locality rule: an instruction whose
// operands become ready more than MigrateThreshold cycles after dispatch
// (or a load that misses in the L2) migrates to the current epoch's memory
// engine.
package cpu

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fmc"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/svw"
	"repro/internal/workload"
)

// calHorizon bounds the spread of reservation times within one calendar.
const calHorizon = 1 << 14

// calHorizonFor returns the calendar horizon for cfg: the default, widened
// until it comfortably covers the in-flight window for large epoch counts
// (the engine-scaling sweeps). The horizon only arms the calendar's
// anti-aliasing guard — it never changes where a reservation lands — so
// widening is result-neutral; at the default geometry it returns calHorizon
// and slab layouts are unchanged.
func calHorizonFor(cfg *config.Config) int {
	h := calHorizon
	for h < 4*cfg.WindowSize() {
		h <<= 1
	}
	return h
}

// meshDims returns the memory-engine mesh geometry for an engine count: the
// paper's 4x4 for the default 16 engines, a single row otherwise.
func meshDims(numEpochs int) (w, h int) {
	if numEpochs == 16 {
		return 4, 4
	}
	return numEpochs, 1
}

// fabricCalendars returns how many arena-carved reservation calendars the
// lane's interconnect fabric needs (0 for the analytic model).
func fabricCalendars(cfg *config.Config) int {
	if cfg.NoC != config.NoCContended {
		return 0
	}
	w, h := meshDims(cfg.NumEpochs)
	return noc.ContendedCalendars(w, h)
}

// Result carries everything an experiment reads out of one simulation.
type Result struct {
	// Bench and Config identify the run.
	Bench  string
	Suite  workload.Suite
	Config string
	// Committed is the number of committed instructions.
	Committed uint64
	// Cycles is the total execution time.
	Cycles int64
	// IPC is Committed/Cycles.
	IPC float64
	// Counters aggregates pipeline, scheme, SVW and interconnect events
	// (Table 2 columns use "hl_lq", "hl_sq", "ll_lq", "ll_sq", "ert",
	// "ssbf", "roundtrip", "cache").
	Counters *stats.Counters
	// LoadDist and StoreDist are the decode→address-calculation latency
	// histograms behind Figure 1 (30-cycle buckets).
	LoadDist, StoreDist *stats.Histogram
	// LLIdleFrac is the fraction of cycles with the LL-LSQ empty (Fig 11).
	LLIdleFrac float64
	// AvgEpochs is the mean number of allocated epochs over time.
	AvgEpochs float64
	// BankActiveCycles is the measured per-bank (memory-engine) busy-cycle
	// residency under the placement policy, and BankPowerDownFrac the mean
	// fraction of the run each bank could power down — the per-engine view
	// behind Figure 11. FMC only; both post-date the bench baseline and
	// are excluded from its digest (digestResults hashes a fixed list).
	BankActiveCycles  []int64
	BankPowerDownFrac float64
	// Activity holds the energy-accounting action counters (internal/energy):
	// timed cache accesses split by satisfying level, ERT inserts, SSBF
	// read/write split, epoch lifecycle events and per-message NoC traffic.
	// It is a separate bag from Counters because golden fixtures and bench
	// digests pin the legacy counter set bit-for-bit; Activity is excluded
	// from both, so the energy model observes without perturbing any
	// baseline.
	Activity *stats.Counters
}

// CommitObserver receives the committed-path memory-operation stream in
// program order, after each op's timing and forwarding provenance are final.
// It is the hook the differential oracle (internal/oracle) certifies load
// values through. The op pointer is valid only for the duration of the call
// — the pipeline model recycles the records — so implementations must copy
// whatever they keep. Wrong-path ops never reach the observer. When no
// observer is attached the hook costs one nil check per committed memory
// op and allocates nothing.
type CommitObserver interface {
	// LoadCommitted is called when a load commits. op carries the final
	// forwarding provenance (FwdSeq/FwdMask), the final data-cache read
	// cycle (ReadAt, covering partial-overlap waits, violation repairs and
	// SVW commit-time re-execution) and the commit cycle.
	LoadCommitted(op *lsq.MemOp)
	// StoreCommitted is called when a store commits; op.Commit is the cycle
	// its value becomes architecturally visible.
	StoreCommitted(op *lsq.MemOp)
}

// Sim is one simulation instance: a configuration bound to a workload.
type Sim struct {
	cfg    config.Config
	gen    workload.Source
	scheme lsq.Scheme
	hier   *mem.Hierarchy
	fab    noc.Fabric
	svwEng *svw.Engine
	epochs *fmc.Epochs

	c *stats.Counters
	// act collects the energy-accounting activity counters, kept separate
	// from c so the digest-pinned counter set never changes (Result.Activity).
	act *stats.Counters

	regReady [isa.NumRegs]int64

	fetchCal   *sched.Calendar // fetch/decode slots
	cpIssueCal *sched.Calendar // CP issue width
	portsCal   *sched.Calendar // L1 data ports
	llPortsCal *sched.Calendar // MP-side L2 access ports
	commitCal  *sched.Calendar // commit width
	migCal     *sched.Calendar // HL->LL migration bandwidth

	robRing    *sched.Ring // CP ROB occupancy
	windowRing *sched.Ring // global in-flight cap (FMC)
	intIQ      *sched.Ring
	fpIQ       *sched.Ring
	lqRing     *sched.Ring // conventional LQ (OoO)
	sqRing     *sched.Ring // conventional SQ (OoO)

	storeIx *lsq.StoreIndex
	obs     CommitObserver

	// class is the execution-locality classifier (internal/predict) behind
	// the HL/LL migration decision; classQ is its lane-resident query
	// scratch, lifted to a field so the per-instruction interface call
	// never escapes anything to the heap.
	class  predict.Classifier
	classQ predict.Query

	nextFetchMin int64
	lastCommit   int64
	lastMigrate  int64
	migBlockMem  int64 // RSAC: memory refs may not migrate before this

	// warmed is set by RestoreWarmState: the hierarchy already carries the
	// warm-up image and gen is positioned past it, so Run skips the
	// functional warm-up phase.
	warmed bool

	committed   uint64
	wpSeq       uint64
	llBusyUntil int64
	llIdle      int64

	loadDist, storeDist *stats.Histogram

	// storesMigrate: stores move to the LL queues whenever the MP is
	// active (ELSQ organisations); the central queue buffers them itself.
	storesMigrate bool
	wrongPathCap  int

	// loadOp and wpOp are the reusable records for loads and wrong-path
	// memory ops: neither outlives its step (nothing retains them — the
	// StoreIndex holds only stores, and schemes keep no op pointers), so
	// one scratch value each makes the per-instruction path allocation-
	// free. Store records come from the StoreIndex's recycling pool
	// instead, because they stay searchable until compaction retires them.
	loadOp, wpOp lsq.MemOp

	// Interned counter handles for per-instruction events.
	cCache, cMispredict, cViolation *uint64
	cPartialForward, cLLSquash      *uint64
	cRlacStall, cRsacStall          *uint64
	cMigrateStall                   *uint64
	cWpLoad, cWpStore, cWpOther     *uint64
	cLoadLevel                      [3]*uint64 // indexed by mem.Level
	aAccess                         [3]*uint64 // timed hierarchy accesses by satisfying level (act bag)
}

// New builds a simulator for cfg running the given benchmark source.
func New(cfg config.Config, gen workload.Source) (*Sim, error) {
	return newSim(cfg, gen, nil)
}

// newSim is the shared constructor behind New and NewBatch: with a nil
// arena every structure is allocated privately (the scalar path); with an
// arena the hot arrays — calendar slots, ring times, cache lines, the
// StoreIndex bucket table and its MemOp pool — are carved from the batch's
// shared slabs.
func newSim(cfg config.Config, gen workload.Source, ar *laneArena) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:       cfg,
		gen:       gen,
		hier:      mem.NewHierarchyIn(&cfg, ar.lineArena()),
		c:         stats.NewCounters(),
		act:       stats.NewCounters(),
		storeIx:   ar.storeIndex(),
		loadDist:  stats.NewHistogram(30, 50),
		storeDist: stats.NewHistogram(30, 50),
	}
	s.class = ar.classifier(&cfg)
	s.cCache = s.c.Handle("cache")
	s.cMispredict = s.c.Handle("mispredict")
	s.cViolation = s.c.Handle("violation")
	s.cPartialForward = s.c.Handle("partial_forward")
	s.cLLSquash = s.c.Handle("ll_squash")
	s.cRlacStall = s.c.Handle("rlac_stall")
	s.cRsacStall = s.c.Handle("rsac_stall")
	s.cMigrateStall = s.c.Handle("migrate_stall_cycles")
	s.cWpLoad = s.c.Handle("wrongpath_load")
	s.cWpStore = s.c.Handle("wrongpath_store")
	s.cWpOther = s.c.Handle("wrongpath_other")
	s.cLoadLevel[mem.LevelL1] = s.c.Handle("load_L1")
	s.cLoadLevel[mem.LevelL2] = s.c.Handle("load_L2")
	s.cLoadLevel[mem.LevelMem] = s.c.Handle("load_mem")
	// Every timed hierarchy access (loads, store commits, SVW re-executions,
	// wrong-path pollution) is attributed to its satisfying level; the sum
	// equals the legacy "cache" counter by construction.
	s.aAccess[mem.LevelL1] = s.act.Handle("l1_access")
	s.aAccess[mem.LevelL2] = s.act.Handle("l2_access")
	s.aAccess[mem.LevelMem] = s.act.Handle("mem_access")
	// Interconnect fabric: analytic (bit-identical to the legacy bus+mesh
	// model) or contended, whose link calendars are carved from the batch
	// arena like the pipeline calendars below.
	w, h := meshDims(cfg.NumEpochs)
	hor := calHorizonFor(&cfg)
	if cfg.NoC == config.NoCContended {
		s.fab = noc.NewContended(w, h, cfg.MeshHop, cfg.BusOneWay, cfg.NoCLinkWidth,
			func(width int) *sched.Calendar { return ar.calendar(width, hor) })
	} else {
		s.fab = noc.NewAnalytic(noc.NewBus(cfg.BusOneWay), noc.NewMesh(w, h, cfg.MeshHop))
	}

	// The epoch manager must exist before the scheme: the ELSQ resolves
	// virtual epochs to banks through the manager's placement record.
	if cfg.Model == config.ModelFMC {
		s.epochs = fmc.NewEpochs(&cfg, fmc.PlacerFor(&cfg, s.fab), s.fab, hor)
		s.wrongPathCap = 3 * cfg.ROBSize
	} else {
		s.wrongPathCap = cfg.ROBSize
	}
	var banks fmc.BankMap = fmc.HomeBanks(cfg.NumEpochs)
	if s.epochs != nil {
		banks = s.epochs
	}

	switch {
	case cfg.LSQ == config.LSQCentral:
		s.scheme = lsq.NewCentral(s.fab)
	case cfg.LSQ == config.LSQConventional:
		s.scheme = lsq.NewConventional(false)
	case cfg.LSQ == config.LSQSVW && cfg.Model == config.ModelOoO:
		s.scheme = lsq.NewConventional(true)
		s.svwEng = svw.New(cfg.SSBFBits, cfg.SVW)
	case cfg.LSQ == config.LSQSVW:
		s.scheme = core.New(&cfg, s.fab, s.hier.L1, banks, core.WithoutLoadQueue())
		s.svwEng = svw.New(cfg.SSBFBits, cfg.SVW)
		s.storesMigrate = true
	case cfg.LSQ == config.LSQELSQ:
		s.scheme = core.New(&cfg, s.fab, s.hier.L1, banks)
		s.storesMigrate = true
	default:
		return nil, fmt.Errorf("cpu: unsupported scheme %v on %v", cfg.LSQ, cfg.Model)
	}

	// Unresolved-store tracking soundness: any store evicted from the
	// StoreIndex's recent ring is at least ring-length/FetchWidth dispatch
	// cycles older than a querying load's issue; a matching late-address
	// slack keeps every possibly-unresolved store visible to Unresolved
	// (the no-unresolved-store filter input).
	s.storeIx.TuneLateSlack(cfg.FetchWidth)

	s.fetchCal = ar.calendar(cfg.FetchWidth, hor)
	s.cpIssueCal = ar.calendar(cfg.FetchWidth, hor)
	s.portsCal = ar.calendar(cfg.CachePorts, hor)
	s.llPortsCal = ar.calendar(cfg.CachePorts, hor)
	s.commitCal = ar.calendar(cfg.CommitWidth, hor)
	s.migCal = ar.calendar(cfg.FetchWidth, hor)

	caps := ringCapsFor(&cfg)
	s.robRing = ar.ring(caps[ringROB])
	s.intIQ = ar.ring(caps[ringIntIQ])
	s.fpIQ = ar.ring(caps[ringFpIQ])
	s.windowRing = ar.ring(caps[ringWindow])
	// High-locality queue occupancy: entries live from dispatch to
	// migration (FMC) or completion/commit. The central queue is unlimited.
	s.lqRing = ar.ring(caps[ringLQ])
	s.sqRing = ar.ring(caps[ringSQ])
	return s, nil
}

// Ring indices into ringCapsFor's capacity vector.
const (
	ringROB = iota
	ringIntIQ
	ringFpIQ
	ringWindow
	ringLQ
	ringSQ
	numRings
)

// numCalendars is how many pipeline resource calendars newSim builds per
// lane; a contended fabric adds fabricCalendars(cfg) more on top.
const numCalendars = 6

// ringCapsFor returns every occupancy ring's capacity under cfg, in
// construction order (non-positive = unlimited, no backing storage). It is
// the single source of truth newSim and the batch slab sizing share.
func ringCapsFor(cfg *config.Config) [numRings]int {
	caps := [numRings]int{
		ringROB:   cfg.ROBSize,
		ringIntIQ: cfg.IntIQ,
		ringFpIQ:  cfg.FpIQ,
	}
	if cfg.Model == config.ModelFMC {
		caps[ringWindow] = cfg.WindowSize()
	}
	if cfg.LSQ != config.LSQCentral {
		caps[ringLQ] = cfg.HLLQSize
		caps[ringSQ] = cfg.HLSQSize
	}
	return caps
}

// SetCommitObserver attaches obs to the committed memory-operation stream.
// It must be called before Run; pass nil to detach.
func (s *Sim) SetCommitObserver(obs CommitObserver) { s.obs = obs }

// RestoreWarmState primes the simulator from a checkpoint instead of a
// functional warm-up: hs must be the hierarchy image captured after exactly
// cfg.WarmupInsts functional instructions of this benchmark, and the
// workload source passed to New must already be positioned past them
// (workload.Snapshottable.Restore). Run then starts measuring immediately;
// results are bit-identical to a fresh run's.
func (s *Sim) RestoreWarmState(hs *mem.HierarchyState) error {
	if s.committed > 0 {
		return fmt.Errorf("cpu: cannot restore warm state into a running simulation")
	}
	if err := s.hier.SetState(hs); err != nil {
		return fmt.Errorf("cpu: %w", err)
	}
	s.warmed = true
	return nil
}

// Run simulates cfg.WarmupInsts instructions functionally (cache warm-up —
// the paper measures SimPoints of already-warm execution; a checkpoint
// restore via RestoreWarmState stands in for this phase), then cfg.MaxInsts
// committed instructions with full timing, and returns the result. With
// SampleIntervals > 1 the measured instructions are split into that many
// intervals separated by SampleBleedInsts of functional fast-forward, so
// the measurement spans several program phases.
func (s *Sim) Run() *Result {
	res, _ := s.run(nil)
	return res
}

// RunContext runs like Run but aborts promptly when ctx is cancelled,
// returning ctx's error and no result. Cancellation is checked between
// bounded instruction chunks (cancelChunk) during both the functional
// warm-up and the measured phase, so even a multi-million-instruction job
// frees its worker within a fraction of a second of cancellation. A run
// that completes is bit-identical to one produced by Run: the chunking
// only changes where the simulator looks at the clock, never what it
// simulates (Source.Warmup is contractually equivalent to the same number
// of Next calls regardless of how the count is split).
func (s *Sim) RunContext(ctx context.Context) (*Result, error) {
	res, ok := s.run(ctx.Done())
	if !ok {
		return nil, ctx.Err()
	}
	return res, nil
}

// cancelChunk is the number of instructions simulated between cancellation
// checks in RunContext. Large enough that the check is free relative to the
// work, small enough that cancellation latency stays in the milliseconds.
const cancelChunk = 1 << 16

// canceled reports whether done (a context's Done channel, possibly nil)
// has fired.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// warm advances the committed path n instructions functionally. With a
// cancellation channel the advance is split into cancelChunk pieces —
// equivalent by the Source.Warmup contract — so a long warm-up can abort.
// It reports false if cancellation fired.
func (s *Sim) warm(n uint64, access func(addr uint64), done <-chan struct{}) bool {
	for done != nil && n > cancelChunk {
		s.gen.Warmup(cancelChunk, access)
		n -= cancelChunk
		if canceled(done) {
			return false
		}
	}
	s.gen.Warmup(n, access)
	return !canceled(done)
}

// run is the shared body of Run and RunContext, expressed over the same
// incremental Lane the batch engine drives — scalar and batched execution
// share one stepping implementation, which is what makes their bit-identity
// structural rather than merely tested. It reports ok=false (and a nil
// result) if done fired before the measured phase completed.
func (s *Sim) run(done <-chan struct{}) (res *Result, ok bool) {
	l := s.NewLane()
	if !l.Warm(done) {
		return nil, false
	}
	for {
		more, ok := l.Step(cancelChunk, done)
		if !ok {
			return nil, false
		}
		if !more {
			break
		}
	}
	return l.Finish(), true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (s *Sim) regReadyAt(r int16) int64 {
	if r == isa.NoReg {
		return 0
	}
	return s.regReady[r]
}

// step processes one committed-path instruction end to end.
func (s *Sim) step(in *isa.Inst) {
	isLoad := in.Op == isa.OpLoad
	isStore := in.Op == isa.OpStore
	isMem := isLoad || isStore

	// --- dispatch ---
	t0 := s.nextFetchMin
	t0 = max64(t0, s.robRing.FreeAt())
	t0 = max64(t0, s.windowRing.FreeAt())
	iq := s.intIQ
	if in.Op == isa.OpFpAlu || in.Op == isa.OpFpMul {
		iq = s.fpIQ
	}
	t0 = max64(t0, iq.FreeAt())
	if isLoad {
		t0 = max64(t0, s.lqRing.FreeAt())
	}
	if isStore {
		t0 = max64(t0, s.sqRing.FreeAt())
	}
	dispatch := s.fetchCal.Reserve(t0)

	// --- readiness ---
	r1 := max64(s.regReadyAt(in.Src1), dispatch+1)
	r2 := max64(s.regReadyAt(in.Src2), dispatch+1)
	ready := max64(r1, r2)
	addrReady := r1 // loads/stores: Src1 is the address source
	dataReady := r2 // stores: Src2 is the data source

	// --- execution-locality classification (internal/predict) ---
	// The classifier owns only the dispatch-time HL/LL decision; the RLAC
	// override below and the store ride-along are scheme constraints that
	// apply identically under every policy, so they stay here.
	llExec := false
	if s.cfg.Model == config.ModelFMC {
		s.classQ = predict.Query{In: in, Dispatch: dispatch, Ready: ready, AddrReady: addrReady}
		llExec = s.class.LowLocality(&s.classQ)
		if isLoad && llExec &&
			(s.cfg.Disamb == config.DisambRLAC || s.cfg.Disamb == config.DisambRSACLAC) {
			// Restricted LAC: the load must compute its address in the
			// HL-LSQ. It stays in the Cache Processor until the address
			// resolves and, being the migration divider, blocks younger
			// migration (the window fills behind it).
			llExec = false
			s.lastMigrate = max64(s.lastMigrate, addrReady)
			*s.cRlacStall++
		}
	}
	llActive := s.llBusyUntil > dispatch
	migrates := llExec || (isStore && s.storesMigrate && llActive)

	// --- migration (HL -> LL epoch) ---
	var op *lsq.MemOp
	if isMem {
		if isStore {
			op = s.storeIx.NewOp()
		} else {
			op = &s.loadOp
			*op = lsq.MemOp{}
		}
		op.Seq, op.Store, op.Addr, op.Size = in.Seq, isStore, in.Addr, in.Size
		op.Dispatch, op.AddrReady = dispatch, addrReady
		op.Epoch, op.LowLoc = lsq.HLEpoch, llExec
		if isStore {
			op.DataReady = dataReady
		}
	}
	epochV := int64(-1)
	var migT int64
	if s.cfg.Model == config.ModelFMC && (migrates || (llExec && !isMem)) {
		mt := s.fab.BusOneWay(dispatch)
		mt = max64(mt, s.lastMigrate)
		if isMem {
			mt = max64(mt, s.migBlockMem)
		}
		v, enterAt, rel := s.epochs.Assign(llExec, isLoad && llExec, isStore && migrates, in.Seq, mt)
		if rel.OK {
			s.scheme.EpochCommitted(int(rel.V), rel.At)
		}
		mt = s.migCal.Reserve(max64(mt, enterAt))
		epochV = v
		s.lastMigrate = mt
		migT = mt
		if isMem {
			op.Epoch = int(v)
			op.MigrateAt = mt
			stall := s.scheme.Migrate(op, mt)
			if stall > 0 {
				migT += stall
				s.lastMigrate = migT
				*s.cMigrateStall += uint64(stall)
			}
			if op.AddrReady > migT {
				// Address resolves inside the LL-LSQ.
				if s.scheme.AddrKnownInLL(op, op.AddrReady) {
					// Line-ERT lock overflow: squash from this op.
					*s.cLLSquash++
					s.nextFetchMin = max64(s.nextFetchMin, op.AddrReady+int64(s.cfg.MispredictPenalty))
				}
			}
			if isStore && op.AddrReady > migT &&
				(s.cfg.Disamb == config.DisambRSAC || s.cfg.Disamb == config.DisambRSACLAC) {
				// Restricted SAC: younger memory references may not
				// migrate until this store's address resolves.
				s.migBlockMem = max64(s.migBlockMem, op.AddrReady)
				*s.cRsacStall++
			}
		}
	}

	// --- execute ---
	var done, issueAt int64
	switch in.Op {
	case isa.OpNop:
		done = dispatch + 1
		issueAt = dispatch + 1
	case isa.OpIntAlu, isa.OpIntMul, isa.OpFpAlu, isa.OpFpMul, isa.OpBranch:
		lat := int64(isa.Latency(in.Op))
		if llExec {
			issueAt = s.epochs.Issue(epochV, max64(ready, migT+1))
		} else {
			issueAt = s.cpIssueCal.Reserve(ready)
		}
		done = issueAt + lat
		if in.Op == isa.OpBranch && in.Mispred {
			*s.cMispredict++
			s.injectWrongPath(dispatch+1, done)
			s.nextFetchMin = max64(s.nextFetchMin, done+int64(s.cfg.MispredictPenalty))
		}
	case isa.OpLoad:
		done, issueAt = s.execLoad(op, llExec, epochV, migT)
	case isa.OpStore:
		done, issueAt = s.execStore(op, llExec, epochV, migT)
	}

	// A load that migrated after issue (L2 miss discovered in the HL-LSQ)
	// carries its epoch on the MemOp; fold it into the commit bookkeeping.
	if op != nil && op.Epoch != lsq.HLEpoch && epochV < 0 {
		epochV = int64(op.Epoch)
		migT = op.MigrateAt
	}

	// --- commit (in order, width-limited) ---
	ct := s.commitCal.Reserve(max64(done, s.lastCommit))
	if s.svwEng != nil && isLoad {
		if s.svwEng.LoadCommitting(op) {
			// Re-execute during commit: an extra data-cache access that
			// also delays every younger store's commit. The re-execution
			// re-reads every byte from the cache, which by now reflects
			// every older store (in-order commit), so the provenance
			// becomes a plain cache read at the re-execution cycle.
			port := s.portsCal.Reserve(ct)
			lvl := s.hier.Probe(op.Addr)
			lat := int64(s.hier.Latency(lvl))
			ct = port + lat
			*s.cCache++
			*s.aAccess[lvl]++
			op.FwdMask = 0
			op.ReadAt = port
		}
	}
	s.lastCommit = ct
	s.committed++
	if isMem {
		op.Commit = ct
	}
	if isStore {
		// In-order memory update at commit.
		s.portsCal.Reserve(ct)
		lvl, _ := s.hier.Access(op.Addr)
		*s.cCache++
		*s.aAccess[lvl]++
		if s.svwEng != nil {
			s.svwEng.StoreCommitted(op.Addr, op.Seq, ct)
		}
		s.storeIx.Add(op)
	}
	if s.obs != nil && isMem {
		if isStore {
			s.obs.StoreCommitted(op)
		} else {
			s.obs.LoadCommitted(op)
		}
	}
	if epochV >= 0 {
		s.epochs.Committed(epochV, in.Seq, ct)
	}

	// --- occupancy release ---
	robRelease := done
	if s.cfg.Model == config.ModelOoO {
		robRelease = ct // conventional in-order ROB release
	} else if migT > 0 {
		robRelease = migT // migrated ops free their CP slot at migration
	}
	s.robRing.Push(robRelease)
	s.windowRing.Push(ct)
	iqRelease := issueAt
	if migT > 0 && migT < iqRelease {
		iqRelease = migT
	}
	iq.Push(iqRelease)
	if isLoad {
		// A load's queue entry frees at migration (FMC) or once it has
		// executed and can release early (checkpointed recovery); the
		// conventional OoO holds it to commit.
		rel := max64(done, issueAt)
		if s.cfg.Model == config.ModelOoO {
			rel = ct
		} else if op.MigrateAt > 0 && op.MigrateAt < rel {
			rel = op.MigrateAt
		}
		s.lqRing.Push(rel)
	}
	if isStore {
		// A store buffers until commit unless it migrated to the LL-SQ.
		rel := ct
		if op.MigrateAt > 0 {
			rel = op.MigrateAt
		}
		s.sqRing.Push(rel)
	}

	// --- dataflow and statistics ---
	if in.Dst != isa.NoReg {
		s.regReady[in.Dst] = done
	}
	if isLoad {
		s.loadDist.Add(int(addrReady - dispatch))
	}
	if isStore {
		s.storeDist.Add(int(addrReady - dispatch))
	}
	// Memory-Processor activity: only miss-dependent work keeps the MP
	// awake (the paper's low-power criterion: "no cache misses have
	// occurred recently"). Stores that migrated purely for buffering ride
	// along and must not self-sustain the active phase.
	if epochV >= 0 && (llExec || (op != nil && op.LowLoc)) {
		if migT > s.llBusyUntil {
			s.llIdle += migT - s.llBusyUntil
		}
		s.llBusyUntil = max64(s.llBusyUntil, ct)
	}
}

// execLoad performs a load's queue search and memory access. It returns the
// cycle the value is available and the issue cycle.
func (s *Sim) execLoad(op *lsq.MemOp, llExec bool, epochV int64, migT int64) (done, issue int64) {
	if llExec {
		// The load issues from its memory engine (in-order, 2-way), then
		// accesses the memory hierarchy from the MP side.
		issue = s.epochs.Issue(epochV, max64(op.AddrReady, migT+1))
		issue = s.llPortsCal.Reserve(issue)
	} else {
		issue = s.portsCal.Reserve(op.AddrReady)
	}
	op.Issued = issue

	res := s.scheme.LoadIssue(op, s.storeIx, issue)
	if res.Squash {
		*s.cLLSquash++
		s.nextFetchMin = max64(s.nextFetchMin, issue+int64(s.cfg.MispredictPenalty))
	}

	level, lat := s.hier.Access(op.Addr)
	*s.cCache++
	*s.cLoadLevel[level]++
	*s.aAccess[level]++
	// Train the locality classifier with the committed outcome (the sweep
	// is program-ordered, so this is commit-order training; wrong-path
	// loads never reach it).
	s.class.ObserveLoad(op.Addr, level, int64(lat))
	switch {
	case res.Forwarded:
		op.FwdSeq = res.Source.Seq
		op.FwdMask = isa.OverlapMask(res.Source.Addr, res.Source.Size, op.Addr, op.Size)
		op.ReadAt = issue
		done = max64(issue, res.DataAvailable) + 1
	case res.Partial:
		// Partially matching store: wait for it to commit, then read the
		// cache (squash-and-refetch-free variant of the Power4 rule). The
		// re-read observes every older store: stores commit in order, so
		// all of them are in the cache by the youngest one's commit.
		*s.cPartialForward++
		op.ReadAt = max64(issue, res.PartialStore.Commit)
		done = op.ReadAt + int64(s.cfg.L1.LatencyCycles) + 1
	default:
		op.ReadAt = issue
		done = issue + res.ExtraLatency + int64(lat)
	}

	// Post-issue migration: a high-locality load that misses all the way to
	// memory moves to the LL-LSQ to wait for its data (Section 3.2).
	if s.cfg.Model == config.ModelFMC && !llExec && level == mem.LevelMem && epochV < 0 {
		mt := max64(s.fab.BusOneWay(issue), s.lastMigrate)
		mt = max64(mt, s.migBlockMem)
		v, enterAt, rel := s.epochs.Assign(false, true, false, op.Seq, mt)
		if rel.OK {
			s.scheme.EpochCommitted(int(rel.V), rel.At)
		}
		mt = s.migCal.Reserve(max64(mt, enterAt))
		s.lastMigrate = mt
		op.Epoch = int(v)
		op.MigrateAt = mt
		op.LowLoc = true
		s.scheme.Migrate(op, mt)
	}

	// True ordering violations: older overlapping stores whose addresses
	// resolved only after this load issued. Eager schemes squash at the
	// oldest such store's resolution and the re-executed load waits until
	// every older store address is known; SVW repairs at commit via
	// re-execution (modelled in step()). Every violating store is folded in
	// — stopping at the first would let a younger, later-resolving store
	// leave the load with stale data.
	cands := s.storeIx.CandidatesOracle(op, issue)
	var repairAt int64
	for _, st := range cands {
		if st.AddrReady > issue {
			if repairAt == 0 {
				*s.cViolation++
				if s.svwEng == nil {
					// The squash triggers when the oldest violating store
					// (first in ascending age) resolves its address.
					s.nextFetchMin = max64(s.nextFetchMin, st.AddrReady+int64(s.cfg.MispredictPenalty))
				}
			}
			repairAt = max64(repairAt, max64(st.AddrReady, st.DataReady)+1)
		}
	}
	if repairAt > 0 {
		done = max64(done, repairAt)
		if s.svwEng == nil {
			// The re-executed load observes the youngest older overlapping
			// store: forward when it covers the load, otherwise wait for its
			// commit and re-read the cache (which then reflects every older
			// store). SVW loads keep their stale provenance here — the
			// commit-time re-execution is what repairs them.
			y := cands[len(cands)-1]
			if y.Covers(op) {
				op.FwdSeq, op.FwdMask = y.Seq, isa.FullMask(op.Size)
				done = max64(done, max64(repairAt, y.DataReady)+1)
			} else {
				op.FwdMask = 0
				op.ReadAt = max64(repairAt, y.Commit)
				done = max64(done, op.ReadAt+int64(s.cfg.L1.LatencyCycles)+1)
			}
		}
	}
	return done, issue
}

// execStore resolves a store's address (its LQ violation search) and data.
func (s *Sim) execStore(op *lsq.MemOp, llExec bool, epochV int64, migT int64) (done, issue int64) {
	if llExec {
		issue = s.epochs.Issue(epochV, max64(op.AddrReady, migT+1))
	} else {
		issue = s.cpIssueCal.Reserve(op.AddrReady)
	}
	op.Issued = issue
	s.scheme.StoreAddrReady(op, nil, issue)
	done = max64(issue, op.DataReady)
	return done, issue
}

// injectWrongPath streams wrong-path instructions from a mispredicted
// branch's fetch point until its resolution. They occupy the pipeline,
// search the queues and access the caches — the activity inflation the
// paper observes for aggressive speculation on SPEC INT — and are squashed
// at resolution.
func (s *Sim) injectWrongPath(start, resolve int64) {
	if resolve <= start {
		return
	}
	n := int64(s.cfg.FetchWidth) * (resolve - start)
	if n > int64(s.wrongPathCap) {
		n = int64(s.wrongPathCap)
	}
	var in isa.Inst
	for i := int64(0); i < n; i++ {
		s.gen.WrongPath(&in)
		d := start + i/int64(s.cfg.FetchWidth)
		s.robRing.Push(resolve)
		switch in.Op {
		case isa.OpLoad:
			wp := &s.wpOp
			*wp = lsq.MemOp{
				Seq: in.Seq, Addr: in.Addr, Size: in.Size,
				Dispatch: d, AddrReady: d + 1, Epoch: lsq.HLEpoch,
			}
			issue := s.portsCal.Reserve(d + 1)
			wp.Issued = issue
			s.scheme.LoadIssue(wp, s.storeIx, issue)
			lvl, _ := s.hier.Access(wp.Addr)
			*s.cCache++
			*s.aAccess[lvl]++
			*s.cWpLoad++
		case isa.OpStore:
			wp := &s.wpOp
			*wp = lsq.MemOp{
				Seq: in.Seq, Store: true, Addr: in.Addr, Size: in.Size,
				Dispatch: d, AddrReady: d + 1, DataReady: d + 1,
				Epoch: lsq.HLEpoch, Issued: d + 1,
			}
			s.scheme.StoreAddrReady(wp, nil, d+1)
			*s.cWpStore++
		default:
			*s.cWpOther++
		}
	}
}
