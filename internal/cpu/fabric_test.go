package cpu

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestWarmupTrafficExcludedFromCounters is the regression test for the
// fabric snapshot in Lane.Warm: traffic that flows before measurement
// starts (historically the never-reset Mesh.Hops leaked warm-up hops into
// results) must not appear in the reported interconnect counters. We inject
// synthetic pre-measurement traffic directly on a fresh Sim's fabric and
// require a byte-identical Result against an unpolluted twin.
func TestWarmupTrafficExcludedFromCounters(t *testing.T) {
	cfg := quickCfg(config.Default())
	p, err := workload.ByName("equake") // generates real mesh traffic at default config
	if err != nil {
		t.Fatal(err)
	}
	clean, err := New(cfg, p.New(1))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := New(cfg, p.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-measurement fabric traffic: hops, bus trips and migration flits
	// that a warm-up phase could plausibly generate. The analytic fabric
	// makes these pure accounting (no calendar state), so any divergence
	// below can only come from counters leaking across the snapshot.
	for i := 0; i < 50; i++ {
		dirty.fab.Route(i%16, (i*7)%16, 0)
		dirty.fab.BusRoundTrip(0)
		dirty.fab.BusOneWay(0)
	}
	dirty.fab.MigrateState(0, 15, 8, 0)
	if dirty.fab.Traffic().Hops == 0 {
		t.Fatal("synthetic traffic did not register on the fabric")
	}

	want, got := clean.Run(), dirty.Run()
	if want.Counters.Snapshot()["noc_hops"] == 0 {
		t.Fatal("measured run reported zero hops; the assertion below would be vacuous")
	}
	if !reflect.DeepEqual(want.Counters.Snapshot(), got.Counters.Snapshot()) {
		t.Errorf("pre-measurement traffic leaked into counters:\nclean %v\ndirty %v",
			want.Counters.Snapshot(), got.Counters.Snapshot())
	}
	if want.IPC != got.IPC || want.Cycles != got.Cycles {
		t.Errorf("pre-measurement traffic changed timing: clean IPC %v cycles %d, dirty IPC %v cycles %d",
			want.IPC, want.Cycles, got.IPC, got.Cycles)
	}
}

// TestContendedFabricDeterminism: the contended fabric with non-default
// placement must stay run-to-run deterministic (calendar state and
// placement decisions are pure functions of the simulated stream).
func TestContendedFabricDeterminism(t *testing.T) {
	for _, pol := range []config.PlacePolicy{config.PlaceModN, config.PlaceLeastLoaded, config.PlaceSteal} {
		cfg := quickCfg(config.Default())
		cfg.NoC = config.NoCContended
		cfg.Place = pol
		a := run(t, cfg, "mcf", 7)
		b := run(t, cfg, "mcf", 7)
		if a.IPC != b.IPC || a.Cycles != b.Cycles {
			t.Errorf("policy %v: contended runs diverged: %v/%d vs %v/%d", pol, a.IPC, a.Cycles, b.IPC, b.Cycles)
		}
		if !reflect.DeepEqual(a.Counters.Snapshot(), b.Counters.Snapshot()) {
			t.Errorf("policy %v: contended counters diverged", pol)
		}
	}
}
