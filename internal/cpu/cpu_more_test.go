package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestCommitWidthBound verifies in-order width-limited commit: total cycles
// can never be below committed/CommitWidth.
func TestCommitWidthBound(t *testing.T) {
	r := run(t, quickCfg(config.Default()), "eon", 1)
	minCycles := int64(r.Committed) / int64(config.Default().CommitWidth)
	if r.Cycles < minCycles {
		t.Errorf("cycles %d below commit-width bound %d", r.Cycles, minCycles)
	}
}

// TestCentralUnlimitedIgnoresQueueSizes ensures the idealised central LSQ
// sees no capacity back-pressure from the HL queue sizes.
func TestCentralUnlimitedIgnoresQueueSizes(t *testing.T) {
	big := quickCfg(config.Default())
	big.LSQ = config.LSQCentral
	small := big
	small.HLLQSize = 2
	small.HLSQSize = 2
	a := run(t, big, "swim", 1)
	b := run(t, small, "swim", 1)
	if a.Cycles != b.Cycles {
		t.Errorf("central LSQ cycles changed with queue sizes: %d vs %d", a.Cycles, b.Cycles)
	}
}

// TestConventionalQueuePressure: shrinking the OoO store queue must slow a
// store-heavy benchmark down (entries are held to commit).
func TestConventionalQueuePressure(t *testing.T) {
	norm := quickCfg(config.OoO64())
	tiny := norm
	tiny.HLSQSize = 2
	a := run(t, norm, "gcc", 1)
	b := run(t, tiny, "gcc", 1)
	if b.IPC >= a.IPC {
		t.Errorf("2-entry SQ did not hurt: %.3f vs %.3f", b.IPC, a.IPC)
	}
}

// TestRLACStallsPointerLoads: restricted load address calculation must
// penalise chase benchmarks and record stalls.
func TestRLACStallsPointerLoads(t *testing.T) {
	full := quickCfg(config.Default())
	rlac := full
	rlac.Disamb = config.DisambRLAC
	a := run(t, full, "ammp", 1)
	b := run(t, rlac, "ammp", 1)
	if b.Counters.Get("rlac_stall") == 0 {
		t.Fatal("no RLAC stalls on a pointer-chase benchmark")
	}
	if b.IPC > a.IPC*1.01 {
		t.Errorf("RLAC sped ammp up: %.3f vs %.3f", b.IPC, a.IPC)
	}
}

// TestLineERTOneWayCacheDegrades: a direct-mapped L1 suffers under line
// locking (Figure 8b/c's left edge) and records lock-pressure events.
func TestLineERTOneWayCacheDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	mk := func(ways int) config.Config {
		c := quickCfg(config.Default())
		c.ERT = config.ERTLine
		c.L1 = config.CacheConfig{SizeBytes: 32 << 10, Ways: ways, LineBytes: 32, LatencyCycles: 1}
		return c
	}
	var one, four float64
	var pressure uint64
	for _, bench := range []string{"applu", "gcc", "gap"} {
		a := run(t, mk(1), bench, 1)
		b := run(t, mk(4), bench, 1)
		one += a.IPC
		four += b.IPC
		pressure += a.Counters.Get("ert_lock_stall") + a.Counters.Get("ert_lock_bypass") +
			a.Counters.Get("ll_squash")
	}
	if one >= four {
		t.Errorf("1-way L1 did not degrade the line ERT: %.3f vs %.3f", one, four)
	}
	if pressure == 0 {
		t.Error("no line-lock pressure events at 1-way")
	}
}

// TestMoreEnginesMoreMLP: the window (and stream IPC) grows with the number
// of memory engines.
func TestMoreEnginesMoreMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	mk := func(n int) config.Config {
		c := quickCfg(config.Default())
		c.NumEpochs = n
		return c
	}
	two := run(t, mk(2), "art", 1)
	sixteen := run(t, mk(16), "art", 1)
	if sixteen.IPC <= two.IPC {
		t.Errorf("16 engines (%.3f) not faster than 2 (%.3f) on art", sixteen.IPC, two.IPC)
	}
}

// TestBusLatencySensitivity: without the SQM, a slower CP<->MP bus must
// cost performance on forwarding-heavy code.
func TestBusLatencySensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	mk := func(lat int) config.Config {
		c := quickCfg(config.Default())
		c.SQM = false
		c.BusOneWay = lat
		return c
	}
	fast := run(t, mk(2), "perlbmk", 1)
	slow := run(t, mk(16), "perlbmk", 1)
	if slow.IPC >= fast.IPC {
		t.Errorf("16-cycle bus (%.3f) not slower than 2-cycle (%.3f)", slow.IPC, fast.IPC)
	}
}

// TestSeedsVaryButConfigsRank: different workload seeds change absolute
// numbers but keep the fundamental OoO < FMC ordering on MLP-rich code.
func TestSeedsVaryButConfigsRank(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		ooo := run(t, quickCfg(config.OoO64()), "swim", seed)
		fmcR := run(t, quickCfg(config.Default()), "swim", seed)
		if fmcR.IPC <= ooo.IPC {
			t.Errorf("seed %d: FMC (%.3f) not faster than OoO (%.3f) on swim",
				seed, fmcR.IPC, ooo.IPC)
		}
	}
}

// TestForwardingProvidesData: the chase home-slot pattern must produce
// actual forwarding events through the global (ERT) path.
func TestForwardingProvidesData(t *testing.T) {
	r := run(t, quickCfg(config.Default()), "mcf", 1)
	global := r.Counters.Get("ll_forward_global")
	if global == 0 {
		t.Error("mcf produced no global store→load forwardings")
	}
}

// TestEveryBenchmarkRunsOnEveryScheme is the broad integration sweep: all
// 26 benchmarks on all 4 schemes complete and produce sane output.
func TestEveryBenchmarkRunsOnEveryScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	schemes := []func() config.Config{
		func() config.Config { return config.OoO64() },
		func() config.Config {
			c := config.OoO64()
			c.LSQ = config.LSQSVW
			return c
		},
		func() config.Config { return config.Default() },
		func() config.Config {
			c := config.Default()
			c.LSQ = config.LSQCentral
			return c
		},
	}
	for _, suite := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
		for _, p := range workload.SuiteOf(suite) {
			for _, mk := range schemes {
				cfg := mk()
				cfg.MaxInsts = 4_000
				cfg.WarmupInsts = 30_000
				sim, err := New(cfg, p.New(2))
				if err != nil {
					t.Fatalf("%s/%s: %v", cfg.Name(), p.Name, err)
				}
				r := sim.Run()
				if r.IPC <= 0 || r.IPC > float64(cfg.FetchWidth) {
					t.Errorf("%s/%s IPC %.3f out of range", cfg.Name(), p.Name, r.IPC)
				}
			}
		}
	}
}
