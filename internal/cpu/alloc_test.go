// Guard for the energy-accounting hot path: activity counters must not add
// per-event allocations to the measured simulation loop. The counters ride
// *uint64 handles interned at construction (stats.Counters), so
// incrementing one in the loop costs an add, never an allocation.
//
// The loop is not allocation-free overall — the store index materialises an
// op per store and wrong-path injection allocates occasionally, both
// predating energy accounting — so the guard pins a ceiling a little above
// that pre-existing rate (~13 objects per 1000 instructions on the profile
// this test was calibrated against). Counting any per-access event through
// an allocating path would add hundreds of objects per 1000 instructions
// (caches alone are accessed a few hundred times per 1000) and trip the
// ceiling immediately. End-to-end, the CI bench gate enforces the same
// property against the committed pre-energy baseline's allocs/inst band.
package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// steadyLane builds a warmed lane with a large open measurement budget so
// Step can be sampled repeatedly without finishing.
func steadyLane(t *testing.T, mut func(*config.Config)) *Lane {
	t.Helper()
	cfg := config.Default()
	cfg.MaxInsts = 1 << 40 // never finishes inside the sampled steps
	cfg.WarmupInsts = 6000
	if mut != nil {
		mut(&cfg)
	}
	p, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, p.New(1))
	if err != nil {
		t.Fatal(err)
	}
	l := sim.NewLane()
	if !l.Warm(nil) {
		t.Fatal("warm-up canceled")
	}
	// Run past cold-start growth (queue rings, histogram buckets, store
	// index shards, counter interning) into steady state before measuring.
	if more, ok := l.Step(20_000, nil); !more || !ok {
		t.Fatal("lane finished during steady-state spin-up")
	}
	return l
}

// TestStepAllocCeilingWithEnergyAccounting samples the measured loop in
// 1000-instruction slices and bounds the mean allocation count per slice.
func TestStepAllocCeilingWithEnergyAccounting(t *testing.T) {
	const ceiling = 30.0 // objects per 1000 instructions; see package comment
	for _, sc := range []struct {
		name string
		mut  func(*config.Config)
	}{
		{"elsq", nil},
		{"svw", func(c *config.Config) { c.LSQ = config.LSQSVW }},
		{"ooo64", func(c *config.Config) {
			c.Model = config.ModelOoO
			c.LSQ = config.LSQConventional
		}},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			l := steadyLane(t, sc.mut)
			avg := testing.AllocsPerRun(50, func() {
				if more, ok := l.Step(1000, nil); !more || !ok {
					t.Fatal("lane finished mid-measurement")
				}
			})
			if avg > ceiling {
				t.Errorf("measured loop allocates %.1f objects per 1000 instructions (ceiling %.0f): an activity counter is allocating per event", avg, ceiling)
			}
		})
	}
}
