package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// quickCfg shrinks simulation sizes so the test suite stays fast.
func quickCfg(base config.Config) config.Config {
	base.MaxInsts = 30_000
	base.WarmupInsts = 300_000
	return base
}

func run(t *testing.T, cfg config.Config, bench string, seed uint64) *Result {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, p.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := config.Default()
	cfg.FetchWidth = 0
	p, _ := workload.ByName("swim")
	if _, err := New(cfg, p.New(1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, mut := range []func(*config.Config){
		nil,
		func(c *config.Config) { c.LSQ = config.LSQCentral },
		func(c *config.Config) { c.LSQ = config.LSQSVW },
		func(c *config.Config) { c.ERT = config.ERTLine },
	} {
		cfg := quickCfg(config.Default())
		if mut != nil {
			mut(&cfg)
		}
		a := run(t, cfg, "gcc", 7)
		b := run(t, cfg, "gcc", 7)
		if a.Cycles != b.Cycles || a.IPC != b.IPC {
			t.Fatalf("%s nondeterministic: %d vs %d cycles", cfg.Name(), a.Cycles, b.Cycles)
		}
		for _, k := range a.Counters.Names() {
			if a.Counters.Get(k) != b.Counters.Get(k) {
				t.Fatalf("%s counter %s differs", cfg.Name(), k)
			}
		}
	}
}

func TestOoODeterminism(t *testing.T) {
	cfg := quickCfg(config.OoO64())
	a := run(t, cfg, "twolf", 3)
	b := run(t, cfg, "twolf", 3)
	if a.Cycles != b.Cycles {
		t.Fatal("OoO-64 nondeterministic")
	}
}

func TestIPCBounds(t *testing.T) {
	// IPC can never exceed the fetch width and must be positive.
	for _, bench := range []string{"eon", "mcf", "swim"} {
		r := run(t, quickCfg(config.Default()), bench, 1)
		if r.IPC <= 0 || r.IPC > 4 {
			t.Errorf("%s IPC = %v out of (0,4]", bench, r.IPC)
		}
		if r.Committed != 30_000 {
			t.Errorf("%s committed %d", bench, r.Committed)
		}
	}
}

// The fundamental large-window result: FMC beats OoO-64 on memory-level-
// parallel code (streams), is roughly neutral on serial pointer chases, and
// exactly neutral on cache-resident code that never activates the MP.
func TestLargeWindowShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	cases := []struct {
		bench  string
		minSpd float64
		maxSpd float64
	}{
		{"swim", 2.0, 8.0},  // MLP-rich stream
		{"art", 2.0, 12.0},  // heaviest stream
		{"mcf", 0.9, 1.6},   // serialised chase
		{"eon", 0.95, 1.05}, // L1-resident, MP idle
	}
	for _, tc := range cases {
		ooo := run(t, quickCfg(config.OoO64()), tc.bench, 1)
		fmcR := run(t, quickCfg(config.Default()), tc.bench, 1)
		spd := fmcR.IPC / ooo.IPC
		if spd < tc.minSpd || spd > tc.maxSpd {
			t.Errorf("%s speedup = %.2f, want [%.1f, %.1f] (OoO %.3f, FMC %.3f)",
				tc.bench, spd, tc.minSpd, tc.maxSpd, ooo.IPC, fmcR.IPC)
		}
	}
}

func TestLLIdleTracking(t *testing.T) {
	// eon never misses: the Memory Processor should be idle essentially
	// always. art misses constantly: nearly never idle.
	idle := run(t, quickCfg(config.Default()), "eon", 1).LLIdleFrac
	if idle < 0.95 {
		t.Errorf("eon LL idle = %.2f, want ~1", idle)
	}
	busy := run(t, quickCfg(config.Default()), "art", 1).LLIdleFrac
	if busy > 0.2 {
		t.Errorf("art LL idle = %.2f, want ~0", busy)
	}
}

func TestFigure1Histograms(t *testing.T) {
	r := run(t, quickCfg(config.Default()), "swim", 1)
	if r.LoadDist.Total == 0 || r.StoreDist.Total == 0 {
		t.Fatal("locality histograms empty")
	}
	// Stream addresses come from an induction register: almost all address
	// calculations complete within the first 30-cycle bucket.
	if f := r.LoadDist.FracWithin(30); f < 0.85 {
		t.Errorf("swim loads within 30 cycles = %.2f, want > 0.85", f)
	}
	// mcf: pointer-chase loads have far more low-locality address calcs.
	r2 := run(t, quickCfg(config.Default()), "mcf", 1)
	if f := r2.LoadDist.FracWithin(30); f > 0.9 {
		t.Errorf("mcf loads within 30 cycles = %.2f, expected pointer-chase tail", f)
	}
}

func TestSQMReducesRoundTrips(t *testing.T) {
	with := quickCfg(config.Default())
	without := with
	without.SQM = false
	a := run(t, with, "gcc", 1)
	b := run(t, without, "gcc", 1)
	if a.Counters.Get("sqm_search") == 0 {
		t.Error("SQM never searched")
	}
	if b.Counters.Get("roundtrip") <= a.Counters.Get("roundtrip") {
		t.Errorf("SQM did not reduce round trips: %d vs %d",
			a.Counters.Get("roundtrip"), b.Counters.Get("roundtrip"))
	}
}

func TestSVWReexecutions(t *testing.T) {
	cfg := quickCfg(config.Default())
	cfg.LSQ = config.LSQSVW
	cfg.SSBFBits = 8
	cfg.SVW = config.SVWBlind
	blind8 := run(t, cfg, "gcc", 1)
	if blind8.Counters.Get("reexec") == 0 {
		t.Fatal("SVW never re-executed with an 8-bit SSBF")
	}
	cfg.SSBFBits = 12
	blind12 := run(t, cfg, "gcc", 1)
	if blind12.Counters.Get("reexec") >= blind8.Counters.Get("reexec") {
		t.Errorf("12-bit SSBF should alias less: %d vs %d",
			blind12.Counters.Get("reexec"), blind8.Counters.Get("reexec"))
	}
	cfg.SSBFBits = 8
	cfg.SVW = config.SVWCheckStores
	check8 := run(t, cfg, "gcc", 1)
	if check8.Counters.Get("reexec") >= blind8.Counters.Get("reexec") {
		t.Errorf("CheckStores should filter re-executions: %d vs %d",
			check8.Counters.Get("reexec"), blind8.Counters.Get("reexec"))
	}
	if blind8.Counters.Get("ssbf") == 0 {
		t.Error("SSBF accesses not counted")
	}
}

// Large windows re-execute far more often than small ones (Fig 10's framing:
// 1-in-715 at 64 entries vs 1-in-95 at ~1500 for the paper's setup).
func TestSVWWindowDependence(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	small := quickCfg(config.OoO64())
	small.LSQ = config.LSQSVW
	large := quickCfg(config.Default())
	large.LSQ = config.LSQSVW
	rs := run(t, small, "vortex", 1)
	rl := run(t, large, "vortex", 1)
	rateSmall := float64(rs.Counters.Get("reexec")) / float64(rs.Committed)
	rateLarge := float64(rl.Counters.Get("reexec")) / float64(rl.Committed)
	if rateLarge <= rateSmall {
		t.Errorf("re-execution rate should grow with window: %.5f vs %.5f",
			rateSmall, rateLarge)
	}
}

func TestTable2CounterPresence(t *testing.T) {
	r := run(t, quickCfg(config.Default()), "gcc", 1)
	for _, k := range []string{"hl_sq", "hl_lq", "ll_sq", "ert", "cache"} {
		if r.Counters.Get(k) == 0 {
			t.Errorf("counter %s is zero on FMC-Hash gcc", k)
		}
	}
	ooo := run(t, quickCfg(config.OoO64()), "gcc", 1)
	for _, k := range []string{"ll_sq", "ert", "roundtrip"} {
		if ooo.Counters.Get(k) != 0 {
			t.Errorf("OoO-64 counted FMC structure %s = %d", k, ooo.Counters.Get(k))
		}
	}
}

func TestWrongPathInflatesSearches(t *testing.T) {
	// The same benchmark with mispredicts produces wrong-path queue
	// activity; hl_sq must exceed committed loads.
	r := run(t, quickCfg(config.Default()), "twolf", 1)
	if r.Counters.Get("wrongpath_load") == 0 {
		t.Error("no wrong-path loads injected on a mispredict-heavy benchmark")
	}
}

func TestCentralBeatenOrMatchedByELSQWithSQM(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	// Section 5.3: once the SQM is implemented, ELSQ performs at the same
	// speed as the idealised central queue (slightly better on FP thanks
	// to local LL forwardings).
	var elsq, central float64
	for _, bench := range []string{"swim", "gcc", "applu", "perlbmk"} {
		e := run(t, quickCfg(config.Default()), bench, 1)
		c := quickCfg(config.Default())
		c.LSQ = config.LSQCentral
		cr := run(t, c, bench, 1)
		elsq += e.IPC
		central += cr.IPC
	}
	if elsq < 0.97*central {
		t.Errorf("ELSQ+SQM (%.3f) fell more than 3%% behind central (%.3f)", elsq, central)
	}
}

func TestRestrictedSACEquakeOutlier(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	full := run(t, quickCfg(config.Default()), "equake", 1)
	cfg := quickCfg(config.Default())
	cfg.Disamb = config.DisambRSAC
	rsac := run(t, cfg, "equake", 1)
	loss := 1 - rsac.IPC/full.IPC
	if loss < 0.15 {
		t.Errorf("equake RSAC loss = %.1f%%, paper reports ~30%%", loss*100)
	}
	if rsac.Counters.Get("rsac_stall") == 0 {
		t.Error("no RSAC stalls recorded on equake")
	}
	// And swim must be essentially unaffected.
	fullS := run(t, quickCfg(config.Default()), "swim", 1)
	rsacS := run(t, cfg, "swim", 1)
	if rsacS.IPC < 0.97*fullS.IPC {
		t.Errorf("swim RSAC loss = %.1f%%, want ~0", (1-rsacS.IPC/fullS.IPC)*100)
	}
}

func TestLineERTWorks(t *testing.T) {
	cfg := quickCfg(config.Default())
	cfg.ERT = config.ERTLine
	r := run(t, cfg, "applu", 1)
	if r.IPC <= 0 {
		t.Fatal("line-ERT run produced no progress")
	}
	hash := quickCfg(config.Default())
	h := run(t, hash, "applu", 1)
	// The two filters should perform comparably (Fig 7).
	if r.IPC < 0.9*h.IPC || r.IPC > 1.1*h.IPC {
		t.Errorf("line vs hash ERT IPC: %.3f vs %.3f", r.IPC, h.IPC)
	}
}

func TestViolationDetection(t *testing.T) {
	// equake's pointer-derived store addresses resolve late; its loads can
	// issue before an aliasing store resolves. Over a long run some
	// violations should occur and be counted without breaking anything.
	r := run(t, quickCfg(config.Default()), "equake", 1)
	_ = r.Counters.Get("violation") // presence only; rare by construction
}

func TestAvgEpochsReasonable(t *testing.T) {
	r := run(t, quickCfg(config.Default()), "applu", 1)
	if r.AvgEpochs <= 0 || r.AvgEpochs > 16 {
		t.Errorf("AvgEpochs = %.2f out of (0,16]", r.AvgEpochs)
	}
}

// TestSampledMeasurement pins the multi-interval sampling semantics: the
// measured instruction count is exactly MaxInsts regardless of the interval
// split, runs are deterministic, zero-bleed sampling equals contiguous
// measurement bit-for-bit, and a real bleed moves the measurement window
// (the caches advance through program phases between intervals).
func TestSampledMeasurement(t *testing.T) {
	base := quickCfg(config.Default())
	contiguous := run(t, base, "twolf", 1)

	zeroBleed := base
	zeroBleed.SampleIntervals = 4
	rz := run(t, zeroBleed, "twolf", 1)
	if rz.Committed != base.MaxInsts {
		t.Fatalf("sampled run committed %d, want %d", rz.Committed, base.MaxInsts)
	}
	if rz.Cycles != contiguous.Cycles || rz.IPC != contiguous.IPC {
		t.Errorf("zero-bleed sampling diverged from contiguous measurement: %d/%f vs %d/%f",
			rz.Cycles, rz.IPC, contiguous.Cycles, contiguous.IPC)
	}

	sampled := base
	sampled.SampleIntervals = 4
	sampled.SampleBleedInsts = 50_000
	r1 := run(t, sampled, "twolf", 1)
	r2 := run(t, sampled, "twolf", 1)
	if r1.Committed != base.MaxInsts {
		t.Fatalf("bled sampled run committed %d, want %d", r1.Committed, base.MaxInsts)
	}
	if r1.Cycles != r2.Cycles || r1.IPC != r2.IPC {
		t.Error("sampled measurement is not deterministic")
	}
	if r1.Cycles == contiguous.Cycles {
		t.Error("bleed did not move the measurement window (cycles identical to contiguous run)")
	}

	// An uneven split still measures exactly MaxInsts.
	uneven := base
	uneven.MaxInsts = 30_001
	uneven.SampleIntervals = 4
	uneven.SampleBleedInsts = 1_000
	if r := run(t, uneven, "twolf", 1); r.Committed != 30_001 {
		t.Errorf("uneven split committed %d, want 30001", r.Committed)
	}
}

// TestRestoreWarmStateRejectsLateRestore pins the resume API contract.
func TestRestoreWarmStateRejectsLateRestore(t *testing.T) {
	cfg := quickCfg(config.Default())
	cfg.WarmupInsts = 1_000
	cfg.MaxInsts = 500
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, p.New(1))
	if err != nil {
		t.Fatal(err)
	}
	st := sim.hier.State()
	sim.Run()
	if err := sim.RestoreWarmState(st); err == nil {
		t.Error("RestoreWarmState accepted a simulator that already ran")
	}
}
