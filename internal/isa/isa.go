// Package isa defines the dynamic-instruction model used throughout the
// simulator. The model is deliberately architecture-neutral: the paper's
// evaluation runs Alpha binaries, but every result is driven by instruction
// *classes* (integer/FP ALU ops, loads, stores, branches), register dataflow
// and effective addresses, which is exactly what this package captures.
package isa

import "fmt"

// OpClass classifies a dynamic instruction by the functional unit it needs.
type OpClass uint8

const (
	// OpNop is a no-op (used for padding and squashed slots).
	OpNop OpClass = iota
	// OpIntAlu is a single-cycle integer operation.
	OpIntAlu
	// OpIntMul is a multi-cycle integer multiply/divide.
	OpIntMul
	// OpFpAlu is a pipelined floating-point add/sub/convert.
	OpFpAlu
	// OpFpMul is a pipelined floating-point multiply (or fused multiply-add).
	OpFpMul
	// OpLoad reads memory. Addr/Size are valid.
	OpLoad
	// OpStore writes memory. Addr/Size are valid.
	OpStore
	// OpBranch is a conditional or indirect control transfer.
	OpBranch
	numOpClasses
)

// NumOpClasses is the number of distinct operation classes.
const NumOpClasses = int(numOpClasses)

// String implements fmt.Stringer.
func (c OpClass) String() string {
	switch c {
	case OpNop:
		return "nop"
	case OpIntAlu:
		return "ialu"
	case OpIntMul:
		return "imul"
	case OpFpAlu:
		return "falu"
	case OpFpMul:
		return "fmul"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return fmt.Sprintf("opclass(%d)", uint8(c))
	}
}

// IsMem reports whether the class accesses memory.
func (c OpClass) IsMem() bool { return c == OpLoad || c == OpStore }

// Register file geometry. Registers 0..NumIntRegs-1 are integer, the rest FP.
const (
	NumIntRegs = 32
	NumFpRegs  = 32
	// NumRegs is the total logical register count.
	NumRegs = NumIntRegs + NumFpRegs
	// NoReg marks an absent operand or destination.
	NoReg = int16(-1)
)

// Inst is one dynamic instruction on the committed (or wrong) path.
//
// Because the stream is the committed program order and the modelled
// processor renames registers, logical-register dataflow equals true
// dataflow: WAR/WAW hazards do not exist, so producers are simply the last
// writers of Src1/Src2.
//
// Operand conventions: for loads, Src1 is the address source; for stores,
// Src1 is the address source and Src2 the data source (so address
// calculation readiness and data readiness are tracked separately, which
// the restricted-SAC analysis depends on); for branches, Src1 is the
// condition source.
type Inst struct {
	// Seq is the dynamic sequence number (program order, 0-based).
	Seq uint64
	// Op is the instruction class.
	Op OpClass
	// Dst is the destination logical register, NoReg if none.
	Dst int16
	// Src1, Src2 are source logical registers, NoReg if unused.
	Src1, Src2 int16
	// Addr is the effective byte address for loads/stores.
	Addr uint64
	// Size is the access width in bytes for loads/stores (1, 2, 4 or 8).
	Size uint8
	// Taken is the branch outcome (branches only).
	Taken bool
	// Mispred marks a branch the modelled predictor gets wrong.
	Mispred bool
	// WrongPath marks an instruction injected beyond a mispredicted branch;
	// it consumes resources and is squashed, never committed.
	WrongPath bool
}

// IsLoad reports whether the instruction is a load.
func (in *Inst) IsLoad() bool { return in.Op == OpLoad }

// IsStore reports whether the instruction is a store.
func (in *Inst) IsStore() bool { return in.Op == OpStore }

// IsMem reports whether the instruction accesses memory.
func (in *Inst) IsMem() bool { return in.Op.IsMem() }

// Overlaps reports whether two memory accesses touch at least one common
// byte. It is the address-match predicate used by every disambiguation
// scheme in the simulator.
func Overlaps(addrA uint64, sizeA uint8, addrB uint64, sizeB uint8) bool {
	endA := addrA + uint64(sizeA)
	endB := addrB + uint64(sizeB)
	return addrA < endB && addrB < endA
}

// OverlapMask returns the bitmask of the load's bytes that the store's
// footprint covers: bit i set means byte ldAddr+i is supplied by the store.
// A zero mask means the footprints are disjoint. Load sizes are at most 8
// bytes, so a uint8 covers every legal footprint.
func OverlapMask(stAddr uint64, stSize uint8, ldAddr uint64, ldSize uint8) uint8 {
	lo, hi := stAddr, stAddr+uint64(stSize) // overlap window in absolute bytes
	if ldAddr > lo {
		lo = ldAddr
	}
	if end := ldAddr + uint64(ldSize); end < hi {
		hi = end
	}
	if hi <= lo {
		return 0
	}
	n := uint(hi - lo)
	return uint8((1<<n - 1) << uint(lo-ldAddr))
}

// FullMask returns the byte mask of a complete size-byte footprint.
func FullMask(size uint8) uint8 {
	return uint8(1<<uint(size) - 1)
}

// WrongPathSeqBit is OR-ed into the sequence numbers of synthesised
// wrong-path instructions, keeping them disjoint from the committed-path
// sequence space. Filter and oracle boundaries assert on it: a wrong-path op
// must never reach committed-state structures (SSBF, ERT, the architectural
// memory image).
const WrongPathSeqBit uint64 = 1 << 63

// IsWrongPathSeq reports whether seq belongs to the wrong-path sequence
// space.
func IsWrongPathSeq(seq uint64) bool { return seq&WrongPathSeqBit != 0 }

// Latency returns the functional-unit latency in cycles for non-memory
// classes. Loads and stores resolve through the cache model instead.
func Latency(c OpClass) int {
	switch c {
	case OpIntAlu, OpBranch, OpNop, OpStore:
		// Store latency here is address generation only.
		return 1
	case OpIntMul:
		return 3
	case OpFpAlu:
		return 2
	case OpFpMul:
		return 4
	case OpLoad:
		return 1 // address generation; memory latency added separately
	default:
		return 1
	}
}
