package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{
		OpNop:    "nop",
		OpIntAlu: "ialu",
		OpIntMul: "imul",
		OpFpAlu:  "falu",
		OpFpMul:  "fmul",
		OpLoad:   "load",
		OpStore:  "store",
		OpBranch: "branch",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("OpClass(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := OpClass(200).String(); got != "opclass(200)" {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestIsMem(t *testing.T) {
	for op := OpClass(0); op < OpClass(NumOpClasses); op++ {
		want := op == OpLoad || op == OpStore
		if op.IsMem() != want {
			t.Errorf("%v.IsMem() = %v, want %v", op, op.IsMem(), want)
		}
	}
	ld := Inst{Op: OpLoad}
	st := Inst{Op: OpStore}
	if !ld.IsLoad() || ld.IsStore() || !ld.IsMem() {
		t.Error("load inst predicates wrong")
	}
	if !st.IsStore() || st.IsLoad() || !st.IsMem() {
		t.Error("store inst predicates wrong")
	}
}

func TestOverlapsBasic(t *testing.T) {
	tests := []struct {
		a    uint64
		sa   uint8
		b    uint64
		sb   uint8
		want bool
	}{
		{100, 4, 100, 4, true},   // identical
		{100, 4, 104, 4, false},  // adjacent
		{100, 4, 103, 1, true},   // last byte
		{100, 8, 104, 4, true},   // contained
		{104, 4, 100, 8, true},   // container
		{100, 1, 101, 1, false},  // disjoint bytes
		{0, 8, 4, 8, true},       // partial
		{1000, 4, 200, 4, false}, // far apart
	}
	for _, tt := range tests {
		if got := Overlaps(tt.a, tt.sa, tt.b, tt.sb); got != tt.want {
			t.Errorf("Overlaps(%d,%d,%d,%d) = %v, want %v", tt.a, tt.sa, tt.b, tt.sb, got, tt.want)
		}
	}
}

func TestOverlapsProperties(t *testing.T) {
	// Symmetry: Overlaps(a, b) == Overlaps(b, a).
	sym := func(a, b uint64, sa, sb uint8) bool {
		a %= 1 << 40
		b %= 1 << 40
		sa = sa%8 + 1
		sb = sb%8 + 1
		return Overlaps(a, sa, b, sb) == Overlaps(b, sb, a, sa)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("overlap symmetry violated: %v", err)
	}
	// Reflexivity for non-zero sizes.
	refl := func(a uint64, sa uint8) bool {
		a %= 1 << 40
		sa = sa%8 + 1
		return Overlaps(a, sa, a, sa)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("overlap reflexivity violated: %v", err)
	}
	// Disjointness: blocks separated by >= size never overlap.
	disj := func(a uint64, sa uint8) bool {
		a %= 1 << 40
		sa = sa%8 + 1
		return !Overlaps(a, sa, a+uint64(sa), sa)
	}
	if err := quick.Check(disj, nil); err != nil {
		t.Errorf("adjacent blocks must not overlap: %v", err)
	}
}

func TestLatencyPositive(t *testing.T) {
	for op := OpClass(0); op < OpClass(NumOpClasses); op++ {
		if Latency(op) <= 0 {
			t.Errorf("Latency(%v) = %d, want positive", op, Latency(op))
		}
	}
	if Latency(OpIntMul) <= Latency(OpIntAlu) {
		t.Error("integer multiply should be slower than ALU op")
	}
}
