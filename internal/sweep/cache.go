package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cpu"
)

// Cache stores completed simulation results by job key, so re-runs and
// overlapping sweeps skip simulations that already happened. Implementations
// must be safe for concurrent use.
type Cache interface {
	// Get returns the cached result for key, if present.
	Get(key string) (*cpu.Result, bool)
	// Put stores the result for key. Errors are the cache's concern
	// (caching is an optimisation); implementations must not fail the run.
	Put(key string, r *cpu.Result)
}

// MemCache is an in-process Cache. The zero value is not usable; call
// NewMemCache.
type MemCache struct {
	mu sync.RWMutex
	m  map[string]*cpu.Result
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string]*cpu.Result)}
}

// Get implements Cache.
func (c *MemCache) Get(key string) (*cpu.Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.m[key]
	return r, ok
}

// Put implements Cache.
func (c *MemCache) Put(key string, r *cpu.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
}

// Len returns the number of cached results.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DiskCache persists results as one JSON file per job key, so sweeps cache
// across processes (cmd/elsqsweep -cachedir). Corrupt or unreadable entries
// are treated as misses.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a disk cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get implements Cache.
func (c *DiskCache) Get(key string) (*cpu.Result, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var r cpu.Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, false
	}
	// Reject entries that parse but cannot be real simulation results
	// (stale schema, foreign files in the cache dir): a miss re-simulates,
	// a bad hit poisons artifacts.
	if r.Counters == nil || r.LoadDist == nil || r.StoreDist == nil ||
		r.Committed == 0 || r.Bench == "" {
		return nil, false
	}
	return &r, true
}

// Put implements Cache. The write is atomic (temp file + rename) so a
// concurrent reader never observes a partial entry.
func (c *DiskCache) Put(key string, r *cpu.Result) {
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
