package sweep

import (
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/workload"
)

// detJobs builds a small grid of distinct simulation identities.
func detJobs(t *testing.T) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range []string{"gcc", "swim", "mcf"} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 2; seed++ {
			cfg := config.Default().WithBudget(2_000, 10_000)
			jobs = append(jobs, Job{Config: cfg, Bench: prof, Seed: seed})
		}
	}
	return jobs
}

// TestDeterminismAcrossWorkerCounts pins the sweep contract behind the
// result cache and the bench baseline: the same (config, benchmark, seed)
// must produce an identical Result and an identical cache key no matter
// how the work is scheduled. Workers=1 serialises; Workers=8 exercises
// concurrent simulations sharing nothing.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	jobs := detJobs(t)
	serial := &Runner{Workers: 1}
	parallel := &Runner{Workers: 8}

	outS, _, err := serial.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	outP, _, err := parallel.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if outS[i].Key != outP[i].Key {
			t.Errorf("job %d: key %s (serial) != %s (parallel)", i, outS[i].Key, outP[i].Key)
		}
		if !reflect.DeepEqual(outS[i].Result, outP[i].Result) {
			t.Errorf("job %d (%s/%s seed %d): results differ between Workers=1 and Workers=8",
				i, jobs[i].Config.Name(), jobs[i].Bench.Name, jobs[i].Seed)
		}
	}
}

// TestDeterminismAcrossRuns re-runs the same jobs in one process: repeated
// execution must be bit-identical (the cross-process half of this
// guarantee is pinned by the committed golden fixture in testdata/ and the
// results digests in bench/baseline.json, both produced by earlier
// processes).
func TestDeterminismAcrossRuns(t *testing.T) {
	jobs := detJobs(t)
	r := &Runner{}
	first, _, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if first[i].Key != second[i].Key {
			t.Errorf("job %d: key changed across runs", i)
		}
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Errorf("job %d: result changed across runs", i)
		}
	}
}

// TestKeyStability pins the literal cache-key values of two known jobs: a
// changed key silently invalidates every persistent cache and the bench
// baseline, so changing it must be a conscious act (bump cacheVersion).
func TestKeyStability(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithBudget(2_000, 10_000)
	j := Job{Config: cfg, Bench: prof, Seed: 1}
	k1, k2 := j.Key(), j.Key()
	if k1 != k2 {
		t.Fatalf("Key not stable within process: %s vs %s", k1, k2)
	}
	j2 := j
	j2.Seed = 2
	if j.Key() == j2.Key() {
		t.Error("different seeds share a key")
	}
	j3 := j
	j3.Config.SQM = false
	if j.Key() == j3.Key() {
		t.Error("different configs share a key")
	}
	// Axes labels are descriptive only and must not affect identity.
	j4 := j
	j4.Axes = map[string]string{"label": "x"}
	if j.Key() != j4.Key() {
		t.Error("Axes labels changed the cache key")
	}
}

// TestCheckpointedRunMatchesFull pins the checkpoint-sharing contract: a
// Runner with a checkpoint store produces outcomes bit-identical to one
// without, while running each distinct warm-up only once.
func TestCheckpointedRunMatchesFull(t *testing.T) {
	// Three configs differing only in non-warm-up fields (the shape of
	// every paper sweep), over two benchmarks.
	var jobs []Job
	muts := []func(*config.Config){
		nil,
		func(c *config.Config) { c.ERT = config.ERTLine },
		func(c *config.Config) { c.MigrateThreshold = 24 },
	}
	for _, name := range []string{"gcc", "swim"} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mut := range muts {
			cfg := config.Default().WithBudget(2_000, 40_000)
			if mut != nil {
				mut(&cfg)
			}
			jobs = append(jobs, Job{Config: cfg, Bench: prof, Seed: 1})
		}
	}

	full := &Runner{Workers: 4, Batch: -1}
	wantOut, wantStats, err := full.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.CheckpointsBuilt != 0 || wantStats.CheckpointResumes != 0 {
		t.Fatalf("scalar runner without a store reported checkpoint activity: %+v", wantStats)
	}

	// A store-less runner with default batching still shares each group's
	// warm-up in-run: one build per (benchmark, seed), every job resumed,
	// results bit-identical to the scalar sweep.
	batched := &Runner{Workers: 4}
	batchOut, batchStats, err := batched.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if batchStats.CheckpointsBuilt != 2 {
		t.Errorf("store-less batched run built %d checkpoints, want 2 (one per benchmark)", batchStats.CheckpointsBuilt)
	}
	if batchStats.CheckpointResumes != len(jobs) {
		t.Errorf("store-less batched run resumed %d jobs, want %d", batchStats.CheckpointResumes, len(jobs))
	}
	for i := range wantOut {
		if wantOut[i].Key != batchOut[i].Key || !reflect.DeepEqual(wantOut[i].Result, batchOut[i].Result) {
			t.Errorf("job %d: batched outcome diverged from scalar run", i)
		}
	}

	ckptd := &Runner{Workers: 4, Checkpoints: ckpt.NewMemStore()}
	gotOut, gotStats, err := ckptd.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats.CheckpointsBuilt != 2 {
		t.Errorf("built %d checkpoints, want 2 (one per benchmark)", gotStats.CheckpointsBuilt)
	}
	if gotStats.CheckpointResumes != len(jobs) {
		t.Errorf("resumed %d jobs, want %d", gotStats.CheckpointResumes, len(jobs))
	}
	for i := range wantOut {
		if wantOut[i].Key != gotOut[i].Key || !reflect.DeepEqual(wantOut[i].Result, gotOut[i].Result) {
			t.Errorf("job %d: checkpointed outcome diverged from full run", i)
		}
	}

	// A second run against the same store resumes every job from disk-free
	// memory hits and builds nothing.
	again, againStats, err := ckptd.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if againStats.CheckpointsBuilt != 0 {
		t.Errorf("second run rebuilt %d checkpoints, want 0", againStats.CheckpointsBuilt)
	}
	for i := range wantOut {
		if !reflect.DeepEqual(wantOut[i].Result, again[i].Result) {
			t.Errorf("job %d: second checkpointed run diverged", i)
		}
	}
}
