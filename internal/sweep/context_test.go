package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestRunContextCancelFreesWorkersPromptly pins the contract the fleet
// coordinator relies on to reclaim workers from abandoned sweeps: a
// cancelled RunContext must return well before the jobs would have
// finished, with ctx.Err() as the error and nil results on the jobs that
// were cut short.
func TestRunContextCancelFreesWorkersPromptly(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	// A grid that would take on the order of minutes: far beyond what the
	// cancellation window below allows, so a pass proves the abort path.
	var jobs []Job
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := config.Default().WithBudget(500_000_000, 0)
		jobs = append(jobs, Job{Config: cfg, Bench: prof, Seed: seed})
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	r := &Runner{Workers: 2}
	start := time.Now()
	out, _, err := r.RunContext(ctx, jobs)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to free the pool; want prompt return", elapsed)
	}
	if len(out) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(jobs))
	}
	for i, o := range out {
		if o.Result != nil && o.Result.Committed != jobs[i].Config.MaxInsts {
			t.Errorf("job %d: partial result leaked (%d committed)", i, o.Result.Committed)
		}
	}
}

// TestRunContextBackgroundMatchesRun pins that the chunked cancellation
// plumbing is inert without a deadline: RunContext(Background) and Run
// produce identical results.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	jobs := detJobs(t)[:2]
	a, _, err := (&Runner{Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := (&Runner{Workers: 1}).RunContext(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ResultsDigest(a) != ResultsDigest(b) {
		t.Fatalf("Run and RunContext(Background) digests differ: %s != %s",
			ResultsDigest(a), ResultsDigest(b))
	}
}
