package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Axis is one swept dimension of a grid: a config field (from the
// config.Fields registry) and the values it takes.
type Axis struct {
	// Field is the canonical config field name, e.g. "l1.size".
	Field string
	// Values are the field values in Set syntax, e.g. ["16K", "32K"].
	Values []string
}

// ParseAxis parses the CLI axis syntax "field=v1,v2,v3".
func ParseAxis(s string) (Axis, error) {
	field, vals, ok := strings.Cut(s, "=")
	if !ok {
		return Axis{}, fmt.Errorf("sweep: bad axis %q (want field=v1,v2,...)", s)
	}
	field = strings.TrimSpace(field)
	var values []string
	for _, v := range strings.Split(vals, ",") {
		if v = strings.TrimSpace(v); v != "" {
			values = append(values, v)
		}
	}
	if field == "" || len(values) == 0 {
		return Axis{}, fmt.Errorf("sweep: bad axis %q (want field=v1,v2,...)", s)
	}
	if _, err := config.FieldByName(field); err != nil {
		return Axis{}, err
	}
	return Axis{Field: field, Values: values}, nil
}

// ParseSeeds parses a seed list: either a range "1..5" or a comma list
// "1,2,7".
func ParseSeeds(s string) ([]uint64, error) {
	s = strings.TrimSpace(s)
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		b, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("sweep: bad seed range %q (want lo..hi)", s)
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("sweep: seed range %q too large", s)
		}
		out := make([]uint64, 0, b-a+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad seed %q in %q", part, s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty seed list %q", s)
	}
	return out, nil
}

// Grid declares a sweep: a base configuration, config-field axes forming a
// cartesian product, and the benchmark and seed dimensions.
type Grid struct {
	// Base is the configuration every point starts from.
	Base config.Config
	// Axes are the swept config fields. An empty slice sweeps just Base.
	Axes []Axis
	// Benches are the workloads; must be non-empty.
	Benches []workload.Profile
	// Seeds are the workload seeds; empty defaults to {1}.
	Seeds []uint64
}

// Size returns the number of jobs Expand will produce.
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	seeds := len(g.Seeds)
	if seeds == 0 {
		seeds = 1
	}
	return n * len(g.Benches) * seeds
}

// Expand enumerates the grid into jobs: the cartesian product of every axis
// (first axis slowest, last fastest), crossed with benchmarks and seeds.
// Every expanded configuration is validated, so a bad axis value fails here
// with the offending combination named rather than mid-run.
func (g Grid) Expand() ([]Job, error) {
	if len(g.Benches) == 0 {
		return nil, fmt.Errorf("sweep: grid has no benchmarks")
	}
	for _, a := range g.Axes {
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", a.Field)
		}
		if _, err := config.FieldByName(a.Field); err != nil {
			return nil, err
		}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}

	// Odometer over the axis value indices, last axis fastest.
	idx := make([]int, len(g.Axes))
	var jobs []Job
	for {
		cfg := g.Base
		labels := make(map[string]string, len(g.Axes))
		for ai, a := range g.Axes {
			v := a.Values[idx[ai]]
			if err := config.SetField(&cfg, a.Field, v); err != nil {
				return nil, fmt.Errorf("sweep: axis %s=%s: %w", a.Field, v, err)
			}
			labels[a.Field] = v
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: invalid point %s: %w", labelString(labels), err)
		}
		// Content-address trace-driven points before any key is derived:
		// jobs must be identified by what the trace contains, not where it
		// happens to live (and a missing or corrupt file fails here, with
		// the point named, rather than mid-run).
		if err := trace.Resolve(&cfg); err != nil {
			return nil, fmt.Errorf("sweep: point %s: %w", labelString(labels), err)
		}
		for _, bench := range g.Benches {
			for _, seed := range seeds {
				jobs = append(jobs, Job{Config: cfg, Bench: bench, Seed: seed, Axes: labels})
			}
		}
		// Advance the odometer; done when it wraps (or has no digits).
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return jobs, nil
}

// SuiteBenches resolves comma-separated suite names ("int,fp") to profiles.
func SuiteBenches(suites string) ([]workload.Profile, error) {
	var out []workload.Profile
	for _, name := range strings.Split(suites, ",") {
		s, err := workload.ParseSuite(name)
		if err != nil {
			return nil, err
		}
		out = append(out, workload.SuiteOf(s)...)
	}
	return out, nil
}

// NamedBenches resolves comma-separated benchmark names to profiles.
func NamedBenches(names string) ([]workload.Profile, error) {
	var out []workload.Profile
	for _, name := range strings.Split(names, ",") {
		p, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// labelString renders axis labels "k=v k=v" sorted by key.
func labelString(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for _, k := range sortedKeys(labels) {
		parts = append(parts, k+"="+labels[k])
	}
	if len(parts) == 0 {
		return "(base)"
	}
	return strings.Join(parts, " ")
}
