// Package sweep is the parallel configuration-sweep engine behind every
// grid-shaped evaluation in the reproduction. The paper's results are all
// (configuration × benchmark) grids — Table 2 and Figures 7–11 sweep
// ELSQ/baseline configs over the SPEC-like suites — and this package turns
// that shape into a first-class subsystem:
//
//   - Grid declaratively expands parameter axes (any config field ×
//     benchmarks × seeds) into Jobs;
//   - Runner executes jobs on a bounded worker pool with deterministic
//     per-job seeding, deduplication, progress reporting and an optional
//     result cache keyed by the full simulation identity;
//   - artifacts.go renders outcomes as JSON and CSV for plotting.
//
// internal/experiments sits on top of Runner; cmd/elsqsweep exposes
// arbitrary user-specified grids.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/simrun"
	"repro/internal/workload"
)

// Job is one (configuration, benchmark, seed) simulation. The instruction
// budget lives inside Config (MaxInsts/WarmupInsts), so a Job fully
// determines its result.
type Job struct {
	// Config is the complete simulation configuration.
	Config config.Config
	// Bench is the workload to run.
	Bench workload.Profile
	// Seed selects the workload instantiation.
	Seed uint64
	// Axes records the axis values that produced this job in a grid
	// expansion (nil for hand-built jobs). Purely descriptive: it labels
	// artifact rows and is not part of the cache identity.
	Axes map[string]string
}

// cacheVersion is mixed into every job key. Bump it whenever a change to
// the simulator or the workload generators alters results for an unchanged
// (config, benchmark, seed), so persistent caches (DiskCache) from older
// builds miss instead of silently serving stale numbers.
const cacheVersion = 2

// Key returns the stable cache identity of the job: a digest of the cache
// version, the canonical config encoding, the benchmark name, and the seed.
// Identical keys across processes and runs denote identical simulations.
func (j Job) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d", cacheVersion)
	h.Write([]byte{0})
	h.Write(j.Config.Canonical())
	h.Write([]byte{0})
	h.Write([]byte(j.Bench.Name))
	h.Write([]byte{0})
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], j.Seed)
	h.Write(seed[:])
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Outcome pairs a job with its result.
type Outcome struct {
	// Job is the input, unchanged.
	Job Job
	// Key is the job's cache identity.
	Key string
	// Result is the simulation outcome (nil if the job errored).
	Result *cpu.Result
	// CacheHit reports whether Result was served from the cache rather
	// than simulated in this run.
	CacheHit bool
}

// Stats summarises one Run call.
type Stats struct {
	// Total is the number of jobs submitted.
	Total int `json:"total"`
	// Unique is the number of distinct simulation identities among them.
	Unique int `json:"unique"`
	// CacheHits counts unique jobs served from the cache.
	CacheHits int `json:"cache_hits"`
	// Ran counts unique jobs actually simulated.
	Ran int `json:"ran"`
	// CheckpointsBuilt counts warm-up checkpoints built this run;
	// CheckpointResumes counts simulated jobs that skipped their functional
	// warm-up by resuming from a shared checkpoint (via the Runner's store
	// or a batched group's in-run warm-up sharing).
	CheckpointsBuilt  int `json:"checkpoints_built,omitempty"`
	CheckpointResumes int `json:"checkpoint_resumes,omitempty"`
}

// String renders the stats in the CLI's summary format.
func (s Stats) String() string {
	out := fmt.Sprintf("%d jobs (%d unique): %d simulated, %d cache hits",
		s.Total, s.Unique, s.Ran, s.CacheHits)
	if s.CheckpointsBuilt > 0 || s.CheckpointResumes > 0 {
		out += fmt.Sprintf(", %d warm-ups checkpointed, %d resumes", s.CheckpointsBuilt, s.CheckpointResumes)
	}
	return out
}

// Progress is delivered to a Runner's OnProgress callback once per unique
// job as it resolves.
type Progress struct {
	// Done and Total count unique jobs.
	Done, Total int
	// Outcome is the job that just resolved.
	Outcome Outcome
	// Err is the job's error, if it failed.
	Err error
}

// Runner executes sweep jobs on a bounded worker pool. The zero value runs
// with GOMAXPROCS workers and no cache.
type Runner struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Cache, if non-nil, is consulted before simulating and updated after.
	Cache Cache
	// Checkpoints, if non-nil, persists warm-up sharing: jobs whose
	// warm-up-relevant identity matches (ckpt.Key — same cache geometry,
	// warm-up budget, benchmark and seed; almost every paper sweep) share
	// one warm-state snapshot through the store across runs and processes.
	// Batched groups share their warm-up within a run even without a
	// store. Results are bit-identical to full warm-up runs; only
	// wall-clock changes.
	Checkpoints ckpt.Store
	// Batch caps how many warm-up-compatible jobs run as lanes of one
	// batch on the lane-parallel engine (simrun.RunBatch): 0 means the
	// default cap, anything below 2 disables batching (every job runs
	// scalar).
	Batch int
	// OnProgress, if non-nil, is called after each unique job resolves.
	// Calls are serialised; the callback must not call back into the
	// Runner.
	OnProgress func(Progress)
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// defaultBatch is the lane-group cap when Runner.Batch is zero: large
// enough that slab sharing and warm-up amortisation pay off, small enough
// that group granularity still feeds every worker of a typical pool.
const defaultBatch = 8

func (r *Runner) batchCap() int {
	if r.Batch == 0 {
		return defaultBatch
	}
	if r.Batch < 2 {
		return 1
	}
	return r.Batch
}

// slot is the execution state of one unique simulation identity.
type slot struct {
	job     Job
	key     string
	res     *cpu.Result
	hit     bool
	err     error
	indices []int // positions in the submitted job slice
}

// point maps a job onto the simrun API, threading the runner's checkpoint
// store through.
func (r *Runner) point(j Job) simrun.Point {
	return simrun.Point{
		Config: j.Config,
		Bench:  j.Bench.Name,
		Seed:   j.Seed,
		Ckpt:   r.Checkpoints,
	}
}

// Run executes the jobs and returns one outcome per job, in submission
// order regardless of completion order. Duplicate jobs (same Key) are
// simulated once and fanned out. On failure the first error is returned;
// unaffected jobs still complete, and the failed jobs' outcomes carry a nil
// Result.
func (r *Runner) Run(jobs []Job) ([]Outcome, Stats, error) {
	return r.RunContext(context.Background(), jobs)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled,
// workers stop picking up pending jobs and in-flight simulations abort at
// their next cancellation check (cpu.RunContext checks every few tens of
// thousands of instructions), so the pool drains promptly no matter how
// large the remaining grid is. The returned error is ctx.Err(); outcomes
// of jobs that never ran (or were aborted) carry a nil Result. The one
// uncancellable stretch is a warm-up checkpoint build already in progress,
// which is bounded by a single functional warm-up.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) ([]Outcome, Stats, error) {
	stats := Stats{Total: len(jobs)}
	byKey := make(map[string]*slot, len(jobs))
	var unique []*slot
	for i, j := range jobs {
		k := j.Key()
		s, ok := byKey[k]
		if !ok {
			s = &slot{job: j, key: k}
			byKey[k] = s
			unique = append(unique, s)
		}
		s.indices = append(s.indices, i)
	}
	stats.Unique = len(unique)

	var mu sync.Mutex // guards done counter, firstErr, OnProgress
	done := 0
	var firstErr error
	report := func(s *slot) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
		if r.OnProgress != nil {
			r.OnProgress(Progress{
				Done:    done,
				Total:   len(unique),
				Outcome: Outcome{Job: s.job, Key: s.key, Result: s.res, CacheHit: s.hit},
				Err:     s.err,
			})
		}
	}

	// Resolve cache hits up front so the pool only sees real work.
	var pending []*slot
	for _, s := range unique {
		if r.Cache != nil {
			if res, ok := r.Cache.Get(s.key); ok {
				s.res, s.hit = res, true
				stats.CacheHits++
				report(s)
				continue
			}
		}
		pending = append(pending, s)
	}
	stats.Ran = len(pending)

	// Shape the pending slots into lane groups: warm-up-compatible jobs
	// run together on the batch engine, sharing one warm-up and adjacent
	// slab state; everything else (and every group once the cap or the
	// batching knob says so) runs scalar. Groups of one go through the
	// scalar path inside runGroup.
	groups := r.groupSlots(pending)
	var built, resumed atomic.Int64

	// Bounded pool: workers pull the next pending group from a shared
	// cursor, so an idle worker steals whatever work remains.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				n := cursor.Add(1) - 1
				if n >= int64(len(groups)) {
					return
				}
				r.runGroup(ctx, groups[n], &built, &resumed)
				for _, s := range groups[n] {
					if s.err == nil && r.Cache != nil {
						r.Cache.Put(s.key, s.res)
					}
					report(s)
				}
			}
		}()
	}
	wg.Wait()
	stats.CheckpointsBuilt = int(built.Load())
	stats.CheckpointResumes = int(resumed.Load())
	if err := ctx.Err(); err != nil && firstErr == nil {
		firstErr = err
	}

	out := make([]Outcome, len(jobs))
	for _, s := range unique {
		for _, i := range s.indices {
			// Each outcome keeps its own submitted Job (duplicates may
			// carry distinct Axes labels); only the execution state comes
			// from the shared slot.
			out[i] = Outcome{Job: jobs[i], Key: s.key, Result: s.res, CacheHit: s.hit}
		}
	}
	return out, stats, firstErr
}

// groupSlots partitions pending slots into execution groups: slots whose
// simrun batch key matches (same benchmark, seed and warm-up-relevant
// config slice) are grouped up to the batch cap; a slot whose key cannot
// be computed gets a singleton group so its error surfaces from the scalar
// path. With batching disabled every slot is its own group.
func (r *Runner) groupSlots(pending []*slot) [][]*slot {
	cap := r.batchCap()
	if cap <= 1 {
		groups := make([][]*slot, len(pending))
		for i, s := range pending {
			groups[i] = []*slot{s}
		}
		return groups
	}
	byWarm := make(map[string][]*slot)
	var order []string
	var groups [][]*slot
	for _, s := range pending {
		bk, err := r.point(s.job).BatchKey()
		if err != nil {
			groups = append(groups, []*slot{s})
			continue
		}
		if _, ok := byWarm[bk]; !ok {
			order = append(order, bk)
		}
		byWarm[bk] = append(byWarm[bk], s)
	}
	for _, bk := range order {
		g := byWarm[bk]
		for len(g) > cap {
			groups = append(groups, g[:cap])
			g = g[cap:]
		}
		groups = append(groups, g)
	}
	return groups
}

// runGroup executes one group — scalar for a singleton, lanes of a batch
// otherwise — and writes each slot's result, error and checkpoint stats.
func (r *Runner) runGroup(ctx context.Context, g []*slot, built, resumed *atomic.Int64) {
	if len(g) == 1 {
		s := g[0]
		out, err := r.point(s.job).Run(ctx)
		if err != nil {
			s.err = fmt.Errorf("%s/%s: %w", s.job.Config.Name(), s.job.Bench.Name, err)
			return
		}
		s.res = out.Result
		r.countOutcome(out, built, resumed)
		return
	}
	points := make([]simrun.Point, len(g))
	for i, s := range g {
		points[i] = r.point(s.job)
	}
	outs, err := simrun.RunBatch(ctx, points)
	if err != nil {
		for _, s := range g {
			s.err = err
		}
		return
	}
	for i, s := range g {
		out := outs[i]
		if out.Err != nil {
			s.err = fmt.Errorf("%s/%s: %w", s.job.Config.Name(), s.job.Bench.Name, out.Err)
			continue
		}
		s.res = out.Result
		r.countOutcome(out, built, resumed)
	}
}

// countOutcome folds one outcome's warm-up bookkeeping into the run stats.
func (r *Runner) countOutcome(out *simrun.Outcome, built, resumed *atomic.Int64) {
	if out.CkptBuilt {
		built.Add(1)
	}
	if out.Resumed {
		resumed.Add(1)
	}
}
