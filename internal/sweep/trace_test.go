package sweep

import (
	"os"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordTrace writes a full-budget recording of (bench, seed) under cfg and
// returns its path.
func recordTrace(t *testing.T, dir string, cfg *config.Config, bench string, seed uint64) string {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := trace.BenchPath(dir, bench, seed)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.NewRecorder(f, prof.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Record(cfg.WarmupInsts + cfg.MaxInsts); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGridTraceAxis checks the trace sweep axis end to end: expansion
// resolves content digests (so job keys are content-addressed, and the same
// recording under two paths dedups to one simulation), and trace-driven
// jobs produce results identical to their live-generator twin.
func TestGridTraceAxis(t *testing.T) {
	cfg := config.Default().WithBudget(1500, 3000)
	dir := t.TempDir()
	path := recordTrace(t, dir, &cfg, "gzip", 1)

	// The same recording under a second path: one simulation, two jobs.
	alias := trace.BenchPath(dir, "gzip-alias", 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(alias, data, 0o644); err != nil {
		t.Fatal(err)
	}

	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid{
		Base:    cfg,
		Axes:    []Axis{{Field: "trace", Values: []string{path, alias}}},
		Benches: []workload.Profile{prof},
	}
	jobs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("expanded %d jobs, want 2", len(jobs))
	}
	for i, j := range jobs {
		if j.Config.TraceDigest == "" {
			t.Fatalf("job %d: Expand left the trace digest unresolved", i)
		}
	}
	if jobs[0].Key() != jobs[1].Key() {
		t.Error("identical trace content under two paths split the job key")
	}

	r := Runner{Workers: 2}
	out, stats, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 1 {
		t.Errorf("ran %d simulations, want 1 (path-aliased jobs must dedup)", stats.Ran)
	}

	liveOut, _, err := r.Run([]Job{{Config: cfg, Bench: prof, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out[0].Result, liveOut[0].Result; got.Cycles != want.Cycles || got.IPC != want.IPC {
		t.Errorf("trace-driven sweep result diverged from live: %d cycles IPC %v, want %d cycles IPC %v",
			got.Cycles, got.IPC, want.Cycles, want.IPC)
	}

	// A bad path fails at expansion, with the point named.
	bad := Grid{
		Base:    cfg,
		Axes:    []Axis{{Field: "trace", Values: []string{trace.BenchPath(dir, "missing", 1)}}},
		Benches: []workload.Profile{prof},
	}
	if _, err := bad.Expand(); err == nil {
		t.Error("expansion accepted a missing trace file")
	}
}

// TestTraceJobsShareCheckpoints checks the warm-up-sharing path under
// traces: two configs differing only in timing axes share one trace-backed
// warm-up checkpoint.
func TestTraceJobsShareCheckpoints(t *testing.T) {
	cfg := config.Default().WithBudget(1000, 2500)
	dir := t.TempDir()
	cfg.TracePath = recordTrace(t, dir, &cfg, "swim", 1)
	if err := trace.Resolve(&cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.MigrateThreshold = 24

	prof, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	r := Runner{Workers: 1, Checkpoints: nil}
	jobs := []Job{
		{Config: cfg, Bench: prof, Seed: 1},
		{Config: other, Bench: prof, Seed: 1},
	}
	full, _, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	r.Checkpoints = ckpt.NewMemStore()
	shared, stats, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointsBuilt != 1 || stats.CheckpointResumes != 2 {
		t.Errorf("built %d checkpoints with %d resumes, want 1 and 2",
			stats.CheckpointsBuilt, stats.CheckpointResumes)
	}
	for i := range jobs {
		if full[i].Result.Cycles != shared[i].Result.Cycles || full[i].Result.IPC != shared[i].Result.IPC {
			t.Errorf("job %d: checkpoint-shared trace run diverged from full run", i)
		}
	}
}
