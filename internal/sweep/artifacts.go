package sweep

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/cpu"
)

// ResultDigest returns the stable content digest of one simulation result:
// sha256 of its canonical JSON encoding, truncated to 16 bytes of hex.
// The encoding is deterministic (counter bags marshal as sorted maps), and
// it is stable across a JSON round-trip, so a result that travelled over
// the fleet wire digests identically to the in-process original.
func ResultDigest(r *cpu.Result) string {
	b, err := json.Marshal(r)
	if err != nil {
		// Result is a flat struct of numbers, text-marshalling enums and
		// JSON-marshalling stats; encoding can only fail if it gains an
		// unserialisable field, which must not happen silently.
		panic(fmt.Sprintf("sweep: result encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// ResultsDigest folds an outcome sequence into one digest: per outcome, in
// order, the job key and the result's content digest (failed jobs fold a
// marker). Axis labels and cache-hit flags are excluded — the digest names
// what was computed, not how it was scheduled or served — so a fleet sweep
// and a local Runner run of the same grid must produce equal digests.
func ResultsDigest(outcomes []Outcome) string {
	h := sha256.New()
	for _, o := range outcomes {
		if o.Result == nil {
			fmt.Fprintf(h, "%s|!\n", o.Key)
			continue
		}
		fmt.Fprintf(h, "%s|%s\n", o.Key, ResultDigest(o.Result))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Row is one simulation outcome flattened for artifacts: the identity of
// the point (config name + hash, axis labels, benchmark, seed), the headline
// timing results, and the full event-counter bag.
type Row struct {
	// Config is the human-readable configuration name (config.Name).
	Config string `json:"config"`
	// ConfigHash is the stable digest of the full configuration.
	ConfigHash string `json:"config_hash"`
	// Axes are the grid axis values that produced this point, if any.
	Axes map[string]string `json:"axes,omitempty"`
	// Bench and Suite identify the workload.
	Bench string `json:"bench"`
	Suite string `json:"suite"`
	// Seed is the workload seed.
	Seed uint64 `json:"seed"`
	// Committed, Cycles and IPC are the headline results.
	Committed uint64  `json:"committed"`
	Cycles    int64   `json:"cycles"`
	IPC       float64 `json:"ipc"`
	// LLIdleFrac and AvgEpochs carry the Figure 11 activity statistics.
	LLIdleFrac float64 `json:"ll_idle_frac"`
	AvgEpochs  float64 `json:"avg_epochs"`
	// CacheHit reports whether this row was served from the result cache.
	CacheHit bool `json:"cache_hit"`
	// Counters is the complete event-counter bag of the run.
	Counters map[string]uint64 `json:"counters"`
}

// Rows flattens outcomes (skipping failed jobs, which have no result).
func Rows(outcomes []Outcome) []Row {
	rows := make([]Row, 0, len(outcomes))
	for _, o := range outcomes {
		r := o.Result
		if r == nil {
			continue
		}
		rows = append(rows, Row{
			Config:     r.Config,
			ConfigHash: o.Job.Config.Hash(),
			Axes:       o.Job.Axes,
			Bench:      r.Bench,
			Suite:      r.Suite.String(),
			Seed:       o.Job.Seed,
			Committed:  r.Committed,
			Cycles:     r.Cycles,
			IPC:        r.IPC,
			LLIdleFrac: r.LLIdleFrac,
			AvgEpochs:  r.AvgEpochs,
			CacheHit:   o.CacheHit,
			Counters:   r.Counters.Snapshot(),
		})
	}
	return rows
}

// Artifact is the JSON document a sweep emits: run summary plus all rows.
type Artifact struct {
	// Stats summarises the run (job counts, cache hits).
	Stats Stats `json:"stats"`
	// ResultsDigest is the ResultsDigest of the outcome sequence: equal
	// digests mean byte-identical results in identical canonical order,
	// which is how CI compares a fleet sweep against a local run.
	ResultsDigest string `json:"results_digest"`
	// Rows holds one entry per successful job in submission order.
	Rows []Row `json:"rows"`
}

// WriteJSON writes the outcomes as an indented JSON Artifact.
func WriteJSON(w io.Writer, outcomes []Outcome, stats Stats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Artifact{Stats: stats, ResultsDigest: ResultsDigest(outcomes), Rows: Rows(outcomes)})
}

// WriteCSV writes the outcomes as CSV. Fixed columns come first, then one
// "axis:<field>" column per axis label appearing in any row, then one
// column per counter name appearing in any row — both unions sorted, so the
// header is deterministic for a given result set.
func WriteCSV(w io.Writer, outcomes []Outcome) error {
	rows := Rows(outcomes)
	axisKeys := map[string]string{}
	counterKeys := map[string]string{}
	for _, r := range rows {
		for k := range r.Axes {
			axisKeys[k] = ""
		}
		for k := range r.Counters {
			counterKeys[k] = ""
		}
	}
	axes := sortedKeys(axisKeys)
	counters := sortedKeys(counterKeys)

	header := []string{"config", "config_hash", "bench", "suite", "seed",
		"committed", "cycles", "ipc", "ll_idle_frac", "avg_epochs", "cache_hit"}
	for _, k := range axes {
		header = append(header, "axis:"+k)
	}
	for _, k := range counters {
		header = append(header, k)
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Config,
			r.ConfigHash,
			r.Bench,
			r.Suite,
			strconv.FormatUint(r.Seed, 10),
			strconv.FormatUint(r.Committed, 10),
			strconv.FormatInt(r.Cycles, 10),
			strconv.FormatFloat(r.IPC, 'f', 6, 64),
			strconv.FormatFloat(r.LLIdleFrac, 'f', 6, 64),
			strconv.FormatFloat(r.AvgEpochs, 'f', 4, 64),
			strconv.FormatBool(r.CacheHit),
		}
		for _, k := range axes {
			rec = append(rec, r.Axes[k])
		}
		for _, k := range counters {
			rec = append(rec, strconv.FormatUint(r.Counters[k], 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatProgress renders one progress event as the standard log line used
// by cmd/elsqsweep and tests.
func FormatProgress(p Progress) string {
	status := "ok"
	switch {
	case p.Err != nil:
		status = "error: " + p.Err.Error()
	case p.Outcome.CacheHit:
		status = "cache hit"
	}
	return fmt.Sprintf("[%d/%d] %s/%s seed=%d (%s)",
		p.Done, p.Total, p.Outcome.Job.Config.Name(), p.Outcome.Job.Bench.Name,
		p.Outcome.Job.Seed, status)
}
