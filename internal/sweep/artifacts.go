package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Row is one simulation outcome flattened for artifacts: the identity of
// the point (config name + hash, axis labels, benchmark, seed), the headline
// timing results, and the full event-counter bag.
type Row struct {
	// Config is the human-readable configuration name (config.Name).
	Config string `json:"config"`
	// ConfigHash is the stable digest of the full configuration.
	ConfigHash string `json:"config_hash"`
	// Axes are the grid axis values that produced this point, if any.
	Axes map[string]string `json:"axes,omitempty"`
	// Bench and Suite identify the workload.
	Bench string `json:"bench"`
	Suite string `json:"suite"`
	// Seed is the workload seed.
	Seed uint64 `json:"seed"`
	// Committed, Cycles and IPC are the headline results.
	Committed uint64  `json:"committed"`
	Cycles    int64   `json:"cycles"`
	IPC       float64 `json:"ipc"`
	// LLIdleFrac and AvgEpochs carry the Figure 11 activity statistics.
	LLIdleFrac float64 `json:"ll_idle_frac"`
	AvgEpochs  float64 `json:"avg_epochs"`
	// CacheHit reports whether this row was served from the result cache.
	CacheHit bool `json:"cache_hit"`
	// Counters is the complete event-counter bag of the run.
	Counters map[string]uint64 `json:"counters"`
}

// Rows flattens outcomes (skipping failed jobs, which have no result).
func Rows(outcomes []Outcome) []Row {
	rows := make([]Row, 0, len(outcomes))
	for _, o := range outcomes {
		r := o.Result
		if r == nil {
			continue
		}
		rows = append(rows, Row{
			Config:     r.Config,
			ConfigHash: o.Job.Config.Hash(),
			Axes:       o.Job.Axes,
			Bench:      r.Bench,
			Suite:      r.Suite.String(),
			Seed:       o.Job.Seed,
			Committed:  r.Committed,
			Cycles:     r.Cycles,
			IPC:        r.IPC,
			LLIdleFrac: r.LLIdleFrac,
			AvgEpochs:  r.AvgEpochs,
			CacheHit:   o.CacheHit,
			Counters:   r.Counters.Snapshot(),
		})
	}
	return rows
}

// Artifact is the JSON document a sweep emits: run summary plus all rows.
type Artifact struct {
	// Stats summarises the run (job counts, cache hits).
	Stats Stats `json:"stats"`
	// Rows holds one entry per successful job in submission order.
	Rows []Row `json:"rows"`
}

// WriteJSON writes the outcomes as an indented JSON Artifact.
func WriteJSON(w io.Writer, outcomes []Outcome, stats Stats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Artifact{Stats: stats, Rows: Rows(outcomes)})
}

// WriteCSV writes the outcomes as CSV. Fixed columns come first, then one
// "axis:<field>" column per axis label appearing in any row, then one
// column per counter name appearing in any row — both unions sorted, so the
// header is deterministic for a given result set.
func WriteCSV(w io.Writer, outcomes []Outcome) error {
	rows := Rows(outcomes)
	axisKeys := map[string]string{}
	counterKeys := map[string]string{}
	for _, r := range rows {
		for k := range r.Axes {
			axisKeys[k] = ""
		}
		for k := range r.Counters {
			counterKeys[k] = ""
		}
	}
	axes := sortedKeys(axisKeys)
	counters := sortedKeys(counterKeys)

	header := []string{"config", "config_hash", "bench", "suite", "seed",
		"committed", "cycles", "ipc", "ll_idle_frac", "avg_epochs", "cache_hit"}
	for _, k := range axes {
		header = append(header, "axis:"+k)
	}
	for _, k := range counters {
		header = append(header, k)
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Config,
			r.ConfigHash,
			r.Bench,
			r.Suite,
			strconv.FormatUint(r.Seed, 10),
			strconv.FormatUint(r.Committed, 10),
			strconv.FormatInt(r.Cycles, 10),
			strconv.FormatFloat(r.IPC, 'f', 6, 64),
			strconv.FormatFloat(r.LLIdleFrac, 'f', 6, 64),
			strconv.FormatFloat(r.AvgEpochs, 'f', 4, 64),
			strconv.FormatBool(r.CacheHit),
		}
		for _, k := range axes {
			rec = append(rec, r.Axes[k])
		}
		for _, k := range counters {
			rec = append(rec, strconv.FormatUint(r.Counters[k], 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatProgress renders one progress event as the standard log line used
// by cmd/elsqsweep and tests.
func FormatProgress(p Progress) string {
	status := "ok"
	switch {
	case p.Err != nil:
		status = "error: " + p.Err.Error()
	case p.Outcome.CacheHit:
		status = "cache hit"
	}
	return fmt.Sprintf("[%d/%d] %s/%s seed=%d (%s)",
		p.Done, p.Total, p.Outcome.Job.Config.Name(), p.Outcome.Job.Bench.Name,
		p.Outcome.Job.Seed, status)
}
