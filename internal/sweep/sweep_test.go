package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// tinyConfig returns a configuration cheap enough for unit tests.
func tinyConfig() config.Config {
	c := config.Default()
	c.MaxInsts = 2_000
	c.WarmupInsts = 10_000
	return c
}

func bench(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGridExpandCartesian(t *testing.T) {
	g := Grid{
		Base: tinyConfig(),
		Axes: []Axis{
			{Field: "l1.size", Values: []string{"16K", "32K", "64K"}},
			{Field: "ert", Values: []string{"line", "hash"}},
		},
		Benches: []workload.Profile{bench(t, "gzip"), bench(t, "swim")},
		Seeds:   []uint64{1, 2},
	}
	if g.Size() != 3*2*2*2 {
		t.Fatalf("Size() = %d, want 24", g.Size())
	}
	jobs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != g.Size() {
		t.Fatalf("Expand() produced %d jobs, want %d", len(jobs), g.Size())
	}
	// First axis slowest: the first 8 jobs all have l1.size=16K, cycling
	// ert fastest, then bench, then seed innermost.
	first := jobs[0]
	if first.Config.L1.SizeBytes != 16<<10 || first.Config.ERT != config.ERTLine ||
		first.Bench.Name != "gzip" || first.Seed != 1 {
		t.Errorf("unexpected first job: %+v", first)
	}
	if jobs[1].Seed != 2 || jobs[2].Bench.Name != "swim" {
		t.Error("seed/bench dimensions not innermost")
	}
	if jobs[4].Config.ERT != config.ERTHash {
		t.Error("last config axis not fastest")
	}
	if jobs[8].Config.L1.SizeBytes != 32<<10 {
		t.Error("first config axis not slowest")
	}
	if jobs[0].Axes["l1.size"] != "16K" || jobs[0].Axes["ert"] != "line" {
		t.Errorf("axis labels missing: %v", jobs[0].Axes)
	}
	// Distinct points must have distinct keys; identical dimensions only
	// differ by bench/seed.
	keys := map[string]bool{}
	for _, j := range jobs {
		keys[j.Key()] = true
	}
	if len(keys) != len(jobs) {
		t.Errorf("expected %d distinct keys, got %d", len(jobs), len(keys))
	}
}

func TestGridExpandEdgeCases(t *testing.T) {
	base := tinyConfig()
	gz := []workload.Profile{{Name: "gzip", Suite: workload.SuiteInt}}

	// No axes: one point per (bench, seed); seeds default to {1}.
	jobs, err := (Grid{Base: base, Benches: gz}).Expand()
	if err != nil || len(jobs) != 1 || jobs[0].Seed != 1 {
		t.Errorf("axis-free grid: %d jobs, err %v", len(jobs), err)
	}

	// An axis with no values is an error, not a silent empty grid.
	_, err = (Grid{Base: base, Axes: []Axis{{Field: "l1.size"}}, Benches: gz}).Expand()
	if err == nil || !strings.Contains(err.Error(), "no values") {
		t.Errorf("empty axis: err = %v", err)
	}

	// No benchmarks is an error.
	if _, err := (Grid{Base: base}).Expand(); err == nil {
		t.Error("benchless grid accepted")
	}

	// Unknown fields and invalid points are caught at expansion.
	_, err = (Grid{Base: base, Axes: []Axis{{Field: "bogus", Values: []string{"1"}}}, Benches: gz}).Expand()
	if err == nil {
		t.Error("unknown axis field accepted")
	}
	_, err = (Grid{Base: base, Axes: []Axis{{Field: "l1.size", Values: []string{"48K"}}}, Benches: gz}).Expand()
	if err == nil || !strings.Contains(err.Error(), "l1.size=48K") {
		t.Errorf("invalid point: err = %v", err)
	}
}

func TestParseAxis(t *testing.T) {
	a, err := ParseAxis("l1.size=16K, 32K,64K")
	if err != nil {
		t.Fatal(err)
	}
	if a.Field != "l1.size" || !reflect.DeepEqual(a.Values, []string{"16K", "32K", "64K"}) {
		t.Errorf("ParseAxis: %+v", a)
	}
	for _, bad := range []string{"l1.size", "=1,2", "l1.size=", "bogus=1"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := ParseSeeds("1..5")
	if err != nil || !reflect.DeepEqual(got, []uint64{1, 2, 3, 4, 5}) {
		t.Errorf("ParseSeeds(1..5) = %v, %v", got, err)
	}
	got, err = ParseSeeds("7, 2,7")
	if err != nil || !reflect.DeepEqual(got, []uint64{7, 2, 7}) {
		t.Errorf("ParseSeeds(7,2,7) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "5..1", "a..b", "1,x"} {
		if _, err := ParseSeeds(bad); err == nil {
			t.Errorf("ParseSeeds(%q) accepted", bad)
		}
	}
}

func TestRunnerCacheHitMiss(t *testing.T) {
	jobs := []Job{
		{Config: tinyConfig(), Bench: bench(t, "gzip"), Seed: 1},
		{Config: tinyConfig(), Bench: bench(t, "gzip"), Seed: 2},
		{Config: tinyConfig(), Bench: bench(t, "gzip"), Seed: 1}, // duplicate
	}
	cache := NewMemCache()
	r := Runner{Workers: 2, Cache: cache}

	outcomes, stats, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != 3 || stats.Unique != 2 || stats.Ran != 2 || stats.CacheHits != 0 {
		t.Errorf("first run stats: %+v", stats)
	}
	if outcomes[0].Result == nil || outcomes[2].Result == nil {
		t.Fatal("missing results")
	}
	if outcomes[0].Result != outcomes[2].Result {
		t.Error("duplicate jobs not deduplicated")
	}
	// Deduplication shares execution state, not the submitted Job: two
	// spellings of the same point keep their own axis labels.
	labelled := jobs
	labelled[0].Axes = map[string]string{"l1.size": "32K"}
	labelled[2].Axes = map[string]string{"l1.size": "32768"}
	lout, _, err := r.Run(labelled)
	if err != nil {
		t.Fatal(err)
	}
	if lout[0].Job.Axes["l1.size"] != "32K" || lout[2].Job.Axes["l1.size"] != "32768" {
		t.Errorf("dedup lost per-submission axis labels: %v vs %v",
			lout[0].Job.Axes, lout[2].Job.Axes)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", cache.Len())
	}

	// Second run: everything served from cache.
	outcomes2, stats2, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits != 2 || stats2.Ran != 0 {
		t.Errorf("second run stats: %+v", stats2)
	}
	if !outcomes2[0].CacheHit || outcomes2[0].Result != outcomes[0].Result {
		t.Error("cache hit did not reuse the stored result")
	}

	// A different instruction budget must miss: the budget is part of the
	// cache identity.
	bigger := tinyConfig()
	bigger.MaxInsts = 3_000
	_, stats3, err := r.Run([]Job{{Config: bigger, Bench: bench(t, "gzip"), Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.CacheHits != 0 || stats3.Ran != 1 {
		t.Errorf("budget change should miss the cache: %+v", stats3)
	}
}

func TestRunnerDeterminismAcrossWorkers(t *testing.T) {
	g := Grid{
		Base:    tinyConfig(),
		Axes:    []Axis{{Field: "ert", Values: []string{"line", "hash"}}},
		Benches: []workload.Profile{bench(t, "gzip"), bench(t, "swim"), bench(t, "mcf")},
		Seeds:   []uint64{1, 2},
	}
	jobs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []Row {
		r := Runner{Workers: workers}
		outcomes, _, err := r.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return Rows(outcomes)
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("Workers=1 and Workers=8 produced different results")
	}
}

func TestRunnerProgressAndErrors(t *testing.T) {
	bad := tinyConfig()
	bad.FetchWidth = 0 // cpu.New must reject this
	jobs := []Job{
		{Config: tinyConfig(), Bench: bench(t, "gzip"), Seed: 1},
		{Config: bad, Bench: bench(t, "gzip"), Seed: 1},
	}
	var events []Progress
	r := Runner{Workers: 1, OnProgress: func(p Progress) { events = append(events, p) }}
	outcomes, _, err := r.Run(jobs)
	if err == nil || !strings.Contains(err.Error(), "gzip") {
		t.Errorf("invalid config error not propagated: %v", err)
	}
	if outcomes[0].Result == nil {
		t.Error("healthy job missing its result despite sibling failure")
	}
	if outcomes[1].Result != nil {
		t.Error("failed job has a result")
	}
	if len(events) != 2 || events[1].Done != 2 || events[1].Total != 2 {
		t.Errorf("progress events: %+v", events)
	}
}

func TestDiskCache(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Config: tinyConfig(), Bench: bench(t, "gzip"), Seed: 1}
	r := Runner{Workers: 1, Cache: cache}
	outcomes, stats, err := r.Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 1 || stats.CacheHits != 0 {
		t.Errorf("first run stats: %+v", stats)
	}

	// A fresh cache instance over the same directory must hit, and the
	// round-tripped result must match what was simulated.
	cache2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	outcomes2, stats2, err := (&Runner{Workers: 1, Cache: cache2}).Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits != 1 || stats2.Ran != 0 {
		t.Errorf("second run stats: %+v", stats2)
	}
	got, want := outcomes2[0].Result, outcomes[0].Result
	if got.IPC != want.IPC || got.Cycles != want.Cycles || got.Committed != want.Committed {
		t.Errorf("disk round trip changed results: got %+v want %+v", got, want)
	}
	if got.Counters.Get("cache") != want.Counters.Get("cache") {
		t.Error("disk round trip lost counters")
	}
	if got.Suite != want.Suite || got.LoadDist.Total != want.LoadDist.Total {
		t.Error("disk round trip lost suite or histograms")
	}

	// Corrupt entries are misses, not failures.
	if err := os.WriteFile(filepath.Join(dir, job.Key()+".json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache2.Get(job.Key()); ok {
		t.Error("corrupt cache entry served")
	}
	// Entries that parse but cannot be real results (stale schema, foreign
	// JSON in the cache dir) are also misses.
	if err := os.WriteFile(filepath.Join(dir, job.Key()+".json"), []byte(`{"Bench":"gzip"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache2.Get(job.Key()); ok {
		t.Error("implausible cache entry served")
	}
}

func TestArtifacts(t *testing.T) {
	g := Grid{
		Base:    tinyConfig(),
		Axes:    []Axis{{Field: "sqm", Values: []string{"true", "false"}}},
		Benches: []workload.Profile{bench(t, "gzip")},
		Seeds:   []uint64{1},
	}
	jobs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	outcomes, stats, err := (&Runner{Workers: 2}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, outcomes, stats); err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(jsonBuf.Bytes(), &art); err != nil {
		t.Fatalf("JSON artifact does not parse: %v", err)
	}
	if len(art.Rows) != 2 || art.Stats.Total != 2 {
		t.Errorf("artifact shape: %d rows, stats %+v", len(art.Rows), art.Stats)
	}
	if art.Rows[0].IPC <= 0 || art.Rows[0].Axes["sqm"] != "true" || art.Rows[0].ConfigHash == "" {
		t.Errorf("bad first row: %+v", art.Rows[0])
	}
	if art.Rows[0].Counters["cache"] == 0 {
		t.Error("counters missing from JSON row")
	}

	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, outcomes); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatalf("CSV artifact does not parse: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("CSV has %d records, want header + 2 rows", len(recs))
	}
	header := strings.Join(recs[0], ",")
	for _, col := range []string{"config", "ipc", "axis:sqm", "cache"} {
		if !strings.Contains(header, col) {
			t.Errorf("CSV header missing %q: %s", col, header)
		}
	}
}
