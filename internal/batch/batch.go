// Package batch is the lane-parallel execution engine: it advances K
// simulations ("lanes") in lockstep over cpu.NewBatch's shared
// structure-of-arrays state, interleaving bounded chunks of each lane's
// measured phase so the host walks K adjacent copies of the hot arrays
// instead of re-faulting one large working set per sequential run.
//
// Determinism contract: every lane's Result is bit-identical to the Result
// a scalar cpu.Sim.Run would produce for the same (config, source, warm
// state) — the lanes share host memory placement, never simulated state.
// The contract is enforced end to end by the simrun batch identity tests
// and the bench-smoke CI digest gate.
//
// Callers normally reach this package through internal/simrun, which groups
// arbitrary points by warm-up compatibility and falls back to scalar
// execution for singleton groups.
package batch

import (
	"context"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/workload"
)

// laneChunk is how many committed instructions each lane advances per
// round-robin turn. Large enough that per-turn dispatch overhead vanishes,
// small enough that K lanes' round stays responsive to cancellation and no
// lane's architectural working set goes cold between turns.
const laneChunk = 8192

// Spec is one lane of a batch: a validated-configuration/workload pair plus
// the optional warm-start image and committed-stream observer that
// internal/simrun resolves per point.
type Spec struct {
	// Config is the lane's full processor configuration.
	Config config.Config
	// Source feeds the lane's instruction stream. Each lane needs its own
	// source instance; sources are stateful and must not be shared.
	Source workload.Source
	// Warm, when non-nil, is a checkpoint hierarchy image standing in for
	// the functional warm-up (cpu.Sim.RestoreWarmState); the Source must
	// already be positioned past the warm-up.
	Warm *mem.HierarchyState
	// Observer, when non-nil, receives the lane's committed memory-op
	// stream (e.g. a differential oracle checker).
	Observer cpu.CommitObserver
}

// Run builds one simulator per spec with shared slab state and drives all
// lanes to completion in lockstep. Results are indexed like specs. A nil
// ctx disables cancellation; on cancellation Run returns ctx's error and no
// results.
func Run(ctx context.Context, specs []Spec) ([]*cpu.Result, error) {
	cfgs := make([]config.Config, len(specs))
	gens := make([]workload.Source, len(specs))
	for i := range specs {
		cfgs[i] = specs[i].Config
		gens[i] = specs[i].Source
	}
	sims, err := cpu.NewBatch(cfgs, gens)
	if err != nil {
		return nil, err
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	lanes := make([]*cpu.Lane, len(sims))
	for i, s := range sims {
		if specs[i].Warm != nil {
			if err := s.RestoreWarmState(specs[i].Warm); err != nil {
				return nil, err
			}
		}
		if specs[i].Observer != nil {
			s.SetCommitObserver(specs[i].Observer)
		}
		lanes[i] = s.NewLane()
	}
	// Warm-up runs per lane, not interleaved: it is functional (no timing
	// state) and with checkpointed warm images it is a no-op anyway.
	for _, l := range lanes {
		if !l.Warm(done) {
			return nil, ctxErr(ctx)
		}
	}
	results := make([]*cpu.Result, len(lanes))
	live := make([]int, 0, len(lanes))
	for i := range lanes {
		live = append(live, i)
	}
	// Lockstep rounds: each live lane advances laneChunk committed
	// instructions per round; a lane whose budget completes retires
	// immediately (its Result is finalized and it leaves the rotation), so
	// unequal budgets degrade gracefully to fewer live lanes.
	for len(live) > 0 {
		next := live[:0]
		for _, i := range live {
			more, ok := lanes[i].Step(laneChunk, done)
			if !ok {
				return nil, ctxErr(ctx)
			}
			if more {
				next = append(next, i)
			} else {
				results[i] = lanes[i].Finish()
			}
		}
		live = next
	}
	return results, nil
}

// ctxErr returns the cancellation error behind a Lane abort.
func ctxErr(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return context.Canceled
}
