package filter

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestHashIndexRange(t *testing.T) {
	f := func(addr uint64, nb uint8) bool {
		n := int(nb)%16 + 1
		i := HashIndex(addr, n)
		return i >= 0 && i < 1<<uint(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Overlapping naturally-aligned accesses must share a hash index — the
// no-false-negative guarantee every disambiguation filter relies on.
func TestHashIndexNoFalseNegatives(t *testing.T) {
	f := func(block uint64, o1, o2, s1, s2 uint8) bool {
		block %= 1 << 30
		// naturally aligned 4- or 8-byte accesses
		size1 := uint8(4)
		if s1%2 == 0 {
			size1 = 8
		}
		size2 := uint8(4)
		if s2%2 == 0 {
			size2 = 8
		}
		a1 := block<<3 + uint64(o1%2)*4
		if size1 == 8 {
			a1 = block << 3
		}
		a2 := block<<3 + uint64(o2%2)*4
		if size2 == 8 {
			a2 = block << 3
		}
		if !isa.Overlaps(a1, size1, a2, size2) {
			return true
		}
		return HashIndex(a1, 10) == HashIndex(a2, 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochBitTableSetLookupClear(t *testing.T) {
	tb := NewEpochBitTable(64, 16)
	tb.SetStore(5, 3)
	tb.SetStore(5, 7)
	tb.SetLoad(5, 2)
	if m := tb.StoreMask(5); m != MaskOf(3, 7) {
		t.Errorf("StoreMask = %b", m)
	}
	if m := tb.LoadMask(5); m != MaskOf(2) {
		t.Errorf("LoadMask = %b", m)
	}
	if m := tb.StoreMask(6); !m.Empty() {
		t.Errorf("untouched index mask = %b", m)
	}
	tb.ClearEpoch(3)
	if m := tb.StoreMask(5); m != MaskOf(7) {
		t.Errorf("after clear StoreMask = %b", m)
	}
	tb.ClearEpoch(7)
	tb.ClearEpoch(2)
	if !tb.StoreMask(5).Empty() || !tb.LoadMask(5).Empty() {
		t.Error("clear did not empty the entry")
	}
}

func TestEpochBitTableIdempotentSet(t *testing.T) {
	tb := NewEpochBitTable(8, 4)
	for i := 0; i < 100; i++ {
		tb.SetStore(1, 2)
	}
	tb.ClearEpoch(2)
	if !tb.StoreMask(1).Empty() {
		t.Error("repeated sets broke clearing")
	}
	// touched list must not grow unboundedly
	if len(tb.touchedSt[2]) != 0 {
		t.Error("touched list not reset")
	}
}

func TestEpochBitTableClearIsolation(t *testing.T) {
	tb := NewEpochBitTable(16, 8)
	tb.SetLoad(3, 1)
	tb.SetLoad(4, 2)
	tb.ClearEpoch(1)
	if tb.LoadMask(4) != MaskOf(2) {
		t.Error("clearing epoch 1 damaged epoch 2 state")
	}
}

func TestEpochsOf(t *testing.T) {
	got := EpochsOf(MaskOf(1, 4, 6))
	want := []int{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("EpochsOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EpochsOf = %v, want %v", got, want)
		}
	}
	if len(EpochsOf(EpochMask{})) != 0 {
		t.Error("EpochsOf(0) not empty")
	}
}

func TestEpochBitTableGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewEpochBitTable(0, 16) },
		func() { NewEpochBitTable(16, 0) },
		func() { NewEpochBitTable(16, MaxEpochs+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestBloomBasics(t *testing.T) {
	b := NewBloom(10)
	if b.Test(0x1234) {
		t.Error("empty bloom tested positive")
	}
	b.Set(0x1234)
	if !b.Test(0x1234) {
		t.Error("set address tested negative")
	}
	b.Reset()
	if b.Test(0x1234) {
		t.Error("reset did not clear")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(addrs []uint64) bool {
		b := NewBloom(8)
		for _, a := range addrs {
			b.Set(a)
		}
		for _, a := range addrs {
			if !b.Test(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSSBF(t *testing.T) {
	s := NewSSBF(10)
	if _, _, ok := s.LastStore(0x40); ok {
		t.Error("empty SSBF returned a store")
	}
	s.CommitStore(0x40, 0, 7) // seq 0 must be distinguishable from empty
	seq, commit, ok := s.LastStore(0x40)
	if !ok || seq != 0 || commit != 7 {
		t.Errorf("LastStore = %d@%d/%v, want 0@7/true", seq, commit, ok)
	}
	s.CommitStore(0x40, 99, 123)
	seq, commit, _ = s.LastStore(0x40)
	if seq != 99 || commit != 123 {
		t.Errorf("LastStore = %d@%d, want 99@123", seq, commit)
	}
	if s.Writes != 2 || s.Reads != 3 {
		t.Errorf("counters = %d/%d", s.Writes, s.Reads)
	}
	if s.Entries() != 1024 {
		t.Errorf("Entries = %d", s.Entries())
	}
}

func TestSSBFAliasing(t *testing.T) {
	// Two addresses 2^(bits+3) apart alias in the SSBF — that is the source
	// of false re-executions the paper sweeps with 8/10/12 bits.
	s := NewSSBF(8)
	a := uint64(0x100)
	b := a + (1 << (8 + 3))
	if HashIndex(a, 8) != HashIndex(b, 8) {
		t.Fatal("test addresses do not alias")
	}
	s.CommitStore(a, 7, 11)
	seq, commit, ok := s.LastStore(b)
	if !ok || seq != 7 || commit != 11 {
		t.Error("aliased read did not observe the store")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBloom(0) },
		func() { NewBloom(31) },
		func() { NewSSBF(0) },
		func() { NewSSBF(25) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bits accepted")
				}
			}()
			f()
		}()
	}
}

// TestIndexable pins the invariant HashIndex's no-false-negative guarantee
// rests on.
func TestIndexable(t *testing.T) {
	cases := []struct {
		addr uint64
		size uint8
		ok   bool
	}{
		{0x1000, 8, true},
		{0x1004, 4, true},
		{0x1006, 2, true},
		{0x1007, 1, true},
		{0x1004, 8, false},  // 8-byte access crossing an 8-byte boundary
		{0x1002, 4, false},  // misaligned 4-byte
		{0x1000, 16, false}, // wider than a granule
		{0x1000, 3, false},  // non-power-of-two
		{0x1000, 0, false},  // degenerate
	}
	for _, c := range cases {
		if got := Indexable(c.addr, c.size); got != c.ok {
			t.Errorf("Indexable(%#x, %d) = %v, want %v", c.addr, c.size, got, c.ok)
		}
	}
}

// TestOverlappingAccessesCollide proves the soundness property: any two
// Indexable accesses whose byte ranges overlap map to the same HashIndex,
// for every index width, over an exhaustive sweep of granule-local offsets
// and a randomised sweep of bases.
func TestOverlappingAccessesCollide(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	overlap := func(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
		return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
	}
	bases := []uint64{0, 0x1000, 0xFFF8, 1 << 20, (1 << 40) - 8}
	for _, nbits := range []int{4, 10, 24} {
		for _, base := range bases {
			for _, s1 := range sizes {
				for o1 := uint64(0); o1 < 16; o1 += uint64(s1) {
					for _, s2 := range sizes {
						for o2 := uint64(0); o2 < 16; o2 += uint64(s2) {
							a1, a2 := base+o1, base+o2
							if !Indexable(a1, s1) || !Indexable(a2, s2) || !overlap(a1, s1, a2, s2) {
								continue
							}
							if HashIndex(a1, nbits) != HashIndex(a2, nbits) {
								t.Fatalf("overlapping accesses (%#x,%d) and (%#x,%d) map to indices %d and %d (nbits %d)",
									a1, s1, a2, s2, HashIndex(a1, nbits), HashIndex(a2, nbits), nbits)
							}
						}
					}
				}
			}
		}
	}
}

// TestAssertIndexable checks the debug gate: off by default, panics on a
// crossing access when enabled.
func TestAssertIndexable(t *testing.T) {
	AssertIndexable(0x1004, 8, "test") // Debug off: must not panic
	Debug = true
	defer func() {
		Debug = false
		if recover() == nil {
			t.Error("AssertIndexable let an 8-byte-crossing access through with Debug on")
		}
	}()
	AssertIndexable(0x1004, 8, "test")
}

// TestAssertCommittedPath checks the wrong-path boundary gate: off by
// default, panics when a wrong-path sequence number reaches a
// committed-state structure with Debug on.
func TestAssertCommittedPath(t *testing.T) {
	AssertCommittedPath(isa.WrongPathSeqBit|5, "test") // Debug off: must not panic
	Debug = true
	defer func() {
		Debug = false
		if recover() == nil {
			t.Error("AssertCommittedPath let a wrong-path op through with Debug on")
		}
	}()
	AssertCommittedPath(isa.WrongPathSeqBit|5, "test")
}

// TestSSBFRejectsWrongPathStores pins the commit boundary: a squashed
// wrong-path store must never update the SSBF.
func TestSSBFRejectsWrongPathStores(t *testing.T) {
	Debug = true
	defer func() {
		Debug = false
		if recover() == nil {
			t.Error("SSBF.CommitStore accepted a wrong-path store with Debug on")
		}
	}()
	NewSSBF(8).CommitStore(0x100, isa.WrongPathSeqBit|5, 10)
}

// A squashed epoch's two EpochBitTable columns must be fully cleared: no
// stale bit in any entry and no touchedLd/touchedSt residue — a leftover
// touched entry would make a later ClearEpoch of the recycled bank clear a
// younger epoch's bit, and a leftover bit would fake a store match.
func TestClearEpochNoResidue(t *testing.T) {
	tb := NewEpochBitTable(64, 8)
	for idx := 0; idx < 64; idx += 3 {
		tb.SetLoad(idx, 2)
		tb.SetStore(idx, 2)
		tb.SetLoad(idx, 5)
		tb.SetStore(idx, 5)
		// Duplicate sets must not duplicate touched entries either.
		tb.SetStore(idx, 2)
	}
	tb.ClearEpoch(2)
	for idx := 0; idx < 64; idx++ {
		if tb.LoadMask(idx).Has(2) || tb.StoreMask(idx).Has(2) {
			t.Fatalf("entry %d keeps epoch-2 bits after ClearEpoch", idx)
		}
	}
	if len(tb.touchedLd[2]) != 0 || len(tb.touchedSt[2]) != 0 {
		t.Fatalf("touched residue after ClearEpoch: %d loads / %d stores",
			len(tb.touchedLd[2]), len(tb.touchedSt[2]))
	}
	// The other epoch's columns survive untouched.
	for idx := 0; idx < 64; idx += 3 {
		if !tb.LoadMask(idx).Has(5) || !tb.StoreMask(idx).Has(5) {
			t.Fatalf("ClearEpoch(2) disturbed epoch 5 at entry %d", idx)
		}
	}
	// Re-population after the clear starts from a clean touched list: a
	// second clear must still remove everything.
	tb.SetStore(7, 2)
	tb.ClearEpoch(2)
	if tb.StoreMask(7).Has(2) || len(tb.touchedSt[2]) != 0 {
		t.Fatal("stale state after set-clear-set-clear cycle")
	}
}
