// Package filter implements the search filters of the paper: the Epoch
// Resolution Table (ERT) in both its hash-indexed and cache-line-indexed
// forms (Section 3.4), a plain Bloom bitset, and the Store Sequence Bloom
// Filter (SSBF) used by the Store Vulnerability Window re-execution baseline
// (Section 5.6).
package filter

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// HashIndex maps an effective address to an n-bit ERT/SSBF index using the
// low address bits above 8-byte granularity, matching the paper's "set of
// the lower bits from the address". With naturally aligned accesses of at
// most 8 bytes (see Indexable), any two overlapping accesses map to the
// same index, so the filter never produces false negatives.
func HashIndex(addr uint64, nbits int) int {
	return int((addr >> 3) & ((1 << uint(nbits)) - 1))
}

// Indexable reports whether an access may rely on HashIndex's no-false-
// negative guarantee: a power-of-two size of at most 8 bytes, naturally
// aligned. Such an access lies within a single 8-byte granule, so any two
// overlapping accesses share a granule and therefore an index. An access
// violating this (e.g. one crossing an 8-byte boundary) could overlap an
// op indexed under a different granule and silently evade the ERT/SSBF —
// a disambiguation soundness hole, not just a precision loss.
func Indexable(addr uint64, size uint8) bool {
	return size > 0 && size <= 8 && size&(size-1) == 0 && addr&uint64(size-1) == 0
}

// Debug enables the alignment assertions at the points where memory ops
// enter the filters (workload emission, ERT insertion, SVW commit checks).
// The package tests switch it on; production hot paths pay one predictable
// branch.
var Debug = false

// AssertIndexable panics if Debug is set and the access violates the
// Indexable invariant.
func AssertIndexable(addr uint64, size uint8, site string) {
	if Debug && !Indexable(addr, size) {
		panic(fmt.Sprintf("filter: %s: access addr %#x size %d violates the aligned-pow2-<=8B invariant HashIndex soundness relies on", site, addr, size))
	}
}

// AssertCommittedPath panics if Debug is set and seq belongs to the
// wrong-path sequence space (isa.WrongPathSeqBit). Squashed wrong-path ops
// may search the queues and pollute the caches, but they must never update
// committed-state structures: the SSBF, the ERT, or the oracle's
// architectural memory image.
func AssertCommittedPath(seq uint64, site string) {
	if Debug && isa.IsWrongPathSeq(seq) {
		panic(fmt.Sprintf("filter: %s: wrong-path op (seq %#x) reached a committed-state structure", site, seq))
	}
}

// MaxEpochs is the widest epoch column set an EpochBitTable supports — the
// width of EpochMask. Engine-count scaling studies run the FMC up to this
// many memory engines.
const MaxEpochs = 128

// EpochMask is a bit-vector over physical epoch banks, one bit per bank up
// to MaxEpochs. The zero value is the empty mask; masks compare with ==.
type EpochMask struct {
	// Lo holds banks 0..63, Hi banks 64..127.
	Lo, Hi uint64
}

// Empty reports whether no epoch bit is set.
func (m EpochMask) Empty() bool { return m.Lo|m.Hi == 0 }

// Has reports whether epoch e's bit is set.
func (m EpochMask) Has(e int) bool {
	if e < 64 {
		return m.Lo&(1<<uint(e)) != 0
	}
	return m.Hi&(1<<uint(e-64)) != 0
}

func (m *EpochMask) set(e int) {
	if e < 64 {
		m.Lo |= 1 << uint(e)
	} else {
		m.Hi |= 1 << uint(e-64)
	}
}

func (m *EpochMask) clear(e int) {
	if e < 64 {
		m.Lo &^= 1 << uint(e)
	} else {
		m.Hi &^= 1 << uint(e-64)
	}
}

// MaskOf builds the mask with exactly the given epoch bits set.
func MaskOf(epochs ...int) EpochMask {
	var m EpochMask
	for _, e := range epochs {
		m.set(e)
	}
	return m
}

// EpochBitTable is the ERT core: for every index it keeps one bit per epoch
// for loads and one per epoch for stores. Both ERT variants share it — the
// hash ERT indexes it by HashIndex, the line ERT by the L1 line slot.
//
// Clearing an epoch's two columns on epoch commit/squash is the paper's
// cheap bulk-release mechanism (contrast with the HSQ's per-store counter
// decrements); it is O(entries touched by the epoch) here.
type EpochBitTable struct {
	loads, stores []EpochMask
	touchedLd     [][]int32
	touchedSt     [][]int32
	numEpochs     int
}

// NewEpochBitTable returns a table with the given entry count and epoch
// count (<= MaxEpochs).
func NewEpochBitTable(entries, numEpochs int) *EpochBitTable {
	if entries <= 0 || numEpochs <= 0 || numEpochs > MaxEpochs {
		panic("filter: invalid ERT geometry")
	}
	t := &EpochBitTable{
		loads:     make([]EpochMask, entries),
		stores:    make([]EpochMask, entries),
		touchedLd: make([][]int32, numEpochs),
		touchedSt: make([][]int32, numEpochs),
		numEpochs: numEpochs,
	}
	return t
}

// Entries returns the number of table entries.
func (t *EpochBitTable) Entries() int { return len(t.loads) }

// NumEpochs returns the epoch-column count.
func (t *EpochBitTable) NumEpochs() int { return t.numEpochs }

// SetLoad marks a low-locality load with the given index in epoch e.
func (t *EpochBitTable) SetLoad(idx, e int) {
	if !t.loads[idx].Has(e) {
		t.loads[idx].set(e)
		t.touchedLd[e] = append(t.touchedLd[e], int32(idx))
	}
}

// SetStore marks a low-locality store with the given index in epoch e.
func (t *EpochBitTable) SetStore(idx, e int) {
	if !t.stores[idx].Has(e) {
		t.stores[idx].set(e)
		t.touchedSt[e] = append(t.touchedSt[e], int32(idx))
	}
}

// LoadMask returns the epoch bit-vector of loads possibly matching idx.
func (t *EpochBitTable) LoadMask(idx int) EpochMask { return t.loads[idx] }

// StoreMask returns the epoch bit-vector of stores possibly matching idx.
func (t *EpochBitTable) StoreMask(idx int) EpochMask { return t.stores[idx] }

// ClearEpoch releases epoch e's two columns (on epoch commit or squash).
func (t *EpochBitTable) ClearEpoch(e int) {
	for _, idx := range t.touchedLd[e] {
		t.loads[idx].clear(e)
	}
	t.touchedLd[e] = t.touchedLd[e][:0]
	for _, idx := range t.touchedSt[e] {
		t.stores[idx].clear(e)
	}
	t.touchedSt[e] = t.touchedSt[e][:0]
}

// EpochsOf lists the epochs set in mask, youngest-first given the caller
// passes the recency order; here it simply extracts set bits ascending.
func EpochsOf(mask EpochMask) []int {
	out := make([]int, 0, bits.OnesCount64(mask.Lo)+bits.OnesCount64(mask.Hi))
	for m := mask.Lo; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros64(m))
	}
	for m := mask.Hi; m != 0; m &= m - 1 {
		out = append(out, 64+bits.TrailingZeros64(m))
	}
	return out
}

// Bloom is a plain single-hash Bloom bitset (Bloom, CACM 1970), the
// primitive behind the hash-based ERT.
type Bloom struct {
	bitsN int
	words []uint64
}

// NewBloom returns a Bloom bitset indexed by nbits address bits.
func NewBloom(nbits int) *Bloom {
	if nbits < 1 || nbits > 30 {
		panic("filter: bloom bits out of range")
	}
	return &Bloom{bitsN: nbits, words: make([]uint64, ((1<<uint(nbits))+63)/64)}
}

// Set marks addr.
func (b *Bloom) Set(addr uint64) {
	i := HashIndex(addr, b.bitsN)
	b.words[i/64] |= 1 << uint(i%64)
}

// Test reports whether addr may have been set (no false negatives).
func (b *Bloom) Test(addr uint64) bool {
	i := HashIndex(addr, b.bitsN)
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// Reset clears the filter.
func (b *Bloom) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ssbfEntry is one SSBF slot: the youngest committed store that hashed here,
// as a (sequence number, commit cycle) pair written atomically by
// CommitStore. Keeping the commit cycle inside the entry — rather than in a
// parallel table keyed by a second hash computation — guarantees the
// issued-before-commit filter and the matched sequence number always
// describe the same store.
type ssbfEntry struct {
	seq    uint64 // store sequence number + 1 (0 = never written)
	commit int64  // that store's commit cycle
}

// SSBF is the Store Sequence Bloom Filter of SVW (Roth, ISCA 2005): a
// direct-mapped table of the youngest committed store per address hash, each
// entry pairing the store's sequence number with its commit cycle. A load
// whose vulnerability window overlaps the stored sequence number must
// re-execute.
type SSBF struct {
	bitsN   int
	entries []ssbfEntry
	// Writes and Reads count accesses for the Table 2 "SSBF" column.
	Writes, Reads uint64
}

// NewSSBF returns an SSBF with 2^nbits entries.
func NewSSBF(nbits int) *SSBF {
	if nbits < 1 || nbits > 24 {
		panic("filter: ssbf bits out of range")
	}
	return &SSBF{bitsN: nbits, entries: make([]ssbfEntry, 1<<uint(nbits))}
}

// CommitStore records that the store with sequence number seq to addr
// committed at cycle commit. Sequence numbers are offset by one internally
// so the zero value means "never written".
func (s *SSBF) CommitStore(addr uint64, seq uint64, commit int64) {
	AssertCommittedPath(seq, "ssbf commit-store")
	s.Writes++
	s.entries[HashIndex(addr, s.bitsN)] = ssbfEntry{seq: seq + 1, commit: commit}
}

// LastStore returns the sequence number and commit cycle of the youngest
// committed store that hashes with addr, and whether any exists.
func (s *SSBF) LastStore(addr uint64) (seq uint64, commit int64, ok bool) {
	s.Reads++
	e := s.entries[HashIndex(addr, s.bitsN)]
	if e.seq == 0 {
		return 0, 0, false
	}
	return e.seq - 1, e.commit, true
}

// Entries returns the table size.
func (s *SSBF) Entries() int { return len(s.entries) }
