package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/trace"
)

// TraceStore is the content-addressed .elt store behind the trace blob
// space: traces keyed by their trace.Meta().Digest. With a directory it
// persists (and indexes whatever *.elt files are already there, so
// elsqserve -tracedir serves an existing elsqtrace recording tree);
// without one it holds bytes in memory. Safe for concurrent use.
type TraceStore struct {
	dir string

	mu   sync.RWMutex
	path map[string]string // digest -> file path
	mem  map[string][]byte // digest -> raw bytes (dirless store)
}

// NewTraceStore opens a trace store. dir == "" keeps traces in memory;
// otherwise the directory is created if needed and every existing .elt
// file in it is indexed by content digest.
func NewTraceStore(dir string) (*TraceStore, error) {
	s := &TraceStore{dir: dir, path: make(map[string]string), mem: make(map[string][]byte)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: trace dir: %w", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: trace dir: %w", err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".elt") {
			continue
		}
		p := filepath.Join(dir, de.Name())
		t, err := trace.Open(p)
		if err != nil {
			continue // foreign or damaged file; not served
		}
		s.path[t.Meta().Digest] = p
	}
	return s, nil
}

// Len reports the number of indexed traces.
func (s *TraceStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.path) + len(s.mem)
}

// Get returns the raw .elt bytes for digest.
func (s *TraceStore) Get(digest string) ([]byte, bool) {
	s.mu.RLock()
	p, onDisk := s.path[digest]
	b, inMem := s.mem[digest]
	s.mu.RUnlock()
	if inMem {
		return b, true
	}
	if !onDisk {
		return nil, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	return b, true
}

// Put stores .elt bytes under digest after verifying that they decode to a
// well-formed trace whose content digest is exactly the claimed one — a
// corrupted or mislabelled upload is rejected, never stored.
func (s *TraceStore) Put(digest string, b []byte) error {
	t, err := trace.New(append([]byte(nil), b...))
	if err != nil {
		return fmt.Errorf("fleet: trace %s: %w", digest, err)
	}
	if err := t.Verify(); err != nil {
		return fmt.Errorf("fleet: trace %s: %w", digest, err)
	}
	if got := t.Meta().Digest; got != digest {
		return fmt.Errorf("fleet: trace upload claims digest %s but content digests to %s", digest, got)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		s.mem[digest] = append([]byte(nil), b...)
		return nil
	}
	if _, ok := s.path[digest]; ok {
		return nil // content-addressed: an existing entry is identical
	}
	p := filepath.Join(s.dir, digest+".elt")
	tmp, err := os.CreateTemp(s.dir, digest+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: trace store: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: trace store: write failed")
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: trace store: %w", err)
	}
	s.path[digest] = p
	return nil
}
