package fleet

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/sweep"
)

// TestFaultySweepByteIdentical is the headline fault-injection test: with
// dropped requests, dropped responses (whose retries become duplicated
// deliveries), injected delays and outright duplicated uploads on the
// workers' transport, the sweep still completes and its results are
// byte-identical to the local single-process run. The at-least-once
// machinery must be invisible in the output.
func TestFaultySweepByteIdentical(t *testing.T) {
	jobs := fleetJobs(t)
	_, localDigest := runLocal(t, jobs)

	co, srv := startFleet(t, Options{})
	ft := NewFaultTransport(nil)
	ft.Add(Fault{Match: MatchPath("/v1/complete"), Mode: DropResponse, Count: 2})
	ft.Add(Fault{Match: MatchPath("/v1/lease"), Mode: DropRequest, Count: 2})
	ft.Add(Fault{Match: MatchPath("/v1/complete"), Mode: Duplicate, Count: 1})
	ft.Add(Fault{Match: MatchPath("/v1/lease"), Mode: Delay, Count: 2, Delay: 20 * time.Millisecond})

	client := newTestClient(srv.URL, nil) // the submitter's transport is clean
	ctx := testCtx(t, 2*time.Minute)
	sub, err := client.Submit(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}

	startWorkers(t, srv.URL, 3, ft)
	st, err := client.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != len(jobs) || st.Failed != 0 {
		t.Fatalf("faulty sweep: done %d failed %d (errors %v)", st.Done, st.Failed, st.Errors)
	}

	out, _, err := client.Results(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.ResultsDigest(out); got != localDigest {
		t.Errorf("results digest under faults %s != local %s", got, localDigest)
	}

	// The harness must actually have fired, and the coordinator must have
	// absorbed the duplicated deliveries idempotently.
	inj := ft.Injected()
	for _, m := range []FaultMode{DropRequest, DropResponse, Duplicate, Delay} {
		if inj[m] == 0 {
			t.Errorf("fault mode %s never fired (injected: %v)", m, inj)
		}
	}
	cs := co.Stats()
	if cs.Duplicates < 3 {
		t.Errorf("coordinator absorbed %d duplicate uploads, want >= 3 (stats %+v)", cs.Duplicates, cs)
	}
	if cs.Conflicts != 0 {
		t.Errorf("faulty-but-honest sweep produced %d digest conflicts", cs.Conflicts)
	}
}

// TestWorkerDeathLeaseExpiryRedispatch kills workers mid-job: two leases
// are taken and never serviced (the workers "die"), the injected clock
// jumps past the lease TTL, and live workers steal the expired jobs. The
// sweep completes with the usual byte-identical results.
func TestWorkerDeathLeaseExpiryRedispatch(t *testing.T) {
	jobs := fleetJobs(t)[:4]
	_, localDigest := runLocal(t, jobs)

	clock := newFakeClock()
	co, srv := startFleet(t, Options{LeaseTTL: time.Minute, Now: clock.Now})
	client := newTestClient(srv.URL, nil)
	ctx := testCtx(t, 2*time.Minute)

	sub, err := client.Submit(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Two workers lease a job each and are never heard from again.
	for i := 0; i < 2; i++ {
		lr, ok := co.Lease("doomed")
		if !ok {
			t.Fatal("no job to lease")
		}
		if lr.Attempt != 1 {
			t.Fatalf("first dispatch carries attempt %d", lr.Attempt)
		}
	}
	clock.Advance(2 * time.Minute) // both leases are now expired

	startWorkers(t, srv.URL, 2, nil)
	st, err := client.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != len(jobs) || st.Failed != 0 {
		t.Fatalf("post-death sweep: done %d failed %d (errors %v)", st.Done, st.Failed, st.Errors)
	}
	if cs := co.Stats(); cs.Expired < 2 {
		t.Errorf("expired %d leases, want >= 2", cs.Expired)
	}

	out, _, err := client.Results(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.ResultsDigest(out); got != localDigest {
		t.Errorf("re-dispatched results digest %s != local %s", got, localDigest)
	}
}

// TestCorruptBlobFetchDetected corrupts one artifact fetch in flight: the
// client must detect the digest mismatch, refuse the bytes, and re-fetch —
// the corruption is never trusted and the final file verifies.
func TestCorruptBlobFetchDetected(t *testing.T) {
	cfg := config.Default().WithBudget(1_500, 3_000)
	_, raw, digest := recordTestTrace(t, &cfg, "gzip", 1)
	ts, err := NewTraceStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Put(digest, raw); err != nil {
		t.Fatal(err)
	}
	_, srv := startFleet(t, Options{Traces: ts})

	ft := NewFaultTransport(nil)
	ft.Add(Fault{Match: MatchPath("/v1/blob/trace/"), Mode: CorruptResponse, Count: 1})
	client := newTestClient(srv.URL, ft)
	ctx := testCtx(t, time.Minute)

	path, err := client.FetchTrace(ctx, digest, t.TempDir())
	if err != nil {
		t.Fatalf("fetch with one corrupted transfer failed outright: %v", err)
	}
	stats := client.Stats()
	if stats.DigestMismatches != 1 {
		t.Errorf("detected %d digest mismatches, want exactly 1", stats.DigestMismatches)
	}
	if stats.Retries < 1 {
		t.Errorf("client recorded %d retries, want >= 1 (the re-fetch)", stats.Retries)
	}
	if inj := ft.Injected(); inj[CorruptResponse] != 1 {
		t.Errorf("corruption fired %d times, want 1", inj[CorruptResponse])
	}
	// The file on disk is the genuine artifact.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, raw) {
		t.Error("fetched trace bytes differ from the stored artifact")
	}
}

// TestDuplicateUploadIdempotentConflictRejected pins the upload semantics
// directly on the coordinator: re-uploading an identical result is an
// idempotent duplicate; uploading a different result for the same done job
// is a conflict, and the first result is kept.
func TestDuplicateUploadIdempotentConflictRejected(t *testing.T) {
	jobs := fleetJobs(t)[:1]
	local, _ := runLocal(t, jobs)
	r := local[0].Result

	co := NewCoordinator(Options{})
	sub, err := co.Submit([]JobSpec{Spec(jobs[0])})
	if err != nil {
		t.Fatal(err)
	}
	lr, ok := co.Lease("w0")
	if !ok {
		t.Fatal("no lease")
	}

	if dup, err := co.Complete(lr.Key, lr.Lease, r); err != nil || dup {
		t.Fatalf("first upload: dup=%v err=%v", dup, err)
	}
	if dup, err := co.Complete(lr.Key, lr.Lease, r); err != nil || !dup {
		t.Fatalf("identical re-upload: dup=%v err=%v, want idempotent duplicate", dup, err)
	}
	// A stale-lease re-upload of the same bytes is equally idempotent.
	if dup, err := co.Complete(lr.Key, "L-stale", r); err != nil || !dup {
		t.Fatalf("stale-lease re-upload: dup=%v err=%v", dup, err)
	}

	corrupted := *r
	corrupted.Cycles++
	if _, err := co.Complete(lr.Key, lr.Lease, &corrupted); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting upload returned %v, want ErrConflict", err)
	}

	res, ok, err := co.Results(sub.ID)
	if !ok || err != nil {
		t.Fatalf("results: ok=%v err=%v", ok, err)
	}
	if got := sweep.ResultDigest(res.Outcomes[0].Result); got != sweep.ResultDigest(r) {
		t.Error("conflict overwrote the first accepted result")
	}
	cs := co.Stats()
	if cs.Duplicates != 2 || cs.Conflicts != 1 || cs.Completes != 1 {
		t.Errorf("stats %+v, want 2 duplicates, 1 conflict, 1 complete", cs)
	}
}
