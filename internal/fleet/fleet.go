// Package fleet distributes sweep execution across processes and machines.
// It layers an HTTP coordinator/worker protocol over the local
// sweep.Runner job model: a coordinator accepts config points, serves
// already-computed results straight from the sweep cache, queues misses
// onto a work-stealing job queue with lease expiry and at-least-once
// re-dispatch, and exposes a content-addressed blob store (results by job
// key, warm-up checkpoints by ckpt.Key, traces by .elt content digest)
// that workers fetch from and push to with end-to-end digest verification.
//
// The pieces:
//
//   - Coordinator is the in-process state machine: job queue, lease table,
//     sweep bookkeeping, result/checkpoint/trace stores. It has no HTTP in
//     it and is exercised directly by the race tests.
//   - Server wraps a Coordinator in the versioned JSON API ("/v1/...").
//   - Client speaks that API with capped exponential backoff and verifies
//     the sha256 body digest of every blob fetch; it adapts the remote
//     stores to the local interfaces (sweep.Cache, ckpt.Store).
//   - Worker leases jobs, runs them through an unchanged local
//     sweep.Runner, heartbeats its leases, and uploads results.
//   - FaultTransport injects transport failures (drops, delays, duplicated
//     deliveries, corrupted bodies) for the fault-injection test harness.
//
// Correctness story: every artifact is content-addressed, the simulator is
// deterministic, and results are compared by sweep.ResultsDigest — so a
// fleet sweep that completes must be byte-identical to a single-process
// sweep.Runner run of the same grid, no matter which workers died, which
// leases expired, or which uploads were duplicated along the way. The
// fault-injection tests in this package enforce exactly that.
package fleet

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// APIVersion is the protocol version; it is the "1" in the "/v1" route
// prefix. Incompatible wire changes bump it, and a client talking to the
// wrong version sees 404s rather than silent misparses.
const APIVersion = 1

// DigestHeader is the HTTP header carrying the lowercase-hex sha256 of a
// request or response body. The server rejects uploads whose body does not
// hash to the header value; the client re-verifies every blob fetch the
// same way, so a corrupted transfer is detected and retried, never
// trusted.
const DigestHeader = "X-Elsq-Sha256"

// Blob spaces of the coordinator's content-addressed artifact store.
const (
	// SpaceResult holds simulation results, JSON-encoded, by sweep job key.
	SpaceResult = "result"
	// SpaceCkpt holds warm-up checkpoints, JSON-encoded, by ckpt.Key.
	SpaceCkpt = "ckpt"
	// SpaceTrace holds raw .elt files by trace content digest.
	SpaceTrace = "trace"
)

// JobSpec is the wire form of one sweep.Job. The config travels as its
// full JSON encoding and the benchmark by name, so the receiving side
// reconstructs a job whose Key() is byte-identical to the submitter's.
type JobSpec struct {
	// Config is the complete simulation configuration.
	Config config.Config `json:"config"`
	// Bench names the workload profile (workload.ByName).
	Bench string `json:"bench"`
	// Seed selects the workload instantiation.
	Seed uint64 `json:"seed"`
	// Axes carries the grid labels for artifact rows (not part of the
	// job identity).
	Axes map[string]string `json:"axes,omitempty"`
}

// Spec converts a sweep.Job to its wire form.
func Spec(j sweep.Job) JobSpec {
	return JobSpec{Config: j.Config, Bench: j.Bench.Name, Seed: j.Seed, Axes: j.Axes}
}

// Job reconstructs the sweep.Job a spec describes, resolving the benchmark
// profile by name and validating the configuration.
func (s JobSpec) Job() (sweep.Job, error) {
	prof, err := workload.ByName(s.Bench)
	if err != nil {
		return sweep.Job{}, fmt.Errorf("fleet: spec: %w", err)
	}
	if err := s.Config.Validate(); err != nil {
		return sweep.Job{}, fmt.Errorf("fleet: spec %s/%s: %w", s.Config.Name(), s.Bench, err)
	}
	return sweep.Job{Config: s.Config, Bench: prof, Seed: s.Seed, Axes: s.Axes}, nil
}

// Key returns the sweep job key of the spec (config canonical encoding ×
// benchmark name × seed), without resolving the benchmark profile.
func (s JobSpec) Key() string {
	return sweep.Job{Config: s.Config, Bench: workload.Profile{Name: s.Bench}, Seed: s.Seed}.Key()
}

// SubmitRequest is the body of POST /v1/sweeps.
type SubmitRequest struct {
	// Jobs are the config points, in the submitter's canonical order.
	Jobs []JobSpec `json:"jobs"`
}

// SubmitResponse answers a sweep submission.
type SubmitResponse struct {
	// ID names the sweep for status, results and cancel calls.
	ID string `json:"id"`
	// Total is the number of submitted jobs, Unique the distinct
	// simulation identities among them, and Done how many of those were
	// already resolved at submission time (cache hits served instantly).
	Total  int `json:"total"`
	Unique int `json:"unique"`
	Done   int `json:"done"`
	// Keys holds the job key of every submitted job, in submission order.
	Keys []string `json:"keys"`
}

// SweepStatus is the live state of one sweep (GET /v1/sweeps/{id}).
type SweepStatus struct {
	// ID names the sweep.
	ID string `json:"id"`
	// Total counts the sweep's jobs; Done those resolved successfully;
	// Failed those resolved permanently unsuccessfully.
	Total  int `json:"total"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Canceled reports that the sweep was cancelled by the submitter.
	Canceled bool `json:"canceled,omitempty"`
	// Errors samples the failure messages (at most a handful).
	Errors []string `json:"errors,omitempty"`
}

// Finished reports whether every job has resolved (or the sweep was
// cancelled): no further progress will happen.
func (st SweepStatus) Finished() bool {
	return st.Canceled || st.Done+st.Failed >= st.Total
}

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	// Worker identifies the leasing worker (for logs and stats).
	Worker string `json:"worker"`
}

// LeaseResponse grants one job to a worker. The worker must renew before
// the TTL elapses or the coordinator re-dispatches the job to the next
// worker that asks.
type LeaseResponse struct {
	// Key is the job's cache identity.
	Key string `json:"key"`
	// Lease is the opaque lease token for renew/complete/fail calls.
	Lease string `json:"lease"`
	// Spec is the job to run.
	Spec JobSpec `json:"spec"`
	// TTLMillis is the lease duration in milliseconds.
	TTLMillis int64 `json:"ttl_ms"`
	// Attempt is 1 for the first dispatch of this job, higher for
	// re-dispatches after expired leases or transient failures.
	Attempt int `json:"attempt"`
}

// RenewRequest is the body of POST /v1/renew (lease heartbeat).
type RenewRequest struct {
	// Key and Lease identify the held lease.
	Key   string `json:"key"`
	Lease string `json:"lease"`
}

// RenewResponse acknowledges a heartbeat.
type RenewResponse struct {
	// TTLMillis is the renewed lease duration in milliseconds.
	TTLMillis int64 `json:"ttl_ms"`
}

// CompleteRequest is the body of POST /v1/complete (result upload).
type CompleteRequest struct {
	// Key and Lease identify the lease the result fulfils. A completion
	// whose lease has been lost is still accepted — the work is valid
	// compute under at-least-once dispatch — and a completion for an
	// already-done job is idempotent when the result digests agree.
	Key   string `json:"key"`
	Lease string `json:"lease"`
	// Result is the simulation outcome.
	Result *cpu.Result `json:"result"`
}

// CompleteResponse reports how an upload was absorbed.
type CompleteResponse struct {
	// Status is "ok" for a first accept, "duplicate" for an idempotent
	// re-upload of an identical result.
	Status string `json:"status"`
}

// FailRequest is the body of POST /v1/fail (worker-reported job failure).
type FailRequest struct {
	// Key and Lease identify the held lease.
	Key   string `json:"key"`
	Lease string `json:"lease"`
	// Error describes the failure.
	Error string `json:"error"`
	// Permanent marks failures retrying cannot fix (bad spec); the job is
	// failed immediately instead of re-queued.
	Permanent bool `json:"permanent,omitempty"`
}

// OutcomeEnvelope is one job's resolution in a results response, in
// submission order.
type OutcomeEnvelope struct {
	// Spec is the submitted job.
	Spec JobSpec `json:"spec"`
	// Key is the job's cache identity.
	Key string `json:"key"`
	// CacheHit reports the job was resolved from the result store without
	// any fleet dispatch.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Result is the simulation outcome (nil if the job failed).
	Result *cpu.Result `json:"result"`
	// Err carries the failure message for failed jobs.
	Err string `json:"err,omitempty"`
}

// ResultsResponse is the body of GET /v1/sweeps/{id}/results: one envelope
// per submitted job, in submission order — the same canonical order a
// local sweep.Runner emits, so artifact digests are directly comparable.
type ResultsResponse struct {
	// Stats summarises the sweep in sweep.Stats terms.
	Stats sweep.Stats `json:"stats"`
	// Outcomes lists every job's resolution in submission order.
	Outcomes []OutcomeEnvelope `json:"outcomes"`
}

// CoordStats is the coordinator's counter snapshot (GET /v1/stats).
type CoordStats struct {
	// Sweeps counts submissions; Queued, Leased are current queue depths;
	// Done and Failed count resolved unique jobs.
	Sweeps int `json:"sweeps"`
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// CacheHits counts jobs resolved instantly at submission; Completes
	// counts accepted uploads; Duplicates idempotent re-uploads;
	// Conflicts uploads rejected for digest disagreement with an accepted
	// result; Expired lease expiries re-dispatched; Rejected uploads
	// whose body failed digest verification.
	CacheHits  int `json:"cache_hits"`
	Completes  int `json:"completes"`
	Duplicates int `json:"duplicates"`
	Conflicts  int `json:"conflicts"`
	Expired    int `json:"expired"`
	Rejected   int `json:"rejected"`
}

// validResult mirrors the sweep.DiskCache sanity gate: a result that
// parses but cannot be a real simulation outcome is rejected rather than
// poisoning the result store.
func validResult(r *cpu.Result) bool {
	return r != nil && r.Counters != nil && r.LoadDist != nil && r.StoreDist != nil &&
		r.Committed != 0 && r.Bench != ""
}
