package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cpu"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// ClientStats counts what a client's retry and verification machinery did.
type ClientStats struct {
	// Requests counts HTTP attempts (including retries); Retries counts
	// re-attempts after transient failures; DigestMismatches counts
	// responses discarded because the body did not hash to its
	// DigestHeader — each one is a detected corruption that was re-fetched
	// instead of trusted.
	Requests         int64 `json:"requests"`
	Retries          int64 `json:"retries"`
	DigestMismatches int64 `json:"digest_mismatches"`
}

// Client speaks the fleet protocol. Transient failures (network errors,
// 5xx, digest mismatches) are retried with capped exponential backoff and
// jitter; 4xx responses surface immediately. The zero value is unusable;
// call NewClient.
type Client struct {
	// Base is the coordinator URL, e.g. "http://host:7977".
	Base string
	// HTTP performs the requests. Tests inject fault transports here.
	HTTP *http.Client
	// RetryBase/RetryCap/Retries tune the backoff schedule.
	RetryBase time.Duration
	RetryCap  time.Duration
	Retries   int

	requests         atomic.Int64
	retries          atomic.Int64
	digestMismatches atomic.Int64
}

// NewClient returns a client for the coordinator at base with default
// backoff (6 attempts, 100ms doubling, 5s cap).
func NewClient(base string) *Client {
	return &Client{
		Base:      strings.TrimRight(base, "/"),
		HTTP:      &http.Client{},
		RetryBase: 100 * time.Millisecond,
		RetryCap:  5 * time.Second,
		Retries:   6,
	}
}

// Stats snapshots the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:         c.requests.Load(),
		Retries:          c.retries.Load(),
		DigestMismatches: c.digestMismatches.Load(),
	}
}

// httpStatusError is a non-2xx response; Transient reports whether
// retrying can help.
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("fleet: server status %d: %s", e.status, strings.TrimSpace(e.msg))
}

func (e *httpStatusError) transient() bool {
	return e.status >= 500 || e.status == http.StatusTooManyRequests
}

// asSentinel maps protocol status codes back to the coordinator sentinels
// so callers can errors.Is against them.
func (e *httpStatusError) asSentinel() error {
	switch e.status {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, e.msg)
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrGone, e.msg)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrLeaseLost, e.msg)
	}
	return e
}

// errDigestMismatch marks a response body that failed verification; it is
// always transient (re-fetch).
var errDigestMismatch = errors.New("fleet: response body digest mismatch")

// do performs one verified exchange with retries: method+path with body
// (nil for none), response bytes returned. wantStatus of 0 accepts any
// 2xx; http.StatusNoContent returns (nil, nil) on 204.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (respBody []byte, status int, err error) {
	for attempt := 0; ; attempt++ {
		respBody, status, err = c.once(ctx, method, path, body)
		if err == nil {
			return respBody, status, nil
		}
		var herr *httpStatusError
		if errors.As(err, &herr) && !herr.transient() {
			return nil, status, herr.asSentinel()
		}
		if attempt >= c.Retries || ctx.Err() != nil {
			return nil, status, err
		}
		c.retries.Add(1)
		if !sleepCtx(ctx, c.backoff(attempt)) {
			return nil, status, ctx.Err()
		}
	}
}

// backoff returns the capped exponential delay for attempt (0-based), with
// up to 50% additive jitter so a worker herd does not retry in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.RetryBase
	for i := 0; i < attempt && d < c.RetryCap; i++ {
		d *= 2
	}
	if d > c.RetryCap {
		d = c.RetryCap
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleepCtx sleeps d or until ctx is done; it reports false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// once performs a single digest-stamped, digest-verified exchange.
func (c *Client) once(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	c.requests.Add(1)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		sum := sha256.Sum256(body)
		req.Header.Set(DigestHeader, hex.EncodeToString(sum[:]))
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, resp.StatusCode, &httpStatusError{status: resp.StatusCode, msg: string(b)}
	}
	if want := resp.Header.Get(DigestHeader); want != "" {
		sum := sha256.Sum256(b)
		if hex.EncodeToString(sum[:]) != want {
			c.digestMismatches.Add(1)
			return nil, resp.StatusCode, errDigestMismatch
		}
	}
	return b, resp.StatusCode, nil
}

// call JSON-encodes in (when non-nil), performs the exchange, and decodes
// into out (when non-nil).
func (c *Client) call(ctx context.Context, method, path string, in, out any) (int, error) {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = b
	}
	respBody, status, err := c.do(ctx, method, path, body)
	if err != nil {
		return status, err
	}
	if out != nil && status != http.StatusNoContent {
		if err := json.Unmarshal(respBody, out); err != nil {
			return status, fmt.Errorf("fleet: decoding %s %s response: %w", method, path, err)
		}
	}
	return status, nil
}

// Submit registers jobs as one sweep.
func (c *Client) Submit(ctx context.Context, jobs []sweep.Job) (SubmitResponse, error) {
	req := SubmitRequest{Jobs: make([]JobSpec, len(jobs))}
	for i, j := range jobs {
		req.Jobs[i] = Spec(j)
	}
	var resp SubmitResponse
	_, err := c.call(ctx, http.MethodPost, "/v1/sweeps", req, &resp)
	return resp, err
}

// Status fetches a sweep's progress snapshot.
func (c *Client) Status(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	_, err := c.call(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// Wait long-polls until the sweep finishes, invoking onChange (when
// non-nil) at every progress change.
func (c *Client) Wait(ctx context.Context, id string, onChange func(SweepStatus)) (SweepStatus, error) {
	var st SweepStatus
	first := true
	for {
		path := fmt.Sprintf("/v1/sweeps/%s?wait=30000&done=%d", id, st.Done)
		if first {
			path = "/v1/sweeps/" + id
		}
		var next SweepStatus
		if _, err := c.call(ctx, http.MethodGet, path, nil, &next); err != nil {
			return st, err
		}
		if first || next.Done != st.Done || next.Failed != st.Failed || next.Canceled != st.Canceled {
			if onChange != nil {
				onChange(next)
			}
		}
		st, first = next, false
		if st.Finished() {
			return st, nil
		}
		if ctx.Err() != nil {
			return st, ctx.Err()
		}
	}
}

// Results fetches a sweep's outcomes, reconstructed as sweep.Outcomes in
// the canonical submission order.
func (c *Client) Results(ctx context.Context, id string) ([]sweep.Outcome, sweep.Stats, error) {
	var resp ResultsResponse
	if _, err := c.call(ctx, http.MethodGet, "/v1/sweeps/"+id+"/results", nil, &resp); err != nil {
		return nil, sweep.Stats{}, err
	}
	outcomes := make([]sweep.Outcome, len(resp.Outcomes))
	for i, env := range resp.Outcomes {
		job, err := env.Spec.Job()
		if err != nil {
			return nil, sweep.Stats{}, err
		}
		outcomes[i] = sweep.Outcome{Job: job, Key: env.Key, Result: env.Result, CacheHit: env.CacheHit}
	}
	return outcomes, resp.Stats, nil
}

// Cancel cancels a sweep; queued jobs are dropped and leased ones revoked
// at their next heartbeat.
func (c *Client) Cancel(ctx context.Context, id string) error {
	_, err := c.call(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, nil)
	return err
}

// Lease asks for a job; it returns (nil, nil) when none is pending.
func (c *Client) Lease(ctx context.Context, worker string) (*LeaseResponse, error) {
	var lease LeaseResponse
	status, err := c.call(ctx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: worker}, &lease)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &lease, nil
}

// Renew heartbeats a lease. An ErrGone or ErrLeaseLost return means the
// coordinator no longer wants this worker's run.
func (c *Client) Renew(ctx context.Context, key, lease string) error {
	_, err := c.call(ctx, http.MethodPost, "/v1/renew", RenewRequest{Key: key, Lease: lease}, nil)
	return err
}

// Complete uploads a finished job's result.
func (c *Client) Complete(ctx context.Context, key, lease string, r *cpu.Result) error {
	_, err := c.call(ctx, http.MethodPost, "/v1/complete",
		CompleteRequest{Key: key, Lease: lease, Result: r}, nil)
	return err
}

// Fail reports a job failure.
func (c *Client) Fail(ctx context.Context, key, lease, msg string, permanent bool) error {
	_, err := c.call(ctx, http.MethodPost, "/v1/fail",
		FailRequest{Key: key, Lease: lease, Error: msg, Permanent: permanent}, nil)
	return err
}

// FleetStats fetches the coordinator counters.
func (c *Client) FleetStats(ctx context.Context) (CoordStats, error) {
	var st CoordStats
	_, err := c.call(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// BlobGet fetches an artifact; the response body is digest-verified (and
// transparently re-fetched on mismatch) before it is returned.
func (c *Client) BlobGet(ctx context.Context, space, key string) ([]byte, error) {
	b, _, err := c.do(ctx, http.MethodGet, "/v1/blob/"+space+"/"+key, nil)
	return b, err
}

// BlobPut pushes an artifact with its digest stamped for server-side
// verification.
func (c *Client) BlobPut(ctx context.Context, space, key string, body []byte) error {
	_, _, err := c.do(ctx, http.MethodPut, "/v1/blob/"+space+"/"+key, body)
	return err
}

// FetchTrace downloads the trace with the given content digest into dir
// (as <digest>.elt), verifying both the transfer (body sha256) and the
// content (full .elt verification against the digest) before the file is
// used. An existing verified copy is reused.
func (c *Client) FetchTrace(ctx context.Context, digest, dir string) (string, error) {
	path := filepath.Join(dir, digest+".elt")
	if t, err := trace.Cached(path); err == nil && t.Meta().Digest == digest {
		return path, nil
	}
	b, err := c.BlobGet(ctx, SpaceTrace, digest)
	if err != nil {
		return "", fmt.Errorf("fleet: fetching trace %s: %w", digest, err)
	}
	t, err := trace.New(b)
	if err != nil {
		return "", fmt.Errorf("fleet: fetched trace %s: %w", digest, err)
	}
	if err := t.Verify(); err != nil {
		return "", fmt.Errorf("fleet: fetched trace %s: %w", digest, err)
	}
	if got := t.Meta().Digest; got != digest {
		return "", fmt.Errorf("fleet: fetched trace digests to %s, wanted %s", got, digest)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, digest+".tmp-*")
	if err != nil {
		return "", err
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("fleet: writing fetched trace: %v", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// ResultCache adapts the coordinator's result blob space to sweep.Cache:
// a remote, digest-verified drop-in for the local Mem/Disk caches.
func (c *Client) ResultCache() *RemoteCache { return &RemoteCache{c: c} }

// CkptStore adapts the coordinator's checkpoint blob space to ckpt.Store:
// workers fetch warm-up snapshots by content key and push ones they build.
func (c *Client) CkptStore() *RemoteCkpts { return &RemoteCkpts{c: c} }

// RemoteCache is a sweep.Cache backed by a coordinator's result space.
// Like every sweep.Cache it treats problems as misses (Get) or no-ops
// (Put): remote flakiness slows a sweep down, never corrupts it.
type RemoteCache struct {
	c *Client
}

// Get implements sweep.Cache.
func (rc *RemoteCache) Get(key string) (*cpu.Result, bool) {
	b, err := rc.c.BlobGet(context.Background(), SpaceResult, key)
	if err != nil {
		return nil, false
	}
	var r cpu.Result
	if json.Unmarshal(b, &r) != nil || !validResult(&r) {
		return nil, false
	}
	return &r, true
}

// Put implements sweep.Cache.
func (rc *RemoteCache) Put(key string, r *cpu.Result) {
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	_ = rc.c.BlobPut(context.Background(), SpaceResult, key, b)
}

// RemoteCkpts is a ckpt.Store backed by a coordinator's checkpoint space.
type RemoteCkpts struct {
	c *Client
}

// Get implements ckpt.Store. The transfer is digest-verified by the blob
// layer and the snapshot re-checked for structural integrity; any problem
// is a miss, and the caller rebuilds the warm-up locally.
func (rs *RemoteCkpts) Get(key string) (*ckpt.Snapshot, bool) {
	b, err := rs.c.BlobGet(context.Background(), SpaceCkpt, key)
	if err != nil {
		return nil, false
	}
	var snap ckpt.Snapshot
	if json.Unmarshal(b, &snap) != nil || snap.Key != key || snap.Source == nil || snap.Hier == nil {
		return nil, false
	}
	return &snap, true
}

// Put implements ckpt.Store.
func (rs *RemoteCkpts) Put(snap *ckpt.Snapshot) {
	b, err := json.Marshal(snap)
	if err != nil {
		return
	}
	_ = rs.c.BlobPut(context.Background(), SpaceCkpt, snap.Key, b)
}

// LayeredCkpts stacks a fast local checkpoint store over a remote one:
// Get prefers local and back-fills it from remote hits; Put writes
// through to both. This is what lets one worker's warm-up build serve the
// whole fleet while repeat resumes on the same worker stay in memory.
func LayeredCkpts(local, remote ckpt.Store) ckpt.Store {
	return &layeredCkpts{local: local, remote: remote}
}

type layeredCkpts struct {
	local, remote ckpt.Store
}

// Get implements ckpt.Store.
func (l *layeredCkpts) Get(key string) (*ckpt.Snapshot, bool) {
	if snap, ok := l.local.Get(key); ok {
		return snap, true
	}
	if snap, ok := l.remote.Get(key); ok {
		l.local.Put(snap)
		return snap, true
	}
	return nil, false
}

// Put implements ckpt.Store.
func (l *layeredCkpts) Put(snap *ckpt.Snapshot) {
	l.local.Put(snap)
	l.remote.Put(snap)
}
