package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultMode selects what a matched Fault does to the exchange.
type FaultMode int

// Fault modes. DropRequest fails before the server sees anything (a lost
// request); DropResponse delivers the request and then fails (the server
// acted, the client doesn't know — the retry that follows is a duplicated
// delivery); Delay stalls the exchange; Duplicate delivers the request
// twice back to back; CorruptResponse flips bytes in the response body so
// digest verification must catch it.
const (
	DropRequest FaultMode = iota
	DropResponse
	Delay
	Duplicate
	CorruptResponse
)

// String names the mode for logs.
func (m FaultMode) String() string {
	switch m {
	case DropRequest:
		return "drop-request"
	case DropResponse:
		return "drop-response"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case CorruptResponse:
		return "corrupt-response"
	}
	return fmt.Sprintf("FaultMode(%d)", int(m))
}

// Fault is one injection rule.
type Fault struct {
	// Match selects the requests the rule applies to; nil matches all.
	Match func(*http.Request) bool
	// Mode is what happens to a matched exchange.
	Mode FaultMode
	// Count bounds how many times the rule fires (0 = unlimited).
	Count int
	// Delay is the stall for Delay mode.
	Delay time.Duration
}

// MatchPath returns a Match function selecting requests whose URL path
// contains substr.
func MatchPath(substr string) func(*http.Request) bool {
	return func(r *http.Request) bool { return strings.Contains(r.URL.Path, substr) }
}

// FaultTransport is an http.RoundTripper that injects transport failures
// into an inner transport: the in-process fault harness the fleet tests
// drive worker and client resilience with. Rules fire in the order they
// were added; at most one rule fires per exchange. Safe for concurrent
// use.
type FaultTransport struct {
	// Inner performs the real exchanges (http.DefaultTransport when nil).
	Inner http.RoundTripper

	mu       sync.Mutex
	rules    []*faultRule
	injected map[FaultMode]int
}

type faultRule struct {
	f         Fault
	remaining int // <0 = unlimited
}

// NewFaultTransport wraps inner (nil for http.DefaultTransport).
func NewFaultTransport(inner http.RoundTripper) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultTransport{Inner: inner, injected: make(map[FaultMode]int)}
}

// Add installs an injection rule.
func (t *FaultTransport) Add(f Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rem := f.Count
	if rem == 0 {
		rem = -1
	}
	t.rules = append(t.rules, &faultRule{f: f, remaining: rem})
}

// Injected reports how many faults of each mode have fired.
func (t *FaultTransport) Injected() map[FaultMode]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[FaultMode]int, len(t.injected))
	for k, v := range t.injected {
		out[k] = v
	}
	return out
}

// pick claims the first live rule matching req, if any.
func (t *FaultTransport) pick(req *http.Request) *Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rules {
		if r.remaining == 0 {
			continue
		}
		if r.f.Match != nil && !r.f.Match(req) {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		t.injected[r.f.Mode]++
		return &r.f
	}
	return nil
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.pick(req)
	if f == nil {
		return t.Inner.RoundTrip(req)
	}
	switch f.Mode {
	case DropRequest:
		// The request never reaches the server. Drain and discard the
		// body as a real transport would.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("fleet fault: request dropped (%s %s)", req.Method, req.URL.Path)

	case DropResponse:
		// The server processes the request; the response is lost. The
		// caller's retry becomes a duplicated delivery.
		resp, err := t.Inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("fleet fault: response dropped (%s %s)", req.Method, req.URL.Path)

	case Delay:
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.Inner.RoundTrip(req)

	case Duplicate:
		// Deliver twice: the first exchange completes and is discarded,
		// then the request is replayed and its response returned.
		first, err := t.Inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
		replay, err := cloneRequest(req)
		if err != nil {
			return nil, fmt.Errorf("fleet fault: cannot replay request: %w", err)
		}
		return t.Inner.RoundTrip(replay)

	case CorruptResponse:
		resp, err := t.Inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(body) > 0 {
			body[len(body)/2] ^= 0x5a
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	}
	return t.Inner.RoundTrip(req)
}

// cloneRequest rebuilds a request for replay, re-materialising the body
// via GetBody (set automatically for byte-reader bodies).
func cloneRequest(req *http.Request) (*http.Request, error) {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.GetBody == nil {
		return clone, nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	clone.Body = body
	return clone, nil
}
