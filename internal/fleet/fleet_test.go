package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fleetJobs builds the 12-point reference grid: two ERT organisations ×
// three benchmarks × two seeds, at a budget small enough that the whole
// grid simulates in well under a second.
func fleetJobs(t *testing.T) []sweep.Job {
	t.Helper()
	var jobs []sweep.Job
	for _, ert := range []config.ERTKind{config.ERTLine, config.ERTHash} {
		for _, name := range []string{"gcc", "swim", "mcf"} {
			prof, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(1); seed <= 2; seed++ {
				cfg := config.Default().WithBudget(2_000, 10_000)
				cfg.ERT = ert
				jobs = append(jobs, sweep.Job{Config: cfg, Bench: prof, Seed: seed})
			}
		}
	}
	return jobs
}

// runLocal runs jobs on a single-process sweep.Runner and returns the
// outcomes with their canonical results digest — the reference every fleet
// run must be byte-identical to.
func runLocal(t *testing.T, jobs []sweep.Job) ([]sweep.Outcome, string) {
	t.Helper()
	out, _, err := (&sweep.Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return out, sweep.ResultsDigest(out)
}

// startFleet boots a coordinator behind an httptest server.
func startFleet(t *testing.T, opts Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	co := NewCoordinator(opts)
	srv := httptest.NewServer(NewServer(co))
	t.Cleanup(srv.Close)
	return co, srv
}

// newTestClient builds a fast-retry client, optionally behind a fault
// transport.
func newTestClient(base string, rt http.RoundTripper) *Client {
	c := NewClient(base)
	c.RetryBase = 5 * time.Millisecond
	c.RetryCap = 50 * time.Millisecond
	if rt != nil {
		c.HTTP = &http.Client{Transport: rt}
	}
	return c
}

// startWorkers launches n in-process workers against base, all sharing rt
// (nil for a clean transport), and tears them down at test cleanup.
func startWorkers(t *testing.T, base string, n int, rt http.RoundTripper) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Client:   newTestClient(base, rt),
			Name:     fmt.Sprintf("w%d", i),
			Poll:     10 * time.Millisecond,
			TraceDir: t.TempDir(),
			OnEvent:  func(s string) { t.Log(s) },
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// fakeClock is an injectable coordinator clock for deterministic lease
// expiry.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// recordTestTrace records a full-budget .elt for (bench, seed) under cfg
// and returns its path, raw bytes and content digest.
func recordTestTrace(t *testing.T, cfg *config.Config, bench string, seed uint64) (string, []byte, string) {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := trace.BenchPath(t.TempDir(), bench, seed)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(f, prof.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Record(cfg.WarmupInsts + cfg.MaxInsts); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.New(b)
	if err != nil {
		t.Fatal(err)
	}
	return path, b, tr.Meta().Digest
}

// testCtx returns a context that fails the test cleanly on timeout rather
// than letting a stuck fleet hang the suite.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestJobSpecRoundTrip pins the wire form: a spec reconstructs a job whose
// key is byte-identical to the submitter's, and Key() agrees without
// resolving the profile.
func TestJobSpecRoundTrip(t *testing.T) {
	for _, j := range fleetJobs(t) {
		s := Spec(j)
		if s.Key() != j.Key() {
			t.Fatalf("spec key %s != job key %s", s.Key(), j.Key())
		}
		back, err := s.Job()
		if err != nil {
			t.Fatal(err)
		}
		if back.Key() != j.Key() {
			t.Fatalf("round-tripped job key %s != %s", back.Key(), j.Key())
		}
	}
}
