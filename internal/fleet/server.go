package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cpu"
	"repro/internal/sweep"
)

// maxBodyBytes bounds any request body the server will read: results and
// checkpoints are a few MiB at paper geometry, traces somewhat more.
const maxBodyBytes = 256 << 20

// Server exposes a Coordinator as the versioned JSON HTTP API:
//
//	POST   /v1/sweeps              submit config points
//	GET    /v1/sweeps/{id}         status (?wait=ms&done=N long-polls)
//	GET    /v1/sweeps/{id}/results outcomes in canonical submission order
//	GET    /v1/sweeps/{id}/events  progress stream (one JSON status/line)
//	DELETE /v1/sweeps/{id}         cancel
//	POST   /v1/lease               lease a job (work-stealing)
//	POST   /v1/renew               lease heartbeat
//	POST   /v1/complete            upload a result
//	POST   /v1/fail                report a failure
//	GET    /v1/stats               coordinator counters
//	GET    /v1/blob/{space}/{key}  fetch an artifact (sha256 in DigestHeader)
//	PUT    /v1/blob/{space}/{key}  push an artifact (digest-verified)
//
// Every JSON response carries the body's sha256 in DigestHeader, and every
// upload carrying the header is verified against it before a byte is
// trusted.
type Server struct {
	co  *Coordinator
	mux *http.ServeMux
}

// NewServer wires a coordinator into an http.Handler.
func NewServer(co *Coordinator) *Server {
	s := &Server{co: co, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/lease", s.handleLease)
	s.mux.HandleFunc("POST /v1/renew", s.handleRenew)
	s.mux.HandleFunc("POST /v1/complete", s.handleComplete)
	s.mux.HandleFunc("POST /v1/fail", s.handleFail)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/blob/{space}/{key}", s.handleBlobGet)
	s.mux.HandleFunc("PUT /v1/blob/{space}/{key}", s.handleBlobPut)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ExpireLoop drives lease expiry until stop fires: dead workers' jobs are
// re-dispatched even while no API traffic arrives to trigger expiry
// opportunistically.
func (s *Server) ExpireLoop(stop <-chan struct{}, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.co.Expire()
		case <-stop:
			return
		}
	}
}

// readBody reads (bounded) and digest-verifies a request body: when the
// request carries DigestHeader, a body that does not hash to it is
// rejected — a corrupted upload must be retried, never absorbed.
func readBody(r *http.Request) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if len(b) > maxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", maxBodyBytes)
	}
	if want := r.Header.Get(DigestHeader); want != "" {
		sum := sha256.Sum256(b)
		if got := hex.EncodeToString(sum[:]); got != want {
			return nil, fmt.Errorf("body digest %s does not match %s header %s", got, DigestHeader, want)
		}
	}
	return b, nil
}

// decode reads, verifies and JSON-decodes a request body into out.
func decode(r *http.Request, out any) error {
	b, err := readBody(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, out); err != nil {
		return fmt.Errorf("decoding body: %w", err)
	}
	return nil
}

// writeJSON writes v as JSON with the body digest in DigestHeader.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	sum := sha256.Sum256(b)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
	w.WriteHeader(status)
	w.Write(b)
}

// httpErr maps coordinator sentinels onto status codes.
func httpErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrGone):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrLeaseLost):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrConflict):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decode(r, &req); err != nil {
		s.rejected(w, err)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "empty sweep", http.StatusBadRequest)
		return
	}
	resp, err := s.co.Submit(req.Jobs)
	if err != nil {
		httpErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	waitMS, _ := strconv.Atoi(r.URL.Query().Get("wait"))
	prevDone, _ := strconv.Atoi(r.URL.Query().Get("done"))
	var st SweepStatus
	var ok bool
	if waitMS > 0 {
		prev := SweepStatus{ID: id, Done: prevDone, Total: 1 << 30}
		st, ok = s.co.WaitChange(id, prev, time.Duration(waitMS)*time.Millisecond, r.Context().Done())
	} else {
		st, ok = s.co.Status(id)
	}
	if !ok {
		http.Error(w, "unknown sweep "+id, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, ok, err := s.co.Results(id)
	if !ok {
		http.Error(w, "unknown sweep "+id, http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEvents streams one JSON SweepStatus line per progress change until
// the sweep finishes or the client goes away (application/x-ndjson).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.co.Status(id)
	if !ok {
		http.Error(w, "unknown sweep "+id, http.StatusNotFound)
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for {
		if enc.Encode(st) != nil {
			return
		}
		if canFlush {
			fl.Flush()
		}
		if st.Finished() {
			return
		}
		next, ok := s.co.WaitChange(id, st, 30*time.Second, r.Context().Done())
		if !ok || r.Context().Err() != nil {
			return
		}
		st = next
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.co.Cancel(r.PathValue("id")); err != nil {
		httpErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decode(r, &req); err != nil {
		s.rejected(w, err)
		return
	}
	lease, ok := s.co.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := decode(r, &req); err != nil {
		s.rejected(w, err)
		return
	}
	resp, err := s.co.Renew(req.Key, req.Lease)
	if err != nil {
		httpErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decode(r, &req); err != nil {
		s.rejected(w, err)
		return
	}
	dup, err := s.co.Complete(req.Key, req.Lease, req.Result)
	if err != nil {
		httpErr(w, err)
		return
	}
	status := "ok"
	if dup {
		status = "duplicate"
	}
	writeJSON(w, http.StatusOK, CompleteResponse{Status: status})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := decode(r, &req); err != nil {
		s.rejected(w, err)
		return
	}
	if err := s.co.Fail(req.Key, req.Lease, req.Error, req.Permanent); err != nil {
		httpErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.co.Stats())
}

// rejected answers a request whose body failed to read, decode or
// digest-verify, and counts it (the client's retry shows up in
// CoordStats.Rejected, which the corruption tests assert on).
func (s *Server) rejected(w http.ResponseWriter, err error) {
	s.co.mu.Lock()
	s.co.stats.Rejected++
	s.co.mu.Unlock()
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	space, key := r.PathValue("space"), r.PathValue("key")
	var body []byte
	switch space {
	case SpaceResult:
		res, ok := s.co.GetResult(key)
		if !ok {
			http.Error(w, "no result "+key, http.StatusNotFound)
			return
		}
		b, err := json.Marshal(res)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		body = b
	case SpaceCkpt:
		store := s.co.Ckpts()
		if store == nil {
			http.Error(w, "checkpoint space disabled", http.StatusNotFound)
			return
		}
		snap, ok := store.Get(key)
		if !ok {
			http.Error(w, "no checkpoint "+key, http.StatusNotFound)
			return
		}
		b, err := json.Marshal(snap)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		body = b
	case SpaceTrace:
		store := s.co.Traces()
		if store == nil {
			http.Error(w, "trace space disabled", http.StatusNotFound)
			return
		}
		b, ok := store.Get(key)
		if !ok {
			http.Error(w, "no trace "+key, http.StatusNotFound)
			return
		}
		body = b
	default:
		http.Error(w, "unknown blob space "+space, http.StatusNotFound)
		return
	}
	sum := sha256.Sum256(body)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
	w.Write(body)
}

func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	space, key := r.PathValue("space"), r.PathValue("key")
	body, err := readBody(r)
	if err != nil {
		s.rejected(w, err)
		return
	}
	switch space {
	case SpaceResult:
		var res cpu.Result
		if err := json.Unmarshal(body, &res); err != nil {
			httpErr(w, fmt.Errorf("decoding result: %w", err))
			return
		}
		if err := s.co.PutResult(key, &res); err != nil {
			httpErr(w, err)
			return
		}
	case SpaceCkpt:
		store := s.co.Ckpts()
		if store == nil {
			http.Error(w, "checkpoint space disabled", http.StatusNotFound)
			return
		}
		var snap ckpt.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			httpErr(w, fmt.Errorf("decoding checkpoint: %w", err))
			return
		}
		// Content addressing: the snapshot must identify as the key it is
		// stored under, or fetch-by-key would serve the wrong warm-up.
		if snap.Key != key {
			httpErr(w, fmt.Errorf("checkpoint identifies as %s, uploaded under %s", snap.Key, key))
			return
		}
		store.Put(&snap)
	case SpaceTrace:
		store := s.co.Traces()
		if store == nil {
			http.Error(w, "trace space disabled", http.StatusNotFound)
			return
		}
		if err := store.Put(key, body); err != nil {
			httpErr(w, err)
			return
		}
	default:
		http.Error(w, "unknown blob space "+space, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// Interface checks: the client-side remote stores must slot into the local
// engines unchanged.
var (
	_ sweep.Cache = (*RemoteCache)(nil)
	_ ckpt.Store  = (*RemoteCkpts)(nil)
)
