package fleet

import (
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// TestFleetSweepMatchesLocal is the tentpole integration test: a
// coordinator and three in-process workers complete a real 12-point sweep
// over HTTP, and the assembled results are byte-identical — same canonical
// order, same per-job results digest — to the same grid run on a local
// single-process sweep.Runner. A second submission of the same grid is
// then served entirely from the result store.
func TestFleetSweepMatchesLocal(t *testing.T) {
	jobs := fleetJobs(t)
	local, localDigest := runLocal(t, jobs)

	_, srv := startFleet(t, Options{Ckpts: ckpt.NewMemStore()})
	client := newTestClient(srv.URL, nil)
	ctx := testCtx(t, 2*time.Minute)

	sub, err := client.Submit(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Total != len(jobs) || sub.Unique != len(jobs) || sub.Done != 0 {
		t.Fatalf("submit: total %d unique %d done %d, want %d/%d/0",
			sub.Total, sub.Unique, sub.Done, len(jobs), len(jobs))
	}
	for i, k := range sub.Keys {
		if k != local[i].Key {
			t.Fatalf("job %d: fleet key %s != local key %s", i, k, local[i].Key)
		}
	}

	startWorkers(t, srv.URL, 3, nil)
	st, err := client.Wait(ctx, sub.ID, func(s SweepStatus) { t.Logf("progress: %d/%d", s.Done, s.Total) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != len(jobs) || st.Failed != 0 {
		t.Fatalf("sweep finished with done %d failed %d (errors %v)", st.Done, st.Failed, st.Errors)
	}

	out, stats, err := client.Results(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != len(jobs) || stats.Ran != len(jobs) || stats.CacheHits != 0 {
		t.Errorf("stats %+v, want total=ran=%d", stats, len(jobs))
	}
	for i := range out {
		if out[i].Key != local[i].Key {
			t.Fatalf("outcome %d: key %s out of canonical order (want %s)", i, out[i].Key, local[i].Key)
		}
		// Byte-identity is the contract: the wire round-trip must not
		// perturb a single counted event.
		if sweep.ResultDigest(out[i].Result) != sweep.ResultDigest(local[i].Result) {
			t.Errorf("outcome %d (%s/%s seed %d): fleet result differs from local",
				i, jobs[i].Config.Name(), jobs[i].Bench.Name, jobs[i].Seed)
		}
	}
	if got := sweep.ResultsDigest(out); got != localDigest {
		t.Errorf("fleet results digest %s != local %s", got, localDigest)
	}

	// The same grid again: no new dispatch, all 12 served from the store.
	sub2, err := client.Submit(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Done != len(jobs) {
		t.Fatalf("re-submit resolved %d jobs at submission, want %d", sub2.Done, len(jobs))
	}
	out2, stats2, err := client.Results(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits != len(jobs) {
		t.Errorf("re-submit stats %+v, want %d cache hits", stats2, len(jobs))
	}
	if got := sweep.ResultsDigest(out2); got != localDigest {
		t.Errorf("cache-served results digest %s != local %s", got, localDigest)
	}
}

// TestFleetResultsCanonicalOrder pins the ordering contract with a job
// list containing a duplicate point: outcomes come back in submission
// order with the duplicate fanned out (as the local Runner does), while
// only the unique points are simulated.
func TestFleetResultsCanonicalOrder(t *testing.T) {
	jobs := fleetJobs(t)[:4]
	jobs = append(jobs, jobs[0]) // a duplicate of the first point
	local, localDigest := runLocal(t, jobs)

	_, srv := startFleet(t, Options{})
	client := newTestClient(srv.URL, nil)
	ctx := testCtx(t, 2*time.Minute)

	sub, err := client.Submit(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Total != 5 || sub.Unique != 4 {
		t.Fatalf("submit total %d unique %d, want 5/4", sub.Total, sub.Unique)
	}
	startWorkers(t, srv.URL, 2, nil)
	if _, err := client.Wait(ctx, sub.ID, nil); err != nil {
		t.Fatal(err)
	}
	out, stats, err := client.Results(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unique != 4 || stats.Ran != 4 {
		t.Errorf("stats %+v, want unique=ran=4", stats)
	}
	for i := range out {
		if out[i].Key != local[i].Key {
			t.Fatalf("outcome %d out of submission order", i)
		}
	}
	if out[0].Key != out[4].Key || sweep.ResultDigest(out[0].Result) != sweep.ResultDigest(out[4].Result) {
		t.Error("duplicate job did not fan out to an identical outcome")
	}
	if got := sweep.ResultsDigest(out); got != localDigest {
		t.Errorf("fleet results digest %s != local %s", got, localDigest)
	}
}

// TestTraceFetchByDigest covers the remote artifact path end to end: a job
// whose config demands a trace by content digest, with a TracePath that
// does not exist on the worker, runs anyway — the worker fetches the .elt
// from the coordinator's trace space, verifies it, and produces exactly
// the result the local run with the on-disk file produces.
func TestTraceFetchByDigest(t *testing.T) {
	cfg := config.Default().WithBudget(1_500, 3_000)
	path, raw, digest := recordTestTrace(t, &cfg, "gzip", 1)

	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}

	// Local reference: same trace, real path.
	localCfg := cfg
	localCfg.TracePath = path
	localCfg.TraceDigest = digest
	local, localDigest := runLocal(t, []sweep.Job{{Config: localCfg, Bench: prof, Seed: 1}})

	ts, err := NewTraceStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Put(digest, raw); err != nil {
		t.Fatal(err)
	}
	_, srv := startFleet(t, Options{Traces: ts})
	client := newTestClient(srv.URL, nil)
	ctx := testCtx(t, time.Minute)

	fleetCfg := cfg
	fleetCfg.TracePath = "/nonexistent/elsewhere.elt" // the submitter's path, useless here
	fleetCfg.TraceDigest = digest
	sub, err := client.Submit(ctx, []sweep.Job{{Config: fleetCfg, Bench: prof, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Keys[0] != local[0].Key {
		t.Fatalf("content-addressed key differs across paths: %s vs %s", sub.Keys[0], local[0].Key)
	}

	startWorkers(t, srv.URL, 1, nil)
	st, err := client.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Failed != 0 {
		t.Fatalf("trace-driven job: done %d failed %d (errors %v)", st.Done, st.Failed, st.Errors)
	}
	out, _, err := client.Results(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.ResultsDigest(out); got != localDigest {
		t.Errorf("remote-trace results digest %s != local %s", got, localDigest)
	}
}

// TestCancelFreesWorker checks cancellation promptness at the fleet level:
// a worker grinding through an enormous job abandons it at the next
// heartbeat after the sweep is cancelled, and is then free to finish other
// work — proven by a second, small sweep completing on the same worker.
func TestCancelFreesWorker(t *testing.T) {
	co, srv := startFleet(t, Options{LeaseTTL: 300 * time.Millisecond})
	client := newTestClient(srv.URL, nil)
	ctx := testCtx(t, time.Minute)

	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	huge := sweep.Job{Config: config.Default().WithBudget(2_000_000_000, 0), Bench: prof, Seed: 1}
	sub, err := client.Submit(ctx, []sweep.Job{huge})
	if err != nil {
		t.Fatal(err)
	}

	startWorkers(t, srv.URL, 1, nil)
	deadline := time.Now().Add(10 * time.Second)
	for co.Stats().Leased == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never leased the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := client.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	st, err := client.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Canceled || !st.Finished() {
		t.Fatalf("cancelled sweep status %+v not finished", st)
	}

	// The worker must shed the revoked job and pick this one up.
	small := sweep.Job{Config: config.Default().WithBudget(1_000, 2_000), Bench: prof, Seed: 2}
	sub2, err := client.Submit(ctx, []sweep.Job{small})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := client.Wait(ctx, sub2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Done != 1 {
		t.Fatalf("post-cancel sweep: %+v", st2)
	}
}
