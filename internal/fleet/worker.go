package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Worker leases jobs from a coordinator and runs them through an unchanged
// local sweep.Runner. It heartbeats each lease while the simulation runs
// (cancelling the run promptly if the lease is revoked or lost), fetches
// missing trace artifacts by content digest, shares warm-up checkpoints
// through the remote store, and uploads results with capped-backoff
// retries. Construct with a Client and call Run.
type Worker struct {
	// Client is the coordinator connection.
	Client *Client
	// Name identifies the worker in coordinator logs and stats.
	Name string
	// Ckpts is the warm-up checkpoint store for this worker's Runner; nil
	// defaults to a local in-memory store layered over the coordinator's
	// remote checkpoint space.
	Ckpts ckpt.Store
	// TraceDir is where traces fetched by digest land; "" uses a
	// per-worker temporary directory.
	TraceDir string
	// Poll is the idle re-poll interval when the queue is empty (default
	// 250ms).
	Poll time.Duration
	// OnEvent, when non-nil, receives one log line per notable event.
	OnEvent func(string)

	ckpts ckpt.Store
}

// logf emits a worker log line through OnEvent.
func (w *Worker) logf(format string, args ...any) {
	if w.OnEvent != nil {
		w.OnEvent(fmt.Sprintf("worker %s: %s", w.Name, fmt.Sprintf(format, args...)))
	}
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 250 * time.Millisecond
}

func (w *Worker) traceDir() (string, error) {
	if w.TraceDir != "" {
		return w.TraceDir, nil
	}
	dir, err := os.MkdirTemp("", "elsqworker-traces-")
	if err != nil {
		return "", err
	}
	w.TraceDir = dir
	return dir, nil
}

// Run leases and executes jobs until ctx is cancelled. Transient protocol
// failures are absorbed by the client's backoff; a lease that cannot be
// obtained at all just waits for the next poll. Run only returns ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	if w.ckpts == nil {
		if w.Ckpts != nil {
			w.ckpts = w.Ckpts
		} else {
			w.ckpts = LayeredCkpts(ckpt.NewMemStore(), w.Client.CkptStore())
		}
	}
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lease, err := w.Client.Lease(ctx, w.Name)
		if err != nil {
			w.logf("lease: %v", err)
			if !sleepCtx(ctx, w.poll()) {
				return ctx.Err()
			}
			continue
		}
		if lease == nil {
			if !sleepCtx(ctx, w.poll()) {
				return ctx.Err()
			}
			continue
		}
		w.runOne(ctx, lease)
	}
}

// runOne executes a single leased job end to end.
func (w *Worker) runOne(ctx context.Context, lease *LeaseResponse) {
	job, err := lease.Spec.Job()
	if err != nil {
		// A spec this coordinator handed out but this build cannot parse
		// is permanent: retrying on another worker of the same build
		// cannot help.
		w.logf("job %s: bad spec: %v", lease.Key, err)
		_ = w.Client.Fail(ctx, lease.Key, lease.Lease, err.Error(), true)
		return
	}
	if err := w.ensureTrace(ctx, &job); err != nil {
		w.logf("job %s: trace: %v", lease.Key, err)
		_ = w.Client.Fail(ctx, lease.Key, lease.Lease, err.Error(), false)
		return
	}

	// Heartbeat the lease while the simulation runs; a revoked or lost
	// lease cancels the run so the worker frees up promptly.
	jobCtx, cancel := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ttl := time.Duration(lease.TTLMillis) * time.Millisecond
		interval := ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			if !sleepCtx(jobCtx, interval) {
				return
			}
			if err := w.Client.Renew(jobCtx, lease.Key, lease.Lease); err != nil {
				if errors.Is(err, ErrGone) || errors.Is(err, ErrLeaseLost) {
					w.logf("job %s: lease revoked (%v), abandoning", lease.Key, err)
					cancel()
					return
				}
				w.logf("job %s: renew: %v", lease.Key, err)
			}
		}
	}()

	runner := sweep.Runner{Workers: 1, Checkpoints: w.ckpts}
	out, _, err := runner.RunContext(jobCtx, []sweep.Job{job})
	cancel()
	<-hbDone

	switch {
	case jobCtx.Err() != nil && ctx.Err() == nil && err != nil:
		// Lease revoked mid-run: someone else owns the job now; nothing
		// to report.
		return
	case ctx.Err() != nil:
		return
	case err != nil:
		w.logf("job %s: %v", lease.Key, err)
		_ = w.Client.Fail(ctx, lease.Key, lease.Lease, err.Error(), false)
	default:
		if cerr := w.Client.Complete(ctx, lease.Key, lease.Lease, out[0].Result); cerr != nil {
			w.logf("job %s: upload: %v", lease.Key, cerr)
			return
		}
		w.logf("job %s: done (attempt %d)", lease.Key, lease.Attempt)
	}
}

// ensureTrace makes a trace-driven job runnable on this machine: when the
// config's TracePath is absent or does not match the demanded content
// digest, the trace is fetched from the coordinator by digest (verified
// end to end) and the config repointed at the local copy.
func (w *Worker) ensureTrace(ctx context.Context, job *sweep.Job) error {
	digest := job.Config.TraceDigest
	if digest == "" {
		return nil
	}
	if p := job.Config.TracePath; p != "" {
		if t, err := trace.Cached(p); err == nil && t.Meta().Digest == digest {
			return nil // a valid local copy already
		}
	}
	dir, err := w.traceDir()
	if err != nil {
		return err
	}
	path, err := w.Client.FetchTrace(ctx, digest, dir)
	if err != nil {
		return err
	}
	job.Config.TracePath = path
	return nil
}
