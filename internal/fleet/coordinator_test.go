package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// seedSpecs builds n distinct single-bench specs (seeds 1..n).
func seedSpecs(t *testing.T, n int) []JobSpec {
	t.Helper()
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]JobSpec, n)
	for i := range specs {
		cfg := config.Default().WithBudget(1_000, 2_000)
		specs[i] = Spec(sweep.Job{Config: cfg, Bench: prof, Seed: uint64(i + 1)})
	}
	return specs
}

// TestCoordinatorConcurrentOps hammers the coordinator state machine from
// many goroutines — concurrent submissions, leases, renews, completions,
// transient failures and status reads — and requires every sweep to
// resolve. Its real teeth are under `go test -race`, where any unlocked
// state access in the lease table fails the build.
func TestCoordinatorConcurrentOps(t *testing.T) {
	jobs := fleetJobs(t)[:1]
	local, _ := runLocal(t, jobs)
	r := local[0].Result // any valid result satisfies the upload gate

	co := NewCoordinator(Options{MaxAttempts: 4})
	specs := seedSpecs(t, 32)

	// Four submitters race eight specs each (sweeps may interleave).
	var ids [4]string
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := co.Submit(specs[i*8 : (i+1)*8])
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()

	finished := func() bool {
		for _, id := range ids {
			st, ok := co.Status(id)
			if !ok || !st.Finished() {
				return false
			}
		}
		return true
	}

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(i)))
			name := fmt.Sprintf("w%d", i)
			for {
				lr, ok := co.Lease(name)
				if !ok {
					if finished() {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				switch rnd.Intn(10) {
				case 0:
					co.Fail(lr.Key, lr.Lease, "injected transient failure", false)
				case 1:
					co.Renew(lr.Key, lr.Lease)
					co.Complete(lr.Key, lr.Lease, r)
				default:
					co.Complete(lr.Key, lr.Lease, r)
				}
				co.Status(ids[rnd.Intn(len(ids))])
				co.Stats()
			}
		}(i)
	}
	wg.Wait()

	for _, id := range ids {
		st, ok := co.Status(id)
		if !ok {
			t.Fatalf("sweep %s vanished", id)
		}
		if st.Done+st.Failed != st.Total {
			t.Errorf("sweep %s ended unresolved: %+v", id, st)
		}
		if st.Failed > 0 && len(st.Errors) == 0 {
			t.Errorf("sweep %s failed jobs without error samples", id)
		}
	}
	if cs := co.Stats(); cs.Queued != 0 || cs.Leased != 0 {
		t.Errorf("residual work after all sweeps finished: %+v", cs)
	}
}

// TestLeaseExpiryExhaustionFails drives one job through repeated worker
// deaths on an injected clock: each expiry re-dispatches with a higher
// attempt count until MaxAttempts is burned, at which point the job fails
// permanently and the sweep finishes.
func TestLeaseExpiryExhaustionFails(t *testing.T) {
	clock := newFakeClock()
	co := NewCoordinator(Options{LeaseTTL: time.Minute, MaxAttempts: 2, Now: clock.Now})
	sub, err := co.Submit(seedSpecs(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	lr, ok := co.Lease("w0")
	if !ok || lr.Attempt != 1 {
		t.Fatalf("lease 1: ok=%v attempt=%d", ok, lr.Attempt)
	}
	clock.Advance(61 * time.Second)
	co.Expire()

	lr2, ok := co.Lease("w1")
	if !ok || lr2.Attempt != 2 {
		t.Fatalf("lease 2 after expiry: ok=%v attempt=%d", ok, lr2.Attempt)
	}
	if lr2.Key != lr.Key || lr2.Lease == lr.Lease {
		t.Fatal("re-dispatch must reuse the key under a fresh lease token")
	}
	// The expired lease is dead: its renew must be refused.
	if _, err := co.Renew(lr.Key, lr.Lease); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew of expired lease returned %v, want ErrLeaseLost", err)
	}

	clock.Advance(61 * time.Second)
	co.Expire()
	if _, ok := co.Lease("w2"); ok {
		t.Fatal("job dispatched a third time past MaxAttempts")
	}
	st, _ := co.Status(sub.ID)
	if st.Failed != 1 || !st.Finished() {
		t.Fatalf("exhausted job status %+v, want 1 permanent failure", st)
	}
	if len(st.Errors) == 0 {
		t.Error("permanent failure left no error sample")
	}
}

// TestSubmitRejectsBadSpec: a malformed spec poisons nothing — the whole
// submission is refused atomically.
func TestSubmitRejectsBadSpec(t *testing.T) {
	co := NewCoordinator(Options{})
	specs := seedSpecs(t, 2)
	specs[1].Bench = "no-such-bench"
	if _, err := co.Submit(specs); err == nil {
		t.Fatal("submission with an unknown benchmark accepted")
	}
	if _, ok := co.Lease("w0"); ok {
		t.Fatal("rejected submission left work in the queue")
	}
}

// TestCancelDropsPendingRevokesLeased pins the two cancellation paths:
// pending tasks leave the queue immediately, leased ones are revoked at
// their next renew.
func TestCancelDropsPendingRevokesLeased(t *testing.T) {
	co := NewCoordinator(Options{})
	sub, err := co.Submit(seedSpecs(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	lr, ok := co.Lease("w0")
	if !ok {
		t.Fatal("no lease")
	}
	if err := co.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := co.Lease("w1"); ok {
		t.Fatal("cancelled sweep still dispatches pending jobs")
	}
	if _, err := co.Renew(lr.Key, lr.Lease); !errors.Is(err, ErrGone) {
		t.Fatalf("renew of a cancelled job returned %v, want ErrGone", err)
	}
	st, _ := co.Status(sub.ID)
	if !st.Canceled || !st.Finished() {
		t.Fatalf("cancelled sweep status %+v", st)
	}
	// Cancelling twice is idempotent; cancelling the unknown is not found.
	if err := co.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	if err := co.Cancel("s999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown sweep returned %v", err)
	}
}

// TestPutResultResolvesPendingTask: priming the result blob space counts
// as an anonymous completion — a queued task for the key resolves and its
// sweep observes the progress.
func TestPutResultResolvesPendingTask(t *testing.T) {
	jobs := fleetJobs(t)[:1]
	local, _ := runLocal(t, jobs)

	co := NewCoordinator(Options{})
	sub, err := co.Submit([]JobSpec{Spec(jobs[0])})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.PutResult(local[0].Key, local[0].Result); err != nil {
		t.Fatal(err)
	}
	st, _ := co.Status(sub.ID)
	if st.Done != 1 {
		t.Fatalf("primed result did not resolve the task: %+v", st)
	}
	if _, ok := co.Lease("w0"); ok {
		t.Fatal("resolved task still dispatched")
	}
}
