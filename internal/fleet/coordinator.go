package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cpu"
	"repro/internal/sweep"
)

// Default coordinator tuning. LeaseTTL trades re-dispatch latency after a
// worker death against heartbeat traffic; MaxAttempts bounds how often a
// job that keeps killing its workers (or keeps failing transiently) is
// re-dispatched before it is failed permanently.
const (
	DefaultLeaseTTL    = 2 * time.Minute
	DefaultMaxAttempts = 5
	maxErrorSamples    = 8
)

// taskState is the lease state machine of one queued unique job:
//
//	pending --lease--> leased --complete--> done (leaves the task table)
//	   ^                  |  \--fail(permanent or attempts exhausted)--> failed
//	   \---expiry/fail----/
//
// Completions are accepted in any state (at-least-once dispatch makes
// stale-lease results valid compute); expiry and transient failure re-queue
// until MaxAttempts is exhausted.
type taskState int

const (
	taskPending taskState = iota
	taskLeased
)

// task is one unique queued simulation.
type task struct {
	spec     JobSpec
	key      string
	state    taskState
	attempts int
	lease    string
	worker   string
	deadline time.Time
	canceled bool // every owning sweep cancelled; drop on next touch
	sweeps   map[string]struct{}
}

// doneEntry records a resolved unique job: the digest of the accepted
// result (for idempotent duplicate detection), or the permanent failure.
type doneEntry struct {
	digest string
	failed bool
	err    string
}

// sweepRun is the bookkeeping of one submitted sweep: its jobs in
// submission order (duplicates preserved — they fan out like the local
// Runner) and the cancel flag. hits records the keys already resolved at
// submission time — this sweep's cache hits; it is written once under the
// coordinator lock and read-only afterwards.
type sweepRun struct {
	id       string
	specs    []JobSpec
	keys     []string
	hits     map[string]struct{}
	canceled bool
	errs     []string
}

// Options configures a Coordinator.
type Options struct {
	// Results is the authoritative result store; nil defaults to an
	// in-memory cache. Results must outlive the sweeps that reference
	// them (the service pairs the coordinator with a persistent
	// sweep.DiskCache for exactly this reason).
	Results sweep.Cache
	// Ckpts backs the checkpoint blob space; nil disables it.
	Ckpts ckpt.Store
	// Traces backs the trace blob space; nil disables it.
	Traces *TraceStore
	// LeaseTTL and MaxAttempts override the defaults when positive.
	LeaseTTL    time.Duration
	MaxAttempts int
	// Now overrides the clock (tests inject a manual clock to force lease
	// expiry deterministically).
	Now func() time.Time
}

// Coordinator is the fleet's in-process state machine: the job queue, the
// lease table, per-sweep bookkeeping and the artifact stores. All methods
// are safe for concurrent use. It performs no I/O of its own beyond the
// injected stores and owns no goroutines; Server drives lease expiry.
type Coordinator struct {
	results     sweep.Cache
	ckpts       ckpt.Store
	traces      *TraceStore
	leaseTTL    time.Duration
	maxAttempts int
	now         func() time.Time

	mu      sync.Mutex
	tasks   map[string]*task
	queue   []*task // pending tasks, dispatch order
	done    map[string]*doneEntry
	sweeps  map[string]*sweepRun
	nextID  int
	nextSeq int
	stats   CoordStats
	// watch is closed and replaced on every state change; long-poll and
	// stream waiters select on the snapshot they grabbed under the lock.
	watch chan struct{}
}

// NewCoordinator builds a coordinator from opts.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		results:     opts.Results,
		ckpts:       opts.Ckpts,
		traces:      opts.Traces,
		leaseTTL:    opts.LeaseTTL,
		maxAttempts: opts.MaxAttempts,
		now:         opts.Now,
		tasks:       make(map[string]*task),
		done:        make(map[string]*doneEntry),
		sweeps:      make(map[string]*sweepRun),
		watch:       make(chan struct{}),
	}
	if c.results == nil {
		c.results = sweep.NewMemCache()
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = DefaultLeaseTTL
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = DefaultMaxAttempts
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// notifyLocked wakes every waiter observing sweep state. Callers hold mu.
func (c *Coordinator) notifyLocked() {
	close(c.watch)
	c.watch = make(chan struct{})
}

// Watch returns a channel that closes on the next state change. Grab it,
// check the state you care about, then select on the channel.
func (c *Coordinator) Watch() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watch
}

// Submit registers a sweep. Jobs already resolved — in the done table or
// the result store — are counted as done immediately; the rest join the
// global task table (deduplicated by key across sweeps) and the dispatch
// queue. The error is non-nil only for malformed specs, in which case
// nothing is registered.
func (c *Coordinator) Submit(specs []JobSpec) (SubmitResponse, error) {
	type keyed struct {
		spec JobSpec
		key  string
	}
	ks := make([]keyed, len(specs))
	for i, s := range specs {
		if _, err := s.Job(); err != nil {
			return SubmitResponse{}, fmt.Errorf("job %d: %w", i, err)
		}
		ks[i] = keyed{spec: s, key: s.Key()}
	}

	// Probe the result store for unseen keys outside the lock: Get may be
	// a disk read.
	probe := make(map[string]*cpu.Result)
	for _, k := range ks {
		if _, ok := probe[k.key]; ok {
			continue
		}
		if r, ok := c.results.Get(k.key); ok {
			probe[k.key] = r
		} else {
			probe[k.key] = nil
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	run := &sweepRun{id: fmt.Sprintf("s%06d", c.nextID), hits: make(map[string]struct{})}
	resp := SubmitResponse{ID: run.id, Total: len(specs)}
	seen := make(map[string]struct{})
	for _, k := range ks {
		run.specs = append(run.specs, k.spec)
		run.keys = append(run.keys, k.key)
		if _, dup := seen[k.key]; dup {
			continue
		}
		seen[k.key] = struct{}{}
		resp.Unique++
		if d, ok := c.done[k.key]; ok {
			if !d.failed {
				resp.Done++
				run.hits[k.key] = struct{}{}
			}
			continue
		}
		if t, ok := c.tasks[k.key]; ok {
			t.sweeps[run.id] = struct{}{}
			continue
		}
		if r := probe[k.key]; r != nil {
			c.done[k.key] = &doneEntry{digest: sweep.ResultDigest(r)}
			c.stats.CacheHits++
			c.stats.Done++
			resp.Done++
			run.hits[k.key] = struct{}{}
			continue
		}
		t := &task{spec: k.spec, key: k.key, sweeps: map[string]struct{}{run.id: {}}}
		c.tasks[k.key] = t
		c.queue = append(c.queue, t)
	}
	resp.Keys = run.keys
	c.sweeps[run.id] = run
	c.stats.Sweeps++
	c.notifyLocked()
	return resp, nil
}

// Lease grants the next pending job to worker, work-stealing style: any
// idle worker gets whatever is at the head of the queue, including jobs
// re-queued by another worker's lease expiry. ok is false when no work is
// pending.
func (c *Coordinator) Lease(worker string) (LeaseResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	for len(c.queue) > 0 {
		t := c.queue[0]
		c.queue = c.queue[1:]
		if t.state != taskPending || c.tasks[t.key] != t {
			continue // stale queue entry (completed or cancelled while pending)
		}
		if t.canceled {
			delete(c.tasks, t.key)
			continue
		}
		t.state = taskLeased
		t.attempts++
		c.nextSeq++
		t.lease = fmt.Sprintf("L%08d", c.nextSeq)
		t.worker = worker
		t.deadline = c.now().Add(c.leaseTTL)
		return LeaseResponse{
			Key:       t.key,
			Lease:     t.lease,
			Spec:      t.spec,
			TTLMillis: c.leaseTTL.Milliseconds(),
			Attempt:   t.attempts,
		}, true
	}
	return LeaseResponse{}, false
}

// Lease/renew error sentinels. ErrGone means the job no longer wants this
// worker's work (done, failed, or cancelled); ErrLeaseLost means the lease
// expired and the job was re-dispatched. Either way the worker abandons
// the run.
var (
	ErrGone      = errors.New("fleet: task gone")
	ErrLeaseLost = errors.New("fleet: lease lost")
	ErrNotFound  = errors.New("fleet: not found")
	ErrConflict  = errors.New("fleet: conflicting duplicate result")
)

// Renew extends a held lease (worker heartbeat).
func (c *Coordinator) Renew(key, lease string) (RenewResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	t, ok := c.tasks[key]
	if !ok {
		return RenewResponse{}, ErrGone
	}
	if t.canceled {
		delete(c.tasks, t.key)
		c.notifyLocked()
		return RenewResponse{}, ErrGone
	}
	if t.state != taskLeased || t.lease != lease {
		return RenewResponse{}, ErrLeaseLost
	}
	t.deadline = c.now().Add(c.leaseTTL)
	return RenewResponse{TTLMillis: c.leaseTTL.Milliseconds()}, nil
}

// Complete absorbs a result upload. Any lease state is accepted — under
// at-least-once dispatch a stale-lease result is still valid compute — and
// re-uploads are idempotent when the result digest matches the accepted
// one. A digest conflict on a deterministic simulation means corruption
// somewhere; the first result is kept and ErrConflict returned. duplicate
// reports an idempotent re-upload.
func (c *Coordinator) Complete(key, lease string, r *cpu.Result) (duplicate bool, err error) {
	if !validResult(r) {
		return false, fmt.Errorf("fleet: complete %s: implausible result", key)
	}
	digest := sweep.ResultDigest(r)

	c.mu.Lock()
	_, hasTask := c.tasks[key]
	if d, ok := c.done[key]; ok && !d.failed {
		defer c.mu.Unlock()
		if d.digest != digest {
			c.stats.Conflicts++
			return false, ErrConflict
		}
		c.stats.Duplicates++
		return true, nil
	}
	if !hasTask {
		c.mu.Unlock()
		return false, ErrNotFound
	}
	// Accepted regardless of lease or cancellation state: the digest is
	// the integrity check, and even a cancelled job's result is worth
	// keeping — the next submission of the same point becomes an instant
	// hit.
	delete(c.tasks, key)
	c.done[key] = &doneEntry{digest: digest}
	c.stats.Completes++
	c.stats.Done++
	c.notifyLocked()
	c.mu.Unlock()

	// Store outside the lock (may be a disk write).
	c.results.Put(key, r)
	return false, nil
}

// Fail records a worker-reported failure. Transient failures re-queue the
// job (at the front, so a healthy worker retries it promptly) until
// MaxAttempts dispatches have been burned; permanent ones fail it
// immediately.
func (c *Coordinator) Fail(key, lease, msg string, permanent bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tasks[key]
	if !ok {
		return ErrGone
	}
	if t.state == taskLeased && t.lease != lease {
		return ErrLeaseLost
	}
	if t.canceled {
		delete(c.tasks, key)
		c.notifyLocked()
		return nil
	}
	if permanent || t.attempts >= c.maxAttempts {
		c.failLocked(t, msg)
	} else {
		t.state = taskPending
		t.lease = ""
		c.queue = append([]*task{t}, c.queue...)
	}
	c.notifyLocked()
	return nil
}

// failLocked resolves t as permanently failed and records the message on
// every owning sweep.
func (c *Coordinator) failLocked(t *task, msg string) {
	delete(c.tasks, t.key)
	c.done[t.key] = &doneEntry{failed: true, err: msg}
	c.stats.Failed++
	for id := range t.sweeps {
		if run, ok := c.sweeps[id]; ok && len(run.errs) < maxErrorSamples {
			run.errs = append(run.errs, fmt.Sprintf("%s: %s", t.key[:12], msg))
		}
	}
}

// Expire re-queues every task whose lease deadline has passed (the
// at-least-once re-dispatch path). Server calls it on a ticker; tests call
// it directly after advancing their injected clock.
func (c *Coordinator) Expire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
}

func (c *Coordinator) expireLocked() {
	now := c.now()
	changed := false
	for _, t := range c.tasks {
		if t.state != taskLeased || t.deadline.After(now) {
			continue
		}
		// Lease expired: the worker is presumed dead or partitioned.
		c.stats.Expired++
		changed = true
		if t.canceled {
			delete(c.tasks, t.key)
			continue
		}
		if t.attempts >= c.maxAttempts {
			c.failLocked(t, fmt.Sprintf("lease expired %d times", t.attempts))
			continue
		}
		t.state = taskPending
		t.lease = ""
		c.queue = append([]*task{t}, c.queue...)
	}
	if changed {
		c.notifyLocked()
	}
}

// Cancel marks a sweep cancelled. Pending tasks owned only by cancelled
// sweeps are dropped from the queue; leased ones are revoked at their next
// renew, which frees the worker promptly (the worker cancels its
// simulation context on ErrGone).
func (c *Coordinator) Cancel(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	run, ok := c.sweeps[id]
	if !ok {
		return ErrNotFound
	}
	if run.canceled {
		return nil
	}
	run.canceled = true
	for _, t := range c.tasks {
		if _, owns := t.sweeps[id]; !owns {
			continue
		}
		live := false
		for sid := range t.sweeps {
			if s, ok := c.sweeps[sid]; ok && !s.canceled {
				live = true
				break
			}
		}
		if !live {
			t.canceled = true
			if t.state == taskPending {
				delete(c.tasks, t.key)
			}
		}
	}
	c.notifyLocked()
	return nil
}

// Status reports a sweep's live progress.
func (c *Coordinator) Status(id string) (SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(id)
}

func (c *Coordinator) statusLocked(id string) (SweepStatus, bool) {
	run, ok := c.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	st := SweepStatus{ID: id, Total: len(run.keys), Canceled: run.canceled, Errors: run.errs}
	for _, k := range run.keys {
		if d, ok := c.done[k]; ok {
			if d.failed {
				st.Failed++
			} else {
				st.Done++
			}
		}
	}
	return st, true
}

// WaitChange blocks until the sweep's progress counts differ from prev,
// the sweep finishes, the timeout elapses, or cancel fires; it returns the
// current status either way.
func (c *Coordinator) WaitChange(id string, prev SweepStatus, timeout time.Duration, cancel <-chan struct{}) (SweepStatus, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		st, ok := c.statusLocked(id)
		w := c.watch
		c.mu.Unlock()
		changed := st.Done != prev.Done || st.Failed != prev.Failed || st.Canceled != prev.Canceled
		if !ok || st.Finished() || changed {
			return st, ok
		}
		select {
		case <-w:
		case <-deadline.C:
			return st, ok
		case <-cancel:
			return st, ok
		}
	}
}

// Results assembles a sweep's outcomes in submission order — the same
// canonical order a local sweep.Runner returns — with per-job results
// fetched from the result store. ok is false for an unknown sweep; a
// non-nil error means a done job's result has been evicted from the store
// (the store must outlive the sweeps referencing it).
func (c *Coordinator) Results(id string) (ResultsResponse, bool, error) {
	c.mu.Lock()
	run, ok := c.sweeps[id]
	if !ok {
		c.mu.Unlock()
		return ResultsResponse{}, false, nil
	}
	specs := run.specs
	keys := append([]string(nil), run.keys...)
	hits := run.hits
	entries := make([]*doneEntry, len(keys))
	for i, k := range keys {
		entries[i] = c.done[k]
	}
	c.mu.Unlock()

	resp := ResultsResponse{}
	resp.Stats.Total = len(keys)
	seen := make(map[string]struct{})
	results := make(map[string]*cpu.Result)
	for i, k := range keys {
		env := OutcomeEnvelope{Spec: specs[i], Key: k}
		switch d := entries[i]; {
		case d == nil:
			env.Err = "unresolved"
		case d.failed:
			env.Err = d.err
		default:
			_, env.CacheHit = hits[k]
			r, cached := results[k]
			if !cached {
				var ok bool
				if r, ok = c.results.Get(k); !ok {
					return ResultsResponse{}, true, fmt.Errorf("fleet: result %s evicted from store", k)
				}
				results[k] = r
			}
			env.Result = r
		}
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			resp.Stats.Unique++
			if _, hit := hits[k]; hit {
				resp.Stats.CacheHits++
			} else {
				resp.Stats.Ran++
			}
		}
		resp.Outcomes = append(resp.Outcomes, env)
	}
	return resp, true, nil
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Queued = len(c.queue)
	leased := 0
	for _, t := range c.tasks {
		if t.state == taskLeased {
			leased++
		}
	}
	s.Leased = leased
	return s
}

// GetResult serves the result blob space.
func (c *Coordinator) GetResult(key string) (*cpu.Result, bool) {
	return c.results.Get(key)
}

// PutResult primes the result blob space (an anonymous, lease-less
// completion: if a task for the key is queued or leased it resolves, and
// waiting sweeps observe it).
func (c *Coordinator) PutResult(key string, r *cpu.Result) error {
	_, err := c.Complete(key, "", r)
	if err == ErrNotFound {
		// No task wants it; cache it anyway.
		if !validResult(r) {
			return fmt.Errorf("fleet: put result %s: implausible result", key)
		}
		c.results.Put(key, r)
		c.mu.Lock()
		if _, ok := c.done[key]; !ok {
			c.done[key] = &doneEntry{digest: sweep.ResultDigest(r)}
		}
		c.mu.Unlock()
		return nil
	}
	return err
}

// Ckpts exposes the checkpoint store backing the ckpt blob space (nil when
// the space is disabled).
func (c *Coordinator) Ckpts() ckpt.Store { return c.ckpts }

// Traces exposes the trace store backing the trace blob space (nil when
// the space is disabled).
func (c *Coordinator) Traces() *TraceStore { return c.traces }
