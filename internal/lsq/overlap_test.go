// The byte-wise forwarding overlap matrix: every legal (store size/align ×
// load size/align) footprint pair inside a 16-byte window — exact matches,
// containment, partial low/high overlap and adjacent non-overlap — driven
// through each scheme's load search and certified against the differential
// oracle. This is the table test behind the forwarding-provenance contract:
// full coverage forwards, partial coverage waits for the store's commit and
// re-reads, disjoint footprints read the cache untouched.
package lsq_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/oracle"
)

const (
	windowBase  = uint64(0x1000)
	windowBytes = 16
	storeCommit = int64(100)
	loadIssue   = int64(50)
	loadCommit  = int64(110)
)

// cell is one matrix entry: a store footprint against a load footprint.
type cell struct {
	stAddr uint64
	stSize uint8
	ldAddr uint64
	ldSize uint8
}

func (c cell) String() string {
	return fmt.Sprintf("st %d@+%d / ld %d@+%d", c.stSize, c.stAddr-windowBase, c.ldSize, c.ldAddr-windowBase)
}

// matrix enumerates every legal aligned power-of-two footprint pair in the
// window: 30 store placements x 30 load placements.
func matrix() []cell {
	var placements []struct {
		addr uint64
		size uint8
	}
	for _, size := range []uint8{1, 2, 4, 8} {
		for off := uint64(0); off+uint64(size) <= windowBytes; off += uint64(size) {
			placements = append(placements, struct {
				addr uint64
				size uint8
			}{windowBase + off, size})
		}
	}
	var out []cell
	for _, st := range placements {
		for _, ld := range placements {
			out = append(out, cell{st.addr, st.size, ld.addr, ld.size})
		}
	}
	return out
}

// schemeUnderTest drives one LSQ organisation's HL load-search path.
type schemeUnderTest struct {
	name string
	mk   func() lsq.Scheme
}

func schemesUnderTest() []schemeUnderTest {
	elsq := func(mut func(*config.Config)) func() lsq.Scheme {
		return func() lsq.Scheme {
			cfg := config.Default()
			if mut != nil {
				mut(&cfg)
			}
			l1 := mem.NewCache(cfg.L1)
			return core.New(&cfg, noc.NewAnalytic(noc.NewBus(cfg.BusOneWay), noc.NewMesh(4, 4, cfg.MeshHop)), l1, nil)
		}
	}
	return []schemeUnderTest{
		{"central", func() lsq.Scheme { return lsq.NewCentral(noc.NewAnalytic(noc.NewBus(4), noc.NewMesh(4, 4, 1))) }},
		{"conventional", func() lsq.Scheme { return lsq.NewConventional(false) }},
		{"elsq-hash", elsq(nil)},
		{"elsq-line", elsq(func(c *config.Config) { c.ERT = config.ERTLine })},
	}
}

func TestForwardingOverlapMatrix(t *testing.T) {
	cells := matrix()
	if len(cells) != 30*30 {
		t.Fatalf("matrix has %d cells, want 900", len(cells))
	}
	for _, s := range schemesUnderTest() {
		t.Run(s.name, func(t *testing.T) {
			scheme := s.mk()
			for _, c := range cells {
				ix := lsq.NewStoreIndex()
				st := ix.NewOp()
				st.Seq, st.Store, st.Addr, st.Size = 1, true, c.stAddr, c.stSize
				st.AddrReady, st.DataReady, st.Commit = 5, 6, storeCommit
				st.Epoch = lsq.HLEpoch
				ix.Add(st)

				ld := &lsq.MemOp{Seq: 9, Addr: c.ldAddr, Size: c.ldSize, Epoch: lsq.HLEpoch, Issued: loadIssue}
				res := scheme.LoadIssue(ld, ix, loadIssue)

				mask := isa.OverlapMask(c.stAddr, c.stSize, c.ldAddr, c.ldSize)
				covers := st.Covers(ld)
				switch {
				case mask == 0:
					if res.Forwarded || res.Partial {
						t.Fatalf("%s: disjoint footprints matched: %+v", c, res)
					}
				case covers:
					if !res.Forwarded || res.Source != st {
						t.Fatalf("%s: covering store did not forward: %+v", c, res)
					}
					if mask != isa.FullMask(c.ldSize) {
						t.Fatalf("%s: covering store mask %#x not full", c, mask)
					}
				default:
					if !res.Partial || res.PartialStore != st {
						t.Fatalf("%s: partial overlap not detected: %+v", c, res)
					}
				}

				// Certify the cell's provenance against the oracle, exactly
				// as the pipeline model would report it.
				ck := oracle.New(0)
				ck.StoreCommitted(st)
				committed := &lsq.MemOp{Seq: 9, Addr: c.ldAddr, Size: c.ldSize, Commit: loadCommit}
				switch {
				case res.Forwarded:
					committed.FwdSeq, committed.FwdMask = st.Seq, mask
					committed.ReadAt = loadIssue
				case res.Partial:
					committed.ReadAt = st.Commit // wait for the store, re-read
				default:
					committed.ReadAt = loadIssue
				}
				ck.LoadCommitted(committed)
				if err := ck.Err(); err != nil {
					t.Fatalf("%s: oracle rejected the scheme's provenance: %v", c, err)
				}

				// Sensitivity control: for overlapping footprints a stale
				// issue-time read with no forwarding must be rejected.
				if mask != 0 {
					bad := oracle.New(0)
					bad.StoreCommitted(st)
					badLd := &lsq.MemOp{Seq: 9, Addr: c.ldAddr, Size: c.ldSize, Commit: loadCommit, ReadAt: loadIssue}
					bad.LoadCommitted(badLd)
					if bad.Err() == nil {
						t.Fatalf("%s: oracle accepted a stale un-forwarded read", c)
					}
				}
			}
		})
	}
}
