package lsq

import (
	"repro/internal/noc"
	"repro/internal/stats"
)

// Central is the idealised unlimited-size, single-cycle centralized LSQ of
// Section 5.3, located in the Cache Processor. Loads executing in the Memory
// Processor pay the CP<->MP round-trip for every search; the queue itself
// never filters, stalls, or overflows.
type Central struct {
	fab noc.Fabric
	c   *stats.Counters

	cHLSQ, cHLLQ, cRoundtrip *uint64
}

// NewCentral builds the idealised queue over the given interconnect fabric
// (searches from the Memory Processor pay its CP<->MP round trip).
func NewCentral(fab noc.Fabric) *Central {
	s := &Central{fab: fab, c: stats.NewCounters()}
	s.cHLSQ = s.c.Handle("hl_sq")
	s.cHLLQ = s.c.Handle("hl_lq")
	s.cRoundtrip = s.c.Handle("roundtrip")
	return s
}

// Name implements Scheme.
func (s *Central) Name() string { return "central" }

// LoadIssue implements Scheme: one single-cycle search of the whole window;
// MP-resident loads pay a bus round trip.
func (s *Central) LoadIssue(ld *MemOp, ix *StoreIndex, t int64) LoadResult {
	*s.cHLSQ++ // the central queue is counted as the HL structure
	var extra int64
	if ld.LowLoc {
		extra = s.fab.BusRoundTrip(t) - t
		*s.cRoundtrip++
	}
	match, _ := FindForward(ld, ix.Candidates(ld, t), t)
	ld.UnresolvedOlderStore = ix.Unresolved(ld, t)
	res := Resolve(ld, match, t+extra)
	res.ExtraLatency = extra
	return res
}

// StoreAddrReady implements Scheme.
func (s *Central) StoreAddrReady(st *MemOp, younger []*MemOp, t int64) StoreResult {
	*s.cHLLQ++
	if st.LowLoc {
		*s.cRoundtrip++
	}
	if ld := FindViolation(st, younger, t); ld != nil {
		return StoreResult{Violation: true, ViolatingLoad: ld}
	}
	return StoreResult{}
}

// Migrate implements Scheme (no structure to maintain).
func (s *Central) Migrate(op *MemOp, t int64) int64 { return 0 }

// AddrKnownInLL implements Scheme.
func (s *Central) AddrKnownInLL(op *MemOp, t int64) bool { return false }

// EpochCommitted implements Scheme.
func (s *Central) EpochCommitted(epoch int, t int64) {}

// EpochSquashed implements Scheme.
func (s *Central) EpochSquashed(epoch int) {}

// Counters implements Scheme.
func (s *Central) Counters() *stats.Counters { return s.c }

// Conventional is the finite age-indexed CAM LSQ of the OoO-64 baseline:
// every load searches the store queue, every store searches the load queue,
// both at single-cycle latency. Capacity back-pressure is enforced by the
// pipeline model from the configured queue sizes. With NoLQ set the load
// queue is removed (OoO-64-SVW): stores skip their violation search and
// loads are checked by re-execution instead.
type Conventional struct {
	// NoLQ removes the associative load queue (SVW composition).
	NoLQ bool
	c    *stats.Counters

	cHLSQ, cHLLQ *uint64
}

// NewConventional builds the OoO-64 queue model.
func NewConventional(noLQ bool) *Conventional {
	s := &Conventional{NoLQ: noLQ, c: stats.NewCounters()}
	s.cHLSQ = s.c.Handle("hl_sq")
	s.cHLLQ = s.c.Handle("hl_lq")
	return s
}

// Name implements Scheme.
func (s *Conventional) Name() string {
	if s.NoLQ {
		return "conventional-svw"
	}
	return "conventional"
}

// LoadIssue implements Scheme.
func (s *Conventional) LoadIssue(ld *MemOp, ix *StoreIndex, t int64) LoadResult {
	*s.cHLSQ++
	match, _ := FindForward(ld, ix.Candidates(ld, t), t)
	ld.UnresolvedOlderStore = ix.Unresolved(ld, t)
	return Resolve(ld, match, t)
}

// StoreAddrReady implements Scheme.
func (s *Conventional) StoreAddrReady(st *MemOp, younger []*MemOp, t int64) StoreResult {
	if s.NoLQ {
		return StoreResult{} // violations caught by commit-time re-execution
	}
	*s.cHLLQ++
	if ld := FindViolation(st, younger, t); ld != nil {
		return StoreResult{Violation: true, ViolatingLoad: ld}
	}
	return StoreResult{}
}

// Migrate implements Scheme.
func (s *Conventional) Migrate(op *MemOp, t int64) int64 { return 0 }

// AddrKnownInLL implements Scheme.
func (s *Conventional) AddrKnownInLL(op *MemOp, t int64) bool { return false }

// EpochCommitted implements Scheme.
func (s *Conventional) EpochCommitted(epoch int, t int64) {}

// EpochSquashed implements Scheme.
func (s *Conventional) EpochSquashed(epoch int) {}

// Counters implements Scheme.
func (s *Conventional) Counters() *stats.Counters { return s.c }
