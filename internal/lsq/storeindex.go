package lsq

// StoreIndex tracks the in-flight store window and answers the queries every
// disambiguation scheme needs in O(candidates) instead of O(window): the
// older overlapping stores for a load (via an 8-byte-block address index;
// with naturally aligned accesses of at most 8 bytes, overlap implies a
// shared block) and the presence of older address-unresolved stores.
//
// The index is an oracle over the simulated program: it knows each store's
// eventual address even before its simulated AddrReady cycle. Queries expose
// only hardware-visible state by filtering on AddrReady and Commit against
// the query cycle, except CandidatesOracle, which the pipeline model uses to
// detect true ordering violations.
type StoreIndex struct {
	byBlock map[uint64][]*MemOp
	// lateAddr holds stores whose address resolves long after dispatch
	// (the only ones that can be "unresolved" at a later load's issue,
	// beyond the handful of just-dispatched stores tracked in recent).
	lateAddr []*MemOp
	// recent is a short ring of the youngest stores, whose addresses may
	// not have resolved yet relative to a load issued immediately after.
	recent [16]*MemOp
	rpos   int
	adds   uint64
}

// NewStoreIndex returns an empty index.
func NewStoreIndex() *StoreIndex {
	return &StoreIndex{byBlock: make(map[uint64][]*MemOp)}
}

func blockOf(addr uint64) uint64 { return addr >> 3 }

// Add registers a processed store (all its times already computed).
func (ix *StoreIndex) Add(st *MemOp) {
	if !st.Store {
		panic("lsq: StoreIndex.Add of a load")
	}
	b := blockOf(st.Addr)
	ix.byBlock[b] = append(ix.byBlock[b], st)
	if st.AddrReady > st.Dispatch+8 {
		ix.lateAddr = append(ix.lateAddr, st)
	}
	ix.recent[ix.rpos] = st
	ix.rpos = (ix.rpos + 1) % len(ix.recent)
	ix.adds++
	if ix.adds%4096 == 0 {
		ix.compact()
	}
}

// compact drops long-committed entries so memory stays bounded by the
// window size. An entry is dropped only when its commit is far behind the
// youngest dispatch, so slightly out-of-order query times remain safe.
func (ix *StoreIndex) compact() {
	var horizon int64
	for _, sts := range ix.byBlock {
		for _, st := range sts {
			if st.Dispatch > horizon {
				horizon = st.Dispatch
			}
		}
	}
	horizon -= 1 << 14
	for b, sts := range ix.byBlock {
		kept := sts[:0]
		for _, st := range sts {
			if st.Commit == 0 || st.Commit > horizon {
				kept = append(kept, st)
			}
		}
		if len(kept) == 0 {
			delete(ix.byBlock, b)
		} else {
			ix.byBlock[b] = kept
		}
	}
	keptLate := ix.lateAddr[:0]
	for _, st := range ix.lateAddr {
		if st.Commit == 0 || st.Commit > horizon {
			keptLate = append(keptLate, st)
		}
	}
	ix.lateAddr = keptLate
}

// Candidates returns the older stores overlapping ld that are in flight at
// t with addresses known to the hardware by t, ascending by age.
func (ix *StoreIndex) Candidates(ld *MemOp, t int64) []*MemOp {
	var out []*MemOp
	for _, st := range ix.byBlock[blockOf(ld.Addr)] {
		if st.Seq < ld.Seq && st.InFlightAt(t) && st.AddrReady <= t && st.Overlaps(ld) {
			out = append(out, st)
		}
	}
	return out
}

// CandidatesOracle returns every older in-flight store overlapping ld at t
// regardless of address resolution — the ground truth the pipeline model
// uses to detect store→load ordering violations.
func (ix *StoreIndex) CandidatesOracle(ld *MemOp, t int64) []*MemOp {
	var out []*MemOp
	for _, st := range ix.byBlock[blockOf(ld.Addr)] {
		if st.Seq < ld.Seq && st.InFlightAt(t) && st.Overlaps(ld) {
			out = append(out, st)
		}
	}
	return out
}

// Unresolved reports whether any store older than ld and in flight at t had
// an unknown address at t (the no-unresolved-store-filter input).
func (ix *StoreIndex) Unresolved(ld *MemOp, t int64) bool {
	for _, st := range ix.lateAddr {
		if st.Seq < ld.Seq && st.InFlightAt(t) && st.AddrReady > t {
			return true
		}
	}
	for _, st := range ix.recent {
		if st != nil && st.Seq < ld.Seq && st.InFlightAt(t) && st.AddrReady > t {
			return true
		}
	}
	return false
}
