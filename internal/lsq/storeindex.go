package lsq

// StoreIndex tracks the in-flight store window and answers the queries every
// disambiguation scheme needs in O(candidates) instead of O(window): the
// older overlapping stores for a load (via an 8-byte-block address index;
// with naturally aligned accesses of at most 8 bytes, overlap implies a
// shared block) and the presence of older address-unresolved stores.
//
// The index is an oracle over the simulated program: it knows each store's
// eventual address even before its simulated AddrReady cycle. Queries expose
// only hardware-visible state by filtering on AddrReady and Commit against
// the query cycle, except CandidatesOracle, which the pipeline model uses to
// detect true ordering violations.
//
// The index owns the store records' storage: the pipeline model obtains each
// store's MemOp from NewOp and the index recycles it once compaction retires
// it, and stores of one block are chained intrusively through the records
// (youngest first), so the steady-state per-store path performs no heap
// allocation. Candidate query results are returned in scratch slices owned
// by the index and are only valid until the next call of the same query.
type StoreIndex struct {
	// buckets is a fixed open-hash table of intrusive store chains,
	// youngest first, indexed by hashed 8-byte block. Blocks that collide
	// share a chain and are told apart by the per-op block check in the
	// queries — pure array writes on Add, no map machinery on the
	// per-store path. The table is sized so the live window (bounded by
	// the compaction horizon) keeps chains near length one.
	buckets []*MemOp
	// lateAddr holds stores whose address resolves long after dispatch
	// (the only ones that can be "unresolved" at a later load's issue,
	// beyond the handful of just-dispatched stores tracked in recent).
	lateAddr []*MemOp
	// recent is a short ring of the youngest stores, whose addresses may
	// not have resolved yet relative to a load issued immediately after.
	// Soundness of Unresolved requires the ring and lateSlack to compose: a
	// store evicted from the ring has at least len(recent) younger stores,
	// so any load that could still query it dispatched at least
	// len(recent)/FetchWidth cycles later and issued at least one cycle
	// after that — by which point every store with AddrReady within
	// Dispatch+lateSlack has resolved, provided lateSlack <=
	// len(recent)/FetchWidth (TuneLateSlack derives it so).
	recent [64]*MemOp
	rpos   int
	adds   uint64
	// lateSlack is the dispatch-to-AddrReady margin below which a store is
	// tracked only by the recent ring (see recent). Stores resolving later
	// than Dispatch+lateSlack go to lateAddr.
	lateSlack int64
	// maxDispatch is the largest dispatch cycle ever Added. Dropped entries
	// always dispatched (and committed) far behind it, so it equals the
	// maximum over the live entries, without a scan.
	maxDispatch int64
	// lateMax is the largest AddrReady ever appended to lateAddr. When it
	// is <= the query time no lateAddr entry can satisfy AddrReady > t, so
	// Unresolved skips the scan entirely — the common case once a phase's
	// address-producing misses drain.
	lateMax int64

	// freeOps recycles MemOps dropped by compact. Entries dropped by
	// compact committed at least a full horizon (1<<14 cycles) before the
	// youngest dispatch, so they are long out of every query window and —
	// being far older than the 16-entry recent ring — cannot alias a live
	// reference.
	freeOps []*MemOp

	candScratch   []*MemOp
	oracleScratch []*MemOp
}

// storeIndexBucketBits sizes the bucket table (1<<bits buckets). The
// compaction horizon bounds live stores to a few thousand, so chains stay
// near length one.
const storeIndexBucketBits = 14

// NewStoreIndex returns an empty index.
func NewStoreIndex() *StoreIndex {
	return NewStoreIndexIn(make([]*MemOp, 1<<storeIndexBucketBits))
}

// StoreIndexBuckets returns the bucket-table length every StoreIndex uses,
// the size a caller must allocate per lane when backing indexes with
// NewStoreIndexIn.
func StoreIndexBuckets() int { return 1 << storeIndexBucketBits }

// NewStoreIndexIn is NewStoreIndex over a caller-provided bucket table:
// buckets must hold exactly StoreIndexBuckets() nil entries and must not
// back another index. The batch engine stripes every lane's table into one
// shared slab with it.
func NewStoreIndexIn(buckets []*MemOp) *StoreIndex {
	if len(buckets) != 1<<storeIndexBucketBits {
		panic("lsq: store-index bucket backing size mismatch")
	}
	return &StoreIndex{
		buckets:   buckets,
		lateSlack: 8,
	}
}

// SeedPool pre-populates the record-recycling pool with MemOps carved from
// ops, so the index's steady-state store window draws from one caller-
// placed slab instead of growing the heap a record at a time. Call it only
// on a fresh index; ops must not be shared with another index.
func (ix *StoreIndex) SeedPool(ops []MemOp) {
	for i := range ops {
		ix.freeOps = append(ix.freeOps, &ops[i])
	}
}

// TuneLateSlack sizes the dispatch-to-AddrReady margin below which a store
// is tracked only by the recent ring, for a pipeline fetching fetchWidth
// instructions per cycle. Soundness of Unresolved requires slack <=
// len(recent)/fetchWidth (see the recent field), which this derives from
// the ring's actual length; the result is clamped to [1, 8] — 8 is the
// precision sweet spot, lower values only grow lateAddr.
func (ix *StoreIndex) TuneLateSlack(fetchWidth int) {
	if fetchWidth < 1 {
		fetchWidth = 1
	}
	slack := int64(len(ix.recent) / fetchWidth)
	if slack < 1 {
		slack = 1
	}
	if slack > 8 {
		slack = 8
	}
	ix.lateSlack = slack
}

func blockOf(addr uint64) uint64 { return addr >> 3 }

// bucketOf hashes a block to its bucket (Fibonacci hashing).
func bucketOf(b uint64) int {
	return int((b * 0x9E3779B97F4A7C15) >> (64 - storeIndexBucketBits))
}

// NewOp returns a zeroed MemOp for a store that will be Added to the index.
// The record is recycled after the store retires from the index; callers
// must not retain it past that point (the simulator's program-order
// processing guarantees this: all uses of a store finish within its
// in-flight window).
func (ix *StoreIndex) NewOp() *MemOp {
	if n := len(ix.freeOps); n > 0 {
		op := ix.freeOps[n-1]
		ix.freeOps = ix.freeOps[:n-1]
		*op = MemOp{}
		return op
	}
	return &MemOp{}
}

// Add registers a processed store (all its times already computed).
func (ix *StoreIndex) Add(st *MemOp) {
	if !st.Store {
		panic("lsq: StoreIndex.Add of a load")
	}
	i := bucketOf(blockOf(st.Addr))
	st.blockNext = ix.buckets[i]
	ix.buckets[i] = st
	if st.Dispatch > ix.maxDispatch {
		ix.maxDispatch = st.Dispatch
	}
	if st.AddrReady > st.Dispatch+ix.lateSlack {
		ix.lateAddr = append(ix.lateAddr, st)
		if st.AddrReady > ix.lateMax {
			ix.lateMax = st.AddrReady
		}
	}
	ix.recent[ix.rpos] = st
	ix.rpos = (ix.rpos + 1) % len(ix.recent)
	ix.adds++
	// Compact often enough that per-block chains stay short: the criterion
	// is purely horizon-based, so a higher frequency only retires entries
	// the moment they become eligible and never changes query results.
	if ix.adds%1024 == 0 {
		ix.compact()
	}
}

// compact drops long-committed entries so memory stays bounded by the
// window size. An entry is dropped only when its commit is far behind the
// youngest dispatch, so slightly out-of-order query times remain safe.
func (ix *StoreIndex) compact() {
	horizon := ix.maxDispatch - 1<<14
	for i, head := range ix.buckets {
		if head == nil {
			continue
		}
		var kept, tail *MemOp
		for st := head; st != nil; {
			next := st.blockNext
			if st.Commit == 0 || st.Commit > horizon {
				if tail == nil {
					kept = st
				} else {
					tail.blockNext = st
				}
				tail = st
				st.blockNext = nil
			} else {
				st.blockNext = nil
				ix.freeOps = append(ix.freeOps, st)
			}
			st = next
		}
		ix.buckets[i] = kept
	}
	// A late-address store stays relevant to Unresolved only while its
	// address could still be unknown at a feasible query time: queries run
	// at most a horizon behind the youngest dispatch, so once AddrReady
	// falls behind the horizon the entry can never report true again and
	// the per-load scan stays short.
	keptLate := ix.lateAddr[:0]
	ix.lateMax = 0
	for _, st := range ix.lateAddr {
		if (st.Commit == 0 || st.Commit > horizon) && st.AddrReady > horizon {
			keptLate = append(keptLate, st)
			if st.AddrReady > ix.lateMax {
				ix.lateMax = st.AddrReady
			}
		}
	}
	ix.lateAddr = keptLate
}

// Candidates returns the older stores overlapping ld that are in flight at
// t with addresses known to the hardware by t, ascending by age. The
// returned slice is scratch storage owned by the index, valid until the
// next Candidates call.
func (ix *StoreIndex) Candidates(ld *MemOp, t int64) []*MemOp {
	out := ix.candScratch[:0]
	b := blockOf(ld.Addr)
	for st := ix.buckets[bucketOf(b)]; st != nil; st = st.blockNext {
		if blockOf(st.Addr) == b && st.Seq < ld.Seq && st.InFlightAt(t) && st.AddrReady <= t && st.Overlaps(ld) {
			out = append(out, st)
		}
	}
	reverseOps(out)
	ix.candScratch = out
	return out
}

// reverseOps flips a chain walk (youngest first) into ascending age.
func reverseOps(ops []*MemOp) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}

// CandidatesOracle returns every older in-flight store overlapping ld at t
// regardless of address resolution — the ground truth the pipeline model
// uses to detect store→load ordering violations. The returned slice is
// scratch storage owned by the index, valid until the next
// CandidatesOracle call.
func (ix *StoreIndex) CandidatesOracle(ld *MemOp, t int64) []*MemOp {
	out := ix.oracleScratch[:0]
	b := blockOf(ld.Addr)
	for st := ix.buckets[bucketOf(b)]; st != nil; st = st.blockNext {
		if blockOf(st.Addr) == b && st.Seq < ld.Seq && st.InFlightAt(t) && st.Overlaps(ld) {
			out = append(out, st)
		}
	}
	reverseOps(out)
	ix.oracleScratch = out
	return out
}

// Unresolved reports whether any store older than ld and in flight at t had
// an unknown address at t (the no-unresolved-store-filter input).
func (ix *StoreIndex) Unresolved(ld *MemOp, t int64) bool {
	if ix.lateMax > t {
		for _, st := range ix.lateAddr {
			if st.Seq < ld.Seq && st.InFlightAt(t) && st.AddrReady > t {
				return true
			}
		}
	}
	for _, st := range ix.recent {
		if st != nil && st.Seq < ld.Seq && st.InFlightAt(t) && st.AddrReady > t {
			return true
		}
	}
	return false
}
