package lsq

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

func st(seq uint64, addr uint64, size uint8, addrReady, dataReady, commit int64) *MemOp {
	return &MemOp{Seq: seq, Store: true, Addr: addr, Size: size,
		AddrReady: addrReady, DataReady: dataReady, Commit: commit}
}

func ld(seq uint64, addr uint64, size uint8) *MemOp {
	return &MemOp{Seq: seq, Addr: addr, Size: size}
}

func TestInFlightAt(t *testing.T) {
	op := &MemOp{}
	if !op.InFlightAt(100) {
		t.Error("uncommitted op not in flight")
	}
	op.Commit = 50
	if op.InFlightAt(50) || op.InFlightAt(60) {
		t.Error("committed op still in flight")
	}
	if !op.InFlightAt(49) {
		t.Error("op not in flight before commit")
	}
}

func TestCovers(t *testing.T) {
	s := st(1, 100, 8, 0, 0, 0)
	if !s.Covers(ld(2, 100, 8)) || !s.Covers(ld(2, 104, 4)) {
		t.Error("full coverage not detected")
	}
	if s.Covers(ld(2, 104, 8)) {
		t.Error("partial overlap treated as covering")
	}
}

func TestFindForwardYoungestWins(t *testing.T) {
	l := ld(10, 100, 8)
	older := []*MemOp{
		st(1, 100, 8, 5, 5, 0),
		st(2, 200, 8, 5, 5, 0), // different address
		st(3, 100, 8, 6, 9, 0), // youngest match
	}
	m, unresolved := FindForward(l, older, 50)
	if m == nil || m.Seq != 3 {
		t.Fatalf("match = %+v, want seq 3", m)
	}
	if unresolved {
		t.Error("unresolved flagged with all addresses known")
	}
}

func TestFindForwardSkipsCommittedAndUnknown(t *testing.T) {
	l := ld(10, 100, 8)
	older := []*MemOp{
		st(1, 100, 8, 5, 5, 40),  // committed before t=50
		st(2, 100, 8, 90, 90, 0), // address unknown at t=50
	}
	m, unresolved := FindForward(l, older, 50)
	if m != nil {
		t.Errorf("matched ineligible store %+v", m)
	}
	if !unresolved {
		t.Error("unknown-address store not flagged")
	}
}

func TestFindViolation(t *testing.T) {
	s := st(5, 100, 8, 60, 60, 0)
	younger := []*MemOp{
		{Seq: 7, Addr: 100, Size: 8, Issued: 30}, // issued before store resolved
		{Seq: 8, Addr: 100, Size: 8, Issued: 70}, // issued after: safe
	}
	v := FindViolation(s, younger, 60)
	if v == nil || v.Seq != 7 {
		t.Fatalf("violation = %+v, want seq 7", v)
	}
	if FindViolation(s, younger[1:], 60) != nil {
		t.Error("late-issuing load flagged")
	}
}

func TestResolve(t *testing.T) {
	l := ld(9, 100, 8)
	if r := Resolve(l, nil, 10); r.Forwarded || r.Partial {
		t.Error("nil match resolved to something")
	}
	full := st(1, 100, 8, 0, 30, 0)
	r := Resolve(l, full, 10)
	if !r.Forwarded || r.DataAvailable != 30 {
		t.Errorf("full forward = %+v", r)
	}
	r = Resolve(l, full, 60)
	if r.DataAvailable != 60 {
		t.Errorf("search completion must floor availability: %+v", r)
	}
	partial := st(2, 104, 4, 0, 0, 0)
	r = Resolve(l, partial, 10)
	if !r.Partial || r.PartialStore != partial {
		t.Errorf("partial case = %+v", r)
	}
}

func TestStoreIndexCandidates(t *testing.T) {
	ix := NewStoreIndex()
	ix.Add(st(1, 100, 8, 5, 5, 0))
	ix.Add(st(2, 100, 8, 90, 90, 0)) // unresolved at t=50
	ix.Add(st(3, 200, 8, 5, 5, 0))
	l := ld(10, 100, 8)
	c := ix.Candidates(l, 50)
	if len(c) != 1 || c[0].Seq != 1 {
		t.Fatalf("Candidates = %v", c)
	}
	oracle := ix.CandidatesOracle(l, 50)
	if len(oracle) != 2 {
		t.Fatalf("Oracle = %v", oracle)
	}
	// Loads only match older stores.
	young := ld(0, 100, 8)
	if len(ix.Candidates(young, 50)) != 0 {
		t.Error("younger store matched older load")
	}
}

func TestStoreIndexUnresolved(t *testing.T) {
	ix := NewStoreIndex()
	// A store whose address resolves long after dispatch.
	late := &MemOp{Seq: 1, Store: true, Addr: 0x500, Size: 8, Dispatch: 0, AddrReady: 400}
	ix.Add(late)
	l := ld(10, 0x900, 8)
	if !ix.Unresolved(l, 100) {
		t.Error("late-address store not seen as unresolved")
	}
	if ix.Unresolved(l, 500) {
		t.Error("resolved store still flagged")
	}
	// Younger stores never make an older load unresolved... (seq order)
	older := ld(0, 0x900, 8)
	if ix.Unresolved(older, 100) {
		t.Error("younger store flagged for older load")
	}
}

func TestStoreIndexAddPanicsOnLoad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(load) did not panic")
		}
	}()
	NewStoreIndex().Add(ld(1, 100, 8))
}

func TestStoreIndexCompaction(t *testing.T) {
	ix := NewStoreIndex()
	// Far more adds than the compaction period, all long-committed. The
	// compactor keeps a 2^14-cycle safety margin behind the youngest
	// dispatch, so only entries older than that are dropped.
	for i := 0; i < 100000; i++ {
		s := st(uint64(i), uint64(i*8)%4096, 8, int64(i), int64(i), int64(i+1))
		s.Dispatch = int64(i)
		ix.Add(s)
	}
	total := 0
	for _, v := range ix.buckets {
		for st := v; st != nil; st = st.blockNext {
			total++
		}
	}
	if total > 40000 {
		t.Errorf("index retained %d entries after compaction", total)
	}
}

// Property: Candidates returns exactly the in-flight, overlapping,
// resolved, older stores.
func TestStoreIndexCandidatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		ix := NewStoreIndex()
		var all []*MemOp
		x := uint64(seed)
		next := func(n uint64) uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x % n
		}
		for i := 0; i < 100; i++ {
			s := st(uint64(i), 0x1000+next(64)*8, 8, int64(next(100)), 0, int64(next(200)))
			ix.Add(s)
			all = append(all, s)
		}
		l := ld(50, 0x1000+next(64)*8, 8)
		tq := int64(next(200))
		got := map[uint64]bool{}
		for _, c := range ix.Candidates(l, tq) {
			got[c.Seq] = true
		}
		for _, s := range all {
			want := s.Seq < l.Seq && s.InFlightAt(tq) && s.AddrReady <= tq && s.Overlaps(l)
			if got[s.Seq] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCentralScheme(t *testing.T) {
	s := NewCentral(noc.NewAnalytic(noc.NewBus(4), noc.NewMesh(4, 4, 1)))
	if s.Name() != "central" {
		t.Error("name wrong")
	}
	ix := NewStoreIndex()
	ix.Add(st(1, 100, 8, 5, 8, 0))
	// High-locality load: no round trip, single-cycle search.
	l := ld(10, 100, 8)
	r := s.LoadIssue(l, ix, 50)
	if !r.Forwarded || r.ExtraLatency != 0 {
		t.Errorf("HL central result = %+v", r)
	}
	// MP-resident load pays the round trip.
	l2 := ld(11, 100, 8)
	l2.LowLoc = true
	r = s.LoadIssue(l2, ix, 50)
	if r.ExtraLatency != 8 {
		t.Errorf("LL central extra = %d, want 8", r.ExtraLatency)
	}
	if s.Counters().Get("roundtrip") != 1 {
		t.Error("roundtrip not counted")
	}
	if s.Counters().Get("hl_sq") != 2 {
		t.Error("searches not counted")
	}
	// No-op hooks must not blow up.
	if s.Migrate(l2, 1) != 0 || s.AddrKnownInLL(l2, 1) {
		t.Error("central structural hooks not inert")
	}
	s.EpochCommitted(1, 5)
	s.EpochSquashed(1)
}

func TestConventionalScheme(t *testing.T) {
	s := NewConventional(false)
	ix := NewStoreIndex()
	stv := st(5, 100, 8, 60, 60, 0)
	ix.Add(stv)
	viol := []*MemOp{{Seq: 7, Addr: 100, Size: 8, Issued: 30}}
	r := s.StoreAddrReady(stv, viol, 60)
	if !r.Violation || r.ViolatingLoad.Seq != 7 {
		t.Errorf("violation missed: %+v", r)
	}
	if s.Counters().Get("hl_lq") != 1 {
		t.Error("LQ search not counted")
	}
	// The SVW composition removes the load queue.
	nolq := NewConventional(true)
	if nolq.Name() != "conventional-svw" {
		t.Error("name wrong")
	}
	r = nolq.StoreAddrReady(stv, viol, 60)
	if r.Violation {
		t.Error("NoLQ scheme performed a violation search")
	}
	if nolq.Counters().Get("hl_lq") != 0 {
		t.Error("NoLQ counted an LQ search")
	}
}
