// Package lsq defines the load/store-queue abstraction the pipeline model
// drives, the in-flight memory-operation record shared by every scheme, and
// the two baseline organisations the paper compares against: the idealised
// unlimited single-cycle central LSQ and the conventional finite CAM LSQ of
// the OoO-64 processor. The paper's contribution, the Epoch-based LSQ,
// implements the same interface in package core; the SVW re-execution
// baseline composes with either in package svw.
package lsq

import (
	"repro/internal/isa"
	"repro/internal/stats"
)

// HLEpoch marks a memory operation that lives in the high-locality queues
// (never migrated to a memory engine).
const HLEpoch = -1

// MemOp is the lifetime record of one in-flight memory instruction, filled
// in by the pipeline model as its timing resolves. All times are absolute
// cycles.
type MemOp struct {
	// Seq is the dynamic program-order sequence number.
	Seq uint64
	// Store distinguishes stores from loads.
	Store bool
	// Addr and Size give the access footprint.
	Addr uint64
	Size uint8
	// Dispatch is the cycle the op entered the window (decode/allocate).
	Dispatch int64
	// AddrReady is the cycle the effective address is known.
	AddrReady int64
	// DataReady is the cycle a store's data is available (loads: 0).
	DataReady int64
	// Issued is the cycle the op performed its queue search (loads: issue;
	// stores: address resolution).
	Issued int64
	// Done is the cycle a load's value is available.
	Done int64
	// Commit is the cycle the op leaves the window. Filled late; schemes
	// must treat ops with Commit == 0 as still in flight.
	Commit int64
	// LowLoc marks a low-locality (miss-dependent) op per the execution-
	// locality classification.
	LowLoc bool
	// Epoch is the LL-LSQ epoch (memory engine) holding the op, or HLEpoch.
	Epoch int
	// MigrateAt is the cycle the op moves from the HL queues to its epoch
	// (0 = never migrates). Before this cycle the op is searchable in the
	// high-locality queues.
	MigrateAt int64
	// UnresolvedOlderStore records whether, at load issue, some older store
	// still had an unknown address (the no-unresolved-store filter input).
	UnresolvedOlderStore bool

	// Forwarding provenance, filled by the pipeline model once the load's
	// value source is final (after any violation repair). FwdMask is the
	// bitmask of the load's bytes supplied by in-flight store-to-load
	// forwarding (bit i = byte Addr+i; 0 = no forwarding) and FwdSeq is the
	// sequence number of the supplying store (valid only when FwdMask != 0).
	// SVW starts the load's vulnerability window after FwdSeq; the oracle
	// certifies FwdSeq byte-wise against the sequential memory image.
	FwdSeq  uint64
	FwdMask uint8
	// ReadAt is the cycle of the load's final data-cache read for the bytes
	// not covered by FwdMask: issue for an ordinary load, the re-read point
	// after a partial-overlap wait or a violation repair, the commit-time
	// re-execution cycle under SVW. Bytes read from the cache at ReadAt
	// observe exactly the stores that committed by ReadAt.
	ReadAt int64

	// blockNext chains stores of the same 8-byte block inside the
	// StoreIndex, youngest first. Intrusive linking keeps the per-store
	// path of the index allocation-free.
	blockNext *MemOp
}

// InFlightAt reports whether the op still occupies its queue at cycle t.
func (op *MemOp) InFlightAt(t int64) bool { return op.Commit == 0 || op.Commit > t }

// Overlaps reports whether two ops' footprints overlap.
func (op *MemOp) Overlaps(other *MemOp) bool {
	return isa.Overlaps(op.Addr, op.Size, other.Addr, other.Size)
}

// Covers reports whether the store op fully covers the load ld (full
// forwarding possible; a partial overlap forces the load to wait for the
// store to commit, the Power4-style behaviour described in Section 2.1).
func (op *MemOp) Covers(ld *MemOp) bool {
	return op.Addr <= ld.Addr && op.Addr+uint64(op.Size) >= ld.Addr+uint64(ld.Size)
}

// LoadResult is the outcome of a load's disambiguation search.
type LoadResult struct {
	// ExtraLatency is added to the load's execution for remote searches
	// (network trips, sequential epoch searches, SQM access).
	ExtraLatency int64
	// Forwarded means an older in-flight store supplies the data.
	Forwarded bool
	// Source is the forwarding store (when Forwarded).
	Source *MemOp
	// DataAvailable is the cycle the forwarded data exists (max of search
	// completion and the store's data readiness).
	DataAvailable int64
	// Partial means the matching store only partially covers the load; the
	// load must wait for the store's commit and then read the cache.
	Partial bool
	// PartialStore is the matching store for the partial case.
	PartialStore *MemOp
	// Squash means the search could not proceed legally (line-based ERT
	// lock overflow for an LL-issued address) and the window must be
	// squashed from this load.
	Squash bool
}

// StoreResult is the outcome of a store's violation check at address
// resolution.
type StoreResult struct {
	// Violation means a younger load with an overlapping address already
	// issued and consumed stale data; the window squashes from that load.
	Violation bool
	// ViolatingLoad is the oldest such load.
	ViolatingLoad *MemOp
}

// Scheme is the LSQ organisation under test. The pipeline model invokes the
// hooks in program-order processing; implementations update their structures
// and account every search in the shared counter bag using the Table 2
// column names ("hl_lq", "hl_sq", "ll_lq", "ll_sq", "ert", "roundtrip").
type Scheme interface {
	// Name identifies the scheme for reports.
	Name() string

	// LoadIssue is called when a load searches for older matching stores.
	// ix indexes every older store still potentially in flight.
	LoadIssue(ld *MemOp, ix *StoreIndex, t int64) LoadResult

	// StoreAddrReady is called when a store's address resolves and it
	// checks younger already-issued loads for ordering violations.
	// youngerLoads is ascending by age (may be empty: the pipeline model
	// detects actual violations on the load side; this hook accounts the
	// searches the hardware performs).
	StoreAddrReady(st *MemOp, youngerLoads []*MemOp, t int64) StoreResult

	// Migrate is called when the op moves to low-locality epoch op.Epoch at
	// cycle t (FMC only). It returns an additional stall in cycles (e.g.
	// line-ERT allocation stalls).
	Migrate(op *MemOp, t int64) int64

	// AddrKnownInLL is called when an op that migrated with an unknown
	// address resolves it at cycle t. It reports whether the window must be
	// squashed from this op (line-ERT lock overflow).
	AddrKnownInLL(op *MemOp, t int64) bool

	// EpochCommitted is called when every instruction of an epoch has
	// committed (at cycle t); the scheme releases the epoch's filter state
	// from cycle t onward.
	EpochCommitted(epoch int, t int64)

	// EpochSquashed is called when an epoch's state is discarded on
	// recovery.
	EpochSquashed(epoch int)

	// Counters exposes the scheme's event counts.
	Counters() *stats.Counters
}

// FindForward scans olderStores (ascending age) for the youngest store with
// a known address at t that overlaps ld. It also reports whether any older
// in-flight store's address was still unknown at t. This is the reference
// CAM search semantics every scheme builds on.
func FindForward(ld *MemOp, olderStores []*MemOp, t int64) (match *MemOp, unresolved bool) {
	for _, st := range olderStores {
		if !st.InFlightAt(t) {
			continue
		}
		if st.AddrReady > t {
			unresolved = true
			continue
		}
		if st.Overlaps(ld) {
			match = st // keep scanning: youngest match wins
		}
	}
	return match, unresolved
}

// FindViolation scans youngerLoads (ascending age) for the oldest load that
// already issued (before t) with an address overlapping st — a store→load
// ordering violation.
func FindViolation(st *MemOp, youngerLoads []*MemOp, t int64) *MemOp {
	for _, ld := range youngerLoads {
		if ld.Issued != 0 && ld.Issued < t && ld.Overlaps(st) {
			return ld
		}
	}
	return nil
}

// Resolve converts a forwarding match into a LoadResult, handling the
// partial-coverage case.
func Resolve(ld *MemOp, match *MemOp, searchDone int64) LoadResult {
	if match == nil {
		return LoadResult{}
	}
	if !match.Covers(ld) {
		return LoadResult{Partial: true, PartialStore: match}
	}
	avail := match.DataReady
	if searchDone > avail {
		avail = searchDone
	}
	return LoadResult{Forwarded: true, DataAvailable: avail, Source: match}
}
