// Package svw implements the load re-execution baseline of Sections 3.5 and
// 5.6: Store Vulnerability Windows (Roth, ISCA 2005) with a Store Sequence
// Bloom Filter, optionally combined with the no-unresolved-store filter
// (Cain & Lipasti, ISCA 2004) — the paper's "CheckStores" variant versus
// "Blind".
//
// The scheme removes the associative load queue: stores perform no
// violation search; instead a load consults the SSBF when it commits and
// re-executes (an extra data-cache access that also delays younger stores'
// commit) if a store inside its vulnerability window — younger than the
// store it forwarded from, committed after it executed — may alias its
// address.
package svw

import (
	"repro/internal/config"
	"repro/internal/filter"
	"repro/internal/lsq"
	"repro/internal/stats"
)

// Engine drives SVW re-execution at commit time.
type Engine struct {
	ssbf    *filter.SSBF
	variant config.SVWVariant
	// commitAt[i] is the commit cycle of the youngest store hashed into
	// SSBF entry i (parallel to the SSBF's sequence numbers).
	commitAt []int64
	bits     int
	c        *stats.Counters

	cReexec, cReexecFiltered *uint64
}

// New builds an SVW engine with a 2^bits-entry SSBF.
func New(bits int, variant config.SVWVariant) *Engine {
	e := &Engine{
		ssbf:     filter.NewSSBF(bits),
		variant:  variant,
		commitAt: make([]int64, 1<<uint(bits)),
		bits:     bits,
		c:        stats.NewCounters(),
	}
	e.cReexec = e.c.Handle("reexec")
	e.cReexecFiltered = e.c.Handle("reexec_filtered")
	return e
}

// Variant returns the configured filtering variant.
func (e *Engine) Variant() config.SVWVariant { return e.variant }

// Counters exposes the engine's event counts.
func (e *Engine) Counters() *stats.Counters { return e.c }

// SSBFAccesses returns total SSBF reads+writes (the Table 2 SSBF column).
func (e *Engine) SSBFAccesses() uint64 { return e.ssbf.Reads + e.ssbf.Writes }

// StoreCommitted records a store's commit: its program-order sequence
// number and commit cycle are written into the SSBF under its address.
func (e *Engine) StoreCommitted(addr uint64, seq uint64, commitCycle int64) {
	e.ssbf.CommitStore(addr, seq)
	e.commitAt[filter.HashIndex(addr, e.bits)] = commitCycle
}

// LoadCommitting decides whether the committing load must re-execute. The
// SSBF holds the youngest committed store that may alias the load's
// address; the load is vulnerable if that store committed after the load
// issued AND is younger than the load's forwarding source (a load that
// forwarded from the youngest matching store already has that store's
// value). The CheckStores variant additionally skips loads that issued with
// no older address-unresolved store in flight — such loads saw every
// relevant address and cannot have been wrong.
func (e *Engine) LoadCommitting(ld *lsq.MemOp) bool {
	filter.AssertIndexable(ld.Addr, ld.Size, "svw load commit")
	seq, ok := e.ssbf.LastStore(ld.Addr)
	if !ok {
		return false
	}
	if e.commitAt[filter.HashIndex(ld.Addr, e.bits)] <= ld.Issued {
		return false // the aliasing store was already visible at issue
	}
	if ld.ForwardedFrom != 0 && seq < ld.ForwardedFrom {
		return false // forwarded from that store (or younger): value is current
	}
	if e.variant == config.SVWCheckStores && !ld.UnresolvedOlderStore {
		*e.cReexecFiltered++
		return false
	}
	*e.cReexec++
	return true
}
