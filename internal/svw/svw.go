// Package svw implements the load re-execution baseline of Sections 3.5 and
// 5.6: Store Vulnerability Windows (Roth, ISCA 2005) with a Store Sequence
// Bloom Filter, optionally combined with the no-unresolved-store filter
// (Cain & Lipasti, ISCA 2004) — the paper's "CheckStores" variant versus
// "Blind".
//
// The scheme removes the associative load queue: stores perform no
// violation search; instead a load consults the SSBF when it commits and
// re-executes (an extra data-cache access that also delays younger stores'
// commit) if a store inside its vulnerability window — younger than the
// store it forwarded from, committed after it executed — may alias its
// address.
package svw

import (
	"repro/internal/config"
	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/stats"
)

// Engine drives SVW re-execution at commit time.
type Engine struct {
	ssbf    *filter.SSBF
	variant config.SVWVariant
	c       *stats.Counters

	cReexec, cReexecFiltered *uint64
}

// New builds an SVW engine with a 2^bits-entry SSBF.
func New(bits int, variant config.SVWVariant) *Engine {
	e := &Engine{
		ssbf:    filter.NewSSBF(bits),
		variant: variant,
		c:       stats.NewCounters(),
	}
	e.cReexec = e.c.Handle("reexec")
	e.cReexecFiltered = e.c.Handle("reexec_filtered")
	return e
}

// Variant returns the configured filtering variant.
func (e *Engine) Variant() config.SVWVariant { return e.variant }

// Counters exposes the engine's event counts.
func (e *Engine) Counters() *stats.Counters { return e.c }

// SSBFAccesses returns total SSBF reads+writes (the Table 2 SSBF column).
func (e *Engine) SSBFAccesses() uint64 { return e.ssbf.Reads + e.ssbf.Writes }

// SSBFReads returns the filter's read (vulnerability-test) count; the
// energy model prices reads and writes separately.
func (e *Engine) SSBFReads() uint64 { return e.ssbf.Reads }

// SSBFWrites returns the filter's write (store-commit update) count.
func (e *Engine) SSBFWrites() uint64 { return e.ssbf.Writes }

// StoreCommitted records a store's commit: its program-order sequence
// number and commit cycle are written into its SSBF entry atomically, so
// the vulnerability test always compares a single store's sequence number
// against that same store's commit cycle.
func (e *Engine) StoreCommitted(addr uint64, seq uint64, commitCycle int64) {
	e.ssbf.CommitStore(addr, seq, commitCycle)
}

// LoadCommitting decides whether the committing load must re-execute. The
// SSBF holds the youngest committed store that may alias the load's
// address; the load is vulnerable if that store committed after the load
// last read the data cache AND is strictly younger than the load's
// forwarding source. A load that forwarded from the youngest aliasing
// committed store (seq == FwdSeq) already holds that store's value — its
// window starts strictly after FwdSeq — and a load that re-read the cache
// at ReadAt (partial-overlap wait) observed every store committed by then.
// The CheckStores variant additionally skips loads that issued with no
// older address-unresolved store in flight — such loads saw every relevant
// address and cannot have been wrong.
func (e *Engine) LoadCommitting(ld *lsq.MemOp) bool {
	filter.AssertIndexable(ld.Addr, ld.Size, "svw load commit")
	filter.AssertCommittedPath(ld.Seq, "svw load commit")
	seq, commit, ok := e.ssbf.LastStore(ld.Addr)
	if !ok {
		return false
	}
	visibleAt := ld.Issued
	if ld.ReadAt > visibleAt {
		visibleAt = ld.ReadAt
	}
	if commit <= visibleAt {
		return false // the aliasing store was already visible at the read
	}
	// The forwarding-window skip is sound only for fully forwarded loads: a
	// partial mask would leave cache-read bytes unprotected by the FwdSeq
	// comparison.
	if ld.FwdMask == isa.FullMask(ld.Size) && seq <= ld.FwdSeq {
		return false // forwarded from that store: value is current
	}
	if e.variant == config.SVWCheckStores && !ld.UnresolvedOlderStore {
		*e.cReexecFiltered++
		return false
	}
	*e.cReexec++
	return true
}
