package svw

import (
	"testing"

	"repro/internal/config"
	"repro/internal/lsq"
)

func TestNoReexecWithoutStores(t *testing.T) {
	e := New(10, config.SVWBlind)
	ld := &lsq.MemOp{Seq: 1, Addr: 0x100, Size: 8, Issued: 50}
	if e.LoadCommitting(ld) {
		t.Error("load re-executed with empty SSBF")
	}
}

func TestReexecWhenAliasingStoreCommitsAfterIssue(t *testing.T) {
	e := New(10, config.SVWBlind)
	// Store to the same address commits at cycle 100; load issued at 50.
	e.StoreCommitted(0x100, 5, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x100, Size: 8, Issued: 50}
	if !e.LoadCommitting(ld) {
		t.Error("vulnerable load not re-executed")
	}
	if e.Counters().Get("reexec") != 1 {
		t.Error("reexec not counted")
	}
}

func TestNoReexecWhenStoreVisibleAtIssue(t *testing.T) {
	e := New(10, config.SVWBlind)
	// Store committed at 40, load issued at 50: the load saw it in the
	// cache — not vulnerable.
	e.StoreCommitted(0x100, 5, 40)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x100, Size: 8, Issued: 50}
	if e.LoadCommitting(ld) {
		t.Error("safe load re-executed")
	}
}

func TestCheckStoresFiltersResolvedLoads(t *testing.T) {
	blind := New(10, config.SVWBlind)
	check := New(10, config.SVWCheckStores)
	blind.StoreCommitted(0x200, 5, 100)
	check.StoreCommitted(0x200, 5, 100)
	// Load issued at 50 with NO unresolved older stores: CheckStores
	// (the no-unresolved-store filter) skips the re-execution, Blind pays.
	ld := &lsq.MemOp{Seq: 9, Addr: 0x200, Size: 8, Issued: 50}
	if !blind.LoadCommitting(ld) {
		t.Error("blind variant skipped a vulnerable hash")
	}
	ld2 := *ld
	if check.LoadCommitting(&ld2) {
		t.Error("CheckStores re-executed a fully resolved load")
	}
	if check.Counters().Get("reexec_filtered") != 1 {
		t.Error("filtered re-execution not counted")
	}
	// With an unresolved older store it must re-execute.
	ld3 := *ld
	ld3.UnresolvedOlderStore = true
	if !check.LoadCommitting(&ld3) {
		t.Error("CheckStores skipped an unresolved-store load")
	}
}

func TestAliasingCausesFalseReexec(t *testing.T) {
	// SSBF aliasing: a store to a different address with the same hash
	// triggers a false re-execution — fewer index bits, more aliasing
	// (the 8/10/12-bit sweep of Figure 10).
	e := New(8, config.SVWBlind)
	a := uint64(0x100)
	b := a + (1 << (8 + 3)) // aliases under 8 bits
	e.StoreCommitted(b, 5, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: a, Size: 8, Issued: 50}
	if !e.LoadCommitting(ld) {
		t.Error("aliased store did not trigger re-execution")
	}
	// Under 12 bits the same pair does not alias.
	e12 := New(12, config.SVWBlind)
	e12.StoreCommitted(b, 5, 100)
	ld2 := &lsq.MemOp{Seq: 9, Addr: a, Size: 8, Issued: 50}
	if e12.LoadCommitting(ld2) {
		t.Error("12-bit SSBF aliased where it should not")
	}
}

// A load that forwarded from the youngest aliasing store is not vulnerable
// to it — the vulnerability window starts after the forwarding source.
func TestForwardedLoadNotVulnerableToItsSource(t *testing.T) {
	e := New(10, config.SVWBlind)
	e.StoreCommitted(0x40, 7, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x40, Size: 8, Issued: 50, ForwardedFrom: 8}
	if e.LoadCommitting(ld) {
		t.Error("load re-executed against its own forwarding source")
	}
	// But a YOUNGER aliasing store than the source still triggers it.
	e.StoreCommitted(0x40, 8, 120)
	ld2 := &lsq.MemOp{Seq: 12, Addr: 0x40, Size: 8, Issued: 50, ForwardedFrom: 8}
	if !e.LoadCommitting(ld2) {
		t.Error("load not re-executed against a store younger than its source")
	}
}

func TestSSBFAccessCounting(t *testing.T) {
	e := New(10, config.SVWCheckStores)
	e.StoreCommitted(0x40, 5, 5)
	ld := &lsq.MemOp{Seq: 3, Addr: 0x40, Size: 8, Issued: 1, UnresolvedOlderStore: true}
	e.LoadCommitting(ld)
	if e.SSBFAccesses() != 2 { // one write + one read
		t.Errorf("SSBFAccesses = %d, want 2", e.SSBFAccesses())
	}
	if e.Variant() != config.SVWCheckStores {
		t.Error("variant lost")
	}
}
