package svw

import (
	"testing"

	"repro/internal/config"
	"repro/internal/lsq"
)

func TestNoReexecWithoutStores(t *testing.T) {
	e := New(10, config.SVWBlind)
	ld := &lsq.MemOp{Seq: 1, Addr: 0x100, Size: 8, Issued: 50}
	if e.LoadCommitting(ld) {
		t.Error("load re-executed with empty SSBF")
	}
}

func TestReexecWhenAliasingStoreCommitsAfterIssue(t *testing.T) {
	e := New(10, config.SVWBlind)
	// Store to the same address commits at cycle 100; load issued at 50.
	e.StoreCommitted(0x100, 5, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x100, Size: 8, Issued: 50}
	if !e.LoadCommitting(ld) {
		t.Error("vulnerable load not re-executed")
	}
	if e.Counters().Get("reexec") != 1 {
		t.Error("reexec not counted")
	}
}

func TestNoReexecWhenStoreVisibleAtIssue(t *testing.T) {
	e := New(10, config.SVWBlind)
	// Store committed at 40, load issued at 50: the load saw it in the
	// cache — not vulnerable.
	e.StoreCommitted(0x100, 5, 40)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x100, Size: 8, Issued: 50}
	if e.LoadCommitting(ld) {
		t.Error("safe load re-executed")
	}
}

func TestCheckStoresFiltersResolvedLoads(t *testing.T) {
	blind := New(10, config.SVWBlind)
	check := New(10, config.SVWCheckStores)
	blind.StoreCommitted(0x200, 5, 100)
	check.StoreCommitted(0x200, 5, 100)
	// Load issued at 50 with NO unresolved older stores: CheckStores
	// (the no-unresolved-store filter) skips the re-execution, Blind pays.
	ld := &lsq.MemOp{Seq: 9, Addr: 0x200, Size: 8, Issued: 50}
	if !blind.LoadCommitting(ld) {
		t.Error("blind variant skipped a vulnerable hash")
	}
	ld2 := *ld
	if check.LoadCommitting(&ld2) {
		t.Error("CheckStores re-executed a fully resolved load")
	}
	if check.Counters().Get("reexec_filtered") != 1 {
		t.Error("filtered re-execution not counted")
	}
	// With an unresolved older store it must re-execute.
	ld3 := *ld
	ld3.UnresolvedOlderStore = true
	if !check.LoadCommitting(&ld3) {
		t.Error("CheckStores skipped an unresolved-store load")
	}
}

func TestAliasingCausesFalseReexec(t *testing.T) {
	// SSBF aliasing: a store to a different address with the same hash
	// triggers a false re-execution — fewer index bits, more aliasing
	// (the 8/10/12-bit sweep of Figure 10).
	e := New(8, config.SVWBlind)
	a := uint64(0x100)
	b := a + (1 << (8 + 3)) // aliases under 8 bits
	e.StoreCommitted(b, 5, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: a, Size: 8, Issued: 50}
	if !e.LoadCommitting(ld) {
		t.Error("aliased store did not trigger re-execution")
	}
	// Under 12 bits the same pair does not alias.
	e12 := New(12, config.SVWBlind)
	e12.StoreCommitted(b, 5, 100)
	ld2 := &lsq.MemOp{Seq: 9, Addr: a, Size: 8, Issued: 50}
	if e12.LoadCommitting(ld2) {
		t.Error("12-bit SSBF aliased where it should not")
	}
}

// A load that forwarded from the youngest aliasing store is not vulnerable
// to it — the vulnerability window starts strictly after the forwarding
// source. The seq == FwdSeq case is the regression for the off-by-one this
// PR fixes: the committed store IS the forwarding source, so the load's
// value is current and must not spuriously re-execute.
func TestForwardedLoadNotVulnerableToItsSource(t *testing.T) {
	e := New(10, config.SVWBlind)
	e.StoreCommitted(0x40, 7, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x40, Size: 8, Issued: 50, FwdSeq: 7, FwdMask: 0xff}
	if e.LoadCommitting(ld) {
		t.Error("load re-executed against its own forwarding source (seq == FwdSeq)")
	}
	// Forwarding from an even younger store than the committed one is safe
	// too (seq < FwdSeq).
	ld1 := &lsq.MemOp{Seq: 10, Addr: 0x40, Size: 8, Issued: 50, FwdSeq: 8, FwdMask: 0xff}
	if e.LoadCommitting(ld1) {
		t.Error("load re-executed although it forwarded from a younger store")
	}
	// But a YOUNGER aliasing store than the source still triggers it.
	e.StoreCommitted(0x40, 8, 120)
	ld2 := &lsq.MemOp{Seq: 12, Addr: 0x40, Size: 8, Issued: 50, FwdSeq: 7, FwdMask: 0xff}
	if !e.LoadCommitting(ld2) {
		t.Error("load not re-executed against a store younger than its source")
	}
}

// A partial forwarding mask must not unlock the forwarding-window skip: the
// bytes read from the cache are unprotected by the FwdSeq comparison.
func TestPartialForwardMaskStillVulnerable(t *testing.T) {
	e := New(10, config.SVWBlind)
	e.StoreCommitted(0x40, 7, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x40, Size: 8, Issued: 50, FwdSeq: 7, FwdMask: 0x0f}
	if !e.LoadCommitting(ld) {
		t.Error("partially forwarded load skipped re-execution")
	}
}

// A load that re-read the cache after a partial-overlap wait (ReadAt past
// the store's commit) observed the store's bytes and must not re-execute.
func TestReReadAfterStoreCommitNotVulnerable(t *testing.T) {
	e := New(10, config.SVWBlind)
	e.StoreCommitted(0x40, 7, 100)
	ld := &lsq.MemOp{Seq: 9, Addr: 0x40, Size: 8, Issued: 50, ReadAt: 100}
	if e.LoadCommitting(ld) {
		t.Error("load re-executed although its final cache read followed the store's commit")
	}
	// A read strictly before the commit stays vulnerable.
	ld2 := &lsq.MemOp{Seq: 9, Addr: 0x40, Size: 8, Issued: 50, ReadAt: 99}
	if !e.LoadCommitting(ld2) {
		t.Error("stale re-read not re-executed")
	}
}

// The commit cycle used by the issued-before-commit filter must belong to
// the same store as the matched sequence number, even when several stores
// hash into one SSBF entry: the youngest write owns both fields.
func TestEntryPairsSeqWithItsOwnCommitCycle(t *testing.T) {
	e := New(8, config.SVWBlind)
	a := uint64(0x100)
	b := a + (1 << (8 + 3)) // aliases a under 8 bits
	e.StoreCommitted(a, 5, 40)
	e.StoreCommitted(b, 6, 100) // different store, same entry, later commit
	// A load that issued at 50 forwarded from store 6's value? No — it read
	// addr a. Store 5 (commit 40) was visible; the entry now claims seq 6 /
	// commit 100, which is a hash alias: conservative re-execution.
	ld := &lsq.MemOp{Seq: 9, Addr: a, Size: 8, Issued: 50}
	if !e.LoadCommitting(ld) {
		t.Error("aliased younger store with later commit not caught")
	}
	// The youngest write owns both fields: after both stores commit before
	// the load's read, the entry must report the last pair and judge the
	// load safe by that store's commit cycle.
	e2 := New(8, config.SVWBlind)
	e2.StoreCommitted(b, 6, 30)
	e2.StoreCommitted(a, 7, 40)
	ld2 := &lsq.MemOp{Seq: 9, Addr: a, Size: 8, Issued: 50}
	if e2.LoadCommitting(ld2) {
		t.Error("entry mixed an evicted store's commit cycle with the new sequence number")
	}
}

func TestSSBFAccessCounting(t *testing.T) {
	e := New(10, config.SVWCheckStores)
	e.StoreCommitted(0x40, 5, 5)
	ld := &lsq.MemOp{Seq: 3, Addr: 0x40, Size: 8, Issued: 1, UnresolvedOlderStore: true}
	e.LoadCommitting(ld)
	if e.SSBFAccesses() != 2 { // one write + one read
		t.Errorf("SSBFAccesses = %d, want 2", e.SSBFAccesses())
	}
	if e.Variant() != config.SVWCheckStores {
		t.Error("variant lost")
	}
}
