package noc

import (
	"testing"

	"repro/internal/xrand"
)

// newPair builds an analytic and a contended fabric over identical geometry.
func newPair(w, h, hopCost, oneWay, linkWidth int) (*Analytic, *Contended) {
	a := NewAnalytic(NewBus(oneWay), NewMesh(w, h, hopCost))
	c := NewContended(w, h, hopCost, oneWay, linkWidth, nil)
	return a, c
}

// driveRandom replays one random message stream against both fabrics and
// checks the point-wise latency bound: at link width 1 the contended fabric
// can never deliver a message earlier than the contention-free model.
func driveRandom(t *testing.T, w, h int, seed uint64) {
	t.Helper()
	an, co := newPair(w, h, 2, 6, 1)
	r := xrand.New(seed)
	n := w * h
	var clock int64
	for i := 0; i < 400; i++ {
		clock += int64(r.Intn(3)) // bursty: many messages share cycles
		switch r.Intn(4) {
		case 0:
			ga, gc := an.BusOneWay(clock), co.BusOneWay(clock)
			if gc < ga {
				t.Fatalf("seed %d msg %d: contended BusOneWay(%d) = %d < analytic %d", seed, i, clock, gc, ga)
			}
		case 1:
			ga, gc := an.BusRoundTrip(clock), co.BusRoundTrip(clock)
			if gc < ga {
				t.Fatalf("seed %d msg %d: contended BusRoundTrip(%d) = %d < analytic %d", seed, i, clock, gc, ga)
			}
		case 2:
			a, b := r.Intn(n), r.Intn(n)
			ga, gc := an.Route(a, b, clock), co.Route(a, b, clock)
			if gc < ga {
				t.Fatalf("seed %d msg %d: contended Route(%d,%d,%d) = %d < analytic %d", seed, i, a, b, clock, gc, ga)
			}
		default:
			a, b := r.Intn(n), r.Intn(n)
			flits := 1 + r.Intn(8)
			ga, gc := an.MigrateState(a, b, flits, clock), co.MigrateState(a, b, flits, clock)
			if gc < ga {
				t.Fatalf("seed %d msg %d: contended MigrateState(%d,%d,%d,%d) = %d < analytic %d",
					seed, i, a, b, flits, clock, gc, ga)
			}
		}
	}
	// Hop conservation: contention changes when messages move, never how far
	// they travel, so both fabrics agree on every volume column. Only the
	// wait columns may differ.
	ta, tc := an.Traffic(), co.Traffic()
	if ta.Hops != tc.Hops || ta.OneWays != tc.OneWays || ta.RoundTrips != tc.RoundTrips || ta.MigrateFlits != tc.MigrateFlits {
		t.Fatalf("seed %d: traffic volume diverged: analytic %+v, contended %+v", seed, ta, tc)
	}
	if ta.LinkWaitCycles != 0 || ta.BusWaitCycles != 0 {
		t.Fatalf("analytic fabric reported wait cycles: %+v", ta)
	}
}

func TestContendedDominatesAnalytic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		driveRandom(t, 4, 4, seed)
		driveRandom(t, 8, 1, seed)
		driveRandom(t, 3, 5, seed)
	}
}

// TestContendedUncontendedEquality: with messages spaced far apart no
// calendar slot is ever busy, so the contended fabric's latencies collapse to
// exactly the analytic ones — the contention model adds queueing, never a
// different base latency.
func TestContendedUncontendedEquality(t *testing.T) {
	an, co := newPair(4, 4, 3, 7, 1)
	r := xrand.New(99)
	clock := int64(0)
	for i := 0; i < 200; i++ {
		clock += 200 // far beyond any message's lifetime
		a, b := r.Intn(16), r.Intn(16)
		switch i % 4 {
		case 0:
			if ga, gc := an.BusOneWay(clock), co.BusOneWay(clock); ga != gc {
				t.Fatalf("msg %d: uncontended BusOneWay %d != analytic %d", i, gc, ga)
			}
		case 1:
			if ga, gc := an.BusRoundTrip(clock), co.BusRoundTrip(clock); ga != gc {
				t.Fatalf("msg %d: uncontended BusRoundTrip %d != analytic %d", i, gc, ga)
			}
		case 2:
			if ga, gc := an.Route(a, b, clock), co.Route(a, b, clock); ga != gc {
				t.Fatalf("msg %d: uncontended Route(%d,%d) %d != analytic %d", i, a, b, gc, ga)
			}
		default:
			flits := 1 + i%8
			if ga, gc := an.MigrateState(a, b, flits, clock), co.MigrateState(a, b, flits, clock); ga != gc {
				t.Fatalf("msg %d: uncontended MigrateState(%d,%d,%d) %d != analytic %d", i, a, b, flits, gc, ga)
			}
		}
	}
	// Bus messages never queued; link waits can still be non-zero because a
	// width-1 migration block self-serialises (its own flits queue on the
	// first link), which is exactly the analytic model's flits-1 tail.
	if co.Traffic().BusWaitCycles != 0 {
		t.Fatalf("sparse stream still queued on the bus: %+v", co.Traffic())
	}
}

// TestRouteRespectsDistance: every routed message pays at least the Manhattan
// propagation latency, and an isolated one pays exactly it.
func TestRouteRespectsDistance(t *testing.T) {
	_, co := newPair(4, 4, 2, 6, 1)
	var clock int64
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			clock += 100
			want := clock + int64(2*co.Distance(a, b))
			if got := co.Route(a, b, clock); got != want {
				t.Fatalf("isolated Route(%d,%d,%d) = %d, want %d", a, b, clock, got, want)
			}
		}
	}
}

// TestContendedQueueing checks the model actually queues: two messages
// crossing the same width-1 link in the same cycle cannot both depart at
// once, and the second's delay is visible in LinkWaitCycles.
func TestContendedQueueing(t *testing.T) {
	_, co := newPair(4, 1, 1, 4, 1)
	first := co.Route(0, 3, 10)
	second := co.Route(0, 3, 10)
	if first != 13 {
		t.Fatalf("first message arrived at %d, want 13", first)
	}
	if second != 14 {
		t.Fatalf("second message arrived at %d, want 14 (one cycle of queueing)", second)
	}
	if w := co.Traffic().LinkWaitCycles; w != 1 {
		// one stall at the first link; downstream the message pipelines one
		// cycle behind the leader without further waiting
		t.Fatalf("LinkWaitCycles = %d, want 1", w)
	}

	_, co = newPair(4, 1, 1, 4, 2)
	if a, b := co.Route(0, 3, 10), co.Route(0, 3, 10); a != 13 || b != 13 {
		t.Fatalf("width-2 links should carry both messages at once, got %d and %d", a, b)
	}
}

// TestBusQueueing: same property on the CP<->MP bus.
func TestBusQueueing(t *testing.T) {
	_, co := newPair(2, 1, 1, 5, 1)
	if got := co.BusOneWay(0); got != 5 {
		t.Fatalf("first bus message arrived at %d, want 5", got)
	}
	if got := co.BusOneWay(0); got != 6 {
		t.Fatalf("second bus message arrived at %d, want 6", got)
	}
	if w := co.Traffic().BusWaitCycles; w != 1 {
		t.Fatalf("BusWaitCycles = %d, want 1", w)
	}
	// Round trips book the two directions independently: an outbound queue
	// does not consume inbound slots.
	if got := co.BusRoundTrip(0); got != 12 { // departs 2 (queued), arrives 7, returns 12
		t.Fatalf("round trip arrived at %d, want 12", got)
	}
}

// TestMigrateStateEdgeCases covers the degenerate transfers and the wide-link
// speedup (a wide link lets the whole block depart at once, so the flits-1
// serialisation tail of the analytic model disappears).
func TestMigrateStateEdgeCases(t *testing.T) {
	an, co := newPair(4, 4, 2, 6, 16)
	for _, f := range []Fabric{an, co} {
		if got := f.MigrateState(5, 5, 8, 42); got != 42 {
			t.Fatalf("%T: same-engine migration took time: %d", f, got)
		}
		if got := f.MigrateState(1, 2, 0, 42); got != 42 {
			t.Fatalf("%T: empty migration took time: %d", f, got)
		}
		if tr := f.Traffic(); tr.MigrateFlits != 0 || tr.Hops != 0 {
			t.Fatalf("%T: degenerate migration counted traffic: %+v", f, tr)
		}
	}
	// Width 16 >= flits: all 8 flits depart together, last arrives after pure
	// propagation — earlier than the analytic model's serialised tail.
	d := int64(2 * co.Distance(0, 15))
	if got := co.MigrateState(0, 15, 8, 0); got != d {
		t.Fatalf("wide-link migration arrived at %d, want %d", got, d)
	}
	if got := an.MigrateState(0, 15, 8, 0); got != d+7 {
		t.Fatalf("analytic migration arrived at %d, want %d", got, d+7)
	}
	// Hop conservation still holds: per-flit, per-link accounting.
	if ha, hc := an.Traffic().Hops, co.Traffic().Hops; ha != hc || ha != 8*uint64(co.Distance(0, 15)) {
		t.Fatalf("migration hops diverged: analytic %d, contended %d", ha, hc)
	}
}

// TestContendedCalendars pins the resource count formula to the constructed
// link table (batch slab sizing depends on it).
func TestContendedCalendars(t *testing.T) {
	for _, g := range []struct{ w, h int }{{4, 4}, {8, 1}, {1, 8}, {3, 5}, {1, 1}} {
		co := NewContended(g.w, g.h, 1, 1, 1, nil)
		if want := ContendedCalendars(g.w, g.h); len(co.links)+2 != want {
			t.Fatalf("%dx%d: %d links + 2 bus != ContendedCalendars %d", g.w, g.h, len(co.links)+2, want)
		}
	}
}

// TestLinkIndexBijective: every directed link of the mesh maps to a distinct
// calendar — an aliased pair would invent contention between unrelated links.
func TestLinkIndexBijective(t *testing.T) {
	co := NewContended(4, 4, 1, 1, 1, nil)
	seen := make(map[int]bool)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= 4 || ny < 0 || ny >= 4 {
					continue
				}
				i := co.linkIndex(x, y, nx, ny)
				if i < 0 || i >= len(co.links) {
					t.Fatalf("linkIndex(%d,%d -> %d,%d) = %d out of range [0,%d)", x, y, nx, ny, i, len(co.links))
				}
				if seen[i] {
					t.Fatalf("linkIndex(%d,%d -> %d,%d) = %d already assigned", x, y, nx, ny, i)
				}
				seen[i] = true
			}
		}
	}
	if len(seen) != len(co.links) {
		t.Fatalf("only %d of %d links reachable", len(seen), len(co.links))
	}
}

// TestTrafficSub: snapshot-and-subtract isolates a window's traffic.
func TestTrafficSub(t *testing.T) {
	_, co := newPair(4, 4, 1, 4, 1)
	co.Route(0, 15, 0)
	co.BusRoundTrip(0)
	snap := co.Traffic()
	co.Route(3, 12, 100)
	co.BusOneWay(100)
	got := co.Traffic().Sub(snap)
	if got.Hops != uint64(co.Distance(3, 12)) || got.OneWays != 1 || got.RoundTrips != 0 {
		t.Fatalf("windowed traffic = %+v", got)
	}
}
