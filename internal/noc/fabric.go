package noc

import "repro/internal/sched"

// defaultHorizon bounds the spread of link reservations when a contended
// fabric allocates its own calendars (callers embedding the fabric in a
// batch arena pass their own allocator and horizon instead).
const defaultHorizon = 1 << 14

// Traffic is a fabric's cumulative message accounting. The analytic model
// fills only the contention-free columns (hops and bus trips); the contended
// model additionally reports the cycles messages spent queued on busy links
// and the epoch-state flits it moved. Snapshots subtract (Sub), so a driver
// can report exactly the measured region's traffic.
type Traffic struct {
	// Hops is the total link traversals of all mesh messages.
	Hops uint64
	// OneWays and RoundTrips count CP<->MP bus messages.
	OneWays, RoundTrips uint64
	// LinkWaitCycles is the total cycles mesh messages waited for a busy
	// link (0 under the analytic model).
	LinkWaitCycles uint64
	// BusWaitCycles is the total cycles bus messages waited for a busy bus
	// slot (0 under the analytic model).
	BusWaitCycles uint64
	// MigrateFlits counts epoch-state flits moved between engines.
	MigrateFlits uint64
}

// Sub returns the traffic accumulated since the snapshot old was taken.
func (t Traffic) Sub(old Traffic) Traffic {
	return Traffic{
		Hops:           t.Hops - old.Hops,
		OneWays:        t.OneWays - old.OneWays,
		RoundTrips:     t.RoundTrips - old.RoundTrips,
		LinkWaitCycles: t.LinkWaitCycles - old.LinkWaitCycles,
		BusWaitCycles:  t.BusWaitCycles - old.BusWaitCycles,
		MigrateFlits:   t.MigrateFlits - old.MigrateFlits,
	}
}

// Fabric is the single interface every FMC-side latency flows through: the
// CP<->MP bus, the memory-engine mesh, and epoch-state migration bandwidth.
// All timing methods take the cycle the message enters the fabric and return
// the cycle it arrives (a round trip returns the response's arrival), so a
// contended implementation can compose queueing delay with propagation
// latency while the analytic implementation degenerates to fixed adds.
type Fabric interface {
	// Size returns the number of mesh nodes (memory engines).
	Size() int
	// Distance returns the Manhattan hop count between engines a and b
	// without sending a message (placement policies use it for locality).
	Distance(a, b int) int
	// BusOneWay sends one CP->MP (or MP->CP) message entering at t and
	// returns its arrival cycle.
	BusOneWay(t int64) int64
	// BusRoundTrip sends a request at t and returns the cycle the response
	// arrives back.
	BusRoundTrip(t int64) int64
	// Route sends a mesh message from engine a to engine b entering at t
	// and returns its arrival cycle (t when a == b).
	Route(a, b int, t int64) int64
	// MigrateState transfers an epoch-state block of flits flits from
	// engine a to engine b starting at t and returns the cycle the last
	// flit arrives (t when a == b or flits <= 0).
	MigrateState(a, b, flits int, t int64) int64
	// Traffic returns the cumulative message accounting.
	Traffic() Traffic
}

// Analytic is the paper's contention-free fabric (the default): fixed bus
// latencies and Manhattan-distance mesh hops, with traffic counted for the
// Table 2 RoundTrips column. It wraps the original Bus and Mesh models, so
// every latency and counter is bit-identical to the pre-Fabric simulator.
type Analytic struct {
	bus  *Bus
	mesh *Mesh

	migrateFlits uint64
}

// NewAnalytic builds the contention-free fabric over the given bus and mesh.
func NewAnalytic(bus *Bus, mesh *Mesh) *Analytic {
	return &Analytic{bus: bus, mesh: mesh}
}

// Size implements Fabric.
func (f *Analytic) Size() int { return f.mesh.Size() }

// Distance implements Fabric.
func (f *Analytic) Distance(a, b int) int { return f.mesh.Distance(a, b) }

// BusOneWay implements Fabric: a fixed one-way latency.
func (f *Analytic) BusOneWay(t int64) int64 { return t + int64(f.bus.OneWay()) }

// BusRoundTrip implements Fabric: two fixed one-way latencies.
func (f *Analytic) BusRoundTrip(t int64) int64 { return t + int64(f.bus.RoundTrip()) }

// Route implements Fabric: Manhattan distance at the fixed per-hop latency.
func (f *Analytic) Route(a, b int, t int64) int64 { return t + int64(f.mesh.Traverse(a, b)) }

// MigrateState implements Fabric: the block cuts through contention-free at
// one flit per cycle, so the last of flits flits arrives a flits-1 cycle
// tail after the head. Hops are counted per flit per link, matching the
// contended model's accounting (the hop-conservation property).
func (f *Analytic) MigrateState(a, b, flits int, t int64) int64 {
	if a == b || flits <= 0 {
		return t
	}
	d := f.mesh.Distance(a, b)
	f.mesh.Hops += uint64(d * flits)
	f.migrateFlits += uint64(flits)
	return t + int64(d*f.mesh.HopCost()) + int64(flits-1)
}

// Traffic implements Fabric.
func (f *Analytic) Traffic() Traffic {
	return Traffic{
		Hops:         f.mesh.Hops,
		OneWays:      f.bus.OneWays,
		RoundTrips:   f.bus.RoundTrips,
		MigrateFlits: f.migrateFlits,
	}
}

// ContendedCalendars returns how many reservation calendars a contended
// fabric over a w x h mesh books: one per directed mesh link plus the two
// bus directions. Batch construction uses it to size the shared slab.
func ContendedCalendars(w, h int) int {
	return 2*((w-1)*h+w*(h-1)) + 2
}

// Contended is the occupancy-based fabric: every directed mesh link and both
// bus directions are width-limited resources backed by sched.Calendar, so
// messages queue when a link is busy instead of passing through for free.
// Mesh messages follow deterministic X-Y (dimension-ordered) routing; epoch
// state migrates as a multi-flit block that books every link it crosses,
// charging real bandwidth for placement policies that move epochs off their
// home bank. Latency is bounded below by the analytic model point-wise (at
// link width 1): each hop pays at least the propagation cost, plus whatever
// queueing the calendar imposes.
type Contended struct {
	w, h    int
	hopCost int
	oneWay  int

	busOut, busIn *sched.Calendar
	links         []*sched.Calendar

	tr Traffic
}

// NewContended builds the occupancy-based fabric for a w x h mesh with the
// given per-hop and bus one-way latencies. linkWidth is the number of
// messages each link (and each bus direction) accepts per cycle; values <= 0
// mean 1. alloc builds each reservation calendar — the batch engine passes
// an arena-backed allocator; nil allocates privately.
func NewContended(w, h, hopCost, oneWay, linkWidth int, alloc func(width int) *sched.Calendar) *Contended {
	if w <= 0 || h <= 0 || hopCost < 0 || oneWay < 0 {
		panic("noc: invalid contended fabric geometry")
	}
	if linkWidth <= 0 {
		linkWidth = 1
	}
	if alloc == nil {
		alloc = func(width int) *sched.Calendar { return sched.NewCalendar(width, defaultHorizon) }
	}
	f := &Contended{w: w, h: h, hopCost: hopCost, oneWay: oneWay}
	f.busOut = alloc(linkWidth)
	f.busIn = alloc(linkWidth)
	f.links = make([]*sched.Calendar, ContendedCalendars(w, h)-2)
	for i := range f.links {
		f.links[i] = alloc(linkWidth)
	}
	return f
}

// Size implements Fabric.
func (f *Contended) Size() int { return f.w * f.h }

// Distance implements Fabric.
func (f *Contended) Distance(a, b int) int {
	ax, ay := a%f.w, a/f.w
	bx, by := b%f.w, b/f.w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Directed-link index layout: east links (x -> x+1), then west, then south
// (y -> y+1), then north. Horizontal links are keyed by (y, min x), vertical
// by (x, min y).
func (f *Contended) linkIndex(fromX, fromY, toX, toY int) int {
	hPerDir := (f.w - 1) * f.h
	vPerDir := f.w * (f.h - 1)
	switch {
	case toX == fromX+1: // east
		return fromY*(f.w-1) + fromX
	case toX == fromX-1: // west
		return hPerDir + fromY*(f.w-1) + toX
	case toY == fromY+1: // south
		return 2*hPerDir + fromX*(f.h-1) + fromY
	default: // north
		return 2*hPerDir + vPerDir + fromX*(f.h-1) + toY
	}
}

// hop books one link traversal entering at t and returns the arrival cycle.
func (f *Contended) hop(fromX, fromY, toX, toY int, t int64) int64 {
	depart := f.links[f.linkIndex(fromX, fromY, toX, toY)].Reserve(t)
	f.tr.LinkWaitCycles += uint64(depart - t)
	f.tr.Hops++
	return depart + int64(f.hopCost)
}

// BusOneWay implements Fabric: books one outbound bus slot.
func (f *Contended) BusOneWay(t int64) int64 {
	depart := f.busOut.Reserve(t)
	f.tr.BusWaitCycles += uint64(depart - t)
	f.tr.OneWays++
	return depart + int64(f.oneWay)
}

// BusRoundTrip implements Fabric: the request books the outbound direction,
// the response books the inbound direction at the request's arrival.
func (f *Contended) BusRoundTrip(t int64) int64 {
	depart := f.busOut.Reserve(t)
	f.tr.BusWaitCycles += uint64(depart - t)
	arrive := depart + int64(f.oneWay)
	back := f.busIn.Reserve(arrive)
	f.tr.BusWaitCycles += uint64(back - arrive)
	f.tr.RoundTrips++
	return back + int64(f.oneWay)
}

// Route implements Fabric: X-Y routing, booking every link crossed.
func (f *Contended) Route(a, b int, t int64) int64 {
	x, y := a%f.w, a/f.w
	bx, by := b%f.w, b/f.w
	cur := t
	for x != bx {
		nx := x + 1
		if bx < x {
			nx = x - 1
		}
		cur = f.hop(x, y, nx, y, cur)
		x = nx
	}
	for y != by {
		ny := y + 1
		if by < y {
			ny = y - 1
		}
		cur = f.hop(x, y, x, ny, cur)
		y = ny
	}
	return cur
}

// MigrateState implements Fabric: every flit of the block routes a->b
// individually, so the block's bandwidth demand serialises on each crossed
// link at the link width. The return is the last flit's arrival.
func (f *Contended) MigrateState(a, b, flits int, t int64) int64 {
	if a == b || flits <= 0 {
		return t
	}
	done := t
	for i := 0; i < flits; i++ {
		if arr := f.Route(a, b, t); arr > done {
			done = arr
		}
	}
	f.tr.MigrateFlits += uint64(flits)
	return done
}

// Traffic implements Fabric.
func (f *Contended) Traffic() Traffic { return f.tr }
