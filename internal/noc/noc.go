// Package noc models the FMC interconnect (Figure 6 of the paper): a bus
// between the Cache Processor and the Memory Processor with a 4-cycle
// one-way latency, and a mesh linking the memory engines at one hop per
// cycle. Latency is computed analytically (the paper's single-cycle router
// citation [14] justifies contention-free hops); traffic is counted for the
// Table 2 "RoundTrips" column.
package noc

// Mesh is a W x H grid of memory engines, indexed 0..W*H-1 in row-major
// order.
type Mesh struct {
	w, h    int
	hopCost int
	// Hops accumulates the total hop count of all traversals.
	Hops uint64
}

// NewMesh returns a mesh of the given width and height with the given
// per-hop latency in cycles.
func NewMesh(w, h, hopCost int) *Mesh {
	if w <= 0 || h <= 0 || hopCost < 0 {
		panic("noc: invalid mesh geometry")
	}
	return &Mesh{w: w, h: h, hopCost: hopCost}
}

// Size returns the number of nodes.
func (m *Mesh) Size() int { return m.w * m.h }

// Distance returns the Manhattan hop count between engines a and b.
func (m *Mesh) Distance(a, b int) int {
	ax, ay := a%m.w, a/m.w
	bx, by := b%m.w, b/m.w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Traverse returns the latency of a message from engine a to engine b and
// records the hops.
func (m *Mesh) Traverse(a, b int) int {
	d := m.Distance(a, b)
	m.Hops += uint64(d)
	return d * m.hopCost
}

// HopCost returns the configured per-hop latency in cycles.
func (m *Mesh) HopCost() int { return m.hopCost }

// Bus is the CP<->MP link with a fixed one-way latency.
type Bus struct {
	oneWay int
	// OneWays and RoundTrips count traversals for the energy analysis.
	OneWays, RoundTrips uint64
}

// NewBus returns a bus with the given one-way latency in cycles.
func NewBus(oneWay int) *Bus {
	if oneWay < 0 {
		panic("noc: negative bus latency")
	}
	return &Bus{oneWay: oneWay}
}

// OneWay records a single CP->MP (or MP->CP) message and returns its
// latency.
func (b *Bus) OneWay() int {
	b.OneWays++
	return b.oneWay
}

// RoundTrip records a request/response pair and returns its total latency.
func (b *Bus) RoundTrip() int {
	b.RoundTrips++
	return 2 * b.oneWay
}

// OneWayLatency returns the configured one-way latency without recording
// traffic.
func (b *Bus) OneWayLatency() int { return b.oneWay }
