package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshDistance(t *testing.T) {
	m := NewMesh(4, 4, 1)
	tests := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // one row down
		{0, 15, 6}, // opposite corner of 4x4
		{5, 10, 2},
	}
	for _, tt := range tests {
		if got := m.Distance(tt.a, tt.b); got != tt.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMeshDistanceProperties(t *testing.T) {
	m := NewMesh(4, 4, 1)
	sym := func(a, b uint8) bool {
		x, y := int(a)%16, int(b)%16
		return m.Distance(x, y) == m.Distance(y, x)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("distance symmetry: %v", err)
	}
	tri := func(a, b, c uint8) bool {
		x, y, z := int(a)%16, int(b)%16, int(c)%16
		return m.Distance(x, z) <= m.Distance(x, y)+m.Distance(y, z)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestMeshTraverse(t *testing.T) {
	m := NewMesh(4, 4, 2)
	if lat := m.Traverse(0, 15); lat != 12 {
		t.Errorf("Traverse latency = %d, want 12", lat)
	}
	if m.Hops != 6 {
		t.Errorf("Hops = %d, want 6", m.Hops)
	}
	if m.Size() != 16 {
		t.Errorf("Size = %d", m.Size())
	}
}

func TestBus(t *testing.T) {
	b := NewBus(4)
	if lat := b.OneWay(); lat != 4 {
		t.Errorf("OneWay = %d", lat)
	}
	if lat := b.RoundTrip(); lat != 8 {
		t.Errorf("RoundTrip = %d", lat)
	}
	if b.OneWays != 1 || b.RoundTrips != 1 {
		t.Errorf("traffic = %d/%d", b.OneWays, b.RoundTrips)
	}
	if b.OneWayLatency() != 4 {
		t.Error("OneWayLatency wrong")
	}
	if b.OneWays != 1 {
		t.Error("OneWayLatency must not count traffic")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMesh(0, 4, 1) },
		func() { NewMesh(4, 0, 1) },
		func() { NewMesh(4, 4, -1) },
		func() { NewBus(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry accepted")
				}
			}()
			f()
		}()
	}
}
