package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshDistance(t *testing.T) {
	m := NewMesh(4, 4, 1)
	tests := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // one row down
		{0, 15, 6}, // opposite corner of 4x4
		{5, 10, 2},
	}
	for _, tt := range tests {
		if got := m.Distance(tt.a, tt.b); got != tt.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMeshDistanceProperties(t *testing.T) {
	m := NewMesh(4, 4, 1)
	sym := func(a, b uint8) bool {
		x, y := int(a)%16, int(b)%16
		return m.Distance(x, y) == m.Distance(y, x)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("distance symmetry: %v", err)
	}
	tri := func(a, b, c uint8) bool {
		x, y, z := int(a)%16, int(b)%16, int(c)%16
		return m.Distance(x, z) <= m.Distance(x, y)+m.Distance(y, z)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

// TestMeshEdgeGeometries covers degenerate shapes: single-row and
// single-column meshes (where one Manhattan axis is pinned to zero), a
// single node, and corner-to-corner extremes on tall/wide rectangles.
func TestMeshEdgeGeometries(t *testing.T) {
	t.Run("1xN row", func(t *testing.T) {
		m := NewMesh(8, 1, 1)
		if m.Size() != 8 {
			t.Fatalf("Size = %d, want 8", m.Size())
		}
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				want := a - b
				if want < 0 {
					want = -want
				}
				if got := m.Distance(a, b); got != want {
					t.Errorf("Distance(%d,%d) = %d, want %d", a, b, got, want)
				}
			}
		}
		if got := m.Distance(0, 7); got != 7 {
			t.Errorf("end-to-end distance = %d, want 7", got)
		}
	})
	t.Run("Nx1 column", func(t *testing.T) {
		m := NewMesh(1, 8, 1)
		if m.Size() != 8 {
			t.Fatalf("Size = %d, want 8", m.Size())
		}
		// With width 1 every index is a row: distance is pure vertical hops.
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				want := a - b
				if want < 0 {
					want = -want
				}
				if got := m.Distance(a, b); got != want {
					t.Errorf("Distance(%d,%d) = %d, want %d", a, b, got, want)
				}
			}
		}
	})
	t.Run("single node", func(t *testing.T) {
		m := NewMesh(1, 1, 5)
		if m.Size() != 1 || m.Distance(0, 0) != 0 || m.Traverse(0, 0) != 0 {
			t.Error("1x1 mesh is not free to traverse")
		}
		if m.Hops != 0 {
			t.Errorf("self-traversal recorded %d hops", m.Hops)
		}
	})
	t.Run("corner to corner", func(t *testing.T) {
		for _, g := range []struct{ w, h, want int }{
			{4, 4, 6},   // square
			{8, 2, 8},   // wide
			{2, 8, 8},   // tall
			{16, 1, 15}, // degenerate row
		} {
			m := NewMesh(g.w, g.h, 1)
			last := m.Size() - 1
			if got := m.Distance(0, last); got != g.want {
				t.Errorf("%dx%d corner distance = %d, want %d", g.w, g.h, got, g.want)
			}
			if got := m.Distance(last, 0); got != g.want {
				t.Errorf("%dx%d reverse corner distance = %d, want %d", g.w, g.h, got, g.want)
			}
		}
	})
}

// TestMeshHopAccumulation checks Traverse's hop accounting across a
// sequence of traversals, including zero-distance and zero-cost cases.
func TestMeshHopAccumulation(t *testing.T) {
	m := NewMesh(4, 4, 3)
	wantHops := uint64(0)
	for _, pair := range [][2]int{{0, 15}, {15, 0}, {5, 5}, {0, 1}, {3, 12}} {
		d := m.Distance(pair[0], pair[1])
		if lat := m.Traverse(pair[0], pair[1]); lat != 3*d {
			t.Errorf("Traverse(%d,%d) = %d cycles, want %d", pair[0], pair[1], lat, 3*d)
		}
		wantHops += uint64(d)
		if m.Hops != wantHops {
			t.Errorf("after Traverse(%d,%d): Hops = %d, want %d", pair[0], pair[1], m.Hops, wantHops)
		}
	}
	// A free (hopCost 0) mesh still accounts hops.
	free := NewMesh(4, 4, 0)
	if lat := free.Traverse(0, 15); lat != 0 {
		t.Errorf("zero-cost traverse latency = %d", lat)
	}
	if free.Hops != 6 {
		t.Errorf("zero-cost traverse recorded %d hops, want 6", free.Hops)
	}
}

func TestMeshTraverse(t *testing.T) {
	m := NewMesh(4, 4, 2)
	if lat := m.Traverse(0, 15); lat != 12 {
		t.Errorf("Traverse latency = %d, want 12", lat)
	}
	if m.Hops != 6 {
		t.Errorf("Hops = %d, want 6", m.Hops)
	}
	if m.Size() != 16 {
		t.Errorf("Size = %d", m.Size())
	}
}

func TestBus(t *testing.T) {
	b := NewBus(4)
	if lat := b.OneWay(); lat != 4 {
		t.Errorf("OneWay = %d", lat)
	}
	if lat := b.RoundTrip(); lat != 8 {
		t.Errorf("RoundTrip = %d", lat)
	}
	if b.OneWays != 1 || b.RoundTrips != 1 {
		t.Errorf("traffic = %d/%d", b.OneWays, b.RoundTrips)
	}
	if b.OneWayLatency() != 4 {
		t.Error("OneWayLatency wrong")
	}
	if b.OneWays != 1 {
		t.Error("OneWayLatency must not count traffic")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMesh(0, 4, 1) },
		func() { NewMesh(4, 0, 1) },
		func() { NewMesh(4, 4, -1) },
		func() { NewMesh(-1, 4, 1) },
		func() { NewMesh(4, -1, 1) },
		func() { NewMesh(0, 0, 0) },
		func() { NewBus(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry accepted")
				}
			}()
			f()
		}()
	}
}
