// Package config defines every tunable of the modelled processors and the
// defaults from Table 1 of the paper. Experiments derive variants from
// Default() rather than constructing configs from scratch, so each figure's
// sweep changes exactly the parameters the paper sweeps.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Model selects the host microarchitecture.
type Model uint8

const (
	// ModelOoO is the conventional speculative out-of-order processor with a
	// 64-entry ROB ("OoO-64" in the paper), i.e. FMC with the Memory
	// Processor disabled.
	ModelOoO Model = iota
	// ModelFMC is the Flexible MultiCore: Cache Processor + Memory Engines,
	// emulating a window of around 1500 in-flight instructions.
	ModelFMC
)

// String implements fmt.Stringer.
func (m Model) String() string {
	if m == ModelOoO {
		return "OoO-64"
	}
	return "FMC"
}

// LSQScheme selects the load/store-queue organisation under test.
type LSQScheme uint8

const (
	// LSQCentral is the idealised unlimited single-cycle centralized LSQ
	// located in the Cache Processor.
	LSQCentral LSQScheme = iota
	// LSQConventional is a finite age-indexed CAM LQ/SQ (the OoO-64 queue).
	LSQConventional
	// LSQELSQ is the paper's Epoch-based Load/Store Queue.
	LSQELSQ
	// LSQSVW removes the associative load queue and uses Store Vulnerability
	// Window re-execution instead.
	LSQSVW
)

// String implements fmt.Stringer.
func (s LSQScheme) String() string {
	switch s {
	case LSQCentral:
		return "central"
	case LSQConventional:
		return "conventional"
	case LSQELSQ:
		return "elsq"
	case LSQSVW:
		return "svw"
	default:
		return fmt.Sprintf("lsq(%d)", uint8(s))
	}
}

// ERTKind selects the global-disambiguation filter of the ELSQ.
type ERTKind uint8

const (
	// ERTLine is the L1-cache-line-based Epoch Resolution Table (requires
	// locking referenced lines in the L1).
	ERTLine ERTKind = iota
	// ERTHash is the address-hash (Bloom-style) ERT, decoupled from the L1.
	ERTHash
)

// String implements fmt.Stringer.
func (k ERTKind) String() string {
	if k == ERTLine {
		return "line"
	}
	return "hash"
}

// Disambiguation selects the restricted disambiguation model (Section 3.3).
type Disambiguation uint8

const (
	// DisambFull lets loads and stores compute addresses and disambiguate in
	// both locality levels.
	DisambFull Disambiguation = iota
	// DisambRSAC restricts store address calculation to the HL-LSQ: a store
	// with an unresolved address stalls migration of younger memory
	// references. Removes the Load-ERT.
	DisambRSAC
	// DisambRLAC restricts load address calculation to the HL-LSQ.
	DisambRLAC
	// DisambRSACLAC restricts both.
	DisambRSACLAC
)

// String implements fmt.Stringer.
func (d Disambiguation) String() string {
	switch d {
	case DisambFull:
		return "full"
	case DisambRSAC:
		return "rsac"
	case DisambRLAC:
		return "rlac"
	case DisambRSACLAC:
		return "rsac+rlac"
	default:
		return fmt.Sprintf("disamb(%d)", uint8(d))
	}
}

// NoCModel selects the interconnect timing model for the CP<->MP bus and
// the memory-engine mesh (noc.Fabric implementations).
type NoCModel uint8

const (
	// NoCAnalytic is the contention-free fixed-latency model: Manhattan
	// hops at MeshHop cycles each and a fixed BusOneWay bus. The default,
	// and the model every legacy result was produced under.
	NoCAnalytic NoCModel = iota
	// NoCContended books CP<->MP bus slots and per-link mesh hops on
	// occupancy calendars (X-Y routing, NoCLinkWidth messages per link per
	// cycle), so concurrent traffic queues instead of passing through free.
	NoCContended
)

// String implements fmt.Stringer.
func (m NoCModel) String() string {
	if m == NoCAnalytic {
		return "analytic"
	}
	return "contended"
}

// PlacePolicy selects how virtual epochs are placed onto physical banks
// (memory engines) in the FMC.
type PlacePolicy uint8

const (
	// PlaceModN is the paper's interleaving: virtual epoch v occupies bank
	// v mod NumEpochs. The default.
	PlaceModN PlacePolicy = iota
	// PlaceLeastLoaded places each epoch on the bank that frees earliest,
	// breaking ties toward the bank nearest (in fabric hops) to the
	// previously opened epoch's bank.
	PlaceLeastLoaded
	// PlaceSteal keeps the mod-N home bank when it is free and otherwise
	// steals the free bank nearest to the previous epoch's bank, paying
	// the epoch-state migration bandwidth for the move.
	PlaceSteal
)

// String implements fmt.Stringer.
func (p PlacePolicy) String() string {
	switch p {
	case PlaceModN:
		return "modn"
	case PlaceLeastLoaded:
		return "leastloaded"
	case PlaceSteal:
		return "steal"
	default:
		return fmt.Sprintf("place(%d)", uint8(p))
	}
}

// ClassPolicy selects the execution-locality classifier that drives the
// HL->LL migration decision (internal/predict).
type ClassPolicy uint8

const (
	// ClassReactive is the paper's rule: an instruction whose operands
	// become ready more than MigrateThreshold cycles after dispatch is
	// classified low-locality, plus the post-issue migration of loads that
	// miss to memory. The default, and bit-identical to the simulator that
	// predated the prediction layer.
	ClassReactive ClassPolicy = iota
	// ClassCacheLevel augments the reactive rule with a tagged cache-level
	// history predictor: loads whose line is predicted to miss to memory
	// are classified low-locality already at dispatch, so migration
	// overlaps the miss instead of waiting for it to be discovered
	// (Jalili & Erez, arXiv 2103.14808).
	ClassCacheLevel
	// ClassDelayTrack augments the reactive rule with tracked per-line
	// load-delay estimates: a load migrates when its readiness slack plus
	// its predicted access delay exceeds the threshold (Diavastos &
	// Carlson, arXiv 2109.03112).
	ClassDelayTrack
)

// String implements fmt.Stringer.
func (p ClassPolicy) String() string {
	switch p {
	case ClassReactive:
		return "reactive"
	case ClassCacheLevel:
		return "cachelevel"
	case ClassDelayTrack:
		return "delaytrack"
	default:
		return fmt.Sprintf("class(%d)", uint8(p))
	}
}

// DefaultClassTableBits is the predictor-table index width the cachelevel
// and delaytrack policies use when Config.ClassTableBits is zero: 1024
// tagged entries of 8 bytes, an 8KB SRAM-class structure.
const DefaultClassTableBits = 10

// SVWVariant selects how SVW decides whether a forwarded load must
// re-execute (Section 5.6).
type SVWVariant uint8

const (
	// SVWBlind uses only the SSBF filter.
	SVWBlind SVWVariant = iota
	// SVWCheckStores additionally applies the no-unresolved-store filter.
	SVWCheckStores
)

// String implements fmt.Stringer.
func (v SVWVariant) String() string {
	if v == SVWBlind {
		return "blind"
	}
	return "checkstores"
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache-line size.
	LineBytes int
	// LatencyCycles is the load-to-use hit latency.
	LatencyCycles int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Lines returns the total number of lines.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// Config carries every parameter of a simulation run. The zero value is not
// usable; start from Default().
type Config struct {
	// Model selects OoO-64 vs FMC.
	Model Model
	// LSQ selects the queue organisation.
	LSQ LSQScheme

	// FetchWidth is the fetch/decode bandwidth in instructions per cycle.
	FetchWidth int
	// CommitWidth is the maximum commits per cycle.
	CommitWidth int
	// ROBSize is the Cache Processor reorder-buffer size.
	ROBSize int
	// IntIQ and FpIQ are the CP issue-queue capacities.
	IntIQ, FpIQ int
	// IntRegs and FpRegs are the CP physical register counts.
	IntRegs, FpRegs int
	// CachePorts is the number of read/write L1 ports.
	CachePorts int

	// NumEpochs is the number of LL-LSQ epochs == memory engines ==
	// checkpoints (FMC only).
	NumEpochs int
	// EpochMaxInsts is the per-epoch instruction budget (all classes).
	EpochMaxInsts int
	// EpochMaxLoads and EpochMaxStores cap the per-ME load/store queues.
	EpochMaxLoads, EpochMaxStores int
	// MEIssueWidth is the in-order issue width of a memory engine.
	MEIssueWidth int
	// MEIQ is the memory-engine issue-queue size.
	MEIQ int

	// HLLQSize and HLSQSize are the high-locality load/store queue sizes.
	HLLQSize, HLSQSize int

	// L1, L2 describe the cache hierarchy.
	L1, L2 CacheConfig
	// MemLatency is the main-memory access time in cycles.
	MemLatency int

	// BusOneWay is the CP<->MP one-way trip latency in cycles.
	BusOneWay int
	// MeshHop is the per-hop latency between memory engines in cycles.
	MeshHop int

	// NoC selects the interconnect timing model (analytic by default).
	// The zero value encodes to nothing in the canonical form, so every
	// legacy sweep/checkpoint/golden key is unchanged.
	NoC NoCModel `json:",omitempty"`
	// NoCLinkWidth is the number of messages each mesh link (and each bus
	// direction) accepts per cycle under the contended model. 0 and 1 both
	// mean one message per cycle and encode identically; the field is
	// ignored (and normalised away) under the analytic model.
	NoCLinkWidth int `json:",omitempty"`
	// Place selects the epoch->bank placement policy (FMC only; mod-N by
	// default, encoded only when non-default).
	Place PlacePolicy `json:",omitempty"`
	// Class selects the execution-locality classification policy
	// (internal/predict; FMC only). The zero value is the reactive rule and
	// encodes to nothing in the canonical form, so every legacy
	// sweep/checkpoint/golden key is unchanged.
	Class ClassPolicy `json:",omitempty"`
	// ClassTableBits is the log2 entry count of the predictor table behind
	// the cachelevel and delaytrack policies. 0 means DefaultClassTableBits
	// and encodes identically; the field is ignored (and normalised away)
	// under the reactive policy.
	ClassTableBits int `json:",omitempty"`

	// ERT selects the global-disambiguation filter (ELSQ only).
	ERT ERTKind
	// ERTHashBits is the address-hash width for ERTHash.
	ERTHashBits int
	// SQM enables the Store Queue Mirror.
	SQM bool
	// Disamb selects the restricted disambiguation model.
	Disamb Disambiguation

	// SSBFBits is the Store Sequence Bloom Filter index width (SVW only).
	SSBFBits int
	// SVW selects Blind vs CheckStores.
	SVW SVWVariant

	// MigrateThreshold is the source-readiness slack (cycles beyond
	// dispatch) past which an instruction is classified low-locality and
	// migrated to a memory engine. It models the Virtual-ROB extraction
	// point: an instruction is pulled out when it reaches the head of the
	// partial ROB unexecuted, roughly the ROB drain time — long enough
	// that L2 hits and ordinary dependence chains execute in the Cache
	// Processor, short enough that memory misses (hundreds of cycles)
	// always migrate.
	MigrateThreshold int

	// MispredictPenalty is the front-end redirect cost after branch
	// resolution.
	MispredictPenalty int

	// MaxInsts is the number of committed instructions to measure per
	// benchmark (after warm-up).
	MaxInsts uint64
	// SampleIntervals, when above 1, splits MaxInsts into that many
	// SimPoint-style measured intervals: between intervals the simulator
	// fast-forwards SampleBleedInsts committed instructions functionally
	// (memory references keep warming the caches, nothing is timed), so the
	// measurement samples several program phases instead of one contiguous
	// region — the paper's multi-SimPoint methodology. 0 and 1 both mean a
	// single contiguous measured region and encode identically (the fields
	// are omitted from the canonical form when unset, so legacy configs
	// keep their cache identity). MaxInsts is split as evenly as possible,
	// with the first interval absorbing the remainder; every reported
	// metric still covers exactly MaxInsts committed instructions.
	SampleIntervals int `json:",omitempty"`
	// SampleBleedInsts is the per-gap functional fast-forward described
	// above (ignored unless SampleIntervals > 1).
	SampleBleedInsts uint64 `json:",omitempty"`

	// TracePath, when set, drives the simulation from the recorded .elt
	// trace at this path (internal/trace) instead of the live synthetic
	// generator: the committed-path stream is read from the file and the
	// wrong-path stream re-synthesised from the recorded initial state, so
	// results are bit-identical to the run the trace was recorded from. The
	// field is omitted from the canonical encoding when unset, so legacy
	// configs keep their cache identity.
	TracePath string `json:",omitempty"`
	// TraceDigest is the content digest of that trace (trace.Meta.Digest),
	// stamped by trace.Resolve. It — not the path — is what identifies a
	// trace-driven run: Canonical() drops TracePath whenever a digest is
	// present, so Hash(), WarmKey() and every cache key derived from them
	// are content-addressed (the same trace under two paths shares one
	// identity; a replaced file under one path does not).
	TraceDigest string `json:",omitempty"`

	// EnergyTable names the per-access energy/area coefficient table the
	// post-run energy model (internal/energy) maps activity counters
	// through. Empty means the default "base" table and is omitted from the
	// canonical encoding, so every legacy sweep/checkpoint/golden key is
	// unchanged. The table is observational only — it never feeds back into
	// timing — and its value is validated by internal/energy at report time
	// (config cannot depend on energy without a cycle).
	EnergyTable string `json:",omitempty"`

	// WarmupInsts is the number of committed instructions executed before
	// measurement starts, so caches and predictor-equivalent state reach
	// steady state (the paper measures SimPoints of already-warm
	// execution).
	//
	// Budget semantics: the simulator first advances WarmupInsts committed-
	// path instructions functionally — memory references touch the cache
	// hierarchy, nothing is timed — and then simulates exactly MaxInsts
	// instructions with full timing. Every reported metric (IPC, counters,
	// histograms, activity fractions) covers only the measured MaxInsts;
	// the warm-up affects results solely through the cache state it leaves
	// behind. Throughput reporting must therefore count WarmupInsts +
	// MaxInsts instructions of simulator work per run while metric
	// normalisation (e.g. stats.Per100M) uses committed == MaxInsts. The
	// two fields are independent: setting one never alters the other, and
	// assignment order is immaterial. Use WithBudget to set both
	// explicitly; SmokeBudget is the standard quick-evaluation point used
	// by the benchmark suites and the bench-smoke CI gate.
	WarmupInsts uint64
}

// Standard instruction budgets. Smoke is large enough that the measured
// region runs entirely in cache-warm steady state (the warm-up spans the
// largest working-set period of the synthetic kernels) yet small enough for
// per-PR CI; Deep matches Default().
const (
	// SmokeMeasureInsts and SmokeWarmupInsts define the smoke budget.
	SmokeMeasureInsts uint64 = 30_000
	SmokeWarmupInsts  uint64 = 400_000
)

// WithBudget returns a copy of c measuring measure instructions after
// warmup warm-up instructions.
func (c Config) WithBudget(measure, warmup uint64) Config {
	c.MaxInsts = measure
	c.WarmupInsts = warmup
	return c
}

// SmokeBudget returns a copy of c at the standard smoke budget.
func (c Config) SmokeBudget() Config {
	return c.WithBudget(SmokeMeasureInsts, SmokeWarmupInsts)
}

// Default returns the Table 1 configuration: 4-way fetch, 64-entry CP ROB,
// 16 memory engines of 128 instructions (64 loads / 32 stores), 40-entry
// IQs, 96+96 registers, 2-ported 32KB 4-way L1 (1 cycle), 2MB 4-way L2
// (10 cycles), 400-cycle memory, 4-cycle one-way bus, 1 cycle/hop mesh.
func Default() Config {
	return Config{
		Model:             ModelFMC,
		LSQ:               LSQELSQ,
		FetchWidth:        4,
		CommitWidth:       4,
		ROBSize:           64,
		IntIQ:             40,
		FpIQ:              40,
		IntRegs:           96,
		FpRegs:            96,
		CachePorts:        2,
		NumEpochs:         16,
		EpochMaxInsts:     128,
		EpochMaxLoads:     64,
		EpochMaxStores:    32,
		MEIssueWidth:      2,
		MEIQ:              20,
		HLLQSize:          32,
		HLSQSize:          24,
		L1:                CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 32, LatencyCycles: 1},
		L2:                CacheConfig{SizeBytes: 2 << 20, Ways: 4, LineBytes: 32, LatencyCycles: 10},
		MemLatency:        400,
		BusOneWay:         4,
		MeshHop:           1,
		ERT:               ERTHash,
		ERTHashBits:       10,
		SQM:               true,
		Disamb:            DisambFull,
		SSBFBits:          10,
		SVW:               SVWBlind,
		MigrateThreshold:  48,
		MispredictPenalty: 8,
		MaxInsts:          200_000,
		WarmupInsts:       2_000_000,
	}
}

// OoO64 returns the conventional baseline: the FMC with the Memory Processor
// disabled — a 64-entry-ROB 4-way out-of-order core with a conventional
// finite LSQ matching the Cache Processor's parameters.
func OoO64() Config {
	c := Default()
	c.Model = ModelOoO
	c.LSQ = LSQConventional
	return c
}

// Validate reports the first configuration error found, or nil.
func (c *Config) Validate() error {
	switch {
	case c.FetchWidth <= 0:
		return fmt.Errorf("config: FetchWidth must be positive, got %d", c.FetchWidth)
	case c.CommitWidth <= 0:
		return fmt.Errorf("config: CommitWidth must be positive, got %d", c.CommitWidth)
	case c.ROBSize <= 0:
		return fmt.Errorf("config: ROBSize must be positive, got %d", c.ROBSize)
	case c.CachePorts <= 0:
		return fmt.Errorf("config: CachePorts must be positive, got %d", c.CachePorts)
	case c.Model == ModelFMC && c.NumEpochs <= 0:
		return fmt.Errorf("config: FMC needs NumEpochs > 0, got %d", c.NumEpochs)
	case c.Model == ModelFMC && c.NumEpochs > 128:
		return fmt.Errorf("config: FMC supports at most 128 epochs (the ERT epoch-mask width), got %d", c.NumEpochs)
	case c.Model == ModelFMC && c.EpochMaxInsts <= 0:
		return fmt.Errorf("config: FMC needs EpochMaxInsts > 0, got %d", c.EpochMaxInsts)
	case c.L1.SizeBytes <= 0 || c.L1.Ways <= 0 || c.L1.LineBytes <= 0:
		return fmt.Errorf("config: invalid L1 geometry %+v", c.L1)
	case c.L2.SizeBytes <= 0 || c.L2.Ways <= 0 || c.L2.LineBytes <= 0:
		return fmt.Errorf("config: invalid L2 geometry %+v", c.L2)
	case c.L1.Sets()&(c.L1.Sets()-1) != 0:
		return fmt.Errorf("config: L1 set count %d is not a power of two", c.L1.Sets())
	case c.L2.Sets()&(c.L2.Sets()-1) != 0:
		return fmt.Errorf("config: L2 set count %d is not a power of two", c.L2.Sets())
	case c.LSQ == LSQELSQ && c.ERT == ERTHash && (c.ERTHashBits < 1 || c.ERTHashBits > 24):
		return fmt.Errorf("config: ERTHashBits %d out of range [1,24]", c.ERTHashBits)
	case c.LSQ == LSQSVW && (c.SSBFBits < 1 || c.SSBFBits > 24):
		return fmt.Errorf("config: SSBFBits %d out of range [1,24]", c.SSBFBits)
	case c.NoCLinkWidth < 0 || c.NoCLinkWidth > 255:
		return fmt.Errorf("config: NoCLinkWidth %d out of range [0,255]", c.NoCLinkWidth)
	case c.ClassTableBits < 0 || c.ClassTableBits > 24:
		return fmt.Errorf("config: ClassTableBits %d out of range [0,24] (0 = default)", c.ClassTableBits)
	case c.MaxInsts == 0:
		return fmt.Errorf("config: MaxInsts must be positive")
	case c.SampleIntervals < 0:
		return fmt.Errorf("config: SampleIntervals must be non-negative, got %d", c.SampleIntervals)
	case c.SampleIntervals > 1 && c.MaxInsts < uint64(c.SampleIntervals):
		return fmt.Errorf("config: MaxInsts %d cannot be split into %d sample intervals", c.MaxInsts, c.SampleIntervals)
	}
	return nil
}

// Intervals returns the measured-interval count (at least 1) and the
// per-gap warm bleed the sampling fields denote.
func (c *Config) Intervals() (n int, bleed uint64) {
	if c.SampleIntervals > 1 {
		return c.SampleIntervals, c.SampleBleedInsts
	}
	return 1, 0
}

// WarmKey returns a stable digest of exactly the fields the functional
// warm-up depends on: cache geometry, the warm-up budget, and — for
// trace-driven configs — the trace identity. Two configs with equal
// WarmKey leave bit-identical post-warm-up state for a given (benchmark,
// seed) — latencies, queue sizes, the LSQ scheme, ERT geometry and the
// migrate threshold all shape timing only — so a checkpoint built under
// one serves every other (internal/ckpt keys its store with this). The
// trace identity matters because a trace-built checkpoint carries a
// replay-position snapshot rather than generator kernel state: it must
// never be resumed by a live-generator run, nor by a different trace.
func (c *Config) WarmKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "warm1|l1:%d/%d/%d|l2:%d/%d/%d|w:%d",
		c.L1.SizeBytes, c.L1.Ways, c.L1.LineBytes,
		c.L2.SizeBytes, c.L2.Ways, c.L2.LineBytes,
		c.WarmupInsts)
	if id := c.traceIdentity(); id != "" {
		fmt.Fprintf(h, "|tr:%s", id)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// traceIdentity is the string that identifies a trace-driven run: the
// content digest when resolved, the path as a fallback when not (callers
// that key caches should trace.Resolve first), empty for live generation.
func (c *Config) traceIdentity() string {
	if c.TraceDigest != "" {
		return c.TraceDigest
	}
	return c.TracePath
}

// ClassBits returns the effective predictor-table index width:
// ClassTableBits, or DefaultClassTableBits when unset.
func (c *Config) ClassBits() int {
	if c.ClassTableBits == 0 {
		return DefaultClassTableBits
	}
	return c.ClassTableBits
}

// Name returns a short human-readable identifier for the configuration, in
// the style of the paper's Table 2 row labels (e.g. "FMC-Hash-SQM",
// "OoO-64-SVW"). Non-reactive classification policies append a "+CLP" /
// "+DTP" marker on FMC configurations.
func (c *Config) Name() string {
	name := c.baseName()
	if c.Model == ModelFMC {
		switch c.Class {
		case ClassCacheLevel:
			name += "+CLP"
		case ClassDelayTrack:
			name += "+DTP"
		}
	}
	return name
}

// baseName is the classifier-free Table 2 row label.
func (c *Config) baseName() string {
	if c.Model == ModelOoO {
		if c.LSQ == LSQSVW {
			return "OoO-64-SVW"
		}
		return "OoO-64"
	}
	switch c.LSQ {
	case LSQCentral:
		return "FMC-Central"
	case LSQSVW:
		return "FMC-Hash-SVW"
	case LSQELSQ:
		name := "FMC-Line"
		if c.ERT == ERTHash {
			name = "FMC-Hash"
		}
		if c.Disamb == DisambRSAC {
			name += "-RSAC"
		} else if c.Disamb == DisambRLAC {
			name += "-RLAC"
		} else if c.Disamb == DisambRSACLAC {
			name += "-RSACLAC"
		}
		if c.SQM {
			name += "+SQM"
		}
		return name
	default:
		return fmt.Sprintf("FMC-%s", c.LSQ)
	}
}

// WindowSize returns the total in-flight instruction capacity of the model:
// ROB only for OoO, ROB plus all epochs for FMC (~1500 by default, hence the
// paper's "around 1500 in-flight instructions").
func (c *Config) WindowSize() int {
	if c.Model == ModelOoO {
		return c.ROBSize
	}
	return c.ROBSize + c.NumEpochs*c.EpochMaxInsts
}
