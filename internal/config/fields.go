package config

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// FieldSpec describes one sweepable Config parameter: a stable dotted name,
// a one-line description, and string conversions in both directions. The
// registry is what lets a declarative sweep grid (internal/sweep) or a CLI
// axis flag (cmd/elsqsweep -axis l1.size=16K,32K,64K) address config fields
// without reflection.
type FieldSpec struct {
	// Name is the canonical axis name, e.g. "l1.size" or "ert.bits".
	Name string
	// Doc is a one-line human description with the accepted values.
	Doc string
	// Set parses value and stamps it onto c.
	Set func(c *Config, value string) error
	// Get renders the field's current value in a form Set accepts.
	Get func(c *Config) string
}

// intField builds a FieldSpec for a plain int field.
func intField(name, doc string, get func(*Config) *int) FieldSpec {
	return FieldSpec{
		Name: name, Doc: doc,
		Set: func(c *Config, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("config: field %s: bad int %q", name, v)
			}
			*get(c) = n
			return nil
		},
		Get: func(c *Config) string { return strconv.Itoa(*get(c)) },
	}
}

// sizeField builds a FieldSpec for a byte-size field (accepts K/M/G suffixes).
func sizeField(name, doc string, get func(*Config) *int) FieldSpec {
	return FieldSpec{
		Name: name, Doc: doc,
		Set: func(c *Config, v string) error {
			n, err := ParseSize(v)
			if err != nil {
				return fmt.Errorf("config: field %s: %v", name, err)
			}
			*get(c) = n
			return nil
		},
		Get: func(c *Config) string { return strconv.Itoa(*get(c)) },
	}
}

// uint64Field builds a FieldSpec for a uint64 field.
func uint64Field(name, doc string, get func(*Config) *uint64) FieldSpec {
	return FieldSpec{
		Name: name, Doc: doc,
		Set: func(c *Config, v string) error {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("config: field %s: bad uint %q", name, v)
			}
			*get(c) = n
			return nil
		},
		Get: func(c *Config) string { return strconv.FormatUint(*get(c), 10) },
	}
}

// fieldRegistry lists every sweepable parameter. Keep names stable: they are
// the public axis vocabulary of cmd/elsqsweep and appear in sweep artifacts.
func fieldRegistry() []FieldSpec {
	return []FieldSpec{
		{
			Name: "model", Doc: "processor model: fmc | ooo",
			Set: func(c *Config, v string) error {
				m, err := ParseModel(v)
				if err != nil {
					return err
				}
				c.Model = m
				return nil
			},
			Get: func(c *Config) string { return c.Model.String() },
		},
		{
			Name: "lsq", Doc: "LSQ scheme: central | conventional | elsq | svw",
			Set: func(c *Config, v string) error {
				s, err := ParseLSQScheme(v)
				if err != nil {
					return err
				}
				c.LSQ = s
				return nil
			},
			Get: func(c *Config) string { return c.LSQ.String() },
		},
		intField("fetch.width", "fetch/decode bandwidth (insts/cycle)", func(c *Config) *int { return &c.FetchWidth }),
		intField("commit.width", "maximum commits per cycle", func(c *Config) *int { return &c.CommitWidth }),
		intField("rob.size", "Cache Processor reorder-buffer entries", func(c *Config) *int { return &c.ROBSize }),
		intField("iq.int", "integer issue-queue entries", func(c *Config) *int { return &c.IntIQ }),
		intField("iq.fp", "floating-point issue-queue entries", func(c *Config) *int { return &c.FpIQ }),
		intField("regs.int", "integer physical registers", func(c *Config) *int { return &c.IntRegs }),
		intField("regs.fp", "floating-point physical registers", func(c *Config) *int { return &c.FpRegs }),
		intField("cache.ports", "L1 read/write ports", func(c *Config) *int { return &c.CachePorts }),
		intField("epochs", "LL-LSQ epochs == memory engines", func(c *Config) *int { return &c.NumEpochs }),
		intField("epoch.insts", "per-epoch instruction budget", func(c *Config) *int { return &c.EpochMaxInsts }),
		intField("epoch.loads", "per-epoch load-queue entries", func(c *Config) *int { return &c.EpochMaxLoads }),
		intField("epoch.stores", "per-epoch store-queue entries", func(c *Config) *int { return &c.EpochMaxStores }),
		intField("me.issue", "memory-engine issue width", func(c *Config) *int { return &c.MEIssueWidth }),
		intField("me.iq", "memory-engine issue-queue entries", func(c *Config) *int { return &c.MEIQ }),
		intField("hl.lq", "high-locality load-queue entries", func(c *Config) *int { return &c.HLLQSize }),
		intField("hl.sq", "high-locality store-queue entries", func(c *Config) *int { return &c.HLSQSize }),
		sizeField("l1.size", "L1 capacity in bytes (accepts 32K etc.)", func(c *Config) *int { return &c.L1.SizeBytes }),
		intField("l1.ways", "L1 associativity", func(c *Config) *int { return &c.L1.Ways }),
		intField("l1.line", "L1 line size in bytes", func(c *Config) *int { return &c.L1.LineBytes }),
		intField("l1.latency", "L1 hit latency (cycles)", func(c *Config) *int { return &c.L1.LatencyCycles }),
		sizeField("l2.size", "L2 capacity in bytes (accepts 2M etc.)", func(c *Config) *int { return &c.L2.SizeBytes }),
		intField("l2.ways", "L2 associativity", func(c *Config) *int { return &c.L2.Ways }),
		intField("l2.line", "L2 line size in bytes", func(c *Config) *int { return &c.L2.LineBytes }),
		intField("l2.latency", "L2 hit latency (cycles)", func(c *Config) *int { return &c.L2.LatencyCycles }),
		intField("mem.latency", "main-memory latency (cycles)", func(c *Config) *int { return &c.MemLatency }),
		intField("bus.oneway", "CP<->MP one-way bus latency (cycles)", func(c *Config) *int { return &c.BusOneWay }),
		intField("mesh.hop", "per-hop mesh latency (cycles)", func(c *Config) *int { return &c.MeshHop }),
		{
			Name: "noc.model", Doc: "interconnect timing model: analytic | contended",
			Set: func(c *Config, v string) error {
				m, err := ParseNoCModel(v)
				if err != nil {
					return err
				}
				c.NoC = m
				return nil
			},
			Get: func(c *Config) string { return c.NoC.String() },
		},
		intField("noc.linkwidth", "contended-fabric messages per link per cycle (0/1 = one)", func(c *Config) *int { return &c.NoCLinkWidth }),
		{
			Name: "place.policy", Doc: "epoch->bank placement: modn | leastloaded | steal",
			Set: func(c *Config, v string) error {
				p, err := ParsePlacePolicy(v)
				if err != nil {
					return err
				}
				c.Place = p
				return nil
			},
			Get: func(c *Config) string { return c.Place.String() },
		},
		{
			Name: "class.policy", Doc: "execution-locality classifier: reactive | cachelevel | delaytrack",
			Set: func(c *Config, v string) error {
				p, err := ParseClassPolicy(v)
				if err != nil {
					return err
				}
				c.Class = p
				return nil
			},
			Get: func(c *Config) string { return c.Class.String() },
		},
		intField("class.bits", "predictor-table index width (bits, 0 = default)", func(c *Config) *int { return &c.ClassTableBits }),
		{
			Name: "ert", Doc: "ELSQ global-disambiguation filter: line | hash",
			Set: func(c *Config, v string) error {
				k, err := ParseERTKind(v)
				if err != nil {
					return err
				}
				c.ERT = k
				return nil
			},
			Get: func(c *Config) string { return c.ERT.String() },
		},
		intField("ert.bits", "hash-ERT index width (bits)", func(c *Config) *int { return &c.ERTHashBits }),
		{
			Name: "sqm", Doc: "Store Queue Mirror: true | false",
			Set: func(c *Config, v string) error {
				b, err := parseBool(v)
				if err != nil {
					return fmt.Errorf("config: field sqm: %v", err)
				}
				c.SQM = b
				return nil
			},
			Get: func(c *Config) string { return strconv.FormatBool(c.SQM) },
		},
		{
			Name: "disamb", Doc: "disambiguation model: full | rsac | rlac | rsaclac",
			Set: func(c *Config, v string) error {
				d, err := ParseDisambiguation(v)
				if err != nil {
					return err
				}
				c.Disamb = d
				return nil
			},
			Get: func(c *Config) string { return c.Disamb.String() },
		},
		intField("ssbf.bits", "SSBF index width (bits, SVW only)", func(c *Config) *int { return &c.SSBFBits }),
		{
			Name: "svw", Doc: "SVW variant: blind | checkstores",
			Set: func(c *Config, v string) error {
				x, err := ParseSVWVariant(v)
				if err != nil {
					return err
				}
				c.SVW = x
				return nil
			},
			Get: func(c *Config) string { return c.SVW.String() },
		},
		intField("migrate.threshold", "low-locality migration slack (cycles)", func(c *Config) *int { return &c.MigrateThreshold }),
		intField("mispredict.penalty", "front-end redirect cost (cycles)", func(c *Config) *int { return &c.MispredictPenalty }),
		uint64Field("insts", "measured instructions per benchmark", func(c *Config) *uint64 { return &c.MaxInsts }),
		uint64Field("warmup", "functional warm-up instructions", func(c *Config) *uint64 { return &c.WarmupInsts }),
		intField("sample.intervals", "SimPoint-style measured intervals per benchmark (0/1 = contiguous)", func(c *Config) *int { return &c.SampleIntervals }),
		uint64Field("sample.bleed", "functional fast-forward between sample intervals", func(c *Config) *uint64 { return &c.SampleBleedInsts }),
		{
			Name: "trace", Doc: "drive the run from this recorded .elt trace file (empty = live generation)",
			Set: func(c *Config, v string) error {
				// A new path invalidates any previously resolved digest; the
				// runner (sweep.Grid.Expand, bench) re-resolves before keying.
				c.TracePath = v
				c.TraceDigest = ""
				return nil
			},
			Get: func(c *Config) string { return c.TracePath },
		},
		{
			Name: "energy.table", Doc: "energy/area coefficient table for the post-run energy model: base | hp | lp (empty = base; observational only, never affects timing)",
			Set: func(c *Config, v string) error { c.EnergyTable = v; return nil },
			Get: func(c *Config) string { return c.EnergyTable },
		},
	}
}

// fieldIndex builds the by-name lookup once: FieldByName sits on the grid
// expansion hot path (once per axis per grid point).
var fieldIndex = sync.OnceValue(func() map[string]FieldSpec {
	m := make(map[string]FieldSpec)
	for _, f := range fieldRegistry() {
		m[f.Name] = f
	}
	return m
})

// Fields returns every sweepable field, sorted by name.
func Fields() []FieldSpec {
	fs := fieldRegistry()
	sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
	return fs
}

// FieldByName returns the field with the given canonical name.
func FieldByName(name string) (FieldSpec, error) {
	if f, ok := fieldIndex()[name]; ok {
		return f, nil
	}
	return FieldSpec{}, fmt.Errorf("config: unknown field %q (see config.Fields or elsqsweep -fields)", name)
}

// SetField parses value and assigns it to the named field of c.
func SetField(c *Config, name, value string) error {
	f, err := FieldByName(name)
	if err != nil {
		return err
	}
	return f.Set(c, value)
}
