package config

import (
	"encoding/json"
	"testing"
)

// Every registered field must round-trip its own Get output through Set
// without changing the config, and the registry must be sorted and free of
// duplicates.
func TestFieldRoundTrip(t *testing.T) {
	fields := Fields()
	seen := map[string]bool{}
	prev := ""
	for _, f := range fields {
		if seen[f.Name] {
			t.Errorf("duplicate field %q", f.Name)
		}
		seen[f.Name] = true
		if f.Name < prev {
			t.Errorf("Fields not sorted: %q after %q", f.Name, prev)
		}
		prev = f.Name
		c := Default()
		v := f.Get(&c)
		if err := f.Set(&c, v); err != nil {
			t.Errorf("field %s: Set(Get()) = %v", f.Name, err)
		}
		if got := f.Get(&c); got != v {
			t.Errorf("field %s: round trip %q -> %q", f.Name, v, got)
		}
	}
	if len(fields) < 30 {
		t.Errorf("registry suspiciously small: %d fields", len(fields))
	}
}

func TestSetField(t *testing.T) {
	c := Default()
	if err := SetField(&c, "l1.size", "64K"); err != nil {
		t.Fatal(err)
	}
	if c.L1.SizeBytes != 64<<10 {
		t.Errorf("l1.size=64K -> %d", c.L1.SizeBytes)
	}
	if err := SetField(&c, "ert", "line"); err != nil {
		t.Fatal(err)
	}
	if c.ERT != ERTLine {
		t.Errorf("ert=line -> %v", c.ERT)
	}
	if err := SetField(&c, "sqm", "false"); err != nil {
		t.Fatal(err)
	}
	if c.SQM {
		t.Error("sqm=false ignored")
	}
	if err := SetField(&c, "insts", "12345"); err != nil {
		t.Fatal(err)
	}
	if c.MaxInsts != 12345 {
		t.Errorf("insts=12345 -> %d", c.MaxInsts)
	}
	if err := SetField(&c, "no.such.field", "1"); err == nil {
		t.Error("unknown field accepted")
	}
	if err := SetField(&c, "rob.size", "many"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int{
		"4096": 4096, "16K": 16 << 10, "32k": 32 << 10, "2M": 2 << 20,
		"1G": 1 << 30, "64KB": 64 << 10,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "K", "12Q", "1.5K"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

// Enums must survive a JSON round trip in their text form, including the
// "rsac+rlac" display spelling of DisambRSACLAC.
func TestEnumTextRoundTrip(t *testing.T) {
	c := Default()
	c.Model = ModelOoO
	c.LSQ = LSQSVW
	c.ERT = ERTLine
	c.Disamb = DisambRSACLAC
	c.SVW = SVWCheckStores
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("JSON round trip changed the config:\n got %+v\nwant %+v", back, c)
	}
}

func TestHash(t *testing.T) {
	a, b := Default(), Default()
	if a.Hash() != b.Hash() {
		t.Error("equal configs hash differently")
	}
	b.L1.SizeBytes = 64 << 10
	if a.Hash() == b.Hash() {
		t.Error("different configs hash identically")
	}
	c := Default()
	c.MaxInsts = 999 // the instruction budget is part of the identity
	if a.Hash() == c.Hash() {
		t.Error("instruction budget not part of the hash")
	}
	back, err := FromCanonical(a.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Error("FromCanonical(Canonical()) changed the config")
	}
}
