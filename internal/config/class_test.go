package config

import (
	"strings"
	"testing"
)

// TestClassOmittedAtDefault pins the byte-identity contract the prediction
// layer rides on: the default reactive classifier (and its table geometry)
// vanishes from the canonical encoding, so golden SweepKeys, sweep cache
// keys and checkpoint keys predating the fields stay byte-identical.
func TestClassOmittedAtDefault(t *testing.T) {
	def := Default()
	s := string(def.Canonical())
	if strings.Contains(s, "Class") {
		t.Fatalf("default canonical encoding mentions Class:\n%s", s)
	}
	clp := def
	clp.Class = ClassCacheLevel
	if !strings.Contains(string(clp.Canonical()), "Class") {
		t.Fatal("non-default Class missing from canonical encoding")
	}
	if def.Hash() == clp.Hash() {
		t.Fatal("Class does not reach the config hash")
	}
}

// TestClassBitsNormalization: table geometry is dead state under the
// reactive policy, and the default width is equivalent to leaving it unset,
// so Canonical folds both to zero — two spellings of one machine must
// share a sweep cache key.
func TestClassBitsNormalization(t *testing.T) {
	def := Default()
	reactiveBits := Default()
	reactiveBits.ClassTableBits = 12 // dead: no table exists
	if got, want := reactiveBits.Hash(), def.Hash(); got != want {
		t.Fatalf("reactive table bits reach the hash: %s vs %s", got, want)
	}

	explicit := Default()
	explicit.Class = ClassDelayTrack
	explicit.ClassTableBits = DefaultClassTableBits
	implicit := Default()
	implicit.Class = ClassDelayTrack
	if explicit.Hash() != implicit.Hash() {
		t.Fatal("explicit default table bits change the hash")
	}
	if s := string(explicit.Canonical()); strings.Contains(s, "ClassTableBits") {
		t.Fatalf("default-width table bits survive canonicalization:\n%s", s)
	}

	narrow := implicit
	narrow.ClassTableBits = 8
	if narrow.Hash() == implicit.Hash() {
		t.Fatal("non-default table bits do not reach the hash")
	}
}

// TestClassExcludedFromWarmKey: classification is timing-only — it moves
// instructions between the HL and LL pipelines but never changes functional
// warm-up state — so runs differing only on the classifier must share
// warm-up checkpoints and batch lane groups.
func TestClassExcludedFromWarmKey(t *testing.T) {
	def := Default()
	clp := def
	clp.Class = ClassCacheLevel
	clp.ClassTableBits = 14
	if def.WarmKey() != clp.WarmKey() {
		t.Fatalf("warm key moved with the classifier: %s vs %s", def.WarmKey(), clp.WarmKey())
	}
}

// TestClassFieldRoundTrip exercises the registry axes elsqsweep and the
// fuzzer drive, including the spelled-out aliases.
func TestClassFieldRoundTrip(t *testing.T) {
	spec, err := FieldByName("class.policy")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	if got := spec.Get(&cfg); got != "reactive" {
		t.Fatalf("default class.policy = %q, want reactive", got)
	}
	for in, want := range map[string]ClassPolicy{
		"reactive":    ClassReactive,
		"cachelevel":  ClassCacheLevel,
		"cache-level": ClassCacheLevel,
		"clp":         ClassCacheLevel,
		"delaytrack":  ClassDelayTrack,
		"delay-track": ClassDelayTrack,
		"dtp":         ClassDelayTrack,
	} {
		if err := SetField(&cfg, "class.policy", in); err != nil {
			t.Fatalf("class.policy=%s: %v", in, err)
		}
		if cfg.Class != want {
			t.Fatalf("class.policy=%s set %v, want %v", in, cfg.Class, want)
		}
	}
	if err := SetField(&cfg, "class.policy", "psychic"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := SetField(&cfg, "class.bits", "12"); err != nil {
		t.Fatal(err)
	}
	if cfg.ClassTableBits != 12 || cfg.ClassBits() != 12 {
		t.Fatalf("class.bits round trip lost the value: %d", cfg.ClassTableBits)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("fuzz-style point fails Validate: %v", err)
	}
}

// TestClassValidateAndDefaults: the zero geometry resolves to the documented
// default width, and out-of-range widths fail loudly.
func TestClassValidateAndDefaults(t *testing.T) {
	cfg := Default()
	if cfg.ClassBits() != DefaultClassTableBits {
		t.Fatalf("zero ClassTableBits resolves to %d, want %d", cfg.ClassBits(), DefaultClassTableBits)
	}
	cfg.ClassTableBits = 25
	if err := cfg.Validate(); err == nil {
		t.Fatal("ClassTableBits=25 passed Validate")
	}
	cfg.ClassTableBits = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("ClassTableBits=-1 passed Validate")
	}
}

// TestClassName pins the scheme-name suffixes the bench matrix and sweep
// reports key on.
func TestClassName(t *testing.T) {
	clp := Default()
	clp.Class = ClassCacheLevel
	if n := clp.Name(); !strings.HasSuffix(n, "+CLP") {
		t.Errorf("cachelevel name %q lacks +CLP suffix", n)
	}
	dtp := Default()
	dtp.Class = ClassDelayTrack
	if n := dtp.Name(); !strings.HasSuffix(n, "+DTP") {
		t.Errorf("delaytrack name %q lacks +DTP suffix", n)
	}
	ooo := OoO64()
	ooo.Class = ClassCacheLevel
	if n := ooo.Name(); strings.Contains(n, "CLP") {
		t.Errorf("OoO name %q carries a classifier suffix (classifier is FMC-only)", n)
	}
}
