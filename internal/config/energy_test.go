package config

import (
	"strings"
	"testing"
)

// TestEnergyTableOmittedAtDefault pins the byte-identity contract the
// energy model rides on: the default (empty) EnergyTable vanishes from the
// canonical encoding, so golden SweepKeys, sweep cache keys and checkpoint
// keys predating the field stay byte-identical.
func TestEnergyTableOmittedAtDefault(t *testing.T) {
	def := Default()
	if s := string(def.Canonical()); strings.Contains(s, "EnergyTable") {
		t.Fatalf("default canonical encoding mentions EnergyTable:\n%s", s)
	}
	hp := def
	hp.EnergyTable = "hp"
	if !strings.Contains(string(hp.Canonical()), "EnergyTable") {
		t.Fatal("non-default EnergyTable missing from canonical encoding")
	}
	if def.Hash() == hp.Hash() {
		t.Fatal("EnergyTable does not reach the config hash")
	}
}

// TestEnergyTableExcludedFromWarmKey: the coefficient table is
// observational, so runs differing only on it must share warm-up
// checkpoints and batch lane groups.
func TestEnergyTableExcludedFromWarmKey(t *testing.T) {
	def := Default()
	hp := def
	hp.EnergyTable = "hp"
	if def.WarmKey() != hp.WarmKey() {
		t.Fatalf("warm key moved with the energy table: %s vs %s", def.WarmKey(), hp.WarmKey())
	}
}

// TestEnergyTableFieldRoundTrip exercises the registry axis elsqsweep and
// the fuzzer drive.
func TestEnergyTableFieldRoundTrip(t *testing.T) {
	spec, err := FieldByName("energy.table")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	if got := spec.Get(&cfg); got != "" {
		t.Fatalf("default energy.table = %q, want empty", got)
	}
	if err := SetField(&cfg, "energy.table", "lp"); err != nil {
		t.Fatal(err)
	}
	if cfg.EnergyTable != "lp" || spec.Get(&cfg) != "lp" {
		t.Fatalf("round trip lost the value: field %q, getter %q", cfg.EnergyTable, spec.Get(&cfg))
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("energy.table=lp fails Validate: %v", err)
	}
}
