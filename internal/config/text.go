package config

import (
	"fmt"
	"strconv"
	"strings"
)

// This file gives every enum a text round-trip (used by JSON serialisation,
// the canonical hash encoding, and the sweep CLI's axis parser) and provides
// the value parsers shared by cmd/elsqsim-style flag handling and the
// internal/sweep field registry.

// ParseModel parses a processor-model name ("fmc", "ooo", "OoO-64").
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(s) {
	case "fmc":
		return ModelFMC, nil
	case "ooo", "ooo-64", "ooo64":
		return ModelOoO, nil
	}
	return 0, fmt.Errorf("config: unknown model %q (want fmc | ooo)", s)
}

// ParseLSQScheme parses a queue-organisation name.
func ParseLSQScheme(s string) (LSQScheme, error) {
	switch strings.ToLower(s) {
	case "central":
		return LSQCentral, nil
	case "conventional":
		return LSQConventional, nil
	case "elsq":
		return LSQELSQ, nil
	case "svw":
		return LSQSVW, nil
	}
	return 0, fmt.Errorf("config: unknown LSQ scheme %q (want central | conventional | elsq | svw)", s)
}

// ParseERTKind parses an ERT filter kind.
func ParseERTKind(s string) (ERTKind, error) {
	switch strings.ToLower(s) {
	case "line":
		return ERTLine, nil
	case "hash":
		return ERTHash, nil
	}
	return 0, fmt.Errorf("config: unknown ERT kind %q (want line | hash)", s)
}

// ParseDisambiguation parses a restricted-disambiguation model name.
func ParseDisambiguation(s string) (Disambiguation, error) {
	switch strings.ToLower(s) {
	case "full":
		return DisambFull, nil
	case "rsac":
		return DisambRSAC, nil
	case "rlac":
		return DisambRLAC, nil
	case "rsaclac", "rsac+rlac":
		return DisambRSACLAC, nil
	}
	return 0, fmt.Errorf("config: unknown disambiguation %q (want full | rsac | rlac | rsaclac)", s)
}

// ParseClassPolicy parses an execution-locality classifier name.
func ParseClassPolicy(s string) (ClassPolicy, error) {
	switch strings.ToLower(s) {
	case "reactive":
		return ClassReactive, nil
	case "cachelevel", "cache-level", "clp":
		return ClassCacheLevel, nil
	case "delaytrack", "delay-track", "dtp":
		return ClassDelayTrack, nil
	}
	return 0, fmt.Errorf("config: unknown classification policy %q (want reactive | cachelevel | delaytrack)", s)
}

// ParseSVWVariant parses an SVW filtering-variant name.
func ParseSVWVariant(s string) (SVWVariant, error) {
	switch strings.ToLower(s) {
	case "blind":
		return SVWBlind, nil
	case "checkstores":
		return SVWCheckStores, nil
	}
	return 0, fmt.Errorf("config: unknown SVW variant %q (want blind | checkstores)", s)
}

// ParseNoCModel parses an interconnect timing-model name.
func ParseNoCModel(s string) (NoCModel, error) {
	switch strings.ToLower(s) {
	case "analytic", "free":
		return NoCAnalytic, nil
	case "contended":
		return NoCContended, nil
	}
	return 0, fmt.Errorf("config: unknown NoC model %q (want analytic | contended)", s)
}

// ParsePlacePolicy parses an epoch-placement policy name.
func ParsePlacePolicy(s string) (PlacePolicy, error) {
	switch strings.ToLower(s) {
	case "modn", "mod-n":
		return PlaceModN, nil
	case "leastloaded", "least-loaded":
		return PlaceLeastLoaded, nil
	case "steal":
		return PlaceSteal, nil
	}
	return 0, fmt.Errorf("config: unknown placement policy %q (want modn | leastloaded | steal)", s)
}

// MarshalText implements encoding.TextMarshaler.
func (m Model) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *Model) UnmarshalText(b []byte) error {
	v, err := ParseModel(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (s LSQScheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *LSQScheme) UnmarshalText(b []byte) error {
	v, err := ParseLSQScheme(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (k ERTKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *ERTKind) UnmarshalText(b []byte) error {
	v, err := ParseERTKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (d Disambiguation) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (d *Disambiguation) UnmarshalText(b []byte) error {
	v, err := ParseDisambiguation(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (v SVWVariant) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (v *SVWVariant) UnmarshalText(b []byte) error {
	x, err := ParseSVWVariant(string(b))
	if err != nil {
		return err
	}
	*v = x
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (m NoCModel) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *NoCModel) UnmarshalText(b []byte) error {
	v, err := ParseNoCModel(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (p PlacePolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *PlacePolicy) UnmarshalText(b []byte) error {
	v, err := ParsePlacePolicy(string(b))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (p ClassPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *ClassPolicy) UnmarshalText(b []byte) error {
	v, err := ParseClassPolicy(string(b))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParseSize parses a byte size with an optional K/M/G suffix ("32K", "2M",
// "4096"). The suffixes are binary (K = 1024).
func ParseSize(s string) (int, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if len(t) > 1 && strings.HasSuffix(t, "B") {
		t = strings.TrimSuffix(t, "B")
	}
	mult := 1
	switch {
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, strings.TrimSuffix(t, "K")
	}
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("config: bad size %q: %v", s, err)
	}
	return n * mult, nil
}

// parseBool parses a flexible boolean ("true", "1", "on", "yes", ...).
func parseBool(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "true", "1", "on", "yes":
		return true, nil
	case "false", "0", "off", "no":
		return false, nil
	}
	return false, fmt.Errorf("config: bad boolean %q", s)
}
