package config

import (
	"strings"
	"testing"
)

// TestTable1Defaults pins every value of the paper's Table 1.
func TestTable1Defaults(t *testing.T) {
	c := Default()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"Fetch/Decode BW", c.FetchWidth, 4},
		{"CP ROB size", c.ROBSize, 64},
		{"ME max instructions", c.EpochMaxInsts, 128},
		{"ME max loads", c.EpochMaxLoads, 64},
		{"ME max stores", c.EpochMaxStores, 32},
		{"CP int IQ", c.IntIQ, 40},
		{"CP fp IQ", c.FpIQ, 40},
		{"CP int regs", c.IntRegs, 96},
		{"CP fp regs", c.FpRegs, 96},
		{"ME IQ entries", c.MEIQ, 20},
		{"ME issue width", c.MEIssueWidth, 2},
		{"cache ports", c.CachePorts, 2},
		{"L1 size", c.L1.SizeBytes, 32 << 10},
		{"L1 ways", c.L1.Ways, 4},
		{"L1 line", c.L1.LineBytes, 32},
		{"L1 latency", c.L1.LatencyCycles, 1},
		{"L2 size", c.L2.SizeBytes, 2 << 20},
		{"L2 ways", c.L2.Ways, 4},
		{"L2 latency", c.L2.LatencyCycles, 10},
		{"mem latency", c.MemLatency, 400},
		{"epochs", c.NumEpochs, 16},
	}
	for _, chk := range checks {
		if chk.got != chk.want {
			t.Errorf("%s = %d, want %d (Table 1)", chk.name, chk.got, chk.want)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Default() does not validate: %v", err)
	}
}

func TestOoO64(t *testing.T) {
	c := OoO64()
	if c.Model != ModelOoO || c.LSQ != LSQConventional {
		t.Errorf("OoO64 model/lsq = %v/%v", c.Model, c.LSQ)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("OoO64() does not validate: %v", err)
	}
	if c.WindowSize() != 64 {
		t.Errorf("OoO-64 window = %d, want 64", c.WindowSize())
	}
}

func TestWindowSizeFMC(t *testing.T) {
	c := Default()
	// Paper: FMC emulates a window of around 1500 in-flight instructions
	// (16 epochs x 128 + 64-entry CP ROB = 2112 capacity; occupancy ~1500).
	if got := c.WindowSize(); got != 64+16*128 {
		t.Errorf("FMC window = %d, want %d", got, 64+16*128)
	}
}

func TestCacheGeometry(t *testing.T) {
	c := Default()
	if s := c.L1.Sets(); s != 256 {
		t.Errorf("32KB/4way/32B L1 sets = %d, want 256", s)
	}
	if l := c.L1.Lines(); l != 1024 {
		t.Errorf("L1 lines = %d, want 1024", l)
	}
	if s := c.L2.Sets(); s != 16384 {
		t.Errorf("2MB/4way/32B L2 sets = %d, want 16384", s)
	}
}

func TestValidateErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"fetch", func(c *Config) { c.FetchWidth = 0 }, "FetchWidth"},
		{"commit", func(c *Config) { c.CommitWidth = -1 }, "CommitWidth"},
		{"rob", func(c *Config) { c.ROBSize = 0 }, "ROBSize"},
		{"ports", func(c *Config) { c.CachePorts = 0 }, "CachePorts"},
		{"epochs", func(c *Config) { c.NumEpochs = 0 }, "NumEpochs"},
		{"epochinsts", func(c *Config) { c.EpochMaxInsts = 0 }, "EpochMaxInsts"},
		{"l1", func(c *Config) { c.L1.Ways = 0 }, "L1"},
		{"l2", func(c *Config) { c.L2.SizeBytes = 0 }, "L2"},
		{"l1pow2", func(c *Config) { c.L1.SizeBytes = 3 * 10240 }, "power of two"},
		{"ertbits", func(c *Config) { c.ERTHashBits = 0 }, "ERTHashBits"},
		{"maxinsts", func(c *Config) { c.MaxInsts = 0 }, "MaxInsts"},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.frag) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.frag)
		}
	}
	// SSBF bits only checked under SVW scheme.
	c := Default()
	c.LSQ = LSQSVW
	c.SSBFBits = 30
	if c.Validate() == nil {
		t.Error("SSBFBits=30 accepted under SVW")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		mut  func(*Config)
		want string
	}{
		{func(c *Config) { c.Model = ModelOoO; c.LSQ = LSQConventional }, "OoO-64"},
		{func(c *Config) { c.Model = ModelOoO; c.LSQ = LSQSVW }, "OoO-64-SVW"},
		{func(c *Config) { c.LSQ = LSQCentral }, "FMC-Central"},
		{func(c *Config) { c.LSQ = LSQSVW }, "FMC-Hash-SVW"},
		{func(c *Config) { c.ERT = ERTHash; c.SQM = false }, "FMC-Hash"},
		{func(c *Config) { c.ERT = ERTLine; c.SQM = false }, "FMC-Line"},
		{func(c *Config) { c.ERT = ERTHash; c.SQM = true }, "FMC-Hash+SQM"},
		{func(c *Config) { c.ERT = ERTHash; c.SQM = false; c.Disamb = DisambRSAC }, "FMC-Hash-RSAC"},
	}
	for _, tc := range cases {
		c := Default()
		tc.mut(&c)
		if got := c.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if ModelOoO.String() != "OoO-64" || ModelFMC.String() != "FMC" {
		t.Error("Model strings wrong")
	}
	for s, want := range map[LSQScheme]string{
		LSQCentral: "central", LSQConventional: "conventional",
		LSQELSQ: "elsq", LSQSVW: "svw",
	} {
		if s.String() != want {
			t.Errorf("LSQScheme %d = %q, want %q", s, s.String(), want)
		}
	}
	if ERTLine.String() != "line" || ERTHash.String() != "hash" {
		t.Error("ERTKind strings wrong")
	}
	for d, want := range map[Disambiguation]string{
		DisambFull: "full", DisambRSAC: "rsac",
		DisambRLAC: "rlac", DisambRSACLAC: "rsac+rlac",
	} {
		if d.String() != want {
			t.Errorf("Disambiguation %d = %q, want %q", d, d.String(), want)
		}
	}
	if SVWBlind.String() != "blind" || SVWCheckStores.String() != "checkstores" {
		t.Error("SVWVariant strings wrong")
	}
}

// TestCanonicalNormalisesInertSampling pins the cache-identity rule for the
// sampling fields: 0 and 1 intervals are the same (contiguous) measurement
// and bleed is dead without at least two intervals, so none of those
// settings may split the canonical identity.
func TestCanonicalNormalisesInertSampling(t *testing.T) {
	base := Default()
	one := Default()
	one.SampleIntervals = 1
	deadBleed := Default()
	deadBleed.SampleBleedInsts = 999
	both := Default()
	both.SampleIntervals = 1
	both.SampleBleedInsts = 999
	for i, c := range []Config{one, deadBleed, both} {
		if c.Hash() != base.Hash() {
			t.Errorf("case %d: semantically inert sampling settings changed the canonical identity", i)
		}
	}
	sampled := Default()
	sampled.SampleIntervals = 4
	if sampled.Hash() == base.Hash() {
		t.Error("a real interval split must change the canonical identity")
	}
	zeroBleedSampled := Default()
	zeroBleedSampled.SampleIntervals = 4
	zeroBleedSampled.SampleBleedInsts = 1
	if zeroBleedSampled.Hash() == sampled.Hash() {
		t.Error("bleed with real intervals must change the canonical identity")
	}
}

// TestTraceIdentity pins the trace-field identity rules: an unset trace
// leaves the legacy canonical encoding byte-identical (golden digests,
// sweep/ckpt cache keys survive the field's introduction), a resolved
// digest content-addresses the config regardless of the file's path, and
// the trace identity separates warm-up keys.
func TestTraceIdentity(t *testing.T) {
	base := Default()
	// The canonical encoding of a non-trace config must not mention the
	// trace fields at all — that is what keeps every pre-trace cache key
	// and golden digest valid.
	if b := base.Canonical(); strings.Contains(string(b), "Trace") {
		t.Errorf("trace-less canonical encoding mentions the trace fields: %s", b)
	}

	resolvedA := Default()
	resolvedA.TracePath = "/tmp/a.elt"
	resolvedA.TraceDigest = "00112233445566778899aabbccddeeff"
	resolvedB := Default()
	resolvedB.TracePath = "/elsewhere/b.elt"
	resolvedB.TraceDigest = resolvedA.TraceDigest
	if resolvedA.Hash() != resolvedB.Hash() {
		t.Error("same trace content under different paths split the canonical identity")
	}
	if resolvedA.Hash() == base.Hash() {
		t.Error("a trace-driven config shares the live config's identity")
	}
	if resolvedA.WarmKey() == base.WarmKey() {
		t.Error("a trace-driven config shares the live config's warm key")
	}
	otherDigest := resolvedA
	otherDigest.TraceDigest = "ffeeddccbbaa99887766554433221100"
	if otherDigest.Hash() == resolvedA.Hash() {
		t.Error("different trace contents share a canonical identity")
	}
	if otherDigest.WarmKey() == resolvedA.WarmKey() {
		t.Error("different trace contents share a warm key")
	}

	// Unresolved configs fall back to path identity (better than colliding
	// with live generation; Resolve upgrades them to content addressing).
	unresolved := Default()
	unresolved.TracePath = "/tmp/a.elt"
	if unresolved.Hash() == base.Hash() || unresolved.WarmKey() == base.WarmKey() {
		t.Error("an unresolved trace config collides with the live config")
	}
}
