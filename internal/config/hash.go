package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns the canonical serialisation of the configuration: JSON
// with fields in declaration order and enums in their text form. Two configs
// have equal Canonical output iff every simulated parameter is equal, so the
// encoding doubles as the result-cache identity (internal/sweep) and as the
// config record embedded in sweep artifacts. Semantically inert sampling
// settings are normalised away first — SampleIntervals 0 and 1 both mean a
// contiguous measurement and SampleBleedInsts is dead without at least two
// intervals — so equivalent configs share one identity. A trace-driven
// config with a resolved TraceDigest canonicalises to the digest alone
// (TracePath dropped): the digest names the instruction stream, the path
// merely locates a copy of it.
func (c *Config) Canonical() []byte {
	cc := *c
	if cc.SampleIntervals <= 1 {
		cc.SampleIntervals = 0
		cc.SampleBleedInsts = 0
	}
	if cc.TraceDigest != "" {
		cc.TracePath = ""
	}
	// Link width is dead under the analytic fabric, and 0 and 1 both mean
	// one message per cycle under the contended one.
	if cc.NoC == NoCAnalytic || cc.NoCLinkWidth == 1 {
		cc.NoCLinkWidth = 0
	}
	// Predictor-table geometry is dead under the reactive policy, and 0 and
	// the default width both mean DefaultClassTableBits entries.
	if cc.Class == ClassReactive || cc.ClassTableBits == DefaultClassTableBits {
		cc.ClassTableBits = 0
	}
	b, err := json.Marshal(&cc)
	if err != nil {
		// Config is a flat struct of ints, bools and text-marshalling
		// enums; encoding can only fail if the struct gains an
		// unserialisable field, which must not happen silently.
		panic(fmt.Sprintf("config: canonical encoding failed: %v", err))
	}
	return b
}

// Hash returns a stable short digest of the canonical encoding, usable as a
// filename or map key. Identical configurations hash identically across
// processes and runs.
func (c *Config) Hash() string {
	sum := sha256.Sum256(c.Canonical())
	return hex.EncodeToString(sum[:8])
}

// FromCanonical parses a configuration previously produced by Canonical.
func FromCanonical(b []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(b, &c); err != nil {
		return Config{}, fmt.Errorf("config: bad canonical encoding: %w", err)
	}
	return c, nil
}
