package config

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNoCPlaceCanonicalStability pins the cache-compatibility contract for
// the fabric and placement fields: a default config's canonical encoding
// must not mention them at all (every pre-fabric golden digest, sweep key
// and checkpoint key stays byte-identical), and only semantically real
// settings may split the identity.
func TestNoCPlaceCanonicalStability(t *testing.T) {
	base := Default()
	b := string(base.Canonical())
	for _, key := range []string{"NoC", "Place"} {
		if strings.Contains(b, key) {
			t.Errorf("default canonical encoding mentions %q: %s", key, b)
		}
	}

	// Link width is inert under the analytic model and 1 is the contended
	// default, so neither may split the identity.
	inertWidth := Default()
	inertWidth.NoCLinkWidth = 4
	if inertWidth.Hash() != base.Hash() {
		t.Error("link width under the analytic model changed the identity")
	}
	widthOne := Default()
	widthOne.NoC = NoCContended
	widthOne.NoCLinkWidth = 1
	widthZero := Default()
	widthZero.NoC = NoCContended
	if widthOne.Hash() != widthZero.Hash() {
		t.Error("contended link widths 0 and 1 split the identity")
	}

	// Real settings must split it.
	if widthZero.Hash() == base.Hash() {
		t.Error("the contended fabric shares the analytic identity")
	}
	wide := Default()
	wide.NoC = NoCContended
	wide.NoCLinkWidth = 2
	if wide.Hash() == widthZero.Hash() {
		t.Error("contended link width 2 shares the width-1 identity")
	}
	for _, pol := range []PlacePolicy{PlaceLeastLoaded, PlaceSteal} {
		c := Default()
		c.Place = pol
		if c.Hash() == base.Hash() {
			t.Errorf("placement policy %v shares the mod-N identity", pol)
		}
	}

	// Round trip through the canonical encoding.
	c := Default()
	c.NoC = NoCContended
	c.NoCLinkWidth = 2
	c.Place = PlaceSteal
	back, err := FromCanonical(c.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("FromCanonical changed the config:\n got %+v\nwant %+v", back, c)
	}
}

// TestNoCPlaceWarmKeyInvariant: fabric and placement are timing-only — they
// cannot change functional warm-up state, so warm-up checkpoints must be
// shared across every noc/place setting.
func TestNoCPlaceWarmKeyInvariant(t *testing.T) {
	base := Default()
	variants := []func(*Config){
		func(c *Config) { c.NoC = NoCContended },
		func(c *Config) { c.NoC = NoCContended; c.NoCLinkWidth = 4 },
		func(c *Config) { c.Place = PlaceLeastLoaded },
		func(c *Config) { c.Place = PlaceSteal },
	}
	for i, mut := range variants {
		c := Default()
		mut(&c)
		if c.WarmKey() != base.WarmKey() {
			t.Errorf("variant %d: timing-only fabric/placement setting changed the warm-up key", i)
		}
	}
}

// TestNoCPlaceTextForms covers the enums' parse and JSON text round trips,
// including the accepted spelling aliases.
func TestNoCPlaceTextForms(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want NoCModel
	}{{"analytic", NoCAnalytic}, {"free", NoCAnalytic}, {"contended", NoCContended}} {
		got, err := ParseNoCModel(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseNoCModel(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParseNoCModel("warp"); err == nil {
		t.Error("ParseNoCModel accepted garbage")
	}
	for _, tt := range []struct {
		in   string
		want PlacePolicy
	}{
		{"modn", PlaceModN}, {"mod-n", PlaceModN},
		{"leastloaded", PlaceLeastLoaded}, {"least-loaded", PlaceLeastLoaded},
		{"steal", PlaceSteal},
	} {
		got, err := ParsePlacePolicy(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParsePlacePolicy(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParsePlacePolicy("random"); err == nil {
		t.Error("ParsePlacePolicy accepted garbage")
	}

	c := Default()
	c.NoC = NoCContended
	c.NoCLinkWidth = 2
	c.Place = PlaceLeastLoaded
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("JSON round trip changed the config:\n got %+v\nwant %+v", back, c)
	}
}
