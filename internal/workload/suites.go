package workload

import "repro/internal/xrand"

// The suites below mirror SPEC CPU 2000's composition benchmark-by-
// benchmark: each synthetic kernel is parameterised after the published
// behavioural character of its namesake — hot (L1-resident) and warm
// (L2-resident) working sets, an irreducible memory-miss rate injected by a
// coldStream (first-touch data), pointer intensity, and branch quality.
// The aggregate statistics the paper's results depend on — load/store
// fractions, the Figure 1 locality split, MLP, speculation quality — are
// asserted by the package tests; IPC-level calibration against the paper's
// baselines (OoO-64: INT 1.55, FP 1.42) lives in the cpu package tests.

// IntSuite returns the 12 SPEC INT 2000-like benchmarks.
func IntSuite() []Profile {
	return []Profile{
		{"gzip", SuiteInt, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.7, 0.3},
				&intStreamKernel{wsBytes: 64 << 10, intOps: 4, mispred: 0.035, storeFrac: 0.5,
					cold: coldStream{every: 220, lane: 1, depEvery: 1}, r: r},
				&localKernel{wsBytes: 512 << 10, intOps: 4, mispred: 0.04, storeFrac: 0.3,
					hotFrac: 0.8, cold: coldStream{every: 320, lane: 2, depEvery: 1}, r: r})
		}},
		{"vpr", SuiteInt, func(r *xrand.RNG) kernel {
			return &localKernel{wsBytes: 3 << 19, intOps: 4, mispred: 0.06, storeFrac: 0.35,
				hotFrac: 0.75, cold: coldStream{every: 110, lane: 1, depEvery: 1}, r: r}
		}},
		{"gcc", SuiteInt, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.55, 0.45},
				&stackKernel{frameRegs: 5, opsPer: 9, mispred: 0.05, maxDepth: 24, r: r},
				&hashKernel{tableBytes: 1 << 20, intOps: 4, mispred: 0.05, storeFrac: 0.35,
					hotFrac: 0.85, cold: coldStream{every: 70, lane: 1, depEvery: 1}, r: r})
		}},
		{"mcf", SuiteInt, func(r *xrand.RNG) kernel {
			return &chaseKernel{nChains: 6, wsBytes: 192 << 20, workPer: 3,
				mispred: 0.045, homeEvery: 4, hotFrac: 0.75, r: r}
		}},
		{"crafty", SuiteInt, func(r *xrand.RNG) kernel {
			return &hashKernel{tableBytes: 512 << 10, intOps: 6, mispred: 0.05, storeFrac: 0.3,
				hotFrac: 0.85, hotBytes: 32 << 10, cold: coldStream{every: 500, lane: 1, depEvery: 1}, r: r}
		}},
		{"parser", SuiteInt, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.45, 0.55},
				&chaseKernel{nChains: 2, wsBytes: 32 << 20, workPer: 4,
					mispred: 0.055, homeEvery: 5, hotFrac: 0.85, r: r},
				&stackKernel{frameRegs: 5, opsPer: 8, mispred: 0.055, maxDepth: 16, r: r})
		}},
		{"eon", SuiteInt, func(r *xrand.RNG) kernel {
			return &stackKernel{frameRegs: 6, opsPer: 12, mispred: 0.025, maxDepth: 20, r: r}
		}},
		{"perlbmk", SuiteInt, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.5, 0.5},
				&stackKernel{frameRegs: 5, opsPer: 10, mispred: 0.045, maxDepth: 28, r: r},
				&hashKernel{tableBytes: 1 << 20, intOps: 4, mispred: 0.045, storeFrac: 0.3,
					hotFrac: 0.85, cold: coldStream{every: 160, lane: 1, depEvery: 1}, r: r})
		}},
		{"gap", SuiteInt, func(r *xrand.RNG) kernel {
			return &hashKernel{tableBytes: 1 << 20, intOps: 5, mispred: 0.04, storeFrac: 0.3,
				hotFrac: 0.70, cold: coldStream{every: 40, lane: 1, depEvery: 1}, r: r}
		}},
		{"vortex", SuiteInt, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.6, 0.4},
				&hashKernel{tableBytes: 1 << 20, intOps: 4, mispred: 0.03, storeFrac: 0.35,
					hotFrac: 0.85, cold: coldStream{every: 80, lane: 1, depEvery: 1}, r: r},
				&stackKernel{frameRegs: 6, opsPer: 9, mispred: 0.03, maxDepth: 16, r: r})
		}},
		{"bzip2", SuiteInt, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.65, 0.35},
				&intStreamKernel{wsBytes: 256 << 10, intOps: 5, mispred: 0.04, storeFrac: 0.4,
					cold: coldStream{every: 90, lane: 1, depEvery: 1}, r: r},
				&localKernel{wsBytes: 512 << 10, intOps: 5, mispred: 0.045, storeFrac: 0.3,
					hotFrac: 0.8, cold: coldStream{every: 180, lane: 2, depEvery: 1}, r: r})
		}},
		{"twolf", SuiteInt, func(r *xrand.RNG) kernel {
			return &localKernel{wsBytes: 2 << 20, intOps: 5, mispred: 0.06, storeFrac: 0.35,
				hotFrac: 0.78, cold: coldStream{every: 110, lane: 1, depEvery: 1}, r: r}
		}},
	}
}

// FPSuite returns the 14 SPEC FP 2000-like benchmarks.
func FPSuite() []Profile {
	return []Profile{
		{"wupwise", SuiteFP, func(r *xrand.RNG) kernel {
			return &blockedKernel{wsBytes: 768 << 10, fpOps: 7, intOps: 2, mispred: 0.006,
				cold: coldStream{every: 320, lane: 1}, r: r}
		}},
		{"swim", SuiteFP, func(r *xrand.RNG) kernel {
			return &streamKernel{nStreams: 4, wsBytes: 256 << 20, elem: 8, fpOps: 8,
				mispred: 0.003, reuse: -1, cold: coldStream{every: 44, burst: 1, lane: 1}}
		}},
		{"mgrid", SuiteFP, func(r *xrand.RNG) kernel {
			return &stencilKernel{rowBytes: 16 << 10, wsBytes: 64 << 20, fpOps: 7,
				mispred: 0.002, reuse: -1, windowBytes: 256 << 10,
				cold: coldStream{every: 52, burst: 1, lane: 1}}
		}},
		{"applu", SuiteFP, func(r *xrand.RNG) kernel {
			return &stencilKernel{rowBytes: 32 << 10, wsBytes: 96 << 20, fpOps: 8,
				mispred: 0.003, reuse: -1, windowBytes: 256 << 10,
				cold: coldStream{every: 44, burst: 1, lane: 1}}
		}},
		{"mesa", SuiteFP, func(r *xrand.RNG) kernel {
			return &blockedKernel{wsBytes: 640 << 10, fpOps: 5, intOps: 3, mispred: 0.012,
				cold: coldStream{every: 240, lane: 1}, r: r}
		}},
		{"galgel", SuiteFP, func(r *xrand.RNG) kernel {
			return &blockedKernel{wsBytes: 512 << 10, fpOps: 9, intOps: 1, mispred: 0.004,
				cold: coldStream{every: 1200, lane: 1}, r: r}
		}},
		{"art", SuiteFP, func(r *xrand.RNG) kernel {
			return &streamKernel{nStreams: 6, wsBytes: 128 << 20, elem: 8, fpOps: 4,
				mispred: 0.004, reuse: -1, cold: coldStream{every: 18, burst: 1, lane: 1}}
		}},
		{"equake", SuiteFP, func(r *xrand.RNG) kernel {
			// smvp(): multilevel pointer dereferencing for both loads and
			// stores — the restricted-SAC outlier of Section 5.5.
			return &chaseKernel{nChains: 4, wsBytes: 96 << 20, workPer: 5, mispred: 0.01,
				homeEvery: 6, fp: true, fpStoreAddr: true, hotFrac: 0.75, r: r}
		}},
		{"facerec", SuiteFP, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.6, 0.4},
				&streamKernel{nStreams: 2, wsBytes: 32 << 20, elem: 8, fpOps: 7,
					mispred: 0.004, reuse: -1, cold: coldStream{every: 80, burst: 1, lane: 1}},
				&blockedKernel{wsBytes: 768 << 10, fpOps: 6, intOps: 2, mispred: 0.006,
					cold: coldStream{every: 400, lane: 2}, r: r})
		}},
		{"ammp", SuiteFP, func(r *xrand.RNG) kernel {
			return &chaseKernel{nChains: 3, wsBytes: 48 << 20, workPer: 6, mispred: 0.012,
				homeEvery: 8, fp: true, hotFrac: 0.80, r: r}
		}},
		{"lucas", SuiteFP, func(r *xrand.RNG) kernel {
			return &streamKernel{nStreams: 2, wsBytes: 128 << 20, elem: 8, fpOps: 10,
				mispred: 0.002, reuse: -1, cold: coldStream{every: 60, burst: 1, lane: 1}}
		}},
		{"fma3d", SuiteFP, func(r *xrand.RNG) kernel {
			return newMix(r, []float64{0.7, 0.3},
				&blockedKernel{wsBytes: 1 << 20, fpOps: 6, intOps: 3, mispred: 0.008,
					cold: coldStream{every: 180, lane: 1}, r: r},
				&stackKernel{frameRegs: 4, opsPer: 8, mispred: 0.008, maxDepth: 12, r: r})
		}},
		{"sixtrack", SuiteFP, func(r *xrand.RNG) kernel {
			return &blockedKernel{wsBytes: 256 << 10, fpOps: 11, intOps: 2, mispred: 0.003, r: r}
		}},
		{"apsi", SuiteFP, func(r *xrand.RNG) kernel {
			return &stencilKernel{rowBytes: 8 << 10, wsBytes: 48 << 20, fpOps: 6,
				mispred: 0.004, reuse: -1, windowBytes: 256 << 10,
				cold: coldStream{every: 72, burst: 1, lane: 1}}
		}},
	}
}
