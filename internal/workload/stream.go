package workload

// A Stream is a pre-generated committed-path instruction trace of one
// (benchmark, seed). Generating the synthetic stream costs real time per
// instruction (kernel emission, RNG draws); when the same point is
// simulated repeatedly — across schemes in a benchmark matrix, across
// repetitions of a measurement, across sweep axes that leave the workload
// unchanged — recording it once and replaying a slice turns that cost into
// a memcpy. Replays are bit-identical to a live Generator: the committed
// path is the recorded trace and every Replay starts from a snapshot of
// the generator's initial wrong-path state, so speculation re-synthesises
// the exact wrong-path stream a fresh Generator would produce.

import "repro/internal/isa"

// Stream is an immutable recorded committed-path prefix of one benchmark
// instantiation. It is safe for concurrent Source calls: each Replay holds
// all mutable state.
type Stream struct {
	prof   Profile
	seed   uint64
	insts  []isa.Inst
	wpInit wpSynth
}

// NewStream records the first n committed-path instructions of the
// benchmark under the given seed. Size n to the full simulation budget
// (WarmupInsts + MaxInsts); a Replay that runs past the recording falls
// back to live generation, which is correct but pays a one-time
// fast-forward of the whole recording.
func NewStream(p Profile, seed uint64, n uint64) *Stream {
	g := p.New(seed)
	s := &Stream{prof: p, seed: seed, wpInit: g.wpSynth}
	s.insts = make([]isa.Inst, n)
	for i := range s.insts {
		g.Next(&s.insts[i])
	}
	return s
}

// Name returns the benchmark name.
func (s *Stream) Name() string { return s.prof.Name }

// Suite returns the benchmark's suite.
func (s *Stream) Suite() Suite { return s.prof.Suite }

// Len returns the number of recorded instructions.
func (s *Stream) Len() int { return len(s.insts) }

// Source returns a fresh Replay positioned at the start of the stream,
// with the wrong-path synthesiser in the same state a new Generator's
// would be.
func (s *Stream) Source() *Replay {
	return &Replay{wpSynth: s.wpInit, s: s}
}

// Replay serves a Stream as a Source. It maintains its own wrong-path
// synthesiser and recent-address ring, so concurrently running Replays of
// one Stream do not interact.
type Replay struct {
	wpSynth
	s   *Stream
	pos int
	// over generates instructions past the recorded prefix (lazily built).
	over *Generator
}

// Name implements Source.
func (r *Replay) Name() string { return r.s.prof.Name }

// Suite implements Source.
func (r *Replay) Suite() Suite { return r.s.prof.Suite }

// Next implements Source.
func (r *Replay) Next(out *isa.Inst) {
	if r.pos < len(r.s.insts) {
		*out = r.s.insts[r.pos]
		r.pos++
		if out.IsMem() {
			r.noteMem(out.Addr)
		}
		return
	}
	if r.over == nil {
		// The recording ran out: rebuild the generator and fast-forward
		// past the recorded prefix. Committed-path determinism is
		// preserved; the cost is proportional to the prefix length.
		r.over = r.s.prof.New(r.s.seed)
		var tmp isa.Inst
		for i := 0; i < len(r.s.insts); i++ {
			r.over.Next(&tmp)
		}
	}
	r.over.Next(out)
	if out.IsMem() {
		r.noteMem(out.Addr)
	}
}

// Warmup implements Source by walking the recorded trace in place.
func (r *Replay) Warmup(n uint64, access func(addr uint64)) {
	for n > 0 && r.pos < len(r.s.insts) {
		in := &r.s.insts[r.pos]
		r.pos++
		n--
		if in.IsMem() {
			r.noteMem(in.Addr)
			access(in.Addr)
		}
	}
	if n > 0 {
		var in isa.Inst
		for i := uint64(0); i < n; i++ {
			r.Next(&in)
			if in.IsMem() {
				access(in.Addr)
			}
		}
	}
}
