package workload

// Source checkpointing: a SourceState captures every mutable bit of a
// Generator or Replay — committed-path RNG, kernel interior state, the
// wrong-path synthesiser and the emission queue surplus — so a warm source
// can be reconstructed in O(state) instead of re-consuming the warm-up
// prefix instruction by instruction. internal/ckpt persists SourceStates
// next to the cache image they were captured with.
//
// Determinism contract: for any Source s and fresh source f of the same
// (benchmark, seed), after f.Restore(s.Snapshot()) the two sources produce
// bit-identical committed-path AND wrong-path streams forever. The contract
// is enforced by TestSnapshotRestoreEquivalence over every benchmark.

import (
	"fmt"

	"repro/internal/isa"
)

// StateVersion is bumped whenever the kernel state layout changes, so
// persisted checkpoints from older builds fail loudly instead of silently
// resuming from misinterpreted state.
const StateVersion = 1

// SourceState is the serialisable mutable state of a Source. Produce it
// with Snapshot, consume it with Restore on a freshly built source of the
// same benchmark and seed.
type SourceState struct {
	// Version is the state-layout version (StateVersion at capture time).
	Version int `json:"version"`
	// Bench and Seed identify the source instantiation the state belongs to.
	Bench string `json:"bench"`
	Seed  uint64 `json:"seed"`
	// Consumed is the number of committed-path instructions delivered so
	// far (the next instruction's sequence number).
	Consumed uint64 `json:"consumed"`
	// RNG is the committed-path generator state (splitmix64 raw state).
	RNG uint64 `json:"rng"`
	// WpRNG, WpSeq, Recent, RecentPos and RecentSeen are the wrong-path
	// synthesiser: its independent RNG, sequence counter and the ring of
	// recently committed memory addresses wrong-path fetch wanders near.
	WpRNG      uint64   `json:"wp_rng"`
	WpSeq      uint64   `json:"wp_seq"`
	Recent     []uint64 `json:"recent"`
	RecentPos  int      `json:"recent_pos"`
	RecentSeen bool     `json:"recent_seen"`
	// Kernel is the kernel-interior state as a flat word list in emission-
	// tree order (nil for Replay snapshots within the recorded prefix).
	Kernel []uint64 `json:"kernel,omitempty"`
	// Queue is the emitted-but-undelivered instruction surplus: warm-up can
	// stop mid-batch, leaving instructions queued for the measured phase.
	Queue []isa.Inst `json:"queue,omitempty"`
}

// Snapshottable is implemented by Sources whose position can be captured
// and restored (both Generator and Replay).
type Snapshottable interface {
	Source
	// Snapshot captures the source's complete mutable state.
	Snapshot() *SourceState
	// Restore overwrites the source's state with a snapshot previously
	// taken from a source of the same benchmark and seed.
	Restore(*SourceState) error
}

// kstate is a cursor over the flat kernel state words. Save and load walk
// the kernel tree in the same deterministic order, so the layout needs no
// per-field tags — the version field guards against layout drift.
type kstate struct {
	words     []uint64
	pos       int
	underflow bool
}

func (s *kstate) put(v uint64) { s.words = append(s.words, v) }

func (s *kstate) get() uint64 {
	if s.pos >= len(s.words) {
		s.underflow = true
		return 0
	}
	v := s.words[s.pos]
	s.pos++
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- wpSynth capture ---

func (w *wpSynth) captureTo(st *SourceState) {
	st.WpRNG = w.rng.State()
	st.WpSeq = w.wpSeq
	st.Recent = append([]uint64(nil), w.recentAddrs[:]...)
	st.RecentPos = w.recentPos
	st.RecentSeen = w.recentSeen
}

func (w *wpSynth) restoreFrom(st *SourceState) error {
	if len(st.Recent) != len(w.recentAddrs) {
		return fmt.Errorf("workload: snapshot recent-ring size %d, want %d", len(st.Recent), len(w.recentAddrs))
	}
	w.rng.SetState(st.WpRNG)
	w.wpSeq = st.WpSeq
	copy(w.recentAddrs[:], st.Recent)
	w.recentPos = st.RecentPos
	w.recentSeen = st.RecentSeen
	return nil
}

// --- Generator ---

// Snapshot implements Snapshottable.
func (g *Generator) Snapshot() *SourceState {
	st := &SourceState{
		Version:  StateVersion,
		Bench:    g.name,
		Seed:     g.seed,
		Consumed: g.seq,
		RNG:      g.rng.State(),
	}
	g.wpSynth.captureTo(st)
	ks := &kstate{}
	g.k.save(ks)
	st.Kernel = ks.words
	if g.head < len(g.queue) {
		st.Queue = append([]isa.Inst(nil), g.queue[g.head:]...)
	}
	return st
}

// Restore implements Snapshottable. The receiver must be a freshly built
// (or at least same-benchmark, same-seed) generator; its state is fully
// overwritten.
func (g *Generator) Restore(st *SourceState) error {
	if err := g.checkState(st); err != nil {
		return err
	}
	if st.Kernel == nil {
		return fmt.Errorf("workload: snapshot of %s has no kernel state (taken from a Replay?)", st.Bench)
	}
	g.rng.SetState(st.RNG)
	g.seq = st.Consumed
	if err := g.wpSynth.restoreFrom(st); err != nil {
		return err
	}
	ks := &kstate{words: st.Kernel}
	g.k.load(ks)
	if ks.underflow || ks.pos != len(ks.words) {
		return fmt.Errorf("workload: %s kernel state is %d words, this build's layout needs %d (checkpoint from a different build?)",
			st.Bench, len(ks.words), ks.pos)
	}
	g.queue = append(g.queue[:0], st.Queue...)
	g.head = 0
	return nil
}

func (g *Generator) checkState(st *SourceState) error {
	switch {
	case st.Version != StateVersion:
		return fmt.Errorf("workload: snapshot state version %d, this build speaks %d", st.Version, StateVersion)
	case st.Bench != g.name:
		return fmt.Errorf("workload: snapshot of %q cannot restore %q", st.Bench, g.name)
	case st.Seed != g.seed:
		return fmt.Errorf("workload: snapshot of %s seed %d cannot restore seed %d", st.Bench, st.Seed, g.seed)
	}
	return nil
}

// --- Replay ---

// Snapshot implements Snapshottable. Within the recorded prefix the state is
// just the position plus the wrong-path synthesiser; past the prefix it
// delegates to the overflow generator, whose state is complete.
func (r *Replay) Snapshot() *SourceState {
	if r.over != nil {
		st := r.over.Snapshot()
		// The replay's own wpSynth served the whole run; the overflow
		// generator's is untouched since construction.
		r.wpSynth.captureTo(st)
		return st
	}
	st := &SourceState{
		Version:  StateVersion,
		Bench:    r.s.prof.Name,
		Seed:     r.s.seed,
		Consumed: uint64(r.pos),
	}
	r.wpSynth.captureTo(st)
	return st
}

// Restore implements Snapshottable. Snapshots taken within this stream's
// recording restore in O(1); snapshots past it (or from a live Generator
// whose position exceeds the recording) restore onto the overflow generator
// using the snapshot's kernel state.
func (r *Replay) Restore(st *SourceState) error {
	switch {
	case st.Version != StateVersion:
		return fmt.Errorf("workload: snapshot state version %d, this build speaks %d", st.Version, StateVersion)
	case st.Bench != r.s.prof.Name:
		return fmt.Errorf("workload: snapshot of %q cannot restore replay of %q", st.Bench, r.s.prof.Name)
	case st.Seed != r.s.seed:
		return fmt.Errorf("workload: snapshot of %s seed %d cannot restore seed %d", st.Bench, st.Seed, r.s.seed)
	}
	if err := r.wpSynth.restoreFrom(st); err != nil {
		return err
	}
	if st.Consumed <= uint64(len(r.s.insts)) {
		r.pos = int(st.Consumed)
		r.over = nil
		return nil
	}
	if st.Kernel == nil {
		return fmt.Errorf("workload: snapshot of %s at %d exceeds the %d-instruction recording and has no kernel state",
			st.Bench, st.Consumed, len(r.s.insts))
	}
	over := r.s.prof.New(r.s.seed)
	if err := over.Restore(st); err != nil {
		return err
	}
	r.pos = len(r.s.insts)
	r.over = over
	return nil
}

// --- kernel state layouts ---
//
// Each kernel saves exactly the fields its emission mutates, in declaration
// order; construction-time parameters are re-derived by Profile.New and not
// stored. Lazily-defaulted fields (coldStream.burst, hot/window/block sizes)
// ARE stored: they are pure functions of the config today, but storing them
// keeps a snapshot valid even if the defaulting rules change underneath it.

func (c *coldStream) save(s *kstate) {
	s.put(uint64(c.burst))
	s.put(c.n)
	s.put(c.nDep)
	s.put(c.off)
}

func (c *coldStream) load(s *kstate) {
	c.burst = int(s.get())
	c.n = s.get()
	c.nDep = s.get()
	c.off = s.get()
}

func (k *streamKernel) save(s *kstate) {
	s.put(k.blockBytes)
	s.put(k.offset)
	s.put(k.blockBase)
	s.put(uint64(k.pass))
	k.cold.save(s)
}

func (k *streamKernel) load(s *kstate) {
	k.blockBytes = s.get()
	k.offset = s.get()
	k.blockBase = s.get()
	k.pass = int(s.get())
	k.cold.load(s)
}

func (k *stencilKernel) save(s *kstate) {
	s.put(k.windowBytes)
	s.put(k.offset)
	s.put(k.winBase)
	s.put(uint64(k.pass))
	k.cold.save(s)
}

func (k *stencilKernel) load(s *kstate) {
	k.windowBytes = s.get()
	k.offset = s.get()
	k.winBase = s.get()
	k.pass = int(s.get())
	k.cold.load(s)
}

func (k *blockedKernel) save(s *kstate) { k.cold.save(s) }

func (k *blockedKernel) load(s *kstate) { k.cold.load(s) }

func (k *chaseKernel) save(s *kstate) {
	s.put(k.hotBytes)
	s.put(k.hops)
	var pending uint64
	for i, p := range k.pendingHome {
		pending |= b2u(p) << uint(i)
	}
	s.put(pending)
}

func (k *chaseKernel) load(s *kstate) {
	k.hotBytes = s.get()
	k.hops = s.get()
	pending := s.get()
	for i := range k.pendingHome {
		k.pendingHome[i] = pending&(1<<uint(i)) != 0
	}
}

func (k *hashKernel) save(s *kstate) {
	s.put(k.hotBytes)
	k.cold.save(s)
}

func (k *hashKernel) load(s *kstate) {
	k.hotBytes = s.get()
	k.cold.load(s)
}

func (k *stackKernel) save(s *kstate) { s.put(k.depth) }

func (k *stackKernel) load(s *kstate) { k.depth = s.get() }

func (k *localKernel) save(s *kstate) {
	s.put(k.hotBytes)
	k.cold.save(s)
}

func (k *localKernel) load(s *kstate) {
	k.hotBytes = s.get()
	k.cold.load(s)
}

func (k *intStreamKernel) save(s *kstate) {
	s.put(k.offset)
	k.cold.save(s)
}

func (k *intStreamKernel) load(s *kstate) {
	k.offset = s.get()
	k.cold.load(s)
}

func (k *mixKernel) save(s *kstate) {
	for _, p := range k.parts {
		p.save(s)
	}
}

func (k *mixKernel) load(s *kstate) {
	for _, p := range k.parts {
		p.load(s)
	}
}
