package workload

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/isa"
)

func allProfiles() []Profile { return append(IntSuite(), FPSuite()...) }

func TestSuiteSizes(t *testing.T) {
	// SPEC CPU 2000: 12 integer, 14 floating-point benchmarks.
	if n := len(IntSuite()); n != 12 {
		t.Errorf("INT suite has %d benchmarks, want 12", n)
	}
	if n := len(FPSuite()); n != 14 {
		t.Errorf("FP suite has %d benchmarks, want 14", n)
	}
}

func TestSuiteLabels(t *testing.T) {
	for _, p := range IntSuite() {
		if p.Suite != SuiteInt {
			t.Errorf("%s mislabelled as %v", p.Name, p.Suite)
		}
	}
	for _, p := range FPSuite() {
		if p.Suite != SuiteFP {
			t.Errorf("%s mislabelled as %v", p.Name, p.Suite)
		}
	}
	if SuiteInt.String() != "SPEC INT" || SuiteFP.String() != "SPEC FP" {
		t.Error("suite strings wrong")
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range allProfiles() {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("equake")
	if err != nil || p.Name != "equake" || p.Suite != SuiteFP {
		t.Errorf("ByName(equake) = %+v, %v", p, err)
	}
	if _, err := ByName("no-such-benchmark"); err == nil {
		t.Error("ByName accepted unknown name")
	}
}

func TestSuiteOf(t *testing.T) {
	if len(SuiteOf(SuiteInt)) != 12 || len(SuiteOf(SuiteFP)) != 14 {
		t.Error("SuiteOf sizes wrong")
	}
}

func TestDeterminism(t *testing.T) {
	for _, p := range allProfiles() {
		a, b := p.New(1), p.New(1)
		var ia, ib isa.Inst
		for i := 0; i < 2000; i++ {
			a.Next(&ia)
			b.Next(&ib)
			if ia != ib {
				t.Fatalf("%s diverged at inst %d: %+v vs %+v", p.Name, i, ia, ib)
			}
		}
	}
}

// Drawing wrong-path instructions must not perturb the committed path:
// speculation depth depends on the microarchitecture under test, and two
// configs must see the same program.
func TestWrongPathIndependence(t *testing.T) {
	for _, p := range allProfiles() {
		a, b := p.New(7), p.New(7)
		var ia, ib, wp isa.Inst
		for i := 0; i < 1000; i++ {
			a.Next(&ia)
			if i%3 == 0 {
				b.WrongPath(&wp)
				if !wp.WrongPath {
					t.Fatalf("%s: WrongPath emitted committed-path inst", p.Name)
				}
			}
			b.Next(&ib)
			if ia != ib {
				t.Fatalf("%s: wrong-path draw changed committed path at %d", p.Name, i)
			}
		}
	}
}

func TestSeqMonotonic(t *testing.T) {
	p := IntSuite()[0]
	g := p.New(3)
	var in isa.Inst
	for i := uint64(0); i < 500; i++ {
		g.Next(&in)
		if in.Seq != i {
			t.Fatalf("Seq = %d at position %d", in.Seq, i)
		}
	}
}

func TestInstructionWellFormed(t *testing.T) {
	for _, p := range allProfiles() {
		g := p.New(11)
		var in isa.Inst
		for i := 0; i < 5000; i++ {
			g.Next(&in)
			if in.WrongPath {
				t.Fatalf("%s: committed path emitted WrongPath inst", p.Name)
			}
			switch in.Op {
			case isa.OpLoad:
				if in.Dst == isa.NoReg || in.Src1 == isa.NoReg {
					t.Fatalf("%s: load without dst/addr-src: %+v", p.Name, in)
				}
				if in.Size != 4 && in.Size != 8 {
					t.Fatalf("%s: load size %d", p.Name, in.Size)
				}
				if in.Addr%uint64(in.Size) != 0 {
					t.Fatalf("%s: unaligned load at %#x size %d", p.Name, in.Addr, in.Size)
				}
			case isa.OpStore:
				if in.Src1 == isa.NoReg || in.Src2 == isa.NoReg {
					t.Fatalf("%s: store without addr/data src: %+v", p.Name, in)
				}
				if in.Addr%uint64(in.Size) != 0 {
					t.Fatalf("%s: unaligned store at %#x size %d", p.Name, in.Addr, in.Size)
				}
			case isa.OpBranch:
				if in.Src1 == isa.NoReg {
					t.Fatalf("%s: branch without condition src", p.Name)
				}
			}
			if in.Dst >= isa.NumRegs || in.Src1 >= isa.NumRegs || in.Src2 >= isa.NumRegs {
				t.Fatalf("%s: register out of range: %+v", p.Name, in)
			}
		}
	}
}

func TestWrongPathWellFormed(t *testing.T) {
	g := IntSuite()[3].New(5) // mcf
	var in isa.Inst
	loads := 0
	for i := 0; i < 2000; i++ {
		g.WrongPath(&in)
		if !in.WrongPath {
			t.Fatal("WrongPath inst not flagged")
		}
		if in.IsLoad() {
			loads++
			if in.Addr%8 != 0 {
				t.Fatalf("unaligned wrong-path load %#x", in.Addr)
			}
		}
	}
	if loads < 200 || loads > 700 {
		t.Errorf("wrong-path load count = %d/2000, want ~22%%", loads)
	}
}

// Mix fractions per suite. These are the statistical properties substituting
// for SPEC (see DESIGN.md): FP ~25% loads / ~8.5% stores, INT ~26% loads /
// ~11% stores, branch mispredict rates far higher for INT.
func TestSuiteMixFractions(t *testing.T) {
	type mix struct{ loads, stores, branches, mispred float64 }
	measure := func(ps []Profile) mix {
		var m mix
		var total float64
		var in isa.Inst
		for _, p := range ps {
			g := p.New(42)
			const n = 30000
			for i := 0; i < n; i++ {
				g.Next(&in)
				total++
				switch in.Op {
				case isa.OpLoad:
					m.loads++
				case isa.OpStore:
					m.stores++
				case isa.OpBranch:
					m.branches++
					if in.Mispred {
						m.mispred++
					}
				}
			}
		}
		m.mispred /= m.branches
		m.loads /= total
		m.stores /= total
		m.branches /= total
		return m
	}
	fp := measure(FPSuite())
	in := measure(IntSuite())

	if fp.loads < 0.18 || fp.loads > 0.33 {
		t.Errorf("FP load fraction = %.3f, want ~0.25", fp.loads)
	}
	if fp.stores < 0.05 || fp.stores > 0.13 {
		t.Errorf("FP store fraction = %.3f, want ~0.085", fp.stores)
	}
	if in.loads < 0.18 || in.loads > 0.34 {
		t.Errorf("INT load fraction = %.3f, want ~0.26", in.loads)
	}
	if in.stores < 0.07 || in.stores > 0.16 {
		t.Errorf("INT store fraction = %.3f, want ~0.11", in.stores)
	}
	if in.mispred < 3*fp.mispred {
		t.Errorf("INT mispredict rate %.4f should far exceed FP's %.4f", in.mispred, fp.mispred)
	}
	if in.branches < 0.08 {
		t.Errorf("INT branch fraction = %.3f, want >= 0.08", in.branches)
	}
}

// equake must have low-locality *store address* calculations (stores whose
// address source is a chase register) — the RSAC outlier of Section 5.5.
func TestEquakeHasPointerDerivedStores(t *testing.T) {
	p, _ := ByName("equake")
	g := p.New(1)
	var in isa.Inst
	chaseAddrStores := 0
	for i := 0; i < 20000; i++ {
		g.Next(&in)
		if in.IsStore() && in.Src1 >= regChase && in.Src1 < regChase+9 {
			chaseAddrStores++
		}
	}
	if chaseAddrStores == 0 {
		t.Error("equake emitted no pointer-derived store addresses")
	}
	// And swim must not.
	p2, _ := ByName("swim")
	g2 := p2.New(1)
	count := 0
	for i := 0; i < 20000; i++ {
		g2.Next(&in)
		if in.IsStore() && in.Src1 >= regChase && in.Src1 < regChase+9 {
			count++
		}
	}
	if count != 0 {
		t.Error("swim emitted pointer-derived store addresses")
	}
}

// The chase kernels must emit the LL-store → HL-load home-slot forwarding
// pattern that makes the Store Queue Mirror matter.
func TestChaseHomeForwardingPattern(t *testing.T) {
	p, _ := ByName("mcf")
	g := p.New(9)
	var in isa.Inst
	storeAddrs := map[uint64]int{}
	forwardings := 0
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if in.IsStore() && in.Src1 == regBase {
			storeAddrs[in.Addr] = i
		}
		if in.IsLoad() && in.Src1 == regBase {
			if at, ok := storeAddrs[in.Addr]; ok && i-at < 120 {
				forwardings++
			}
		}
	}
	if forwardings < 100 {
		t.Errorf("mcf home forwardings in 50k insts = %d, want >= 100", forwardings)
	}
}

func TestMixPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched mix accepted")
		}
	}()
	newMix(nil, []float64{0.5}, nil, nil)
}

// TestEmittedMemOpsAreIndexable runs every benchmark with the filter debug
// assertions armed: any emitted access that is misaligned or crosses an
// 8-byte granule — which would silently break ERT/SSBF soundness — panics
// inside the emission helpers.
func TestEmittedMemOpsAreIndexable(t *testing.T) {
	filter.Debug = true
	defer func() { filter.Debug = false }()
	var in isa.Inst
	for _, p := range append(IntSuite(), FPSuite()...) {
		g := p.New(1)
		for i := 0; i < 20_000; i++ {
			g.Next(&in)
			if in.IsMem() && !filter.Indexable(in.Addr, in.Size) {
				t.Fatalf("%s: instruction %d (%#x, %d bytes) is not filter-indexable", p.Name, i, in.Addr, in.Size)
			}
			g.WrongPath(&in)
			if in.IsMem() && !filter.Indexable(in.Addr, in.Size) {
				t.Fatalf("%s: wrong-path op (%#x, %d bytes) is not filter-indexable", p.Name, in.Addr, in.Size)
			}
		}
	}
}
