package workload

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
)

// memProfile streams n instructions through the default hierarchy and
// returns memory misses per 1000 instructions and the L1 hit fraction.
func memProfile(t *testing.T, name string, n uint64) (memPerK, l1Frac float64) {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := p.New(1)
	cfg := config.Default()
	h := mem.NewHierarchy(&cfg)
	var in isa.Inst
	// Warm first, measure second.
	for i := uint64(0); i < n; i++ {
		g.Next(&in)
		if in.IsMem() {
			h.Access(in.Addr)
		}
	}
	var l1, l2, m uint64
	for i := uint64(0); i < n; i++ {
		g.Next(&in)
		if !in.IsMem() {
			continue
		}
		switch lvl, _ := h.Access(in.Addr); lvl {
		case mem.LevelL1:
			l1++
		case mem.LevelL2:
			l2++
		default:
			m++
		}
	}
	acc := l1 + l2 + m
	if acc == 0 {
		t.Fatalf("%s made no memory accesses", name)
	}
	return 1000 * float64(m) / float64(n), float64(l1) / float64(acc)
}

// TestMemoryIntensityClasses pins the cache-behaviour classes the suites are
// built around (see suites.go): cache-resident codes miss ~never, moderate
// codes miss a few times per 1000 instructions, and the pointer-chase /
// heavy-stream codes miss an order of magnitude more. These rates are what
// make the paper's baseline (OoO-64: INT 1.55 / FP 1.42 IPC) and the FMC
// speed-ups come out with the right shape.
func TestMemoryIntensityClasses(t *testing.T) {
	const n = 2_000_000
	classes := []struct {
		name     string
		min, max float64 // mem misses per 1000 insts
	}{
		// cache-resident
		{"eon", 0, 0.2},
		{"sixtrack", 0, 0.2},
		{"crafty", 0, 2.5},
		{"galgel", 0, 1.0},
		// moderate
		{"gzip", 0.2, 3.0},
		{"wupwise", 0.2, 3.0},
		{"swim", 1.0, 6.0},
		{"twolf", 0.5, 9.0},
		// heavy
		{"art", 3.0, 20.0},
		{"mcf", 40.0, 160.0},
		{"equake", 40.0, 170.0},
	}
	for _, c := range classes {
		got, _ := memProfile(t, c.name, n)
		if got < c.min || got > c.max {
			t.Errorf("%s: %.2f memory misses per 1000 insts, want [%.1f, %.1f]",
				c.name, got, c.min, c.max)
		}
	}
}

// TestL1LocalityClasses: stack/stream codes live in the L1; random-probe
// codes mostly reach the L2.
func TestL1LocalityClasses(t *testing.T) {
	const n = 1_000_000
	if _, l1 := memProfile(t, "eon", n); l1 < 0.95 {
		t.Errorf("eon L1 fraction %.2f, want ~1 (stack-resident)", l1)
	}
	if _, l1 := memProfile(t, "twolf", n); l1 > 0.9 {
		t.Errorf("twolf L1 fraction %.2f, want well below 1 (L2-bound probes)", l1)
	}
}

// TestColdStreamRate: the injected miss rate must track 1/every regardless
// of burstiness.
func TestColdStreamRate(t *testing.T) {
	for _, burst := range []int{1, 8, 48} {
		cs := coldStream{every: 20, burst: burst}
		g := &Generator{}
		emitted := 0
		for i := 0; i < 20000; i++ {
			g.queue = g.queue[:0]
			cs.maybe(g)
			emitted += len(g.queue)
		}
		rate := float64(emitted) / 20000
		if rate < 0.045 || rate > 0.055 {
			t.Errorf("burst=%d: cold rate %.4f, want ~0.05", burst, rate)
		}
	}
}

// TestColdStreamAddressesAdvance: cold addresses never repeat (compulsory
// misses by construction).
func TestColdStreamAddressesAdvance(t *testing.T) {
	cs := coldStream{every: 1, burst: 1}
	g := &Generator{}
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		g.queue = g.queue[:0]
		cs.maybe(g)
		for _, in := range g.queue {
			if seen[in.Addr] {
				t.Fatalf("cold address %#x repeated", in.Addr)
			}
			seen[in.Addr] = true
		}
	}
}

// TestColdStreamDependentBranches: with depEvery set, cold loads are
// followed by mispredicted branches on the loaded value.
func TestColdStreamDependentBranches(t *testing.T) {
	cs := coldStream{every: 1, burst: 1, depEvery: 2}
	g := &Generator{}
	branches, loads := 0, 0
	for i := 0; i < 1000; i++ {
		g.queue = g.queue[:0]
		cs.maybe(g)
		for _, in := range g.queue {
			switch in.Op {
			case isa.OpLoad:
				loads++
			case isa.OpBranch:
				branches++
				if !in.Mispred {
					t.Fatal("dependent branch not mispredicted")
				}
				if in.Src1 != regTmp+10 {
					t.Fatal("dependent branch not on the cold load's register")
				}
			}
		}
	}
	if branches == 0 || branches*2 < loads-2 || branches*2 > loads+2 {
		t.Errorf("dep branches %d for %d cold loads, want ~half", branches, loads)
	}
}
