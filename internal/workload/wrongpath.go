package workload

// WrongPathSynth exposes the wrong-path instruction synthesiser as a
// standalone component, so Source implementations outside this package
// (internal/trace's file-backed source) can reproduce exactly the
// wrong-path stream an equally positioned Generator or Replay would
// synthesise. The contract mirrors wpSynth's embedding in Generator:
// construct it from the RNG state a fresh source of the same (benchmark,
// seed) starts with, call NoteMem for every committed-path memory
// reference delivered, and WrongPath yields bit-identical speculative
// instructions.

import "repro/internal/isa"

// WrongPathSynth synthesises the wrong-path instruction stream for an
// external Source implementation. The zero value is not usable; construct
// with NewWrongPathSynth.
type WrongPathSynth struct {
	s wpSynth
}

// NewWrongPathSynth returns a synthesiser whose RNG resumes from rngState —
// for a source starting at position zero, the WpRNG a fresh same-benchmark
// source's Snapshot reports.
func NewWrongPathSynth(rngState uint64) *WrongPathSynth {
	w := &WrongPathSynth{}
	w.s.rng.SetState(rngState)
	return w
}

// WrongPath fills out with the next wrong-path instruction (see
// wpSynth.WrongPath for the modelled mix).
func (w *WrongPathSynth) WrongPath(out *isa.Inst) { w.s.WrongPath(out) }

// NoteMem records a committed-path memory address in the recent ring the
// synthesiser wanders near. Call it for every committed memory instruction
// delivered, exactly as Generator.Next and Replay.Next do.
func (w *WrongPathSynth) NoteMem(addr uint64) { w.s.noteMem(addr) }

// CaptureTo writes the synthesiser's state into the wrong-path fields of a
// SourceState being assembled by an external Source's Snapshot.
func (w *WrongPathSynth) CaptureTo(st *SourceState) { w.s.captureTo(st) }

// RestoreFrom overwrites the synthesiser's state from the wrong-path fields
// of a snapshot, resuming the speculative stream exactly where CaptureTo
// left it.
func (w *WrongPathSynth) RestoreFrom(st *SourceState) error { return w.s.restoreFrom(st) }
