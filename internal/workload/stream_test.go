package workload

import (
	"testing"

	"repro/internal/isa"
)

// TestReplayMatchesGenerator pins the Stream/Replay contract: a Replay
// must be indistinguishable from a fresh Generator — same committed
// stream, same wrong-path stream (including its dependence on recently
// committed addresses), and identical behaviour past the recorded prefix.
func TestReplayMatchesGenerator(t *testing.T) {
	prof, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const recorded = 5_000
	stream := NewStream(prof, 7, recorded)
	if stream.Len() != recorded || stream.Name() != "gcc" || stream.Suite() != SuiteInt {
		t.Fatalf("stream metadata wrong: %d %q", stream.Len(), stream.Name())
	}

	gen := prof.New(7)
	rep := stream.Source()
	var a, b isa.Inst
	// Interleave committed and wrong-path reads, crossing the recorded
	// boundary to exercise the live-generation fallback.
	for i := 0; i < recorded+2_000; i++ {
		gen.Next(&a)
		rep.Next(&b)
		if a != b {
			t.Fatalf("committed inst %d diverges: %+v vs %+v", i, a, b)
		}
		if i%37 == 0 {
			gen.WrongPath(&a)
			rep.WrongPath(&b)
			if a != b {
				t.Fatalf("wrong-path inst at %d diverges: %+v vs %+v", i, a, b)
			}
		}
	}
}

// TestReplaySourcesIndependent: two Replays of one Stream must not share
// mutable state.
func TestReplaySourcesIndependent(t *testing.T) {
	prof, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	stream := NewStream(prof, 1, 1_000)
	r1, r2 := stream.Source(), stream.Source()
	var a, b isa.Inst
	for i := 0; i < 500; i++ {
		r1.Next(&a)
	}
	// r2 must still start from the beginning, with identical wrong-path
	// state to a fresh source.
	r2.Next(&b)
	fresh := stream.Source()
	fresh.Next(&a)
	if a != b {
		t.Fatalf("second source does not start fresh: %+v vs %+v", b, a)
	}
	r2.WrongPath(&b)
	fresh2 := stream.Source()
	fresh2.Next(&a)
	fresh2.WrongPath(&a)
	if a != b {
		t.Fatalf("wrong-path state shared between sources: %+v vs %+v", b, a)
	}
}

// TestWarmupEquivalentToNext pins the Source.Warmup contract for both
// implementations: Warmup(n, f) must leave the source in exactly the state
// n Next calls would, and deliver the same memory addresses.
func TestWarmupEquivalentToNext(t *testing.T) {
	for _, mk := range []struct {
		name string
		mk   func() Source
	}{
		{"generator", func() Source {
			p, _ := ByName("equake")
			return p.New(3)
		}},
		{"replay", func() Source {
			p, _ := ByName("equake")
			return NewStream(p, 3, 9_000).Source()
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			// Budget far beyond warmupSafety to exercise count mode, and
			// deliberately not aligned to any batch size.
			const n = 10_123
			ref := mk.mk()
			var refAddrs []uint64
			var in isa.Inst
			for i := 0; i < n; i++ {
				ref.Next(&in)
				if in.IsMem() {
					refAddrs = append(refAddrs, in.Addr)
				}
			}
			warm := mk.mk()
			var warmAddrs []uint64
			warm.Warmup(n, func(addr uint64) { warmAddrs = append(warmAddrs, addr) })
			if len(refAddrs) != len(warmAddrs) {
				t.Fatalf("warmup saw %d memory refs, Next saw %d", len(warmAddrs), len(refAddrs))
			}
			for i := range refAddrs {
				if refAddrs[i] != warmAddrs[i] {
					t.Fatalf("memory ref %d differs: %#x vs %#x", i, warmAddrs[i], refAddrs[i])
				}
			}
			// Post-warm-up state must be identical: committed stream,
			// sequence numbers and wrong-path synthesis all line up.
			var a, b isa.Inst
			for i := 0; i < 3_000; i++ {
				ref.Next(&a)
				warm.Next(&b)
				if a != b {
					t.Fatalf("inst %d after warm-up diverges: %+v vs %+v", i, a, b)
				}
				if i%29 == 0 {
					ref.WrongPath(&a)
					warm.WrongPath(&b)
					if a != b {
						t.Fatalf("wrong-path inst after warm-up diverges: %+v vs %+v", a, b)
					}
				}
			}
		})
	}
}
