package workload

import (
	"encoding/json"
	"testing"

	"repro/internal/isa"
)

// drain consumes n committed-path instructions, interleaving the occasional
// wrong-path draw the way the pipeline model does under speculation.
func drain(s Source, n int, wrongPathEvery int) {
	var in isa.Inst
	for i := 0; i < n; i++ {
		s.Next(&in)
		if wrongPathEvery > 0 && i%wrongPathEvery == wrongPathEvery-1 {
			s.WrongPath(&in)
		}
	}
}

// sameStreams fails unless a and b produce identical committed-path and
// wrong-path streams for n more instructions.
func sameStreams(t *testing.T, label string, a, b Source, n int) {
	t.Helper()
	var ia, ib isa.Inst
	for i := 0; i < n; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("%s: committed instruction %d diverged:\n a: %+v\n b: %+v", label, i, ia, ib)
		}
		if i%7 == 0 {
			a.WrongPath(&ia)
			b.WrongPath(&ib)
			if ia != ib {
				t.Fatalf("%s: wrong-path instruction %d diverged:\n a: %+v\n b: %+v", label, i, ia, ib)
			}
		}
	}
}

// TestSnapshotRestoreEquivalence is the determinism contract of state.go:
// restoring a snapshot onto a fresh generator of every benchmark resumes
// both streams bit-identically, including mid-batch queue surplus and the
// JSON round trip the disk store performs.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, p := range append(IntSuite(), FPSuite()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g1 := p.New(3)
			// Odd count so warm-up style consumption stops mid-batch for
			// most kernels, leaving a queue surplus in the snapshot.
			drain(g1, 12_345, 97)
			st := g1.Snapshot()
			if st.Consumed != 12_345 {
				t.Fatalf("Consumed = %d, want 12345", st.Consumed)
			}

			// JSON round trip, as the checkpoint store performs.
			buf, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var st2 SourceState
			if err := json.Unmarshal(buf, &st2); err != nil {
				t.Fatal(err)
			}

			g2 := p.New(3)
			if err := g2.Restore(&st2); err != nil {
				t.Fatal(err)
			}
			sameStreams(t, "generator restore", g1, g2, 8_000)
		})
	}
}

// TestSnapshotAfterWarmup captures the checkpoint subsystem's exact usage:
// snapshot after a Warmup call (count-mode emission plus tail walk), restore
// onto a fresh generator, and require identical measured-phase streams and
// identical warm-up memory reference sequences.
func TestSnapshotAfterWarmup(t *testing.T) {
	p, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	g1 := p.New(1)
	var addrs1 []uint64
	g1.Warmup(50_000, func(a uint64) { addrs1 = append(addrs1, a) })
	st := g1.Snapshot()

	g2 := p.New(1)
	if err := g2.Restore(st); err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "post-warmup restore", g1, g2, 10_000)

	// A second fresh generator warmed the slow way must agree with the
	// snapshot's captured position.
	g3 := p.New(1)
	var addrs2 []uint64
	g3.Warmup(50_000, func(a uint64) { addrs2 = append(addrs2, a) })
	if len(addrs1) != len(addrs2) {
		t.Fatalf("warm-up reference counts diverged: %d vs %d", len(addrs1), len(addrs2))
	}
	st3 := g3.Snapshot()
	if st3.Consumed != st.Consumed || st3.RNG != st.RNG {
		t.Fatalf("independent warm-ups captured different states: %+v vs %+v", st3, st)
	}
}

// TestReplaySnapshotRestore covers the Replay side: O(1) restore within the
// recording, and cross-restore of a Generator snapshot onto a Replay.
func TestReplaySnapshotRestore(t *testing.T) {
	p, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	const recorded = 30_000
	stream := NewStream(p, 5, recorded)

	r1 := stream.Source()
	drain(r1, 10_000, 53)
	st := r1.Snapshot()
	if st.Kernel != nil {
		t.Fatalf("in-prefix replay snapshot carries kernel state")
	}

	r2 := stream.Source()
	if err := r2.Restore(st); err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "replay restore", r1, r2, 8_000)

	// Cross-restore: a live generator's snapshot positions a fresh Replay.
	g := p.New(5)
	drain(g, 10_000, 53)
	gst := g.Snapshot()
	r3 := stream.Source()
	if err := r3.Restore(gst); err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "generator snapshot onto replay", g, r3, 8_000)

	// Past-recording restore falls back to the overflow generator.
	g4 := p.New(5)
	drain(g4, recorded+1_000, 0)
	gst4 := g4.Snapshot()
	r4 := stream.Source()
	if err := r4.Restore(gst4); err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "past-recording restore", g4, r4, 4_000)
}

func TestRestoreRejectsMismatchedState(t *testing.T) {
	swim, _ := ByName("swim")
	gcc, _ := ByName("gcc")
	st := swim.New(1).Snapshot()

	if err := gcc.New(1).Restore(st); err == nil {
		t.Error("restore accepted a snapshot from a different benchmark")
	}
	if err := swim.New(2).Restore(st); err == nil {
		t.Error("restore accepted a snapshot from a different seed")
	}
	bad := *st
	bad.Version = StateVersion + 1
	if err := swim.New(1).Restore(&bad); err == nil {
		t.Error("restore accepted a snapshot with a future state version")
	}
	truncated := *st
	truncated.Kernel = truncated.Kernel[:len(truncated.Kernel)-1]
	if err := swim.New(1).Restore(&truncated); err == nil {
		t.Error("restore accepted a truncated kernel state")
	}
}
