// Package workload generates the synthetic SPEC CPU 2000-like instruction
// streams that substitute for the paper's Alpha SimPoint traces (see
// DESIGN.md, "Substitutions"). Each benchmark is a deterministic kernel
// parameterised to reproduce the statistical properties that drive the
// paper's results: load/store fractions, the decode→address-calculation
// locality split of Figure 1, L2 miss rates and memory-level parallelism,
// store→load forwarding distances, and control-speculation quality.
//
// The committed-path stream of a generator is a pure function of its seed:
// wrong-path synthesis draws from an independent forked RNG so speculation
// depth cannot perturb the committed path.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/xrand"
)

// Suite labels a benchmark as part of the integer or floating-point suite.
type Suite uint8

const (
	// SuiteInt is the SPEC INT 2000-like suite.
	SuiteInt Suite = iota
	// SuiteFP is the SPEC FP 2000-like suite.
	SuiteFP
)

// String implements fmt.Stringer.
func (s Suite) String() string {
	if s == SuiteInt {
		return "SPEC INT"
	}
	return "SPEC FP"
}

// ParseSuite parses a suite name ("int", "fp", "SPEC INT", "spec-fp", ...).
func ParseSuite(name string) (Suite, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "int", "spec int", "spec-int", "specint":
		return SuiteInt, nil
	case "fp", "spec fp", "spec-fp", "specfp":
		return SuiteFP, nil
	}
	return 0, fmt.Errorf("workload: unknown suite %q (want int | fp)", name)
}

// MarshalText implements encoding.TextMarshaler.
func (s Suite) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Suite) UnmarshalText(b []byte) error {
	v, err := ParseSuite(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// kernel is a synthetic program: each Emit call appends at least one
// committed-path instruction to the generator's queue.
type kernel interface {
	emit(g *Generator)
}

// Generator produces the dynamic instruction stream of one benchmark.
type Generator struct {
	name  string
	suite Suite
	k     kernel
	rng   *xrand.RNG // committed-path randomness
	wpRng *xrand.RNG // wrong-path randomness (independent stream)
	queue []isa.Inst
	head  int
	seq   uint64
	wpSeq uint64
	// recentAddrs remembers the last committed-path memory addresses;
	// wrong-path fetch runs through the program's own neighbourhood, so
	// speculative accesses touch nearby lines (mild pollution, occasional
	// prefetch) rather than foreign memory.
	recentAddrs [16]uint64
	recentPos   int
	recentSeen  bool
}

// Name returns the benchmark name.
func (g *Generator) Name() string { return g.name }

// Suite returns the benchmark's suite.
func (g *Generator) Suite() Suite { return g.suite }

// Next fills out with the next committed-path instruction.
func (g *Generator) Next(out *isa.Inst) {
	for g.head >= len(g.queue) {
		g.queue = g.queue[:0]
		g.head = 0
		g.k.emit(g)
	}
	*out = g.queue[g.head]
	g.head++
	out.Seq = g.seq
	g.seq++
	if out.IsMem() {
		g.recentAddrs[g.recentPos] = out.Addr
		g.recentPos = (g.recentPos + 1) % len(g.recentAddrs)
		g.recentSeen = true
	}
}

// wpAddr synthesises a wrong-path address: a recently touched address
// perturbed by a few cache lines.
func (g *Generator) wpAddr() uint64 {
	if !g.recentSeen {
		return align(g.wpRng.Uint64n(1<<20), 8)
	}
	base := g.recentAddrs[g.wpRng.Intn(len(g.recentAddrs))]
	delta := int64(g.wpRng.Intn(17)-8) * 32 // within +-8 lines
	a := int64(base) + delta
	if a < 0 {
		a = int64(base)
	}
	return align(uint64(a), 8)
}

// WrongPath fills out with a plausible wrong-path instruction: the mix a
// fetch unit would stream in past a mispredicted branch — ALU ops plus loads
// and stores to addresses near the benchmark's recent working set. These
// consume pipeline and LSQ resources and are squashed at branch resolution.
func (g *Generator) WrongPath(out *isa.Inst) {
	*out = isa.Inst{WrongPath: true, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	r := g.wpRng.Float64()
	switch {
	case r < 0.22:
		out.Op = isa.OpLoad
		out.Addr = g.wpAddr()
		out.Size = 8
		out.Src1 = 0
		out.Dst = int16(1 + g.wpRng.Intn(isa.NumIntRegs-1))
	case r < 0.30:
		out.Op = isa.OpStore
		out.Addr = g.wpAddr()
		out.Size = 8
		out.Src1, out.Src2 = 0, 0
	case r < 0.42:
		out.Op = isa.OpBranch
		out.Src1 = 0
	default:
		out.Op = isa.OpIntAlu
		out.Src1 = 0
		out.Dst = int16(1 + g.wpRng.Intn(isa.NumIntRegs-1))
	}
	out.Seq = 1<<63 | g.wpSeq // disjoint from committed-path sequence space
	g.wpSeq++
}

// --- emission helpers used by kernels ---

func (g *Generator) push(in isa.Inst) { g.queue = append(g.queue, in) }

// ialu emits dst <- op(src1, src2).
func (g *Generator) ialu(dst, src1, src2 int16) {
	g.push(isa.Inst{Op: isa.OpIntAlu, Dst: dst, Src1: src1, Src2: src2})
}

// imul emits a multi-cycle integer op.
func (g *Generator) imul(dst, src1, src2 int16) {
	g.push(isa.Inst{Op: isa.OpIntMul, Dst: dst, Src1: src1, Src2: src2})
}

// falu and fmul emit floating-point ops.
func (g *Generator) falu(dst, src1, src2 int16) {
	g.push(isa.Inst{Op: isa.OpFpAlu, Dst: dst, Src1: src1, Src2: src2})
}

func (g *Generator) fmul(dst, src1, src2 int16) {
	g.push(isa.Inst{Op: isa.OpFpMul, Dst: dst, Src1: src1, Src2: src2})
}

// load emits dst <- mem[addr], with addrSrc the address-producing register.
func (g *Generator) load(dst, addrSrc int16, addr uint64, size uint8) {
	g.push(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: addrSrc, Src2: isa.NoReg, Addr: addr, Size: size})
}

// store emits mem[addr] <- dataSrc, with addrSrc the address producer.
func (g *Generator) store(addrSrc, dataSrc int16, addr uint64, size uint8) {
	g.push(isa.Inst{Op: isa.OpStore, Dst: isa.NoReg, Src1: addrSrc, Src2: dataSrc, Addr: addr, Size: size})
}

// branch emits a conditional branch on condSrc; mispredicted with
// probability p.
func (g *Generator) branch(condSrc int16, p float64) {
	g.push(isa.Inst{Op: isa.OpBranch, Dst: isa.NoReg, Src1: condSrc, Src2: isa.NoReg,
		Taken: g.rng.Bool(0.5), Mispred: g.rng.Bool(p)})
}

// align rounds addr down to a multiple of size.
func align(addr uint64, size uint64) uint64 { return addr &^ (size - 1) }

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the SPEC-like benchmark name.
	Name string
	// Suite is INT or FP.
	Suite Suite
	// build constructs the kernel from a seed.
	build func(r *xrand.RNG) kernel
}

// New instantiates the benchmark's generator with the given seed.
func (p Profile) New(seed uint64) *Generator {
	r := xrand.New(seed ^ hashName(p.Name))
	return &Generator{
		name:  p.Name,
		suite: p.Suite,
		k:     p.build(r),
		rng:   r,
		wpRng: r.Fork(),
	}
}

// hashName mixes the benchmark name into the seed so different benchmarks
// with the same seed diverge.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range append(IntSuite(), FPSuite()...) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// SuiteOf returns all profiles of the given suite.
func SuiteOf(s Suite) []Profile {
	if s == SuiteInt {
		return IntSuite()
	}
	return FPSuite()
}
