// Package workload generates the synthetic SPEC CPU 2000-like instruction
// streams that substitute for the paper's Alpha SimPoint traces (see
// DESIGN.md, "Substitutions"). Each benchmark is a deterministic kernel
// parameterised to reproduce the statistical properties that drive the
// paper's results: load/store fractions, the decode→address-calculation
// locality split of Figure 1, L2 miss rates and memory-level parallelism,
// store→load forwarding distances, and control-speculation quality.
//
// The committed-path stream of a generator is a pure function of its seed:
// wrong-path synthesis draws from an independent forked RNG so speculation
// depth cannot perturb the committed path.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/xrand"
)

// Suite labels a benchmark as part of the integer or floating-point suite.
type Suite uint8

const (
	// SuiteInt is the SPEC INT 2000-like suite.
	SuiteInt Suite = iota
	// SuiteFP is the SPEC FP 2000-like suite.
	SuiteFP
)

// String implements fmt.Stringer.
func (s Suite) String() string {
	if s == SuiteInt {
		return "SPEC INT"
	}
	return "SPEC FP"
}

// ParseSuite parses a suite name ("int", "fp", "SPEC INT", "spec-fp", ...).
func ParseSuite(name string) (Suite, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "int", "spec int", "spec-int", "specint":
		return SuiteInt, nil
	case "fp", "spec fp", "spec-fp", "specfp":
		return SuiteFP, nil
	}
	return 0, fmt.Errorf("workload: unknown suite %q (want int | fp)", name)
}

// MarshalText implements encoding.TextMarshaler.
func (s Suite) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Suite) UnmarshalText(b []byte) error {
	v, err := ParseSuite(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// kernel is a synthetic program: each Emit call appends at least one
// committed-path instruction to the generator's queue. save and load
// serialise the kernel's mutable interior state for checkpointing (see
// state.go for the layout contract).
type kernel interface {
	emit(g *Generator)
	save(s *kstate)
	load(s *kstate)
}

// Source is the instruction supply the pipeline model consumes: the
// committed-path stream plus on-demand wrong-path synthesis. Generator
// produces it live; Replay serves a pre-generated Stream.
type Source interface {
	// Name returns the benchmark name.
	Name() string
	// Suite returns the benchmark's suite.
	Suite() Suite
	// Next fills out with the next committed-path instruction.
	Next(out *isa.Inst)
	// WrongPath fills out with the next wrong-path instruction.
	WrongPath(out *isa.Inst)
	// Warmup advances the committed path by n instructions, invoking
	// access for each memory reference. It is exactly equivalent to n
	// Next calls that feed access(in.Addr) for memory instructions —
	// cache warm-up without the per-instruction copy out of the stream.
	Warmup(n uint64, access func(addr uint64))
}

// wpSynth synthesises the wrong-path stream from its own RNG (independent
// of committed-path randomness, so speculation depth cannot perturb the
// committed path) and a ring of recently committed memory addresses;
// wrong-path fetch runs through the program's own neighbourhood, so
// speculative accesses touch nearby lines (mild pollution, occasional
// prefetch) rather than foreign memory. It is embedded by value in both
// Generator and Replay: copying the struct snapshots the whole wrong-path
// state, which is how a Stream hands every Replay an identical start state.
type wpSynth struct {
	rng         xrand.RNG
	wpSeq       uint64
	recentAddrs [16]uint64
	recentPos   int
	recentSeen  bool
}

// noteMem records a committed-path memory address in the recent ring.
func (w *wpSynth) noteMem(addr uint64) {
	w.recentAddrs[w.recentPos] = addr
	w.recentPos = (w.recentPos + 1) % len(w.recentAddrs)
	w.recentSeen = true
}

// wpAddr synthesises a wrong-path address: a recently touched address
// perturbed by a few cache lines.
func (w *wpSynth) wpAddr() uint64 {
	if !w.recentSeen {
		return align(w.rng.Uint64n(1<<20), 8)
	}
	base := w.recentAddrs[w.rng.Intn(len(w.recentAddrs))]
	delta := int64(w.rng.Intn(17)-8) * 32 // within +-8 lines
	a := int64(base) + delta
	if a < 0 {
		a = int64(base)
	}
	return align(uint64(a), 8)
}

// WrongPath fills out with a plausible wrong-path instruction: the mix a
// fetch unit would stream in past a mispredicted branch — ALU ops plus loads
// and stores to addresses near the benchmark's recent working set. These
// consume pipeline and LSQ resources and are squashed at branch resolution.
func (w *wpSynth) WrongPath(out *isa.Inst) {
	*out = isa.Inst{WrongPath: true, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	r := w.rng.Float64()
	switch {
	case r < 0.22:
		out.Op = isa.OpLoad
		out.Addr = w.wpAddr()
		out.Size = 8
		out.Src1 = 0
		out.Dst = int16(1 + w.rng.Intn(isa.NumIntRegs-1))
	case r < 0.30:
		out.Op = isa.OpStore
		out.Addr = w.wpAddr()
		out.Size = 8
		out.Src1, out.Src2 = 0, 0
	case r < 0.42:
		out.Op = isa.OpBranch
		out.Src1 = 0
	default:
		out.Op = isa.OpIntAlu
		out.Src1 = 0
		out.Dst = int16(1 + w.rng.Intn(isa.NumIntRegs-1))
	}
	out.Seq = isa.WrongPathSeqBit | w.wpSeq // disjoint from committed-path sequence space
	w.wpSeq++
}

// Generator produces the dynamic instruction stream of one benchmark.
type Generator struct {
	wpSynth
	name  string
	suite Suite
	seed  uint64
	k     kernel
	rng   *xrand.RNG // committed-path randomness
	queue []isa.Inst
	head  int
	seq   uint64
	// warmAccess, when non-nil, puts emission into warm-up count mode:
	// helpers skip the queue, count instructions in warmCount, and feed
	// memory references straight to warmAccess. Randomness draws are
	// unchanged, so the committed-path stream state evolves exactly as in
	// normal emission. See Warmup.
	warmAccess func(addr uint64)
	warmCount  uint64
	// warmScratch is the discard target of count-mode emission (one per
	// generator: sweeps run generators concurrently).
	warmScratch isa.Inst
}

// Name returns the benchmark name.
func (g *Generator) Name() string { return g.name }

// Suite returns the benchmark's suite.
func (g *Generator) Suite() Suite { return g.suite }

// Next fills out with the next committed-path instruction.
func (g *Generator) Next(out *isa.Inst) {
	for g.head >= len(g.queue) {
		g.queue = g.queue[:0]
		g.head = 0
		g.k.emit(g)
	}
	*out = g.queue[g.head]
	g.head++
	out.Seq = g.seq
	g.seq++
	if out.IsMem() {
		g.noteMem(out.Addr)
	}
}

// warmupSafety bounds the emission-batch size count mode relies on: while
// more than this many warm-up instructions remain, a whole batch can be
// consumed without crossing the budget boundary. Kernel batches are tens
// of instructions; the margin is two orders above that and overshoot is a
// hard error, so the budget accounting can never silently drift.
const warmupSafety = 4096

// Warmup implements Source. Far from the budget boundary it runs emission
// in count mode — instructions are tallied and memory references fed to
// access without ever touching the queue; near the boundary it falls back
// to queued emission walked one instruction at a time, leaving any surplus
// queued for the measurement phase exactly as n Next calls would.
func (g *Generator) Warmup(n uint64, access func(addr uint64)) {
	// Drain instructions already emitted to the queue.
	for n > 0 && g.head < len(g.queue) {
		in := &g.queue[g.head]
		g.head++
		g.seq++
		n--
		if in.IsMem() {
			g.noteMem(in.Addr)
			access(in.Addr)
		}
	}
	// Count-mode emission for the bulk of the budget.
	if n > warmupSafety {
		g.warmAccess = access
		for n > warmupSafety {
			g.warmCount = 0
			g.k.emit(g)
			if g.warmCount > n {
				panic("workload: warm-up emission batch overshot the budget")
			}
			n -= g.warmCount
			g.seq += g.warmCount
		}
		g.warmAccess = nil
	}
	// Tail: queued emission, per-instruction walk.
	for i := uint64(0); i < n; i++ {
		for g.head >= len(g.queue) {
			g.queue = g.queue[:0]
			g.head = 0
			g.k.emit(g)
		}
		in := &g.queue[g.head]
		g.head++
		g.seq++
		if in.IsMem() {
			g.noteMem(in.Addr)
			access(in.Addr)
		}
	}
}

// --- emission helpers used by kernels ---

// emitSlot extends the queue by one zeroed instruction and returns it, so
// helpers write fields in place — the emission path runs once per dynamic
// instruction and a build-then-copy literal costs two extra 32-byte moves.
func (g *Generator) emitSlot() *isa.Inst {
	if g.warmAccess != nil {
		// Warm-up count mode: hand out a scratch slot; the caller's writes
		// are discarded. Memory and branch helpers handle their own
		// accounting before reaching here.
		g.warmCount++
		g.warmScratch = isa.Inst{}
		return &g.warmScratch
	}
	g.queue = append(g.queue, isa.Inst{})
	return &g.queue[len(g.queue)-1]
}

func (g *Generator) push(in isa.Inst) {
	if g.warmAccess != nil {
		g.warmCount++
		if in.IsMem() {
			g.noteMem(in.Addr)
			g.warmAccess(in.Addr)
		}
		return
	}
	g.queue = append(g.queue, in)
}

// ialu emits dst <- op(src1, src2).
func (g *Generator) ialu(dst, src1, src2 int16) {
	in := g.emitSlot()
	in.Op = isa.OpIntAlu
	in.Dst, in.Src1, in.Src2 = dst, src1, src2
}

// imul emits a multi-cycle integer op.
func (g *Generator) imul(dst, src1, src2 int16) {
	in := g.emitSlot()
	in.Op = isa.OpIntMul
	in.Dst, in.Src1, in.Src2 = dst, src1, src2
}

// falu and fmul emit floating-point ops.
func (g *Generator) falu(dst, src1, src2 int16) {
	in := g.emitSlot()
	in.Op = isa.OpFpAlu
	in.Dst, in.Src1, in.Src2 = dst, src1, src2
}

func (g *Generator) fmul(dst, src1, src2 int16) {
	in := g.emitSlot()
	in.Op = isa.OpFpMul
	in.Dst, in.Src1, in.Src2 = dst, src1, src2
}

// load emits dst <- mem[addr], with addrSrc the address-producing register.
func (g *Generator) load(dst, addrSrc int16, addr uint64, size uint8) {
	filter.AssertIndexable(addr, size, "workload load")
	if g.warmAccess != nil {
		g.warmCount++
		g.noteMem(addr)
		g.warmAccess(addr)
		return
	}
	in := g.emitSlot()
	in.Op = isa.OpLoad
	in.Dst, in.Src1, in.Src2 = dst, addrSrc, isa.NoReg
	in.Addr, in.Size = addr, size
}

// store emits mem[addr] <- dataSrc, with addrSrc the address producer.
func (g *Generator) store(addrSrc, dataSrc int16, addr uint64, size uint8) {
	filter.AssertIndexable(addr, size, "workload store")
	if g.warmAccess != nil {
		g.warmCount++
		g.noteMem(addr)
		g.warmAccess(addr)
		return
	}
	in := g.emitSlot()
	in.Op = isa.OpStore
	in.Dst, in.Src1, in.Src2 = isa.NoReg, addrSrc, dataSrc
	in.Addr, in.Size = addr, size
}

// branch emits a conditional branch on condSrc; mispredicted with
// probability p.
func (g *Generator) branch(condSrc int16, p float64) {
	in := g.emitSlot()
	in.Op = isa.OpBranch
	in.Dst, in.Src1, in.Src2 = isa.NoReg, condSrc, isa.NoReg
	in.Taken, in.Mispred = g.rng.Bool(0.5), g.rng.Bool(p)
}

// align rounds addr down to a multiple of size.
func align(addr uint64, size uint64) uint64 { return addr &^ (size - 1) }

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the SPEC-like benchmark name.
	Name string
	// Suite is INT or FP.
	Suite Suite
	// build constructs the kernel from a seed.
	build func(r *xrand.RNG) kernel
}

// New instantiates the benchmark's generator with the given seed.
func (p Profile) New(seed uint64) *Generator {
	r := xrand.New(seed ^ hashName(p.Name))
	// Draw order matters for determinism: the kernel consumes committed-path
	// randomness first, then the wrong-path stream is forked — exactly the
	// construction order every recorded stream was produced with.
	k := p.build(r)
	g := &Generator{name: p.Name, suite: p.Suite, seed: seed, k: k, rng: r}
	g.wpSynth.rng = *r.Fork()
	return g
}

// hashName mixes the benchmark name into the seed so different benchmarks
// with the same seed diverge.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range append(IntSuite(), FPSuite()...) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// SuiteOf returns all profiles of the given suite.
func SuiteOf(s Suite) []Profile {
	if s == SuiteInt {
		return IntSuite()
	}
	return FPSuite()
}
