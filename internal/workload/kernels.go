package workload

import (
	"repro/internal/isa"
	"repro/internal/xrand"
)

// Register-role conventions shared by the kernels. Integer registers:
// r0 is a long-lived base (written once, effectively always ready), r1-r5
// are induction/index registers, r6-r9 address temporaries, r10-r18 pointer
// chase registers, r20-r29 data temporaries. FP registers f32+ hold stream
// data and accumulators.
const (
	regBase  = int16(0)
	regInd   = int16(1)
	regInd2  = int16(2)
	regSP    = int16(3)
	regIdx   = int16(6)
	regChase = int16(10) // +chain
	regTmp   = int16(20) // +k
	fpData   = int16(isa.NumIntRegs)
	fpAcc    = int16(isa.NumIntRegs + 16)
)

// Distinct, widely separated address regions so kernels composed in a mix
// never alias by accident.
const (
	regionStream = uint64(0x1000_0000)
	regionTable  = uint64(0x4000_0000)
	regionHeap   = uint64(0x8000_0000)
	regionStack  = uint64(0xF000_0000)
	regionHome   = uint64(0x0800_0000)
	regionCold   = uint64(0x100_0000_0000)
)

// coldStream injects uniformly spaced compulsory memory misses: every
// "every"-th call emits one load from a monotonically advancing region no
// cache level can retain. This models each benchmark's irreducible
// memory-miss rate (new input data, first-touch pages) independently of its
// hot/warm locality.
type coldStream struct {
	every int
	// depEvery > 0 makes every depEvery-th cold load be followed by a
	// MISPREDICTED branch on the loaded value — the hard-to-predict
	// data-dependent control the paper blames for SPEC INT's limited
	// large-window gains: the window cannot grow past such a miss on
	// either processor.
	depEvery int
	// burst clusters the cold misses: the first `burst` emissions of every
	// burst*every-call period each inject one miss, then the stream goes
	// quiet. The mean rate stays 1/every, but programs alternate between
	// memory phases and compute phases — the behaviour behind Figure 11's
	// low-power residency windows. Default 6.
	burst   int
	n, nDep uint64
	off     uint64
	lane    uint64
}

func (c *coldStream) maybe(g *Generator) {
	if c.every <= 0 {
		return
	}
	if c.burst <= 0 {
		// Default: scale the burst so one memory phase plus its quiet
		// period spans ~10-20k instructions — long enough for the Memory
		// Processor to drain and power down between phases, short enough
		// that a measurement window samples several phases.
		c.burst = 1200 / c.every
		if c.burst < 4 {
			c.burst = 4
		}
		if c.burst > 48 {
			c.burst = 48
		}
	}
	pos := c.n % uint64(c.every*c.burst)
	c.n++
	if pos >= uint64(c.burst) {
		return
	}
	g.load(regTmp+10, regInd, regionCold+(c.lane<<40)+c.off, 8)
	c.off += 32
	if c.depEvery > 0 {
		c.nDep++
		if c.nDep%uint64(c.depEvery) == 0 {
			g.push(isaBranchOn(regTmp+10, true))
		}
	}
}

// isaBranchOn builds a branch instruction on the given condition register
// with a forced prediction outcome.
func isaBranchOn(cond int16, mispred bool) isa.Inst {
	return isa.Inst{Op: isa.OpBranch, Dst: isa.NoReg, Src1: cond, Src2: isa.NoReg,
		Taken: true, Mispred: mispred}
}

// streamKernel models array-streaming FP codes (swim, applu, lucas, art …):
// per iteration one load from each of nStreams arrays, a short FP chain, a
// store to an output array, induction update and a well-predicted loop
// branch. Working sets far beyond L2 give one miss per line per stream —
// independent across streams, hence high memory-level parallelism that a
// large window converts into speed-up.
type streamKernel struct {
	nStreams int
	wsBytes  uint64
	elem     uint64
	fpOps    int
	mispred  float64
	// reuse is the number of passes over each block before advancing
	// (temporal blocking: passes beyond the first hit the L1), controlling
	// the memory-miss intensity. blockBytes defaults to 8 KiB.
	reuse      int
	blockBytes uint64
	cold       coldStream
	offset     uint64
	blockBase  uint64
	pass       int
}

func (k *streamKernel) step() {
	if k.blockBytes == 0 {
		k.blockBytes = 8 << 10
	}
	k.offset += k.elem
	if k.offset >= k.blockBytes {
		k.offset = 0
		// reuse < 0: stationary hot block (time-invariant behaviour; the
		// memory-miss rate comes entirely from the cold stream).
		if k.reuse >= 1 {
			k.pass++
			if k.pass >= k.reuse {
				k.pass = 0
				k.blockBase = (k.blockBase + k.blockBytes) % k.wsBytes
			}
		}
	}
}

func (k *streamKernel) emit(g *Generator) {
	for s := 0; s < k.nStreams; s++ {
		// Stagger bases by a non-power-of-two stride so concurrent streams
		// never alias onto one cache set (real arrays are not set-aligned).
		base := regionStream + uint64(s)<<34 + uint64(s)*4160
		addr := base + k.blockBase + k.offset
		g.load(fpData+int16(s), regInd, align(addr, k.elem), uint8(k.elem))
	}
	// FP chain folding stream values into an accumulator.
	prev := fpData
	for i := 0; i < k.fpOps; i++ {
		src2 := fpData + int16(i%k.nStreams)
		dst := fpAcc + int16(i%4)
		if i%2 == 0 {
			g.fmul(dst, prev, src2)
		} else {
			g.falu(dst, prev, src2)
		}
		prev = dst
	}
	out := regionStream + uint64(k.nStreams)<<34 + uint64(k.nStreams)*4160 + k.blockBase + k.offset
	g.store(regInd, prev, align(out, k.elem), uint8(k.elem))
	g.ialu(regInd, regInd, isa.NoReg) // induction update
	g.ialu(regInd2, regInd2, isa.NoReg)
	g.branch(regInd2, k.mispred)
	k.cold.maybe(g)
	k.step()
}

// stencilKernel models grid codes (mgrid, apsi): three neighbour loads where
// two rows are recently touched (L1 hits) and one streams (periodic L2/mem
// miss), an FP chain and a store back.
type stencilKernel struct {
	rowBytes uint64
	wsBytes  uint64
	fpOps    int
	mispred  float64
	// reuse is the number of smoothing passes over each L2-resident window
	// before the sweep advances (multigrid-style temporal blocking);
	// windowBytes defaults to 1 MiB.
	reuse       int
	windowBytes uint64
	cold        coldStream
	offset      uint64
	winBase     uint64
	pass        int
}

func (k *stencilKernel) init() {
	if k.windowBytes == 0 {
		k.windowBytes = 1 << 20
	}
}

func (k *stencilKernel) step() {
	k.offset += 8
	if k.offset >= k.windowBytes {
		k.offset = 0
		// reuse < 0: stationary window (see streamKernel.step).
		if k.reuse >= 1 {
			k.pass++
			if k.pass >= k.reuse {
				k.pass = 0
				k.winBase = (k.winBase + k.windowBytes) % k.wsBytes
			}
		}
	}
}

func (k *stencilKernel) emit(g *Generator) {
	k.init()
	base := regionStream + k.winBase
	cur := k.offset
	up := (k.offset + k.windowBytes - k.rowBytes) % k.windowBytes
	down := (k.offset + k.rowBytes) % k.windowBytes
	g.load(fpData, regInd, align(base+up, 8), 8)
	g.load(fpData+1, regInd, align(base+cur, 8), 8)
	g.load(fpData+2, regInd, align(base+down, 8), 8)
	prev := fpData
	for i := 0; i < k.fpOps; i++ {
		dst := fpAcc + int16(i%3)
		if i%2 == 0 {
			g.falu(dst, prev, fpData+int16(i%3))
		} else {
			g.fmul(dst, prev, fpData+int16(i%3))
		}
		prev = dst
	}
	g.store(regInd, prev, align(base+(uint64(3)<<34)+cur, 8), 8)
	g.ialu(regInd, regInd, isa.NoReg)
	g.branch(regInd, k.mispred)
	k.cold.maybe(g)
	k.step()
}

// blockedKernel models cache-resident compute-bound FP codes (sixtrack,
// galgel, mesa, fma3d): deep FP chains over a working set that fits in L2
// (mostly L1), rare misses, excellent speculation. These gain little from a
// large window and anchor the FP suite's locality average.
type blockedKernel struct {
	wsBytes uint64
	fpOps   int
	intOps  int
	mispred float64
	cold    coldStream
	r       *xrand.RNG
}

func (k *blockedKernel) emit(g *Generator) {
	addr := regionStream + align(k.r.Uint64n(k.wsBytes), 8)
	g.load(fpData, regInd, addr, 8)
	g.load(fpData+1, regInd, align(regionStream+k.r.Uint64n(k.wsBytes), 8), 8)
	g.load(fpData+2, regInd, align(regionStream+k.r.Uint64n(k.wsBytes), 8), 8)
	prev := fpData
	for i := 0; i < k.fpOps; i++ {
		dst := fpAcc + int16(i%6)
		if i%3 == 0 {
			g.fmul(dst, prev, fpData+1)
		} else {
			g.falu(dst, prev, fpData)
		}
		prev = dst
	}
	for i := 0; i < k.intOps; i++ {
		g.ialu(regTmp+int16(i%4), regInd, regTmp+int16(i%4))
	}
	g.store(regInd, prev, addr, 8)
	g.ialu(regInd, regInd, isa.NoReg)
	g.branch(regInd, k.mispred)
	k.cold.maybe(g)
}

// chaseKernel models pointer-chasing codes (mcf, parser, ammp): nChains
// linked-list walks whose next address depends on the loaded value — the
// archetypal low-locality load. A huge working set makes nearly every hop a
// memory miss; the chains are independent so a large window overlaps at most
// nChains misses. workPerHop integer ops depend on the loaded pointer
// (low-locality compute). Every homeEvery hops the chase value is stored to
// a per-chain home slot and reloaded shortly after by an address-ready load:
// the low-locality-store → high-locality-load forwarding that makes the
// Store Queue Mirror matter (Section 5.3).
type chaseKernel struct {
	nChains   int
	wsBytes   uint64
	workPer   int
	mispred   float64
	homeEvery int
	fp        bool // FP payload (equake/ammp style)
	// fpStoreAddr: store addresses are derived from the chased pointer
	// (equake's smvp() multilevel dereferencing) — these stores have
	// low-locality *address* calculations, the RSAC worst case.
	fpStoreAddr bool
	// hotFrac is the probability a hop lands in a small cache-resident
	// region (hotBytes, default 512 KiB) instead of the full working set —
	// linked structures revisit hot nodes.
	hotFrac  float64
	hotBytes uint64
	r        *xrand.RNG
	hops     uint64
	// pendingHome marks chains whose home slot was stored last round and
	// is reloaded on the next hop — tens of instructions later, when the
	// store has migrated to the LL-SQ, making the reload the
	// high-locality-load ← low-locality-store forwarding the Store Queue
	// Mirror accelerates.
	pendingHome [16]bool
}

// target picks a chase destination respecting the hot fraction.
func (k *chaseKernel) target() uint64 {
	if k.hotBytes == 0 {
		k.hotBytes = 512 << 10
	}
	if k.hotFrac > 0 && k.r.Bool(k.hotFrac) {
		return align(k.r.Uint64n(k.hotBytes), 8)
	}
	return align(k.r.Uint64n(k.wsBytes), 8)
}

func (k *chaseKernel) emit(g *Generator) {
	for c := 0; c < k.nChains; c++ {
		creg := regChase + int16(c)
		if k.pendingHome[c] {
			k.pendingHome[c] = false
			// Reload of the home slot stored on the previous hop: a
			// high-locality load that forwards from the migrated,
			// data-pending store.
			g.load(regTmp+9, regBase, regionHome+uint64(c)*64, 8)
			g.ialu(regTmp+9, regTmp+9, isa.NoReg)
		}
		// Next hop: address is value-dependent on the previous load.
		addr := regionHeap + uint64(c)<<36 + k.target()
		g.load(creg, creg, addr, 8)
		// Field access off the chased pointer (same node, same line).
		g.load(regTmp+int16(c%4), creg, addr^8, 8)
		for i := 0; i < k.workPer; i++ {
			if k.fp && i%2 == 1 {
				g.falu(fpAcc+int16(c%4), fpAcc+int16(c%4), fpData+int16(c%4))
			} else {
				g.ialu(regTmp+int16(i%6), creg, regTmp+int16(i%6))
			}
		}
		if k.fpStoreAddr {
			// Store whose address derives from the chased pointer: a
			// low-locality store address calculation.
			saddr := regionHeap + uint64(c)<<36 + k.target()
			g.store(creg, regTmp, saddr, 8)
		}
		if k.homeEvery > 0 && k.hops%uint64(k.homeEvery) == uint64(k.homeEvery)-1 {
			// Store data depends on the chase (low-locality data), address
			// is a ready base register (high-locality address). The reload
			// happens on the chain's next hop (see pendingHome).
			g.store(regBase, regTmp, regionHome+uint64(c)*64, 8)
			if c < len(k.pendingHome) {
				k.pendingHome[c] = true
			}
		}
		g.branch(regTmp, k.mispred)
		k.hops++
	}
}

// hashKernel models table-lookup codes (gap, vortex, crafty, perlbmk):
// computed index (ready quickly → high-locality address), load from a large
// table (frequent L2 miss), then a branch on the loaded value — a
// data-dependent branch that resolves only after the miss, the source of
// deep wrong-path fetch in the integer suite.
type hashKernel struct {
	tableBytes uint64
	intOps     int
	mispred    float64
	storeFrac  float64
	// hotFrac is the probability a probe hits an L1-resident subtable
	// (hotBytes, default 24 KiB) — hash tables have skewed key popularity;
	// the rest of the probes span tableBytes (sized for L2 residency).
	// cold injects the benchmark's irreducible memory-miss rate.
	hotFrac  float64
	hotBytes uint64
	cold     coldStream
	r        *xrand.RNG
}

func (k *hashKernel) probe() uint64 {
	if k.hotBytes == 0 {
		k.hotBytes = 24 << 10
	}
	if k.hotFrac > 0 && k.r.Bool(k.hotFrac) {
		return align(k.r.Uint64n(k.hotBytes), 8)
	}
	return align(k.r.Uint64n(k.tableBytes), 8)
}

func (k *hashKernel) emit(g *Generator) {
	g.imul(regIdx, regInd, regInd2)
	g.ialu(regIdx, regIdx, regBase)
	addr := regionTable + k.probe()
	g.load(regTmp, regIdx, addr, 8)
	g.load(regTmp+5, regIdx, addr^8, 8)
	for i := 0; i < k.intOps; i++ {
		g.ialu(regTmp+int16(1+i%4), regTmp, regTmp+int16(1+i%4))
	}
	// Data-dependent branch on the loaded value.
	g.branch(regTmp, k.mispred)
	if k.r.Bool(k.storeFrac) {
		g.store(regIdx, regTmp+1, addr, 8)
	}
	g.ialu(regInd, regInd, isa.NoReg)
	k.cold.maybe(g)
}

// stackKernel models call-heavy codes (gcc, eon, perlbmk): register
// spills at call (stores to the stack, address from the always-ready stack
// pointer) and fills at return (loads of the same addresses a short distance
// later) — the close store→load pairs that local, same-epoch or HL-HL
// forwarding captures. Stack frames live in the L1.
type stackKernel struct {
	frameRegs int
	opsPer    int
	mispred   float64
	depth     uint64
	maxDepth  uint64
	r         *xrand.RNG
}

func (k *stackKernel) emit(g *Generator) {
	if k.depth < k.maxDepth && (k.depth == 0 || k.r.Bool(0.5)) {
		// Call: spill the caller-saved registers of the current frame,
		// then descend. The matching fill happens when this depth is
		// returned to — typically dozens of instructions later, after the
		// spilling stores have migrated to the LL-SQ.
		sp := regionStack - k.depth*256
		g.store(regSP, regSP, sp, 8) // save frame pointer
		for i := 1; i < k.frameRegs; i++ {
			g.store(regSP, regTmp+int16(i), sp-uint64(8*i), 8)
		}
		k.work(g)
		g.branch(regTmp, k.mispred)
		k.depth++
		return
	}
	// Return: pop and fill the frame spilled on the way down. The first
	// fill restores the frame pointer itself, so every later stack address
	// calculation depends on it — store→load forwarding latency for fills
	// sits on the address-generation critical path, exactly the
	// low-locality-store → high-locality-load case the Store Queue Mirror
	// accelerates.
	k.depth--
	sp := regionStack - k.depth*256
	k.work(g)
	g.branch(regTmp, k.mispred)
	g.load(regSP, regSP, sp, 8)
	for i := 1; i < k.frameRegs; i++ {
		g.load(regTmp+int16(i), regSP, sp-uint64(8*i), 8)
	}
}

// work emits the frame body: ALU ops with occasional local loads.
func (k *stackKernel) work(g *Generator) {
	sp := regionStack - k.depth*256
	for i := 0; i < k.opsPer; i++ {
		if i%5 == 4 {
			g.load(regTmp+int16(i%k.frameRegs), regSP, sp-uint64(8*(i%k.frameRegs)), 8)
		} else {
			g.ialu(regTmp+int16(i%8), regTmp+int16((i+1)%8), regTmp+int16(i%8))
		}
	}
}

// localKernel models place-and-route style codes (twolf, vpr): random
// accesses over a working set around L2 size — a mix of L1/L2 hits and
// occasional memory misses — with moderately predictable branches.
type localKernel struct {
	wsBytes   uint64
	intOps    int
	mispred   float64
	storeFrac float64
	// hotFrac/hotBytes/cold: see hashKernel.
	hotFrac  float64
	hotBytes uint64
	cold     coldStream
	r        *xrand.RNG
}

func (k *localKernel) pick() uint64 {
	if k.hotBytes == 0 {
		k.hotBytes = 24 << 10
	}
	if k.hotFrac > 0 && k.r.Bool(k.hotFrac) {
		return align(k.r.Uint64n(k.hotBytes), 4)
	}
	return align(k.r.Uint64n(k.wsBytes), 4)
}

func (k *localKernel) emit(g *Generator) {
	addr := regionTable + k.pick()
	g.load(regTmp, regInd, addr, 4)
	g.load(regTmp+6, regInd, regionTable+k.pick(), 4)
	for i := 0; i < k.intOps; i++ {
		g.ialu(regTmp+int16(1+i%5), regTmp+int16(i%5), regInd)
	}
	if k.r.Bool(k.storeFrac) {
		g.store(regInd, regTmp+1, regionTable+k.pick(), 4)
	}
	g.branch(regTmp+1, k.mispred)
	g.ialu(regInd, regInd, isa.NoReg)
	k.cold.maybe(g)
}

// mixKernel interleaves sub-kernels with weights, for benchmarks whose
// behaviour spans archetypes (gcc = stack + hash, bzip2 = stream + local …).
type mixKernel struct {
	parts   []kernel
	weights []float64
	r       *xrand.RNG
}

func newMix(r *xrand.RNG, weights []float64, parts ...kernel) *mixKernel {
	if len(weights) != len(parts) || len(parts) == 0 {
		panic("workload: mix weights/parts mismatch")
	}
	return &mixKernel{parts: parts, weights: weights, r: r}
}

func (k *mixKernel) emit(g *Generator) {
	x := k.r.Float64()
	var cum float64
	for i, w := range k.weights {
		cum += w
		if x < cum {
			k.parts[i].emit(g)
			return
		}
	}
	k.parts[len(k.parts)-1].emit(g)
}

// intStreamKernel models integer streaming (gzip/bzip2 inner loops): byte
// runs over buffers around L2 size with counters and table updates.
type intStreamKernel struct {
	wsBytes   uint64
	intOps    int
	mispred   float64
	storeFrac float64
	cold      coldStream
	offset    uint64
	r         *xrand.RNG
}

func (k *intStreamKernel) emit(g *Generator) {
	addr := regionStream + (k.offset % k.wsBytes)
	g.load(regTmp, regInd, align(addr, 4), 4)
	g.load(regTmp+6, regInd, align(regionTable+uint64(0x10000)+(k.offset%(1<<15)), 4), 4)
	for i := 0; i < k.intOps; i++ {
		g.ialu(regTmp+int16(1+i%4), regTmp, regTmp+int16(1+i%4))
	}
	if k.r.Bool(k.storeFrac) {
		g.store(regInd, regTmp+1, align(regionTable+(k.offset%(1<<16)), 4), 4)
	}
	g.branch(regTmp+1, k.mispred)
	g.ialu(regInd, regInd, isa.NoReg)
	k.cold.maybe(g)
	k.offset += 4
}
