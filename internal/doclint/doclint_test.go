package doclint

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestRepositoryGodoc is the doc-lint gate: every exported symbol across
// internal/... and cmd/... (and the repo root) must carry a doc comment.
// CI runs this test as a named step; it also rides along in go test ./...
func TestRepositoryGodoc(t *testing.T) {
	violations, err := Check(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
	if len(violations) > 0 {
		t.Fatalf("%d undocumented exports (every exported symbol needs a doc comment; see internal/doclint)", len(violations))
	}
}

// TestCheckFindsPlantedViolations exercises the checker itself against a
// synthetic package with known documentation gaps, so a silently broken
// walker cannot turn the gate green.
func TestCheckFindsPlantedViolations(t *testing.T) {
	dir := t.TempDir()
	src := `package planted

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Exposed struct{}

// Fine has a doc comment.
func (Exposed) Fine() {}

func (*Exposed) Bad() {}

type hidden struct{}

// Methods on unexported types are not part of the godoc surface.
func (hidden) Whatever() {}

const (
	// Documented consts pass.
	DocumentedConst = 1
	BareConst       = 2
)

var BareVar = 3
`
	if err := os.WriteFile(filepath.Join(dir, "planted.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file with undocumented exports must be ignored.
	testSrc := "package planted\n\nfunc TestHelperExport() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "planted_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	violations, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"package planted":    true, // no package comment
		"func Undocumented":  true,
		"type Exposed":       true,
		"method Exposed.Bad": true,
		"const BareConst":    true,
		"var BareVar":        true,
	}
	got := map[string]bool{}
	for _, v := range violations {
		got[v.Symbol] = true
	}
	for sym := range want {
		if !got[sym] {
			t.Errorf("checker missed %q", sym)
		}
	}
	for sym := range got {
		if !want[sym] {
			t.Errorf("checker falsely flagged %q", sym)
		}
	}
}
