// Package doclint enforces the repository's documentation contract: every
// package has a package comment and every exported symbol — functions,
// methods on exported types, types, constants and variables — carries a doc
// comment. The contract is enforced by this package's test (which go test
// ./... runs on every PR) and by a named doc-lint step in the CI workflow,
// so the godoc surface cannot silently grow undocumented exports.
//
// The rules follow the classic golint conventions: a declaration group
// (const/var/type block) is satisfied by a doc comment on the group or on
// the individual spec; methods need docs when both the method name and the
// receiver's type name are exported (methods on unexported types are not
// part of the godoc surface). Test files are exempt — their exported
// helpers document themselves by use.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Violation is one undocumented export (or missing package comment).
type Violation struct {
	// Pos is the file position of the offending declaration.
	Pos token.Position
	// Symbol names the undocumented export ("package foo", "Type.Method").
	Symbol string
}

// String renders the violation in file:line: message form.
func (v Violation) String() string {
	return fmt.Sprintf("%s:%d: %s has no doc comment", v.Pos.Filename, v.Pos.Line, v.Symbol)
}

// skipDirs are directory names never descended into.
var skipDirs = map[string]bool{".git": true, "testdata": true, ".github": true}

// Check walks every non-test Go file under root and returns the
// documentation violations, sorted by position.
func Check(root string) ([]Violation, error) {
	fset := token.NewFileSet()
	// pkgFiles collects each directory's parsed files so the
	// package-comment rule can be judged per package, not per file.
	pkgFiles := map[string][]*ast.File{}
	var dirs []string

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("doclint: %w", err)
		}
		dir := filepath.Dir(path)
		if _, seen := pkgFiles[dir]; !seen {
			dirs = append(dirs, dir)
		}
		pkgFiles[dir] = append(pkgFiles[dir], f)
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []Violation
	for _, dir := range dirs {
		files := pkgFiles[dir]
		hasPkgDoc := false
		for _, f := range files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			out = append(out, checkFile(fset, f)...)
		}
		if !hasPkgDoc {
			out = append(out, Violation{
				Pos:    fset.Position(files[0].Package),
				Symbol: "package " + files[0].Name.Name,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out, nil
}

// checkFile reports the undocumented exported declarations of one file.
func checkFile(fset *token.FileSet, f *ast.File) []Violation {
	var out []Violation
	flag := func(pos token.Pos, symbol string) {
		out = append(out, Violation{Pos: fset.Position(pos), Symbol: symbol})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv == nil {
				flag(d.Pos(), "func "+d.Name.Name)
				continue
			}
			if recv, exported := receiverName(d.Recv); exported {
				flag(d.Pos(), "method "+recv+"."+d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok == token.IMPORT || d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						flag(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							flag(name.Pos(), d.Tok.String()+" "+name.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's type name and whether it is
// exported (pointer and generic receivers unwrapped).
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) != 1 {
		return "", false
	}
	expr := recv.List[0].Type
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name, e.IsExported()
		default:
			return "", false
		}
	}
}
