// Package predict hosts the execution-locality classification layer: the
// pluggable policy that decides, at dispatch, whether an instruction is
// high-locality (executes in the Cache Processor) or low-locality (migrates
// to a memory engine). The paper's rule — operand-readiness slack beyond
// MigrateThreshold, plus the post-issue migration of loads that miss to
// memory — is the reactive policy; the cachelevel and delaytrack policies
// predict the migration-worthy loads already at dispatch, the related-work
// refinements of Jalili & Erez (arXiv 2103.14808, cache-level prediction)
// and Diavastos & Carlson (arXiv 2109.03112, real-time load-delay tracking).
//
// Contracts the pipeline model (internal/cpu) relies on:
//
//   - The reactive policy is arithmetic-identical to the pre-layer rule, so
//     default configurations stay bit-identical (golden fixtures, bench
//     digests, sweep cache keys).
//   - Zero hot-path allocation: table state is sized by TableWords and
//     carved from the batch arena via NewIn, mirroring lsq.NewStoreIndexIn;
//     LowLocality and ObserveLoad never allocate.
//   - Scheme constraints stay in the caller: the RLAC override (a load that
//     must compute its address in the HL-LSQ) and the store ride-along
//     (stores buffering in the LL-SQ while the MP is active) are applied by
//     internal/cpu after LowLocality returns, identically for every policy.
//   - Training happens in commit order: the program-order sweep calls
//     LowLocality and then, for the same committed load, ObserveLoad with
//     the level its timed access was satisfied from. Wrong-path loads reach
//     neither hook. Classifier state starts empty at measurement start in
//     every driving mode (warm-up is functional), which is what makes live,
//     trace-replay, checkpoint-resume and batched runs bit-identical.
package predict

import (
	"math/bits"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Query carries one instruction's dispatch-time classification inputs.
type Query struct {
	// In is the dispatched instruction (loads/stores carry the effective
	// address; there is no PC in the ISA model, so predictor tables index
	// by line address).
	In *isa.Inst
	// Dispatch is the dispatch cycle; Ready when both sources are ready;
	// AddrReady when the address source (Src1) is ready.
	Dispatch, Ready, AddrReady int64
}

// Classifier is one execution-locality policy instance, owned by a single
// simulation lane (none of the implementations are safe for concurrent use).
type Classifier interface {
	// LowLocality reports whether the instruction classifies low-locality
	// at dispatch. Called for every committed-path instruction of an FMC
	// configuration.
	LowLocality(q *Query) bool
	// ObserveLoad trains the policy with a committed load's outcome: the
	// hierarchy level that satisfied its timed access and that level's
	// latency. Called once per committed load, after the LowLocality call
	// for the same instruction.
	ObserveLoad(addr uint64, level mem.Level, latency int64)
	// Flush adds the policy's accuracy counters to c and its table-activity
	// counts to act (internal/energy prices them against the "pred"
	// structure). The reactive policy keeps no counters, so default-config
	// runs keep their exact visible counter set.
	Flush(c, act *stats.Counters)
}

// TableWords returns how many uint64 words of predictor-table state the
// classifier for cfg needs (0 for the reactive policy and for non-FMC
// models). cpu.NewBatch adds it to the shared u64 slab.
func TableWords(cfg *config.Config) int {
	if cfg.Model != config.ModelFMC || cfg.Class == config.ClassReactive {
		return 0
	}
	return 1 << cfg.ClassBits()
}

// New builds the classifier for cfg with privately allocated table state
// (the scalar path).
func New(cfg *config.Config) Classifier { return build(cfg, nil) }

// NewIn builds the classifier for cfg with table state carved from words,
// which must hold exactly TableWords(cfg) zeroed entries (an empty slice is
// valid for the reactive policy).
func NewIn(cfg *config.Config, words []uint64) Classifier { return build(cfg, words) }

func build(cfg *config.Config, words []uint64) Classifier {
	thr := int64(cfg.MigrateThreshold)
	if cfg.Model != config.ModelFMC || cfg.Class == config.ClassReactive {
		return &reactive{threshold: thr}
	}
	n := TableWords(cfg)
	if words == nil {
		words = make([]uint64, n)
	}
	t := table{
		entries: words[:n:n],
		mask:    uint64(n - 1),
		shift:   lineShift(cfg.L1.LineBytes),
		idxBits: uint(cfg.ClassBits()),
	}
	if cfg.Class == config.ClassCacheLevel {
		return &cachelevel{table: t, threshold: thr}
	}
	return &delaytrack{table: t, threshold: thr}
}

// lineShift converts an L1 line size to the address shift that yields the
// line index (rounded up for the non-power-of-two sizes Validate permits).
func lineShift(lineBytes int) uint {
	if lineBytes <= 1 {
		return 0
	}
	return uint(bits.Len64(uint64(lineBytes) - 1))
}

// reactive is the paper's rule, verbatim: readiness slack beyond the
// threshold (address readiness for loads). It keeps no state and emits no
// counters, which is what keeps default-config runs bit-identical to the
// pre-layer simulator.
type reactive struct {
	threshold int64
}

// LowLocality implements Classifier.
func (r *reactive) LowLocality(q *Query) bool {
	rel := q.Ready
	if q.In.Op == isa.OpLoad {
		rel = q.AddrReady
	}
	return rel-q.Dispatch > r.threshold
}

// ObserveLoad implements Classifier (no training state).
func (r *reactive) ObserveLoad(uint64, mem.Level, int64) {}

// Flush implements Classifier (no counters).
func (r *reactive) Flush(*stats.Counters, *stats.Counters) {}

// table is the shared tagged direct-mapped predictor array: one 64-bit word
// per entry holding a valid bit, a 32-bit line tag and a 16-bit payload the
// policy interprets (a saturating level counter for cachelevel, a delay
// estimate for delaytrack).
type table struct {
	entries []uint64
	mask    uint64
	shift   uint // address -> line index
	idxBits uint // line -> table index width

	// Hot-path event tallies, read out once by Flush.
	reads, writes   uint64 // table lookups / training updates (activity bag)
	hits, misses    uint64 // prediction outcome per trained load
	predLL, falseLL uint64 // prediction-driven LL calls / ones that hit in cache

	// lastPred and lastCausedLL carry the most recent load's dispatch-time
	// prediction to its ObserveLoad call (the sweep is program-ordered, so
	// the pairing is exact).
	lastPred     bool
	lastCausedLL bool
}

const (
	entryValid = uint64(1) << 63
	tagMask    = (uint64(1) << 32) - 1
	payloadMax = uint64(1)<<16 - 1
)

// slot returns the table index and tag for an address.
func (t *table) slot(addr uint64) (idx uint64, tag uint64) {
	line := addr >> t.shift
	return line & t.mask, (line >> t.idxBits) & tagMask
}

// lookup returns the payload at addr's slot and whether the tag matched.
func (t *table) lookup(addr uint64) (payload uint64, ok bool) {
	idx, tag := t.slot(addr)
	e := t.entries[idx]
	if e&entryValid == 0 || (e>>16)&tagMask != tag {
		return 0, false
	}
	return e & payloadMax, true
}

// store writes a payload at addr's slot, claiming the entry for its tag.
func (t *table) store(addr uint64, payload uint64) {
	idx, tag := t.slot(addr)
	t.entries[idx] = entryValid | tag<<16 | payload&payloadMax
}

// flush empties the tallies into the result bags. Accuracy counters ride
// the digest-pinned Counters bag but only non-zero (the addNZ convention
// for counters post-dating the golden fixture); the read/write activity
// feeds the energy model's "pred" structure.
func (t *table) flush(c, act *stats.Counters) {
	nz := func(name string, v uint64) {
		if v != 0 {
			c.Add(name, v)
		}
	}
	nz("pred_hit", t.hits)
	nz("pred_miss", t.misses)
	nz("pred_ll", t.predLL)
	nz("pred_false_ll", t.falseLL)
	if t.reads != 0 || t.writes != 0 {
		act.Add("pred_read", t.reads)
		act.Add("pred_write", t.writes)
	}
}

// cachelevel predicts the hierarchy level that will satisfy each load from
// a per-line 2-bit saturating history of past levels, and classifies
// predicted memory-miss loads low-locality at dispatch — migration then
// overlaps the miss instead of starting when the HL-LSQ discovers it. The
// reactive rule stays in force as the baseline, so cachelevel's LL set is a
// superset of reactive's.
type cachelevel struct {
	table
	threshold int64
}

// LowLocality implements Classifier.
func (p *cachelevel) LowLocality(q *Query) bool {
	rel := q.Ready
	isLoad := q.In.Op == isa.OpLoad
	if isLoad {
		rel = q.AddrReady
	}
	base := rel-q.Dispatch > p.threshold
	if !isLoad {
		return base
	}
	p.reads++
	sat, ok := p.lookup(q.In.Addr)
	predMem := ok && sat >= 2
	p.lastPred = predMem
	p.lastCausedLL = predMem && !base
	if p.lastCausedLL {
		p.predLL++
	}
	return base || predMem
}

// ObserveLoad implements Classifier: bump the line's saturating counter
// toward "memory" on a memory-level access, away otherwise.
func (p *cachelevel) ObserveLoad(addr uint64, level mem.Level, _ int64) {
	wentMem := level == mem.LevelMem
	if p.lastPred == wentMem {
		p.hits++
	} else {
		p.misses++
	}
	if p.lastCausedLL && !wentMem {
		p.falseLL++
	}
	sat, ok := p.lookup(addr)
	switch {
	case !ok:
		// Allocate weakly biased toward the observed outcome.
		if wentMem {
			sat = 2
		} else {
			sat = 1
		}
	case wentMem && sat < 3:
		sat++
	case !wentMem && sat > 0:
		sat--
	}
	p.writes++
	p.store(addr, sat)
}

// Flush implements Classifier.
func (p *cachelevel) Flush(c, act *stats.Counters) { p.flush(c, act) }

// delaytrack keeps a per-line exponential moving average of observed load
// access latency and classifies a load low-locality when its readiness
// slack plus its predicted delay exceeds the migration threshold — the
// propagated-delay view of locality: a load whose own access is long
// belongs in a memory engine even when its address arrives promptly.
// Non-loads follow the reactive rule (their delays propagate through
// register readiness already).
type delaytrack struct {
	table
	threshold int64
}

// LowLocality implements Classifier.
func (p *delaytrack) LowLocality(q *Query) bool {
	rel := q.Ready
	isLoad := q.In.Op == isa.OpLoad
	if isLoad {
		rel = q.AddrReady
	}
	slack := rel - q.Dispatch
	base := slack > p.threshold
	if !isLoad {
		return base
	}
	p.reads++
	est, _ := p.lookup(q.In.Addr)
	pred := slack+int64(est) > p.threshold
	p.lastPred = pred
	p.lastCausedLL = pred && !base
	if p.lastCausedLL {
		p.predLL++
	}
	return pred
}

// ObserveLoad implements Classifier: fold the observed latency into the
// line's delay estimate (3/4 old + 1/4 new, clamped to the payload width).
func (p *delaytrack) ObserveLoad(addr uint64, level mem.Level, latency int64) {
	wentMem := level == mem.LevelMem
	if p.lastPred == wentMem {
		p.hits++
	} else {
		p.misses++
	}
	if p.lastCausedLL && !wentMem {
		p.falseLL++
	}
	if latency < 0 {
		latency = 0
	}
	est, ok := p.lookup(addr)
	next := uint64(latency)
	if ok {
		next = (3*est + uint64(latency)) / 4
	}
	if next > payloadMax {
		next = payloadMax
	}
	p.writes++
	p.store(addr, next)
}

// Flush implements Classifier.
func (p *delaytrack) Flush(c, act *stats.Counters) { p.flush(c, act) }
