package predict

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

func fmcCfg(class config.ClassPolicy) *config.Config {
	cfg := config.Default()
	cfg.Class = class
	return &cfg
}

func loadQ(addr uint64, dispatch, addrReady int64) *Query {
	return &Query{
		In:       &isa.Inst{Op: isa.OpLoad, Addr: addr},
		Dispatch: dispatch,
		// Ready deliberately diverges from AddrReady so a policy that
		// consults the wrong field for loads fails these tests.
		Ready:     addrReady + 1000,
		AddrReady: addrReady,
	}
}

func aluQ(dispatch, ready int64) *Query {
	return &Query{In: &isa.Inst{Op: isa.OpIntAlu}, Dispatch: dispatch, Ready: ready, AddrReady: dispatch}
}

// TestTableWords: state exists exactly when an FMC configuration selects a
// table policy; the reactive default and every OoO configuration carve
// nothing from the batch slab.
func TestTableWords(t *testing.T) {
	if n := TableWords(fmcCfg(config.ClassReactive)); n != 0 {
		t.Errorf("reactive wants %d words, want 0", n)
	}
	if n := TableWords(fmcCfg(config.ClassCacheLevel)); n != 1<<config.DefaultClassTableBits {
		t.Errorf("cachelevel wants %d words, want %d", n, 1<<config.DefaultClassTableBits)
	}
	narrow := fmcCfg(config.ClassDelayTrack)
	narrow.ClassTableBits = 6
	if n := TableWords(narrow); n != 64 {
		t.Errorf("6-bit table wants %d words, want 64", n)
	}
	ooo := config.OoO64()
	ooo.Class = config.ClassCacheLevel
	if n := TableWords(&ooo); n != 0 {
		t.Errorf("OoO wants %d words, want 0 (classifier is FMC-only)", n)
	}
}

// TestNonFMCCoercedToReactive: under OoO the classifier must never book
// pred activity (the energy model instantiates no pred structure there), so
// build falls back to the stateless policy.
func TestNonFMCCoercedToReactive(t *testing.T) {
	ooo := config.OoO64()
	ooo.Class = config.ClassDelayTrack
	c := New(&ooo)
	if _, isReactive := c.(*reactive); !isReactive {
		t.Fatalf("OoO classifier is %T, want *reactive", c)
	}
}

// TestReactiveRule pins the paper's migration arithmetic exactly: strict
// inequality on the readiness slack, with address readiness standing in for
// full readiness on loads.
func TestReactiveRule(t *testing.T) {
	cfg := fmcCfg(config.ClassReactive)
	thr := int64(cfg.MigrateThreshold)
	c := New(cfg)
	if c.LowLocality(loadQ(0x1000, 100, 100+thr)) {
		t.Error("slack == threshold classified LL; the rule is strict >")
	}
	if !c.LowLocality(loadQ(0x1000, 100, 100+thr+1)) {
		t.Error("slack just past the threshold stayed HL")
	}
	if c.LowLocality(aluQ(100, 100+thr)) || !c.LowLocality(aluQ(100, 100+thr+1)) {
		t.Error("non-load slack rule wrong")
	}
	// Loads key on AddrReady, never Ready (loadQ poisons Ready).
	if c.LowLocality(loadQ(0x1000, 100, 100)) {
		t.Error("load consulted Ready instead of AddrReady")
	}
	cnt, act := stats.NewCounters(), stats.NewCounters()
	c.Flush(cnt, act)
	if len(cnt.Names())+len(act.Names()) != 0 {
		t.Errorf("reactive flushed counters: %v / %v", cnt.Names(), act.Names())
	}
}

// TestCacheLevelLearnsMissingLine: after two observed memory-level accesses
// a line predicts "memory" and the load migrates at dispatch even with zero
// slack; an L1-resident line never does. Reactive-rule classifications stay
// a subset of cachelevel's.
func TestCacheLevelLearnsMissingLine(t *testing.T) {
	cfg := fmcCfg(config.ClassCacheLevel)
	c := New(cfg).(*cachelevel)
	const hot, cold = 0x10_0000, 0x20_0000

	if c.LowLocality(loadQ(cold, 0, 0)) {
		t.Fatal("untrained table predicted LL")
	}
	c.ObserveLoad(cold, mem.LevelMem, 300) // allocates at sat=2: predicts mem
	if !c.LowLocality(loadQ(cold, 0, 0)) {
		t.Fatal("line observed missing to memory stays HL")
	}
	c.ObserveLoad(cold, mem.LevelMem, 300)

	c.LowLocality(loadQ(hot, 0, 0))
	c.ObserveLoad(hot, mem.LevelL1, 1) // allocates at sat=1: predicts cache
	if c.LowLocality(loadQ(hot, 0, 0)) {
		t.Fatal("L1-resident line predicted LL")
	}
	c.ObserveLoad(hot, mem.LevelL1, 1)

	// The reactive baseline still applies regardless of the prediction.
	thr := int64(cfg.MigrateThreshold)
	if !c.LowLocality(loadQ(hot, 0, thr+1)) {
		t.Fatal("slack past threshold stayed HL under a cache-hit prediction")
	}

	cnt, act := stats.NewCounters(), stats.NewCounters()
	c.Flush(cnt, act)
	if cnt.Get("pred_hit") == 0 || cnt.Get("pred_miss") == 0 {
		t.Errorf("accuracy tallies missing: hit=%d miss=%d", cnt.Get("pred_hit"), cnt.Get("pred_miss"))
	}
	if act.Get("pred_read") == 0 || act.Get("pred_write") == 0 {
		t.Errorf("table activity missing: read=%d write=%d", act.Get("pred_read"), act.Get("pred_write"))
	}
}

// TestCacheLevelSaturation: the 2-bit counter saturates at both rails and
// takes two contrary observations to flip a strongly-held prediction.
func TestCacheLevelSaturation(t *testing.T) {
	c := New(fmcCfg(config.ClassCacheLevel)).(*cachelevel)
	const addr = 0x40
	for i := 0; i < 5; i++ {
		c.LowLocality(loadQ(addr, 0, 0))
		c.ObserveLoad(addr, mem.LevelMem, 300)
	}
	c.LowLocality(loadQ(addr, 0, 0))
	c.ObserveLoad(addr, mem.LevelL1, 1) // 3 -> 2: still predicts mem
	if !c.LowLocality(loadQ(addr, 0, 0)) {
		t.Fatal("one contrary observation flipped a saturated prediction")
	}
	c.ObserveLoad(addr, mem.LevelL1, 1) // 2 -> 1: flips
	if c.LowLocality(loadQ(addr, 0, 0)) {
		t.Fatal("two contrary observations did not flip the prediction")
	}
}

// TestDelayTrackEstimate: a line whose observed latency closes the gap to
// the threshold classifies LL on its next dispatch; short-latency lines
// follow the plain slack rule.
func TestDelayTrackEstimate(t *testing.T) {
	cfg := fmcCfg(config.ClassDelayTrack)
	thr := int64(cfg.MigrateThreshold)
	c := New(cfg).(*delaytrack)
	const slow, fast = 0x1000, 0x2000

	if c.LowLocality(loadQ(slow, 0, 0)) {
		t.Fatal("untrained delaytrack predicted LL at zero slack")
	}
	c.ObserveLoad(slow, mem.LevelMem, thr+100) // first observation seeds the EMA raw
	if !c.LowLocality(loadQ(slow, 0, 0)) {
		t.Fatal("slack 0 + estimate past threshold stayed HL")
	}
	// slack + est straddles the threshold exactly: strict > keeps it HL.
	c.ObserveLoad(fast, mem.LevelL1, 1)
	if c.LowLocality(loadQ(fast, 0, thr-1)) {
		t.Fatal("slack+est == threshold classified LL; the rule is strict >")
	}
	if !c.LowLocality(loadQ(fast, 0, thr)) {
		t.Fatal("slack+est just past threshold stayed HL")
	}
}

// TestDelayTrackEMAClamp: the moving average smooths toward new latencies
// and clamps at the 16-bit payload rail instead of wrapping.
func TestDelayTrackEMAClamp(t *testing.T) {
	c := New(fmcCfg(config.ClassDelayTrack)).(*delaytrack)
	const addr = 0x3000
	c.LowLocality(loadQ(addr, 0, 0))
	c.ObserveLoad(addr, mem.LevelMem, 400)
	est, ok := c.lookup(addr)
	if !ok || est != 400 {
		t.Fatalf("seed estimate %d (ok=%v), want 400", est, ok)
	}
	c.LowLocality(loadQ(addr, 0, 0))
	c.ObserveLoad(addr, mem.LevelMem, 0)
	if est, _ = c.lookup(addr); est != 300 {
		t.Fatalf("EMA after 0-latency observation = %d, want 300", est)
	}
	for i := 0; i < 64; i++ {
		c.LowLocality(loadQ(addr, 0, 0))
		c.ObserveLoad(addr, mem.LevelMem, 1<<20)
	}
	if est, _ = c.lookup(addr); est != payloadMax {
		t.Fatalf("estimate %d after huge latencies, want clamp at %d", est, payloadMax)
	}
}

// TestTableTagging: two addresses that collide on the index but differ in
// tag must not read each other's state (the table is tagged, not aliased).
func TestTableTagging(t *testing.T) {
	cfg := fmcCfg(config.ClassCacheLevel)
	cfg.ClassTableBits = 6
	c := New(cfg).(*cachelevel)
	lineBytes := uint64(cfg.L1.LineBytes)
	a := uint64(0x40)
	b := a + lineBytes<<6 // same index, different tag
	c.LowLocality(loadQ(a, 0, 0))
	c.ObserveLoad(a, mem.LevelMem, 300)
	c.LowLocality(loadQ(a, 0, 0))
	c.ObserveLoad(a, mem.LevelMem, 300)
	if !c.LowLocality(loadQ(a, 0, 0)) {
		t.Fatal("trained line does not predict mem")
	}
	if c.LowLocality(loadQ(b, 0, 0)) {
		t.Fatal("tag-colliding line inherited the prediction")
	}
	// Same line offset within a cache line shares the entry.
	if !c.LowLocality(loadQ(a+lineBytes-1, 0, 0)) {
		t.Fatal("intra-line offset missed the trained entry")
	}
}

// TestNewInMatchesNew: arena-carved and privately allocated classifiers are
// behaviorally identical (the batch == scalar bit-identity contract).
func TestNewInMatchesNew(t *testing.T) {
	for _, class := range []config.ClassPolicy{config.ClassCacheLevel, config.ClassDelayTrack} {
		cfg := fmcCfg(class)
		private := New(cfg)
		carved := NewIn(cfg, make([]uint64, TableWords(cfg)))
		for i := 0; i < 500; i++ {
			addr := uint64(i%37) * 64
			q := loadQ(addr, int64(i), int64(i+i%60))
			g1 := private.LowLocality(q)
			g2 := carved.LowLocality(q)
			if g1 != g2 {
				t.Fatalf("%v: step %d diverged: %v vs %v", class, i, g1, g2)
			}
			lv, lat := mem.LevelL1, int64(1)
			if i%3 == 0 {
				lv, lat = mem.LevelMem, 300
			}
			private.ObserveLoad(addr, lv, lat)
			carved.ObserveLoad(addr, lv, lat)
		}
	}
}

// TestLineShift covers the power-of-two and degenerate line sizes.
func TestLineShift(t *testing.T) {
	for _, tc := range []struct {
		bytes int
		want  uint
	}{{1, 0}, {2, 1}, {32, 5}, {64, 6}, {48, 6}} {
		if got := lineShift(tc.bytes); got != tc.want {
			t.Errorf("lineShift(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}
