package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/noc"
)

// rig bundles an ELSQ with its substrate for testing.
type rig struct {
	e   *ELSQ
	l1  *mem.Cache
	cfg config.Config
}

func newRig(t *testing.T, mut func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Default()
	if mut != nil {
		mut(&cfg)
	}
	l1 := mem.NewCache(cfg.L1)
	fab := noc.NewAnalytic(noc.NewBus(cfg.BusOneWay), noc.NewMesh(4, 4, cfg.MeshHop))
	return &rig{e: New(&cfg, fab, l1, nil), l1: l1, cfg: cfg}
}

func mkStore(seq uint64, addr uint64, addrReady, dataReady int64) *lsq.MemOp {
	return &lsq.MemOp{Seq: seq, Store: true, Addr: addr, Size: 8,
		AddrReady: addrReady, DataReady: dataReady, Epoch: lsq.HLEpoch}
}

func mkLoad(seq uint64, addr uint64) *lsq.MemOp {
	return &lsq.MemOp{Seq: seq, Addr: addr, Size: 8, Epoch: lsq.HLEpoch}
}

// migrate places a store in a virtual epoch at time t.
func (r *rig) migrateStore(st *lsq.MemOp, epoch int, t int64) {
	st.Epoch = epoch
	st.MigrateAt = t
	r.e.Migrate(st, t)
}

func TestHLLocalForwardingNoERT(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	ix.Add(st)
	res := r.e.LoadIssue(mkLoad(9, 0x100), ix, 50)
	if !res.Forwarded || res.ExtraLatency != 0 {
		t.Fatalf("HL-HL forwarding = %+v", res)
	}
	c := r.e.Counters()
	if c.Get("hl_sq") != 1 {
		t.Error("HL-SQ search not counted")
	}
	if c.Get("ert") != 0 {
		t.Error("local hit still accessed the ERT")
	}
}

func TestGlobalForwardingThroughSQM(t *testing.T) {
	r := newRig(t, nil) // SQM on by default
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	ix.Add(st)
	r.migrateStore(st, 0, 10)
	res := r.e.LoadIssue(mkLoad(9, 0x100), ix, 50)
	if !res.Forwarded {
		t.Fatalf("global forwarding failed: %+v", res)
	}
	// SQM: 1 cycle to reach the mirror + 1 per epoch searched; no trip.
	if res.ExtraLatency != 2 {
		t.Errorf("SQM extra = %d, want 2", res.ExtraLatency)
	}
	c := r.e.Counters()
	if c.Get("sqm_search") != 1 || c.Get("roundtrip") != 0 {
		t.Errorf("SQM accounting wrong: sqm=%d rt=%d", c.Get("sqm_search"), c.Get("roundtrip"))
	}
	if c.Get("ert") != 1 || c.Get("ll_forward_global") != 1 {
		t.Error("global path accounting wrong")
	}
}

func TestGlobalForwardingWithoutSQMPaysRoundTrip(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.SQM = false })
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	ix.Add(st)
	r.migrateStore(st, 0, 10)
	res := r.e.LoadIssue(mkLoad(9, 0x100), ix, 50)
	if !res.Forwarded {
		t.Fatalf("global forwarding failed: %+v", res)
	}
	// Bus round trip (2x4) plus one epoch search.
	if res.ExtraLatency != 9 {
		t.Errorf("no-SQM extra = %d, want 9", res.ExtraLatency)
	}
	if r.e.Counters().Get("roundtrip") != 1 {
		t.Error("round trip not counted")
	}
}

func TestERTFalsePositive(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	ix.Add(st)
	r.migrateStore(st, 0, 10)
	// A load whose address hashes with the store's (same 10-bit index,
	// different 8-byte block => no overlap) triggers a useless search.
	alias := 0x100 + uint64(1)<<(10+3)
	res := r.e.LoadIssue(mkLoad(9, alias), ix, 50)
	if res.Forwarded {
		t.Fatal("aliased load forwarded")
	}
	if r.e.Counters().Get("ert_false_positive") != 1 {
		t.Error("false positive not counted")
	}
}

func TestLLLocalForwarding(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	ix.Add(st)
	r.migrateStore(st, 3, 10)
	// A low-locality load in the same epoch forwards locally: no ERT.
	ld := mkLoad(9, 0x100)
	ld.Epoch = 3
	ld.MigrateAt = 12
	ld.LowLoc = true
	res := r.e.LoadIssue(ld, ix, 50)
	if !res.Forwarded || res.ExtraLatency != 0 {
		t.Fatalf("local epoch forwarding = %+v", res)
	}
	c := r.e.Counters()
	if c.Get("ll_forward_local") != 1 || c.Get("ert") != 0 {
		t.Error("local forwarding accounting wrong")
	}
}

func TestLLLoadOnlySearchesOlderEpochs(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	// Store in epoch 5 (younger) must NOT forward to a load in epoch 3.
	st := mkStore(10, 0x100, 5, 6)
	ix.Add(st)
	r.migrateStore(st, 5, 10)
	ld := mkLoad(3, 0x100) // older seq
	ld.Epoch = 3
	ld.LowLoc = true
	r.e.Migrate(ld, 8)
	res := r.e.LoadIssue(ld, ix, 50)
	if res.Forwarded {
		t.Fatal("load forwarded from a younger epoch's store")
	}
}

func TestEpochCommitHidesState(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	st.Commit = 100
	ix.Add(st)
	r.migrateStore(st, 0, 10)
	r.e.EpochCommitted(0, 100)
	// After the epoch committed (t=100), its bits are invisible: the load
	// searches nothing and there is no false positive either.
	res := r.e.LoadIssue(mkLoad(9, 0x100), ix, 150)
	if res.Forwarded {
		t.Fatal("forwarded from a committed epoch")
	}
	if r.e.Counters().Get("ll_sq") != 1 { // only the insertion, no search
		t.Errorf("ll_sq = %d, want 1 (insertion only)", r.e.Counters().Get("ll_sq"))
	}
	// Before t=100 the state is still live.
	st2 := mkStore(2, 0x200, 5, 6)
	ix.Add(st2)
	r.migrateStore(st2, 1, 12)
	r.e.EpochCommitted(1, 500)
	res = r.e.LoadIssue(mkLoad(9, 0x200), ix, 60)
	if !res.Forwarded {
		t.Fatal("live epoch state not searchable")
	}
}

func TestBankReclaimClearsBits(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	st.Commit = 100
	ix.Add(st)
	r.migrateStore(st, 0, 10)
	r.e.EpochCommitted(0, 100)
	// Virtual epoch 16 reuses bank 0 and must find it clean.
	st2 := mkStore(50, 0x300, 5, 6)
	ix.Add(st2)
	r.migrateStore(st2, 16, 200)
	res := r.e.LoadIssue(mkLoad(99, 0x100), ix, 250)
	if res.Forwarded {
		t.Fatal("stale bits survived bank reclaim")
	}
}

func TestEpochSquashClearsImmediately(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	ix.Add(st)
	r.migrateStore(st, 0, 10)
	r.e.EpochSquashed(0)
	res := r.e.LoadIssue(mkLoad(9, 0x100), ix, 50)
	if res.Forwarded {
		t.Fatal("squashed epoch still forwarded")
	}
}

func TestLineERTLocksLines(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.ERT = config.ERTLine })
	ix := lsq.NewStoreIndex()
	st := mkStore(1, 0x100, 5, 6)
	ix.Add(st)
	r.migrateStore(st, 0, 10)
	slot, hit := r.l1.Lookup(0x100)
	if !hit {
		t.Fatal("line-ERT insertion did not allocate the L1 line")
	}
	if !r.l1.Locked(slot) {
		t.Fatal("line not locked")
	}
	// Forwarding works through the line index.
	res := r.e.LoadIssue(mkLoad(9, 0x100), ix, 50)
	if !res.Forwarded {
		t.Fatal("line-ERT forwarding failed")
	}
	// Commit unlocks.
	r.e.EpochCommitted(0, 100)
	if r.l1.Locked(slot) {
		t.Error("line still locked after epoch commit")
	}
}

func TestLineERTAbsentLineMeansNoSearch(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.ERT = config.ERTLine })
	ix := lsq.NewStoreIndex()
	// No store inserted: a load to an uncached address can have no ERT
	// state and must not search.
	res := r.e.LoadIssue(mkLoad(9, 0x5000), ix, 50)
	if res.Forwarded || res.ExtraLatency != 0 {
		t.Errorf("absent line produced work: %+v", res)
	}
}

func TestLineERTLockOverflow(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.ERT = config.ERTLine
		// Tiny direct-mapped L1: one way per set => any second line in a
		// set cannot be locked.
		c.L1 = config.CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 32, LatencyCycles: 1}
	})
	ix := lsq.NewStoreIndex()
	st1 := mkStore(1, 0x000, 5, 6)
	ix.Add(st1)
	r.migrateStore(st1, 0, 10)
	// Same set (4 sets => 0x80 maps to set 0), insertion from HL: stalls.
	st2 := mkStore(2, 0x080, 5, 6)
	st2.Epoch = 0
	st2.MigrateAt = 12
	stall := r.e.Migrate(st2, 12)
	if stall == 0 {
		t.Error("lock overflow on HL insertion did not stall")
	}
	// LL-issued address resolution in the same situation squashes.
	st3 := mkStore(3, 0x100, 80, 80)
	st3.Epoch = 0
	st3.MigrateAt = 14
	r.e.Migrate(st3, 14) // address unknown yet
	if !r.e.AddrKnownInLL(st3, 80) {
		// Depending on prior forced unlocks the set may have space; accept
		// either squash or success but require the counter to move on
		// squash.
		if r.e.Counters().Get("ert_lock_squash") == 0 &&
			r.e.Counters().Get("ert_lock_stall") == 0 {
			t.Error("no lock-pressure event recorded")
		}
	}
}

func TestRSACRemovesLoadERT(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.Disamb = config.DisambRSAC })
	// Migrate a load: under RSAC no Load-ERT exists, so a later LL store
	// (which cannot exist under RSAC anyway) has nothing to search; we
	// assert the insertion does not set load bits by checking an LL store
	// search performs no ll_lq epoch searches.
	ldop := mkLoad(1, 0x100)
	ldop.Epoch = 0
	ldop.MigrateAt = 10
	ldop.LowLoc = true
	r.e.Migrate(ldop, 10)
	st := mkStore(5, 0x100, 60, 60)
	st.Epoch = 1
	st.MigrateAt = 20
	res := r.e.StoreAddrReady(st, nil, 60)
	if res.Violation {
		t.Error("violation from empty younger set")
	}
	// ll_lq: 1 insertion (the load) + 1 local search; no ERT-guided
	// remote searches because the Load-ERT was never populated.
	if got := r.e.Counters().Get("ll_lq"); got != 2 {
		t.Errorf("ll_lq = %d, want 2 (insert + local search)", got)
	}
}

func TestStoreAddrReadyCountsHL(t *testing.T) {
	r := newRig(t, nil)
	st := mkStore(5, 0x100, 60, 60)
	res := r.e.StoreAddrReady(st, []*lsq.MemOp{{Seq: 7, Addr: 0x100, Size: 8, Issued: 30}}, 60)
	if !res.Violation {
		t.Error("HL violation not detected")
	}
	if r.e.Counters().Get("hl_lq") != 1 {
		t.Error("HL-LQ search not counted")
	}
}

func TestWithoutLoadQueue(t *testing.T) {
	cfg := config.Default()
	l1 := mem.NewCache(cfg.L1)
	e := New(&cfg, noc.NewAnalytic(noc.NewBus(4), noc.NewMesh(4, 4, 1)), l1, nil, WithoutLoadQueue())
	st := mkStore(5, 0x100, 60, 60)
	res := e.StoreAddrReady(st, []*lsq.MemOp{{Seq: 7, Addr: 0x100, Size: 8, Issued: 30}}, 60)
	if res.Violation {
		t.Error("NoLQ ELSQ performed a violation search")
	}
	if e.Counters().Get("hl_lq") != 0 {
		t.Error("NoLQ ELSQ counted an LQ search")
	}
}

func TestName(t *testing.T) {
	r := newRig(t, nil)
	if r.e.Name() != "FMC-Hash+SQM" {
		t.Errorf("Name = %q", r.e.Name())
	}
}

func TestMigrationInsertionCounts(t *testing.T) {
	r := newRig(t, nil)
	st := mkStore(1, 0x100, 5, 6)
	r.migrateStore(st, 0, 10)
	ldop := mkLoad(2, 0x200)
	ldop.Epoch = 0
	ldop.MigrateAt = 11
	ldop.LowLoc = true
	r.e.Migrate(ldop, 11)
	c := r.e.Counters()
	if c.Get("ll_sq") != 1 || c.Get("ll_lq") != 1 {
		t.Errorf("insertion counts: ll_sq=%d ll_lq=%d, want 1/1",
			c.Get("ll_sq"), c.Get("ll_lq"))
	}
	if c.Get("sqm_update") != 1 {
		t.Error("SQM update not counted for migrated store")
	}
}

// Cross-level age arbitration: a younger migrated store must beat an older
// store still buffering in the HL-SQ — the level-1-first search returning
// the HL hit would forward stale data (the latent bug the differential
// oracle flags).
func TestYoungerLLStoreBeatsOlderHLMatch(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	hl := mkStore(1, 0x100, 5, 6) // dispatched while the MP was idle, never migrates
	ix.Add(hl)
	llSt := mkStore(5, 0x100, 7, 8)
	ix.Add(llSt)
	r.migrateStore(llSt, 0, 10)
	res := r.e.LoadIssue(mkLoad(9, 0x100), ix, 50)
	if !res.Forwarded || res.Source != llSt {
		t.Fatalf("youngest (migrated) store lost the arbitration: %+v", res)
	}
	if res.ExtraLatency == 0 {
		t.Error("global search that beat the local hit was not charged")
	}
	// The reverse ordering keeps the plain local hit: HL younger than LL.
	ix2 := lsq.NewStoreIndex()
	old := mkStore(1, 0x200, 5, 6)
	ix2.Add(old)
	r2 := newRig(t, nil)
	r2.migrateStore(old, 0, 10)
	young := mkStore(5, 0x200, 7, 8)
	ix2.Add(young)
	res2 := r2.e.LoadIssue(mkLoad(9, 0x200), ix2, 50)
	if !res2.Forwarded || res2.Source != young {
		t.Fatalf("younger HL store lost to the older migrated one: %+v", res2)
	}
	if res2.ExtraLatency != 0 {
		t.Error("local HL hit paid a global search")
	}
}

// An LL load whose youngest older overlapping store still buffers in the
// HL-SQ must reach it over the network — before this fix such a load read
// the cache and missed the forwarding entirely.
func TestLLLoadReachesYoungestHLStore(t *testing.T) {
	r := newRig(t, nil)
	ix := lsq.NewStoreIndex()
	hl := mkStore(1, 0x100, 5, 6)
	ix.Add(hl)
	ld := mkLoad(9, 0x100)
	ld.Epoch = 2 // the load migrated; the store did not
	ld.MigrateAt = 10
	res := r.e.LoadIssue(ld, ix, 50)
	if !res.Forwarded || res.Source != hl {
		t.Fatalf("LL load missed the HL-SQ store: %+v", res)
	}
	if res.ExtraLatency == 0 {
		t.Error("remote HL-SQ search was free")
	}
	c := r.e.Counters()
	if c.Get("roundtrip") == 0 {
		t.Error("ME->CP round trip not counted")
	}
}

// A wrong-path op must never be inserted into the ERT: the filter boundary
// assert fires under filter.Debug.
func TestERTInsertRejectsWrongPathOps(t *testing.T) {
	filter.Debug = true
	defer func() {
		filter.Debug = false
		if recover() == nil {
			t.Error("ERT insertion accepted a wrong-path store with filter.Debug on")
		}
	}()
	r := newRig(t, nil)
	wp := mkStore(isa.WrongPathSeqBit|3, 0x100, 5, 6)
	r.migrateStore(wp, 0, 10)
}
