// Package core implements the paper's contribution: the Epoch-based
// Load/Store Queue (ELSQ), a two-level LSQ organised around Execution
// Locality.
//
// High-locality memory instructions live in small conventional CAM queues
// (HL-LQ/HL-SQ) next to the Cache Processor. Low-locality (miss-dependent)
// instructions migrate, in age order, into epochs — per-memory-engine banks
// of the LL-LSQ. Disambiguation is two-level (Section 3.4): a load first
// searches its local store queue (HL-SQ for high-locality loads, its own
// epoch's LL-SQ for low-locality loads); on a local miss, a global search is
// guarded by the Epoch Resolution Table (ERT), a per-epoch bit-vector filter
// indexed either by address hash (Bloom-style) or by L1 cache line — the
// latter requiring referenced lines to be allocated and locked in the L1.
// The optional Store Queue Mirror (SQM, Section 4) replicates LL store
// state next to the ERT so high-locality loads forward from low-locality
// stores without a CP<->MP network round trip.
//
// Restricted disambiguation (Section 3.3) is split between this package and
// the pipeline model: the structural consequences (which ERTs exist and are
// searched) are handled here, while the migration stalls (RSAC) and address-
// calculation stalls (RLAC) are enforced by the pipeline.
package core

import (
	"math/bits"

	"repro/internal/config"
	"repro/internal/filter"
	"repro/internal/fmc"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
)

// ertLockStallCycles is the retry interval when a high-locality insertion
// cannot allocate an L1 line because every way of the set is locked
// (line-based ERT only). The paper stalls the insertion until a line
// unlocks; epochs unlock lines at commit, so a fraction of the L2 round
// trip is a representative retry quantum.
const ertLockStallCycles = 40

// ELSQ is the Epoch-based Load/Store Queue.
type ELSQ struct {
	cfg *config.Config
	// fab carries every network trip the two-level search pays: CP<->MP
	// bus round trips and engine-to-engine mesh routes.
	fab noc.Fabric
	// banks resolves virtual epoch ids to the physical bank hosting them
	// (the live fmc.Epochs under pluggable placement, mod-N otherwise).
	banks fmc.BankMap
	l1    *mem.Cache

	// ert holds the two bit-vector tables (loads and stores); entries are
	// hash buckets or L1 line slots depending on cfg.ERT.
	ert *filter.EpochBitTable

	// activeVirtual maps a physical epoch bank to the virtual (monotonic)
	// epoch id currently occupying it, or -1.
	activeVirtual []int64

	// releaseAt[p] is the cycle bank p's occupant fully committed (0 = still
	// live). The bank's filter state is invisible to searches at or after
	// this cycle and is physically cleared when the bank is reclaimed —
	// program-order processing computes commit times ahead of younger
	// instructions' issue times, so clearing must be timestamp-guarded.
	releaseAt []int64

	// lockedSlots records, per physical bank, the L1 slots this epoch
	// locked (line-based ERT), released on epoch commit or squash.
	lockedSlots [][]mem.LineSlot

	// noLQ removes the associative load queues (SVW composition): stores
	// perform no violation searches and the Load-ERT is absent.
	noLQ bool

	// bypassed[p] marks a live bank whose ERT state is incomplete: a store
	// bypassed filter insertion under pathological line-lock pressure, or
	// forceUnlockOne released one of the bank's locked lines (the line may
	// be evicted, losing the line-indexed filter entry). Searches must
	// conservatively visit such banks regardless of the mask, or a load
	// could miss the youngest matching store and silently read stale data.
	// Cleared when the bank is reclaimed or squashed.
	bypassed []bool

	c *stats.Counters
	// act holds energy-accounting activity counters (cpu.Result.Activity):
	// separate from c so the digest-pinned counter set never changes.
	act *stats.Counters

	// Interned counter handles for the per-operation paths.
	cHLSQ, cHLLQ, cLLSQ, cLLLQ, cERT         *uint64
	cSQMUpdate, cSQMSearch, cRoundtrip       *uint64
	cFwdLocal, cFwdGlobal, cERTFalsePositive *uint64
	aERTInsert                               *uint64

	// Per-LoadIssue scratch replacing a per-call map: the youngest matching
	// store per physical bank, stamped with a generation so no clearing is
	// needed. At most one virtual epoch is live per bank, and candidate
	// stores arrive ascending by age, so the live epoch's youngest match
	// wins the slot exactly as the map's per-virtual-epoch entry did.
	matchGen   []uint64
	matchV     []int64
	matchOp    []*lsq.MemOp
	gen        uint64
	candEpochs []int64

	// Per-StoreAddrReady scratch for the local/remote younger-load split.
	scratchLocal, scratchRemote []*lsq.MemOp
}

// Option configures optional ELSQ behaviour.
type Option func(*ELSQ)

// WithoutLoadQueue removes the associative load queue (used when composing
// with SVW re-execution, Section 3.5).
func WithoutLoadQueue() Option { return func(e *ELSQ) { e.noLQ = true } }

// New builds the ELSQ for the given configuration over the FMC interconnect
// fabric, (for the line-based ERT) the L1 cache, and the virtual-epoch bank
// mapping (nil = mod-N over NumEpochs banks).
func New(cfg *config.Config, fab noc.Fabric, l1 *mem.Cache, banks fmc.BankMap, opts ...Option) *ELSQ {
	if banks == nil {
		banks = fmc.HomeBanks(cfg.NumEpochs)
	}
	var table *filter.EpochBitTable
	if cfg.ERT == config.ERTLine {
		table = filter.NewEpochBitTable(l1.NumSlots(), cfg.NumEpochs)
	} else {
		table = filter.NewEpochBitTable(1<<uint(cfg.ERTHashBits), cfg.NumEpochs)
	}
	e := &ELSQ{
		cfg:           cfg,
		fab:           fab,
		banks:         banks,
		l1:            l1,
		ert:           table,
		activeVirtual: make([]int64, cfg.NumEpochs),
		releaseAt:     make([]int64, cfg.NumEpochs),
		lockedSlots:   make([][]mem.LineSlot, cfg.NumEpochs),
		bypassed:      make([]bool, cfg.NumEpochs),
		c:             stats.NewCounters(),
		act:           stats.NewCounters(),
		matchGen:      make([]uint64, cfg.NumEpochs),
		matchV:        make([]int64, cfg.NumEpochs),
		matchOp:       make([]*lsq.MemOp, cfg.NumEpochs),
	}
	e.cHLSQ = e.c.Handle("hl_sq")
	e.cHLLQ = e.c.Handle("hl_lq")
	e.cLLSQ = e.c.Handle("ll_sq")
	e.cLLLQ = e.c.Handle("ll_lq")
	e.cERT = e.c.Handle("ert")
	e.cSQMUpdate = e.c.Handle("sqm_update")
	e.cSQMSearch = e.c.Handle("sqm_search")
	e.cRoundtrip = e.c.Handle("roundtrip")
	e.cFwdLocal = e.c.Handle("ll_forward_local")
	e.cFwdGlobal = e.c.Handle("ll_forward_global")
	e.cERTFalsePositive = e.c.Handle("ert_false_positive")
	e.aERTInsert = e.act.Handle("ert_insert")
	for i := range e.activeVirtual {
		e.activeVirtual[i] = -1
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements lsq.Scheme.
func (e *ELSQ) Name() string { return e.cfg.Name() }

// Counters implements lsq.Scheme.
func (e *ELSQ) Counters() *stats.Counters { return e.c }

// Activity returns the energy-accounting activity counters (ERT filter
// inserts); the cpu driver folds them into Result.Activity.
func (e *ELSQ) Activity() *stats.Counters { return e.act }

// physical returns the bank holding virtual epoch v.
func (e *ELSQ) physical(v int64) int { return e.banks.Bank(v) }

// ertIndex maps an address to its ERT index. For the line-based ERT the
// line must be resident in the L1; ok=false means no ERT state can exist
// for the address (and hence no filter hit).
func (e *ELSQ) ertIndex(addr uint64) (int, bool) {
	if e.cfg.ERT == config.ERTHash {
		return filter.HashIndex(addr, e.cfg.ERTHashBits), true
	}
	slot, hit := e.l1.Lookup(addr)
	if !hit {
		return 0, false
	}
	return e.l1.SlotIndex(slot), true
}

// claim makes bank phys belong to virtual epoch v, physically clearing the
// previous occupant's filter state (its release time has necessarily
// passed: the bank-free constraint orders reuse after commit).
func (e *ELSQ) claim(phys int, v int64) {
	if e.activeVirtual[phys] == v {
		return
	}
	if e.activeVirtual[phys] >= 0 {
		e.ert.ClearEpoch(phys)
		for _, s := range e.lockedSlots[phys] {
			e.l1.Unlock(s)
		}
		e.lockedSlots[phys] = e.lockedSlots[phys][:0]
	}
	e.activeVirtual[phys] = v
	e.releaseAt[phys] = 0
	e.bypassed[phys] = false
}

// liveAt reports whether bank phys holds a still-uncommitted epoch at t.
func (e *ELSQ) liveAt(phys int, t int64) bool {
	return e.releaseAt[phys] == 0 || e.releaseAt[phys] > t
}

// insert records an op with a known address into the ERT (and locks its L1
// line for the line-based variant). It returns a stall in cycles when the
// line cannot be allocated and canStall is true; with canStall false the
// caller must squash instead (ok=false).
func (e *ELSQ) insert(op *lsq.MemOp, canStall bool) (stall int64, ok bool) {
	filter.AssertIndexable(op.Addr, op.Size, "ert insert")
	filter.AssertCommittedPath(op.Seq, "ert insert")
	phys := e.physical(int64(op.Epoch))
	e.claim(phys, int64(op.Epoch))
	idx := 0
	if e.cfg.ERT == config.ERTLine {
		slot, hit := e.l1.Lookup(op.Addr)
		if !hit {
			var allocated bool
			slot, allocated = e.l1.Allocate(op.Addr)
			for !allocated {
				if !canStall {
					e.c.Inc("ert_lock_squash")
					return 0, false
				}
				// Stall the insertion until a line unlocks; model as a
				// fixed retry quantum and force an unlock by charging the
				// stall (the oldest epoch commits within it in practice).
				e.c.Inc("ert_lock_stall")
				stall += ertLockStallCycles
				if stall >= ertLockStallCycles*int64(e.cfg.NumEpochs) {
					// Pathological set pressure: give up and bypass the
					// filter for this op (counted; negligible at sane
					// associativity, dominant at 1-way — Figure 8b/c).
					// The bank's filter state is now incomplete, so
					// searches must visit it unconditionally.
					e.c.Inc("ert_lock_bypass")
					e.bypassed[phys] = true
					return stall, true
				}
				slot, allocated = e.l1.Allocate(op.Addr)
				if !allocated {
					// Evict the oldest epoch's first locked slot to make
					// progress, mirroring the eventual unlock at commit.
					e.forceUnlockOne()
				}
			}
		}
		e.l1.Lock(slot)
		e.lockedSlots[phys] = append(e.lockedSlots[phys], slot)
		idx = e.l1.SlotIndex(slot)
	} else {
		idx = filter.HashIndex(op.Addr, e.cfg.ERTHashBits)
	}
	if op.Store {
		e.ert.SetStore(idx, phys)
		*e.aERTInsert++
		if e.cfg.SQM {
			*e.cSQMUpdate++
		}
	} else if !e.noLQ && e.cfg.Disamb != config.DisambRSAC {
		// The Load-ERT exists only when stores perform global violation
		// searches (full disambiguation or RLAC).
		e.ert.SetLoad(idx, phys)
		*e.aERTInsert++
	}
	return stall, true
}

// forceUnlockOne releases the oldest locked slot across banks; used only to
// guarantee forward progress under pathological line-locking pressure.
func (e *ELSQ) forceUnlockOne() {
	oldest := int64(1<<62 - 1)
	bank := -1
	for p, v := range e.activeVirtual {
		if v >= 0 && len(e.lockedSlots[p]) > 0 && v < oldest {
			oldest = v
			bank = p
		}
	}
	if bank < 0 {
		return
	}
	s := e.lockedSlots[bank][0]
	e.lockedSlots[bank] = e.lockedSlots[bank][1:]
	e.l1.Unlock(s)
	// The unlocked line may now be evicted, taking the bank's line-indexed
	// filter entry with it; the bank must be searched unconditionally.
	e.bypassed[bank] = true
}

// Migrate implements lsq.Scheme: the op enters epoch op.Epoch. Stores
// migrate whenever the Memory Processor is active (they must buffer until
// commit); loads migrate only when miss-dependent (completed loads release
// their HL-LQ entry early instead). Accesses are counted as LL-queue
// insertions — the dominant term of the Table 2 LL-SQ column. Ops whose
// address is already known are inserted into the ERT immediately; the rest
// insert at address resolution via AddrKnownInLL.
func (e *ELSQ) Migrate(op *lsq.MemOp, t int64) int64 {
	if op.Store {
		*e.cLLSQ++
	} else {
		*e.cLLLQ++
	}
	if op.AddrReady <= t {
		stall, _ := e.insert(op, true)
		return stall
	}
	// Claim the bank even when the address is unknown so age mapping holds.
	e.claim(e.physical(int64(op.Epoch)), int64(op.Epoch))
	return 0
}

// AddrKnownInLL implements lsq.Scheme: an op resolved its address while in
// the LL-LSQ. For the line-based ERT a lock overflow here cannot stall
// (younger locks may be held by younger loads — the deadlock case of
// Section 3.4) and squashes instead.
func (e *ELSQ) AddrKnownInLL(op *lsq.MemOp, t int64) bool {
	_, ok := e.insert(op, false)
	return !ok
}

// EpochCommitted implements lsq.Scheme: the epoch's two ERT columns become
// invisible from cycle t on and its line locks are released — the
// bulk-release that makes ELSQ checkpoint recovery cheap compared to the
// HSQ's per-store counter decrements. Bit clearing is deferred to bank
// reclaim (timestamp-guarded via releaseAt), but locks must drop at commit:
// they gate L1 replacement, and holding them to bank reuse would starve the
// cache.
func (e *ELSQ) EpochCommitted(epoch int, t int64) {
	phys := e.physical(int64(epoch))
	if e.activeVirtual[phys] != int64(epoch) {
		return
	}
	e.releaseAt[phys] = t
	// Dropping the locks lets the L1 evict the epoch's lines, and with them
	// the line-indexed filter entries — but the epoch stays searchable for
	// loads issuing before cycle t (program-order processing reaches them
	// after this release is computed). Until the bank is reclaimed its
	// filter state is therefore incomplete and searches must visit it
	// unconditionally.
	if len(e.lockedSlots[phys]) > 0 {
		e.bypassed[phys] = true
	}
	for _, s := range e.lockedSlots[phys] {
		e.l1.Unlock(s)
	}
	e.lockedSlots[phys] = e.lockedSlots[phys][:0]
}

// EpochSquashed implements lsq.Scheme: discard the epoch's filter state
// immediately.
func (e *ELSQ) EpochSquashed(epoch int) {
	phys := e.physical(int64(epoch))
	if e.activeVirtual[phys] != int64(epoch) {
		return
	}
	e.ert.ClearEpoch(phys)
	for _, s := range e.lockedSlots[phys] {
		e.l1.Unlock(s)
	}
	e.lockedSlots[phys] = e.lockedSlots[phys][:0]
	e.activeVirtual[phys] = -1
	e.releaseAt[phys] = 0
	e.bypassed[phys] = false
}

// epochMatch returns the youngest candidate store of virtual epoch v seen
// by the current LoadIssue pass, or nil.
func (e *ELSQ) epochMatch(v int64) *lsq.MemOp {
	p := e.physical(v)
	if e.matchGen[p] == e.gen && e.matchV[p] == v {
		return e.matchOp[p]
	}
	return nil
}

// LoadIssue implements lsq.Scheme: two-level disambiguation for a load.
// Forwarding is arbitrated by age across both levels — the youngest older
// overlapping store wins wherever it lives. Migration is not perfectly
// age-ordered in this model (a store dispatched while the Memory Processor
// was idle buffers in the HL-SQ while younger stores migrate past it), so a
// local hit is only final when it is the youngest match overall; otherwise
// the search continues into the other level and the extra searches are
// charged.
func (e *ELSQ) LoadIssue(ld *lsq.MemOp, ix *lsq.StoreIndex, t int64) lsq.LoadResult {
	// One pass over the candidate stores: the youngest match still in the
	// HL-SQ at t, the youngest match per virtual epoch (bank-indexed
	// scratch; only live epochs are ever queried and exactly one virtual
	// epoch is live per bank), and the youngest match overall. Candidates
	// are ascending by age, so later assignments win.
	var hlMatch, youngest *lsq.MemOp
	e.gen++
	for _, st := range ix.Candidates(ld, t) {
		if st.MigrateAt == 0 || st.MigrateAt > t {
			hlMatch = st
		} else {
			p := e.physical(int64(st.Epoch))
			e.matchGen[p] = e.gen
			e.matchV[p] = int64(st.Epoch)
			e.matchOp[p] = st
		}
		youngest = st
	}
	ld.UnresolvedOlderStore = ix.Unresolved(ld, t)

	// Level 1: local search. The local hit is final only when it is the
	// youngest overlapping store overall.
	if ld.Epoch == lsq.HLEpoch {
		*e.cHLSQ++
		if hlMatch != nil && hlMatch == youngest {
			return lsq.Resolve(ld, hlMatch, t)
		}
	} else {
		*e.cLLSQ++
		if m := e.epochMatch(int64(ld.Epoch)); m != nil && m == youngest {
			// Local same-epoch forwarding: no global search, no network.
			*e.cFwdLocal++
			return lsq.Resolve(ld, m, t)
		}
	}

	// Level 2: global search, guarded by the Store-ERT. Epochs partition
	// program order contiguously, so the first match in the youngest-first
	// walk is the youngest LL match.
	*e.cERT++
	var mask filter.EpochMask
	if idx, present := e.ertIndex(ld.Addr); present {
		mask = e.ert.StoreMask(idx)
	}
	candidates := e.candidateEpochs(mask, ld, t)

	var best *lsq.MemOp
	var extra int64
	if len(candidates) > 0 {
		if ld.Epoch == lsq.HLEpoch {
			if e.cfg.SQM {
				// The SQM sits next to the ERT: one extra cycle, no trip.
				extra = 1
				*e.cSQMSearch++
			} else {
				extra = e.fab.BusRoundTrip(t) - t
				*e.cRoundtrip++
			}
		}
		prev := -1
		if ld.Epoch != lsq.HLEpoch {
			prev = e.physical(int64(ld.Epoch))
		}
		for _, v := range candidates {
			*e.cLLSQ++
			extra++ // sequential epoch search
			if ld.Epoch != lsq.HLEpoch && prev >= 0 {
				now := t + extra
				extra += e.fab.Route(prev, e.physical(v), now) - now
			}
			prev = e.physical(v)
			if m := e.epochMatch(v); m != nil {
				*e.cFwdGlobal++
				best = m
				break
			}
			*e.cERTFalsePositive++
		}
	}

	// Age arbitration across levels.
	if best != nil && best == youngest {
		res := lsq.Resolve(ld, best, t+extra)
		res.ExtraLatency = extra
		return res
	}
	if hlMatch != nil && hlMatch == youngest {
		// The youngest match buffers in the HL-SQ. An HL load already
		// searched it at level 1; an LL load reaches it over the network
		// (one memory-engine -> CP round trip, like the store-side HL-LQ
		// check).
		if ld.Epoch != lsq.HLEpoch {
			*e.cHLSQ++
			*e.cRoundtrip++
			now := t + extra
			extra += e.fab.BusRoundTrip(now) - now
		}
		res := lsq.Resolve(ld, hlMatch, t+extra)
		res.ExtraLatency = extra
		return res
	}
	return lsq.LoadResult{ExtraLatency: extra}
}

// candidateEpochs converts an ERT bank mask into the virtual epochs older
// than ld and still uncommitted at t, youngest first (the paper's search
// order). Banks flagged bypassed carry incomplete filter state and are
// included regardless of the mask. So are banks the current candidate pass
// proved displaced: program-order processing computes commit times ahead of
// younger instructions' issue times, so a bank can be reclaimed (and its
// filter state cleared) by a processing-order-later epoch while a load
// whose issue cycle precedes the reuse still needs the previous occupant —
// at cycle t that epoch physically still owned the bank and its filter
// bits, so real hardware would search it. The candidates scratch tells us
// exactly when that holds: it records an in-flight store of the bank's
// time-t occupant. The returned slice is scratch storage owned by the
// ELSQ, valid until the next call.
func (e *ELSQ) candidateEpochs(mask filter.EpochMask, ld *lsq.MemOp, t int64) []int64 {
	out := e.candEpochs[:0]
	for phys := 0; phys < e.cfg.NumEpochs; phys++ {
		v := e.activeVirtual[phys]
		if e.matchGen[phys] == e.gen && v >= 0 && e.matchV[phys] < v {
			// Displaced occupant with an in-flight candidate store at t:
			// banks are reused only after their occupant fully commits, so
			// the scratch epoch is the bank's owner as of cycle t. A
			// squashed bank (activeVirtual < 0) stays dead — its state was
			// discarded, not displaced.
			v = e.matchV[phys]
		} else {
			if !mask.Has(phys) && !e.bypassed[phys] {
				continue
			}
			if v < 0 || !e.liveAt(phys, t) {
				continue // stale bank bit (cleared or committed epoch)
			}
		}
		if ld.Epoch != lsq.HLEpoch && v >= int64(ld.Epoch) {
			continue // only strictly older epochs hold older stores
		}
		out = append(out, v)
	}
	// Youngest (highest virtual id) first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	// Insertion order of the mask scan is ascending physical, not virtual;
	// sort descending by virtual id (N<=16, simple insertion sort).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	e.candEpochs = out
	return out
}

// StoreAddrReady implements lsq.Scheme: violation detection at store
// address resolution.
func (e *ELSQ) StoreAddrReady(st *lsq.MemOp, younger []*lsq.MemOp, t int64) lsq.StoreResult {
	if e.noLQ {
		return lsq.StoreResult{} // SVW: re-execution catches violations
	}
	if st.MigrateAt == 0 || st.AddrReady <= st.MigrateAt {
		// The store's address resolved while it was still in the HL-LSQ
		// (or it never migrates): the violation check is a plain HL-LQ
		// search at issue — every younger issued load was high-locality at
		// that point. This is the common case Figure 1 predicts: store
		// addresses rarely depend on misses.
		*e.cHLLQ++
		if ld := lsq.FindViolation(st, younger, t); ld != nil {
			return lsq.StoreResult{Violation: true, ViolatingLoad: ld}
		}
		return lsq.StoreResult{}
	}
	// Low-locality store (full disambiguation or RLAC): local epoch search,
	// then Load-ERT guarded searches of younger epochs, then the HL-LQ.
	// Under RSAC stores never reach the LL-LSQ, so this path never runs.
	*e.cLLLQ++
	e.scratchLocal = e.scratchLocal[:0]
	e.scratchRemote = e.scratchRemote[:0]
	for _, ld := range younger {
		if ld.Epoch == st.Epoch {
			e.scratchLocal = append(e.scratchLocal, ld)
		} else {
			e.scratchRemote = append(e.scratchRemote, ld)
		}
	}
	if ld := lsq.FindViolation(st, e.scratchLocal, t); ld != nil {
		return lsq.StoreResult{Violation: true, ViolatingLoad: ld}
	}
	*e.cERT++
	idx, present := e.ertIndex(st.Addr)
	if present {
		mask := e.ert.LoadMask(idx)
		for w, word := range [2]uint64{mask.Lo, mask.Hi} {
			for m := word; m != 0; m &= m - 1 {
				phys := w*64 + bits.TrailingZeros64(m)
				v := e.activeVirtual[phys]
				if v < 0 || v <= int64(st.Epoch) || !e.liveAt(phys, t) {
					continue // only live younger epochs can hold violating loads
				}
				*e.cLLLQ++
			}
		}
	}
	// The HL-LQ holds the youngest loads; an LL store must check it (one
	// network trip from the memory engine to the CP). The trip is counted
	// but deliberately not booked on the fabric: it overlaps the store's
	// own completion and delays nothing the timing model observes.
	*e.cHLLQ++
	*e.cRoundtrip++
	if ld := lsq.FindViolation(st, e.scratchRemote, t); ld != nil {
		return lsq.StoreResult{Violation: true, ViolatingLoad: ld}
	}
	return lsq.StoreResult{}
}
