package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("nearby seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(8))
	}
	mean := sum / n
	if mean < 7 || mean > 9 {
		t.Errorf("Geometric(8) sample mean = %v, want ~8", mean)
	}
	if g := r.Geometric(0.5); g != 1 {
		t.Errorf("Geometric(<1) = %d, want 1", g)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(9)
	child := parent.Fork()
	// Child stream must not mirror the parent's.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked stream overlapped parent %d/100 times", same)
	}
}

func TestUint64nProperty(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		n = n%1000 + 1
		r := New(seed)
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
