// Package xrand provides a tiny, fast, deterministic pseudo-random number
// generator (splitmix64) used by the workload generators. Determinism across
// runs and platforms is essential: every experiment in the paper reproduction
// must be exactly repeatable, and math/rand's global state or version-drifting
// algorithms would break that.
package xrand

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with zero; prefer New to mix the seed.
type RNG struct {
	state uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so nearby seeds diverge immediately.
	r.Uint64()
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a geometrically distributed int >= 1 with mean
// approximately mean (mean must be >= 1).
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / mean
	n := 1
	for !r.Bool(p) && n < int(mean*20) {
		n++
	}
	return n
}

// Fork returns a new generator whose stream is independent of (but
// deterministically derived from) the parent's current state.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64() ^ 0xA5A5A5A55A5A5A5A)
}

// State returns the raw generator state, for checkpointing. Restoring it
// with SetState resumes the stream exactly where State captured it.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the raw generator state previously captured by State.
// Unlike New it applies no seed mixing: the next Uint64 call continues the
// captured stream.
func (r *RNG) SetState(s uint64) { r.state = s }
