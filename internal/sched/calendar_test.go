package sched

import (
	"testing"
	"testing/quick"
)

func TestCalendarWidth(t *testing.T) {
	c := NewCalendar(2, 64)
	if c.Width() != 2 {
		t.Fatalf("Width = %d", c.Width())
	}
	// Two reservations fit in cycle 5; the third spills to 6.
	if got := c.Reserve(5); got != 5 {
		t.Errorf("first = %d", got)
	}
	if got := c.Reserve(5); got != 5 {
		t.Errorf("second = %d", got)
	}
	if got := c.Reserve(5); got != 6 {
		t.Errorf("third = %d, want 6", got)
	}
}

func TestCalendarNegativeClamped(t *testing.T) {
	c := NewCalendar(1, 64)
	if got := c.Reserve(-10); got != 0 {
		t.Errorf("Reserve(-10) = %d, want 0", got)
	}
}

func TestCalendarOutOfOrder(t *testing.T) {
	c := NewCalendar(1, 1024)
	if got := c.Reserve(100); got != 100 {
		t.Errorf("got %d", got)
	}
	// Earlier cycle still free.
	if got := c.Reserve(50); got != 50 {
		t.Errorf("got %d", got)
	}
	// Cycle 100 is taken; next free is 101.
	if got := c.Reserve(100); got != 101 {
		t.Errorf("got %d, want 101", got)
	}
}

func TestCalendarNeverBelowRequest(t *testing.T) {
	f := func(times []uint16) bool {
		c := NewCalendar(2, 4096)
		for _, raw := range times {
			want := int64(raw % 2000)
			got := c.Reserve(want)
			if got < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Per-cycle capacity is never exceeded within the horizon.
func TestCalendarCapacityProperty(t *testing.T) {
	c := NewCalendar(3, 4096)
	counts := map[int64]int{}
	for i := 0; i < 1000; i++ {
		got := c.Reserve(int64(i % 50))
		counts[got]++
	}
	for cycle, n := range counts {
		if n > 3 {
			t.Fatalf("cycle %d has %d reservations, width 3", cycle, n)
		}
	}
}

func TestCalendarPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCalendar(0, 16) },
		func() { NewCalendar(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid calendar accepted")
				}
			}()
			f()
		}()
	}
}

func TestRingCapacity(t *testing.T) {
	r := NewRing(2)
	if r.FreeAt() != 0 {
		t.Error("fresh ring not free")
	}
	r.Push(10)
	r.Push(20)
	// Third allocation must wait for the first release.
	if got := r.FreeAt(); got != 10 {
		t.Errorf("FreeAt = %d, want 10", got)
	}
	r.Push(30)
	if got := r.FreeAt(); got != 20 {
		t.Errorf("FreeAt = %d, want 20", got)
	}
}

func TestRingUnlimited(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 100; i++ {
		r.Push(int64(i))
	}
	if r.FreeAt() != 0 {
		t.Error("unlimited ring backpressured")
	}
}

// TestCalendarHorizonAliasingPanics is the regression test for the silent
// horizon-aliasing clobber: booking cycle t+horizon used to land on cycle
// t's live ring slot, see a "different" packed cycle and reset its booked
// count to zero — future-cycle reservations vanished with no signal. The
// calendar must now detect that the aliased slot holds a *future* cycle and
// panic with the geometry.
func TestCalendarHorizonAliasingPanics(t *testing.T) {
	const horizon = 16
	c := NewCalendar(1, horizon)
	// Book the future cycle, then let time pass beyond the horizon so a
	// later reservation wraps onto the booked slot.
	c.Reserve(horizon + 3)
	defer func() {
		if recover() == nil {
			t.Error("horizon-aliased Reserve silently clobbered a future cycle's bookings")
		}
	}()
	c.Reserve(3) // 3 & mask == (horizon+3) & mask: aliases the live slot
}

// TestCalendarStaleSlotsStillClear pins the legitimate half of the lazy-
// clearing rule: a slot whose packed cycle is *older* than the requested
// cycle is stale and must be reused without complaint.
func TestCalendarStaleSlotsStillClear(t *testing.T) {
	const horizon = 16
	c := NewCalendar(1, horizon)
	if got := c.Reserve(3); got != 3 {
		t.Fatalf("got %d", got)
	}
	// One full lap later the slot is stale; reserving the aliasing future
	// cycle must succeed and see full capacity.
	if got := c.Reserve(horizon + 3); got != horizon+3 {
		t.Errorf("Reserve(%d) = %d after slot went stale", horizon+3, got)
	}
}
