// Package sched provides the resource calendar used by the pipeline model:
// a ring-buffer reservation table that answers "earliest cycle >= t with a
// free slot" for width-limited resources (fetch slots, issue ports, cache
// ports, commit slots, migration bandwidth).
package sched

// Calendar reserves up to width events per cycle. Slots are tracked in a
// ring keyed by cycle; entries are cleared lazily when a new cycle maps
// onto them, so reservation times may be moderately out of order as long as
// the spread stays below the horizon.
type Calendar struct {
	width uint16
	cycle []int64
	used  []uint16
	mask  int64
}

// NewCalendar returns a calendar admitting width events per cycle with the
// given horizon (rounded up to a power of two). The horizon must exceed the
// maximum spread between in-flight reservation times; the pipeline model's
// spread is bounded by the instruction window lifetime.
func NewCalendar(width, horizon int) *Calendar {
	if width <= 0 || horizon <= 0 {
		panic("sched: invalid calendar geometry")
	}
	n := 1
	for n < horizon {
		n <<= 1
	}
	return &Calendar{
		width: uint16(width),
		cycle: make([]int64, n),
		used:  make([]uint16, n),
		mask:  int64(n - 1),
	}
}

// Reserve books one slot at the earliest cycle >= t and returns it.
func (c *Calendar) Reserve(t int64) int64 {
	if t < 0 {
		t = 0
	}
	for {
		i := t & c.mask
		if c.cycle[i] != t {
			c.cycle[i] = t
			c.used[i] = 0
		}
		if c.used[i] < c.width {
			c.used[i]++
			return t
		}
		t++
	}
}

// Width returns the per-cycle capacity.
func (c *Calendar) Width() int { return int(c.width) }

// Ring is a fixed-capacity FIFO of release times used to model occupancy
// constraints (ROB, issue queues, LSQ entries): dispatching the i-th entry
// requires the (i-capacity)-th entry's release time to have passed.
type Ring struct {
	times []int64
	pos   int
}

// NewRing returns a ring modelling a structure with the given capacity.
// A non-positive capacity means unlimited (FreeAt always returns 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return &Ring{}
	}
	return &Ring{times: make([]int64, capacity)}
}

// FreeAt returns the earliest cycle a new entry can be allocated.
func (r *Ring) FreeAt() int64 {
	if len(r.times) == 0 {
		return 0
	}
	return r.times[r.pos]
}

// Push records the release time of the entry just allocated.
func (r *Ring) Push(release int64) {
	if len(r.times) == 0 {
		return
	}
	r.times[r.pos] = release
	r.pos = (r.pos + 1) % len(r.times)
}
