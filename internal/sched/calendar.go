// Package sched provides the resource calendar used by the pipeline model:
// a ring-buffer reservation table that answers "earliest cycle >= t with a
// free slot" for width-limited resources (fetch slots, issue ports, cache
// ports, commit slots, migration bandwidth).
package sched

import "fmt"

// Calendar reserves up to width events per cycle. Slots are tracked in a
// ring keyed by cycle; entries are cleared lazily when a new cycle maps
// onto them, so reservation times may be moderately out of order as long as
// the spread stays below the horizon.
type Calendar struct {
	width uint64
	slots []uint64
	mask  int64
}

// Each ring slot packs the cycle currently mapped onto it (upper 56 bits)
// and the number of reservations booked there (lower 8 bits) into one
// word: a Reserve probe reads and writes a single 8-byte location, and the
// whole ring is half the size of a two-field layout — the probe loop is
// the hottest line of the simulator and is effectively bound by cache
// misses on this array.
const calUsedBits = 8

// NewCalendar returns a calendar admitting width events per cycle with the
// given horizon (rounded up to a power of two). The horizon must exceed the
// maximum spread between in-flight reservation times; the pipeline model's
// spread is bounded by the instruction window lifetime. Width is capped at
// 255 by the packed slot layout — far above any modelled issue width.
func NewCalendar(width, horizon int) *Calendar {
	return NewCalendarIn(width, horizon, make([]uint64, CalendarSlots(horizon)))
}

// CalendarSlots returns the backing-slot count a calendar with the given
// horizon occupies (the horizon rounded up to a power of two). Batch
// construction uses it to carve several calendars' rings from one shared
// slab.
func CalendarSlots(horizon int) int {
	if horizon <= 0 {
		panic("sched: invalid calendar horizon")
	}
	n := 1
	for n < horizon {
		n <<= 1
	}
	return n
}

// NewCalendarIn is NewCalendar over caller-provided backing storage: slots
// must hold exactly CalendarSlots(horizon) zeroed words and must not be
// shared with another calendar. It is how the batch engine stripes the
// calendars of many lanes into one contiguous slab.
func NewCalendarIn(width, horizon int, slots []uint64) *Calendar {
	if width <= 0 || horizon <= 0 || width > 1<<calUsedBits-1 {
		panic("sched: invalid calendar geometry")
	}
	if len(slots) != CalendarSlots(horizon) {
		panic("sched: calendar backing size mismatch")
	}
	return &Calendar{
		width: uint64(width),
		slots: slots,
		mask:  int64(len(slots) - 1),
	}
}

// Reserve books one slot at the earliest cycle >= t and returns it.
//
// Horizon contract: the spread between in-flight reservation times must stay
// below the horizon. A slot whose packed cycle is *older* than t is stale and
// lazily cleared; one whose cycle is *newer* than t means cycle t aliases a
// live future reservation — clearing it would silently zero that future
// cycle's booked count and corrupt resource accounting, so Reserve panics
// with the geometry instead.
func (c *Calendar) Reserve(t int64) int64 {
	if t < 0 {
		t = 0
	}
	for {
		s := &c.slots[t&c.mask]
		if cyc := int64(*s >> calUsedBits); cyc != t {
			if cyc > t {
				panic(fmt.Sprintf(
					"sched: calendar horizon aliasing: reserving cycle %d landed on live slot for future cycle %d (width %d, horizon %d, spread %d); widen the horizon",
					t, cyc, c.width, len(c.slots), cyc-t))
			}
			*s = uint64(t) << calUsedBits
		}
		if *s&(1<<calUsedBits-1) < c.width {
			*s++
			return t
		}
		t++
	}
}

// Width returns the per-cycle capacity.
func (c *Calendar) Width() int { return int(c.width) }

// Ring is a fixed-capacity FIFO of release times used to model occupancy
// constraints (ROB, issue queues, LSQ entries): dispatching the i-th entry
// requires the (i-capacity)-th entry's release time to have passed.
type Ring struct {
	times []int64
	pos   int
}

// NewRing returns a ring modelling a structure with the given capacity.
// A non-positive capacity means unlimited (FreeAt always returns 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return &Ring{}
	}
	return NewRingIn(capacity, make([]int64, capacity))
}

// NewRingIn is NewRing over caller-provided backing storage: times must
// hold exactly capacity zeroed entries (capacity must be positive — an
// unlimited ring has no storage to share) and must not back another ring.
func NewRingIn(capacity int, times []int64) *Ring {
	if capacity <= 0 || len(times) != capacity {
		panic("sched: ring backing size mismatch")
	}
	return &Ring{times: times}
}

// FreeAt returns the earliest cycle a new entry can be allocated.
func (r *Ring) FreeAt() int64 {
	if len(r.times) == 0 {
		return 0
	}
	return r.times[r.pos]
}

// Push records the release time of the entry just allocated.
func (r *Ring) Push(release int64) {
	if len(r.times) == 0 {
		return
	}
	r.times[r.pos] = release
	// Branch instead of modulo: capacities are rarely powers of two and
	// this runs several times per simulated instruction.
	r.pos++
	if r.pos == len(r.times) {
		r.pos = 0
	}
}
