// Package energy is the post-run activity-energy and area model: it maps
// the per-structure action counters a simulation accumulated (LSQ searches,
// ERT probes and inserts, SSBF filter checks, cache accesses, epoch
// lifecycle events, NoC messages) through a versioned coefficient table to
// per-structure dynamic/leakage energy and area estimates.
//
// The model is Accelergy-style and strictly observational: it reads a
// finished cpu.Result, never feeds back into timing, and therefore cannot
// perturb any deterministic quantity (golden fixtures, bench digests, sweep
// keys). Coefficients are anchored on the paper's CACTI 4.2 numbers at 70nm
// (1.95 pJ for a 2KB ERT bank read, 95.8 pJ for a 32KB L1 read) and scaled
// to other capacities with a square-root rule; they are order-of-magnitude
// estimates for comparing schemes, not sign-off numbers.
//
// Activity flows in from two counter bags with distinct identity contracts:
// Result.Counters (the legacy bag, pinned bit-for-bit by golden fixtures
// and bench digests) and Result.Activity (energy-only counters added by
// this subsystem, excluded from both digests so the model could land
// without perturbing any baseline). The Actions registry records which bag
// each action reads from; Compute fails loudly when an action counted
// events for a structure the configuration does not instantiate, so
// activity can never leak out of the accounting.
package energy

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/cpu"
)

// Capacity anchors for the square-root access-energy scaling rule: the
// coefficient tables quote per-access energy at these capacities, and
// accessPJ scales by sqrt(KB/anchorKB) for other sizes.
const (
	// CAMAnchorKB anchors per-search CAM energy (a ~32-entry age-ordered
	// queue bank at 16 bytes/entry).
	CAMAnchorKB = 0.5
	// FilterAnchorKB anchors small hashed-RAM reads — the paper's 2KB ERT
	// bank (1.95 pJ/read under CACTI 4.2 at 70nm).
	FilterAnchorKB = 2
	// L1AnchorKB anchors first-level cache reads — the paper's 32KB L1
	// (95.8 pJ/read under CACTI 4.2 at 70nm).
	L1AnchorKB = 32
	// L2AnchorKB anchors second-level cache reads (2MB).
	L2AnchorKB = 2048
)

// Table is one named set of energy and area coefficients. All dynamic
// coefficients are picojoules per event at the anchor capacity; leakage is
// picojoules per KB of array per cycle; area is mm² per KB of array.
type Table struct {
	// Name identifies the table ("base", "hp", "lp"); Version stamps the
	// coefficient revision so reports from different table generations are
	// distinguishable.
	Name    string `json:"name"`
	Version int    `json:"version"`

	// L1ReadPJ, L2ReadPJ, FilterReadPJ and CAMSearchPJ are per-access
	// energies at the corresponding anchor capacity, square-root-scaled to
	// the configured size. WriteFactor multiplies a read for write/insert
	// events.
	L1ReadPJ     float64 `json:"l1_read_pj"`
	L2ReadPJ     float64 `json:"l2_read_pj"`
	FilterReadPJ float64 `json:"filter_read_pj"`
	CAMSearchPJ  float64 `json:"cam_search_pj"`
	WriteFactor  float64 `json:"write_factor"`

	// ControlPJ prices one epoch-lifecycle or engine-issue control event;
	// HopPJ, OneWayPJ, RoundTripPJ and FlitPJ price NoC events; MemAccessPJ
	// prices one off-chip main-memory access (interface energy only — DRAM
	// core energy is out of scope).
	ControlPJ   float64 `json:"control_pj"`
	HopPJ       float64 `json:"hop_pj"`
	OneWayPJ    float64 `json:"oneway_pj"`
	RoundTripPJ float64 `json:"roundtrip_pj"`
	FlitPJ      float64 `json:"flit_pj"`
	MemAccessPJ float64 `json:"mem_access_pj"`

	// LeakPJPerKBCycle is array leakage; PowerDownLeakFrac is the residual
	// leakage fraction of a powered-down LL-LSQ bank (state-retentive
	// drowsy mode), applied to each bank's idle cycles via the per-bank
	// residency statistics.
	LeakPJPerKBCycle  float64 `json:"leak_pj_per_kb_cycle"`
	PowerDownLeakFrac float64 `json:"power_down_leak_frac"`

	// SRAMAreaMM2PerKB and CAMAreaMM2PerKB convert array capacity to area;
	// LinkAreaMM2 and EngineAreaMM2 price one NoC link and one memory
	// engine's control overhead (queues and ERT are accounted separately).
	SRAMAreaMM2PerKB float64 `json:"sram_area_mm2_per_kb"`
	CAMAreaMM2PerKB  float64 `json:"cam_area_mm2_per_kb"`
	LinkAreaMM2      float64 `json:"link_area_mm2"`
	EngineAreaMM2    float64 `json:"engine_area_mm2"`
}

// tables holds every named coefficient table. "base" is the CACTI-anchored
// default; "lp" models a low-leakage process (slower cells: higher access
// energy, deeper power-down); "hp" a high-performance one.
func tables() []Table {
	base := Table{
		Name:    "base",
		Version: 1,

		L1ReadPJ:     95.8, // paper Section 6, CACTI 4.2 @70nm, 32KB
		L2ReadPJ:     460,
		FilterReadPJ: 1.95, // paper Section 6, 2KB ERT bank
		CAMSearchPJ:  11,
		WriteFactor:  1.2,

		ControlPJ:   0.6,
		HopPJ:       1.2,
		OneWayPJ:    4.5,
		RoundTripPJ: 9.0,
		FlitPJ:      2.1,
		MemAccessPJ: 2100,

		LeakPJPerKBCycle:  0.0006,
		PowerDownLeakFrac: 0.08,

		SRAMAreaMM2PerKB: 0.013,
		CAMAreaMM2PerKB:  0.05,
		LinkAreaMM2:      0.02,
		EngineAreaMM2:    0.09,
	}
	lp := base
	lp.Name = "lp"
	lp.L1ReadPJ *= 1.15
	lp.L2ReadPJ *= 1.15
	lp.FilterReadPJ *= 1.15
	lp.CAMSearchPJ *= 1.15
	lp.LeakPJPerKBCycle *= 0.35
	lp.PowerDownLeakFrac = 0.04
	hp := base
	hp.Name = "hp"
	hp.L1ReadPJ *= 0.85
	hp.L2ReadPJ *= 0.85
	hp.FilterReadPJ *= 0.85
	hp.CAMSearchPJ *= 0.85
	hp.LeakPJPerKBCycle *= 2.4
	hp.PowerDownLeakFrac = 0.15
	return []Table{base, hp, lp}
}

// Lookup resolves a table name from the energy.table config axis. The empty
// name means "base" (the omitempty-canonical default); unknown names error.
func Lookup(name string) (*Table, error) {
	if name == "" {
		name = "base"
	}
	for _, t := range tables() {
		if t.Name == name {
			tt := t
			return &tt, nil
		}
	}
	return nil, fmt.Errorf("energy: unknown table %q (have %v)", name, Tables())
}

// Tables lists every valid energy.table value, in registry order.
func Tables() []string {
	ts := tables()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// structClass selects how a structure's per-access energy, leakage and area
// are derived from its capacity.
type structClass uint8

const (
	classCAM    structClass = iota // associatively searched queue
	classSRAM                      // RAM-indexed cache array
	classFilter                    // small hashed-RAM filter
	classWire                      // no storage array: fixed per-event energy
)

// structure is one energy-accounted hardware structure of a configuration.
type structure struct {
	name     string
	class    structClass
	kb       float64 // total capacity (leakage and area)
	searchKB float64 // per-access searched capacity (CAM: one bank)
	l2       bool    // classSRAM: use the L2 anchor
	banks    int     // >1: leakage splits over Result.BankActiveCycles
	links    int     // classWire: NoC links priced at LinkAreaMM2
	engines  int     // classWire: engines priced at EngineAreaMM2
}

// queueEntryBytes sizes one LSQ/SQM entry: a physical address, age tag and
// status bits.
const queueEntryBytes = 16

// structuresFor instantiates the structure set of a configuration. Presence
// mirrors what the simulator actually builds: the HL LQ disappears under
// SVW (the paper removes it), the LL queues / ERT / SQM exist only when the
// FMC runs the epoch-based core, the SSBF only under SVW.
func structuresFor(cfg *config.Config) []structure {
	fmc := cfg.Model == config.ModelFMC
	// Central on FMC replaces the epoch-based core with the idealised
	// window-sized CP queue, so the ELSQ structures exist only for the
	// ELSQ/SVW schemes.
	elsqCore := fmc && (cfg.LSQ == config.LSQELSQ || cfg.LSQ == config.LSQSVW)
	kbOf := func(entries int) float64 { return float64(entries) * queueEntryBytes / 1024 }

	sqEntries, lqEntries := cfg.HLSQSize, cfg.HLLQSize
	if cfg.LSQ == config.LSQCentral {
		sqEntries, lqEntries = cfg.WindowSize(), cfg.WindowSize()
	}
	out := []structure{{name: "hl_sq", class: classCAM, kb: kbOf(sqEntries), searchKB: kbOf(sqEntries)}}
	if cfg.LSQ != config.LSQSVW {
		out = append(out, structure{name: "hl_lq", class: classCAM, kb: kbOf(lqEntries), searchKB: kbOf(lqEntries)})
	}
	if elsqCore {
		perBank := kbOf(cfg.EpochMaxLoads + cfg.EpochMaxStores)
		out = append(out, structure{
			name: "ll_lsq", class: classCAM,
			kb: perBank * float64(cfg.NumEpochs), searchKB: perBank,
			banks: cfg.NumEpochs,
		})
		slots := cfg.L1.Lines()
		if cfg.ERT == config.ERTHash {
			slots = 1 << cfg.ERTHashBits
		}
		// Two tables (load and store), one NumEpochs-wide presence mask per
		// slot.
		out = append(out, structure{name: "ert", class: classFilter,
			kb: float64(slots) * 2 * float64(cfg.NumEpochs) / 8 / 1024})
		if cfg.SQM {
			out = append(out, structure{name: "sqm", class: classFilter,
				kb: kbOf(cfg.NumEpochs * cfg.EpochMaxStores)})
		}
	}
	if cfg.LSQ == config.LSQSVW {
		// One two-byte SSW entry per filter slot.
		out = append(out, structure{name: "ssbf", class: classFilter,
			kb: float64(uint64(1)<<cfg.SSBFBits) * 2 / 1024})
	}
	if fmc && cfg.Class != config.ClassReactive {
		// Execution-locality predictor table (internal/predict): one tagged
		// 8-byte entry per slot, SRAM-class like the other small filters.
		out = append(out, structure{name: "pred", class: classFilter,
			kb: float64(uint64(1)<<cfg.ClassBits()) * 8 / 1024})
	}
	out = append(out,
		structure{name: "l1", class: classSRAM, kb: float64(cfg.L1.SizeBytes) / 1024},
		structure{name: "l2", class: classSRAM, kb: float64(cfg.L2.SizeBytes) / 1024, l2: true},
		structure{name: "mem_if", class: classWire},
	)
	noc := structure{name: "noc", class: classWire}
	if fmc {
		// A bidirectional mesh over the engines plus the two CP bus
		// directions.
		noc.links = 2*cfg.NumEpochs + 2
	}
	out = append(out, noc)
	if fmc {
		out = append(out, structure{name: "fmc", class: classWire, engines: cfg.NumEpochs})
	}
	return out
}

// actKind selects which table coefficient prices one event of an action.
type actKind uint8

const (
	actAccess actKind = iota
	actWrite
	actControl
	actHop
	actOneWay
	actRoundTrip
	actFlit
	actMem
)

// Action maps one activity counter to the structure whose events it counts.
type Action struct {
	// Name is the counter name; Structure the accounted structure.
	Name      string
	Structure string
	// FromActivity selects the counter bag: Result.Activity (energy-only
	// counters) when true, the digest-pinned Result.Counters when false.
	FromActivity bool

	kind actKind
}

// Actions returns the full action registry: every counter the energy model
// maps, with its source bag and target structure. The counter-liveness test
// certifies each entry is exercised by at least one tier-1 run.
//
// Deliberately unmapped counters, to keep the accounting single-entry: the
// svw "reexec" re-execution already pays its cache access through
// l1/l2/mem_access; the scheme "roundtrip" tally mirrors bus trips that the
// fabric's own traffic accounting prices via noc_roundtrip; the legacy
// "ssbf" total is the sum of the ssbf_read/ssbf_write split mapped here.
func Actions() []Action {
	return []Action{
		{Name: "hl_sq", Structure: "hl_sq", kind: actAccess},
		{Name: "hl_lq", Structure: "hl_lq", kind: actAccess},
		{Name: "ll_sq", Structure: "ll_lsq", kind: actAccess},
		{Name: "ll_lq", Structure: "ll_lsq", kind: actAccess},
		{Name: "ert", Structure: "ert", kind: actAccess},
		{Name: "ert_insert", Structure: "ert", FromActivity: true, kind: actWrite},
		{Name: "sqm_search", Structure: "sqm", kind: actAccess},
		{Name: "sqm_update", Structure: "sqm", kind: actWrite},
		{Name: "ssbf_read", Structure: "ssbf", FromActivity: true, kind: actAccess},
		{Name: "ssbf_write", Structure: "ssbf", FromActivity: true, kind: actWrite},
		{Name: "pred_read", Structure: "pred", FromActivity: true, kind: actAccess},
		{Name: "pred_write", Structure: "pred", FromActivity: true, kind: actWrite},
		{Name: "l1_access", Structure: "l1", FromActivity: true, kind: actAccess},
		{Name: "l2_access", Structure: "l2", FromActivity: true, kind: actAccess},
		{Name: "mem_access", Structure: "mem_if", FromActivity: true, kind: actMem},
		{Name: "epoch_open", Structure: "fmc", FromActivity: true, kind: actControl},
		{Name: "epoch_steal", Structure: "fmc", FromActivity: true, kind: actControl},
		{Name: "epoch_release", Structure: "fmc", FromActivity: true, kind: actControl},
		{Name: "me_issue", Structure: "fmc", FromActivity: true, kind: actControl},
		{Name: "noc_hops", Structure: "noc", kind: actHop},
		{Name: "noc_oneway", Structure: "noc", FromActivity: true, kind: actOneWay},
		{Name: "noc_roundtrip", Structure: "noc", FromActivity: true, kind: actRoundTrip},
		{Name: "noc_migrate_flit", Structure: "noc", FromActivity: true, kind: actFlit},
	}
}

// Count reads an action's observed event count from the result.
func Count(res *cpu.Result, a Action) uint64 {
	if a.FromActivity {
		if res.Activity == nil {
			return 0
		}
		return res.Activity.Get(a.Name)
	}
	if res.Counters == nil {
		return 0
	}
	return res.Counters.Get(a.Name)
}

// accessPJ is the per-access read/search energy of a structure under a
// table: the class anchor scaled by sqrt of the accessed capacity ratio.
func accessPJ(t *Table, s *structure) float64 {
	switch s.class {
	case classCAM:
		return t.CAMSearchPJ * math.Sqrt(s.searchKB/CAMAnchorKB)
	case classFilter:
		return t.FilterReadPJ * math.Sqrt(s.kb/FilterAnchorKB)
	case classSRAM:
		if s.l2 {
			return t.L2ReadPJ * math.Sqrt(s.kb/L2AnchorKB)
		}
		return t.L1ReadPJ * math.Sqrt(s.kb/L1AnchorKB)
	}
	return 0
}

// eventPJ prices one event of kind k on structure s.
func eventPJ(t *Table, s *structure, k actKind) float64 {
	switch k {
	case actAccess:
		return accessPJ(t, s)
	case actWrite:
		return accessPJ(t, s) * t.WriteFactor
	case actControl:
		return t.ControlPJ
	case actHop:
		return t.HopPJ
	case actOneWay:
		return t.OneWayPJ
	case actRoundTrip:
		return t.RoundTripPJ
	case actFlit:
		return t.FlitPJ
	case actMem:
		return t.MemAccessPJ
	}
	return 0
}

// StructureReport is the per-structure slice of a Report.
type StructureReport struct {
	// Name identifies the structure; Actions records the mapped event
	// counts that produced DynamicPJ.
	Name    string            `json:"name"`
	Actions map[string]uint64 `json:"actions,omitempty"`
	// DynamicPJ, LeakagePJ and AreaMM2 are the structure's estimates.
	// LeakagePJ covers the measured cycles; for the banked LL-LSQ it
	// applies the power-down residual to each bank's idle cycles.
	DynamicPJ float64 `json:"dynamic_pj"`
	LeakagePJ float64 `json:"leakage_pj"`
	AreaMM2   float64 `json:"area_mm2"`
}

// Report is the energy/area estimate of one simulation run.
type Report struct {
	// Table and Version identify the coefficient set used.
	Table   string `json:"table"`
	Version int    `json:"version"`
	// Structures holds one entry per instantiated structure, in a fixed
	// configuration-determined order.
	Structures []StructureReport `json:"structures"`
	// TotalDynamicPJ, TotalLeakagePJ and TotalPJ are the sums over
	// Structures (the accounting identity Check enforces); TotalAreaMM2 is
	// the area sum, a pure function of the configuration.
	TotalDynamicPJ float64 `json:"total_dynamic_pj"`
	TotalLeakagePJ float64 `json:"total_leakage_pj"`
	TotalPJ        float64 `json:"total_pj"`
	TotalAreaMM2   float64 `json:"total_area_mm2"`
	// PJPerInst normalises TotalPJ by committed instructions.
	PJPerInst float64 `json:"pj_per_inst"`
	// BankPowerDownFrac echoes the measured mean powered-down fraction of
	// the LL-LSQ banks (cpu.Result), the paper's Figure 11 statistic.
	BankPowerDownFrac float64 `json:"bank_power_down_frac"`
}

// Compute maps a finished run's activity through the configuration's energy
// table. It errors on an unknown table name and on unaccounted activity (an
// action with events for a structure the configuration does not build).
func Compute(cfg *config.Config, res *cpu.Result) (*Report, error) {
	t, err := Lookup(cfg.EnergyTable)
	if err != nil {
		return nil, err
	}
	structs := structuresFor(cfg)
	index := make(map[string]int, len(structs))
	for i := range structs {
		index[structs[i].name] = i
	}
	rep := &Report{Table: t.Name, Version: t.Version, Structures: make([]StructureReport, len(structs))}
	for i := range structs {
		rep.Structures[i].Name = structs[i].name
	}
	for _, a := range Actions() {
		n := Count(res, a)
		i, ok := index[a.Structure]
		if !ok {
			if n != 0 {
				return nil, fmt.Errorf("energy: action %s counted %d events but structure %s is absent under %s",
					a.Name, n, a.Structure, cfg.Name())
			}
			continue
		}
		sr := &rep.Structures[i]
		if sr.Actions == nil {
			sr.Actions = make(map[string]uint64)
		}
		sr.Actions[a.Name] = n
		sr.DynamicPJ += float64(n) * eventPJ(t, &structs[i], a.kind)
	}
	cycles := float64(res.Cycles)
	for i := range structs {
		s := &structs[i]
		sr := &rep.Structures[i]
		switch s.class {
		case classWire:
			sr.AreaMM2 = float64(s.links)*t.LinkAreaMM2 + float64(s.engines)*t.EngineAreaMM2
		case classCAM:
			sr.AreaMM2 = s.kb * t.CAMAreaMM2PerKB
		default:
			sr.AreaMM2 = s.kb * t.SRAMAreaMM2PerKB
		}
		if s.class == classWire {
			continue
		}
		if s.banks > 1 && len(res.BankActiveCycles) == s.banks {
			// Per-bank residency split: an idle (powered-down) bank leaks
			// only the drowsy residual.
			kbPerBank := s.kb / float64(s.banks)
			for _, active := range res.BankActiveCycles {
				a := float64(active)
				if a > cycles {
					a = cycles
				}
				sr.LeakagePJ += kbPerBank * t.LeakPJPerKBCycle * (a + t.PowerDownLeakFrac*(cycles-a))
			}
		} else {
			sr.LeakagePJ = s.kb * t.LeakPJPerKBCycle * cycles
		}
	}
	for i := range rep.Structures {
		rep.TotalDynamicPJ += rep.Structures[i].DynamicPJ
		rep.TotalLeakagePJ += rep.Structures[i].LeakagePJ
		rep.TotalAreaMM2 += rep.Structures[i].AreaMM2
	}
	rep.TotalPJ = rep.TotalDynamicPJ + rep.TotalLeakagePJ
	if res.Committed > 0 {
		rep.PJPerInst = rep.TotalPJ / float64(res.Committed)
	}
	rep.BankPowerDownFrac = res.BankPowerDownFrac
	return rep, nil
}

// Check enforces the report's accounting identities: every quantity finite
// and non-negative, each total equal to the sum over structures, and the
// grand total equal to dynamic plus leakage. Summation order matches
// Compute, so equality is exact up to a tiny relative epsilon kept for
// cross-architecture float safety.
func (r *Report) Check() error {
	ok := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 }
	var dyn, leak, area float64
	for i := range r.Structures {
		s := &r.Structures[i]
		if !ok(s.DynamicPJ) || !ok(s.LeakagePJ) || !ok(s.AreaMM2) {
			return fmt.Errorf("energy: structure %s has a negative or non-finite estimate (%g pJ / %g pJ / %g mm2)",
				s.Name, s.DynamicPJ, s.LeakagePJ, s.AreaMM2)
		}
		dyn += s.DynamicPJ
		leak += s.LeakagePJ
		area += s.AreaMM2
	}
	close := func(a, b float64) bool {
		d := math.Abs(a - b)
		return d <= 1e-6 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	switch {
	case !ok(r.TotalDynamicPJ) || !ok(r.TotalLeakagePJ) || !ok(r.TotalPJ) || !ok(r.TotalAreaMM2) || !ok(r.PJPerInst):
		return fmt.Errorf("energy: negative or non-finite total in report (table %s)", r.Table)
	case !close(r.TotalDynamicPJ, dyn):
		return fmt.Errorf("energy: dynamic total %g != structure sum %g", r.TotalDynamicPJ, dyn)
	case !close(r.TotalLeakagePJ, leak):
		return fmt.Errorf("energy: leakage total %g != structure sum %g", r.TotalLeakagePJ, leak)
	case !close(r.TotalAreaMM2, area):
		return fmt.Errorf("energy: area total %g != structure sum %g", r.TotalAreaMM2, area)
	case !close(r.TotalPJ, r.TotalDynamicPJ+r.TotalLeakagePJ):
		return fmt.Errorf("energy: total %g != dynamic %g + leakage %g", r.TotalPJ, r.TotalDynamicPJ, r.TotalLeakagePJ)
	case r.BankPowerDownFrac < 0 || r.BankPowerDownFrac > 1 || math.IsNaN(r.BankPowerDownFrac):
		return fmt.Errorf("energy: bank power-down fraction %g outside [0,1]", r.BankPowerDownFrac)
	}
	return nil
}

// Digest returns a short stable hex digest of the report (JSON form; map
// keys marshal sorted, so identical reports digest identically).
func (r *Report) Digest() string {
	buf, err := json.Marshal(r)
	if err != nil {
		// Report marshalling cannot fail (plain floats, strings, maps);
		// reaching here means the schema changed incompatibly.
		panic(err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}
