// Tests for the activity-energy model: table lookup, the accounting
// identity (totals == structure sums), activity-independence of area, the
// unaccounted-activity guard, and the counter-liveness registry property
// certifying every mapped action fires in at least one tier-1 run.
//
// The package is tested externally because the runs come through
// internal/simrun, which itself imports internal/energy.
package energy_test

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/simrun"
	"repro/internal/stats"
)

const (
	testWarmup  uint64 = 6000
	testMeasure uint64 = 2500
)

// runPoint simulates one small point and returns its config and outcome
// (simrun.Run computes the energy report as part of the outcome).
func runPoint(t *testing.T, cfg config.Config, bench string) (*config.Config, *simrun.Outcome) {
	t.Helper()
	out, err := simrun.Point{Config: cfg, Bench: bench, Seed: 1}.Run(nil)
	if err != nil {
		t.Fatalf("%s/%s: %v", cfg.Name(), bench, err)
	}
	return &cfg, out
}

func quickCfg(mut func(*config.Config)) config.Config {
	cfg := config.Default().WithBudget(testMeasure, testWarmup)
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func TestTables(t *testing.T) {
	names := energy.Tables()
	want := map[string]bool{"base": false, "hp": false, "lp": false}
	for _, n := range names {
		if _, seen := want[n]; !seen {
			t.Errorf("unexpected table %q", n)
		}
		want[n] = true
		if _, err := energy.Lookup(n); err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("table %q missing from Tables()", n)
		}
	}
	def, err := energy.Lookup("")
	if err != nil {
		t.Fatalf("Lookup(\"\"): %v", err)
	}
	if def.Name != "base" {
		t.Errorf("empty table name resolved to %q, want base", def.Name)
	}
	if _, err := energy.Lookup("nope"); err == nil {
		t.Error("Lookup(nope) succeeded, want error")
	}
}

// TestAccountingIdentity runs the paper scheme and checks the report's
// internal identities plus basic physical sanity.
func TestAccountingIdentity(t *testing.T) {
	_, out := runPoint(t, quickCfg(nil), "mcf")
	rep := out.Energy
	if rep == nil {
		t.Fatal("outcome carries no energy report")
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Table != "base" || rep.TotalPJ <= 0 || rep.TotalAreaMM2 <= 0 || rep.PJPerInst <= 0 {
		t.Errorf("degenerate report: table %q total %g pJ area %g mm2 %g pJ/inst",
			rep.Table, rep.TotalPJ, rep.TotalAreaMM2, rep.PJPerInst)
	}
	// The cache-level activity split must conserve the legacy digest-pinned
	// total: every "cache" access lands in exactly one level bucket.
	res := out.Result
	split := res.Activity.Get("l1_access") + res.Activity.Get("l2_access") + res.Activity.Get("mem_access")
	if cache := res.Counters.Get("cache"); split != cache {
		t.Errorf("cache-level split %d != legacy cache counter %d", split, cache)
	}
}

// TestAreaIndependentOfActivity recomputes the report for the same run with
// every counter zeroed: area is a pure function of the configuration and
// must not move.
func TestAreaIndependentOfActivity(t *testing.T) {
	cfg, out := runPoint(t, quickCfg(nil), "swim")
	live := out.Energy
	idle := &cpu.Result{
		Counters:         stats.NewCounters(),
		Activity:         stats.NewCounters(),
		Committed:        out.Result.Committed,
		Cycles:           out.Result.Cycles,
		BankActiveCycles: out.Result.BankActiveCycles,
	}
	rep, err := energy.Compute(cfg, idle)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalAreaMM2 != live.TotalAreaMM2 {
		t.Errorf("area moved with activity: %g vs %g mm2", rep.TotalAreaMM2, live.TotalAreaMM2)
	}
	if len(rep.Structures) != len(live.Structures) {
		t.Fatalf("structure count changed: %d vs %d", len(rep.Structures), len(live.Structures))
	}
	for i := range rep.Structures {
		if rep.Structures[i].AreaMM2 != live.Structures[i].AreaMM2 {
			t.Errorf("structure %s area moved: %g vs %g mm2",
				rep.Structures[i].Name, rep.Structures[i].AreaMM2, live.Structures[i].AreaMM2)
		}
	}
	if rep.TotalDynamicPJ != 0 {
		t.Errorf("zero activity produced %g dynamic pJ", rep.TotalDynamicPJ)
	}
}

// TestDigestStability: recomputing from the same inputs digests
// identically; a different coefficient table does not.
func TestDigestStability(t *testing.T) {
	cfg, out := runPoint(t, quickCfg(nil), "mcf")
	again, err := energy.Compute(cfg, out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := out.Energy.Digest(), again.Digest(); d1 != d2 {
		t.Errorf("recompute digest drifted: %s vs %s", d1, d2)
	}
	hp := *cfg
	hp.EnergyTable = "hp"
	repHP, err := energy.Compute(&hp, out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if repHP.Digest() == out.Energy.Digest() {
		t.Error("hp table digests identically to base")
	}
	if err := repHP.Check(); err != nil {
		t.Errorf("hp report: %v", err)
	}
}

// TestUnaccountedActivity: events booked against a structure the
// configuration does not instantiate must fail loudly, not vanish.
func TestUnaccountedActivity(t *testing.T) {
	cfg := config.OoO64().WithBudget(testMeasure, testWarmup)
	res := &cpu.Result{Counters: stats.NewCounters(), Activity: stats.NewCounters(), Committed: 1, Cycles: 1}
	res.Activity.Add("epoch_open", 1) // fmc structure absent under OoO
	if _, err := energy.Compute(&cfg, res); err == nil {
		t.Fatal("epoch activity under OoO accounted silently, want error")
	} else if !strings.Contains(err.Error(), "epoch_open") {
		t.Errorf("error does not name the action: %v", err)
	}
}

// TestBadTableSurfacesFromRun: an unknown energy.table must fail the run,
// not silently skip the report.
func TestBadTableSurfacesFromRun(t *testing.T) {
	cfg := quickCfg(func(c *config.Config) { c.EnergyTable = "bogus" })
	if _, err := (simrun.Point{Config: cfg, Bench: "mcf", Seed: 1}).Run(nil); err == nil {
		t.Fatal("unknown energy table ran cleanly, want error")
	}
}

// TestActionLiveness is the counter-liveness registry property: every
// action the energy table maps must be incremented by at least one of these
// tier-1 runs, so a counter can never silently decouple from the hot path
// it claims to measure.
func TestActionLiveness(t *testing.T) {
	points := []struct {
		name  string
		cfg   config.Config
		bench string
	}{
		// The paper scheme covers the LL-LSQ, ERT, SQM, cache levels,
		// epoch lifecycle and one-way fabric traffic.
		{"elsq", quickCfg(nil), "mcf"},
		// SVW on FMC exercises the SSBF read/write pair.
		{"svw-fmc", quickCfg(func(c *config.Config) { c.LSQ = config.LSQSVW }), "mcf"},
		// The centralized scheme books bus round trips.
		{"central", quickCfg(func(c *config.Config) { c.LSQ = config.LSQCentral }), "mcf"},
		// The conventional OoO queues cover the HL CAM searches.
		{"ooo64", quickCfg(func(c *config.Config) {
			c.Model = config.ModelOoO
			c.LSQ = config.LSQConventional
		}), "mcf"},
		// A non-reactive classifier instantiates the predictor table, so
		// its read/write pair fires (the reactive default never books pred
		// activity — the structure is absent and Compute would error).
		{"cachelevel", quickCfg(func(c *config.Config) { c.Class = config.ClassCacheLevel }), "mcf"},
		// Least-loaded placement over a small mesh readily places epochs
		// off their mod-N home, so their state blocks cross the mesh:
		// epoch steals, migration flits and link hops all fire here.
		{"leastloaded4", quickCfg(func(c *config.Config) {
			c.Place = config.PlaceLeastLoaded
			c.NumEpochs = 4
		}), "mcf"},
	}
	union := make(map[string]uint64)
	for _, p := range points {
		_, out := runPoint(t, p.cfg, p.bench)
		for _, a := range energy.Actions() {
			union[a.Name] += energy.Count(out.Result, a)
		}
		if err := out.Energy.Check(); err != nil {
			t.Errorf("%s: %v", p.name, err)
		}
	}
	for _, a := range energy.Actions() {
		if union[a.Name] == 0 {
			t.Errorf("action %s (structure %s) never fired across the liveness matrix", a.Name, a.Structure)
		}
	}
}
