package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/workload"
)

// fig7Configs returns the Figure 7 scheme set: the OoO-64 baseline, the
// idealised central LSQ, and ELSQ with line/hash ERT, each with and without
// the Store Queue Mirror.
func fig7Configs() []config.Config {
	base := config.Default()
	mk := func(mut func(*config.Config)) config.Config {
		c := base
		mut(&c)
		return c
	}
	return []config.Config{
		config.OoO64(),
		mk(func(c *config.Config) { c.LSQ = config.LSQCentral }),
		mk(func(c *config.Config) { c.ERT = config.ERTLine; c.SQM = false }),
		mk(func(c *config.Config) { c.ERT = config.ERTLine; c.SQM = true }),
		mk(func(c *config.Config) { c.ERT = config.ERTHash; c.SQM = false }),
		mk(func(c *config.Config) { c.ERT = config.ERTHash; c.SQM = true }),
	}
}

// Fig7 reproduces Figure 7: speed-up of the large-window LSQ schemes over a
// conventional 64-entry-ROB processor. Paper shapes: SPEC FP ≈ 2.08–2.11
// for every scheme (SQM worth ~1%, ELSQ+SQM slightly above the idealised
// central queue); SPEC INT ≈ 1.10–1.19 with the SQM worth up to 8%.
func Fig7(opt Options) (string, error) {
	cfgs := fig7Configs()
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 7: speed-up over the 64-entry-ROB baseline\n\n")
	for _, suite := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
		base := runs[0][suite].meanIPC()
		fmt.Fprintf(&b, "%s (baseline OoO-64 IPC %.3f; paper: INT 1.55 / FP 1.42):\n", suite, base)
		for ci, cfg := range cfgs {
			if ci == 0 {
				continue
			}
			ipc := runs[ci][suite].meanIPC()
			fmt.Fprintf(&b, "  %-18s IPC %6.3f   speed-up %5.2f\n", cfg.Name(), ipc, ipc/base)
		}
		b.WriteString("\n")
	}
	b.WriteString("Paper reference points: Central 1.19/2.08, Line 1.10/2.10,\n" +
		"Line+SQM 1.19/2.11, Hash 1.13/2.075, Hash+SQM 1.19/2.11 (INT/FP).\n")
	return b.String(), nil
}
