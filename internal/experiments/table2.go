package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/workload"
)

// table2Configs returns the six Table 2 rows in paper order.
func table2Configs() []config.Config {
	mkFMC := func(mut func(*config.Config)) config.Config {
		c := config.Default()
		c.SQM = false // Table 2 rows are the plain filter configurations
		mut(&c)
		return c
	}
	oooSVW := config.OoO64()
	oooSVW.LSQ = config.LSQSVW
	oooSVW.SSBFBits = 10
	oooSVW.SVW = config.SVWBlind
	return []config.Config{
		config.OoO64(),
		oooSVW,
		mkFMC(func(c *config.Config) { c.ERT = config.ERTLine }),
		mkFMC(func(c *config.Config) { c.ERT = config.ERTHash }),
		mkFMC(func(c *config.Config) {
			c.ERT = config.ERTHash
			c.LSQ = config.LSQSVW
			c.SSBFBits = 10
			c.SVW = config.SVWBlind
		}),
		mkFMC(func(c *config.Config) { c.ERT = config.ERTHash; c.Disamb = config.DisambRSAC }),
	}
}

// Table2 reproduces Table 2: the number of accesses to each LSQ component
// in millions per 100M committed instructions, plus the speed-up over
// OoO-64, for both suites. Shapes to match: HL-SQ sees roughly one search
// per load (plus wrong-path inflation, stronger on INT and on the large
// window); LL-SQ insertions track the store count; LL-LQ holds only the
// rare miss-dependent-address loads; the ERT is touched by almost every
// load; SVW replaces LQ accesses with SSBF accesses; RSAC trims ERT
// traffic and round trips.
func Table2(opt Options) (string, error) {
	cfgs := table2Configs()
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	cols := []struct {
		name string
		key  string
	}{
		{"HL-LQ", "hl_lq"}, {"HL-SQ", "hl_sq"}, {"LL-LQ", "ll_lq"},
		{"LL-SQ", "ll_sq"}, {"ERT", "ert"}, {"SSBF", "ssbf"},
		{"RndTrip", "roundtrip"}, {"Cache", "cache"},
	}
	var b strings.Builder
	b.WriteString("Table 2: accesses to LSQ components (millions per 100M insts)\n")
	for _, suite := range []workload.Suite{workload.SuiteFP, workload.SuiteInt} {
		fmt.Fprintf(&b, "\n%s:\n", suite)
		fmt.Fprintf(&b, "  %-16s", "Configuration")
		for _, c := range cols {
			fmt.Fprintf(&b, "%9s", c.name)
		}
		fmt.Fprintf(&b, "%9s\n", "Speed-Up")
		base := runs[0][suite].meanIPC()
		for ci, cfg := range cfgs {
			sr := runs[ci][suite]
			fmt.Fprintf(&b, "  %-16s", cfg.Name())
			for _, c := range cols {
				fmt.Fprintf(&b, "%9.3f", sr.counterMeanMillions(c.key))
			}
			fmt.Fprintf(&b, "%9.3f\n", sr.meanIPC()/base)
		}
	}
	b.WriteString("\nPaper reference (SPEC FP, OoO-64): HL-LQ 8.7, HL-SQ 27.0, Cache 33.4.\n" +
		"FMC-Hash: HL-SQ 25.5, LL-SQ 9.9, ERT 27.3, RndTrip 1.7, Speed-Up 2.10.\n")
	return b.String(), nil
}
