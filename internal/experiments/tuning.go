package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/workload"
)

// Tuning reproduces Section 5.2: sizing the per-epoch (memory-engine) load
// and store queues. The paper fixes 16 epochs of 128 instructions, finds a
// maximal SPEC FP IPC of 2.99 with unlimited queues, and settles on 64
// loads / 32 stores per epoch for an average slowdown of 0.9% (7% worst
// case). SPEC FP is used because it is the more size-sensitive suite at
// large windows.
func Tuning(opt Options) (string, error) {
	type size struct{ loads, stores int }
	sizes := []size{
		{16, 8}, {32, 16}, {64, 32}, {128, 64}, {100000, 100000},
	}
	var cfgs []config.Config
	for _, s := range sizes {
		c := config.Default()
		c.EpochMaxLoads = s.loads
		c.EpochMaxStores = s.stores
		cfgs = append(cfgs, c)
	}
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	ref := runs[len(cfgs)-1][workload.SuiteFP]
	refIPC := ref.meanIPC()
	var b strings.Builder
	b.WriteString("Section 5.2: per-epoch LQ/SQ sizing (SPEC FP, 16 epochs x 128 insts)\n\n")
	fmt.Fprintf(&b, "Unlimited-queue SPEC FP IPC: %.3f (paper: 2.99 maximal)\n\n", refIPC)
	fmt.Fprintf(&b, "%-14s %8s %12s %12s\n", "LQ/SQ", "IPC", "slowdown", "worst-case")
	for si, s := range sizes[:len(sizes)-1] {
		sr := runs[si][workload.SuiteFP]
		worst := 0.0
		for pi := range sr.results {
			loss := 1 - sr.results[pi].IPC/ref.results[pi].IPC
			if loss > worst {
				worst = loss
			}
		}
		fmt.Fprintf(&b, "%-14s %8.3f %11.1f%% %11.1f%%\n",
			fmt.Sprintf("%d/%d", s.loads, s.stores), sr.meanIPC(),
			100*(1-sr.meanIPC()/refIPC), 100*worst)
	}
	b.WriteString("\nPaper shape: 64/32 stays within ~1% of unlimited (7% worst case).\n")
	return b.String(), nil
}
