package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig10 reproduces Figure 10: Store Vulnerability Window re-execution on
// both processor models, sweeping the SSBF index width (8/10/12 bits) and
// the filtering variant (Blind vs CheckStores). Reported per cell: IPC
// relative to the same processor with an associative load queue, and load
// re-executions per 100M committed instructions. Paper shapes: re-execution
// rates grow roughly an order of magnitude from the 64-entry window to the
// ~1500-instruction FMC; 12 bits is near-lossless everywhere; at 8 bits the
// Blind variant degrades SPEC FP noticeably (~7%) while CheckStores holds
// ~1%.
func Fig10(opt Options) (string, error) {
	type cell struct {
		model config.Model
		bits  int
		svw   config.SVWVariant
	}
	var cells []cell
	var cfgs []config.Config
	// Baselines with a load queue: OoO-64 conventional and FMC ELSQ.
	cfgs = append(cfgs, config.OoO64())
	fmcBase := config.Default()
	cfgs = append(cfgs, fmcBase)
	for _, model := range []config.Model{config.ModelOoO, config.ModelFMC} {
		for _, bits := range []int{8, 10, 12} {
			for _, v := range []config.SVWVariant{config.SVWCheckStores, config.SVWBlind} {
				c := config.Default()
				if model == config.ModelOoO {
					c = config.OoO64()
				}
				c.LSQ = config.LSQSVW
				c.SSBFBits = bits
				c.SVW = v
				cells = append(cells, cell{model, bits, v})
				cfgs = append(cfgs, c)
			}
		}
	}
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	reexecs := func(sr *suiteRun) float64 {
		var s float64
		for _, r := range sr.results {
			s += stats.Per100M(r.Counters.Get("reexec"), r.Committed)
		}
		return s / float64(len(sr.results))
	}
	var b strings.Builder
	b.WriteString("Figure 10: SVW relative IPC and re-executions per 100M instructions\n")
	for _, model := range []config.Model{config.ModelOoO, config.ModelFMC} {
		baseIdx := 0
		if model == config.ModelFMC {
			baseIdx = 1
		}
		fmt.Fprintf(&b, "\n%s (relative to the same processor with a load queue):\n", model)
		fmt.Fprintf(&b, "  %-22s %10s %12s %10s %12s\n",
			"ssbf/variant", "INT relIPC", "INT reexec", "FP relIPC", "FP reexec")
		for ci, cl := range cells {
			if cl.model != model {
				continue
			}
			run := runs[ci+2] // first two configs are the baselines
			fmt.Fprintf(&b, "  %2d bits / %-12s %10.3f %12.2e %10.3f %12.2e\n",
				cl.bits, cl.svw,
				run[workload.SuiteInt].meanRelIPC(runs[baseIdx][workload.SuiteInt]),
				reexecs(run[workload.SuiteInt]),
				run[workload.SuiteFP].meanRelIPC(runs[baseIdx][workload.SuiteFP]),
				reexecs(run[workload.SuiteFP]))
		}
	}
	b.WriteString("\nPaper shape: reexec counts grow ~10x with the large window; 12 bits\n" +
		"near-lossless; 8-bit Blind costs SPEC FP ~7% while CheckStores holds ~1%.\n")
	return b.String(), nil
}
