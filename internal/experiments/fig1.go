package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig1 reproduces Figure 1: the distribution of decode→address-calculation
// distance for loads and stores on a large-window processor, per suite, in
// 30-cycle buckets, with the 95%/99% coverage markers. The paper's headline
// numbers: ~91% of loads and ~93% of stores calculate their addresses
// within 30 cycles of decode; store address calculations almost never
// depend on multiple misses.
func Fig1(opt Options) (string, error) {
	cfg := config.Default()
	runs, err := runSuites([]config.Config{cfg}, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: decode→address-calculation distance (30-cycle buckets)\n")
	fmt.Fprintf(&b, "Model: %s, window %d\n\n", cfg.Name(), cfg.WindowSize())
	for _, suite := range []workload.Suite{workload.SuiteFP, workload.SuiteInt} {
		sr := runs[0][suite]
		loads := stats.NewHistogram(30, 50)
		stores := stats.NewHistogram(30, 50)
		for _, r := range sr.results {
			loads.Merge(r.LoadDist)
			stores.Merge(r.StoreDist)
		}
		fmt.Fprintf(&b, "%s:\n", suite)
		fmt.Fprintf(&b, "  loads  within 30 cycles: %5.1f%%   (paper: ~91%%)\n", 100*loads.FracWithin(30))
		fmt.Fprintf(&b, "  stores within 30 cycles: %5.1f%%   (paper: ~93%%)\n", 100*stores.FracWithin(30))
		fmt.Fprintf(&b, "  loads  P95 = %4d cycles, P99 = %4d cycles\n", loads.Percentile(0.95), loads.Percentile(0.99))
		fmt.Fprintf(&b, "  stores P95 = %4d cycles, P99 = %4d cycles\n", stores.Percentile(0.95), stores.Percentile(0.99))
		fmt.Fprintf(&b, "  %-10s %12s %12s\n", "bucket", "loads", "stores")
		for i := 0; i < len(loads.Counts); i++ {
			if loads.Counts[i] == 0 && stores.Counts[i] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  [%4d,%4d) %12d %12d\n", i*30, (i+1)*30, loads.Counts[i], stores.Counts[i])
		}
		if loads.Overflow+stores.Overflow > 0 {
			fmt.Fprintf(&b, "  overflow    %12d %12d\n", loads.Overflow, stores.Overflow)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
