package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Per-read energies from the paper (CACTI 4.2 at 70nm, Section 6).
const (
	// ERTReadNJ is the read energy of the 2KB ERT SRAM in nanojoules.
	ERTReadNJ = 0.00195
	// L1ReadNJ is the read energy of the 32KB L1 in nanojoules.
	L1ReadNJ = 0.0958
)

// Energy reproduces the Section 6 analysis: the ERT's read-energy is ~2% of
// the L1's, so guarding global searches with it is nearly free; combined
// with the Figure 11 low-power residency and the Table 2 access counts this
// is the paper's power argument. The comparison FMC-Hash-SVW vs
// FMC-Hash-RSAC (which method better simplifies the load queue) is decided
// on access counts: RSAC reduces cache accesses, round trips and LL/HL
// queue accesses, at marginally lower performance.
func Energy(opt Options) (string, error) {
	cfgs := table2Configs()
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Section 6: energy accounting\n\n")
	fmt.Fprintf(&b, "Per-read energy (paper, CACTI 4.2 @70nm): ERT %.5f nJ, L1 %.4f nJ\n", ERTReadNJ, L1ReadNJ)
	fmt.Fprintf(&b, "ERT read energy = %.1f%% of an L1 read (paper: ~2%%)\n\n", 100*ERTReadNJ/L1ReadNJ)
	for _, suite := range []workload.Suite{workload.SuiteFP, workload.SuiteInt} {
		fmt.Fprintf(&b, "%s — filter energy per 100M insts (mJ):\n", suite)
		for ci, cfg := range cfgs {
			sr := runs[ci][suite]
			ert := sr.counterMeanMillions("ert") * 1e6 * ERTReadNJ * 1e-6 // nJ -> mJ
			l1 := sr.counterMeanMillions("cache") * 1e6 * L1ReadNJ * 1e-6 //
			fmt.Fprintf(&b, "  %-16s ERT %7.3f   cache %8.3f\n", cfg.Name(), ert, l1)
		}
		b.WriteString("\n")
	}
	// RSAC vs SVW comparison, as in the paper's closing argument.
	svwIdx, rsacIdx := 4, 5
	for _, suite := range []workload.Suite{workload.SuiteFP, workload.SuiteInt} {
		svw := runs[svwIdx][suite]
		rsac := runs[rsacIdx][suite]
		fmt.Fprintf(&b, "%s RSAC vs SVW: cache %+.1f%%, roundtrips %+.1f%%, LL-SQ %+.1f%%, IPC %+.1f%%\n",
			suite,
			100*(rsac.counterMeanMillions("cache")/svw.counterMeanMillions("cache")-1),
			relOrZero(rsac.counterMeanMillions("roundtrip"), svw.counterMeanMillions("roundtrip")),
			relOrZero(rsac.counterMeanMillions("ll_sq"), svw.counterMeanMillions("ll_sq")),
			100*(rsac.meanIPC()/svw.meanIPC()-1))
	}
	b.WriteString("\nPaper conclusion: RSAC reduces accesses and round trips versus SVW at\n" +
		"marginally lower IPC — better performance-power without the SSBF.\n")
	return b.String(), nil
}

func relOrZero(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a/b - 1)
}
