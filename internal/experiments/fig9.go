package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/workload"
)

// Fig9 reproduces Figure 9: the relative performance of the restricted
// disambiguation models against full disambiguation. Paper shapes:
// restricted SAC loses under 2% on both suites (all of the FP loss coming
// from equake's pointer-derived store addresses, ~30% on that benchmark);
// restricted LAC loses more (low-locality load address calculations are far
// more common than stores'); restricting both behaves like restricted LAC.
func Fig9(opt Options) (string, error) {
	models := []config.Disambiguation{
		config.DisambFull, config.DisambRSAC, config.DisambRLAC, config.DisambRSACLAC,
	}
	var cfgs []config.Config
	for _, d := range models {
		c := config.Default()
		c.Disamb = d
		cfgs = append(cfgs, c)
	}
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 9: restricted disambiguation relative to full disambiguation\n\n")
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "model", "SPEC INT", "SPEC FP")
	baseInt := runs[0][workload.SuiteInt]
	baseFP := runs[0][workload.SuiteFP]
	for mi, d := range models {
		fmt.Fprintf(&b, "%-12s %10.3f %10.3f\n", d,
			runs[mi][workload.SuiteInt].meanRelIPC(baseInt),
			runs[mi][workload.SuiteFP].meanRelIPC(baseFP))
	}
	// The equake outlier the paper calls out explicitly.
	profs := workload.SuiteOf(workload.SuiteFP)
	for pi, p := range profs {
		if p.Name != "equake" {
			continue
		}
		full := runs[0][workload.SuiteFP].results[pi].IPC
		rsac := runs[1][workload.SuiteFP].results[pi].IPC
		fmt.Fprintf(&b, "\nequake under restricted SAC: %.3f of full (paper: ~0.70 — the\n"+
			"smvp() multilevel pointer dereferencing outlier)\n", rsac/full)
	}
	b.WriteString("\nPaper shape: rsac >= 0.98 both suites; rlac worse; rsac+rlac ≈ rlac.\n")
	return b.String(), nil
}
