// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and 6). Each experiment has a typed result and a
// Render method that prints rows in the paper's layout; cmd/paperbench
// dispatches on experiment id. See DESIGN.md for the per-experiment index
// and EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Options scales experiment cost. The paper simulates 100M-instruction
// SimPoints; the defaults here run a deterministic scaled-down version and
// report per-100M-normalised rates, so rows remain directly comparable.
type Options struct {
	// MaxInsts is the measured instruction count per benchmark.
	MaxInsts uint64
	// WarmupInsts is the functional cache warm-up length.
	WarmupInsts uint64
	// Seed selects the workload instantiation.
	Seed uint64
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
}

// DefaultOptions returns the standard scaled-down experiment size.
func DefaultOptions() Options {
	return Options{MaxInsts: 100_000, WarmupInsts: 2_500_000, Seed: 1}
}

// apply stamps the options onto a config.
func (o Options) apply(cfg config.Config) config.Config {
	cfg.MaxInsts = o.MaxInsts
	cfg.WarmupInsts = o.WarmupInsts
	return cfg
}

// job is one (config, benchmark) simulation.
type job struct {
	cfg  config.Config
	prof workload.Profile
	out  **cpu.Result
}

// resultCache is shared by every experiment in the process, so experiments
// that revisit a configuration set (table2 and energy share all six rows)
// reuse the completed simulations instead of re-running them. Keys include
// the full config (with instruction budget), benchmark and seed, so runs at
// different Options never alias.
var resultCache = sweep.NewMemCache()

// ckptStore shares warm-up checkpoints the same way: every experiment
// sweeps timing-only axes over the Table 1 cache geometry, so each
// (benchmark, seed) pays its functional warm-up once per process instead of
// once per configuration. Results are bit-identical either way (the ckpt
// package's determinism contract).
var ckptStore = ckpt.NewMemStore()

// runAll executes the jobs on the sweep engine's bounded worker pool.
// Results are written to each job's out slot, so callers keep a
// deterministic layout regardless of completion order.
func runAll(jobs []job, opt Options) error {
	sjobs := make([]sweep.Job, len(jobs))
	for i, j := range jobs {
		sjobs[i] = sweep.Job{Config: j.cfg, Bench: j.prof, Seed: opt.Seed}
	}
	runner := sweep.Runner{Workers: opt.Workers, Cache: resultCache, Checkpoints: ckptStore}
	outcomes, _, err := runner.Run(sjobs)
	if err != nil {
		return err
	}
	for i := range jobs {
		*jobs[i].out = outcomes[i].Result
	}
	return nil
}

// suiteRun holds one configuration's results over a whole suite.
type suiteRun struct {
	cfg     config.Config
	results []*cpu.Result // parallel to workload.SuiteOf(suite)
}

// runSuites runs each config over both suites and returns
// perConfig[suite] -> results.
func runSuites(cfgs []config.Config, opt Options) (map[int]map[workload.Suite]*suiteRun, error) {
	out := make(map[int]map[workload.Suite]*suiteRun)
	var jobs []job
	for ci, cfg := range cfgs {
		out[ci] = make(map[workload.Suite]*suiteRun)
		for _, suite := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
			profs := workload.SuiteOf(suite)
			sr := &suiteRun{cfg: cfg, results: make([]*cpu.Result, len(profs))}
			out[ci][suite] = sr
			for pi, p := range profs {
				jobs = append(jobs, job{cfg: opt.apply(cfg), prof: p, out: &sr.results[pi]})
			}
		}
	}
	if err := runAll(jobs, opt); err != nil {
		return nil, err
	}
	return out, nil
}

// meanIPC averages IPC over a suite run.
func (sr *suiteRun) meanIPC() float64 {
	var s float64
	for _, r := range sr.results {
		s += r.IPC
	}
	return s / float64(len(sr.results))
}

// meanRelIPC returns the suite-mean of per-benchmark IPC relative to the
// same benchmark under the baseline run — the aggregation the paper uses
// for its "relative performance" figures, which keeps a single benchmark's
// collapse (equake under RSAC) visible in the suite bar.
func (sr *suiteRun) meanRelIPC(base *suiteRun) float64 {
	var s float64
	for i, r := range sr.results {
		s += r.IPC / base.results[i].IPC
	}
	return s / float64(len(sr.results))
}

// counterMean returns the suite-mean of a counter normalised to events per
// 100M committed instructions, expressed in millions (the paper's Table 2
// unit).
func (sr *suiteRun) counterMeanMillions(name string) float64 {
	var s float64
	for _, r := range sr.results {
		s += float64(r.Counters.Get(name)) / float64(r.Committed) * 1e8 / 1e6
	}
	return s / float64(len(sr.results))
}

// meanLLIdle averages the LL-LSQ idle fraction.
func (sr *suiteRun) meanLLIdle() float64 {
	var s float64
	for _, r := range sr.results {
		s += r.LLIdleFrac
	}
	return s / float64(len(sr.results))
}

// meanAvgEpochs averages the allocated-epoch count.
func (sr *suiteRun) meanAvgEpochs() float64 {
	var s float64
	for _, r := range sr.results {
		s += r.AvgEpochs
	}
	return s / float64(len(sr.results))
}

// Experiment is a named, runnable reproduction unit.
type Experiment struct {
	// ID is the paper artefact id ("fig7", "table2", ...).
	ID string
	// Title describes what is reproduced.
	Title string
	// Run executes the experiment and returns rendered output.
	Run func(opt Options) (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Decode→address-calculation locality distributions", func(o Options) (string, error) { return Fig1(o) }},
		{"tuning", "Section 5.2: epoch and LSQ sizing", func(o Options) (string, error) { return Tuning(o) }},
		{"fig7", "Speed-up of large-window LSQ schemes over OoO-64", func(o Options) (string, error) { return Fig7(o) }},
		{"fig8a", "ERT filter accuracy vs hash bits", func(o Options) (string, error) { return Fig8a(o) }},
		{"fig8bc", "Line vs hash ERT across L1 size/associativity", func(o Options) (string, error) { return Fig8bc(o) }},
		{"fig9", "Restricted disambiguation models", func(o Options) (string, error) { return Fig9(o) }},
		{"fig10", "SVW re-execution: SSBF size and window dependence", func(o Options) (string, error) { return Fig10(o) }},
		{"fig11", "LL-LSQ inactivity vs L2 size", func(o Options) (string, error) { return Fig11(o) }},
		{"table2", "LSQ component access counts", func(o Options) (string, error) { return Table2(o) }},
		{"energy", "Section 6: energy accounting", func(o Options) (string, error) { return Energy(o) }},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}
