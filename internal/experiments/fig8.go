package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig8a reproduces Figure 8(a): the number of ERT false positives (useless
// epoch searches) per 100M committed instructions as a function of the
// address-hash width, with the line-based filter as the reference point.
// The paper's shape: ≥4KB tables (10 bits) bring false searches below ~1
// per 100 instructions, and the line-based filter achieves similar accuracy
// at about half the hardware budget (better on FP, worse on INT).
func Fig8a(opt Options) (string, error) {
	bitsList := []int{6, 8, 10, 11, 12, 14, 16}
	var cfgs []config.Config
	for _, bits := range bitsList {
		c := config.Default()
		c.ERT = config.ERTHash
		c.ERTHashBits = bits
		cfgs = append(cfgs, c)
	}
	line := config.Default()
	line.ERT = config.ERTLine
	cfgs = append(cfgs, line)

	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 8(a): ERT false positives per 100M committed instructions\n\n")
	fmt.Fprintf(&b, "%-12s %10s %14s %14s\n", "filter", "budget", "SPEC FP", "SPEC INT")
	for ci, cfg := range cfgs {
		label := "line-based"
		budget := fmt.Sprintf("%dB", 2*2*cfg.L1.Lines()) // 2 tables x 16 bits per line
		if cfg.ERT == config.ERTHash {
			label = fmt.Sprintf("%d bits", cfg.ERTHashBits)
			budget = fmt.Sprintf("%dB", 2*2*(1<<uint(cfg.ERTHashBits)))
		}
		fp := fig8aFalsePositives(runs[ci][workload.SuiteFP])
		in := fig8aFalsePositives(runs[ci][workload.SuiteInt])
		fmt.Fprintf(&b, "%-12s %10s %14.0f %14.0f\n", label, budget, fp, in)
	}
	b.WriteString("\nPaper shape: monotone drop with bits; <1e6 at >=4KB (10-11 bits);\n" +
		"line-based comparable to ~11 bits at half the budget.\n")
	return b.String(), nil
}

func fig8aFalsePositives(sr *suiteRun) float64 {
	var s float64
	for _, r := range sr.results {
		s += stats.Per100M(r.Counters.Get("ert_false_positive"), r.Committed)
	}
	return s / float64(len(sr.results))
}

// Fig8bc reproduces Figure 8(b, c): relative performance of the line-based
// and hash-based ERT across L1 cache sizes (32/64KB) and associativities
// (1–8 ways). The paper's shape: the line-based filter needs >=4-way
// associativity to avoid line-locking conflicts (stalls/squashes), with
// SPEC INT more sensitive than SPEC FP; the hash filter is insensitive.
func Fig8bc(opt Options) (string, error) {
	type point struct {
		kind config.ERTKind
		size int
		ways int
	}
	var points []point
	var cfgs []config.Config
	for _, kind := range []config.ERTKind{config.ERTLine, config.ERTHash} {
		for _, size := range []int{32 << 10, 64 << 10} {
			for _, ways := range []int{1, 2, 4, 8} {
				c := config.Default()
				c.ERT = kind
				c.SQM = true
				c.L1 = config.CacheConfig{SizeBytes: size, Ways: ways, LineBytes: 32, LatencyCycles: 1}
				if kind == config.ERTHash {
					// The paper equalises hardware budgets: 10 bits for the
					// 32KB cache, 11 bits for 64KB.
					c.ERTHashBits = 10
					if size == 64<<10 {
						c.ERTHashBits = 11
					}
				}
				points = append(points, point{kind, size, ways})
				cfgs = append(cfgs, c)
			}
		}
	}
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 8(b,c): relative performance vs L1 geometry\n")
	for _, suite := range []workload.Suite{workload.SuiteFP, workload.SuiteInt} {
		// Normalise to the best point, as the paper does.
		best := 0.0
		ipcs := make([]float64, len(cfgs))
		for ci := range cfgs {
			ipcs[ci] = runs[ci][suite].meanIPC()
			if ipcs[ci] > best {
				best = ipcs[ci]
			}
		}
		fmt.Fprintf(&b, "\n%s (relative to best):\n", suite)
		fmt.Fprintf(&b, "  %-18s %8s %8s %8s %8s\n", "config", "1-way", "2-way", "4-way", "8-way")
		for _, kind := range []config.ERTKind{config.ERTLine, config.ERTHash} {
			for _, size := range []int{32 << 10, 64 << 10} {
				fmt.Fprintf(&b, "  %s-ERT / %2dKB  ", kind, size>>10)
				for _, ways := range []int{1, 2, 4, 8} {
					for ci, p := range points {
						if p.kind == kind && p.size == size && p.ways == ways {
							fmt.Fprintf(&b, " %8.3f", ipcs[ci]/best)
						}
					}
				}
				b.WriteString("\n")
			}
		}
	}
	b.WriteString("\nPaper shape: 4-way recovers the line-ERT losses; INT more sensitive.\n")
	return b.String(), nil
}
