package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// tinyOpts keeps each experiment's smoke run to a few seconds.
func tinyOpts() Options {
	return Options{MaxInsts: 5_000, WarmupInsts: 50_000, Seed: 1, Workers: 2}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig7")
	if err != nil || e.ID != "fig7" {
		t.Fatalf("ByID(fig7) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
	if len(All()) != 10 {
		t.Errorf("All() has %d experiments, want 10", len(All()))
	}
}

// Every experiment must run end to end and mention its paper anchor.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs")
	}
	anchors := map[string]string{
		"fig1":   "within 30 cycles",
		"tuning": "Unlimited-queue",
		"fig7":   "speed-up",
		"fig8a":  "false positives",
		"fig8bc": "relative performance",
		"fig9":   "equake",
		"fig10":  "re-executions",
		"fig11":  "inactivity",
		"table2": "Speed-Up",
		"energy": "nJ",
	}
	for _, e := range All() {
		out, err := e.Run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if !strings.Contains(out, anchors[e.ID]) {
			t.Errorf("%s output missing anchor %q:\n%s", e.ID, anchors[e.ID], out)
		}
	}
}

func TestRunSuitesLayout(t *testing.T) {
	runs, err := runSuites([]config.Config{config.Default()}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	sr := runs[0][workload.SuiteInt]
	if len(sr.results) != 12 {
		t.Fatalf("INT suite run has %d results", len(sr.results))
	}
	for i, r := range sr.results {
		if r == nil {
			t.Fatalf("result %d missing", i)
		}
		if r.Bench != workload.SuiteOf(workload.SuiteInt)[i].Name {
			t.Errorf("result %d is %s, want positional layout", i, r.Bench)
		}
	}
	if sr.meanIPC() <= 0 {
		t.Error("meanIPC not positive")
	}
	if sr.meanRelIPC(sr) != 1.0 {
		t.Error("self-relative IPC != 1")
	}
}

func TestRunSuitesPropagatesErrors(t *testing.T) {
	bad := config.Default()
	bad.FetchWidth = 0
	if _, err := runSuites([]config.Config{bad}, tinyOpts()); err == nil {
		t.Error("invalid config did not error")
	}
}

func TestDefaultOptions(t *testing.T) {
	def := DefaultOptions()
	if def.MaxInsts == 0 || def.WarmupInsts == 0 {
		t.Error("DefaultOptions degenerate")
	}
}

// Experiments share the process-level result cache, so re-running an
// experiment must reuse its completed simulations.
func TestExperimentsShareResultCache(t *testing.T) {
	opt := tinyOpts()
	opt.MaxInsts = 4_321 // budget no other test uses, so the keys are fresh
	before := resultCache.Len()
	if _, err := runSuites([]config.Config{config.OoO64()}, opt); err != nil {
		t.Fatal(err)
	}
	after := resultCache.Len()
	if after <= before {
		t.Fatalf("cache did not grow: %d -> %d", before, after)
	}
	if _, err := runSuites([]config.Config{config.OoO64()}, opt); err != nil {
		t.Fatal(err)
	}
	if resultCache.Len() != after {
		t.Fatalf("identical re-run grew the cache: %d -> %d", after, resultCache.Len())
	}
}
