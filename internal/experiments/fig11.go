package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/workload"
)

// Fig11 reproduces Figure 11: the percentage of cycles the Memory Processor
// (and hence the LL-LSQ, ERT and associated logic) can stay in a low-power
// mode, as a function of the L2 capacity. Paper shape: ~33% at 1MB rising
// to ~50% at 8MB; at 2MB the mean number of allocated epochs is 5.73 for
// SPEC FP and 4.77 for SPEC INT.
func Fig11(opt Options) (string, error) {
	sizes := []int{1 << 20, 2 << 20, 4 << 20, 8 << 20}
	var cfgs []config.Config
	for _, sz := range sizes {
		c := config.Default()
		c.L2.SizeBytes = sz
		cfgs = append(cfgs, c)
	}
	runs, err := runSuites(cfgs, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 11: LL-LSQ inactivity (low-power residency) vs L2 size\n\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "L2", "SPEC INT", "SPEC FP")
	for ci, sz := range sizes {
		fmt.Fprintf(&b, "%-8s %11.1f%% %11.1f%%\n",
			fmt.Sprintf("%dMB", sz>>20),
			100*runs[ci][workload.SuiteInt].meanLLIdle(),
			100*runs[ci][workload.SuiteFP].meanLLIdle())
	}
	fmt.Fprintf(&b, "\nAllocated epochs at 2MB (paper: FP 5.73, INT 4.77):\n")
	fmt.Fprintf(&b, "  SPEC INT %.2f   SPEC FP %.2f\n",
		runs[1][workload.SuiteInt].meanAvgEpochs(),
		runs[1][workload.SuiteFP].meanAvgEpochs())
	b.WriteString("\nPaper shape: inactivity rises with L2 size (~33% @1MB to ~50% @8MB).\n")
	return b.String(), nil
}
