package ckpt

// DiskSuffixForTest exposes the on-disk snapshot filename suffix to the
// external test package, which exercises corruption and eviction by touching
// store files directly.
const DiskSuffixForTest = diskSuffix
