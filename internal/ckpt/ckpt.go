// Package ckpt is the checkpointed-sampling subsystem: versioned,
// deterministic snapshots of all warm-up-dependent simulation state, plus a
// content-addressed store for sharing them across runs and processes.
//
// The paper evaluates Alpha SimPoints — short measured intervals resumed
// from warmed architectural state — while a naive reproduction pays the
// full functional warm-up (2.5M instructions by default) for every
// (config, benchmark, seed) job. The warm-up outcome, however, depends on
// almost none of the configuration: only the cache geometry and the warm-up
// budget shape the post-warm-up state (config.Config.WarmKey); the LSQ
// scheme, ERT geometry, migrate threshold, latencies and queue sizes — the
// axes every paper sweep actually varies — shape timing only. One snapshot
// therefore serves an entire sweep grid, turning N warm-ups into one.
//
// A Snapshot captures exactly two things, because the timed phase starts
// with everything else zeroed:
//
//   - the workload source position (workload.SourceState: committed-path
//     RNG, kernel interior state, wrong-path synthesiser, queue surplus),
//   - the memory hierarchy image (mem.HierarchyState: both cache levels'
//     lines, LRU clocks and counters).
//
// Determinism contract: a simulation resumed from a Snapshot produces
// results bit-identical to a fresh run of the same (config, benchmark,
// seed) — enforced by TestResumeMatchesFreshRun over every scheme/model
// path and by the bench-smoke CI gate's digest comparison.
package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// FormatVersion is bumped whenever the snapshot schema or any state layout
// it embeds changes incompatibly; it is part of every store key, so stale
// on-disk checkpoints miss instead of resuming from misread state.
const FormatVersion = 1

// Snapshot is one checkpoint: the complete warm-up-dependent state of a
// (benchmark, seed) pair under a warm-up-relevant configuration slice.
type Snapshot struct {
	// Version is the snapshot format version (FormatVersion at capture).
	Version int `json:"version"`
	// Key is the content address the snapshot is stored under.
	Key string `json:"key"`
	// Bench and Seed identify the workload instantiation.
	Bench string `json:"bench"`
	Seed  uint64 `json:"seed"`
	// WarmupInsts is the functional warm-up budget the snapshot captures.
	WarmupInsts uint64 `json:"warmup_insts"`
	// Source is the workload position after the warm-up.
	Source *workload.SourceState `json:"source"`
	// Hier is the memory-hierarchy image after the warm-up.
	Hier *mem.HierarchyState `json:"hier"`
}

// Key returns the content address of the checkpoint that cfg, bench and
// seed would build: a digest of the snapshot format version, the workload
// state-layout version, the warm-up-relevant config slice and the workload
// identity. Configs differing only in non-warm-up fields share keys.
func Key(cfg *config.Config, bench string, seed uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "ckpt%d|ws%d|%s|%s|%d", FormatVersion, workload.StateVersion, cfg.WarmKey(), bench, seed)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Build runs the functional warm-up for (cfg, prof, seed) and captures the
// resulting snapshot. It performs exactly the warm-up a fresh cpu.Sim.Run
// would: the same source — the live generator, or a trace replay when cfg
// is trace-driven — the same access sequence, the same hierarchy counters.
// Trace-built snapshots carry a replay-position source state instead of
// generator kernel state; cfg.WarmKey() folds the trace identity into the
// store key, so the two kinds can never be confused.
func Build(cfg *config.Config, prof workload.Profile, seed uint64) (*Snapshot, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src, err := trace.SourceFor(cfg, prof, seed)
	if err != nil {
		return nil, err
	}
	h := mem.NewHierarchy(cfg)
	src.Warmup(cfg.WarmupInsts, func(addr uint64) { h.Access(addr) })
	return &Snapshot{
		Version:     FormatVersion,
		Key:         Key(cfg, prof.Name, seed),
		Bench:       prof.Name,
		Seed:        seed,
		WarmupInsts: cfg.WarmupInsts,
		Source:      src.Snapshot(),
		Hier:        h.State(),
	}, nil
}

// Check reports whether the snapshot can stand in for cfg's warm-up of
// (bench, seed).
func (s *Snapshot) Check(cfg *config.Config, bench string, seed uint64) error {
	switch {
	case s.Version != FormatVersion:
		return fmt.Errorf("ckpt: snapshot format %d, this build speaks %d", s.Version, FormatVersion)
	case s.Bench != bench || s.Seed != seed:
		return fmt.Errorf("ckpt: snapshot of %s/%d cannot resume %s/%d", s.Bench, s.Seed, bench, seed)
	case s.WarmupInsts != cfg.WarmupInsts:
		return fmt.Errorf("ckpt: snapshot warmed %d instructions, config wants %d", s.WarmupInsts, cfg.WarmupInsts)
	case s.Source == nil || s.Hier == nil:
		return fmt.Errorf("ckpt: incomplete snapshot")
	}
	return nil
}

// NewSource returns a fresh live-generator source positioned at the
// snapshot: a generator restored in O(state) rather than O(WarmupInsts).
// It only serves snapshots built from live generation (those carry kernel
// state); internal/simrun routes trace-built snapshots to a trace replay
// instead.
func (s *Snapshot) NewSource() (*workload.Generator, error) {
	prof, err := workload.ByName(s.Bench)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	g := prof.New(s.Seed)
	if err := g.Restore(s.Source); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return g, nil
}
