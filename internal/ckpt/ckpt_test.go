// External tests for the checkpoint subsystem. They live outside the package
// so they can drive full simulations through internal/simrun — the only
// component allowed to construct simulators — while still reaching the store
// internals through export_test.go.
package ckpt_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/simrun"
	"repro/internal/workload"
)

func testConfig(mut func(*config.Config)) config.Config {
	cfg := config.Default()
	cfg.MaxInsts = 10_000
	cfg.WarmupInsts = 60_000
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// run simulates (cfg, bench, seed), resumed from snap when non-nil.
func run(t *testing.T, cfg config.Config, bench string, seed uint64, snap *ckpt.Snapshot) *cpu.Result {
	t.Helper()
	out, err := simrun.Point{Config: cfg, Bench: bench, Seed: seed, Snapshot: snap}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.Result
}

// resultsEqual compares every deterministic field of two results.
func resultsEqual(a, b *cpu.Result) bool {
	return a.Bench == b.Bench && a.Config == b.Config &&
		a.Committed == b.Committed && a.Cycles == b.Cycles && a.IPC == b.IPC &&
		a.LLIdleFrac == b.LLIdleFrac && a.AvgEpochs == b.AvgEpochs &&
		reflect.DeepEqual(a.Counters.Snapshot(), b.Counters.Snapshot()) &&
		reflect.DeepEqual(a.LoadDist, b.LoadDist) &&
		reflect.DeepEqual(a.StoreDist, b.StoreDist)
}

// TestResumeMatchesFreshRun is the determinism contract of the package:
// resume-from-checkpoint must be bit-identical to a fresh full-warm-up run
// across every scheme/model path and a sampled-measurement config.
func TestResumeMatchesFreshRun(t *testing.T) {
	points := []struct {
		bench string
		seed  uint64
		mut   func(*config.Config)
	}{
		{"swim", 1, nil},
		{"gcc", 1, nil},
		{"mcf", 2, nil},
		{"equake", 1, func(c *config.Config) { c.Disamb = config.DisambRSAC }},
		{"gcc", 1, func(c *config.Config) { c.ERT = config.ERTLine }},
		{"swim", 1, func(c *config.Config) { c.LSQ = config.LSQSVW }},
		{"gcc", 1, func(c *config.Config) { c.LSQ = config.LSQCentral }},
		{"gcc", 1, func(c *config.Config) {
			c.Model = config.ModelOoO
			c.LSQ = config.LSQConventional
		}},
		{"twolf", 1, func(c *config.Config) {
			c.SampleIntervals = 4
			c.SampleBleedInsts = 5_000
		}},
	}
	for _, pt := range points {
		pt := pt
		cfg := testConfig(pt.mut)
		t.Run(cfg.Name()+"/"+pt.bench, func(t *testing.T) {
			prof := mustProfile(t, pt.bench)

			want := run(t, cfg, pt.bench, pt.seed, nil)

			snap, err := ckpt.Build(&cfg, prof, pt.seed)
			if err != nil {
				t.Fatal(err)
			}
			got := run(t, cfg, pt.bench, pt.seed, snap)

			if !resultsEqual(want, got) {
				t.Errorf("resumed run diverged from fresh run:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestKeySharing pins which config fields partition the checkpoint space:
// timing-only fields share, warm-up-relevant fields split.
func TestKeySharing(t *testing.T) {
	base := testConfig(nil)
	k := ckpt.Key(&base, "swim", 1)

	share := []func(*config.Config){
		func(c *config.Config) { c.LSQ = config.LSQSVW },
		func(c *config.Config) { c.ERT = config.ERTLine },
		func(c *config.Config) { c.MigrateThreshold = 99 },
		func(c *config.Config) { c.NumEpochs = 4 },
		func(c *config.Config) { c.MemLatency = 250 },
		func(c *config.Config) { c.L1.LatencyCycles = 3 }, // latency shapes timing, not contents
		func(c *config.Config) { c.MaxInsts = 77_777 },
		func(c *config.Config) { c.SampleIntervals = 4; c.SampleBleedInsts = 1000 },
		func(c *config.Config) { c.Model = config.ModelOoO; c.LSQ = config.LSQConventional },
	}
	for i, mut := range share {
		cfg := testConfig(mut)
		if ckpt.Key(&cfg, "swim", 1) != k {
			t.Errorf("share case %d split the checkpoint key", i)
		}
	}

	split := []func(*config.Config){
		func(c *config.Config) { c.L1.SizeBytes = 64 << 10 },
		func(c *config.Config) { c.L2.Ways = 8 },
		func(c *config.Config) { c.L2.LineBytes = 64 },
		func(c *config.Config) { c.WarmupInsts = 70_000 },
	}
	for i, mut := range split {
		cfg := testConfig(mut)
		if ckpt.Key(&cfg, "swim", 1) == k {
			t.Errorf("split case %d shared the checkpoint key", i)
		}
	}

	if ckpt.Key(&base, "gcc", 1) == k || ckpt.Key(&base, "swim", 2) == k {
		t.Error("benchmark or seed change shared the checkpoint key")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	cfg := testConfig(nil)
	cfg.WarmupInsts = 20_000
	snap, err := ckpt.Build(&cfg, mustProfile(t, "gzip"), 1)
	if err != nil {
		t.Fatal(err)
	}

	store, err := ckpt.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(snap.Key); ok {
		t.Fatal("empty store returned a snapshot")
	}
	store.Put(snap)
	got, ok := store.Get(snap.Key)
	if !ok {
		t.Fatal("stored snapshot not found")
	}
	if !reflect.DeepEqual(got, snap) {
		t.Error("snapshot did not survive the disk round trip")
	}

	// A resumed run from the reloaded snapshot still matches fresh.
	want := run(t, cfg, "gzip", 1, nil)
	if !resultsEqual(want, run(t, cfg, "gzip", 1, got)) {
		t.Error("disk-loaded resume diverged from fresh run")
	}

	// Corrupt entries are misses.
	if err := os.WriteFile(filepath.Join(store.Dir(), snap.Key+ckpt.DiskSuffixForTest), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(snap.Key); ok {
		t.Error("corrupt snapshot served as a hit")
	}
}

func TestDiskStoreSizeBudget(t *testing.T) {
	cfg := testConfig(nil)
	cfg.WarmupInsts = 5_000
	var snaps []*ckpt.Snapshot
	for _, bench := range []string{"gzip", "vpr", "gcc"} {
		snap, err := ckpt.Build(&cfg, mustProfile(t, bench), 1)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}

	store, err := ckpt.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(snaps[0])
	one, err := store.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Budget for two snapshots: the third Put must evict the oldest.
	store.MaxBytes = one*2 + one/2
	for i, snap := range snaps[1:] {
		// Spread mtimes so "oldest" is well defined on coarse filesystems.
		past := time.Now().Add(time.Duration(i-3) * time.Second)
		os.Chtimes(filepath.Join(store.Dir(), snaps[i].Key+ckpt.DiskSuffixForTest), past, past)
		store.Put(snap)
	}
	if _, ok := store.Get(snaps[0].Key); ok {
		t.Error("size budget did not evict the oldest snapshot")
	}
	if _, ok := store.Get(snaps[2].Key); !ok {
		t.Error("size budget evicted the just-written snapshot")
	}
	entries, err := store.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("store holds %d entries, want 2", len(entries))
	}
}

func TestResumeRejectsMismatch(t *testing.T) {
	cfg := testConfig(nil)
	cfg.WarmupInsts = 5_000
	snap, err := ckpt.Build(&cfg, mustProfile(t, "gzip"), 1)
	if err != nil {
		t.Fatal(err)
	}
	resume := func(cfg config.Config, bench string) error {
		_, err := simrun.Point{Config: cfg, Bench: bench, Seed: 1, Snapshot: snap}.Run(nil)
		return err
	}
	if err := resume(cfg, "vpr"); err == nil {
		t.Error("resume accepted a snapshot of a different benchmark")
	}
	other := cfg
	other.WarmupInsts = 6_000
	if err := resume(other, "gzip"); err == nil {
		t.Error("resume accepted a snapshot with a different warm-up budget")
	}
	geom := cfg
	geom.L1.SizeBytes = 64 << 10
	if err := resume(geom, "gzip"); err == nil {
		t.Error("resume accepted a snapshot of different cache geometry")
	}
}

// TestDiskStoreSweepsStaleTemps pins the crash-residue cleanup: temp files
// old enough that their writer must be dead are removed on open, fresh ones
// (a concurrent writer's in-flight Put) are left alone, and Has answers
// existence without decoding.
func TestDiskStoreSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.tmp-123")
	fresh := filepath.Join(dir, "cafef00d.tmp-456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	store, err := ckpt.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived store open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (possible in-flight write) was removed")
	}

	if store.Has("nope") {
		t.Error("Has reported a missing key")
	}
	cfg := testConfig(nil)
	cfg.WarmupInsts = 5_000
	snap, err := ckpt.Build(&cfg, mustProfile(t, "gzip"), 1)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(snap)
	if !store.Has(snap.Key) {
		t.Error("Has missed a stored key")
	}
}
