package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store holds snapshots by content key. Implementations must be safe for
// concurrent use. Like the sweep result cache, a store is an optimisation:
// Get misses on any problem and Put failures must not fail the run.
type Store interface {
	// Get returns the stored snapshot for key, if present and readable.
	Get(key string) (*Snapshot, bool)
	// Put stores the snapshot under snap.Key.
	Put(snap *Snapshot)
}

// MemStore is an in-process Store.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*Snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]*Snapshot)} }

// Get implements Store.
func (s *MemStore) Get(key string) (*Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, ok := s.m[key]
	return snap, ok
}

// Put implements Store.
func (s *MemStore) Put(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[snap.Key] = snap
}

// Len returns the number of stored snapshots.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

const diskSuffix = ".ckpt.json"

// DiskStore persists snapshots as one JSON file per key, so checkpoint
// builds amortise across processes (cmd/elsqsweep -ckptdir, cmd/elsqckpt).
// Snapshots are dominated by the L2 image (~1 MiB at Table 1 geometry), so
// the store enforces a total-size budget: after each write, oldest entries
// (by modification time) are pruned until the store fits MaxBytes.
type DiskStore struct {
	dir string
	// MaxBytes bounds the store's total size; <= 0 means unbounded.
	MaxBytes int64

	pruneMu sync.Mutex
}

// staleTempAge is how old an orphaned Put temp file must be before open-time
// cleanup removes it. Writes finish in well under a minute, so anything this
// old is the residue of a killed process, not an in-flight Put from a
// concurrent one.
const staleTempAge = time.Hour

// NewDiskStore opens (creating if needed) a disk store rooted at dir with
// the given size budget (<= 0 for unbounded). Temp files orphaned by
// crashed writers are swept on open — they carry no ".ckpt.json" suffix, so
// the size budget would otherwise never see or prune them.
func NewDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: store dir: %w", err)
	}
	s := &DiskStore{dir: dir, MaxBytes: maxBytes}
	s.sweepStaleTemps()
	return s, nil
}

// sweepStaleTemps removes Put temp files old enough that their writer must
// be dead. Errors are ignored: cleanup is best-effort by the Store contract.
func (s *DiskStore) sweepStaleTemps() {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, de := range des {
		if !strings.Contains(de.Name(), ".tmp-") || strings.HasSuffix(de.Name(), diskSuffix) {
			continue
		}
		if info, err := de.Info(); err == nil && info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(s.dir, de.Name()))
		}
	}
}

// Has reports whether a snapshot file exists for key without reading it —
// a cheap existence probe (Get decodes the full ~MiB image).
func (s *DiskStore) Has(key string) bool {
	info, err := os.Stat(s.path(key))
	return err == nil && info.Mode().IsRegular()
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(key string) string {
	return filepath.Join(s.dir, key+diskSuffix)
}

// Get implements Store. Corrupt, truncated or stale-format entries are
// treated as misses.
func (s *DiskStore) Get(key string) (*Snapshot, bool) {
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, false
	}
	if snap.Version != FormatVersion || snap.Key != key || snap.Source == nil || snap.Hier == nil {
		return nil, false
	}
	return &snap, true
}

// Put implements Store. The write is atomic (temp file + rename) so a
// concurrent reader never observes a partial snapshot; afterwards the size
// budget is enforced.
func (s *DiskStore) Put(snap *Snapshot) {
	b, err := json.Marshal(snap)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, snap.Key+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(snap.Key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.enforceBudget(snap.Key)
}

// Entry describes one stored snapshot file.
type Entry struct {
	// Key is the content address.
	Key string
	// Size is the file size in bytes.
	Size int64
	// ModTime is the file's modification time.
	ModTime time.Time
}

// Entries lists the store's snapshot files, oldest first.
func (s *DiskStore) Entries() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []Entry
	for _, de := range des {
		name := de.Name()
		if !strings.HasSuffix(name, diskSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, Entry{
			Key:     strings.TrimSuffix(name, diskSuffix),
			Size:    info.Size(),
			ModTime: info.ModTime(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.Before(out[j].ModTime)
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// TotalBytes sums the store's snapshot file sizes.
func (s *DiskStore) TotalBytes() (int64, error) {
	entries, err := s.Entries()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		total += e.Size
	}
	return total, nil
}

// enforceBudget prunes oldest entries (never the one just written) until
// the store fits MaxBytes.
func (s *DiskStore) enforceBudget(justWritten string) {
	if s.MaxBytes <= 0 {
		return
	}
	s.pruneMu.Lock()
	defer s.pruneMu.Unlock()
	entries, err := s.Entries()
	if err != nil {
		return
	}
	var total int64
	for _, e := range entries {
		total += e.Size
	}
	for _, e := range entries {
		if total <= s.MaxBytes {
			return
		}
		if e.Key == justWritten {
			continue
		}
		if os.Remove(s.path(e.Key)) == nil {
			total -= e.Size
		}
	}
}
