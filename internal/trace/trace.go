// Package trace is the portable on-disk trace subsystem: a versioned,
// self-describing binary format (".elt") for recorded committed-path
// instruction streams, a Recorder that captures any workload.Source to disk
// while (optionally) being consumed as one, and a file-backed Source that
// replays a trace bit-identically to the live generator it was recorded
// from — including wrong-path re-synthesis and Snapshot/Restore, so
// checkpointed sampled simulation (internal/ckpt) resumes from traces
// exactly as it does from live generation.
//
// The paper evaluates the two-level LSQ on recorded Alpha SimPoint traces;
// this package gives the reproduction the same artifact shape: a benchmark
// run becomes a file that replays identically across processes, machines
// and CI, can be swept over (config.Config.TracePath / the "trace" sweep
// axis) and is content-addressed (config.Config.TraceDigest folds the
// trace's digest into the simulation and warm-up cache identities).
//
// # File format
//
// All integers are unsigned LEB128 varints unless noted; multi-byte fixed
// fields are little-endian. A file is:
//
//	magic      "ELT\x01"                        (4 bytes)
//	header     format version (uvarint)
//	           workload state version (uvarint, workload.StateVersion)
//	           benchmark name (uvarint length + bytes)
//	           suite (1 byte: 0 = INT, 1 = FP)
//	           seed (uvarint)
//	           wrong-path RNG init state (uvarint)
//	           records per block (uvarint)
//	blocks     each: raw length (uvarint, > 0)
//	                 record count (uvarint)
//	                 raw-payload digest (8 bytes, sha256 prefix)
//	                 compressed length (uvarint)
//	                 DEFLATE-compressed record payload
//	terminator one 0x00 byte (a zero raw length)
//	trailer    "ELTE", record count (8-byte LE), content digest (16 bytes,
//	           sha256 prefix), "ELTZ"             (32 bytes)
//
// Every block except the last holds exactly the header's records-per-block
// count, so a record index maps to its block in O(1) and Restore seeks
// without replay. Per-block digests localise corruption; the trailer's
// content digest covers the header identity plus every record's canonical
// form (see foldRecord) and is therefore independent of block size — it is
// the digest config.Config.TraceDigest carries. See WORKLOADS.md for the
// format specification with a worked hex example.
package trace

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"sync"

	"repro/internal/isa"
	"repro/internal/workload"
)

// FormatVersion is bumped whenever the file layout changes incompatibly, so
// traces from older builds fail loudly instead of decoding garbage.
const FormatVersion = 1

// DefaultBlockRecords is the Recorder's default block granularity: large
// enough that DEFLATE sees real redundancy, small enough that a Restore
// seek decodes only a sliver of the file.
const DefaultBlockRecords = 4096

// maxNameLen bounds the benchmark-name field against hostile headers.
const maxNameLen = 256

var (
	magicHead = []byte{'E', 'L', 'T', 1}
	magicTail = []byte("ELTE")
	magicEnd  = []byte("ELTZ")
)

// trailerLen is the fixed size of the file trailer.
const trailerLen = 4 + 8 + 16 + 4

// Meta is the self-describing identity of a trace.
type Meta struct {
	// FormatVersion is the file-format version (FormatVersion at write time).
	FormatVersion int
	// StateVersion is workload.StateVersion at record time; a mismatch means
	// the generator state layout (and hence the synthetic streams) may have
	// changed under the trace.
	StateVersion int
	// Bench and Suite identify the recorded benchmark.
	Bench string
	Suite workload.Suite
	// Seed is the workload seed the stream was generated under.
	Seed uint64
	// WPInit is the wrong-path RNG state at record start; replay seeds its
	// wrong-path synthesiser from it (see workload.NewWrongPathSynth).
	WPInit uint64
	// BlockRecords is the records-per-block granularity.
	BlockRecords int
	// Records is the total committed-path instruction count.
	Records uint64
	// Digest is the hex content digest of the stream (block-size
	// independent); it is what config.Config.TraceDigest carries.
	Digest string
}

// blockInfo indexes one compressed block inside the file image.
type blockInfo struct {
	off     int // offset of the compressed payload in data
	compLen int
	rawLen  int
	count   int
	digest  [8]byte
	start   uint64 // record index of the block's first record
}

// Trace is an opened, structurally validated trace. It is immutable apart
// from internal caches and safe for concurrent use: every mutable cursor
// lives in a Source.
type Trace struct {
	meta   Meta
	data   []byte
	blocks []blockInfo

	verifyOnce sync.Once
	verifyErr  error

	// Decoded-block cache shared by every Source over this trace: K batch
	// lanes replaying the same recording in near-lockstep each want the same
	// block at nearly the same time, so the group decompresses it once
	// instead of once per lane. Records carry absolute sequence numbers
	// (blockInfo.start), making a decoded block position-independent and
	// therefore shareable; cached slices are immutable and readers must not
	// modify them. A small FIFO bounds residency: lanes drift by at most a
	// few blocks, so a handful of resident blocks covers a whole group while
	// a full-trace cache would defeat the "never materialised" promise.
	blockMu    sync.Mutex
	blockCache map[int][]isa.Inst
	blockFIFO  []int
	decodes    uint64
}

// blockCacheCap bounds how many decoded blocks a Trace keeps resident.
const blockCacheCap = 8

// Block returns the decoded records of block i as a shared immutable slice,
// decoding (and caching) it on first request. Callers must not modify the
// returned slice.
func (t *Trace) Block(i int) ([]isa.Inst, error) {
	t.blockMu.Lock()
	defer t.blockMu.Unlock()
	if recs, ok := t.blockCache[i]; ok {
		return recs, nil
	}
	recs, err := t.decodeBlock(i, make([]isa.Inst, 0, t.blocks[i].count))
	if err != nil {
		return nil, err
	}
	t.decodes++
	if t.blockCache == nil {
		t.blockCache = make(map[int][]isa.Inst, blockCacheCap)
	}
	if len(t.blockFIFO) == blockCacheCap {
		delete(t.blockCache, t.blockFIFO[0])
		t.blockFIFO = t.blockFIFO[1:]
	}
	t.blockCache[i] = recs
	t.blockFIFO = append(t.blockFIFO, i)
	return recs, nil
}

// Decodes reports how many block decodes Block has performed (cache misses;
// hits served from the resident set do not count). It exists so tests can
// pin the decode-once-per-group property.
func (t *Trace) Decodes() uint64 {
	t.blockMu.Lock()
	defer t.blockMu.Unlock()
	return t.decodes
}

// Meta returns the trace's identity.
func (t *Trace) Meta() Meta { return t.meta }

// Open reads and structurally validates the trace file at path. The whole
// file is held in memory (compressed — a full-budget trace is a few MiB);
// blocks are decompressed on demand.
func Open(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t, err := New(data)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}

// New parses a trace from its file image. The slice is retained; the caller
// must not modify it afterwards.
func New(data []byte) (*Trace, error) {
	r := &byteReader{buf: data}
	if !bytes.HasPrefix(data, magicHead) {
		return nil, fmt.Errorf("not an .elt trace (bad magic)")
	}
	r.pos = len(magicHead)

	t := &Trace{data: data}
	m := &t.meta
	var err error
	if m.FormatVersion, err = r.uvarintInt("format version"); err != nil {
		return nil, err
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("format version %d, this build speaks %d", m.FormatVersion, FormatVersion)
	}
	if m.StateVersion, err = r.uvarintInt("state version"); err != nil {
		return nil, err
	}
	nameLen, err := r.uvarintInt("name length")
	if err != nil {
		return nil, err
	}
	if nameLen <= 0 || nameLen > maxNameLen {
		return nil, fmt.Errorf("benchmark name length %d out of range", nameLen)
	}
	name, err := r.take(nameLen, "name")
	if err != nil {
		return nil, err
	}
	m.Bench = string(name)
	sb, err := r.take(1, "suite")
	if err != nil {
		return nil, err
	}
	if sb[0] > 1 {
		return nil, fmt.Errorf("unknown suite byte %d", sb[0])
	}
	m.Suite = workload.Suite(sb[0])
	if m.Seed, err = r.uvarint("seed"); err != nil {
		return nil, err
	}
	if m.WPInit, err = r.uvarint("wrong-path init"); err != nil {
		return nil, err
	}
	if m.BlockRecords, err = r.uvarintInt("block records"); err != nil {
		return nil, err
	}
	if m.BlockRecords < 1 || m.BlockRecords > 1<<20 {
		return nil, fmt.Errorf("records-per-block %d out of range", m.BlockRecords)
	}

	// Block index: walk headers, skip payloads.
	var start uint64
	for {
		rawLen, err := r.uvarintInt("block raw length")
		if err != nil {
			return nil, err
		}
		if rawLen == 0 {
			break // terminator
		}
		count, err := r.uvarintInt("block record count")
		if err != nil {
			return nil, err
		}
		if count < 1 || count > m.BlockRecords {
			return nil, fmt.Errorf("block %d holds %d records, want 1..%d", len(t.blocks), count, m.BlockRecords)
		}
		if rawLen > count*maxRecordBytes {
			return nil, fmt.Errorf("block %d raw length %d exceeds %d records", len(t.blocks), rawLen, count)
		}
		dig, err := r.take(8, "block digest")
		if err != nil {
			return nil, err
		}
		compLen, err := r.uvarintInt("block compressed length")
		if err != nil {
			return nil, err
		}
		if compLen < 1 || compLen > rawLen+1024 {
			return nil, fmt.Errorf("block %d compressed length %d implausible for raw %d", len(t.blocks), compLen, rawLen)
		}
		b := blockInfo{off: r.pos, compLen: compLen, rawLen: rawLen, count: count, start: start}
		copy(b.digest[:], dig)
		if _, err := r.take(compLen, "block payload"); err != nil {
			return nil, err
		}
		t.blocks = append(t.blocks, b)
		start += uint64(count)
	}
	for i, b := range t.blocks[:max(len(t.blocks)-1, 0)] {
		if b.count != m.BlockRecords {
			return nil, fmt.Errorf("interior block %d holds %d records, want exactly %d", i, b.count, m.BlockRecords)
		}
	}

	// Trailer.
	tr, err := r.take(trailerLen, "trailer")
	if err != nil {
		return nil, err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%d trailing bytes after trailer", len(data)-r.pos)
	}
	if !bytes.Equal(tr[:4], magicTail) || !bytes.Equal(tr[trailerLen-4:], magicEnd) {
		return nil, fmt.Errorf("bad trailer magic")
	}
	m.Records = binary.LittleEndian.Uint64(tr[4:12])
	if m.Records != start {
		return nil, fmt.Errorf("trailer claims %d records, blocks hold %d", m.Records, start)
	}
	m.Digest = hex.EncodeToString(tr[12 : 12+16])
	return t, nil
}

// blockFor returns the index of the block containing record index pos.
func (t *Trace) blockFor(pos uint64) int {
	return int(pos / uint64(t.meta.BlockRecords))
}

// decodeBlock decompresses and decodes block i, verifying its raw-payload
// digest, and appends the records to dst (sequence numbers stamped).
func (t *Trace) decodeBlock(i int, dst []isa.Inst) ([]isa.Inst, error) {
	b := t.blocks[i]
	fr := flate.NewReader(bytes.NewReader(t.data[b.off : b.off+b.compLen]))
	raw := make([]byte, b.rawLen)
	if _, err := io.ReadFull(fr, raw); err != nil {
		return dst, fmt.Errorf("trace: block %d: %w", i, err)
	}
	// A well-formed stream ends exactly at rawLen.
	if n, _ := fr.Read(make([]byte, 1)); n != 0 {
		return dst, fmt.Errorf("trace: block %d decompresses past its raw length", i)
	}
	sum := sha256.Sum256(raw)
	if !bytes.Equal(sum[:8], b.digest[:]) {
		return dst, fmt.Errorf("trace: block %d payload digest mismatch (corrupt file?)", i)
	}
	var prevAddr uint64
	buf := raw
	var err error
	for j := 0; j < b.count; j++ {
		var in isa.Inst
		if buf, prevAddr, err = decodeRecord(buf, &in, prevAddr); err != nil {
			return dst, fmt.Errorf("trace: block %d record %d: %w", i, j, err)
		}
		in.Seq = b.start + uint64(j)
		dst = append(dst, in)
	}
	if len(buf) != 0 {
		return dst, fmt.Errorf("trace: block %d has %d bytes after its last record", i, len(buf))
	}
	return dst, nil
}

// Verify fully decodes the trace and checks every per-block digest plus the
// trailer's content digest. The result is computed once and cached; Source
// construction calls it, so a corrupt trace fails before simulation rather
// than mid-run.
func (t *Trace) Verify() error {
	t.verifyOnce.Do(func() {
		h := sha256.New()
		foldHeader(h, &t.meta)
		buf := make([]isa.Inst, 0, t.meta.BlockRecords)
		for i := range t.blocks {
			var err error
			if buf, err = t.decodeBlock(i, buf[:0]); err != nil {
				t.verifyErr = err
				return
			}
			for j := range buf {
				foldRecord(h, &buf[j])
			}
		}
		if got := hex.EncodeToString(h.Sum(nil)[:16]); got != t.meta.Digest {
			t.verifyErr = fmt.Errorf("trace: content digest %s, trailer claims %s", got, t.meta.Digest)
		}
	})
	return t.verifyErr
}

// foldHeader feeds the trace's identity into the content digest. The block
// granularity is deliberately excluded: two traces of the same stream with
// different block sizes digest identically.
func foldHeader(h hash.Hash, m *Meta) {
	fmt.Fprintf(h, "elt%d|ws%d|%s|%d|%d|%d|", FormatVersion, m.StateVersion, m.Bench, m.Suite, m.Seed, m.WPInit)
}

// byteReader is a bounds-checked cursor over the file image.
type byteReader struct {
	buf []byte
	pos int
}

// uvarint reads one varint, naming the field in errors.
func (r *byteReader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated %s", field)
	}
	r.pos += n
	return v, nil
}

// uvarintInt reads one varint that must fit an int.
func (r *byteReader) uvarintInt(field string) (int, error) {
	v, err := r.uvarint(field)
	if err != nil {
		return 0, err
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("%s %d out of range", field, v)
	}
	return int(v), nil
}

// take returns the next n bytes, naming the field in errors.
func (r *byteReader) take(n int, field string) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, fmt.Errorf("truncated %s", field)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// cached memoises Open per path, validated by file size and modification
// time, so sweeps whose jobs share one trace parse and verify it once per
// process instead of once per job.
var cache sync.Map // path -> *cacheEntry

// cacheEntry pins the file identity an entry was parsed from.
type cacheEntry struct {
	size    int64
	modTime int64
	t       *Trace
}

// Cached returns the trace at path, served from the process-wide cache when
// the file is unchanged since it was first opened.
func Cached(path string) (*Trace, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if e, ok := cache.Load(path); ok {
		ce := e.(*cacheEntry)
		if ce.size == info.Size() && ce.modTime == info.ModTime().UnixNano() {
			return ce.t, nil
		}
	}
	t, err := Open(path)
	if err != nil {
		return nil, err
	}
	cache.Store(path, &cacheEntry{size: info.Size(), modTime: info.ModTime().UnixNano(), t: t})
	return t, nil
}
