package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// record encodes the first n committed-path instructions of (bench, seed)
// with the given block granularity and returns the file image.
func record(t *testing.T, bench string, seed, n uint64, blockRecords int) []byte {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := newRecorder(&buf, prof.New(seed), blockRecords)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Record(n); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != n {
		t.Fatalf("recorded %d instructions, want %d", rec.Count(), n)
	}
	return buf.Bytes()
}

func mustOpen(t *testing.T, data []byte) *Trace {
	t.Helper()
	tr, err := New(data)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustSource(t *testing.T, tr *Trace) *Source {
	t.Helper()
	s, err := tr.Source()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip pins the core fidelity contract: decoding a recording
// reproduces the live generator's committed stream field-for-field,
// including sequence numbers, across multiple blocks and a partial tail
// block.
func TestRoundTrip(t *testing.T) {
	const n, blockRecords = 10_000, 512
	for _, bench := range []string{"gzip", "swim", "mcf"} {
		data := record(t, bench, 7, n, blockRecords)
		tr := mustOpen(t, data)
		m := tr.Meta()
		if m.Bench != bench || m.Seed != 7 || m.Records != n || m.BlockRecords != blockRecords {
			t.Fatalf("%s: bad meta %+v", bench, m)
		}
		if m.StateVersion != workload.StateVersion {
			t.Errorf("%s: meta state version %d, want %d", bench, m.StateVersion, workload.StateVersion)
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("%s: %v", bench, err)
		}

		prof, _ := workload.ByName(bench)
		live := prof.New(7)
		src := mustSource(t, tr)
		var want, got isa.Inst
		for i := 0; i < n; i++ {
			live.Next(&want)
			src.Next(&got)
			if got != want {
				t.Fatalf("%s: record %d replayed as %+v, live %+v", bench, i, got, want)
			}
		}
	}
}

// TestWrongPathEquivalence proves replay re-synthesises the exact
// wrong-path stream the live source would produce when both are driven
// with an interleaved committed/wrong-path consumption pattern.
func TestWrongPathEquivalence(t *testing.T) {
	const n = 4000
	data := record(t, "mcf", 3, n, 256)
	prof, _ := workload.ByName("mcf")
	live := prof.New(3)
	src := mustSource(t, mustOpen(t, data))

	var want, got isa.Inst
	for i := 0; i < n; i++ {
		live.Next(&want)
		src.Next(&got)
		if got != want {
			t.Fatalf("committed %d diverged", i)
		}
		if i%13 == 0 {
			for k := 0; k < 3; k++ {
				live.WrongPath(&want)
				src.WrongPath(&got)
				if got != want {
					t.Fatalf("wrong-path after committed %d diverged: %+v vs %+v", i, got, want)
				}
			}
		}
	}
}

// TestWarmupEquivalence checks count-mode Warmup feeds the same access
// sequence as the live source and leaves the stream at the same position.
func TestWarmupEquivalence(t *testing.T) {
	const n, warm = 6000, 3777
	data := record(t, "gcc", 5, n, 512)
	prof, _ := workload.ByName("gcc")
	live := prof.New(5)
	src := mustSource(t, mustOpen(t, data))

	var liveAddrs, srcAddrs []uint64
	live.Warmup(warm, func(a uint64) { liveAddrs = append(liveAddrs, a) })
	src.Warmup(warm, func(a uint64) { srcAddrs = append(srcAddrs, a) })
	if len(liveAddrs) != len(srcAddrs) {
		t.Fatalf("warm-up fed %d accesses, live fed %d", len(srcAddrs), len(liveAddrs))
	}
	for i := range liveAddrs {
		if liveAddrs[i] != srcAddrs[i] {
			t.Fatalf("access %d: %#x vs live %#x", i, srcAddrs[i], liveAddrs[i])
		}
	}
	var want, got isa.Inst
	for i := 0; i < 500; i++ {
		live.Next(&want)
		src.Next(&got)
		if got != want {
			t.Fatalf("post-warm-up instruction %d diverged", i)
		}
		live.WrongPath(&want)
		src.WrongPath(&got)
		if got != want {
			t.Fatalf("post-warm-up wrong path %d diverged", i)
		}
	}
}

// TestSnapshotRestore checks the Snapshottable contract within the
// recording: a restored source continues bit-identically, committed and
// wrong path both.
func TestSnapshotRestore(t *testing.T) {
	const n = 5000
	data := record(t, "vpr", 9, n, 256)
	tr := mustOpen(t, data)

	a := mustSource(t, tr)
	var in isa.Inst
	for i := 0; i < 1234; i++ {
		a.Next(&in)
	}
	a.WrongPath(&in) // advance wrong-path state too
	st := a.Snapshot()
	if st.Consumed != 1234 || st.Kernel != nil {
		t.Fatalf("snapshot: consumed %d kernel %v", st.Consumed, st.Kernel)
	}

	b := mustSource(t, tr)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	var want, got isa.Inst
	for i := 0; i < 2000; i++ {
		a.Next(&want)
		b.Next(&got)
		if got != want {
			t.Fatalf("restored source diverged at %d", i)
		}
		a.WrongPath(&want)
		b.WrongPath(&got)
		if got != want {
			t.Fatalf("restored wrong path diverged at %d", i)
		}
	}

	// Mismatched identities are rejected.
	other := mustSource(t, mustOpen(t, record(t, "vpr", 10, 100, 64)))
	if err := other.Restore(st); err == nil {
		t.Error("snapshot restored onto a different seed")
	}
}

// TestOverflow checks the past-the-recording fallback: the source switches
// to live generation seamlessly, and snapshots taken past the recording
// carry full kernel state and restore.
func TestOverflow(t *testing.T) {
	const n = 1000
	data := record(t, "twolf", 2, n, 256)
	prof, _ := workload.ByName("twolf")
	live := prof.New(2)
	src := mustSource(t, mustOpen(t, data))

	var want, got isa.Inst
	for i := 0; i < n+500; i++ {
		live.Next(&want)
		src.Next(&got)
		if got != want {
			t.Fatalf("instruction %d diverged (recording ends at %d)", i, n)
		}
	}
	st := src.Snapshot()
	if st.Consumed != n+500 || st.Kernel == nil {
		t.Fatalf("overflow snapshot: consumed %d, kernel %v", st.Consumed, st.Kernel != nil)
	}
	b := mustSource(t, mustOpen(t, data))
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		src.Next(&want)
		b.Next(&got)
		if got != want {
			t.Fatalf("restored overflow source diverged at %d", i)
		}
	}
}

// TestDigestBlockSizeIndependence pins the content-digest contract: the
// digest names the instruction stream, not its storage layout.
func TestDigestBlockSizeIndependence(t *testing.T) {
	a := mustOpen(t, record(t, "gzip", 1, 3000, 128))
	b := mustOpen(t, record(t, "gzip", 1, 3000, 1024))
	if a.Meta().Digest != b.Meta().Digest {
		t.Errorf("digest depends on block size: %s vs %s", a.Meta().Digest, b.Meta().Digest)
	}
	c := mustOpen(t, record(t, "gzip", 2, 3000, 128))
	if a.Meta().Digest == c.Meta().Digest {
		t.Error("different seeds share a digest")
	}
	d := mustOpen(t, record(t, "gzip", 1, 3001, 128))
	if a.Meta().Digest == d.Meta().Digest {
		t.Error("different lengths share a digest")
	}
}

// TestCorruptionDetection checks the failure modes: payload bit-flips are
// caught by block digests, header/trailer damage by structural parsing.
func TestCorruptionDetection(t *testing.T) {
	data := record(t, "gzip", 1, 2000, 256)
	tr := mustOpen(t, data)

	// Flip one byte inside the first block's compressed payload.
	flipped := append([]byte(nil), data...)
	flipped[tr.blocks[0].off+3] ^= 0x40
	if tr2, err := New(flipped); err == nil {
		if err := tr2.Verify(); err == nil {
			t.Error("bit-flipped payload verified clean")
		}
	}

	// Flip one byte of the trailer digest.
	flipped = append([]byte(nil), data...)
	flipped[len(flipped)-10] ^= 1
	if tr2, err := New(flipped); err == nil {
		if err := tr2.Verify(); err == nil {
			t.Error("bit-flipped trailer digest verified clean")
		}
	}

	// Structural damage fails at parse time.
	for _, mut := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{'X'}, data[1:]...)},
		{"truncated", data[:len(data)-5]},
		{"trailing garbage", append(append([]byte(nil), data...), 0xFF)},
	} {
		if _, err := New(mut.data); err == nil {
			t.Errorf("%s parsed without error", mut.name)
		}
	}
}

// TestRecorderRequiresFreshSource pins the position-zero precondition the
// header's wrong-path seed depends on.
func TestRecorderRequiresFreshSource(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	g := prof.New(1)
	var in isa.Inst
	g.Next(&in)
	if _, err := NewRecorder(&bytes.Buffer{}, g); err == nil {
		t.Error("recorder accepted a consumed source")
	}
}

// TestCached checks the process-wide cache serves unchanged files and
// reloads replaced ones.
func TestCached(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.elt")
	if err := os.WriteFile(path, record(t, "gzip", 1, 500, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Cached(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(path)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("unchanged file was re-parsed")
	}
	// Replace with a different recording; the cache must notice.
	if err := os.WriteFile(path, record(t, "gzip", 2, 600, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Cached(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta().Seed != 2 {
		t.Errorf("cache served the replaced file (seed %d)", c.Meta().Seed)
	}
}

// TestBenchPath pins the directory naming convention shared by record and
// the -tracedir consumers.
func TestBenchPath(t *testing.T) {
	if got, want := BenchPath("traces", "swim", 3), filepath.Join("traces", "swim-s3.elt"); got != want {
		t.Errorf("BenchPath = %q, want %q", got, want)
	}
}

// TestZigzag pins the signed-delta codec at the extremes.
func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -(1 << 62)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}

// TestSharedBlockCache pins the decode-once-per-group property: K sources
// replaying the same trace in near-lockstep share each decoded block
// through the trace's cache, so the group performs one decode per block —
// not one per lane — while every lane still sees the exact live stream.
func TestSharedBlockCache(t *testing.T) {
	const n, blockRecords, lanes = 8_000, 512, 6
	data := record(t, "mcf", 5, n, blockRecords)
	tr := mustOpen(t, data)
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Decodes(); got != 0 {
		t.Fatalf("Verify counted %d decodes; the hook must count only shared-cache misses", got)
	}

	prof, _ := workload.ByName("mcf")
	lives := make([]*workload.Generator, lanes)
	srcs := make([]*Source, lanes)
	for k := 0; k < lanes; k++ {
		lives[k] = prof.New(5)
		srcs[k] = mustSource(t, tr)
	}
	// Interleave in chunks smaller than a block so every lane crosses each
	// block boundary while it is still resident.
	var want, got isa.Inst
	for consumed := 0; consumed < n; consumed += 100 {
		for k := 0; k < lanes; k++ {
			for i := 0; i < 100; i++ {
				lives[k].Next(&want)
				srcs[k].Next(&got)
				if got != want {
					t.Fatalf("lane %d record %d replayed as %+v, live %+v", k, consumed+i, got, want)
				}
			}
		}
	}
	wantDecodes := uint64(len(tr.blocks))
	if got := tr.Decodes(); got != wantDecodes {
		t.Fatalf("%d lanes performed %d block decodes, want one per block (%d)", lanes, got, wantDecodes)
	}
}

// TestBlockCacheBounded: a straggler re-requesting long-evicted blocks
// re-decodes them (the resident set is a bounded FIFO, not the whole trace)
// and still reads the right records.
func TestBlockCacheBounded(t *testing.T) {
	const n, blockRecords = uint64(8_000), 512
	data := record(t, "swim", 9, n, blockRecords)
	tr := mustOpen(t, data)
	nblocks := len(tr.blocks)
	if nblocks <= blockCacheCap {
		t.Fatalf("trace has %d blocks; the test wants more than the %d-block cache", nblocks, blockCacheCap)
	}
	for i := 0; i < nblocks; i++ {
		if _, err := tr.Block(i); err != nil {
			t.Fatal(err)
		}
	}
	if resident := len(tr.blockCache); resident != blockCacheCap {
		t.Fatalf("%d blocks resident after a full sweep, want %d", resident, blockCacheCap)
	}
	recs, err := tr.Block(0) // long evicted: must decode again, correctly
	if err != nil {
		t.Fatal(err)
	}
	if tr.Decodes() != uint64(nblocks)+1 {
		t.Fatalf("decode count %d after re-request, want %d", tr.Decodes(), nblocks+1)
	}
	if len(recs) != blockRecords || recs[0].Seq != 0 {
		t.Fatalf("re-decoded block 0 wrong: %d records, first seq %d", len(recs), recs[0].Seq)
	}
}
