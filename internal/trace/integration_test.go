// Integration tests for the acceptance bar of the trace subsystem: replaying
// a recorded trace must be indistinguishable — result-for-result, bit for
// bit — from the live generation it was recorded from, through the full
// simulator and through checkpointed resume.
package trace_test

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testBudget is small enough for per-PR CI yet covers warm-up, measurement
// and (for the sampled variant) inter-interval bleed.
const (
	testWarmup  uint64 = 6000
	testMeasure uint64 = 2500
)

// recordTo records the full budget of (bench, seed) under cfg to a temp
// .elt file and returns its path.
func recordTo(t *testing.T, cfg *config.Config, bench string, seed uint64) string {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := trace.BenchPath(t.TempDir(), bench, seed)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(f, prof.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.WarmupInsts + cfg.MaxInsts
	if intervals, bleed := cfg.Intervals(); intervals > 1 {
		n += uint64(intervals-1) * bleed
	}
	if err := rec.Record(n); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertSameResult compares every deterministic field of two results.
func assertSameResult(t *testing.T, label string, got, want *cpu.Result) {
	t.Helper()
	if got.Committed != want.Committed || got.Cycles != want.Cycles || got.IPC != want.IPC {
		t.Fatalf("%s: committed/cycles/IPC %d/%d/%v, want %d/%d/%v",
			label, got.Committed, got.Cycles, got.IPC, want.Committed, want.Cycles, want.IPC)
	}
	if !reflect.DeepEqual(got.Counters.Snapshot(), want.Counters.Snapshot()) {
		t.Fatalf("%s: counters diverged:\n got %v\nwant %v", label, got.Counters.Snapshot(), want.Counters.Snapshot())
	}
	if !reflect.DeepEqual(got.LoadDist, want.LoadDist) || !reflect.DeepEqual(got.StoreDist, want.StoreDist) {
		t.Fatalf("%s: locality histograms diverged", label)
	}
	if got.LLIdleFrac != want.LLIdleFrac || got.AvgEpochs != want.AvgEpochs {
		t.Fatalf("%s: LL activity diverged: %v/%v vs %v/%v",
			label, got.LLIdleFrac, got.AvgEpochs, want.LLIdleFrac, want.AvgEpochs)
	}
}

// runLive simulates (cfg, bench, seed) from the live generator.
func runLive(t *testing.T, cfg config.Config, bench string, seed uint64) *cpu.Result {
	t.Helper()
	cfg.TracePath, cfg.TraceDigest = "", ""
	out, err := simrun.Point{Config: cfg, Bench: bench, Seed: seed}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.Result
}

// runTraced simulates (cfg, bench, seed) from cfg.TracePath.
func runTraced(t *testing.T, cfg config.Config, bench string, seed uint64) *cpu.Result {
	t.Helper()
	out, err := simrun.Point{Config: cfg, Bench: bench, Seed: seed}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.Result
}

// TestSimulationFromTraceMatchesLive is the tentpole's correctness bar: for
// an INT and an FP benchmark, under both the FMC/ELSQ default and the
// OoO-64 baseline, simulating from a recorded trace produces results
// identical to the live-generator run it was recorded from.
func TestSimulationFromTraceMatchesLive(t *testing.T) {
	for _, bench := range []string{"gzip", "swim"} {
		for _, base := range []struct {
			name string
			cfg  config.Config
		}{
			{"fmc", config.Default()},
			{"ooo64", config.OoO64()},
		} {
			t.Run(bench+"/"+base.name, func(t *testing.T) {
				cfg := base.cfg.WithBudget(testMeasure, testWarmup)
				path := recordTo(t, &cfg, bench, 1)
				cfg.TracePath = path
				if err := trace.Resolve(&cfg); err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, bench, runTraced(t, cfg, bench, 1), runLive(t, cfg, bench, 1))
			})
		}
	}
}

// TestSampledSimulationFromTrace covers the SimPoint-style sampled path:
// inter-interval bleed walks the trace in count mode mid-run.
func TestSampledSimulationFromTrace(t *testing.T) {
	cfg := config.Default().WithBudget(testMeasure, testWarmup)
	cfg.SampleIntervals = 3
	cfg.SampleBleedInsts = 1500
	path := recordTo(t, &cfg, "mcf", 1)
	cfg.TracePath = path
	if err := trace.Resolve(&cfg); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "mcf sampled", runTraced(t, cfg, "mcf", 1), runLive(t, cfg, "mcf", 1))
}

// TestCkptResumeFromTrace proves checkpointed simulation composes with
// trace-driven runs: a snapshot built by warming a trace-backed source
// resumes to results bit-identical to the fresh trace-driven run (which is
// itself identical to live generation, per the test above).
func TestCkptResumeFromTrace(t *testing.T) {
	for _, bench := range []string{"gzip", "swim"} {
		t.Run(bench, func(t *testing.T) {
			cfg := config.Default().WithBudget(testMeasure, testWarmup)
			path := recordTo(t, &cfg, bench, 1)
			cfg.TracePath = path
			if err := trace.Resolve(&cfg); err != nil {
				t.Fatal(err)
			}
			prof, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := ckpt.Build(&cfg, prof, 1)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Source.Kernel != nil {
				t.Error("trace-built snapshot carries generator kernel state")
			}
			out, err := simrun.Point{Config: cfg, Bench: bench, Seed: 1, Snapshot: snap}.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Resumed {
				t.Error("run with an explicit snapshot not reported as resumed")
			}
			assertSameResult(t, bench, out.Result, runTraced(t, cfg, bench, 1))

			// The warm-up identity must separate trace-driven from live runs:
			// this snapshot would be wrong for a live-generator resume.
			live := cfg
			live.TracePath, live.TraceDigest = "", ""
			if cfg.WarmKey() == live.WarmKey() {
				t.Error("trace-driven and live configs share a warm key")
			}
		})
	}
}

// TestSourceForMismatchFails pins the identity checks between a job and the
// trace it names.
func TestSourceForMismatchFails(t *testing.T) {
	cfg := config.Default().WithBudget(500, 500)
	path := recordTo(t, &cfg, "gzip", 1)
	cfg.TracePath = path
	gzip, _ := workload.ByName("gzip")
	mcf, _ := workload.ByName("mcf")
	if _, err := trace.SourceFor(&cfg, mcf, 1); err == nil {
		t.Error("trace of gzip accepted for an mcf job")
	}
	if _, err := trace.SourceFor(&cfg, gzip, 2); err == nil {
		t.Error("trace of seed 1 accepted for a seed-2 job")
	}
	cfg.TraceDigest = "0123456789abcdef0123456789abcdef"
	if _, err := trace.SourceFor(&cfg, gzip, 1); err == nil {
		t.Error("digest mismatch accepted")
	}
}
