package trace

// Per-record wire codec. A committed-path instruction is encoded as:
//
//	flags byte:  bits 0-2 op class, bit 3 taken, bit 4 mispred,
//	             bits 5-6 log2(access size) for memory ops, bit 7 reserved
//	uvarint:     dst+1, src1+1, src2+1  (register numbers; 0 encodes NoReg)
//	zigzag varint (memory ops only): effective address delta from the
//	             previous memory record of the same block
//
// The address delta base resets to zero at every block boundary, so blocks
// decode independently. Sequence numbers are not stored: records are the
// committed program order, so a record's sequence number is its position.
// Wrong-path instructions are never recorded — replay re-synthesises them
// (see Source).

import (
	"encoding/binary"
	"fmt"
	"hash"

	"repro/internal/isa"
)

// maxRecordBytes bounds one encoded record: 1 flags byte, three 1-byte
// register varints (registers are < 64) and a worst-case 10-byte address
// delta. Block-size sanity checks in the parser derive from it.
const maxRecordBytes = 1 + 3 + binary.MaxVarintLen64

// sizeLog2 maps an access size (1, 2, 4, 8) to its 2-bit exponent.
func sizeLog2(size uint8) (uint8, error) {
	switch size {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("trace: unencodable access size %d", size)
}

// zigzag maps a signed delta onto the unsigned varint space so small
// magnitudes of either sign encode short.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendRecord encodes in onto buf and returns the extended buffer plus the
// updated address-delta base.
func appendRecord(buf []byte, in *isa.Inst, prevAddr uint64) ([]byte, uint64, error) {
	if in.WrongPath {
		return buf, prevAddr, fmt.Errorf("trace: wrong-path instruction in committed stream (seq %d)", in.Seq)
	}
	if in.Op >= isa.OpClass(8) {
		return buf, prevAddr, fmt.Errorf("trace: unencodable op class %d", in.Op)
	}
	flags := uint8(in.Op)
	if in.Taken {
		flags |= 1 << 3
	}
	if in.Mispred {
		flags |= 1 << 4
	}
	if in.IsMem() {
		lg, err := sizeLog2(in.Size)
		if err != nil {
			return buf, prevAddr, err
		}
		flags |= lg << 5
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(in.Dst+1))
	buf = binary.AppendUvarint(buf, uint64(in.Src1+1))
	buf = binary.AppendUvarint(buf, uint64(in.Src2+1))
	if in.IsMem() {
		buf = binary.AppendUvarint(buf, zigzag(int64(in.Addr-prevAddr)))
		prevAddr = in.Addr
	}
	return buf, prevAddr, nil
}

// decodeRecord decodes one record from buf into out (Seq and WrongPath are
// left untouched; the caller owns positioning). It returns the remaining
// buffer and the updated address-delta base.
func decodeRecord(buf []byte, out *isa.Inst, prevAddr uint64) ([]byte, uint64, error) {
	if len(buf) == 0 {
		return nil, prevAddr, fmt.Errorf("trace: truncated record")
	}
	flags := buf[0]
	buf = buf[1:]
	out.Op = isa.OpClass(flags & 7)
	out.Taken = flags&(1<<3) != 0
	out.Mispred = flags&(1<<4) != 0
	reg := func() (int16, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 || v > uint64(isa.NumRegs) {
			return 0, fmt.Errorf("trace: bad register field")
		}
		buf = buf[n:]
		return int16(v) - 1, nil
	}
	var err error
	if out.Dst, err = reg(); err != nil {
		return nil, prevAddr, err
	}
	if out.Src1, err = reg(); err != nil {
		return nil, prevAddr, err
	}
	if out.Src2, err = reg(); err != nil {
		return nil, prevAddr, err
	}
	if out.Op.IsMem() {
		d, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, prevAddr, fmt.Errorf("trace: bad address delta")
		}
		buf = buf[n:]
		prevAddr += uint64(unzigzag(d))
		out.Addr = prevAddr
		out.Size = 1 << ((flags >> 5) & 3)
	} else {
		out.Addr, out.Size = 0, 0
	}
	return buf, prevAddr, nil
}

// foldRecord feeds the record's canonical form into the content digest. The
// canonical form is independent of block size and wire encoding, so the
// digest identifies the instruction stream itself, not its storage layout.
func foldRecord(h hash.Hash, in *isa.Inst) {
	var b [17]byte
	b[0] = uint8(in.Op)
	b[1] = in.Size
	if in.Taken {
		b[2] |= 1
	}
	if in.Mispred {
		b[2] |= 2
	}
	binary.LittleEndian.PutUint16(b[3:], uint16(in.Dst))
	binary.LittleEndian.PutUint16(b[5:], uint16(in.Src1))
	binary.LittleEndian.PutUint16(b[7:], uint16(in.Src2))
	binary.LittleEndian.PutUint64(b[9:], in.Addr)
	h.Write(b[:])
}
