package trace

import (
	"fmt"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/workload"
)

// Source replays a trace as a workload.Source. It decodes one block at a
// time (the whole trace is never materialised), re-synthesises the
// wrong-path stream from the header's wrong-path seed, and implements
// workload.Snapshottable so internal/ckpt checkpoints and resumes
// trace-driven simulation exactly as it does live generation.
//
// Replay is bit-identical to the live source the trace was recorded from:
// the committed path is the recorded stream, and the wrong-path
// synthesiser starts from the recorded initial state and observes the same
// committed memory references. A Source that runs past the recording falls
// back to live generation of the same (benchmark, seed) — correct, but it
// pays a one-time fast-forward over the recorded prefix and requires the
// benchmark to exist in this build.
type Source struct {
	t  *Trace
	wp *workload.WrongPathSynth

	pos      uint64     // next record index (== instructions consumed)
	buf      []isa.Inst // current block, shared via Trace.Block — never written
	bufStart uint64     // record index of buf[0]; len(buf) == 0 means no block loaded
	// over generates instructions past the recording (lazily built).
	over *workload.Generator
}

// Source returns a fresh replay cursor at the start of the trace. The
// first call fully verifies the trace (block and content digests), so a
// corrupt file fails here rather than mid-simulation; later calls reuse
// the cached verdict.
func (t *Trace) Source() (*Source, error) {
	if err := t.Verify(); err != nil {
		return nil, err
	}
	return &Source{t: t, wp: workload.NewWrongPathSynth(t.meta.WPInit)}, nil
}

// Name implements workload.Source.
func (s *Source) Name() string { return s.t.meta.Bench }

// Suite implements workload.Source.
func (s *Source) Suite() workload.Suite { return s.t.meta.Suite }

// loadBlock points the cursor at the block holding record index pos,
// fetched through the trace's shared decoded-block cache so lanes replaying
// the same recording decode each block once per group, not once per lane.
// The trace was fully verified at Source construction and the file image is
// immutable in memory, so a decode failure here is unreachable short of
// memory corruption — it panics rather than returning an error the Source
// interface has no channel for.
func (s *Source) loadBlock(pos uint64) {
	i := s.t.blockFor(pos)
	buf, err := s.t.Block(i)
	if err != nil {
		panic(fmt.Sprintf("trace: %s: verified block %d failed to decode: %v", s.t.meta.Bench, i, err))
	}
	s.buf = buf
	s.bufStart = s.t.blocks[i].start
}

// inBuf reports whether record index pos is in the decoded block.
func (s *Source) inBuf(pos uint64) bool {
	return len(s.buf) > 0 && pos >= s.bufStart && pos < s.bufStart+uint64(len(s.buf))
}

// Next implements workload.Source.
func (s *Source) Next(out *isa.Inst) {
	if s.pos < s.t.meta.Records {
		if !s.inBuf(s.pos) {
			s.loadBlock(s.pos)
		}
		*out = s.buf[s.pos-s.bufStart]
		s.pos++
		if out.IsMem() {
			s.wp.NoteMem(out.Addr)
		}
		return
	}
	s.overflow().Next(out)
	if out.IsMem() {
		s.wp.NoteMem(out.Addr)
	}
}

// WrongPath implements workload.Source.
func (s *Source) WrongPath(out *isa.Inst) { s.wp.WrongPath(out) }

// Warmup implements workload.Source in count mode: records are walked in
// the block buffer — counted, memory references fed to access and the
// wrong-path ring — without being copied out one instruction at a time.
func (s *Source) Warmup(n uint64, access func(addr uint64)) {
	for n > 0 && s.pos < s.t.meta.Records {
		if !s.inBuf(s.pos) {
			s.loadBlock(s.pos)
		}
		span := s.bufStart + uint64(len(s.buf)) - s.pos
		if span > n {
			span = n
		}
		base := s.pos - s.bufStart
		for i := uint64(0); i < span; i++ {
			in := &s.buf[base+i]
			if in.IsMem() {
				s.wp.NoteMem(in.Addr)
				access(in.Addr)
			}
		}
		s.pos += span
		n -= span
	}
	if n > 0 {
		var in isa.Inst
		for i := uint64(0); i < n; i++ {
			s.Next(&in)
			if in.IsMem() {
				access(in.Addr)
			}
		}
	}
}

// overflow returns the past-the-recording generator, building it on first
// use: the benchmark is reconstructed live and fast-forwarded over the
// recorded prefix, exactly as workload.Replay does when a recording runs
// out.
func (s *Source) overflow() *workload.Generator {
	if s.over == nil {
		prof, err := workload.ByName(s.t.meta.Bench)
		if err != nil {
			panic(fmt.Sprintf("trace: %d-instruction recording of %q exhausted and the benchmark is not in this build: %v",
				s.t.meta.Records, s.t.meta.Bench, err))
		}
		s.over = prof.New(s.t.meta.Seed)
		var tmp isa.Inst
		for i := uint64(0); i < s.t.meta.Records; i++ {
			s.over.Next(&tmp)
		}
	}
	return s.over
}

// Snapshot implements workload.Snapshottable. Within the recording the
// state is the position plus the wrong-path synthesiser; past it, the
// overflow generator's state is complete (mirroring workload.Replay).
func (s *Source) Snapshot() *workload.SourceState {
	if s.over != nil {
		st := s.over.Snapshot()
		s.wp.CaptureTo(st)
		return st
	}
	st := &workload.SourceState{
		Version:  workload.StateVersion,
		Bench:    s.t.meta.Bench,
		Seed:     s.t.meta.Seed,
		Consumed: s.pos,
	}
	s.wp.CaptureTo(st)
	return st
}

// Restore implements workload.Snapshottable. Snapshots within the recording
// restore by an O(1) seek (one block decode on the next read); snapshots
// past it restore onto the overflow generator using the snapshot's kernel
// state.
func (s *Source) Restore(st *workload.SourceState) error {
	switch {
	case st.Version != workload.StateVersion:
		return fmt.Errorf("trace: snapshot state version %d, this build speaks %d", st.Version, workload.StateVersion)
	case st.Bench != s.t.meta.Bench:
		return fmt.Errorf("trace: snapshot of %q cannot restore trace of %q", st.Bench, s.t.meta.Bench)
	case st.Seed != s.t.meta.Seed:
		return fmt.Errorf("trace: snapshot of %s seed %d cannot restore seed %d", st.Bench, st.Seed, s.t.meta.Seed)
	}
	if err := s.wp.RestoreFrom(st); err != nil {
		return err
	}
	if st.Consumed <= s.t.meta.Records {
		s.pos = st.Consumed
		s.over = nil
		return nil
	}
	if st.Kernel == nil {
		return fmt.Errorf("trace: snapshot of %s at %d exceeds the %d-instruction recording and has no kernel state",
			st.Bench, st.Consumed, s.t.meta.Records)
	}
	prof, err := workload.ByName(s.t.meta.Bench)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	over := prof.New(s.t.meta.Seed)
	if err := over.Restore(st); err != nil {
		return err
	}
	s.pos = s.t.meta.Records
	s.over = over
	return nil
}

// Compile-time interface checks: a trace Source is a full workload source.
var (
	_ workload.Source        = (*Source)(nil)
	_ workload.Snapshottable = (*Source)(nil)
	_ workload.Source        = (*Recorder)(nil)
	_ workload.Snapshottable = (*workload.Generator)(nil)
)

// SourceFor returns the workload source a run of (cfg, prof, seed) should
// consume: a replay of cfg.TracePath when the configuration is
// trace-driven, the live generator otherwise. For trace-driven configs the
// trace must match the job — same benchmark, same seed, and (when the
// config carries one) the same content digest — so a stale or mislabelled
// file fails loudly instead of silently simulating the wrong workload.
func SourceFor(cfg *config.Config, prof workload.Profile, seed uint64) (workload.Snapshottable, error) {
	if cfg.TracePath == "" {
		if cfg.TraceDigest != "" {
			return nil, fmt.Errorf("trace: config demands trace digest %s but names no trace file", cfg.TraceDigest)
		}
		return prof.New(seed), nil
	}
	t, err := Cached(cfg.TracePath)
	if err != nil {
		return nil, err
	}
	m := t.Meta()
	if m.Bench != prof.Name {
		return nil, fmt.Errorf("trace: %s records %q, job runs %q", cfg.TracePath, m.Bench, prof.Name)
	}
	if m.Seed != seed {
		return nil, fmt.Errorf("trace: %s records seed %d, job runs seed %d", cfg.TracePath, m.Seed, seed)
	}
	if cfg.TraceDigest != "" && cfg.TraceDigest != m.Digest {
		return nil, fmt.Errorf("trace: %s has content digest %s, config demands %s (file replaced since the config was keyed?)",
			cfg.TracePath, m.Digest, cfg.TraceDigest)
	}
	return t.Source()
}

// Resolve stamps cfg.TraceDigest from the file at cfg.TracePath (a no-op
// for non-trace configs). Callers that key caches or artifacts off the
// configuration — sweep grids, bench points — resolve first, so the
// identity (config.Config.Hash, WarmKey, sweep job keys) is
// content-addressed rather than path-addressed.
func Resolve(cfg *config.Config) error {
	if cfg.TracePath == "" {
		return nil
	}
	t, err := Cached(cfg.TracePath)
	if err != nil {
		return err
	}
	cfg.TraceDigest = t.Meta().Digest
	return nil
}

// BenchPath is the naming convention binding a benchmark instantiation to
// a trace file inside a directory: <dir>/<bench>-s<seed>.elt. cmd/elsqtrace
// record writes it; the -tracedir modes of cmd/elsqsweep and cmd/elsqbench
// expect it.
func BenchPath(dir, bench string, seed uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-s%d.elt", bench, seed))
}
