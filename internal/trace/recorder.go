package trace

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"

	"repro/internal/isa"
	"repro/internal/workload"
)

// Recorder wraps a workload source and tees every committed-path
// instruction it delivers into a streaming .elt encoder. It implements
// workload.Source itself, so a simulation can run normally while its
// instruction stream is captured; alternatively Record drains the source
// without a consumer. Wrong-path instructions pass through unrecorded —
// replay re-synthesises them bit-identically from the header's wrong-path
// seed.
//
// Encoding errors are sticky: the stream keeps flowing to the consumer (the
// Source interface has no error channel) and Close reports the first
// failure — a recording is only valid if Close returns nil.
type Recorder struct {
	src workload.Snapshottable

	w            io.Writer
	blockRecords int
	raw          []byte // current block's encoded payload
	blockCount   int    // records in the current block
	prevAddr     uint64 // address-delta base (reset per block)
	count        uint64 // records written overall
	digest       hash.Hash
	fw           *flate.Writer
	comp         bytes.Buffer
	err          error
	closed       bool
}

// NewRecorder starts a recording of src onto w. The source must be fresh
// (no instructions consumed yet): the header captures the source identity
// and initial wrong-path state, which is only well-defined at position
// zero. The caller must Close the recorder to flush the final block and
// trailer.
func NewRecorder(w io.Writer, src workload.Snapshottable) (*Recorder, error) {
	return newRecorder(w, src, DefaultBlockRecords)
}

// newRecorder is NewRecorder with an explicit block granularity (tests
// exercise multi-block files without multi-thousand-instruction streams).
func newRecorder(w io.Writer, src workload.Snapshottable, blockRecords int) (*Recorder, error) {
	if blockRecords < 1 {
		return nil, fmt.Errorf("trace: records-per-block %d out of range", blockRecords)
	}
	st := src.Snapshot()
	if st.Consumed != 0 {
		return nil, fmt.Errorf("trace: recording must start from a fresh source (%s has consumed %d instructions)",
			src.Name(), st.Consumed)
	}
	r := &Recorder{
		src:          src,
		w:            w,
		blockRecords: blockRecords,
		digest:       sha256.New(),
	}
	m := Meta{
		FormatVersion: FormatVersion,
		StateVersion:  st.Version,
		Bench:         src.Name(),
		Suite:         src.Suite(),
		Seed:          st.Seed,
		WPInit:        st.WpRNG,
		BlockRecords:  blockRecords,
	}
	foldHeader(r.digest, &m)
	if err := r.writeHeader(&m); err != nil {
		return nil, err
	}
	return r, nil
}

// writeHeader emits the magic and header fields.
func (r *Recorder) writeHeader(m *Meta) error {
	var buf []byte
	buf = append(buf, magicHead...)
	buf = binary.AppendUvarint(buf, uint64(m.FormatVersion))
	buf = binary.AppendUvarint(buf, uint64(m.StateVersion))
	buf = binary.AppendUvarint(buf, uint64(len(m.Bench)))
	buf = append(buf, m.Bench...)
	buf = append(buf, byte(m.Suite))
	buf = binary.AppendUvarint(buf, m.Seed)
	buf = binary.AppendUvarint(buf, m.WPInit)
	buf = binary.AppendUvarint(buf, uint64(m.BlockRecords))
	_, err := r.w.Write(buf)
	return err
}

// Name implements workload.Source.
func (r *Recorder) Name() string { return r.src.Name() }

// Suite implements workload.Source.
func (r *Recorder) Suite() workload.Suite { return r.src.Suite() }

// Next implements workload.Source: it delivers the source's next committed
// instruction and records it.
func (r *Recorder) Next(out *isa.Inst) {
	r.src.Next(out)
	r.record(out)
}

// WrongPath implements workload.Source. Wrong-path instructions are pass-
// through: they are squashed state, re-synthesised at replay.
func (r *Recorder) WrongPath(out *isa.Inst) { r.src.WrongPath(out) }

// Warmup implements workload.Source. Unlike the wrapped source's count
// mode, every warm-up instruction must be materialised to be recorded, so
// this walks Next — recording trades the count-mode speed-up for the
// on-disk artifact.
func (r *Recorder) Warmup(n uint64, access func(addr uint64)) {
	var in isa.Inst
	for i := uint64(0); i < n; i++ {
		r.Next(&in)
		if in.IsMem() {
			access(in.Addr)
		}
	}
}

// Record drains n instructions from the source into the recording without
// a consumer (the cmd/elsqtrace record path).
func (r *Recorder) Record(n uint64) error {
	var in isa.Inst
	for i := uint64(0); i < n; i++ {
		r.Next(&in)
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// record encodes one delivered instruction.
func (r *Recorder) record(in *isa.Inst) {
	if r.err != nil {
		return
	}
	if r.closed {
		r.err = fmt.Errorf("trace: record after Close")
		return
	}
	if in.Seq != r.count {
		// The committed path is the program order; a gap means the wrapped
		// source and the recording have diverged.
		r.err = fmt.Errorf("trace: source delivered seq %d as record %d", in.Seq, r.count)
		return
	}
	r.raw, r.prevAddr, r.err = appendRecord(r.raw, in, r.prevAddr)
	if r.err != nil {
		return
	}
	foldRecord(r.digest, in)
	r.count++
	r.blockCount++
	if r.blockCount == r.blockRecords {
		r.err = r.flushBlock()
	}
}

// flushBlock compresses and writes the current block.
func (r *Recorder) flushBlock() error {
	if r.blockCount == 0 {
		return nil
	}
	r.comp.Reset()
	if r.fw == nil {
		fw, err := flate.NewWriter(&r.comp, flate.DefaultCompression)
		if err != nil {
			return err
		}
		r.fw = fw
	} else {
		r.fw.Reset(&r.comp)
	}
	if _, err := r.fw.Write(r.raw); err != nil {
		return err
	}
	if err := r.fw.Close(); err != nil {
		return err
	}
	sum := sha256.Sum256(r.raw)
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(r.raw)))
	hdr = binary.AppendUvarint(hdr, uint64(r.blockCount))
	hdr = append(hdr, sum[:8]...)
	hdr = binary.AppendUvarint(hdr, uint64(r.comp.Len()))
	if _, err := r.w.Write(hdr); err != nil {
		return err
	}
	if _, err := r.w.Write(r.comp.Bytes()); err != nil {
		return err
	}
	r.raw = r.raw[:0]
	r.blockCount = 0
	r.prevAddr = 0
	return nil
}

// Count returns the number of instructions recorded so far.
func (r *Recorder) Count() uint64 { return r.count }

// Close flushes the final block, terminator and trailer, and returns the
// first error of the whole recording. The wrapped source remains usable.
func (r *Recorder) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.err != nil {
		return r.err
	}
	if r.err = r.flushBlock(); r.err != nil {
		return r.err
	}
	var buf []byte
	buf = append(buf, 0) // terminator: zero raw length
	buf = append(buf, magicTail...)
	buf = binary.LittleEndian.AppendUint64(buf, r.count)
	buf = append(buf, r.digest.Sum(nil)[:16]...)
	buf = append(buf, magicEnd...)
	_, r.err = r.w.Write(buf)
	return r.err
}
