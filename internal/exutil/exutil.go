// Package exutil is the tiny shared harness behind examples/*: every
// example takes the same -insts/-warmup budget flags (so the smoke test can
// shrink them) and runs simulations through the simrun point API, so the
// examples demonstrate the supported entry point instead of hand-wiring
// simulator internals.
package exutil

import (
	"flag"
	"log"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/oracle"
	"repro/internal/simrun"
)

// Budget is the per-simulation instruction budget an example runs at.
type Budget struct {
	// Insts is the measured instruction count; Warmup the functional
	// warm-up count.
	Insts, Warmup uint64
}

// ParseBudget registers the shared -insts/-warmup flags (warm-up defaults
// to config.Default()'s), parses the command line and returns the chosen
// budget. Call it once at the top of an example's main.
func ParseBudget(defaultInsts uint64) Budget {
	insts := flag.Uint64("insts", defaultInsts, "measured instructions per simulation")
	warmup := flag.Uint64("warmup", config.Default().WarmupInsts, "functional warm-up instructions")
	flag.Parse()
	return Budget{Insts: *insts, Warmup: *warmup}
}

// Apply returns cfg with the budget applied.
func (b Budget) Apply(cfg config.Config) config.Config {
	return cfg.WithBudget(b.Insts, b.Warmup)
}

// MustRun simulates one benchmark at the budget and returns the result,
// exiting the example on any error.
func (b Budget) MustRun(cfg config.Config, bench string) *cpu.Result {
	out, err := simrun.Point{Config: b.Apply(cfg), Bench: bench, Seed: 1}.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	return out.Result
}

// MustCertify is MustRun with the differential oracle attached: it exits
// the example on any simulation error or sequential-semantics violation and
// returns the result plus the clean checker (for its certification counts).
func (b Budget) MustCertify(cfg config.Config, bench string) (*cpu.Result, *oracle.Checker) {
	out, err := simrun.Point{Config: b.Apply(cfg), Bench: bench, Seed: 1, Oracle: true}.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := out.Oracle.Err(); err != nil {
		log.Fatal(err)
	}
	return out.Result, out.Oracle
}
