package mem

// Cache and hierarchy checkpointing: CacheState / HierarchyState are the
// serialisable images of the warm memory state a functional warm-up leaves
// behind. Restoring them onto a freshly built hierarchy of identical
// geometry is bit-equivalent to replaying the warm-up's access sequence —
// lines, LRU ticks, the use clock and the hit/miss counters all carry over,
// so a resumed simulation observes exactly the caches a fresh run would.

import (
	"encoding/binary"
	"fmt"
)

// lineStateBytes is the packed on-disk size of one line: tagv (8 bytes),
// use (4), locks (4), little-endian.
const lineStateBytes = 16

// CacheState is the serialisable image of one cache level.
type CacheState struct {
	// Sets, Ways and LineBytes pin the geometry the image belongs to;
	// SetState refuses a mismatch.
	Sets      int `json:"sets"`
	Ways      int `json:"ways"`
	LineBytes int `json:"line_bytes"`
	// UseClock is the LRU clock.
	UseClock uint32 `json:"use_clock"`
	// Accesses and Misses are the lookup/miss counters.
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
	// Lines holds every line's bookkeeping, set-major, lineStateBytes each
	// (JSON-encodes as base64 — the L2 image dominates a checkpoint's size).
	Lines []byte `json:"lines"`
}

// State captures the cache's complete mutable state.
func (c *Cache) State() *CacheState {
	st := &CacheState{
		Sets:      c.cfg.Sets(),
		Ways:      c.ways,
		LineBytes: c.cfg.LineBytes,
		UseClock:  c.useClock,
		Accesses:  c.Accesses,
		Misses:    c.Misses,
		Lines:     make([]byte, len(c.lines)*lineStateBytes),
	}
	for i, l := range c.lines {
		b := st.Lines[i*lineStateBytes:]
		binary.LittleEndian.PutUint64(b, l.tagv)
		binary.LittleEndian.PutUint32(b[8:], l.use)
		binary.LittleEndian.PutUint32(b[12:], uint32(l.locks))
	}
	return st
}

// SetState overwrites the cache's state with a captured image. The image's
// geometry must match the cache's; the image itself is only read, so one
// image may restore many caches concurrently.
func (c *Cache) SetState(st *CacheState) error {
	if st.Sets != c.cfg.Sets() || st.Ways != c.ways || st.LineBytes != c.cfg.LineBytes {
		return fmt.Errorf("mem: state geometry %dx%dx%dB does not match cache %dx%dx%dB",
			st.Sets, st.Ways, st.LineBytes, c.cfg.Sets(), c.ways, c.cfg.LineBytes)
	}
	if len(st.Lines) != len(c.lines)*lineStateBytes {
		return fmt.Errorf("mem: state image is %d bytes, want %d", len(st.Lines), len(c.lines)*lineStateBytes)
	}
	for i := range c.lines {
		b := st.Lines[i*lineStateBytes:]
		c.lines[i] = line{
			tagv:  binary.LittleEndian.Uint64(b),
			use:   binary.LittleEndian.Uint32(b[8:]),
			locks: int32(binary.LittleEndian.Uint32(b[12:])),
		}
	}
	c.useClock = st.UseClock
	c.Accesses = st.Accesses
	c.Misses = st.Misses
	return nil
}

// HierarchyState is the serialisable image of the whole memory hierarchy.
type HierarchyState struct {
	L1 *CacheState `json:"l1"`
	L2 *CacheState `json:"l2"`
	// L1Accesses is the hierarchy-level data-cache access counter.
	L1Accesses uint64 `json:"l1_accesses"`
}

// State captures both cache levels and the hierarchy counters.
func (h *Hierarchy) State() *HierarchyState {
	return &HierarchyState{L1: h.L1.State(), L2: h.L2.State(), L1Accesses: h.L1Accesses}
}

// SetState restores both cache levels and the hierarchy counters.
func (h *Hierarchy) SetState(st *HierarchyState) error {
	if st == nil || st.L1 == nil || st.L2 == nil {
		return fmt.Errorf("mem: incomplete hierarchy state")
	}
	if err := h.L1.SetState(st.L1); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := h.L2.SetState(st.L2); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	h.L1Accesses = st.L1Accesses
	return nil
}
