package mem

import (
	"encoding/json"
	"testing"

	"repro/internal/config"
)

func testGeom() config.CacheConfig {
	return config.CacheConfig{SizeBytes: 4 << 10, Ways: 4, LineBytes: 32, LatencyCycles: 1}
}

// TestCacheStateRoundTrip restores a captured image (through the JSON
// encoding the disk store uses) onto a fresh cache and requires identical
// observable behaviour from both.
func TestCacheStateRoundTrip(t *testing.T) {
	a := NewCache(testGeom())
	for i := uint64(0); i < 10_000; i++ {
		addr := (i * 2654435761) % (64 << 10)
		if _, hit := a.Access(addr); !hit {
			a.allocateMissed(addr)
		}
	}
	a.Lock(LineSlot{Set: 3, Way: 1})

	buf, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st CacheState
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatal(err)
	}
	b := NewCache(testGeom())
	if err := b.SetState(&st); err != nil {
		t.Fatal(err)
	}

	if b.Accesses != a.Accesses || b.Misses != a.Misses || b.useClock != a.useClock {
		t.Fatalf("counters diverged: %d/%d/%d vs %d/%d/%d",
			b.Accesses, b.Misses, b.useClock, a.Accesses, a.Misses, a.useClock)
	}
	if !b.Locked(LineSlot{Set: 3, Way: 1}) {
		t.Error("lock count not restored")
	}
	for i := range a.lines {
		if a.lines[i] != b.lines[i] {
			t.Fatalf("line %d diverged: %+v vs %+v", i, a.lines[i], b.lines[i])
		}
	}
	// Behavioural equivalence: the same access sequence produces the same
	// hit/miss and victim decisions on both.
	b.Unlock(LineSlot{Set: 3, Way: 1})
	a.Unlock(LineSlot{Set: 3, Way: 1})
	for i := uint64(0); i < 5_000; i++ {
		addr := (i * 40503) % (64 << 10)
		sa, ha := a.Access(addr)
		sb, hb := b.Access(addr)
		if ha != hb || sa != sb {
			t.Fatalf("access %d diverged: (%v,%v) vs (%v,%v)", i, sa, ha, sb, hb)
		}
		if !ha {
			va, oka := a.allocateMissed(addr)
			vb, okb := b.allocateMissed(addr)
			if va != vb || oka != okb {
				t.Fatalf("fill %d diverged: (%v,%v) vs (%v,%v)", i, va, oka, vb, okb)
			}
		}
	}
}

func TestCacheStateRejectsGeometryMismatch(t *testing.T) {
	st := NewCache(testGeom()).State()
	other := testGeom()
	other.Ways = 2
	if err := NewCache(other).SetState(st); err == nil {
		t.Error("SetState accepted an image of different geometry")
	}
	short := *st
	short.Lines = short.Lines[:len(short.Lines)-1]
	same := NewCache(testGeom())
	if err := same.SetState(&short); err == nil {
		t.Error("SetState accepted a truncated line image")
	}
}

func TestHierarchyStateRoundTrip(t *testing.T) {
	cfg := config.Default()
	a := NewHierarchy(&cfg)
	for i := uint64(0); i < 50_000; i++ {
		a.Access((i * 7919) % (8 << 20))
	}
	st := a.State()
	b := NewHierarchy(&cfg)
	if err := b.SetState(st); err != nil {
		t.Fatal(err)
	}
	if b.L1Accesses != a.L1Accesses {
		t.Fatalf("L1Accesses %d, want %d", b.L1Accesses, a.L1Accesses)
	}
	for i := uint64(0); i < 20_000; i++ {
		addr := (i * 104729) % (8 << 20)
		la, lata := a.Access(addr)
		lb, latb := b.Access(addr)
		if la != lb || lata != latb {
			t.Fatalf("access %d diverged: (%v,%d) vs (%v,%d)", i, la, lata, lb, latb)
		}
	}
}

// TestLRUOrderAcrossClockWrap drives the use clock across the
// renormalisation boundary and requires victim selection to keep following
// true recency order. The pre-fix saturating downshift collapsed the older
// half of the tick range to zero, so a line more recent than its set-mate
// (but below the shift threshold) could tie at zero and — sitting in an
// earlier way — be evicted in its place.
func TestLRUOrderAcrossClockWrap(t *testing.T) {
	c := NewCache(testGeom())
	set0 := func(addr uint64) uint64 { return addr * uint64(c.cfg.Sets()) * uint64(c.cfg.LineBytes) } // all map to set 0

	// Fill set 0 with four lines, touched in way order 0..3.
	for w := uint64(0); w < 4; w++ {
		c.allocateMissed(set0(w))
	}
	// Way 0 is touched at a tick below the old shift threshold, way 1 far
	// above it, so the old renormalisation would order way 1 > way 0 = 0 —
	// correct here. The inversion needs the *younger* line in the earlier
	// way, so re-touch way 1's line first and way 0's line second, both
	// below the threshold, then push the rest of the set above it.
	c.useClock = 1 << 29
	c.Access(set0(1)) // older of the collapsing pair
	c.Access(set0(0)) // younger: must NOT become the victim
	c.useClock = ^uint32(0) - 8
	c.Access(set0(2))
	c.Access(set0(3)) // these cross-threshold touches ride the wrap below

	// Cross the renormalisation boundary with touches to ways 2 and 3 only.
	for i := 0; i < 12; i++ {
		c.Access(set0(uint64(2 + i%2)))
	}
	if c.useClock >= ^uint32(0)-16 {
		t.Fatalf("clock did not renormalise: %#x", c.useClock)
	}

	// True LRU order is way1 < way0 < {2,3}: the victim must be way 1.
	slot, ok := c.Allocate(set0(9))
	if !ok {
		t.Fatal("allocation failed")
	}
	if slot.Way != 1 {
		t.Errorf("victim = way %d, want way 1 (LRU order lost across clock wrap)", slot.Way)
	}

	// Next victim must be way 0.
	slot, ok = c.Allocate(set0(10))
	if !ok {
		t.Fatal("allocation failed")
	}
	if slot.Way != 0 {
		t.Errorf("second victim = way %d, want way 0", slot.Way)
	}
}

// TestRenormalisePreservesOrderProperty fuzzes renormalise directly: for
// random per-set use patterns, the full victim order of every set must be
// identical before and after renormalisation.
func TestRenormalisePreservesOrderProperty(t *testing.T) {
	c := NewCache(testGeom())
	seed := uint64(12345)
	rnd := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 16
	}
	for i := range c.lines {
		c.lines[i] = line{tagv: mkTagv(uint64(i)), use: uint32(rnd())}
	}
	order := func() []int {
		var out []int
		for s := 0; s < c.cfg.Sets(); s++ {
			base := s * c.ways
			picked := make([]bool, c.ways)
			for n := 0; n < c.ways; n++ {
				best, bestUse := -1, ^uint32(0)
				for w := 0; w < c.ways; w++ {
					if !picked[w] && c.lines[base+w].use < bestUse {
						best, bestUse = w, c.lines[base+w].use
					}
				}
				picked[best] = true
				out = append(out, best)
			}
		}
		return out
	}
	before := order()
	c.renormalise()
	after := order()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("victim order diverged at position %d: %d vs %d", i, before[i], after[i])
		}
	}
	for i := range c.lines {
		if c.lines[i].use >= uint32(c.ways) {
			t.Fatalf("line %d rank %d not compacted below ways", i, c.lines[i].use)
		}
	}
}
