package mem

import "repro/internal/config"

// Level identifies where an access was satisfied.
type Level uint8

const (
	// LevelL1 means the access hit in the first-level cache.
	LevelL1 Level = iota
	// LevelL2 means the access missed L1 and hit L2.
	LevelL2
	// LevelMem means the access went to main memory.
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	default:
		return "mem"
	}
}

// Hierarchy is the two-level cache plus main memory of Table 1. It is purely
// functional state: latency composition and port contention are handled by
// the pipeline model.
type Hierarchy struct {
	// L1 and L2 are the cache levels.
	L1, L2 *Cache
	// Latencies per level.
	l1Lat, l2Lat, memLat int
	// L1Accesses counts data-cache accesses for the paper's Table 2 "Cache"
	// column (loads issued + stores committed + re-executions).
	L1Accesses uint64
}

// NewHierarchy builds the hierarchy from a full processor configuration.
func NewHierarchy(cfg *config.Config) *Hierarchy {
	return NewHierarchyIn(cfg, nil)
}

// HierarchyLines returns the number of line records a hierarchy built from
// cfg occupies — the size a shared LineArena must reserve per lane.
func HierarchyLines(cfg *config.Config) int {
	return cfg.L1.Lines() + cfg.L2.Lines()
}

// NewHierarchyIn is NewHierarchy with both levels' line arrays carved from
// arena (nil arena allocates privately). The arena must have at least
// HierarchyLines(cfg) records remaining.
func NewHierarchyIn(cfg *config.Config, arena *LineArena) *Hierarchy {
	return &Hierarchy{
		L1:     NewCacheIn(cfg.L1, arena),
		L2:     NewCacheIn(cfg.L2, arena),
		l1Lat:  cfg.L1.LatencyCycles,
		l2Lat:  cfg.L2.LatencyCycles,
		memLat: cfg.MemLatency,
	}
}

// Access simulates a load or store reference to addr. It returns the level
// that satisfied it and the access latency in cycles. Lines are allocated in
// both levels on miss (write-allocate, inclusive).
func (h *Hierarchy) Access(addr uint64) (Level, int) {
	h.L1Accesses++
	if _, hit := h.L1.Access(addr); hit {
		return LevelL1, h.l1Lat
	}
	if _, hit := h.L2.Access(addr); hit {
		h.L1.allocateMissed(addr)
		return LevelL2, h.l2Lat
	}
	h.L2.allocateMissed(addr)
	h.L1.allocateMissed(addr)
	return LevelMem, h.memLat
}

// Probe reports which level currently holds addr without perturbing LRU or
// counters. Used by the workload calibration tests.
func (h *Hierarchy) Probe(addr uint64) Level {
	if _, hit := h.L1.Lookup(addr); hit {
		return LevelL1
	}
	if _, hit := h.L2.Lookup(addr); hit {
		return LevelL2
	}
	return LevelMem
}

// Latency returns the total access latency for a given satisfying level.
func (h *Hierarchy) Latency(l Level) int {
	switch l {
	case LevelL1:
		return h.l1Lat
	case LevelL2:
		return h.l2Lat
	default:
		return h.memLat
	}
}
