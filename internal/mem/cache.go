// Package mem implements the simulated memory hierarchy: set-associative
// write-allocate caches with true LRU replacement and per-line locking (the
// line-based Epoch Resolution Table pins referenced lines in the L1, Section
// 3.4 of the paper), backed by a fixed-latency main memory.
package mem

import (
	"fmt"
	"math/bits"

	"repro/internal/config"
)

// line is one cache line's bookkeeping.
type line struct {
	tag     uint64
	valid   bool
	lastUse uint64
	// locks counts active ERT references pinning this line (line-based ERT
	// only). A line with locks > 0 is never replaced.
	locks int
}

// Cache is a single set-associative cache level with LRU replacement and
// line locking.
type Cache struct {
	cfg      config.CacheConfig
	sets     [][]line
	setShift uint // log2(line bytes)
	setMask  uint64
	useClock uint64
	// Accesses and Misses count every lookup and every miss.
	Accesses, Misses uint64
}

// NewCache builds a cache from its geometry. It panics on degenerate
// geometry; validate configs with config.Validate first.
func NewCache(cfg config.CacheConfig) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("mem: set count %d must be a positive power of two", nsets))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: line size %d must be a power of two", cfg.LineBytes))
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(nsets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// setIndex returns the set holding addr.
func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.setShift) & c.setMask }

// tagOf returns the tag of addr.
func (c *Cache) tagOf(addr uint64) uint64 { return (addr >> c.setShift) / uint64(len(c.sets)) }

// LineSlot identifies a physical line (set, way) for the line-based ERT.
type LineSlot struct {
	Set, Way int
}

// SlotIndex returns a dense index for the slot, suitable for table indexing.
func (c *Cache) SlotIndex(s LineSlot) int { return s.Set*c.cfg.Ways + s.Way }

// NumSlots returns the number of physical lines.
func (c *Cache) NumSlots() int { return len(c.sets) * c.cfg.Ways }

// Lookup probes the cache without allocating. It returns the slot on hit.
func (c *Cache) Lookup(addr uint64) (LineSlot, bool) {
	set := int(c.setIndex(addr))
	tag := c.tagOf(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return LineSlot{Set: set, Way: w}, true
		}
	}
	return LineSlot{}, false
}

// Access performs a lookup, updates LRU, and reports hit/miss. On a miss it
// does NOT allocate; callers use Allocate so fills from the next level are
// explicit.
func (c *Cache) Access(addr uint64) (LineSlot, bool) {
	c.Accesses++
	c.useClock++
	slot, hit := c.Lookup(addr)
	if hit {
		c.sets[slot.Set][slot.Way].lastUse = c.useClock
		return slot, true
	}
	c.Misses++
	return LineSlot{}, false
}

// Allocate fills addr's line, evicting the LRU unlocked line. It returns the
// slot and ok=false when every way in the set is locked (the line-ERT
// overflow case the paper resolves by stalling or squashing).
func (c *Cache) Allocate(addr uint64) (LineSlot, bool) {
	set := int(c.setIndex(addr))
	tag := c.tagOf(addr)
	c.useClock++
	// Already present (e.g. racing fill): refresh.
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			l.lastUse = c.useClock
			return LineSlot{Set: set, Way: w}, true
		}
	}
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.locks > 0 {
			continue
		}
		if !l.valid {
			victim = w
			break
		}
		if l.lastUse < oldest {
			oldest = l.lastUse
			victim = w
		}
	}
	if victim < 0 {
		return LineSlot{}, false // all ways locked
	}
	c.sets[set][victim] = line{tag: tag, valid: true, lastUse: c.useClock}
	return LineSlot{Set: set, Way: victim}, true
}

// Lock pins the line at slot against replacement. Locks nest.
func (c *Cache) Lock(s LineSlot) { c.sets[s.Set][s.Way].locks++ }

// Unlock releases one lock on the line at slot.
func (c *Cache) Unlock(s LineSlot) {
	l := &c.sets[s.Set][s.Way]
	if l.locks <= 0 {
		panic("mem: unlock of unlocked line")
	}
	l.locks--
}

// Locked reports whether the line at slot has any active locks.
func (c *Cache) Locked(s LineSlot) bool { return c.sets[s.Set][s.Way].locks > 0 }

// LockedInSet returns how many ways of addr's set are currently locked.
func (c *Cache) LockedInSet(addr uint64) int {
	set := int(c.setIndex(addr))
	n := 0
	for w := range c.sets[set] {
		if c.sets[set][w].locks > 0 {
			n++
		}
	}
	return n
}

// MissRate returns Misses/Accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
