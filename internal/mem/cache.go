// Package mem implements the simulated memory hierarchy: set-associative
// write-allocate caches with true LRU replacement and per-line locking (the
// line-based Epoch Resolution Table pins referenced lines in the L1, Section
// 3.4 of the paper), backed by a fixed-latency main memory.
package mem

import (
	"fmt"
	"math/bits"

	"repro/internal/config"
)

// line is one cache line's bookkeeping, packed to 16 bytes so a 4-way set
// probe touches a single cache line of host memory: the simulated L2 alone
// spans megabytes, and the warm-up loop is bound by misses on this array.
type line struct {
	// tagv holds tag<<1 | valid.
	tagv uint64
	// use is the last-use tick for LRU (see Cache.useClock).
	use uint32
	// locks counts active ERT references pinning this line (line-based ERT
	// only). A line with locks > 0 is never replaced.
	locks int32
}

func (l *line) valid() bool    { return l.tagv&1 != 0 }
func mkTagv(tag uint64) uint64 { return tag<<1 | 1 }

// Cache is a single set-associative cache level with LRU replacement and
// line locking.
type Cache struct {
	cfg config.CacheConfig
	// lines is the flat set-major line array: set s occupies
	// lines[s*ways : (s+1)*ways]. Flat indexing keeps a probe to one
	// bounds check and no slice-header hop.
	lines    []line
	ways     int
	setShift uint // log2(line bytes)
	tagShift uint // log2(line bytes * set count)
	setMask  uint64
	// useClock ticks per access for LRU ordering. It is renormalised when
	// it would wrap uint32 (every ~4.3G accesses) by compacting every
	// set's use ticks to their per-set LRU rank, which preserves
	// replacement order exactly — victims are only ever chosen within a
	// set, so cross-set rank collisions are harmless.
	useClock uint32
	// Accesses and Misses count every lookup and every miss.
	Accesses, Misses uint64
}

// NewCache builds a cache from its geometry. It panics on degenerate
// geometry; validate configs with config.Validate first.
func NewCache(cfg config.CacheConfig) *Cache {
	return NewCacheIn(cfg, nil)
}

// LineArena is a contiguous pool of cache-line bookkeeping records shared
// by several caches: the batch engine carves every lane's L1 and L2 line
// arrays from one arena so same-geometry lanes sit adjacent in host
// memory. An arena must be sized with HierarchyLines (or cfg.Lines() per
// cache) before construction; Take-ing past the end panics.
type LineArena struct {
	lines []line
	off   int
}

// NewLineArena allocates an arena holding n line records.
func NewLineArena(n int) *LineArena {
	return &LineArena{lines: make([]line, n)}
}

// take carves n zeroed line records off the arena.
func (a *LineArena) take(n int) []line {
	if a.off+n > len(a.lines) {
		panic(fmt.Sprintf("mem: line arena exhausted: need %d of %d remaining", n, len(a.lines)-a.off))
	}
	s := a.lines[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// NewCacheIn is NewCache with the line array carved from arena (nil arena
// allocates privately, exactly like NewCache).
func NewCacheIn(cfg config.CacheConfig, arena *LineArena) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("mem: set count %d must be a positive power of two", nsets))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: line size %d must be a power of two", cfg.LineBytes))
	}
	lines := make([]line, nsets*cfg.Ways)
	if arena != nil {
		lines = arena.take(nsets * cfg.Ways)
	}
	setShift := uint(bits.TrailingZeros(uint(cfg.LineBytes)))
	return &Cache{
		cfg:      cfg,
		lines:    lines,
		ways:     cfg.Ways,
		setShift: setShift,
		tagShift: setShift + uint(bits.TrailingZeros(uint(nsets))),
		setMask:  uint64(nsets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// setIndex returns the set holding addr.
func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.setShift) & c.setMask }

// tagOf returns the tag of addr. The set count is a power of two (enforced
// by NewCache), so the division is a shift.
func (c *Cache) tagOf(addr uint64) uint64 { return addr >> c.tagShift }

// LineSlot identifies a physical line (set, way) for the line-based ERT.
type LineSlot struct {
	Set, Way int
}

// SlotIndex returns a dense index for the slot, suitable for table indexing.
func (c *Cache) SlotIndex(s LineSlot) int { return s.Set*c.cfg.Ways + s.Way }

// NumSlots returns the number of physical lines.
func (c *Cache) NumSlots() int { return len(c.lines) }

// Lookup probes the cache without allocating. It returns the slot on hit.
func (c *Cache) Lookup(addr uint64) (LineSlot, bool) {
	set := int(c.setIndex(addr))
	tagv := mkTagv(c.tagOf(addr))
	base := set * c.ways
	for w, l := range c.lines[base : base+c.ways] {
		if l.tagv == tagv {
			return LineSlot{Set: set, Way: w}, true
		}
	}
	return LineSlot{}, false
}

// Access performs a lookup, updates LRU, and reports hit/miss. On a miss it
// does NOT allocate; callers use Allocate so fills from the next level are
// explicit.
func (c *Cache) Access(addr uint64) (LineSlot, bool) {
	c.Accesses++
	c.tick()
	set := int(c.setIndex(addr))
	tagv := mkTagv(c.tagOf(addr))
	base := set * c.ways
	ways := c.lines[base : base+c.ways]
	for w := range ways {
		l := &ways[w]
		if l.tagv == tagv {
			l.use = c.useClock
			return LineSlot{Set: set, Way: w}, true
		}
	}
	c.Misses++
	return LineSlot{}, false
}

// tick advances the LRU clock, renormalising on uint32 wrap.
func (c *Cache) tick() {
	c.useClock++
	if c.useClock == ^uint32(0) {
		c.renormalise()
	}
}

// renormalise rewinds the LRU clock by compacting every set's use ticks to
// their per-set recency rank (0 = least recent). The earlier saturating
// downshift collapsed the older half of the tick range to zero, so a line
// still warm relative to its set-mates could tie with — and, sitting in an
// earlier way, lose to — a line idle for billions of accesses; rank
// compaction keeps every set's replacement order bit-exact across the wrap.
// Invalid lines (use 0, never above a valid line's tick) keep the lowest
// ranks and remain the preferred victims.
func (c *Cache) renormalise() {
	ranked := make([]uint32, c.ways) // renormalisation is ~once per 4.3G accesses
	for base := 0; base < len(c.lines); base += c.ways {
		set := c.lines[base : base+c.ways]
		for w := range set {
			var rank uint32
			for v := range set {
				if set[v].use < set[w].use || (set[v].use == set[w].use && v < w) {
					rank++
				}
			}
			ranked[w] = rank
		}
		for w := range set {
			set[w].use = ranked[w]
		}
	}
	// Strictly above every line's rank, so the renorm-triggering access
	// stamps a fresh maximum exactly as any other access would.
	c.useClock = uint32(c.ways)
}

// Allocate fills addr's line, evicting the LRU unlocked line. It returns the
// slot and ok=false when every way in the set is locked (the line-ERT
// overflow case the paper resolves by stalling or squashing).
func (c *Cache) Allocate(addr uint64) (LineSlot, bool) {
	set := int(c.setIndex(addr))
	tagv := mkTagv(c.tagOf(addr))
	c.tick()
	ways := c.lines[set*c.ways : set*c.ways+c.ways]
	// Already present (e.g. racing fill): refresh.
	for w := range ways {
		l := &ways[w]
		if l.tagv == tagv {
			l.use = c.useClock
			return LineSlot{Set: set, Way: w}, true
		}
	}
	return c.fill(set, tagv, ways)
}

// allocateMissed is Allocate for a caller that just observed a miss on addr
// with no intervening cache operations: the presence re-probe is skipped.
func (c *Cache) allocateMissed(addr uint64) (LineSlot, bool) {
	set := int(c.setIndex(addr))
	tagv := mkTagv(c.tagOf(addr))
	c.tick()
	return c.fill(set, tagv, c.lines[set*c.ways:set*c.ways+c.ways])
}

// fill victimises the LRU unlocked way of the set and installs tagv.
func (c *Cache) fill(set int, tagv uint64, ways []line) (LineSlot, bool) {
	victim := -1
	var oldest uint32 = ^uint32(0)
	for w := range ways {
		l := &ways[w]
		if l.locks > 0 {
			continue
		}
		if !l.valid() {
			victim = w
			break
		}
		if l.use < oldest {
			oldest = l.use
			victim = w
		}
	}
	if victim < 0 {
		return LineSlot{}, false // all ways locked
	}
	ways[victim] = line{tagv: tagv, use: c.useClock}
	return LineSlot{Set: set, Way: victim}, true
}

// Lock pins the line at slot against replacement. Locks nest.
func (c *Cache) Lock(s LineSlot) { c.lines[s.Set*c.ways+s.Way].locks++ }

// Unlock releases one lock on the line at slot.
func (c *Cache) Unlock(s LineSlot) {
	l := &c.lines[s.Set*c.ways+s.Way]
	if l.locks <= 0 {
		panic("mem: unlock of unlocked line")
	}
	l.locks--
}

// Locked reports whether the line at slot has any active locks.
func (c *Cache) Locked(s LineSlot) bool { return c.lines[s.Set*c.ways+s.Way].locks > 0 }

// LockedInSet returns how many ways of addr's set are currently locked.
func (c *Cache) LockedInSet(addr uint64) int {
	set := int(c.setIndex(addr))
	n := 0
	for w := 0; w < c.ways; w++ {
		if c.lines[set*c.ways+w].locks > 0 {
			n++
		}
	}
	return n
}

// MissRate returns Misses/Accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
