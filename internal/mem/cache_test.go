package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 32B lines = 256 bytes.
	return NewCache(config.CacheConfig{SizeBytes: 256, Ways: 2, LineBytes: 32, LatencyCycles: 1})
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache()
	if _, hit := c.Access(0x1000); hit {
		t.Fatal("cold access hit")
	}
	if _, ok := c.Allocate(0x1000); !ok {
		t.Fatal("allocate failed on empty set")
	}
	if _, hit := c.Access(0x1000); !hit {
		t.Fatal("access after allocate missed")
	}
	if _, hit := c.Access(0x101F); !hit {
		t.Fatal("same-line access missed")
	}
	if _, hit := c.Access(0x1020); hit {
		t.Fatal("next-line access hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("counters = %d/%d, want 4/2", c.Accesses, c.Misses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c := smallCache()
	// Three conflicting lines in a 2-way set: set = (addr>>5) & 3.
	a := uint64(0x0000) // set 0
	b := uint64(0x0080) // set 0 (0x80>>5 = 4, &3 = 0)
	d := uint64(0x0100) // set 0
	c.Allocate(a)
	c.Allocate(b)
	c.Access(a) // a is MRU, b is LRU
	c.Allocate(d)
	if _, hit := c.Lookup(b); hit {
		t.Error("LRU line b survived replacement")
	}
	if _, hit := c.Lookup(a); !hit {
		t.Error("MRU line a was evicted")
	}
}

func TestCacheLocking(t *testing.T) {
	c := smallCache()
	a, b, d := uint64(0x0000), uint64(0x0080), uint64(0x0100)
	sa, _ := c.Allocate(a)
	sb, _ := c.Allocate(b)
	c.Lock(sa)
	c.Lock(sb)
	if got := c.LockedInSet(a); got != 2 {
		t.Fatalf("LockedInSet = %d, want 2", got)
	}
	if _, ok := c.Allocate(d); ok {
		t.Fatal("allocated into a fully locked set")
	}
	c.Unlock(sb)
	slot, ok := c.Allocate(d)
	if !ok {
		t.Fatal("allocate failed after unlock")
	}
	if slot != sb {
		t.Errorf("victim slot = %+v, want the unlocked %+v", slot, sb)
	}
	if _, hit := c.Lookup(a); !hit {
		t.Error("locked line a was evicted")
	}
	if !c.Locked(sa) {
		t.Error("Locked(sa) = false")
	}
}

func TestCacheLockNesting(t *testing.T) {
	c := smallCache()
	s, _ := c.Allocate(0)
	c.Lock(s)
	c.Lock(s)
	c.Unlock(s)
	if !c.Locked(s) {
		t.Error("nested lock released too early")
	}
	c.Unlock(s)
	if c.Locked(s) {
		t.Error("lock not released")
	}
}

func TestUnlockPanicsWhenUnlocked(t *testing.T) {
	c := smallCache()
	s, _ := c.Allocate(0)
	defer func() {
		if recover() == nil {
			t.Error("Unlock on unlocked line did not panic")
		}
	}()
	c.Unlock(s)
}

func TestSlotIndexDense(t *testing.T) {
	c := smallCache()
	seen := make(map[int]bool)
	for set := 0; set < 4; set++ {
		for way := 0; way < 2; way++ {
			i := c.SlotIndex(LineSlot{Set: set, Way: way})
			if i < 0 || i >= c.NumSlots() {
				t.Fatalf("slot index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("slot index %d duplicated", i)
			}
			seen[i] = true
		}
	}
}

func TestCacheTagDisambiguation(t *testing.T) {
	// Two addresses with same set index but different tags must not alias.
	c := smallCache()
	c.Allocate(0x0000)
	if _, hit := c.Lookup(0x0080); hit {
		t.Error("tag aliasing: 0x80 hit after allocating 0x0")
	}
}

// Property: after allocating an address, looking it up hits, and the hit
// slot round-trips through SlotIndex.
func TestCacheAllocateLookupProperty(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 2048, Ways: 4, LineBytes: 32, LatencyCycles: 1}
	f := func(addrs []uint64) bool {
		c := NewCache(cfg)
		for _, a := range addrs {
			a %= 1 << 30
			if _, ok := c.Allocate(a); !ok {
				return false
			}
			if _, hit := c.Lookup(a); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(&cfg)
	lvl, lat := h.Access(0x40000)
	if lvl != LevelMem || lat != 400 {
		t.Errorf("cold access = %v/%d, want mem/400", lvl, lat)
	}
	lvl, lat = h.Access(0x40000)
	if lvl != LevelL1 || lat != 1 {
		t.Errorf("second access = %v/%d, want L1/1", lvl, lat)
	}
	if h.Latency(LevelL2) != 10 {
		t.Errorf("L2 latency = %d", h.Latency(LevelL2))
	}
	if h.L1Accesses != 2 {
		t.Errorf("L1Accesses = %d", h.L1Accesses)
	}
}

func TestHierarchyL2Inclusion(t *testing.T) {
	cfg := config.Default()
	// Tiny L1 so we can evict from L1 while L2 retains.
	cfg.L1 = config.CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 32, LatencyCycles: 1}
	h := NewHierarchy(&cfg)
	h.Access(0x0000)
	// Evict set 0 of L1 (4 sets, direct mapped): 0x80 maps to set 0.
	h.Access(0x0080)
	lvl, lat := h.Access(0x0000)
	if lvl != LevelL2 || lat != 10 {
		t.Errorf("L1-evicted access = %v/%d, want L2/10", lvl, lat)
	}
}

func TestHierarchyProbeDoesNotPerturb(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(&cfg)
	h.Access(0x1234)
	before := h.L1.Accesses
	if lvl := h.Probe(0x1234); lvl != LevelL1 {
		t.Errorf("Probe = %v, want L1", lvl)
	}
	if lvl := h.Probe(0x999999); lvl != LevelMem {
		t.Errorf("Probe cold = %v, want mem", lvl)
	}
	if h.L1.Accesses != before {
		t.Error("Probe perturbed counters")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "mem" {
		t.Error("Level strings wrong")
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Error("idle miss rate nonzero")
	}
	c.Access(0)
	c.Allocate(0)
	c.Access(0)
	if mr := c.MissRate(); mr != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", mr)
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets accepted")
		}
	}()
	NewCache(config.CacheConfig{SizeBytes: 96, Ways: 1, LineBytes: 32})
}
