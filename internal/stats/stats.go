// Package stats provides the counters and histograms used to report every
// figure and table in the reproduction. All values are plain integers or
// float64s accumulated single-threadedly by the simulator; per-100M-inst
// normalisation (the paper's reporting unit) is provided by Per100M.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Per100M scales an event count observed over n committed instructions to
// the paper's "events per 100 million committed instructions" unit.
func Per100M(events uint64, committed uint64) float64 {
	if committed == 0 {
		return 0
	}
	return float64(events) * 1e8 / float64(committed)
}

// Histogram is a fixed-width bucketed histogram, used for the Figure 1
// decode→address-calculation latency distributions (30-cycle buckets in the
// paper).
type Histogram struct {
	// Width is the bucket width in x units.
	Width int
	// Counts[i] counts samples with x in [i*Width, (i+1)*Width).
	Counts []uint64
	// Total is the number of samples.
	Total uint64
	// Overflow counts samples beyond the last bucket.
	Overflow uint64
}

// NewHistogram returns a histogram with the given bucket width and number of
// buckets.
func NewHistogram(width, buckets int) *Histogram {
	if width <= 0 || buckets <= 0 {
		panic("stats: histogram needs positive width and bucket count")
	}
	return &Histogram{Width: width, Counts: make([]uint64, buckets)}
}

// Add records one sample at x (x < 0 is clamped to bucket zero).
func (h *Histogram) Add(x int) {
	h.Total++
	if x < 0 {
		x = 0
	}
	b := x / h.Width
	if b >= len(h.Counts) {
		h.Overflow++
		return
	}
	h.Counts[b]++
}

// Percentile returns the smallest x (bucket upper edge) covering at least
// frac of all samples, e.g. Percentile(0.95) is the paper's "95%" marker.
func (h *Histogram) Percentile(frac float64) int {
	if h.Total == 0 {
		return 0
	}
	target := uint64(frac * float64(h.Total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return (i + 1) * h.Width
		}
	}
	return (len(h.Counts) + 1) * h.Width // overflow region
}

// FracWithin returns the fraction of samples with x < limit.
func (h *Histogram) FracWithin(limit int) float64 {
	if h.Total == 0 {
		return 0
	}
	var cum uint64
	for i, c := range h.Counts {
		if (i+1)*h.Width > limit {
			// partial bucket: attribute proportionally
			if i*h.Width < limit {
				cum += c * uint64(limit-i*h.Width) / uint64(h.Width)
			}
			break
		}
		cum += c
	}
	return float64(cum) / float64(h.Total)
}

// Merge adds other's samples into h. Histograms must have identical shape.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if h.Width != other.Width || len(h.Counts) != len(other.Counts) {
		panic("stats: merging incompatible histograms")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Total += other.Total
	h.Overflow += other.Overflow
}

// Mean computes the arithmetic mean of xs; it returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Counters is a string-keyed event-counter bag. The simulator increments
// named events (e.g. "hlsq.search", "ert.lookup", "noc.roundtrip"); the
// experiment harness reads them out for Table 2 style reports.
//
// Hot paths should obtain a Handle once at construction and increment
// through it; the map is then only touched at setup and report time.
//
// Visibility rule: a counter appears in Names/Snapshot/String/JSON once it
// has a nonzero value or was explicitly written through Inc/Add/Merge. A
// handle that was interned but never incremented stays invisible, so
// pre-registering handles does not change reported results.
type Counters struct {
	m map[string]*centry
}

// centry is one counter cell. Handles point at v directly.
type centry struct {
	v uint64
	// touched marks explicit Inc/Add/Merge writes, which make the counter
	// visible even while its value is zero (e.g. Add(name, 0)).
	touched bool
}

func (e *centry) visible() bool { return e.v > 0 || e.touched }

// NewCounters returns an empty counter bag.
func NewCounters() *Counters { return &Counters{m: make(map[string]*centry)} }

func (c *Counters) entry(name string) *centry {
	if e, ok := c.m[name]; ok {
		return e
	}
	e := &centry{}
	c.m[name] = e
	return e
}

// Handle interns the named counter and returns a stable pointer to its
// value. Incrementing through the pointer is equivalent to Inc(name) but
// costs one memory add instead of a map lookup — the per-event path of the
// simulator is built on these.
func (c *Counters) Handle(name string) *uint64 { return &c.entry(name).v }

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) {
	e := c.entry(name)
	e.v++
	e.touched = true
}

// Add adds n to the named counter.
func (c *Counters) Add(name string, n uint64) {
	e := c.entry(name)
	e.v += n
	e.touched = true
}

// Get returns the named counter (0 if never incremented).
func (c *Counters) Get(name string) uint64 {
	if e, ok := c.m[name]; ok {
		return e.v
	}
	return 0
}

// Merge adds every visible counter of other into c.
func (c *Counters) Merge(other *Counters) {
	if other == nil {
		return
	}
	for k, v := range other.m {
		if v.visible() {
			c.Add(k, v.v)
		}
	}
}

// Names returns all visible counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k, v := range c.m {
		if v.visible() {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of every visible counter as a plain map.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		if v.visible() {
			out[k] = v.v
		}
	}
	return out
}

// MarshalJSON implements json.Marshaler, so results carrying a counter bag
// serialise into sweep artifacts and the on-disk result cache.
func (c *Counters) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Counters) UnmarshalJSON(b []byte) error {
	m := make(map[string]uint64)
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	c.m = make(map[string]*centry, len(m))
	for k, v := range m {
		c.m[k] = &centry{v: v, touched: true}
	}
	return nil
}

// String renders the counters as "name=value" lines, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%s=%d\n", n, c.m[n].v)
	}
	return b.String()
}
