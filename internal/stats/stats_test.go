package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPer100M(t *testing.T) {
	if got := Per100M(27, 100); got != 27e6 {
		t.Errorf("Per100M(27,100) = %v", got)
	}
	if got := Per100M(5, 0); got != 0 {
		t.Errorf("Per100M with zero committed = %v, want 0", got)
	}
	if got := Per100M(100, 100_000_000); got != 100 {
		t.Errorf("Per100M identity case = %v, want 100", got)
	}
}

func TestHistogramAddAndPercentile(t *testing.T) {
	h := NewHistogram(30, 50)
	// 90 samples in bucket 0, 10 in bucket 10 (x=300..329).
	for i := 0; i < 90; i++ {
		h.Add(5)
	}
	for i := 0; i < 10; i++ {
		h.Add(305)
	}
	if h.Total != 100 {
		t.Fatalf("Total = %d", h.Total)
	}
	if p := h.Percentile(0.90); p != 30 {
		t.Errorf("P90 = %d, want 30", p)
	}
	if p := h.Percentile(0.99); p != 330 {
		t.Errorf("P99 = %d, want 330", p)
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	h := NewHistogram(10, 4)
	h.Add(-5) // clamps to bucket 0
	h.Add(1000)
	if h.Counts[0] != 1 {
		t.Errorf("negative sample not clamped to bucket 0")
	}
	if h.Overflow != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow)
	}
	if h.Total != 2 {
		t.Errorf("Total = %d, want 2", h.Total)
	}
}

func TestHistogramFracWithin(t *testing.T) {
	h := NewHistogram(30, 10)
	for i := 0; i < 91; i++ {
		h.Add(3)
	}
	for i := 0; i < 9; i++ {
		h.Add(100)
	}
	if f := h.FracWithin(30); f < 0.90 || f > 0.92 {
		t.Errorf("FracWithin(30) = %v, want ~0.91", f)
	}
	if f := h.FracWithin(300); f != 1.0 {
		t.Errorf("FracWithin(300) = %v, want 1", f)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(30, 5)
	b := NewHistogram(30, 5)
	a.Add(10)
	b.Add(40)
	b.Add(10_000)
	a.Merge(b)
	if a.Total != 3 || a.Overflow != 1 || a.Counts[0] != 1 || a.Counts[1] != 1 {
		t.Errorf("merge result wrong: %+v", a)
	}
	a.Merge(nil) // no-op
	if a.Total != 3 {
		t.Error("merge with nil changed totals")
	}
}

func TestHistogramMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incompatible merge did not panic")
		}
	}()
	NewHistogram(30, 5).Merge(NewHistogram(10, 5))
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		h := NewHistogram(30, 40)
		x := uint64(seed)
		for i := 0; i < 500; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.Add(int(x % 1100))
		}
		return h.Percentile(0.5) <= h.Percentile(0.95) &&
			h.Percentile(0.95) <= h.Percentile(0.99)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Inc("a")
	c.Add("b", 5)
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("missing") != 0 {
		t.Errorf("counter values wrong: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	d := NewCounters()
	d.Add("a", 1)
	d.Add("c", 3)
	c.Merge(d)
	if c.Get("a") != 3 || c.Get("c") != 3 {
		t.Error("merge wrong")
	}
	c.Merge(nil)
	names := c.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
	s := c.String()
	if !strings.Contains(s, "a=3") || !strings.Contains(s, "b=5") {
		t.Errorf("String = %q", s)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0, 1) did not panic")
		}
	}()
	NewHistogram(0, 1)
}
