package repro

import (
	"testing"

	"repro/internal/config"
)

func TestSimulate(t *testing.T) {
	cfg := config.Default()
	cfg.MaxInsts = 20_000
	cfg.WarmupInsts = 100_000
	r, err := Simulate(cfg, "swim", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.Committed != 20_000 {
		t.Errorf("IPC %v committed %d", r.IPC, r.Committed)
	}
	if _, err := Simulate(cfg, "not-a-benchmark", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	bad := cfg
	bad.FetchWidth = 0
	if _, err := Simulate(bad, "swim", 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBenchmarks(t *testing.T) {
	names := Benchmarks()
	if len(names) != 26 {
		t.Fatalf("Benchmarks() returned %d names, want 26", len(names))
	}
	if names[0] != "gzip" {
		t.Errorf("first benchmark %q, want gzip (INT suite first)", names[0])
	}
}
