// Command elsqbench runs the repository's performance-regression matrix
// (internal/bench): a fixed set of (scheme × suite × budget) simulation
// points measured for throughput, allocation rate and headline model
// metrics, written as a versioned BENCH_<timestamp>.json artifact.
//
// Typical uses:
//
//	elsqbench -smoke                                  # quick matrix, print + artifact
//	elsqbench -smoke -compare bench/baseline.json     # CI regression gate
//	elsqbench -smoke -write-baseline bench/baseline.json
//	elsqbench -compare old.json -enforce-throughput   # before/after on one host
//
// Regression semantics (see internal/bench): results digests and headline
// metrics are deterministic and must match the baseline exactly on the
// same GOARCH; allocations/instruction get a small band; wall-clock
// throughput is only enforced with -enforce-throughput, because it is not
// comparable across hosts.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime/debug"

	"repro/internal/bench"
)

func main() {
	smoke := flag.Bool("smoke", false, "run only the smoke-budget matrix (the per-PR CI gate)")
	reps := flag.Int("reps", 3, "measurement repetitions per point (throughput = best, stability = median)")
	out := flag.String("out", ".", "directory for the BENCH_<timestamp>.json artifact")
	noArtifact := flag.Bool("no-artifact", false, "skip writing the artifact")
	compare := flag.String("compare", "", "baseline artifact to diff against; exits 1 on regression")
	writeBaseline := flag.String("write-baseline", "", "also write the artifact to this path (e.g. bench/baseline.json)")
	pointFilter := flag.String("points", "", "regexp selecting matrix points by name")
	tolAllocs := flag.Float64("tolerance-allocs", bench.DefaultTolerance().Allocs, "accepted fractional allocs/inst increase")
	tolThroughput := flag.Float64("tolerance-throughput", bench.DefaultTolerance().Throughput, "accepted fractional median-throughput loss")
	enforceThroughput := flag.Bool("enforce-throughput", false, "fail on throughput loss beyond the band (same-host comparisons only)")
	gcPercent := flag.Int("gcpercent", 200, "GOGC while measuring (simulation churns short-lived structures; <=0 keeps the default)")
	flag.Parse()

	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
	}

	points := bench.Matrix(*smoke)
	if *pointFilter != "" {
		re, err := regexp.Compile(*pointFilter)
		if err != nil {
			fatalf("bad -points regexp: %v", err)
		}
		kept := points[:0]
		for _, p := range points {
			if re.MatchString(p.Name) {
				kept = append(kept, p)
			}
		}
		points = kept
	}
	if len(points) == 0 {
		fatalf("no matrix points selected")
	}

	results := make([]bench.PointResult, 0, len(points))
	for _, p := range points {
		pr, err := p.Run(*reps)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%-18s %8.2f M insts/s (median %.2f)  allocs/inst %.4f  IPC %.4f  digest %s\n",
			pr.Name, pr.InstsPerSec/1e6, pr.InstsPerSecMedian/1e6, pr.AllocsPerInst, pr.MeanIPC, pr.ResultsDigest)
		results = append(results, pr)
	}
	art := bench.NewArtifact(results)

	if !*noArtifact {
		path, err := art.Write(*out)
		if err != nil {
			fatalf("write artifact: %v", err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *writeBaseline != "" {
		if err := art.WriteFile(*writeBaseline); err != nil {
			fatalf("write baseline: %v", err)
		}
		fmt.Printf("wrote baseline %s\n", *writeBaseline)
	}

	if *compare != "" {
		baseline, err := bench.Load(*compare)
		if err != nil {
			fatalf("load baseline: %v", err)
		}
		fmt.Print(bench.DiffTable(baseline, art))
		tol := bench.Tolerance{
			Throughput:        *tolThroughput,
			EnforceThroughput: *enforceThroughput,
			Allocs:            *tolAllocs,
		}
		regs := bench.Compare(baseline, art, tol)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Println("no regressions against", *compare)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "elsqbench: "+format+"\n", args...)
	os.Exit(1)
}
