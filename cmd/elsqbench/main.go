// Command elsqbench runs the repository's performance-regression matrix
// (internal/bench): a fixed set of (scheme × suite × budget) simulation
// points measured for throughput, allocation rate and headline model
// metrics, written as a versioned BENCH_<timestamp>.json artifact.
//
// Typical uses:
//
//	elsqbench -smoke                                  # quick matrix, print + artifact
//	elsqbench -smoke -compare bench/baseline.json     # CI regression gate
//	elsqbench -smoke -write-baseline bench/baseline.json
//	elsqbench -compare old.json -enforce-throughput   # before/after on one host
//	elsqbench -smoke -resume-check                    # ckpt-resumed == full digests
//	elsqbench -ckpt-speedup                           # warm-up-sharing wall-clock win
//	elsqbench -smoke -batch 8                         # batched == scalar digests
//	elsqbench -smoke -energy                          # pJ/inst + bank power-down columns
//
// Regression semantics (see internal/bench): results digests and headline
// metrics are deterministic and must match the baseline exactly on the
// same GOARCH; allocations/instruction get a small band; wall-clock
// throughput is only enforced with -enforce-throughput, because it is not
// comparable across hosts.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime/debug"

	"repro/internal/bench"
	"repro/internal/config"
)

func main() {
	smoke := flag.Bool("smoke", false, "run only the smoke-budget matrix (the per-PR CI gate)")
	reps := flag.Int("reps", 3, "measurement repetitions per point (throughput = best, stability = median)")
	out := flag.String("out", ".", "directory for the BENCH_<timestamp>.json artifact")
	noArtifact := flag.Bool("no-artifact", false, "skip writing the artifact")
	compare := flag.String("compare", "", "baseline artifact to diff against; exits 1 on regression")
	writeBaseline := flag.String("write-baseline", "", "also write the artifact to this path (e.g. bench/baseline.json)")
	pointFilter := flag.String("points", "", "regexp selecting matrix points by name")
	tolAllocs := flag.Float64("tolerance-allocs", bench.DefaultTolerance().Allocs, "accepted fractional allocs/inst increase")
	tolThroughput := flag.Float64("tolerance-throughput", bench.DefaultTolerance().Throughput, "accepted fractional median-throughput loss")
	enforceThroughput := flag.Bool("enforce-throughput", false, "fail on throughput loss beyond the band (same-host comparisons only)")
	gcPercent := flag.Int("gcpercent", 200, "GOGC while measuring (simulation churns short-lived structures; <=0 keeps the default)")
	resumeCheck := flag.Bool("resume-check", false, "run each point once full-warm-up and once checkpoint-resumed and fail on any results-digest mismatch (no throughput measurement)")
	traceDir := flag.String("tracedir", "", "drive every point from recorded traces <tracedir>/<bench>-s1.elt (see elsqtrace record -suites); deterministic metrics and digests match the live baseline exactly")
	sampleIntervals := flag.Int("sample-intervals", 0, "measure each point in this many SimPoint-style intervals (0/1 = contiguous; changes results digests, so compare only against a baseline measured the same way)")
	sampleBleed := flag.Uint64("sample-bleed", 0, "functional fast-forward instructions between sample intervals")
	ckptSpeedup := flag.Bool("ckpt-speedup", false, "measure a 3-config sweep sharing one warm-up checkpoint vs three full warm-ups and print the wall-clock ratio")
	speedupBench := flag.String("ckpt-speedup-bench", "swim", "benchmark for -ckpt-speedup")
	oracleCertify := flag.Bool("oracle", false, "certify each point against the differential correctness oracle (internal/oracle) instead of measuring; fails on any committed-load value mismatch")
	batchLanes := flag.Int("batch", 0, "run each point's benchmark as this many warm-up-sharing lanes on the batch engine and as sequential scalar runs, fail on any results-digest divergence, and print the aggregate speedup (no throughput measurement)")
	batchWarmup := flag.Uint64("batch-warmup", 0, "override WarmupInsts for -batch points (0 keeps the matrix budget); the shared-warm-up speedup scales with the warm:measure ratio, so headline numbers use the paper's 2.5M-instruction warm-up")
	energyCol := flag.Bool("energy", false, "print the energy columns (pJ/inst, FMC bank power-down fraction, energy digest) per point; the quantities are always measured and stored in the artifact")
	energyTable := flag.String("energy-table", "", "energy coefficient table for every point (empty = base; see internal/energy)")
	flag.Parse()

	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
	}

	if *ckptSpeedup {
		runCkptSpeedup(*speedupBench)
		return
	}

	points := bench.Matrix(*smoke)
	for i := range points {
		points[i].Config.SampleIntervals = *sampleIntervals
		points[i].Config.SampleBleedInsts = *sampleBleed
		points[i].Config.EnergyTable = *energyTable
		points[i].TraceDir = *traceDir
	}
	if *pointFilter != "" {
		re, err := regexp.Compile(*pointFilter)
		if err != nil {
			fatalf("bad -points regexp: %v", err)
		}
		kept := points[:0]
		for _, p := range points {
			if re.MatchString(p.Name) {
				kept = append(kept, p)
			}
		}
		points = kept
	}
	if len(points) == 0 {
		fatalf("no matrix points selected")
	}

	if *resumeCheck {
		runResumeCheck(points)
		return
	}
	if *oracleCertify {
		runOracleCertify(points)
		return
	}
	if *batchLanes > 0 {
		if *batchWarmup > 0 {
			for i := range points {
				points[i].Config.WarmupInsts = *batchWarmup
			}
		}
		runBatchCheck(points, *batchLanes)
		return
	}

	results := make([]bench.PointResult, 0, len(points))
	for _, p := range points {
		pr, err := p.Run(*reps)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%-18s %8.2f M insts/s (median %.2f)  allocs/inst %.4f  IPC %.4f  digest %s\n",
			pr.Name, pr.InstsPerSec/1e6, pr.InstsPerSecMedian/1e6, pr.AllocsPerInst, pr.MeanIPC, pr.ResultsDigest)
		if *energyCol {
			fmt.Printf("%-18s %8.1f pJ/inst  bank power-down %5.1f%%  energy digest %s\n",
				"", pr.EnergyPJPerInst, pr.BankPowerDownFrac*100, pr.EnergyDigest)
		}
		results = append(results, pr)
	}
	art := bench.NewArtifact(results)

	if !*noArtifact {
		path, err := art.Write(*out)
		if err != nil {
			fatalf("write artifact: %v", err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *writeBaseline != "" {
		if err := art.WriteFile(*writeBaseline); err != nil {
			fatalf("write baseline: %v", err)
		}
		fmt.Printf("wrote baseline %s\n", *writeBaseline)
	}

	if *compare != "" {
		baseline, err := bench.Load(*compare)
		if err != nil {
			fatalf("load baseline: %v", err)
		}
		fmt.Print(bench.DiffTable(baseline, art))
		tol := bench.Tolerance{
			Throughput:        *tolThroughput,
			EnforceThroughput: *enforceThroughput,
			Allocs:            *tolAllocs,
		}
		regs := bench.Compare(baseline, art, tol)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Println("no regressions against", *compare)
	}
}

// runOracleCertify certifies every selected point's committed-load values
// against the sequential reference model and fails on any mismatch.
func runOracleCertify(points []bench.Point) {
	failed := false
	for _, p := range points {
		rep, err := p.Certify()
		if err != nil {
			fatalf("%v", err)
		}
		status := "ok"
		if !rep.OK() {
			status = fmt.Sprintf("%d VIOLATION(S): %s", rep.Violations, rep.First)
			failed = true
		}
		fmt.Printf("%-18s %9d loads / %9d stores / %10d bytes certified  %s\n",
			rep.Name, rep.Loads, rep.Stores, rep.CheckedBytes, status)
	}
	if failed {
		fatalf("oracle certification failed")
	}
	fmt.Println("oracle: every committed load matches the sequential reference")
}

// runResumeCheck verifies the checkpoint determinism contract over the
// selected matrix points: resumed and full-warm-up digests must agree.
func runResumeCheck(points []bench.Point) {
	failed := false
	for _, p := range points {
		chk, err := p.VerifyResume()
		if err != nil {
			fatalf("%v", err)
		}
		status := "ok"
		if !chk.OK() {
			status = "MISMATCH"
			failed = true
		}
		fmt.Printf("%-18s full %s (%.0f ms)  resumed %s (%.0f ms)  %s\n",
			chk.Name, chk.FullDigest, float64(chk.FullNS)/1e6,
			chk.ResumedDigest, float64(chk.ResumedNS)/1e6, status)
	}
	if failed {
		fatalf("checkpoint-resumed results diverged from full-warm-up results")
	}
	fmt.Println("resume-check: all digests identical")
}

// runBatchCheck verifies the batch engine's determinism contract over the
// selected matrix points: K warm-up-compatible lanes (MispredictPenalty
// variants) run scalar and batched must produce identical digests with the
// oracle clean, and the batched pass should be faster in aggregate.
func runBatchCheck(points []bench.Point, lanes int) {
	failed := false
	for _, p := range points {
		chk, err := p.VerifyBatch(lanes)
		if err != nil {
			fatalf("%v", err)
		}
		status := "ok"
		switch {
		case chk.ScalarDigest != chk.BatchDigest:
			status = "MISMATCH"
			failed = true
		case !chk.Batched:
			status = "NOT BATCHED"
			failed = true
		case chk.OracleViolations > 0:
			status = fmt.Sprintf("%d ORACLE VIOLATION(S)", chk.OracleViolations)
			failed = true
		}
		fmt.Printf("%-18s %d lanes of %s: scalar %s (%.0f ms)  batch %s (%.0f ms, %.2fx)  %s\n",
			chk.Name, chk.Lanes, chk.Bench, chk.ScalarDigest, float64(chk.ScalarNS)/1e6,
			chk.BatchDigest, float64(chk.BatchNS)/1e6, chk.Speedup(), status)
	}
	if failed {
		fatalf("batched results diverged from scalar results")
	}
	fmt.Println("batch-check: all digests identical, oracle clean")
}

// runCkptSpeedup prints the headline warm-up-sharing numbers: a 3-config
// sweep (hash ERT, line ERT, halved migrate threshold — non-warm-up axes)
// at the smoke measurement budget under the full 2.5M-instruction warm-up.
func runCkptSpeedup(benchName string) {
	mk := func(mut func(*config.Config)) config.Config {
		cfg := config.Default().WithBudget(config.SmokeMeasureInsts, 2_500_000)
		if mut != nil {
			mut(&cfg)
		}
		return cfg
	}
	res, err := bench.CheckpointSpeedup(benchName, 1, []config.Config{
		mk(nil),
		mk(func(c *config.Config) { c.ERT = config.ERTLine }),
		mk(func(c *config.Config) { c.MigrateThreshold = 24 }),
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("ckpt-speedup %s over %v (%d insts of full-warm-up work)\n", res.Bench, res.Configs, res.Insts)
	fmt.Printf("  full warm-up x3:        %8.1f ms\n", float64(res.FullNS)/1e6)
	fmt.Printf("  shared, built in-run:   %8.1f ms  (%.2fx)\n", float64(res.ColdNS)/1e6, res.ColdSpeedup())
	fmt.Printf("  shared, from store:     %8.1f ms  (%.2fx)\n", float64(res.WarmNS)/1e6, res.WarmSpeedup())
	if !res.Match {
		fatalf("checkpoint-shared results diverged from full-warm-up results")
	}
	fmt.Println("  results bit-identical across all three sweeps")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "elsqbench: "+format+"\n", args...)
	os.Exit(1)
}
