// Command elsqserve runs the fleet coordinator: a long-running simulation
// service that accepts sweep submissions over the versioned JSON API,
// serves already-computed points straight from its result cache, and
// queues misses onto a work-stealing job queue for elsqworker processes to
// lease. It also hosts the content-addressed artifact store — results by
// job key, warm-up checkpoints by ckpt.Key, traces by .elt content digest
// — that workers fetch from and push to with end-to-end digest
// verification.
//
// Usage:
//
//	elsqserve -addr :7977 -cachedir .fleetcache -ckptdir .fleetckpt \
//	          -tracedir traces/
//
// With -cachedir the result store persists across restarts, so a restarted
// service keeps serving every previously computed point instantly. -lease
// bounds how long a silent worker holds a job before it is re-dispatched;
// -max-attempts bounds re-dispatch of a job that keeps failing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/sweep"
)

func main() {
	addr := flag.String("addr", ":7977", "listen address")
	cacheDir := flag.String("cachedir", "", "persistent result-store directory (empty = in-memory)")
	ckptDir := flag.String("ckptdir", "", "persistent checkpoint-store directory (empty = in-memory)")
	ckptMax := flag.String("ckpt-max-bytes", "2G", "checkpoint store size budget for -ckptdir (K/M/G suffixes; 0 = unbounded)")
	traceDir := flag.String("tracedir", "", "trace-store directory; existing .elt files are served by content digest (empty = in-memory)")
	lease := flag.Duration("lease", fleet.DefaultLeaseTTL, "lease TTL before a silent worker's job is re-dispatched")
	maxAttempts := flag.Int("max-attempts", fleet.DefaultMaxAttempts, "dispatch attempts before a job fails permanently")
	flag.Parse()

	opts := fleet.Options{LeaseTTL: *lease, MaxAttempts: *maxAttempts}
	var err error
	if *cacheDir != "" {
		if opts.Results, err = sweep.NewDiskCache(*cacheDir); err != nil {
			fatalf("%v", err)
		}
	}
	if *ckptDir != "" {
		budget, err := config.ParseSize(*ckptMax)
		if err != nil {
			fatalf("bad -ckpt-max-bytes: %v", err)
		}
		if opts.Ckpts, err = ckpt.NewDiskStore(*ckptDir, int64(budget)); err != nil {
			fatalf("%v", err)
		}
	} else {
		opts.Ckpts = ckpt.NewMemStore()
	}
	if opts.Traces, err = fleet.NewTraceStore(*traceDir); err != nil {
		fatalf("%v", err)
	}

	co := fleet.NewCoordinator(opts)
	srv := fleet.NewServer(co)

	stop := make(chan struct{})
	go srv.ExpireLoop(stop, *lease/4)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		close(stop)
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		httpSrv.Shutdown(shutCtx)
	}()

	log.Printf("elsqserve: listening on %s (lease %v, %d traces indexed)",
		*addr, *lease, co.Traces().Len())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	st := co.Stats()
	log.Printf("elsqserve: shut down (%d sweeps, %d completes, %d cache hits, %d expired leases)",
		st.Sweeps, st.Completes, st.CacheHits, st.Expired)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "elsqserve: "+format+"\n", args...)
	os.Exit(2)
}
