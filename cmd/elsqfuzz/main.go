// Command elsqfuzz is the randomized differential-fuzz driver of the
// repository: it derives configuration points from the sweepable-field
// registry (geometry, scheme, budgets) crossed with randomized workload
// seeds, simulates each point with the sequential reference model
// (internal/oracle) attached, and fails loudly when any committed load
// observes bytes the sequential semantics forbid.
//
// Every point derives deterministically from a single 64-bit fuzz seed, so
// a reported failure reproduces from its seed alone. On failure the driver
// additionally minimises the point (drop sampling, drop warm-up, shrink the
// measured budget) and emits a self-contained repro: the minimised config
// as JSON plus the committed-path instruction stream as a portable .elt
// trace (internal/trace), so the failure replays bit-identically anywhere.
//
//	elsqfuzz -smoke                  # deterministic 60-second CI budget
//	elsqfuzz -duration 15m -out repros
//	elsqfuzz -points 5000 -seed 7    # fixed point count from seed 7
//	elsqfuzz -reseed 267550341       # re-run one seed, with minimisation
//
// The same point derivation backs the native fuzz target:
//
//	go test -fuzz=FuzzSim ./internal/oracle
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/oracle"
	"repro/internal/simrun"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fuzzChunk is how many consecutive fuzz seeds a worker claims per batch:
// large enough that same-warm-key points can meet in one RunBatch call,
// small enough that work stays evenly spread across workers.
const fuzzChunk = 8

// checkPoint runs one fuzz point with the differential oracle attached and
// returns the checker (never nil on a nil error). It also certifies the
// point's energy report: present under every fuzzed energy.table, with the
// accounting identity (totals == structure sums, all values finite and
// non-negative) intact.
func checkPoint(p oracle.FuzzPoint) (*oracle.Checker, error) {
	out, err := simrun.Point{Config: p.Config, Bench: p.Bench, Seed: p.Seed, Oracle: true}.Run(nil)
	if err != nil {
		return nil, err
	}
	if err := checkEnergy(out); err != nil {
		return nil, err
	}
	return out.Oracle, nil
}

// checkEnergy asserts one outcome's energy accounting identity.
func checkEnergy(out *simrun.Outcome) error {
	if out.Energy == nil {
		return fmt.Errorf("energy report missing from outcome")
	}
	if err := out.Energy.Check(); err != nil {
		return fmt.Errorf("energy accounting identity violated: %w", err)
	}
	return nil
}

func main() {
	smoke := flag.Bool("smoke", false, "deterministic CI budget: seed 1, 60s wall-clock cap")
	duration := flag.Duration("duration", 0, "wall-clock budget (0 = use -points)")
	points := flag.Int("points", 1000, "number of points when no -duration is set")
	seed := flag.Uint64("seed", 1, "first fuzz seed; points use consecutive seeds")
	reseed := flag.Uint64("reseed", 0, "re-run exactly one fuzz seed (0 = disabled)")
	out := flag.String("out", "fuzz-repros", "directory for minimised repro artifacts")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	verbose := flag.Bool("v", false, "log every point")
	flag.Parse()

	if *smoke {
		*duration = 60 * time.Second
		*seed = 1
	}
	if *reseed != 0 {
		if !runOne(*reseed, *out, true) {
			os.Exit(1)
		}
		return
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	var (
		next     = *seed - 1 // atomic; each worker claims the next chunk
		ran      uint64
		loads    uint64
		failures uint64
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Claim fuzzChunk consecutive seeds and run them as one
				// RunBatch call: points that land on the same warm-up key
				// (same benchmark, workload seed and warm-geometry draws)
				// share a lane group and one functional warm-up.
				s0 := atomic.AddUint64(&next, fuzzChunk) - fuzzChunk + 1
				if *duration > 0 && time.Now().After(deadline) {
					return
				}
				var seeds []uint64
				for s := s0; s < s0+fuzzChunk; s++ {
					if *duration == 0 && s >= *seed+uint64(*points) {
						break
					}
					seeds = append(seeds, s)
				}
				if len(seeds) == 0 {
					return
				}
				fps := make([]oracle.FuzzPoint, len(seeds))
				pts := make([]simrun.Point, len(seeds))
				for i, s := range seeds {
					fps[i] = oracle.RandomPoint(s)
					pts[i] = simrun.Point{Config: fps[i].Config, Bench: fps[i].Bench, Seed: fps[i].Seed, Oracle: true}
				}
				outs, err := simrun.RunBatch(nil, pts)
				if err != nil {
					mu.Lock()
					fmt.Fprintf(os.Stderr, "seeds %d-%d: %v\n", seeds[0], seeds[len(seeds)-1], err)
					mu.Unlock()
					atomic.AddUint64(&failures, uint64(len(seeds)))
					continue
				}
				for i, o := range outs {
					s, p := seeds[i], fps[i]
					if o.Err != nil {
						mu.Lock()
						fmt.Fprintf(os.Stderr, "seed %d: %s: %v\n", s, p.Label(), o.Err)
						mu.Unlock()
						atomic.AddUint64(&failures, 1)
						continue
					}
					if eerr := checkEnergy(o); eerr != nil {
						mu.Lock()
						fmt.Fprintf(os.Stderr, "VIOLATION seed %d: %s\n  %v\n", s, p.Label(), eerr)
						mu.Unlock()
						atomic.AddUint64(&failures, 1)
						continue
					}
					ck := o.Oracle
					atomic.AddUint64(&ran, 1)
					atomic.AddUint64(&loads, ck.Loads())
					if cerr := ck.Err(); cerr != nil {
						atomic.AddUint64(&failures, 1)
						mu.Lock()
						fmt.Fprintf(os.Stderr, "VIOLATION seed %d: %s\n  %v\n", s, p.Label(), cerr)
						mu.Unlock()
						// Minimisation re-simulates many times; keep it
						// outside the output lock so other workers stay
						// independent.
						runOne(s, *out, false)
					} else if *verbose {
						mu.Lock()
						fmt.Printf("seed %d ok: %s (%d loads)\n", s, p.Label(), ck.Loads())
						mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("elsqfuzz: %d points, %d loads certified, %d failure(s) in %s (%.0f points/s)\n",
		ran, loads, failures, elapsed.Round(time.Millisecond), float64(ran)/elapsed.Seconds())
	if failures > 0 {
		os.Exit(1)
	}
}

// repro is the on-disk failure artifact schema.
type repro struct {
	FuzzSeed   uint64        `json:"fuzz_seed"`
	Label      string        `json:"label"`
	Bench      string        `json:"bench"`
	Seed       uint64        `json:"seed"`
	Config     config.Config `json:"config"`
	TraceFile  string        `json:"trace_file"`
	Violations []string      `json:"violations"`
}

// runOne re-runs a single fuzz seed, minimises on failure and writes the
// repro artifacts. It returns true when the point certified clean.
func runOne(s uint64, out string, standalone bool) bool {
	p := oracle.RandomPoint(s)
	ck, err := checkPoint(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: %v\n", s, err)
		return false
	}
	if ck.Err() == nil {
		if standalone {
			fmt.Printf("seed %d ok: %s (%d loads certified)\n", s, p.Label(), ck.Loads())
		}
		return true
	}
	if standalone {
		fmt.Fprintf(os.Stderr, "VIOLATION seed %d: %s\n  %v\n", s, p.Label(), ck.Err())
	}
	min := minimise(p)
	var vs []string
	if mck, err := checkPoint(min); err == nil {
		for _, v := range mck.Violations() {
			vs = append(vs, v.String())
		}
	} else {
		vs = append(vs, fmt.Sprintf("re-run of minimised point failed: %v", err))
	}
	if err := emitRepro(s, min, vs, out); err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: emit repro: %v\n", s, err)
	}
	return false
}

// minimise greedily shrinks a failing point while it keeps failing: drop
// sampled measurement, drop the warm-up, then halve the measured budget.
func minimise(p oracle.FuzzPoint) oracle.FuzzPoint {
	fails := func(q oracle.FuzzPoint) bool {
		ck, err := checkPoint(q)
		return err == nil && ck.Err() != nil
	}
	if q := p; q.Config.SampleIntervals > 1 {
		q.Config.SampleIntervals, q.Config.SampleBleedInsts = 0, 0
		if fails(q) {
			p = q
		}
	}
	if q := p; q.Config.WarmupInsts > 0 {
		q.Config.WarmupInsts = 0
		if fails(q) {
			p = q
		}
	}
	for p.Config.MaxInsts > 64 {
		q := p
		q.Config.MaxInsts /= 2
		if !fails(q) {
			break
		}
		p = q
	}
	return p
}

// emitRepro writes the minimised config JSON and the committed-path trace.
func emitRepro(s uint64, p oracle.FuzzPoint, violations []string, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	prof, err := workload.ByName(p.Bench)
	if err != nil {
		return err
	}
	tracePath := filepath.Join(out, fmt.Sprintf("fuzz-%d.elt", s))
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	rec, err := trace.NewRecorder(f, prof.New(p.Seed))
	if err != nil {
		f.Close()
		return err
	}
	n := p.Config.WarmupInsts + p.Config.MaxInsts
	if intervals, bleed := p.Config.Intervals(); intervals > 1 {
		n += uint64(intervals-1) * bleed
	}
	if err := rec.Record(n); err != nil {
		f.Close()
		return err
	}
	if err := rec.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	r := repro{
		FuzzSeed:   s,
		Label:      p.Label(),
		Bench:      p.Bench,
		Seed:       p.Seed,
		Config:     p.Config,
		TraceFile:  filepath.Base(tracePath),
		Violations: violations,
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	jsonPath := filepath.Join(out, fmt.Sprintf("fuzz-%d.json", s))
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "  minimised to %s\n  repro: %s + %s\n", p.Label(), jsonPath, tracePath)
	return nil
}
