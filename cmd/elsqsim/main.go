// Command elsqsim runs a single simulation: one benchmark on one
// configuration, printing IPC, the Table 2 component access counts, and the
// execution-locality summary. It is the quickest way to poke at the
// simulator.
//
// Usage:
//
//	elsqsim -bench mcf -model fmc -lsq elsq -ert hash -sqm
//	elsqsim -bench swim -model ooo -lsq conventional
//	elsqsim -trace swim.elt -insts 30000 -warmup 400000
//	elsqsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/simrun"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "swim", "benchmark name")
	model := flag.String("model", "fmc", "processor model: fmc | ooo")
	lsqName := flag.String("lsq", "elsq", "LSQ scheme: elsq | central | conventional | svw")
	ert := flag.String("ert", "hash", "ELSQ filter: hash | line")
	ertBits := flag.Int("ertbits", 10, "hash-ERT index bits")
	sqm := flag.Bool("sqm", true, "enable the Store Queue Mirror")
	disamb := flag.String("disamb", "full", "disambiguation: full | rsac | rlac | rsaclac")
	ssbf := flag.Int("ssbf", 10, "SSBF index bits (SVW)")
	svwVar := flag.String("svw", "blind", "SVW variant: blind | checkstores")
	insts := flag.Uint64("insts", 200_000, "measured instructions")
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up instructions")
	seed := flag.Uint64("seed", 1, "workload seed")
	tracePath := flag.String("trace", "", "drive the run from this recorded .elt trace (overrides -bench/-seed with the trace's identity)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, s := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
			fmt.Printf("%s:", s)
			for _, p := range workload.SuiteOf(s) {
				fmt.Printf(" %s", p.Name)
			}
			fmt.Println()
		}
		return
	}

	cfg := config.Default()
	if *model == "ooo" {
		cfg = config.OoO64()
	}
	switch *lsqName {
	case "elsq":
		cfg.LSQ = config.LSQELSQ
	case "central":
		cfg.LSQ = config.LSQCentral
	case "conventional":
		cfg.LSQ = config.LSQConventional
	case "svw":
		cfg.LSQ = config.LSQSVW
	default:
		fatalf("unknown -lsq %q", *lsqName)
	}
	if *ert == "line" {
		cfg.ERT = config.ERTLine
	}
	cfg.ERTHashBits = *ertBits
	cfg.SQM = *sqm
	switch *disamb {
	case "full":
		cfg.Disamb = config.DisambFull
	case "rsac":
		cfg.Disamb = config.DisambRSAC
	case "rlac":
		cfg.Disamb = config.DisambRLAC
	case "rsaclac":
		cfg.Disamb = config.DisambRSACLAC
	default:
		fatalf("unknown -disamb %q", *disamb)
	}
	cfg.SSBFBits = *ssbf
	if *svwVar == "checkstores" {
		cfg.SVW = config.SVWCheckStores
	}
	cfg.MaxInsts = *insts
	cfg.WarmupInsts = *warmup

	if *tracePath != "" {
		// The trace is self-describing: it names the benchmark and seed it
		// records, so the run adopts them. Cached parses the file once; the
		// simrun point below hits the same entry instead of re-reading it.
		t, err := trace.Cached(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.TracePath = *tracePath
		cfg.TraceDigest = t.Meta().Digest
		*bench, *seed = t.Meta().Bench, t.Meta().Seed
	}
	out, err := simrun.Point{Config: cfg, Bench: *bench, Seed: *seed}.Run(nil)
	if err != nil {
		fatalf("%v", err)
	}
	r := out.Result

	fmt.Printf("benchmark   %s (%s)\n", r.Bench, r.Suite)
	fmt.Printf("config      %s\n", r.Config)
	fmt.Printf("committed   %d insts in %d cycles\n", r.Committed, r.Cycles)
	fmt.Printf("IPC         %.3f\n", r.IPC)
	if cfg.Model == config.ModelFMC {
		fmt.Printf("LL idle     %.1f%%   allocated epochs %.2f\n", 100*r.LLIdleFrac, r.AvgEpochs)
	}
	fmt.Printf("addr-calc within 30 cycles: loads %.1f%%, stores %.1f%%\n",
		100*r.LoadDist.FracWithin(30), 100*r.StoreDist.FracWithin(30))
	fmt.Println("\ncomponent accesses (per 100M committed insts, millions):")
	for _, k := range []string{"hl_lq", "hl_sq", "ll_lq", "ll_sq", "ert", "ssbf", "roundtrip", "cache"} {
		v := stats.Per100M(r.Counters.Get(k), r.Committed) / 1e6
		if v != 0 {
			fmt.Printf("  %-10s %9.3f\n", k, v)
		}
	}
	fmt.Println("\nevent counters:")
	for _, k := range []string{"mispredict", "violation", "reexec", "reexec_filtered",
		"ert_false_positive", "ll_forward_local", "ll_forward_global", "sqm_search",
		"rsac_stall", "rlac_stall", "ll_squash", "partial_forward", "wrongpath_load"} {
		if v := r.Counters.Get(k); v != 0 {
			fmt.Printf("  %-20s %10d\n", k, v)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
