// Command workloadstat characterises the synthetic SPEC-like benchmarks:
// instruction mix, branch behaviour, and cache behaviour of the address
// stream against the default hierarchy. Use it to inspect the SPEC CPU 2000
// substitution described in DESIGN.md.
package main

import (
	"flag"
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

func main() {
	n := flag.Uint64("insts", 500_000, "instructions to characterise per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	cfg := config.Default()
	fmt.Printf("%-10s %-8s %6s %6s %6s %7s %8s %8s %8s\n",
		"bench", "suite", "loads", "stores", "branch", "mispred", "L1 hit", "L2 hit", "mem/1k")
	for _, suite := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
		for _, p := range workload.SuiteOf(suite) {
			g := p.New(*seed)
			h := mem.NewHierarchy(&cfg)
			var in isa.Inst
			var loads, stores, branches, mispred uint64
			var l1, l2, memA uint64
			for i := uint64(0); i < *n; i++ {
				g.Next(&in)
				switch in.Op {
				case isa.OpLoad, isa.OpStore:
					if in.IsLoad() {
						loads++
					} else {
						stores++
					}
					switch lvl, _ := h.Access(in.Addr); lvl {
					case mem.LevelL1:
						l1++
					case mem.LevelL2:
						l2++
					default:
						memA++
					}
				case isa.OpBranch:
					branches++
					if in.Mispred {
						mispred++
					}
				}
			}
			tot := float64(*n)
			acc := float64(l1 + l2 + memA)
			fmt.Printf("%-10s %-8s %5.1f%% %5.1f%% %5.1f%% %6.2f%% %7.1f%% %7.1f%% %8.2f\n",
				p.Name, suite,
				100*float64(loads)/tot, 100*float64(stores)/tot,
				100*float64(branches)/tot, 100*float64(mispred)/float64(branches),
				100*float64(l1)/acc, 100*float64(l2)/acc,
				1000*float64(memA)/tot)
		}
	}
}
