// Command paperbench regenerates the paper's tables and figures.
//
// Usage:
//
//	paperbench -exp fig7                 # one experiment
//	paperbench -exp all                  # everything, paper order
//	paperbench -exp table2 -insts 200000 # bigger simulation points
//
// Each experiment prints rows in the layout of the corresponding paper
// artefact together with the paper's reference shape, so measured-vs-paper
// comparison is immediate. See EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, tuning, fig7, fig8a, fig8bc, fig9, fig10, fig11, table2, energy) or 'all'")
	insts := flag.Uint64("insts", 100_000, "measured instructions per benchmark")
	warmup := flag.Uint64("warmup", 2_500_000, "functional warm-up instructions per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	flag.Parse()

	opt := experiments.Options{
		MaxInsts:    *insts,
		WarmupInsts: *warmup,
		Seed:        *seed,
		Workers:     *workers,
	}

	var list []experiments.Experiment
	if *exp == "all" {
		list = experiments.All()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		list = []experiments.Experiment{e}
	}
	for _, e := range list {
		start := time.Now()
		fmt.Printf("================ %s — %s ================\n", e.ID, e.Title)
		out, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
