// Command elsqtrace records, inspects and validates portable .elt traces
// (internal/trace): versioned on-disk recordings of the synthetic benchmark
// instruction streams that replay bit-identically to live generation.
//
// Usage:
//
//	elsqtrace record -bench swim -seed 1 -n 430000 -out swim.elt
//	elsqtrace record -suites int,fp -seeds 1 -outdir traces/
//	elsqtrace info swim.elt
//	elsqtrace verify -live swim.elt
//	elsqtrace cat -start 100 -limit 20 swim.elt
//
// record captures the first n committed-path instructions of a benchmark;
// the default budget covers the standard smoke evaluation point (warm-up
// plus measurement). info prints a trace's self-describing header. verify
// fully decodes the file against its per-block and content digests, and
// with -live additionally replays it record-for-record against a fresh
// generator — the mechanical round-trip proof. cat prints decoded records
// as text.
//
// Recorded traces plug into the rest of the toolchain: elsqsim -trace,
// elsqsweep -axis trace=... / -tracedir, and elsqbench -tracedir all drive
// simulation from them, with results bit-identical to the live run each
// trace was recorded from.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "cat":
		cmdCat(os.Args[2:])
	default:
		usage()
	}
}

// usage prints the command synopsis and exits.
func usage() {
	fmt.Fprintln(os.Stderr, `usage: elsqtrace <command> [flags]

commands:
  record   record benchmark instruction streams to .elt files
  info     print a trace's header and layout
  verify   decode a trace against its digests (-live: diff vs live generation)
  cat      print decoded records as text`)
	os.Exit(2)
}

// defaultBudget is the standard recording length: the smoke evaluation
// point's warm-up plus measurement.
const defaultBudget = config.SmokeWarmupInsts + config.SmokeMeasureInsts

// cmdRecord implements "elsqtrace record".
func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "", "single benchmark to record (overrides -suites)")
	suites := fs.String("suites", "", "comma-separated suites to record (int,fp)")
	seed := fs.Uint64("seed", 1, "workload seed for -bench")
	seeds := fs.String("seeds", "1", "workload seeds for -suites: range lo..hi or comma list")
	n := fs.Uint64("n", defaultBudget, "committed instructions to record per trace")
	out := fs.String("out", "", "output file for -bench (default <bench>-s<seed>.elt)")
	outDir := fs.String("outdir", ".", "output directory for -suites recordings")
	fs.Parse(args)

	if *n == 0 {
		fatalf("-n must be positive")
	}
	switch {
	case *bench != "":
		prof, err := workload.ByName(*bench)
		if err != nil {
			fatalf("%v", err)
		}
		path := *out
		if path == "" {
			path = trace.BenchPath(".", prof.Name, *seed)
		}
		recordOne(prof, *seed, *n, path)
	case *suites != "":
		sds, err := sweep.ParseSeeds(*seeds)
		if err != nil {
			fatalf("%v", err)
		}
		profs, err := sweep.SuiteBenches(*suites)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		for _, prof := range profs {
			for _, sd := range sds {
				recordOne(prof, sd, *n, trace.BenchPath(*outDir, prof.Name, sd))
			}
		}
	default:
		fatalf("record needs -bench or -suites")
	}
}

// recordOne records n instructions of (prof, seed) to path and prints a
// summary line.
func recordOne(prof workload.Profile, seed, n uint64, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	rec, err := trace.NewRecorder(f, prof.New(seed))
	if err != nil {
		f.Close()
		fatalf("%v", err)
	}
	if err := rec.Record(n); err != nil {
		f.Close()
		fatalf("recording %s: %v", path, err)
	}
	if err := rec.Close(); err != nil {
		f.Close()
		fatalf("recording %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		fatalf("%v", err)
	}
	t, err := trace.Open(path)
	if err != nil {
		fatalf("round-trip of fresh recording failed: %v", err)
	}
	fmt.Printf("%-24s %9d insts  %8.2f KiB  %5.2f bits/inst  digest %s\n",
		path, n, float64(info.Size())/1024, float64(info.Size())*8/float64(n), t.Meta().Digest)
}

// openArg opens the single positional trace argument of a subcommand.
func openArg(fs *flag.FlagSet) *trace.Trace {
	if fs.NArg() != 1 {
		fatalf("want exactly one trace file argument")
	}
	t, err := trace.Open(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	return t
}

// cmdInfo implements "elsqtrace info".
func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	t := openArg(fs)
	m := t.Meta()
	info, err := os.Stat(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("file            %s (%d bytes)\n", filepath.Base(fs.Arg(0)), info.Size())
	fmt.Printf("format          .elt v%d (workload state v%d)\n", m.FormatVersion, m.StateVersion)
	fmt.Printf("benchmark       %s (%s), seed %d\n", m.Bench, m.Suite, m.Seed)
	fmt.Printf("records         %d (%d per block)\n", m.Records, m.BlockRecords)
	fmt.Printf("density         %.2f bits/inst\n", float64(info.Size())*8/float64(m.Records))
	fmt.Printf("wrong-path init %#x\n", m.WPInit)
	fmt.Printf("content digest  %s\n", m.Digest)
}

// cmdVerify implements "elsqtrace verify".
func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	live := fs.Bool("live", false, "additionally replay against a fresh live generator and diff every record")
	fs.Parse(args)
	t := openArg(fs)
	if err := t.Verify(); err != nil {
		fatalf("%v", err)
	}
	m := t.Meta()
	fmt.Printf("%s: %d records, all block digests and the content digest check out\n", fs.Arg(0), m.Records)
	if !*live {
		return
	}
	prof, err := workload.ByName(m.Bench)
	if err != nil {
		fatalf("cannot diff against live generation: %v", err)
	}
	src, err := t.Source()
	if err != nil {
		fatalf("%v", err)
	}
	gen := prof.New(m.Seed)
	var want, got isa.Inst
	for i := uint64(0); i < m.Records; i++ {
		gen.Next(&want)
		src.Next(&got)
		if got != want {
			fatalf("record %d diverges from live generation:\n  trace %+v\n  live  %+v", i, got, want)
		}
	}
	fmt.Printf("%s: replay is record-for-record identical to live generation\n", fs.Arg(0))
}

// cmdCat implements "elsqtrace cat".
func cmdCat(args []string) {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	start := fs.Uint64("start", 0, "first record to print")
	limit := fs.Uint64("limit", 32, "maximum records to print (0 = to the end)")
	fs.Parse(args)
	t := openArg(fs)
	m := t.Meta()
	if *start > m.Records {
		fatalf("-start %d beyond the %d-record trace", *start, m.Records)
	}
	src, err := t.Source()
	if err != nil {
		fatalf("%v", err)
	}
	end := m.Records
	if *limit > 0 && *start+*limit < end {
		end = *start + *limit
	}
	var in isa.Inst
	for i := uint64(0); i < *start; i++ {
		src.Next(&in)
	}
	for i := *start; i < end; i++ {
		src.Next(&in)
		fmt.Print(formatInst(&in))
	}
}

// formatInst renders one decoded record as a text line.
func formatInst(in *isa.Inst) string {
	switch {
	case in.IsMem():
		return fmt.Sprintf("%8d  %-6s dst=%-3d src=%d,%d addr=%#x size=%d\n",
			in.Seq, in.Op, in.Dst, in.Src1, in.Src2, in.Addr, in.Size)
	case in.Op == isa.OpBranch:
		return fmt.Sprintf("%8d  %-6s cond=%-3d taken=%t mispred=%t\n",
			in.Seq, in.Op, in.Src1, in.Taken, in.Mispred)
	default:
		return fmt.Sprintf("%8d  %-6s dst=%-3d src=%d,%d\n",
			in.Seq, in.Op, in.Dst, in.Src1, in.Src2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "elsqtrace: "+format+"\n", args...)
	os.Exit(1)
}
