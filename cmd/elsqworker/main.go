// Command elsqworker leases simulation jobs from an elsqserve coordinator
// and runs them through the unchanged local sweep engine. It heartbeats
// every lease while the simulation runs (abandoning the run promptly if
// the coordinator revokes it), fetches missing trace artifacts by content
// digest with end-to-end verification, shares warm-up checkpoints through
// the coordinator's store, and uploads results with capped exponential
// backoff on transient failures.
//
// Usage:
//
//	elsqworker -coordinator http://host:7977
//	elsqworker -coordinator http://host:7977 -name rack3-7 -tracedir .traces
//
// Run one process per machine (each job already saturates one core per
// lease; start several workers to use several cores). Workers are
// stateless: killing one mid-job only delays that job until its lease
// expires and another worker steals it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fleet"
)

func main() {
	coord := flag.String("coordinator", "http://localhost:7977", "coordinator base URL")
	name := flag.String("name", "", "worker name in coordinator logs (default host-pid)")
	poll := flag.Duration("poll", 250*time.Millisecond, "idle re-poll interval when the queue is empty")
	traceDir := flag.String("tracedir", "", "directory for traces fetched by digest (empty = temporary)")
	ckptDir := flag.String("ckptdir", "", "local persistent checkpoint cache layered over the coordinator's store (empty = in-memory)")
	flag.Parse()

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	client := fleet.NewClient(*coord)
	var local ckpt.Store = ckpt.NewMemStore()
	if *ckptDir != "" {
		var err error
		if local, err = ckpt.NewDiskStore(*ckptDir, 0); err != nil {
			fatalf("%v", err)
		}
	}
	w := &fleet.Worker{
		Client:   client,
		Name:     *name,
		Ckpts:    fleet.LayeredCkpts(local, client.CkptStore()),
		TraceDir: *traceDir,
		Poll:     *poll,
		OnEvent:  func(s string) { log.Print(s) },
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	log.Printf("elsqworker %s: leasing from %s", *name, *coord)
	w.Run(ctx)
	st := client.Stats()
	log.Printf("elsqworker %s: stopped (%d requests, %d retries, %d digest mismatches)",
		*name, st.Requests, st.Retries, st.DigestMismatches)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "elsqworker: "+format+"\n", args...)
	os.Exit(2)
}
