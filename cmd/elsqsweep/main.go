// Command elsqsweep runs an arbitrary configuration sweep: a cartesian grid
// of config-field axes × benchmarks × seeds, executed in parallel with
// result caching, emitted as JSON and CSV artifacts.
//
// Usage:
//
//	elsqsweep -axis l1.size=16K,32K,64K -suites fp -seeds 1..3 -out sweep.json
//	elsqsweep -axis ert=line,hash -axis sqm=true,false -benches gzip,mcf,swim \
//	          -insts 50000 -csv sweep.csv
//	elsqsweep -axis ssbf.bits=8,10,12 -base ooo -axis lsq=svw -suites int \
//	          -cachedir .sweepcache -out svw.json
//	elsqsweep -axis ert=line,hash -ckptdir .ckpt -sample-intervals 4 \
//	          -sample-bleed 50000 -suites fp -out sampled.json
//	elsqsweep -fields          # list sweepable config fields
//
// Repeating a run with -cachedir (or re-running overlapping grids) serves
// completed simulations from the cache; the summary line reports the hit
// count.
//
// Warm-up checkpointing (on by default, -ckpt=false to disable): jobs whose
// warm-up identity matches — same cache geometry, warm-up budget, benchmark
// and seed, i.e. every config axis the paper sweeps — share one functional
// warm-up instead of paying one each, with bit-identical results. -ckptdir
// persists the snapshots so later runs (and cmd/elsqckpt pre-builds) skip
// even that single warm-up. -sample-intervals/-sample-bleed select
// SimPoint-style multi-interval measurement (see internal/config).
//
// Trace-driven sweeps: -axis trace=a.elt,b.elt sweeps over recorded .elt
// files directly (the named benchmarks/seeds must match each recording),
// while -tracedir binds every job to <dir>/<bench>-s<seed>.elt, the layout
// elsqtrace record -suites writes. Either way jobs are content-addressed by
// the trace digest, and replay is bit-identical to live generation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	var axes axisFlags
	flag.Var(&axes, "axis", "swept config field, field=v1,v2,... (repeatable)")
	base := flag.String("base", "fmc", "base configuration: fmc (Table 1 default) | ooo (OoO-64 baseline)")
	suites := flag.String("suites", "", "comma-separated suites to run (int,fp)")
	benches := flag.String("benches", "", "comma-separated benchmark names (overrides -suites)")
	seeds := flag.String("seeds", "1", "workload seeds: range lo..hi or comma list")
	insts := flag.Uint64("insts", 100_000, "measured instructions per benchmark")
	warmup := flag.Uint64("warmup", 2_500_000, "functional warm-up instructions per benchmark")
	sampleIntervals := flag.Int("sample-intervals", 0, "split the measured instructions into this many SimPoint-style intervals (0/1 = contiguous)")
	sampleBleed := flag.Uint64("sample-bleed", 0, "functional fast-forward instructions between sample intervals")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	outPath := flag.String("out", "", "write the JSON artifact to this file (- for stdout)")
	csvPath := flag.String("csv", "", "write the CSV artifact to this file (- for stdout)")
	cacheDir := flag.String("cachedir", "", "persistent result-cache directory (empty = in-memory only)")
	traceDir := flag.String("tracedir", "", "drive every job from the recorded trace <tracedir>/<bench>-s<seed>.elt (see elsqtrace record -suites) instead of live generation")
	useCkpt := flag.Bool("ckpt", true, "share one warm-up checkpoint across configs with equal warm-up identity (bit-identical results, one warm-up per benchmark/seed instead of one per job)")
	ckptDir := flag.String("ckptdir", "", "persistent checkpoint-store directory (empty = in-memory only; implies -ckpt)")
	ckptMax := flag.String("ckpt-max-bytes", "2G", "checkpoint store size budget for -ckptdir (K/M/G suffixes; 0 = unbounded)")
	quiet := flag.Bool("q", false, "suppress per-job progress lines")
	fields := flag.Bool("fields", false, "list sweepable config fields and exit")
	flag.Parse()

	if *fields {
		for _, f := range config.Fields() {
			fmt.Printf("  %-20s %s\n", f.Name, f.Doc)
		}
		return
	}

	cfg := config.Default()
	if *base == "ooo" {
		cfg = config.OoO64()
	} else if *base != "fmc" {
		fatalf("unknown -base %q (want fmc | ooo)", *base)
	}
	cfg.MaxInsts = *insts
	cfg.WarmupInsts = *warmup
	cfg.SampleIntervals = *sampleIntervals
	cfg.SampleBleedInsts = *sampleBleed

	grid := sweep.Grid{Base: cfg, Axes: axes}
	var err error
	switch {
	case *benches != "":
		grid.Benches, err = sweep.NamedBenches(*benches)
	case *suites != "":
		grid.Benches, err = sweep.SuiteBenches(*suites)
	default:
		grid.Benches, err = sweep.SuiteBenches("int,fp")
	}
	if err != nil {
		fatalf("%v", err)
	}
	if grid.Seeds, err = sweep.ParseSeeds(*seeds); err != nil {
		fatalf("%v", err)
	}

	jobs, err := grid.Expand()
	if err != nil {
		fatalf("%v", err)
	}
	if *traceDir != "" {
		// Bind every job to its recording and content-address it before any
		// cache key is derived (a per-job trace file is orthogonal to the
		// config axes, so this happens after expansion).
		for i := range jobs {
			jobs[i].Config.TracePath = trace.BenchPath(*traceDir, jobs[i].Bench.Name, jobs[i].Seed)
			if err := trace.Resolve(&jobs[i].Config); err != nil {
				fatalf("%v", err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d jobs (%d grid points x %d benchmarks x %d seeds)\n",
		len(jobs), len(jobs)/(len(grid.Benches)*len(grid.Seeds)), len(grid.Benches), len(grid.Seeds))

	runner := sweep.Runner{Workers: *workers}
	if *cacheDir != "" {
		if runner.Cache, err = sweep.NewDiskCache(*cacheDir); err != nil {
			fatalf("%v", err)
		}
	} else {
		runner.Cache = sweep.NewMemCache()
	}
	switch {
	case *ckptDir != "":
		budget, err := config.ParseSize(*ckptMax)
		if err != nil {
			fatalf("bad -ckpt-max-bytes: %v", err)
		}
		if runner.Checkpoints, err = ckpt.NewDiskStore(*ckptDir, int64(budget)); err != nil {
			fatalf("%v", err)
		}
	case *useCkpt:
		runner.Checkpoints = ckpt.NewMemStore()
	}
	if !*quiet {
		runner.OnProgress = func(p sweep.Progress) {
			fmt.Fprintln(os.Stderr, sweep.FormatProgress(p))
		}
	}

	start := time.Now()
	outcomes, stats, err := runner.Run(jobs)
	if err != nil {
		fatalf("sweep failed: %v", err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %s in %v\n", stats, time.Since(start).Round(time.Millisecond))

	if err := writeArtifact(*outPath, func(f *os.File) error {
		return sweep.WriteJSON(f, outcomes, stats)
	}); err != nil {
		fatalf("writing JSON: %v", err)
	}
	if err := writeArtifact(*csvPath, func(f *os.File) error {
		return sweep.WriteCSV(f, outcomes)
	}); err != nil {
		fatalf("writing CSV: %v", err)
	}
	if *outPath == "" && *csvPath == "" {
		// No artifact requested: print the JSON to stdout so the run is
		// never silently discarded.
		if err := sweep.WriteJSON(os.Stdout, outcomes, stats); err != nil {
			fatalf("writing JSON: %v", err)
		}
	}
}

// writeArtifact writes to path via emit ("" skips, "-" means stdout).
func writeArtifact(path string, emit func(*os.File) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// axisFlags collects repeated -axis flags.
type axisFlags []sweep.Axis

// String implements flag.Value.
func (a *axisFlags) String() string {
	return fmt.Sprintf("%d axes", len(*a))
}

// Set implements flag.Value.
func (a *axisFlags) Set(s string) error {
	axis, err := sweep.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, axis)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
