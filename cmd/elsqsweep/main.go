// Command elsqsweep runs an arbitrary configuration sweep: a cartesian grid
// of config-field axes × benchmarks × seeds, executed in parallel with
// result caching, emitted as JSON and CSV artifacts.
//
// Usage:
//
//	elsqsweep -axis l1.size=16K,32K,64K -suites fp -seeds 1..3 -out sweep.json
//	elsqsweep -axis ert=line,hash -axis sqm=true,false -benches gzip,mcf,swim \
//	          -insts 50000 -csv sweep.csv
//	elsqsweep -axis ssbf.bits=8,10,12 -base ooo -axis lsq=svw -suites int \
//	          -cachedir .sweepcache -out svw.json
//	elsqsweep -axis ert=line,hash -ckptdir .ckpt -sample-intervals 4 \
//	          -sample-bleed 50000 -suites fp -out sampled.json
//	elsqsweep -fields          # list sweepable config fields
//
// Repeating a run with -cachedir (or re-running overlapping grids) serves
// completed simulations from the cache; the summary line reports the hit
// count.
//
// Warm-up checkpointing (on by default, -ckpt=false to disable): jobs whose
// warm-up identity matches — same cache geometry, warm-up budget, benchmark
// and seed, i.e. every config axis the paper sweeps — share one functional
// warm-up instead of paying one each, with bit-identical results. -ckptdir
// persists the snapshots so later runs (and cmd/elsqckpt pre-builds) skip
// even that single warm-up. -sample-intervals/-sample-bleed select
// SimPoint-style multi-interval measurement (see internal/config).
//
// Trace-driven sweeps: -axis trace=a.elt,b.elt sweeps over recorded .elt
// files directly (the named benchmarks/seeds must match each recording),
// while -tracedir binds every job to <dir>/<bench>-s<seed>.elt, the layout
// elsqtrace record -suites writes. Either way jobs are content-addressed by
// the trace digest, and replay is bit-identical to live generation.
//
// Remote execution: -remote http://host:7977 submits the expanded grid to
// an elsqserve coordinator instead of simulating locally. Trace artifacts
// the jobs demand are pushed to the coordinator's content-addressed store
// first, progress is streamed to stderr, and the assembled results — byte-
// identical to a local run of the same grid, in the same canonical order —
// feed the usual JSON/CSV artifact writers. The local cache and checkpoint
// flags are ignored; the service's stores take their place.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	var axes axisFlags
	flag.Var(&axes, "axis", "swept config field, field=v1,v2,... (repeatable)")
	base := flag.String("base", "fmc", "base configuration: fmc (Table 1 default) | ooo (OoO-64 baseline)")
	suites := flag.String("suites", "", "comma-separated suites to run (int,fp)")
	benches := flag.String("benches", "", "comma-separated benchmark names (overrides -suites)")
	seeds := flag.String("seeds", "1", "workload seeds: range lo..hi or comma list")
	insts := flag.Uint64("insts", 100_000, "measured instructions per benchmark")
	warmup := flag.Uint64("warmup", 2_500_000, "functional warm-up instructions per benchmark")
	sampleIntervals := flag.Int("sample-intervals", 0, "split the measured instructions into this many SimPoint-style intervals (0/1 = contiguous)")
	sampleBleed := flag.Uint64("sample-bleed", 0, "functional fast-forward instructions between sample intervals")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	outPath := flag.String("out", "", "write the JSON artifact to this file (- for stdout)")
	csvPath := flag.String("csv", "", "write the CSV artifact to this file (- for stdout)")
	cacheDir := flag.String("cachedir", "", "persistent result-cache directory (empty = in-memory only)")
	traceDir := flag.String("tracedir", "", "drive every job from the recorded trace <tracedir>/<bench>-s<seed>.elt (see elsqtrace record -suites) instead of live generation")
	useCkpt := flag.Bool("ckpt", true, "share one warm-up checkpoint across configs with equal warm-up identity (bit-identical results, one warm-up per benchmark/seed instead of one per job)")
	ckptDir := flag.String("ckptdir", "", "persistent checkpoint-store directory (empty = in-memory only; implies -ckpt)")
	ckptMax := flag.String("ckpt-max-bytes", "2G", "checkpoint store size budget for -ckptdir (K/M/G suffixes; 0 = unbounded)")
	remote := flag.String("remote", "", "submit the sweep to the elsqserve coordinator at this URL instead of simulating locally")
	quiet := flag.Bool("q", false, "suppress per-job progress lines")
	fields := flag.Bool("fields", false, "list sweepable config fields and exit")
	flag.Parse()

	if *fields {
		for _, f := range config.Fields() {
			fmt.Printf("  %-20s %s\n", f.Name, f.Doc)
		}
		return
	}

	cfg := config.Default()
	if *base == "ooo" {
		cfg = config.OoO64()
	} else if *base != "fmc" {
		fatalf("unknown -base %q (want fmc | ooo)", *base)
	}
	cfg.MaxInsts = *insts
	cfg.WarmupInsts = *warmup
	cfg.SampleIntervals = *sampleIntervals
	cfg.SampleBleedInsts = *sampleBleed

	grid := sweep.Grid{Base: cfg, Axes: axes}
	var err error
	switch {
	case *benches != "":
		grid.Benches, err = sweep.NamedBenches(*benches)
	case *suites != "":
		grid.Benches, err = sweep.SuiteBenches(*suites)
	default:
		grid.Benches, err = sweep.SuiteBenches("int,fp")
	}
	if err != nil {
		fatalf("%v", err)
	}
	if grid.Seeds, err = sweep.ParseSeeds(*seeds); err != nil {
		fatalf("%v", err)
	}

	jobs, err := grid.Expand()
	if err != nil {
		fatalf("%v", err)
	}
	if *traceDir != "" {
		// Bind every job to its recording and content-address it before any
		// cache key is derived (a per-job trace file is orthogonal to the
		// config axes, so this happens after expansion).
		for i := range jobs {
			jobs[i].Config.TracePath = trace.BenchPath(*traceDir, jobs[i].Bench.Name, jobs[i].Seed)
			if err := trace.Resolve(&jobs[i].Config); err != nil {
				fatalf("%v", err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d jobs (%d grid points x %d benchmarks x %d seeds)\n",
		len(jobs), len(jobs)/(len(grid.Benches)*len(grid.Seeds)), len(grid.Benches), len(grid.Seeds))

	var outcomes []sweep.Outcome
	var stats sweep.Stats
	start := time.Now()
	if *remote != "" {
		outcomes, stats, err = runRemote(*remote, jobs, *quiet)
		if err != nil {
			fatalf("fleet sweep failed: %v", err)
		}
	} else {
		runner := sweep.Runner{Workers: *workers}
		if *cacheDir != "" {
			if runner.Cache, err = sweep.NewDiskCache(*cacheDir); err != nil {
				fatalf("%v", err)
			}
		} else {
			runner.Cache = sweep.NewMemCache()
		}
		switch {
		case *ckptDir != "":
			budget, err := config.ParseSize(*ckptMax)
			if err != nil {
				fatalf("bad -ckpt-max-bytes: %v", err)
			}
			if runner.Checkpoints, err = ckpt.NewDiskStore(*ckptDir, int64(budget)); err != nil {
				fatalf("%v", err)
			}
		case *useCkpt:
			runner.Checkpoints = ckpt.NewMemStore()
		}
		if !*quiet {
			runner.OnProgress = func(p sweep.Progress) {
				fmt.Fprintln(os.Stderr, sweep.FormatProgress(p))
			}
		}
		if outcomes, stats, err = runner.Run(jobs); err != nil {
			fatalf("sweep failed: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %s in %v\n", stats, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "sweep: results digest %s\n", sweep.ResultsDigest(outcomes))

	if err := writeArtifact(*outPath, func(f *os.File) error {
		return sweep.WriteJSON(f, outcomes, stats)
	}); err != nil {
		fatalf("writing JSON: %v", err)
	}
	if err := writeArtifact(*csvPath, func(f *os.File) error {
		return sweep.WriteCSV(f, outcomes)
	}); err != nil {
		fatalf("writing CSV: %v", err)
	}
	if *outPath == "" && *csvPath == "" {
		// No artifact requested: print the JSON to stdout so the run is
		// never silently discarded.
		if err := sweep.WriteJSON(os.Stdout, outcomes, stats); err != nil {
			fatalf("writing JSON: %v", err)
		}
	}
}

// runRemote executes the expanded grid on an elsqserve fleet: trace
// artifacts are pushed to the coordinator's content-addressed store,
// progress is streamed to stderr, and the results come back in the same
// canonical order a local run emits. An interrupt cancels the remote sweep
// before exiting.
func runRemote(base string, jobs []sweep.Job, quiet bool) ([]sweep.Outcome, sweep.Stats, error) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	client := fleet.NewClient(base)

	// Push every distinct trace the jobs demand; the store is
	// content-addressed, so re-pushing a trace the service already holds is
	// an idempotent no-op.
	pushed := make(map[string]bool)
	for _, j := range jobs {
		d := j.Config.TraceDigest
		if d == "" || pushed[d] || j.Config.TracePath == "" {
			continue
		}
		pushed[d] = true
		b, err := os.ReadFile(j.Config.TracePath)
		if err != nil {
			return nil, sweep.Stats{}, fmt.Errorf("reading trace for upload: %w", err)
		}
		if err := client.BlobPut(ctx, fleet.SpaceTrace, d, b); err != nil {
			return nil, sweep.Stats{}, fmt.Errorf("uploading trace %s: %w", d, err)
		}
	}
	if len(pushed) > 0 {
		fmt.Fprintf(os.Stderr, "sweep: pushed %d trace artifacts to %s\n", len(pushed), base)
	}

	sub, err := client.Submit(ctx, jobs)
	if err != nil {
		return nil, sweep.Stats{}, err
	}
	fmt.Fprintf(os.Stderr, "sweep: submitted %d jobs to %s as %s (%d served from the result store)\n",
		sub.Total, base, sub.ID, sub.Done)

	var onChange func(fleet.SweepStatus)
	if !quiet {
		onChange = func(st fleet.SweepStatus) {
			fmt.Fprintf(os.Stderr, "sweep: fleet %d/%d done, %d failed\n", st.Done, st.Total, st.Failed)
		}
	}
	st, err := client.Wait(ctx, sub.ID, onChange)
	if err != nil {
		if ctx.Err() != nil {
			// Interrupted: release the fleet's workers before going away.
			client.Cancel(context.Background(), sub.ID)
		}
		return nil, sweep.Stats{}, err
	}
	if st.Failed > 0 {
		return nil, sweep.Stats{}, fmt.Errorf("%d jobs failed permanently: %v", st.Failed, st.Errors)
	}
	return client.Results(ctx, sub.ID)
}

// writeArtifact writes to path via emit ("" skips, "-" means stdout).
func writeArtifact(path string, emit func(*os.File) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// axisFlags collects repeated -axis flags.
type axisFlags []sweep.Axis

// String implements flag.Value.
func (a *axisFlags) String() string {
	return fmt.Sprintf("%d axes", len(*a))
}

// Set implements flag.Value.
func (a *axisFlags) Set(s string) error {
	axis, err := sweep.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, axis)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
