// Command elsqckpt manages a checkpoint store: content-addressed warm-state
// snapshots (internal/ckpt) that let sweeps and benchmarks resume measured
// intervals from warmed caches instead of re-running the functional warm-up
// per (config, benchmark, seed).
//
//	elsqckpt -dir .ckpt build -suites fp -seeds 1..3 -warmup 2500000
//	elsqckpt -dir .ckpt build -benches swim,mcf -seeds 1
//	elsqckpt -dir .ckpt ls
//
// The store is keyed by the warm-up-relevant configuration slice only
// (cache geometry + warm-up budget + benchmark + seed), so one store entry
// serves every LSQ scheme, ERT shape and threshold swept over it. Snapshots
// are ~1 MiB each at Table 1 geometry; -max-bytes bounds the store's total
// size by pruning the oldest entries.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	dir := flag.String("dir", ".ckpt", "checkpoint store directory")
	maxBytes := flag.String("max-bytes", "2G", "store size budget (K/M/G suffixes; 0 = unbounded); oldest snapshots are pruned beyond it")
	flag.Usage = usage
	flag.Parse()

	budget, err := config.ParseSize(*maxBytes)
	if err != nil {
		fatalf("bad -max-bytes: %v", err)
	}
	store, err := ckpt.NewDiskStore(*dir, int64(budget))
	if err != nil {
		fatalf("%v", err)
	}

	switch flag.Arg(0) {
	case "build":
		build(store, flag.Args()[1:])
	case "ls":
		ls(store)
	case "":
		usage()
		os.Exit(2)
	default:
		fatalf("unknown command %q (want build | ls)", flag.Arg(0))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: elsqckpt [-dir DIR] [-max-bytes N] <command> [args]

commands:
  build   pre-build checkpoints for a benchmark x seed set
  ls      list the store's snapshots and total size

build flags:
`)
	buildFlags(nil).PrintDefaults()
}

type buildOpts struct {
	suites, benches, seeds, base string
	warmup                       uint64
	workers                      int
}

func buildFlags(o *buildOpts) *flag.FlagSet {
	if o == nil {
		o = &buildOpts{}
	}
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	fs.StringVar(&o.suites, "suites", "", "comma-separated suites to checkpoint (int,fp)")
	fs.StringVar(&o.benches, "benches", "", "comma-separated benchmark names (overrides -suites)")
	fs.StringVar(&o.seeds, "seeds", "1", "workload seeds: range lo..hi or comma list")
	fs.StringVar(&o.base, "base", "fmc", "base configuration supplying the cache geometry: fmc | ooo")
	fs.Uint64Var(&o.warmup, "warmup", 2_500_000, "functional warm-up instructions to checkpoint")
	fs.IntVar(&o.workers, "workers", 0, "concurrent builds (0 = GOMAXPROCS)")
	return fs
}

func build(store *ckpt.DiskStore, args []string) {
	var o buildOpts
	if err := buildFlags(&o).Parse(args); err != nil {
		os.Exit(2)
	}
	cfg := config.Default()
	if o.base == "ooo" {
		cfg = config.OoO64()
	} else if o.base != "fmc" {
		fatalf("unknown -base %q (want fmc | ooo)", o.base)
	}
	cfg.WarmupInsts = o.warmup

	var profs []workload.Profile
	var err error
	switch {
	case o.benches != "":
		profs, err = sweep.NamedBenches(o.benches)
	case o.suites != "":
		profs, err = sweep.SuiteBenches(o.suites)
	default:
		profs, err = sweep.SuiteBenches("int,fp")
	}
	if err != nil {
		fatalf("%v", err)
	}
	seeds, err := sweep.ParseSeeds(o.seeds)
	if err != nil {
		fatalf("%v", err)
	}

	type task struct {
		prof workload.Profile
		seed uint64
	}
	var tasks []task
	for _, p := range profs {
		for _, s := range seeds {
			tasks = append(tasks, task{p, s})
		}
	}

	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var cursor, builtN, skipped atomic.Int64
	var mu sync.Mutex // serialises output
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := cursor.Add(1) - 1
				if n >= int64(len(tasks)) {
					return
				}
				tk := tasks[n]
				key := ckpt.Key(&cfg, tk.prof.Name, tk.seed)
				if store.Has(key) {
					skipped.Add(1)
					mu.Lock()
					fmt.Printf("exists  %s  %s seed %d\n", key, tk.prof.Name, tk.seed)
					mu.Unlock()
					continue
				}
				snap, err := ckpt.Build(&cfg, tk.prof, tk.seed)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					fmt.Fprintf(os.Stderr, "elsqckpt: %s seed %d: %v\n", tk.prof.Name, tk.seed, err)
					mu.Unlock()
					continue
				}
				store.Put(snap)
				builtN.Add(1)
				mu.Lock()
				fmt.Printf("built   %s  %s seed %d (%d warm-up insts)\n", key, tk.prof.Name, tk.seed, o.warmup)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total, _ := store.TotalBytes()
	fmt.Printf("%d built, %d already present in %v; store %s holds %s (budget %s)\n",
		builtN.Load(), skipped.Load(), time.Since(start).Round(time.Millisecond),
		store.Dir(), sizeStr(total), budgetStr(store.MaxBytes))
	if firstErr != nil {
		os.Exit(1)
	}
}

func ls(store *ckpt.DiskStore) {
	entries, err := store.Entries()
	if err != nil {
		fatalf("%v", err)
	}
	var total int64
	fmt.Printf("%-34s %10s  %-20s %s\n", "KEY", "SIZE", "MODIFIED", "CONTENTS")
	for _, e := range entries {
		total += e.Size
		desc := "(unreadable)"
		if snap, ok := store.Get(e.Key); ok {
			desc = fmt.Sprintf("%s seed %d, %d warm-up insts", snap.Bench, snap.Seed, snap.WarmupInsts)
		}
		fmt.Printf("%-34s %10s  %-20s %s\n", e.Key, sizeStr(e.Size), e.ModTime.Format("2006-01-02 15:04:05"), desc)
	}
	fmt.Printf("%d snapshots, %s total (budget %s)\n", len(entries), sizeStr(total), budgetStr(store.MaxBytes))
	if store.MaxBytes > 0 && total > store.MaxBytes {
		fmt.Fprintf(os.Stderr, "elsqckpt: store exceeds its budget; the next write prunes oldest entries\n")
	}
}

// budgetStr formats a size budget, where <= 0 means no limit.
func budgetStr(n int64) string {
	if n <= 0 {
		return "unbounded"
	}
	return sizeStr(n)
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "elsqckpt: "+format+"\n", args...)
	os.Exit(1)
}
