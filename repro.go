// Package repro is a from-scratch reproduction of "A Two-Level Load/Store
// Queue Based on Execution Locality" (Pericàs et al., ISCA 2008): the
// Epoch-based Load/Store Queue (ELSQ) and every substrate it needs — a
// cycle-level FMC (Cache Processor + memory engines) timing model, cache
// hierarchy with line locking, ERT/Bloom/SSBF filters, the SVW re-execution
// and central/conventional LSQ baselines, and synthetic SPEC CPU 2000-like
// workloads.
//
// This root package is a thin convenience facade; the implementation lives
// under internal/ (see DESIGN.md for the module map):
//
//   - internal/core      — the ELSQ (the paper's contribution)
//   - internal/cpu       — the pipeline timing model and Result type
//   - internal/config    — Table 1 configuration
//   - internal/workload  — the SPEC-like benchmark suites
//   - internal/experiments — regeneration of every table and figure
//
// Quick use:
//
//	cfg := config.Default()          // Table 1, FMC + ELSQ(hash)+SQM
//	res, err := repro.Simulate(cfg, "swim", 1)
//	fmt.Println(res.IPC)
package repro

import (
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/simrun"
	"repro/internal/workload"
)

// Simulate runs one benchmark under one configuration and returns the full
// result (IPC, Table 2 component access counters, Figure 1 locality
// histograms, Figure 11 activity statistics).
func Simulate(cfg config.Config, bench string, seed uint64) (*cpu.Result, error) {
	out, err := simrun.Point{Config: cfg, Bench: bench, Seed: seed}.Run(nil)
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Benchmarks lists the available benchmark names, integer suite first.
func Benchmarks() []string {
	var out []string
	for _, s := range []workload.Suite{workload.SuiteInt, workload.SuiteFP} {
		for _, p := range workload.SuiteOf(s) {
			out = append(out, p.Name)
		}
	}
	return out
}
