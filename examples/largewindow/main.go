// Large-window anatomy: sweep the number of memory engines (epochs) and
// watch the effective instruction window grow — and with it, the memory-
// level parallelism of a streaming workload. Also shows the execution-
// locality split (Figure 1's statistic) per benchmark.
//
//	go run ./examples/largewindow
//	go run ./examples/largewindow -insts 2000 -warmup 5000   # smoke budget
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/exutil"
)

func main() {
	budget := exutil.ParseBudget(80_000)

	fmt.Println("art (stream, heavy misses): IPC vs number of memory engines")
	fmt.Printf("%8s %10s %8s\n", "epochs", "window", "IPC")
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := config.Default()
		cfg.NumEpochs = n
		r := budget.MustRun(cfg, "art")
		fmt.Printf("%8d %10d %8.3f\n", n, cfg.WindowSize(), r.IPC)
	}

	fmt.Println("\nExecution locality (fraction of address calcs within 30 cycles of decode):")
	for _, name := range []string{"swim", "sixtrack", "gcc", "mcf", "equake"} {
		r := budget.MustRun(config.Default(), name)
		fmt.Printf("  %-10s loads %5.1f%%   stores %5.1f%%\n",
			name, 100*r.LoadDist.FracWithin(30), 100*r.StoreDist.FracWithin(30))
	}
	fmt.Println("\nPointer codes (mcf, equake) have the long tails that populate the")
	fmt.Println("LL-LSQ; stream and cache-resident codes stay high-locality.")
}
