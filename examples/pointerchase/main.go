// Pointer-chase study: why restricted store-address calculation (RSAC) is
// nearly free in general but expensive on equake-like code, and how the
// Store Queue Mirror speeds up low-locality-store → high-locality-load
// forwarding on pointer-heavy integer code.
//
//	go run ./examples/pointerchase
//	go run ./examples/pointerchase -insts 2000 -warmup 5000   # smoke budget
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/exutil"
)

func main() {
	budget := exutil.ParseBudget(80_000)
	fmt.Println("Restricted SAC (Section 5.5): stores must compute addresses in the")
	fmt.Println("HL-LSQ; a store with a pointer-derived (miss-dependent) address")
	fmt.Println("stalls migration behind it.")
	fmt.Println()
	for _, bench := range []string{"swim", "mcf", "equake"} {
		full := budget.MustRun(config.Default(), bench)
		cfg := config.Default()
		cfg.Disamb = config.DisambRSAC
		rsac := budget.MustRun(cfg, bench)
		fmt.Printf("  %-8s full %.3f  rsac %.3f  (%+.1f%%, %d stalls)\n",
			bench, full.IPC, rsac.IPC, 100*(rsac.IPC/full.IPC-1),
			rsac.Counters.Get("rsac_stall"))
	}

	fmt.Println()
	fmt.Println("Store Queue Mirror (Section 4): high-locality loads forwarding from")
	fmt.Println("migrated low-locality stores avoid the CP<->MP round trip.")
	fmt.Println()
	for _, bench := range []string{"gcc", "perlbmk", "mcf"} {
		with := budget.MustRun(config.Default(), bench)
		cfg := config.Default()
		cfg.SQM = false
		without := budget.MustRun(cfg, bench)
		fmt.Printf("  %-8s with SQM %.3f  without %.3f  (SQM worth %+.1f%%; "+
			"%d mirror searches vs %d round trips)\n",
			bench, with.IPC, without.IPC, 100*(with.IPC/without.IPC-1),
			with.Counters.Get("sqm_search"), without.Counters.Get("roundtrip"))
	}
}
