// Filter tuning: size the hash-based Epoch Resolution Table. Sweeps the
// index width and reports false-positive rates (useless remote searches)
// against hardware budget, then compares with the line-based filter — the
// trade-off of Figure 8(a).
//
//	go run ./examples/filtertuning
//	go run ./examples/filtertuning -insts 2000 -warmup 5000   # smoke budget
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/exutil"
	"repro/internal/stats"
)

func main() {
	budget := exutil.ParseBudget(80_000)
	benches := []string{"gcc", "applu", "gap"}
	fmt.Println("Hash-ERT sizing (false positives per 100M insts, mean of",
		benches, "):")
	fmt.Printf("%8s %10s %16s %12s\n", "bits", "budget", "false positives", "IPC")
	for _, bits := range []int{6, 8, 10, 12, 14} {
		cfg := config.Default()
		cfg.ERTHashBits = bits
		var fp, ipc float64
		for _, b := range benches {
			r := budget.MustRun(cfg, b)
			fp += stats.Per100M(r.Counters.Get("ert_false_positive"), r.Committed)
			ipc += r.IPC
		}
		fmt.Printf("%8d %9dB %16.0f %12.3f\n",
			bits, 2*2*(1<<uint(bits)), fp/float64(len(benches)), ipc/float64(len(benches)))
	}

	fmt.Println("\nLine-based filter (budget = 2 bits x 2 tables per L1 line):")
	cfg := config.Default()
	cfg.ERT = config.ERTLine
	var fp, ipc float64
	for _, b := range benches {
		r := budget.MustRun(cfg, b)
		fp += stats.Per100M(r.Counters.Get("ert_false_positive"), r.Committed)
		ipc += r.IPC
	}
	fmt.Printf("%8s %9dB %16.0f %12.3f\n", "line",
		2*2*cfg.L1.Lines(), fp/float64(len(benches)), ipc/float64(len(benches)))
	fmt.Println("\nShape to observe: false positives fall steeply with bits; ~10 bits")
	fmt.Println("(a 4KB budget) is the paper's sweet spot; accuracy, not IPC, moves —")
	fmt.Println("the filter guards power, not the critical path.")
}
