// Package examples holds runnable demonstration programs. The smoke test
// below builds and runs each one at a tiny instruction budget, so the
// examples cannot silently rot as the internal APIs they showcase evolve —
// they have no other test coverage.
package examples

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesBuildAndRun(t *testing.T) {
	examples := []string{"quickstart", "largewindow", "pointerchase", "filtertuning"}
	binDir := t.TempDir()
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+name)
			build.Dir = "."
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./examples/%s failed: %v\n%s", name, err, out)
			}

			var stdout, stderr bytes.Buffer
			run := exec.Command(bin, "-insts", "1500", "-warmup", "4000")
			run.Stdout = &stdout
			run.Stderr = &stderr
			if err := run.Run(); err != nil {
				t.Fatalf("%s exited with %v\nstderr: %s", name, err, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Errorf("%s produced no output", name)
			}
		})
	}
}
