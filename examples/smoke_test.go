// Package examples holds runnable demonstration programs. The smoke test
// below builds and runs each one at a tiny instruction budget, so the
// examples cannot silently rot as the internal APIs they showcase evolve —
// they have no other test coverage.
package examples

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestElsqtraceRecordVerify builds cmd/elsqtrace and drives a tiny
// record→info→verify -live round trip, so the trace CLI (and the recorded
// format behind it) stays exercised in CI alongside the examples.
func TestElsqtraceRecordVerify(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "elsqtrace")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/elsqtrace")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/elsqtrace failed: %v\n%s", err, out)
	}

	tracePath := filepath.Join(dir, "gzip.elt")
	for _, step := range [][]string{
		{"record", "-bench", "gzip", "-seed", "1", "-n", "4000", "-out", tracePath},
		{"info", tracePath},
		{"verify", "-live", tracePath},
		{"cat", "-limit", "5", tracePath},
	} {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, step...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("elsqtrace %v exited with %v\nstderr: %s", step, err, stderr.String())
		}
		if stdout.Len() == 0 {
			t.Errorf("elsqtrace %v produced no output", step)
		}
	}
}

func TestExamplesBuildAndRun(t *testing.T) {
	examples := []string{"quickstart", "largewindow", "pointerchase", "filtertuning"}
	binDir := t.TempDir()
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+name)
			build.Dir = "."
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./examples/%s failed: %v\n%s", name, err, out)
			}

			var stdout, stderr bytes.Buffer
			run := exec.Command(bin, "-insts", "1500", "-warmup", "4000")
			run.Stdout = &stdout
			run.Stderr = &stderr
			if err := run.Run(); err != nil {
				t.Fatalf("%s exited with %v\nstderr: %s", name, err, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Errorf("%s produced no output", name)
			}
		})
	}
}
