// Quickstart: simulate one benchmark on the Epoch-based LSQ and on the
// conventional 64-entry-ROB baseline, and print the headline comparison.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -insts 2000 -warmup 5000   # smoke budget
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/exutil"
)

func main() {
	budget := exutil.ParseBudget(100_000)

	// Pick a memory-level-parallel benchmark: the swim-like stream kernel.
	// The conventional baseline is a 64-entry ROB with a finite CAM LSQ;
	// the paper's system is the FMC large-window processor with the ELSQ
	// (hash-based ERT, Store Queue Mirror) — config.Default() is Table 1.
	for _, cfg := range []config.Config{config.OoO64(), config.Default()} {
		// Certify the run against the sequential reference: every committed
		// load must observe exactly the bytes program order requires.
		r, check := budget.MustCertify(cfg, "swim")
		fmt.Printf("%-14s IPC %.3f  (%d insts, %d cycles; %d loads oracle-certified)\n",
			r.Config, r.IPC, r.Committed, r.Cycles, check.Loads())
		if cfg.Model == config.ModelFMC {
			fmt.Printf("%-14s epochs allocated on average: %.2f, LL-LSQ idle %.0f%%\n",
				"", r.AvgEpochs, 100*r.LLIdleFrac)
		}
	}
	fmt.Println("\nThe large window overlaps the stream's independent memory misses;")
	fmt.Println("the ELSQ supplies the window's disambiguation at small-queue cost.")
}
