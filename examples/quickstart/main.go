// Quickstart: simulate one benchmark on the Epoch-based LSQ and on the
// conventional 64-entry-ROB baseline, and print the headline comparison.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -insts 2000 -warmup 5000   # smoke budget
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/oracle"
	"repro/internal/workload"
)

func main() {
	insts := flag.Uint64("insts", 100_000, "measured instructions per simulation")
	warmup := flag.Uint64("warmup", config.Default().WarmupInsts, "functional warm-up instructions")
	flag.Parse()

	// Pick a memory-level-parallel benchmark: the swim-like stream kernel.
	prof, err := workload.ByName("swim")
	if err != nil {
		log.Fatal(err)
	}

	// The conventional baseline: 64-entry ROB, finite CAM LSQ.
	baseline := config.OoO64().WithBudget(*insts, *warmup)

	// The paper's system: FMC large-window processor with the ELSQ
	// (hash-based ERT, Store Queue Mirror) — config.Default() is Table 1.
	elsq := config.Default().WithBudget(*insts, *warmup)

	for _, cfg := range []config.Config{baseline, elsq} {
		sim, err := cpu.New(cfg, prof.New(1))
		if err != nil {
			log.Fatal(err)
		}
		// Certify the run against the sequential reference: every committed
		// load must observe exactly the bytes program order requires.
		check := oracle.New(0)
		sim.SetCommitObserver(check)
		r := sim.Run()
		if err := check.Err(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s IPC %.3f  (%d insts, %d cycles; %d loads oracle-certified)\n",
			r.Config, r.IPC, r.Committed, r.Cycles, check.Loads())
		if cfg.Model == config.ModelFMC {
			fmt.Printf("%-14s epochs allocated on average: %.2f, LL-LSQ idle %.0f%%\n",
				"", r.AvgEpochs, 100*r.LLIdleFrac)
		}
	}
	fmt.Println("\nThe large window overlaps the stream's independent memory misses;")
	fmt.Println("the ELSQ supplies the window's disambiguation at small-queue cost.")
}
